// Package repro's root benchmarks regenerate every figure and table of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark wraps
// one experiment; the measured wall time is the *simulation host* cost —
// the experiment's own results (simulated bandwidths, latencies, loss
// counts) are printed once per benchmark via b.Log and recorded in
// EXPERIMENTS.md.
//
// Run them all:
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// runExperiment executes fn b.N times, logging the table once.
func runExperiment(b *testing.B, fn func(int64) *metrics.Table) {
	b.Helper()
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = fn(1)
	}
	if tab != nil {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkE1SingleStream — Figure 1 / §2.3: single-stream bandwidth vs
// striped blade count (1→~4 Gb/s, 4→port-limited ~10 Gb/s).
func BenchmarkE1SingleStream(b *testing.B) { runExperiment(b, experiments.E1) }

// BenchmarkE2AggregateScaling — §2.1: aggregate throughput vs controllers,
// cluster vs dual-controller baseline.
func BenchmarkE2AggregateScaling(b *testing.B) { runExperiment(b, experiments.E2) }

// BenchmarkE3HotSpot — §2.2: Zipf hot-read load balance and pooled-cache
// hit rate vs the baseline's hot controller.
func BenchmarkE3HotSpot(b *testing.B) { runExperiment(b, experiments.E3) }

// BenchmarkE4Rebuild — §2.4: distributed rebuild time vs blades, with
// foreground-impact columns.
func BenchmarkE4Rebuild(b *testing.B) { runExperiment(b, experiments.E4) }

// BenchmarkE5DMSD — §3: thin provisioning capacity efficiency vs fixed
// partitions.
func BenchmarkE5DMSD(b *testing.B) { runExperiment(b, experiments.E5) }

// BenchmarkE6NWay — §6.1: N-way replication write latency and
// survivability.
func BenchmarkE6NWay(b *testing.B) { runExperiment(b, experiments.E6) }

// BenchmarkE7RemoteAccess — §7.1: remote first-touch vs prefetched reads.
func BenchmarkE7RemoteAccess(b *testing.B) { runExperiment(b, experiments.E7) }

// BenchmarkE8GeoReplication — §7.2: sync-vs-async latency and loss window
// across distance.
func BenchmarkE8GeoReplication(b *testing.B) { runExperiment(b, experiments.E8) }

// BenchmarkE9Encryption — §8.1: encrypted streaming reaching wire speed by
// parallelism.
func BenchmarkE9Encryption(b *testing.B) { runExperiment(b, experiments.E9) }

// BenchmarkE10Availability — §6.3: throughput through a double blade
// failure and recovery.
func BenchmarkE10Availability(b *testing.B) { runExperiment(b, experiments.E10) }

// BenchmarkE11LossyFabric — §6.3: the same double failure over a fabric
// that drops, duplicates, and delays messages; the retry layer keeps
// errors bounded and acknowledged writes intact.
func BenchmarkE11LossyFabric(b *testing.B) { runExperiment(b, experiments.E11) }

// BenchmarkE12Rebalance — §2.2/§6.3: adaptive hot-spot rebalancing under
// static-path routing; home migrations drain the Zipf skew and recover
// throughput toward the uniform baseline.
func BenchmarkE12Rebalance(b *testing.B) { runExperiment(b, experiments.E12) }

// BenchmarkA1Prefetch — ablation: geographic prefetch on/off.
func BenchmarkA1Prefetch(b *testing.B) { runExperiment(b, experiments.A1Prefetch) }

// BenchmarkA2PeerFetch — ablation: cache-to-cache transfers on/off.
func BenchmarkA2PeerFetch(b *testing.B) { runExperiment(b, experiments.A2PeerFetch) }

// BenchmarkA3ReplicationCost — ablation: write latency vs replication N.
func BenchmarkA3ReplicationCost(b *testing.B) { runExperiment(b, experiments.A3ReplicationCost) }

// BenchmarkA4ReadAhead — ablation: controller readahead on/off.
func BenchmarkA4ReadAhead(b *testing.B) { runExperiment(b, experiments.A4ReadAhead) }

// BenchmarkE13QoSIsolation — §2.4/§4: multi-tenant admission control and
// weighted-fair scheduling defending a victim tenant's p99 against an
// aggressor plus a concurrent rebuild.
func BenchmarkE13QoSIsolation(b *testing.B) { runExperiment(b, experiments.E13) }

// BenchmarkE14GovernorStepResponse — governor A/B: the PR5 halve/double
// law against the per-tenant PI controller under identical step and burst
// aggressor loads.
func BenchmarkE14GovernorStepResponse(b *testing.B) { runExperiment(b, experiments.E14) }

// BenchmarkE16GatewaySharding — §8 + yig: object-gateway closed-loop
// client sweep against 1 vs 4 metadata shards; linear region, serial
// single-shard ceiling, sharded lift, flat in-memory IAM latency.
func BenchmarkE16GatewaySharding(b *testing.B) { runExperiment(b, experiments.E16) }
