// Package repro is a from-scratch Go reproduction of "Creating a National
// Lab Shared Storage Infrastructure" (Wayne Karpoff, YottaYotta Inc.,
// IPDPS 2002): a network-centric storage system built from controller
// blades with coherent pooled caches, demand-mapped virtualization over
// RAID groups, a policy-carrying parallel file system, N-way write
// replication, a security ring for many user groups on one pool, and
// geographically federated sites presenting a single data image.
//
// The root package holds the benchmark harness (bench_test.go), one
// testing.B benchmark per reproduced experiment. The system itself lives
// under internal/ — start with internal/core, the assembled façade — and
// runnable examples live under examples/. See DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for measured
// results against the paper's claims.
package repro
