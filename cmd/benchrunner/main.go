// Command benchrunner regenerates every table and figure of the
// reproduction (E1–E13 in DESIGN.md/EXPERIMENTS.md) and prints them as
// plain-text tables.
//
// Usage:
//
//	benchrunner [-seed N] [-only E4] [-list] [-snapshot FILE]
//
// -snapshot runs the canonical traced workload — unbatched, then again on
// the batched fabric plane — and writes a JSON comparison record instead
// of the tables, so each PR can commit a comparable BENCH_PRn.json.
// -baseline diffs the fresh record against a committed one and exits
// non-zero if the fabric p99 regressed more than 10% on either plane, if
// the E14 PI governor's victim p99 (loaded phase, reduced scale) regressed
// more than 10%, if the E15Q hot-cache arm's op p99 regressed more than
// 10%, if the E16Q object gateway's sharded throughput ceiling dropped
// more than 10%, or if any phase's share of the tail (p99+) ops' critical
// path grew more than 5 percentage points over the baseline's
// critical-path latency budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

var runners = []struct {
	name string
	desc string
	fn   func(int64) *metrics.Table
}{
	{"E1", "Figure 1 / §2.3: single-stream rate vs striped blades", experiments.E1},
	{"E2", "§2.1: aggregate throughput scaling vs controllers", experiments.E2},
	{"E3", "§2.2: hot-spot behaviour under Zipf access", experiments.E3},
	{"E4", "§2.4: distributed rebuild", experiments.E4},
	{"E5", "§3: DMSD thin provisioning", experiments.E5},
	{"E6", "§6.1: N-way write replication", experiments.E6},
	{"E7", "§7.1: remote first touch and prefetch", experiments.E7},
	{"E8", "§7.2: sync vs async geographic replication", experiments.E8},
	{"E9", "§8.1: encryption at wire speed by parallelism", experiments.E9},
	{"E10", "§6.3: availability through blade failures", experiments.E10},
	{"E11", "§6.3: availability under a lossy fabric", experiments.E11},
	{"E12", "§2.2/§6.3: adaptive hot-spot rebalancing", experiments.E12},
	{"E13", "§2.4/§4: multi-tenant QoS isolation under rebuild", experiments.E13},
	{"E13Q", "reduced-scale QoS isolation smoke (CI)", experiments.E13Q},
	{"E14", "governor step response: halve/double vs per-tenant PI control", experiments.E14},
	{"E14Q", "reduced-scale governor step-response smoke (CI)", experiments.E14Q},
	{"E15", "hot-key cache tier vs home migration under shifting Zipf skew", experiments.E15},
	{"E15Q", "reduced-scale cache-tier crossover smoke (CI)", experiments.E15Quick},
	{"E16", "object gateway: metadata sharding moves the saturation ceiling", experiments.E16},
	{"E16Q", "reduced-scale gateway shard-scaling smoke (CI)", experiments.E16Quick},
	{"CP1", "critical-path tail diagnosis: canonical workload", experiments.CP1},
	{"CP2", "critical-path tail diagnosis: E14 PI arm under scrub load", experiments.CP2},
	{"A1", "ablation: remote-read prefetch on/off", experiments.A1Prefetch},
	{"A2", "ablation: cache-to-cache transfers on/off", experiments.A2PeerFetch},
	{"A3", "ablation: write latency vs replication factor", experiments.A3ReplicationCost},
	{"A4", "ablation: sequential readahead on/off", experiments.A4ReadAhead},
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4); empty = all")
	list := flag.Bool("list", false, "list experiments and exit")
	snapshot := flag.String("snapshot", "", "write a JSON perf snapshot (unbatched + batched planes, per-phase p50/p99 + throughput) to this file and exit")
	baseline := flag.String("baseline", "", "with -snapshot: committed BENCH_PRn.json to diff against; fabric p99 regressions over 10% on either plane fail loudly")
	flag.Parse()

	if *snapshot != "" {
		cmp := experiments.RunBatchComparison(*seed)
		// MarshalIndent sorts map keys, so the file is deterministic and
		// diffs cleanly across PRs.
		out, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*snapshot, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *snapshot)
		if *baseline != "" {
			if err := diffBaseline(*baseline, cmp); err != nil {
				fmt.Fprintf(os.Stderr, "baseline check FAILED: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("baseline check ok against %s\n", *baseline)
		}
		return
	}

	if *baseline != "" {
		fmt.Fprintln(os.Stderr, "-baseline requires -snapshot")
		os.Exit(1)
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.name, r.desc)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.name] {
			continue
		}
		fmt.Printf("\n# %s — %s\n", r.name, r.desc)
		r.fn(*seed).Render(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
}

// maxFabricRegressPct is how much the fabric-phase p99 may grow over the
// committed baseline before the -baseline check fails the run.
const maxFabricRegressPct = 10.0

// diffBaseline compares the fresh comparison record against a committed
// one. Baselines in the pre-PR6 single-snapshot format are accepted and
// checked against the fresh unbatched plane only.
func diffBaseline(path string, fresh experiments.BatchComparison) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base experiments.BatchComparison
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(base.Unbatched.Phases) == 0 {
		// Old format: the whole file is one unbatched Snapshot.
		if err := json.Unmarshal(raw, &base.Unbatched); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	}
	check := func(plane string, base, fresh experiments.Snapshot) error {
		b, ok := base.Phases["fabric"]
		if !ok || b.P99Ms <= 0 {
			return nil
		}
		f := fresh.Phases["fabric"]
		growth := 100 * (f.P99Ms - b.P99Ms) / b.P99Ms
		fmt.Printf("  %s fabric p99: baseline %.3f ms, now %.3f ms (%+.1f%%)\n",
			plane, b.P99Ms, f.P99Ms, growth)
		if growth > maxFabricRegressPct {
			return fmt.Errorf("%s fabric p99 regressed %.1f%% (baseline %.3f ms → %.3f ms, limit +%.0f%%)",
				plane, growth, b.P99Ms, f.P99Ms, maxFabricRegressPct)
		}
		return nil
	}
	if err := check("unbatched", base.Unbatched, fresh.Unbatched); err != nil {
		return err
	}
	if len(base.Batched.Phases) > 0 {
		if err := check("batched", base.Batched, fresh.Batched); err != nil {
			return err
		}
	}
	if err := checkCritPath(base.Unbatched.CritPath, fresh.Unbatched.CritPath); err != nil {
		return err
	}
	if err := checkGovernor(base.Unbatched.Governor, fresh.Unbatched.Governor); err != nil {
		return err
	}
	if err := checkHotCache(base.Unbatched.HotCache, fresh.Unbatched.HotCache); err != nil {
		return err
	}
	return checkGateway(base.Unbatched.Gateway, fresh.Unbatched.Gateway)
}

// maxTailSharePts is how many percentage points a phase's share of the
// tail (p99+) cohort's critical path may grow over the baseline before
// the -baseline check fails. Shares tile 100%, so a phase newly eating
// the tail must take its points from the others — absolute-latency noise
// cancels out of the signal.
const maxTailSharePts = 5.0

// checkCritPath guards the tail latency budget: for each phase present in
// the baseline's critical-path summary, its share of the tail cohort's
// wall must not grow more than maxTailSharePts points. Pre-PR8 baselines
// carry no critpath summary and are skipped.
func checkCritPath(base, fresh experiments.CritPathSummary) error {
	if base.Ops == 0 || fresh.Ops == 0 {
		return nil
	}
	for _, name := range sortedPhaseNames(base.Phases) {
		b := base.Phases[name]
		f := fresh.Phases[name]
		growth := f.TailSharePct - b.TailSharePct
		fmt.Printf("  critpath tail share %-10s baseline %5.1f%%, now %5.1f%% (%+.1f pts)\n",
			name+":", b.TailSharePct, f.TailSharePct, growth)
		if growth > maxTailSharePts {
			return fmt.Errorf("critpath: phase %q tail share regressed %.1f pts (baseline %.1f%% → %.1f%%, limit +%.0f pts)",
				name, growth, b.TailSharePct, f.TailSharePct, maxTailSharePts)
		}
	}
	return nil
}

func sortedPhaseNames(m map[string]experiments.PhaseBudget) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// checkHotCache guards the cache tier's op tail on fast-shifting skew
// (E15Q hotcache arm): pre-PR9 baselines carry no hotcache summary and
// are skipped.
func checkHotCache(base, fresh experiments.HotCacheSummary) error {
	if base.ShiftHotP99Ms <= 0 || fresh.ShiftHotP99Ms <= 0 {
		return nil
	}
	growth := 100 * (fresh.ShiftHotP99Ms - base.ShiftHotP99Ms) / base.ShiftHotP99Ms
	fmt.Printf("  E15Q shifting hotcache p99: baseline %.3f ms, now %.3f ms (%+.1f%%)\n",
		base.ShiftHotP99Ms, fresh.ShiftHotP99Ms, growth)
	if growth > maxFabricRegressPct {
		return fmt.Errorf("E15Q shifting hotcache p99 regressed %.1f%% (baseline %.3f ms → %.3f ms, limit +%.0f%%)",
			growth, base.ShiftHotP99Ms, fresh.ShiftHotP99Ms, maxFabricRegressPct)
	}
	return nil
}

// checkGateway guards the object gateway's sharded throughput ceiling
// (E16Q, four metadata shards): unlike the latency gates this one fails
// on a DROP — the ceiling is the capacity claim. Pre-PR10 baselines
// carry no gateway summary and are skipped.
func checkGateway(base, fresh experiments.GatewaySummary) error {
	if base.ShardedCeilingOpsPerSec <= 0 || fresh.ShardedCeilingOpsPerSec <= 0 {
		return nil
	}
	drop := 100 * (base.ShardedCeilingOpsPerSec - fresh.ShardedCeilingOpsPerSec) / base.ShardedCeilingOpsPerSec
	fmt.Printf("  E16Q sharded gateway ceiling: baseline %.0f ops/s, now %.0f ops/s (%+.1f%%)\n",
		base.ShardedCeilingOpsPerSec, fresh.ShardedCeilingOpsPerSec, -drop)
	if drop > maxFabricRegressPct {
		return fmt.Errorf("E16Q sharded gateway ceiling regressed %.1f%% (baseline %.0f ops/s → %.0f ops/s, limit -%.0f%%)",
			drop, base.ShardedCeilingOpsPerSec, fresh.ShardedCeilingOpsPerSec, maxFabricRegressPct)
	}
	return nil
}

// checkGovernor guards the PI governor's victim tail: pre-PR7 baselines
// carry no governor summary and are skipped.
func checkGovernor(base, fresh experiments.GovernorSummary) error {
	if base.PIVictimP99Ms <= 0 || fresh.PIVictimP99Ms <= 0 {
		return nil
	}
	growth := 100 * (fresh.PIVictimP99Ms - base.PIVictimP99Ms) / base.PIVictimP99Ms
	fmt.Printf("  E14 PI victim p99: baseline %.3f ms, now %.3f ms (%+.1f%%)\n",
		base.PIVictimP99Ms, fresh.PIVictimP99Ms, growth)
	if growth > maxFabricRegressPct {
		return fmt.Errorf("E14 PI victim p99 regressed %.1f%% (baseline %.3f ms → %.3f ms, limit +%.0f%%)",
			growth, base.PIVictimP99Ms, fresh.PIVictimP99Ms, maxFabricRegressPct)
	}
	return nil
}
