// Command benchrunner regenerates every table and figure of the
// reproduction (E1–E13 in DESIGN.md/EXPERIMENTS.md) and prints them as
// plain-text tables.
//
// Usage:
//
//	benchrunner [-seed N] [-only E4] [-list] [-snapshot FILE]
//
// -snapshot runs the canonical traced workload and writes a JSON perf
// record (per-phase p50/p99 + throughput) instead of the tables, so each
// PR can commit a comparable BENCH_PRn.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

var runners = []struct {
	name string
	desc string
	fn   func(int64) *metrics.Table
}{
	{"E1", "Figure 1 / §2.3: single-stream rate vs striped blades", experiments.E1},
	{"E2", "§2.1: aggregate throughput scaling vs controllers", experiments.E2},
	{"E3", "§2.2: hot-spot behaviour under Zipf access", experiments.E3},
	{"E4", "§2.4: distributed rebuild", experiments.E4},
	{"E5", "§3: DMSD thin provisioning", experiments.E5},
	{"E6", "§6.1: N-way write replication", experiments.E6},
	{"E7", "§7.1: remote first touch and prefetch", experiments.E7},
	{"E8", "§7.2: sync vs async geographic replication", experiments.E8},
	{"E9", "§8.1: encryption at wire speed by parallelism", experiments.E9},
	{"E10", "§6.3: availability through blade failures", experiments.E10},
	{"E11", "§6.3: availability under a lossy fabric", experiments.E11},
	{"E12", "§2.2/§6.3: adaptive hot-spot rebalancing", experiments.E12},
	{"E13", "§2.4/§4: multi-tenant QoS isolation under rebuild", experiments.E13},
	{"E13Q", "reduced-scale QoS isolation smoke (CI)", experiments.E13Q},
	{"A1", "ablation: remote-read prefetch on/off", experiments.A1Prefetch},
	{"A2", "ablation: cache-to-cache transfers on/off", experiments.A2PeerFetch},
	{"A3", "ablation: write latency vs replication factor", experiments.A3ReplicationCost},
	{"A4", "ablation: sequential readahead on/off", experiments.A4ReadAhead},
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E4); empty = all")
	list := flag.Bool("list", false, "list experiments and exit")
	snapshot := flag.String("snapshot", "", "write a JSON perf snapshot (per-phase p50/p99 + throughput) to this file and exit")
	flag.Parse()

	if *snapshot != "" {
		snap := experiments.PerfSnapshot(*seed)
		// MarshalIndent sorts map keys, so the file is deterministic and
		// diffs cleanly across PRs.
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*snapshot, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *snapshot)
		return
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.name, r.desc)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.name] {
			continue
		}
		fmt.Printf("\n# %s — %s\n", r.name, r.desc)
		r.fn(*seed).Render(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
}
