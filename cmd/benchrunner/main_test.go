package main

import (
	"testing"

	"repro/internal/experiments"
)

// The -baseline governor gate: regressions of the E14 PI arm's victim
// p99 beyond the limit must fail, anything at or under it must pass,
// and pre-PR7 baselines (no governor summary) are skipped.
func TestCheckGovernorGate(t *testing.T) {
	base := experiments.GovernorSummary{PIVictimP99Ms: 50}
	if err := checkGovernor(base, experiments.GovernorSummary{PIVictimP99Ms: 50 * 1.09}); err != nil {
		t.Fatalf("9%% growth should pass: %v", err)
	}
	if err := checkGovernor(base, experiments.GovernorSummary{PIVictimP99Ms: 50 * 1.12}); err == nil {
		t.Fatal("12% growth should fail the gate")
	}
	if err := checkGovernor(base, experiments.GovernorSummary{PIVictimP99Ms: 40}); err != nil {
		t.Fatalf("improvement should pass: %v", err)
	}
	if err := checkGovernor(experiments.GovernorSummary{}, experiments.GovernorSummary{PIVictimP99Ms: 50}); err != nil {
		t.Fatalf("old baseline without governor summary must be skipped: %v", err)
	}
	if err := checkGovernor(base, experiments.GovernorSummary{}); err != nil {
		t.Fatalf("fresh run without governor summary must be skipped: %v", err)
	}
}

// The -baseline critical-path gate: a phase whose share of the tail
// cohort's critical path grows beyond the points limit must fail; smaller
// moves, improvements, and summary-less (pre-PR8) baselines pass.
func TestCheckCritPathGate(t *testing.T) {
	summary := func(diskTail float64) experiments.CritPathSummary {
		return experiments.CritPathSummary{
			Ops: 1000,
			Phases: map[string]experiments.PhaseBudget{
				"disk":   {TailSharePct: diskTail},
				"fabric": {TailSharePct: 100 - diskTail},
			},
		}
	}
	base := summary(60)
	if err := checkCritPath(base, summary(64)); err != nil {
		t.Fatalf("+4 pts should pass: %v", err)
	}
	if err := checkCritPath(base, summary(66)); err == nil {
		t.Fatal("+6 pts should fail the gate")
	}
	// The shares tile 100%, so disk shrinking means fabric grew — a +6 pt
	// fabric regression must trip even though disk improved.
	if err := checkCritPath(base, summary(54)); err == nil {
		t.Fatal("fabric share +6 pts should fail the gate")
	}
	if err := checkCritPath(base, summary(58)); err != nil {
		t.Fatalf("small shifts under the limit should pass: %v", err)
	}
	// A phase absent from the fresh summary reads as share 0 — an
	// improvement, never a failure.
	fresh := summary(64)
	delete(fresh.Phases, "disk")
	if err := checkCritPath(base, fresh); err != nil {
		t.Fatalf("phase vanishing from fresh run should pass: %v", err)
	}
	if err := checkCritPath(experiments.CritPathSummary{}, summary(90)); err != nil {
		t.Fatalf("pre-PR8 baseline without critpath summary must be skipped: %v", err)
	}
	if err := checkCritPath(base, experiments.CritPathSummary{}); err != nil {
		t.Fatalf("fresh run without critpath summary must be skipped: %v", err)
	}
}
