package main

import (
	"testing"

	"repro/internal/experiments"
)

// The -baseline governor gate: regressions of the E14 PI arm's victim
// p99 beyond the limit must fail, anything at or under it must pass,
// and pre-PR7 baselines (no governor summary) are skipped.
func TestCheckGovernorGate(t *testing.T) {
	base := experiments.GovernorSummary{PIVictimP99Ms: 50}
	if err := checkGovernor(base, experiments.GovernorSummary{PIVictimP99Ms: 50 * 1.09}); err != nil {
		t.Fatalf("9%% growth should pass: %v", err)
	}
	if err := checkGovernor(base, experiments.GovernorSummary{PIVictimP99Ms: 50 * 1.12}); err == nil {
		t.Fatal("12% growth should fail the gate")
	}
	if err := checkGovernor(base, experiments.GovernorSummary{PIVictimP99Ms: 40}); err != nil {
		t.Fatalf("improvement should pass: %v", err)
	}
	if err := checkGovernor(experiments.GovernorSummary{}, experiments.GovernorSummary{PIVictimP99Ms: 50}); err != nil {
		t.Fatalf("old baseline without governor summary must be skipped: %v", err)
	}
	if err := checkGovernor(base, experiments.GovernorSummary{}); err != nil {
		t.Fatalf("fresh run without governor summary must be skipped: %v", err)
	}
}
