package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
)

// newHotCacheSystem builds a script-sized system with the hot-key cache
// tier installed as the rebalancing scheme.
func newHotCacheSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Blades:    2,
		Rebalance: core.RebalanceHotCache,
		DiskSpec: disk.Spec{
			BlockSize:   4096,
			Blocks:      1 << 12,
			Seek:        5 * sim.Millisecond,
			Rotation:    3 * sim.Millisecond,
			TransferBps: 400_000_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

// TestRebalanceCommandRoundTrip drives the scheme-independent rebalance
// subcommands against a hotcache-scheme system: status → on → status →
// report → off, checking the printed output and the tier state.
func TestRebalanceCommandRoundTrip(t *testing.T) {
	sys := newHotCacheSystem(t)
	if sys.Rebalancer == nil {
		t.Fatal("hotcache scheme did not install a Rebalancer")
	}
	if sys.Rebalancer.Enabled() {
		t.Fatal("hotcache tier should start disabled")
	}
	out, errs := runScript(t, sys,
		"rebalance status",
		"rebalance on",
		"rebalance status",
		"rebalance report",
		"rebalance off",
	)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	if sys.Rebalancer.Enabled() {
		t.Fatal("rebalance off left the tier enabled")
	}
	for _, want := range []string{
		"scheme=hotcache",
		"rebalancer (hotcache) on",
		"rebalancer (hotcache) off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The report must be the full multi-line per-scheme report, not just
	// the one-line status.
	if !strings.Contains(out, "node") {
		t.Errorf("rebalance report missing per-node lines:\n%s", out)
	}
}

// TestRebalanceCommandMigrateScheme checks the same subcommands drive the
// migration balancer when that scheme is installed — the script layer is
// scheme-agnostic.
func TestRebalanceCommandMigrateScheme(t *testing.T) {
	sys, err := core.NewSystem(core.Options{
		Blades:    2,
		Rebalance: core.RebalanceMigrate,
		Telemetry: 100 * sim.Millisecond,
		DiskSpec: disk.Spec{
			BlockSize:   4096,
			Blocks:      1 << 12,
			Seek:        5 * sim.Millisecond,
			Rotation:    3 * sim.Millisecond,
			TransferBps: 400_000_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	out, errs := runScript(t, sys,
		"rebalance status",
		"rebalance off",
		"rebalance on",
	)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	if !strings.Contains(out, "scheme=migrate") {
		t.Errorf("output missing scheme=migrate:\n%s", out)
	}
	if !sys.Rebalancer.Enabled() {
		t.Error("rebalance on left the migration balancer disabled")
	}
}

// TestRebalanceCommandNoScheme: with no scheme installed the subcommands
// fail loudly, while bare `rebalance` keeps its legacy pool meaning.
func TestRebalanceCommandNoScheme(t *testing.T) {
	sys := newScriptSystem(t, false)
	if sys.Rebalancer != nil {
		t.Fatal("plain script system should have no Rebalancer")
	}
	_, errs := runScript(t, sys,
		"rebalance on",
		"rebalance",
	)
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "no rebalancing scheme") {
		t.Errorf("rebalance on without a scheme: got %v, want scheme error", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("bare rebalance (legacy pool spread) failed: %v", errs[1])
	}
}

// TestRebalanceCommandBadArgs rejects unknown subcommands with usage.
func TestRebalanceCommandBadArgs(t *testing.T) {
	sys := newHotCacheSystem(t)
	_, errs := runScript(t, sys, "rebalance sideways")
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "usage: rebalance") {
		t.Errorf("rebalance sideways: got %v, want usage error", errs[0])
	}
}
