package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/qos"
	"repro/internal/sim"
)

// newScriptSystem builds the same kind of in-memory system the yottactl
// script path uses, small enough for unit tests.
func newScriptSystem(t *testing.T, withQoS bool) *core.System {
	t.Helper()
	opts := core.Options{
		Blades: 2,
		DiskSpec: disk.Spec{
			BlockSize:   4096,
			Blocks:      1 << 12,
			Seek:        5 * sim.Millisecond,
			Rotation:    3 * sim.Millisecond,
			TransferBps: 400_000_000,
		},
	}
	if withQoS {
		opts.QoS = &qos.Config{
			Tenants: map[string]qos.TenantSpec{
				"fusion": {Rate: 2000, Burst: 256, MaxQueue: 64},
			},
		}
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

// runScript executes command lines against sys from a simulation process,
// capturing stdout, and returns the output plus any per-line errors.
func runScript(t *testing.T, sys *core.System, lines ...string) (string, []error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var errs []error
	runErr := sys.Run(0, func(p *sim.Proc) error {
		for _, line := range lines {
			errs = append(errs, execute(p, sys, line))
		}
		return nil
	})
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return string(out), errs
}

// TestQoSCommandRoundTrip: on → status → report → off through the script
// interface, checking both the printed output and the manager state.
func TestQoSCommandRoundTrip(t *testing.T) {
	sys := newScriptSystem(t, true)
	if sys.QoS.Enabled() {
		t.Fatal("qos should start disabled")
	}
	out, errs := runScript(t, sys,
		"qos status",
		"qos on",
		"qos status",
		"qos report",
		"qos off",
		"qos status",
	)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}
	if sys.QoS.Enabled() {
		t.Error("qos left enabled after `qos off`")
	}
	for _, want := range []string{
		"qos: off, lane weights",
		"qos on",
		"qos: on, lane weights",
		"1 tenant buckets",
		"tenant fusion",
		"rate 2000/s burst 256 maxq 64",
		"qos off",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestQoSCommandReportAfterTraffic: with QoS on, front-door traffic shows
// up in the report's tenant and lane accounting.
func TestQoSCommandReportAfterTraffic(t *testing.T) {
	sys := newScriptSystem(t, true)
	_, errs := runScript(t, sys, "qos on", "mkthick vols 512")
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	err := sys.Run(0, func(p *sim.Proc) error {
		qos.SetCtx(p, qos.Ctx{Tenant: "fusion"})
		tgt := &core.VolumeTarget{Cluster: sys.Cluster, Vol: "vols", Priority: 2}
		for i := int64(0); i < 8; i++ {
			if err := tgt.Write(p, i*4, 4); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, errs := runScript(t, sys, "qos report")
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if !strings.Contains(out, "admitted 8") {
		t.Errorf("report does not account the tenant's 8 ops:\n%s", out)
	}
	// The writes rode lane 2 down to the disks.
	if !strings.Contains(out, "lane fg2") {
		t.Errorf("report missing lane table:\n%s", out)
	}
	var lane2 string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "lane fg2") {
			lane2 = line
		}
	}
	if strings.Contains(lane2, "dispatched 0") {
		t.Errorf("lane fg2 saw no dispatches: %q", lane2)
	}
}

// TestQoSCommandErrors: the command degrades cleanly — usage errors for
// bad arguments, a pointed error when the system was built without QoS.
func TestQoSCommandErrors(t *testing.T) {
	sys := newScriptSystem(t, true)
	_, errs := runScript(t, sys, "qos", "qos bogus")
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "usage: qos on|off|status|report") {
			t.Errorf("command %d: err = %v, want usage error", i, err)
		}
	}

	bare := newScriptSystem(t, false)
	_, errs = runScript(t, bare, "qos on")
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "Options.QoS") {
		t.Errorf("err = %v, want missing-Options.QoS error", errs[0])
	}
}
