// Command yottactl is the administrator's view of the system (§7.3: "the
// distributed operation managed as a single site"). It builds an in-memory
// system from a scenario description, executes a script of admin commands,
// and prints the resulting state — volumes, tenants, blade health, pool
// occupancy — as one system image.
//
// Usage:
//
//	yottactl                  # run the default demo scenario
//	yottactl -script file     # run commands from a file (one per line)
//	yottactl trace [flags]    # run a traced workload, export the trace
//	yottactl top [flags]      # live per-blade dashboard over a workload
//	yottactl telemetry [flags]# run a scraped workload, export telemetry
//
// The trace subcommand drives a mixed read/write client population with
// per-operation tracing on and writes a Chrome trace_event file (load in
// chrome://tracing or https://ui.perfetto.dev) plus optional JSONL:
//
//	yottactl trace -seed 7 -blades 8 -out trace.json -jsonl trace.jsonl
//
// The top subcommand drives the same workload with the telemetry scraper
// on and renders a per-blade table (ops/s, cache hit rate, retries,
// degraded ops, load sparkline) refreshed every -refresh-ms of virtual
// time, with watchdog alarms inlined as they fire:
//
//	yottactl top -seed 1 -blades 4 -ms 2000 -refresh-ms 250
//
// The telemetry subcommand runs the workload headless and exports the
// artifacts instead: -jsonl (scrape timeline), -events (watchdog events),
// -prom (final values in Prometheus text format), plus a report and
// per-blade skew table on stdout. Same seed → byte-identical exports.
//
// Commands (one per line; '#' starts a comment):
//
//	mkvol <name> <extents>          create a DMSD
//	mkthick <name> <blocks>         create a thick volume
//	rmvol <name>                    delete a volume
//	snapshot <src> <dst>            point-in-time copy
//	mkdir <path>                    create a directory
//	put <path> <text...>            write a file
//	get <path>                      print a file
//	policy <path> prio=N repl=N     set file policy
//	tenant <name>                   create tenant + token
//	grant <lun> <tenant> <ro|rw>    LUN mask entry
//	export <lun> <volume>           publish a volume as a LUN
//	failblade <id>                  kill a controller blade
//	revive <id>                     bring a blade back
//	faults <drop%> <dup%> <delay%> <maxdelay-ms>   inject fabric faults
//	faults off                      disable fault injection
//	faildisk <group> <idx>          fail a drive
//	rebuild <group> <idx>           distributed rebuild
//	clone <src> <dst>               distributed mirror creation
//	evacuate <device>               migrate all extents off a device
//	rebalance                       even extent load across devices
//	rebalance on|off                toggle the installed load-spreading scheme
//	rebalance status                scheme name + counters
//	rebalance report                scheme name + full per-scheme report
//	balance on|off                  toggle the adaptive hot-spot rebalancer
//	balance status                  rebalancer thresholds + counters
//	balance report                  counters plus the home-migration log
//	qos on|off                      toggle admission control + fair queueing
//	qos status                      switch state, lane weights, bucket count
//	qos report                      tenants, governor, per-lane occupancy
//	batch on|off                    toggle fabric frame coalescing + vector ops
//	batch status                    frame/message counts, occupancy, delay p99
//	trace on|off                    toggle per-op tracing
//	trace status                    span counts per phase so far
//	trace export chrome <file>      write Chrome trace_event JSON
//	trace export jsonl <file>       write one span per line as JSONL
//	analyze                         critical-path attribution tables over
//	                                the traced ops (budget + tail diagnosis)
//	analyze folded <file>           export the aggregate critical path as
//	                                stacks.folded (flame-graph input)
//	critpath <traceid>              render one op's critical path
//	critpath                        same, for the op-latency p99 exemplar
//	top                             one dashboard frame (per-blade load)
//	telemetry status                registry size + scraper coverage
//	telemetry report                scrape summary + watchdog events
//	telemetry export prom <file>    current values, Prometheus text format
//	telemetry export jsonl <file>   scrape timeline as JSONL
//	telemetry export events <file>  watchdog events as JSONL
//	gateway status                  object-gateway one-line summary
//	gateway buckets                 bucket table (owner, shard, objects)
//	gateway report                  full three-tier report (iam/meta/data)
//	gateway mkbucket <tenant> <bkt> create a bucket as the tenant
//	gateway put <tenant> <bkt> <key> <text...>   write an object
//	gateway get <tenant> <bkt> <key>             print an object
//	gateway ls <tenant> <bkt> [prefix]           list objects
//	status                          print system status
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/critpath"
	"repro/internal/disk"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

const defaultScript = `
# --- default demo scenario: a lab pool administered as one system ---
status
mkvol projects 4096
mkthick scratch 2048
tenant fusion
export fusion-lun projects
grant fusion-lun fusion rw
mkdir /labs/fusion
put /labs/fusion/readme.txt shared storage for the whole lab
policy /labs/fusion/readme.txt prio=3 repl=3
get /labs/fusion/readme.txt
snapshot projects projects@t0
clone fs.default fs-mirror
rebalance
faildisk 0 1
rebuild 0 1
failblade 2
status
revive 2
status
top
telemetry status
balance status
rebalance status
rebalance report
qos on
qos status
qos report
gateway mkbucket fusion results
gateway put fusion results run/001.txt first shot data
gateway ls fusion results run/
gateway status
gateway report
`

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			runTrace(os.Args[2:])
			return
		case "top":
			runTop(os.Args[2:])
			return
		case "telemetry":
			runTelemetry(os.Args[2:])
			return
		}
	}

	scriptPath := flag.String("script", "", "command script (default: built-in demo)")
	flag.Parse()

	// Demo-scale drives (256 MiB each) keep interactive rebuilds quick.
	// Tracing is attached but off until a script says `trace on`; the
	// telemetry scraper runs throughout so `top` and `telemetry` commands
	// have a window to show.
	sys, err := core.NewSystem(core.Options{
		DiskSpec: disk.Spec{
			BlockSize:   4096,
			Blocks:      1 << 16,
			Seek:        5 * sim.Millisecond,
			Rotation:    3 * sim.Millisecond,
			TransferBps: 400_000_000,
		},
		Trace:      true,
		Telemetry:  100 * sim.Millisecond,
		SLOReadP99: 50 * sim.Millisecond,
		Balance:    true,
		// QoS plumbing is installed but disabled until a script says
		// `qos on`. The demo tenant's bucket is sized small enough that a
		// busy script can see delays in `qos report`, and its SLOP99 gives
		// the PI governor a per-tenant loop to show in the report.
		QoS: &qos.Config{
			Tenants: map[string]qos.TenantSpec{
				"fusion": {Rate: 2000, Burst: 256, MaxQueue: 64, SLOP99: 50 * sim.Millisecond},
			},
		},
		// Object gateway: S3-style front door over the same pfs
		// namespace, with 2 metadata shards so `gateway report` shows
		// the shard split in the demo.
		Gateway: &gateway.Config{MetaShards: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Tracer.SetEnabled(false)
	// The rebalancer is attached but parked until a script says
	// `balance on` — admin scripts opt in to home migrations.
	sys.Balancer.SetEnabled(false)
	defer sys.Stop()

	var lines []string
	if *scriptPath == "" {
		lines = strings.Split(defaultScript, "\n")
	} else {
		f, err := os.Open(*scriptPath)
		if err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		f.Close()
	}

	err = sys.Run(0, func(p *sim.Proc) error {
		for _, line := range lines {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fmt.Printf("yotta> %s\n", line)
			if err := execute(p, sys, line); err != nil {
				fmt.Printf("  error: %v\n", err)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func execute(p *sim.Proc, sys *core.System, line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	atoi := func(s string) int64 {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return -1
		}
		return v
	}
	switch cmd {
	case "mkvol":
		if len(args) != 2 {
			return fmt.Errorf("usage: mkvol <name> <extents>")
		}
		_, err := sys.Cluster.CreateDMSD("default", args[0], atoi(args[1]))
		return err
	case "mkthick":
		if len(args) != 2 {
			return fmt.Errorf("usage: mkthick <name> <blocks>")
		}
		_, err := sys.Cluster.CreateVolume("default", args[0], atoi(args[1]))
		return err
	case "rmvol":
		if len(args) != 1 {
			return fmt.Errorf("usage: rmvol <name>")
		}
		return sys.Cluster.Pool.Delete(args[0])
	case "snapshot":
		if len(args) != 2 {
			return fmt.Errorf("usage: snapshot <src> <dst>")
		}
		v, ok := sys.Cluster.Pool.Volumes()[args[0]]
		if !ok {
			return fmt.Errorf("no volume %q", args[0])
		}
		_, err := v.SnapshotAs(args[1])
		return err
	case "mkdir":
		return sys.FS.MkdirAll(args[0])
	case "put":
		if len(args) < 2 {
			return fmt.Errorf("usage: put <path> <text>")
		}
		return sys.FS.WriteFile(p, args[0], []byte(strings.Join(args[1:], " ")), pfs.Policy{})
	case "get":
		data, err := sys.FS.ReadFile(p, args[0])
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", data)
		return nil
	case "policy":
		if len(args) < 2 {
			return fmt.Errorf("usage: policy <path> prio=N repl=N")
		}
		pol, err := sys.FS.Policy(args[0])
		if err != nil {
			return err
		}
		for _, kv := range args[1:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				continue
			}
			switch parts[0] {
			case "prio":
				pol.CachePriority = int(atoi(parts[1]))
			case "repl":
				pol.ReplicationN = int(atoi(parts[1]))
			case "class":
				pol.Class = parts[1]
			}
		}
		return sys.FS.SetPolicy(args[0], pol)
	case "tenant":
		if _, err := sys.Auth.CreateTenant(args[0]); err != nil {
			return err
		}
		tok, err := sys.Auth.Issue(args[0], 24*3600*sim.Second)
		if err != nil {
			return err
		}
		fmt.Printf("  token: %s\n", tok)
		return nil
	case "export":
		if len(args) != 2 {
			return fmt.Errorf("usage: export <lun> <volume>")
		}
		sys.BlockGateway.ExportLUN(args[0], args[1])
		return nil
	case "grant":
		if len(args) != 3 {
			return fmt.Errorf("usage: grant <lun> <tenant> <ro|rw>")
		}
		access := security.ReadOnly
		if args[2] == "rw" {
			access = security.ReadWrite
		}
		sys.Mask.Allow(args[0], args[1], access)
		return nil
	case "faults":
		if len(args) == 1 && args[0] == "off" {
			sys.Cluster.SetFaultPlan(simnet.FaultPlan{})
			fmt.Println("  fault injection disabled")
			return nil
		}
		if len(args) != 4 {
			return fmt.Errorf("usage: faults <drop%%> <dup%%> <delay%%> <maxdelay-ms> | faults off")
		}
		pct := func(s string) (float64, error) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v < 0 || v > 100 {
				return 0, fmt.Errorf("bad percentage %q", s)
			}
			return v / 100, nil
		}
		var plan simnet.FaultPlan
		var err error
		if plan.DropProb, err = pct(args[0]); err != nil {
			return err
		}
		if plan.DupProb, err = pct(args[1]); err != nil {
			return err
		}
		if plan.DelayProb, err = pct(args[2]); err != nil {
			return err
		}
		ms, err := strconv.ParseFloat(args[3], 64)
		if err != nil || ms < 0 {
			return fmt.Errorf("bad max delay %q", args[3])
		}
		plan.MaxExtraDelay = sim.Duration(ms * float64(sim.Millisecond))
		sys.Cluster.SetFaultPlan(plan)
		fmt.Printf("  fault plan: drop %s%% dup %s%% delay %s%% (max +%v) on every fabric link\n",
			args[0], args[1], args[2], plan.MaxExtraDelay)
		return nil
	case "failblade":
		return sys.Cluster.FailBlade(p, int(atoi(args[0])))
	case "revive":
		return sys.Cluster.ReviveBlade(p, int(atoi(args[0])))
	case "faildisk":
		g, d := int(atoi(args[0])), int(atoi(args[1]))
		if g < 0 || g >= len(sys.Cluster.Groups) {
			return fmt.Errorf("no group %d", g)
		}
		sys.Cluster.Groups[g].Disks()[d].Fail()
		return nil
	case "clone":
		if len(args) != 2 {
			return fmt.Errorf("usage: clone <src> <dst>")
		}
		t0 := p.Now()
		n, err := sys.Cluster.DistributedClone(p, "default", args[0], args[1])
		if err != nil {
			return err
		}
		fmt.Printf("  cloned %d extents in %v\n", n, p.Now().Sub(t0))
		return nil
	case "evacuate":
		if len(args) != 1 {
			return fmt.Errorf("usage: evacuate <device>")
		}
		moved, err := sys.Cluster.Pool.Evacuate(p, int(atoi(args[0])))
		if err != nil {
			return err
		}
		fmt.Printf("  migrated %d extents off device %s\n", moved, args[0])
		return nil
	case "rebalance":
		// Bare `rebalance` keeps its original meaning: spread extents
		// across pool devices. With a subcommand it drives the installed
		// load-spreading scheme (migration balancer or hot-key cache
		// tier) through the scheme-independent Rebalancer interface.
		if len(args) == 0 {
			moved, err := sys.Cluster.Pool.Rebalance(p, 2)
			if err != nil {
				return err
			}
			fmt.Printf("  moved %d extents; device load now %v\n", moved, sys.Cluster.Pool.DeviceLoad())
			return nil
		}
		if len(args) != 1 {
			return fmt.Errorf("usage: rebalance [on|off|status|report]")
		}
		if sys.Rebalancer == nil {
			return fmt.Errorf("no rebalancing scheme installed (Options.Rebalance off)")
		}
		switch args[0] {
		case "on":
			sys.Rebalancer.SetEnabled(true)
			fmt.Printf("  rebalancer (%s) on\n", sys.Rebalancer.Scheme())
			return nil
		case "off":
			sys.Rebalancer.SetEnabled(false)
			fmt.Printf("  rebalancer (%s) off\n", sys.Rebalancer.Scheme())
			return nil
		case "status":
			fmt.Printf("  scheme=%s %s\n", sys.Rebalancer.Scheme(), sys.Rebalancer.Status())
			return nil
		case "report":
			fmt.Printf("  %s\n", strings.ReplaceAll(strings.TrimRight(sys.Rebalancer.Report(), "\n"), "\n", "\n  "))
			return nil
		default:
			return fmt.Errorf("usage: rebalance [on|off|status|report]")
		}
	case "rebuild":
		g, d := int(atoi(args[0])), int(atoi(args[1]))
		t0 := p.Now()
		if err := sys.Cluster.DistributedRebuild(p, g, d); err != nil {
			return err
		}
		fmt.Printf("  rebuild complete in %v\n", p.Now().Sub(t0))
		return nil
	case "trace":
		if len(args) == 0 {
			return fmt.Errorf("usage: trace on|off|status | trace export chrome|jsonl <file>")
		}
		switch args[0] {
		case "on":
			sys.Tracer.SetEnabled(true)
			fmt.Println("  tracing on")
			return nil
		case "off":
			sys.Tracer.SetEnabled(false)
			fmt.Println("  tracing off")
			return nil
		case "status":
			fmt.Printf("  %s\n", sys.Tracer.Summary())
			for _, pc := range sys.Tracer.PhaseCounts() {
				fmt.Printf("    %s\n", pc)
			}
			return nil
		case "export":
			if len(args) != 3 {
				return fmt.Errorf("usage: trace export chrome|jsonl <file>")
			}
			f, err := os.Create(args[2])
			if err != nil {
				return err
			}
			defer f.Close()
			switch args[1] {
			case "chrome":
				err = sys.Tracer.WriteChrome(f)
			case "jsonl":
				err = sys.Tracer.WriteJSONL(f)
			default:
				return fmt.Errorf("unknown trace format %q (chrome or jsonl)", args[1])
			}
			if err == nil {
				fmt.Printf("  wrote %s\n", args[2])
			}
			return err
		default:
			return fmt.Errorf("usage: trace on|off|status | trace export chrome|jsonl <file>")
		}
	case "analyze":
		a := critpath.FromTracer(sys.Tracer)
		if len(args) == 2 && args[0] == "folded" {
			f, err := os.Create(args[1])
			if err != nil {
				return err
			}
			defer f.Close()
			if err := a.WriteFolded(f); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", args[1])
			return nil
		}
		if len(args) != 0 {
			return fmt.Errorf("usage: analyze | analyze folded <file>")
		}
		fmt.Printf("  %s\n", a.Summary())
		if len(a.Ops) == 0 {
			fmt.Println("  no complete op traces — run with `trace on` first")
			return nil
		}
		if err := a.Check(); err != nil {
			return err
		}
		indent := func(s string) { fmt.Printf("  %s\n", strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")) }
		indent(a.BudgetTable("critical-path latency budget").String())
		indent(a.TailTable("tail diagnosis — median vs p99+ ops").String())
		return nil
	case "critpath":
		a := critpath.FromTracer(sys.Tracer)
		var id uint64
		switch len(args) {
		case 0:
			ex, ok := sys.Registry.ExemplarFor("cluster/op_latency", 0.99)
			if !ok {
				return fmt.Errorf("no op-latency exemplars yet — run traced ops first")
			}
			id = ex.Trace
			fmt.Printf("  p99 exemplar: trace %d (%.3f ms)\n", ex.Trace, ex.Value.Millis())
		case 1:
			v, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				return fmt.Errorf("bad trace id %q", args[0])
			}
			id = v
		default:
			return fmt.Errorf("usage: critpath [traceid]")
		}
		var buf strings.Builder
		if err := a.RenderPath(&buf, id); err != nil {
			return err
		}
		fmt.Printf("  %s\n", strings.ReplaceAll(strings.TrimRight(buf.String(), "\n"), "\n", "\n  "))
		return nil
	case "balance":
		if len(args) != 1 {
			return fmt.Errorf("usage: balance on|off|status|report")
		}
		if sys.Balancer == nil {
			return fmt.Errorf("rebalancer off (system built without Options.Balance)")
		}
		switch args[0] {
		case "on":
			sys.Balancer.SetEnabled(true)
			fmt.Println("  rebalancer on")
			return nil
		case "off":
			sys.Balancer.SetEnabled(false)
			fmt.Println("  rebalancer off")
			return nil
		case "status":
			cfg := sys.Balancer.Config()
			st := sys.Balancer.Stats()
			fmt.Printf("  rebalancer: enabled=%v interval=%v thresholds CV>%.2f max/mean>%.2f for %d intervals\n",
				sys.Balancer.Enabled(), cfg.Interval, cfg.CVMax, cfg.RatioMax, cfg.For)
			fmt.Printf("  ticks %d, bursts %d, migrations %d, skipped %d\n",
				st.Ticks, st.Bursts, st.Migrations, st.Skipped)
			return nil
		case "report":
			fmt.Printf("  %s\n", strings.ReplaceAll(sys.Balancer.Report(), "\n", "\n  "))
			return nil
		default:
			return fmt.Errorf("usage: balance on|off|status|report")
		}
	case "qos":
		if len(args) != 1 {
			return fmt.Errorf("usage: qos on|off|status|report")
		}
		if sys.QoS == nil {
			return fmt.Errorf("qos off (system built without Options.QoS)")
		}
		switch args[0] {
		case "on":
			sys.QoS.SetEnabled(true)
			fmt.Println("  qos on")
			return nil
		case "off":
			sys.QoS.SetEnabled(false)
			fmt.Println("  qos off")
			return nil
		case "status":
			state := "off"
			if sys.QoS.Enabled() {
				state = "on"
			}
			w := sys.QoS.Weights()
			fmt.Printf("  qos: %s, lane weights fg %.3g/%.3g/%.3g/%.3g bg %.3g, %d tenant buckets\n",
				state, w[0], w[1], w[2], w[3], w[4], len(sys.QoS.Admission().Stats()))
			return nil
		case "report":
			fmt.Printf("  %s\n", strings.ReplaceAll(strings.TrimRight(sys.QoS.Report(), "\n"), "\n", "\n  "))
			return nil
		default:
			return fmt.Errorf("usage: qos on|off|status|report")
		}
	case "batch":
		if len(args) != 1 {
			return fmt.Errorf("usage: batch on|off|status")
		}
		switch args[0] {
		case "on":
			sys.Cluster.SetFabricBatch(true)
			fmt.Println("  fabric batching on")
			return nil
		case "off":
			sys.Cluster.SetFabricBatch(false)
			fmt.Println("  fabric batching off")
			return nil
		case "status":
			state := "off"
			if sys.Cluster.FabricBatched() {
				state = "on"
			}
			var bs simnet.BatchStats
			var occMean, occP99, delayP99 float64
			for _, b := range sys.Cluster.Blades {
				st := b.Conn.BatchStats()
				bs.Frames += st.Frames
				bs.Messages += st.Messages
				bs.Piggybacked += st.Piggybacked
				if h := b.Conn.OccupancyHistogram(); h != nil && h.Count() > 0 {
					occMean += float64(h.Mean())
					occP99 += float64(h.Quantile(0.99))
				}
				if h := b.Conn.BatchDelayHistogram(); h != nil && h.Count() > 0 {
					if d := float64(h.Quantile(0.99)) / float64(sim.Millisecond); d > delayP99 {
						delayP99 = d
					}
				}
			}
			n := float64(len(sys.Cluster.Blades))
			fmt.Printf("  fabric batching: %s, %d frames carrying %d messages (%d piggybacked)\n",
				state, bs.Frames, bs.Messages, bs.Piggybacked)
			if bs.Frames > 0 {
				fmt.Printf("  occupancy mean %.2f p99 %.1f msgs/frame, batching delay p99 %.3f ms\n",
					occMean/n, occP99/n, delayP99)
			}
			return nil
		default:
			return fmt.Errorf("usage: batch on|off|status")
		}
	case "gateway":
		if sys.Gateway == nil {
			return fmt.Errorf("object gateway off (system built without Options.Gateway)")
		}
		if len(args) == 0 {
			return fmt.Errorf("usage: gateway status|buckets|report | gateway mkbucket|put|get|ls ...")
		}
		// Admin commands act as the named tenant: a short-lived token is
		// minted through the same Authority the gateway's IAM tier uses,
		// so admin traffic exercises the real auth path (and shows up in
		// the audit log like any client).
		mint := func(tenant string) (string, error) {
			return sys.Auth.Issue(tenant, 3600*sim.Second)
		}
		switch args[0] {
		case "status":
			fmt.Printf("  %s\n", sys.Gateway.Status())
			return nil
		case "buckets":
			buckets := sys.Gateway.Buckets()
			if len(buckets) == 0 {
				fmt.Println("  no buckets")
				return nil
			}
			for _, b := range buckets {
				ver := ""
				if b.Versioning {
					ver = " versioned"
				}
				fmt.Printf("  %-20s owner=%-12s shard=%d objects=%d bytes=%d%s\n",
					b.Name, b.Owner, b.Shard, b.Objects, b.Bytes, ver)
			}
			return nil
		case "report":
			fmt.Printf("  %s\n", strings.ReplaceAll(strings.TrimRight(sys.Gateway.Report(), "\n"), "\n", "\n  "))
			return nil
		case "mkbucket":
			if len(args) != 3 {
				return fmt.Errorf("usage: gateway mkbucket <tenant> <bucket>")
			}
			tok, err := mint(args[1])
			if err != nil {
				return err
			}
			return sys.Gateway.CreateBucket(p, tok, args[2], gateway.BucketOptions{Priority: -1})
		case "put":
			if len(args) < 5 {
				return fmt.Errorf("usage: gateway put <tenant> <bucket> <key> <text>")
			}
			tok, err := mint(args[1])
			if err != nil {
				return err
			}
			ver, err := sys.Gateway.PutObject(p, tok, args[2], args[3], []byte(strings.Join(args[4:], " ")))
			if err != nil {
				return err
			}
			fmt.Printf("  put %s/%s: %d bytes, version %d\n", args[2], args[3], ver.Size, ver.Seq)
			return nil
		case "get":
			if len(args) != 4 {
				return fmt.Errorf("usage: gateway get <tenant> <bucket> <key>")
			}
			tok, err := mint(args[1])
			if err != nil {
				return err
			}
			data, _, err := sys.Gateway.GetObject(p, tok, args[2], args[3])
			if err != nil {
				return err
			}
			fmt.Printf("  %s\n", data)
			return nil
		case "ls":
			if len(args) < 3 || len(args) > 4 {
				return fmt.Errorf("usage: gateway ls <tenant> <bucket> [prefix]")
			}
			tok, err := mint(args[1])
			if err != nil {
				return err
			}
			prefix := ""
			if len(args) == 4 {
				prefix = args[3]
			}
			rows, truncated, err := sys.Gateway.ListObjects(p, tok, args[2], prefix, "", 100)
			if err != nil {
				return err
			}
			for _, row := range rows {
				fmt.Printf("  %-32s %8d bytes  seq %d\n", row.Key, row.Size, row.Seq)
			}
			if truncated {
				fmt.Println("  ... (truncated at 100)")
			}
			return nil
		default:
			return fmt.Errorf("usage: gateway status|buckets|report | gateway mkbucket|put|get|ls ...")
		}
	case "top":
		printTopFrame(sys, 0)
		return nil
	case "telemetry":
		if len(args) == 0 {
			return fmt.Errorf("usage: telemetry status|report | telemetry export prom|jsonl|events <file>")
		}
		switch args[0] {
		case "status":
			fmt.Printf("  registry: %d series\n", sys.Registry.Len())
			if sys.Scraper == nil {
				fmt.Println("  scraper: off")
				return nil
			}
			fmt.Printf("  scraper: %d scrapes every %v covering %v; %d watchdog events\n",
				sys.Scraper.Scrapes(), sys.Scraper.Interval(), sys.Scraper.Window(), len(sys.Scraper.Events()))
			return nil
		case "report":
			if sys.Scraper == nil {
				return fmt.Errorf("scraper off (system built without Options.Telemetry)")
			}
			fmt.Printf("  %s\n", sys.Scraper.Report())
			return nil
		case "export":
			if len(args) != 3 {
				return fmt.Errorf("usage: telemetry export prom|jsonl|events <file>")
			}
			f, err := os.Create(args[2])
			if err != nil {
				return err
			}
			defer f.Close()
			switch args[1] {
			case "prom":
				err = sys.Registry.WriteProm(f)
			case "jsonl":
				if sys.Scraper == nil {
					return fmt.Errorf("scraper off")
				}
				err = sys.Scraper.WriteJSONL(f)
			case "events":
				if sys.Scraper == nil {
					return fmt.Errorf("scraper off")
				}
				err = sys.Scraper.WriteEventsJSONL(f)
			default:
				return fmt.Errorf("unknown telemetry format %q (prom, jsonl or events)", args[1])
			}
			if err == nil {
				fmt.Printf("  wrote %s\n", args[2])
			}
			return err
		default:
			return fmt.Errorf("usage: telemetry status|report | telemetry export prom|jsonl|events <file>")
		}
	case "status":
		printStatus(sys)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printTopFrame renders one `top` frame — the per-blade dashboard table —
// from the scraper's retained window, and reports any watchdog events past
// seenEvents. Returns the new events high-water mark.
func printTopFrame(sys *core.System, seenEvents int) int {
	c := sys.Cluster
	s := sys.Scraper
	if s == nil || s.Scrapes() == 0 {
		fmt.Println("  no telemetry window yet (scraper off or nothing scraped)")
		return seenEvents
	}
	last := func(name string) float64 {
		d := s.DeltaSeries(name)
		if len(d) == 0 {
			return 0
		}
		return d[len(d)-1]
	}
	secs := s.Interval().Seconds()
	p99, _ := sys.Registry.Value("cluster/op_latency/p99_ms")
	fmt.Printf("  yotta top — t=%.0fms  ops/s %.0f  p99 %.2f ms  blades %d/%d alive\n",
		c.K.Now().Seconds()*1e3, last("cluster/ops")/secs, p99, len(c.Alive()), len(c.Blades))
	fmt.Printf("  %-5s %9s %6s %8s %9s  %s\n", "blade", "ops/s", "hit%", "retries", "degraded", "load")
	for i := range c.Blades {
		pre := fmt.Sprintf("blade/%d", i)
		hits, misses := last(pre+"/cache/hits"), last(pre+"/cache/misses")
		hitPct := 0.0
		if hits+misses > 0 {
			hitPct = 100 * hits / (hits + misses)
		}
		load := s.DeltaSeries(pre + "/ops")
		if len(load) > 30 { // keep the sparkline terminal-width friendly
			load = load[len(load)-30:]
		}
		fmt.Printf("  %-5d %9.0f %6.1f %8.0f %9.0f  %s\n",
			i, last(pre+"/ops")/secs, hitPct,
			last(pre+"/rpc/retries"), last(pre+"/coh/degraded_ops"),
			metrics.Sparkline(load))
	}
	for _, ev := range s.Events()[seenEvents:] {
		fmt.Printf("  ! %s\n", ev)
	}
	return len(s.Events())
}

// runTrace implements `yottactl trace`: warm an untraced cluster, run a
// traced measurement window, and export the spans.
func runTrace(argv []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed (same seed → byte-identical trace)")
	blades := fs.Int("blades", 4, "controller blades")
	clients := fs.Int("clients", 8, "closed-loop clients")
	window := fs.Int64("ms", 500, "traced window, ms of virtual time")
	out := fs.String("out", "trace.json", "Chrome trace_event output (chrome://tracing, ui.perfetto.dev)")
	jsonl := fs.String("jsonl", "", "also write one span per line as JSONL")
	fs.Parse(argv)

	sys, err := core.NewSystem(core.Options{Seed: *seed, Blades: *blades, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	// Trace only the measurement window, not prefill/warm-up.
	sys.Tracer.SetEnabled(false)

	const ws = 4 << 10 // working set, blocks
	target := &core.VolumeTarget{Cluster: sys.Cluster, Vol: "fs.default"}
	err = sys.Run(0, func(p *sim.Proc) error {
		for lba := int64(0); lba < ws; lba += 256 {
			if err := target.Write(p, lba, 256); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(d sim.Duration) *workload.Runner {
		r := &workload.Runner{
			K:       sys.K,
			Clients: *clients,
			Target:  target,
			Pattern: func(int) workload.Pattern {
				return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0.25}
			},
			Duration: d,
		}
		r.Run()
		return r
	}
	run(sim.Second) // warm caches untraced
	sys.Tracer.SetEnabled(true)
	r := run(sim.Duration(*window) * sim.Millisecond)
	sys.Tracer.SetEnabled(false)
	sys.Stop()

	write := func(path string, fn func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write(*out, sys.Tracer.WriteChrome)
	if *jsonl != "" {
		write(*jsonl, sys.Tracer.WriteJSONL)
	}

	fmt.Printf("%d ops, %.1f MB/s, mean %.3f ms, p99 %.3f ms over %d ms traced\n",
		r.Ops, r.Bytes.MBps(), r.Latency.Mean().Millis(), r.Latency.P99().Millis(), *window)
	fmt.Printf("%s\n", sys.Tracer.Summary())
	sys.Tracer.BreakdownTable("per-phase latency").Render(os.Stdout)
}

// prepSystem builds a system with the telemetry scraper on and prefills
// the default volume — the shared setup of the top and telemetry
// subcommands.
func prepSystem(seed int64, blades int, interval sim.Duration) (*core.System, *core.VolumeTarget, int64) {
	sys, err := core.NewSystem(core.Options{
		Seed: seed, Blades: blades,
		Telemetry:  interval,
		SLOReadP99: 50 * sim.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	const ws = 4 << 10 // working set, blocks
	target := &core.VolumeTarget{Cluster: sys.Cluster, Vol: "fs.default"}
	err = sys.Run(0, func(p *sim.Proc) error {
		for lba := int64(0); lba < ws; lba += 256 {
			if err := target.Write(p, lba, 256); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return sys, target, ws
}

// runTop implements `yottactl top`: a live per-blade dashboard refreshed
// in virtual time while a closed-loop workload drives the cluster.
func runTop(argv []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	blades := fs.Int("blades", 4, "controller blades")
	clients := fs.Int("clients", 8, "closed-loop clients")
	total := fs.Int64("ms", 2000, "workload length, ms of virtual time")
	refresh := fs.Int64("refresh-ms", 250, "dashboard refresh, ms of virtual time")
	fs.Parse(argv)
	if *refresh <= 0 || *total <= 0 {
		log.Fatal("ms and refresh-ms must be positive")
	}

	interval := sim.Duration(*refresh) * sim.Millisecond
	sys, target, ws := prepSystem(*seed, *blades, interval)
	r := &workload.Runner{
		K:       sys.K,
		Clients: *clients,
		Target:  target,
		Pattern: func(int) workload.Pattern {
			return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0.25}
		},
		Duration: sim.Duration(*total) * sim.Millisecond,
	}
	r.Start()
	seen := 0
	for f := int64(0); f < *total / *refresh; f++ {
		sys.K.RunFor(interval)
		seen = printTopFrame(sys, seen)
		fmt.Println()
	}
	sys.Stop()
	fmt.Printf("%s\n", sys.Scraper.Report())
}

// runTelemetry implements `yottactl telemetry`: the same scraped workload
// headless, exporting the timeline/events/prom artifacts plus a report.
func runTelemetry(argv []string) {
	fs := flag.NewFlagSet("telemetry", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed (same seed → byte-identical exports)")
	blades := fs.Int("blades", 4, "controller blades")
	clients := fs.Int("clients", 8, "closed-loop clients")
	total := fs.Int64("ms", 2000, "workload length, ms of virtual time")
	intervalMs := fs.Int64("interval-ms", 100, "scrape interval, ms of virtual time")
	jsonl := fs.String("jsonl", "", "write the scrape timeline as JSONL to this file")
	events := fs.String("events", "", "write watchdog events as JSONL to this file")
	prom := fs.String("prom", "", "write final values in Prometheus text format to this file")
	fs.Parse(argv)
	if *intervalMs <= 0 || *total <= 0 {
		log.Fatal("ms and interval-ms must be positive")
	}

	sys, target, ws := prepSystem(*seed, *blades, sim.Duration(*intervalMs)*sim.Millisecond)
	r := &workload.Runner{
		K:       sys.K,
		Clients: *clients,
		Target:  target,
		Pattern: func(int) workload.Pattern {
			return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0.25}
		},
		Duration: sim.Duration(*total) * sim.Millisecond,
	}
	r.Run()
	sys.Stop()

	write := func(path string, fn func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write(*jsonl, sys.Scraper.WriteJSONL)
	write(*events, sys.Scraper.WriteEventsJSONL)
	write(*prom, sys.Registry.WriteProm)

	fmt.Printf("%d ops, %.1f MB/s over %d ms\n", r.Ops, r.Bytes.MBps(), *total)
	fmt.Printf("%s\n", sys.Scraper.Report())
	sys.Scraper.SkewTable("per-blade load", "blade/*/ops").Render(os.Stdout)
}

func printStatus(sys *core.System) {
	c := sys.Cluster
	fmt.Printf("  t=%v\n", c.K.Now())
	fmt.Printf("  blades: %d total, %v alive\n", len(c.Blades), c.Alive())
	if tot := c.FabricTotals(); tot.RPC.Timeouts+tot.RPC.Retries+tot.RPC.GaveUp+tot.DegradedOps+tot.WritebackErrors > 0 || c.Net.FaultsActive() {
		fmt.Printf("  fabric: %d timeouts, %d retries, %d gave-up calls, %d degraded ops, %d writeback errors\n",
			tot.RPC.Timeouts, tot.RPC.Retries, tot.RPC.GaveUp, tot.DegradedOps, tot.WritebackErrors)
		f := c.Net.Faults
		fmt.Printf("  injected faults: %d dropped, %d duplicated, %d delayed\n",
			f.Dropped, f.Duplicated, f.Delayed)
	}
	healthy := 0
	for _, d := range c.Farm.Disks {
		if !d.Failed() {
			healthy++
		}
	}
	fmt.Printf("  disks: %d/%d healthy across %d RAID groups\n",
		healthy, len(c.Farm.Disks), len(c.Groups))
	pool := c.Pool
	fmt.Printf("  pool: %s allocated of %s (%d volumes)\n",
		metrics.FormatBytes(pool.AllocatedBytes()),
		metrics.FormatBytes(pool.TotalExtents()*pool.ExtentBytes()),
		len(pool.Volumes()))
	var names []string
	for name := range pool.Volumes() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := pool.Volumes()[name]
		fmt.Printf("    %-16s %-8s mapped %s\n", name, v.Kind(),
			metrics.FormatBytes(v.PhysicalBytes()))
	}
}
