package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sim"
)

// newTracedScriptSystem is newScriptSystem with per-op tracing attached
// (off until a script says `trace on`), the shape the analyze/critpath
// commands need.
func newTracedScriptSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Blades: 2,
		Trace:  true,
		DiskSpec: disk.Spec{
			BlockSize:   4096,
			Blocks:      1 << 12,
			Seek:        5 * sim.Millisecond,
			Rotation:    3 * sim.Millisecond,
			TransferBps: 400_000_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Tracer.SetEnabled(false)
	t.Cleanup(sys.Stop)
	return sys
}

// TestAnalyzeCommand: traced ops → analyze renders the budget and tail
// tables, and the folded export writes flame-graph input.
func TestAnalyzeCommand(t *testing.T) {
	sys := newTracedScriptSystem(t)
	folded := filepath.Join(t.TempDir(), "stacks.folded")
	out, errs := runScript(t, sys,
		"analyze", // before any traces: friendly empty output, no error
		"trace on",
		"mkdir /t",
		"put /t/f critical path smoke data",
		"get /t/f",
		"analyze",
		"analyze folded "+folded,
		"analyze bogus extra args here",
	)
	for i, err := range errs[:7] {
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	if errs[7] == nil {
		t.Error("bad analyze usage should error")
	}
	for _, want := range []string{
		"no complete op traces",
		"ops analyzed",
		"critical-path latency budget",
		"tail diagnosis",
		"Check: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "read") && !strings.Contains(string(data), "write") {
		t.Errorf("folded export has no op frames:\n%s", data)
	}
}

// TestCritpathCommand: renders a named trace and the p99 exemplar path.
func TestCritpathCommand(t *testing.T) {
	sys := newTracedScriptSystem(t)
	out, errs := runScript(t, sys,
		"trace on",
		"mkdir /t",
		"put /t/f exemplar path data",
		"get /t/f",
		"critpath",   // p99 exemplar of cluster/op_latency
		"critpath 1", // explicit first trace id
		"critpath nope",
		"critpath 999999",
	)
	for i, err := range errs[:6] {
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	if errs[6] == nil || errs[7] == nil {
		t.Error("bad trace ids should error")
	}
	if !strings.Contains(out, "p99 exemplar: trace ") {
		t.Errorf("missing exemplar line:\n%s", out)
	}
	if strings.Count(out, "critical path — trace ") < 2 {
		t.Errorf("expected two rendered paths:\n%s", out)
	}
	if !strings.Contains(out, "wall ") || !strings.Contains(out, "queue ") {
		t.Errorf("rendered path missing wall/queue accounting:\n%s", out)
	}
}

// TestCritpathExemplarWithoutTraces: the exemplar lookup fails cleanly on
// an untraced system.
func TestCritpathExemplarWithoutTraces(t *testing.T) {
	sys := newScriptSystem(t, false)
	_, errs := runScript(t, sys, "critpath")
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "exemplar") {
		t.Errorf("want exemplar error, got %v", errs[0])
	}
}
