package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/gateway"
	"repro/internal/sim"
)

// newGatewaySystem is newScriptSystem plus an object gateway, matching
// the configuration the yottactl demo scenario builds.
func newGatewaySystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Blades: 2,
		DiskSpec: disk.Spec{
			BlockSize:   4096,
			Blocks:      1 << 12,
			Seek:        5 * sim.Millisecond,
			Rotation:    3 * sim.Millisecond,
			TransferBps: 400_000_000,
		},
		Gateway: &gateway.Config{MetaShards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys
}

// TestGatewayCommandRoundTrip drives the object gateway end to end
// through the script interface: mkbucket → put → get → ls, then the
// status/buckets/report views.
func TestGatewayCommandRoundTrip(t *testing.T) {
	sys := newGatewaySystem(t)
	out, errs := runScript(t, sys,
		"tenant fusion",
		"gateway mkbucket fusion results",
		"gateway put fusion results run/001.txt first shot data",
		"gateway get fusion results run/001.txt",
		"gateway ls fusion results run/",
		"gateway status",
		"gateway buckets",
		"gateway report",
	)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}
	for _, want := range []string{
		"put results/run/001.txt: 15 bytes, version 1",
		"first shot data",
		"run/001.txt",
		"gateway: 1 buckets, 1 objects",
		"owner=fusion",
		"object gateway (three-tier)",
		"iam:  auths=",
		"meta: 2 shard(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := sys.Gateway.Stats(); got.Puts != 1 || got.Gets != 1 || got.Lists != 1 {
		t.Errorf("gateway stats after script: %+v", got)
	}
}

// TestGatewayCommandErrors: bad usage, unknown tenants, and systems
// built without a gateway all fail cleanly.
func TestGatewayCommandErrors(t *testing.T) {
	sys := newGatewaySystem(t)
	_, errs := runScript(t, sys,
		"gateway",
		"gateway bogus",
		"gateway mkbucket ghost b1", // tenant never created
		"gateway get fusion nope k", // tenant never created either
	)
	for i, err := range errs {
		if err == nil {
			t.Errorf("command %d should have failed", i)
		}
	}

	plain := newScriptSystem(t, false)
	_, errs = runScript(t, plain, "gateway status")
	if len(errs) != 1 || errs[0] == nil || !strings.Contains(errs[0].Error(), "Options.Gateway") {
		t.Errorf("gateway command on gateway-less system: %v", errs)
	}
}
