package main

import (
	"strings"
	"testing"
)

// TestBatchCommandRoundTrip drives batch on → I/O → status → off through
// the script interface, checking the printed switch state and that frames
// actually coalesced messages while batching was on.
func TestBatchCommandRoundTrip(t *testing.T) {
	sys := newScriptSystem(t, false)
	if sys.Cluster.FabricBatched() {
		t.Fatal("batching should start disabled")
	}
	out, errs := runScript(t, sys,
		"batch status",
		"batch on",
		"mkdir /b",
		"put /b/f.txt hello coalesced fabric frames",
		"get /b/f.txt",
		"batch status",
		"batch off",
		"batch status",
	)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	if !strings.Contains(out, "fabric batching: off") {
		t.Fatalf("missing initial off status:\n%s", out)
	}
	if !strings.Contains(out, "fabric batching on") {
		t.Fatalf("missing on confirmation:\n%s", out)
	}
	if !strings.Contains(out, "fabric batching: on") {
		t.Fatalf("missing on status:\n%s", out)
	}
	if sys.Cluster.FabricBatched() {
		t.Fatal("batch off left the plane enabled")
	}
	// The put/get ran while batching was on: that I/O must have coalesced.
	frames := int64(0)
	for _, b := range sys.Cluster.Blades {
		frames += b.Conn.BatchStats().Frames
	}
	if frames == 0 {
		t.Fatal("no frames coalesced while batching was on")
	}
}

func TestBatchCommandUsage(t *testing.T) {
	sys := newScriptSystem(t, false)
	_, errs := runScript(t, sys, "batch", "batch maybe")
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "usage: batch on|off|status") {
			t.Fatalf("line %d: expected usage error, got %v", i, err)
		}
	}
}
