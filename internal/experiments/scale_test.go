package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestBatchedScale64Blades drives a 64-blade cluster with ten thousand
// closed-loop clients on the batched fabric plane — the ISSUE-6 scale
// point. It asserts the run completes error-free inside the tier-1 budget
// (it skips under -short like the other experiment regenerations), that
// coalescing actually multiplexed the fabric (messages strictly exceed
// frames), and that throughput is sane for the population.
func TestBatchedScale64Blades(t *testing.T) {
	skipIfShort(t)
	const (
		blades  = 64
		clients = 10_000
		ws      = 64 << 10
		dur     = 30 * sim.Millisecond
	)
	k := sim.NewKernel(64)
	cfg := clusterConfig(blades)
	cfg.Disks = 96
	cfg.DisksPerGroup = 6
	cfg.CacheBlocksPerBlade = 2048
	cfg.FabricBatch = true
	c, err := controllerNew(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Pool.CreateDMSD("scale", 1<<22); err != nil {
		t.Fatal(err)
	}
	if !c.FabricBatched() {
		t.Fatal("FabricBatch config did not enable the batched plane")
	}
	target := &clusterTarget{c: c, vol: "scale"}
	r := runWorkload(k, clients, dur, target, func(int) workload.Pattern {
		return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0.25}
	})
	if c.Errors != 0 {
		t.Fatalf("cluster reported %d op errors", c.Errors)
	}
	// 10k closed-loop clients for 30 ms must land well over one op each
	// on average; a collapsed fabric would stall far below this floor.
	if r.Ops < int64(clients) {
		t.Fatalf("completed only %d ops for %d clients", r.Ops, clients)
	}
	var frames, msgs int64
	for _, b := range c.Blades {
		st := b.Conn.BatchStats()
		frames += st.Frames
		msgs += st.Messages
	}
	if frames == 0 || msgs <= frames {
		t.Fatalf("no coalescing at scale: %d frames, %d messages", frames, msgs)
	}
	t.Logf("ops=%d frames=%d messages=%d (%.2f msgs/frame)",
		r.Ops, frames, msgs, float64(msgs)/float64(frames))
}
