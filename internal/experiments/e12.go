package experiments

import (
	"math/rand"

	"repro/internal/balance"
	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E12 — §2.2/§6.3: adaptive hot-spot rebalancing. E3 shows the pooled
// cache absorbing Zipf reads when clients round-robin across blades; E12
// models the harder case the paper's load-balancing claim is really
// about: SAN hosts with *static paths*, each op routed to the blade that
// homes its data. Under a Zipf workload the blades homing the hot blocks
// saturate their CPU slots while the rest idle. The balance controller
// watches the scraper's per-blade load series and migrates the directory
// homes of the hottest blocks off the sustained hot blade; routing
// follows the homes, so the skew drains and closed-loop throughput
// recovers toward the uniform-workload baseline.
//
// Acceptance (checked by the E12 tests): with balancing on, the measured
// per-blade load CV falls below the hot-spot watchdog threshold, ops/s
// reaches ≥ 90% of the uniform baseline, and two same-seed runs render
// byte-identical tables — balancer decisions included.

// e12CVMax / e12RatioMax are the shared skew thresholds: the hot-spot
// watchdog warns on them and the balance controller acts on them.
const (
	e12CVMax    = 0.35
	e12RatioMax = 1.3
)

// affinityTarget routes every op to the blade currently homing its first
// block — the static-path host pattern. Routing consults the live home
// map, so migrated homes pull their traffic with them.
type affinityTarget struct {
	c   *controller.Cluster
	vol string
	buf []byte
}

func (t *affinityTarget) BlockSize() int { return t.c.BlockSize() }

func (t *affinityTarget) blade(lba int64) *controller.Blade {
	if id := t.c.HomeBlade(t.vol, lba); id >= 0 {
		if b := t.c.Blade(id); b != nil && !b.Down {
			return b
		}
	}
	return t.c.PickBlade()
}

func (t *affinityTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	_, err := t.c.Read(p, t.blade(lba), t.vol, lba, blocks, 0)
	return err
}

func (t *affinityTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	need := blocks * t.c.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.c.Write(p, t.blade(lba), t.vol, lba, t.buf[:need], 0)
}

// E12Run is one scenario's measured window.
type E12Run struct {
	OpsPerSec float64
	MBps      float64
	CV        float64
	Ratio     float64 // max/mean per-blade load
}

// E12Result carries everything the E12 table, tests and the perf snapshot
// need.
type E12Result struct {
	Uniform  E12Run // uniform workload, balancing off (the baseline)
	Static   E12Run // Zipf workload, balancing off (the hot-spot)
	Balanced E12Run // Zipf workload, balancing on

	CVMax, RatioMax float64
	Migrations      int64
	Skipped         int64
	Decisions       []balance.Decision
	// Events is the balanced run's watchdog stream: hot-spot warn during
	// the skewed warm-up, the "rebalanced" clear once migration bites.
	Events []telemetry.Event
	// Skew is the balanced run's per-blade load table over the telemetry
	// window.
	Skew *metrics.Table
}

// e12Scenario runs one (workload, balancing) combination on a fresh
// kernel with the given seed and returns the measured window.
func e12Scenario(seed int64, zipf, balanced bool) (E12Run, *balance.Controller, *telemetry.Scraper) {
	const (
		blades = 8
		client = 32
		ws     = 8 << 10 // 32 MiB hot set, same as E3
		// Warm-up long enough for the caches to fill AND, in the balanced
		// scenario, for the feedback loop to detect and drain the skew, so
		// the measured window sees the converged state.
		warm = 4 * sim.Second
		dur  = 2 * sim.Second
	)
	k := sim.NewKernel(seed)
	cfg := clusterConfig(blades)
	// Two extra CPU slots per blade over the shared shape: the static-path
	// hot blade (~26% of the load) still saturates, but a converged
	// balanced run — the dominant key's fair-share-plus (~15%) on one
	// blade — fits with headroom, so throughput can actually recover.
	cfg.CPUSlots = 6
	c, err := controllerNew(k, cfg)
	if err != nil {
		panic(err)
	}
	c.Pool.CreateDMSD("v", 1<<20)
	if err := prefillVolume(k, c, "v", ws); err != nil {
		panic(err)
	}
	target := &affinityTarget{c: c, vol: "v"}
	var pat func(int) workload.Pattern
	// Single-block ops: one op == one block == one directory key, so the
	// per-key heat the balancer plans with is exactly the per-blade load
	// the ops land (multi-block ops would smear one op's load across
	// keys homed on other blades).
	if zipf {
		pat = func(cl int) workload.Pattern {
			// Each client's value stream is bound at construction to its
			// own deterministic source (see workload.NewZipf).
			src := rand.New(rand.NewSource(seed*1009 + int64(cl) + 1))
			return workload.NewZipf(src, ws, 1.1, 1, 0)
		}
	} else {
		pat = func(int) workload.Pattern {
			return workload.Uniform{Range: ws, Blocks: 1, WriteFrac: 0}
		}
	}

	scr := telemetry.NewScraper(k, c.Reg, 100*sim.Millisecond)
	scr.AddWatchdog(&telemetry.HotSpot{Pattern: "blade/*/ops", CVMax: e12CVMax, RatioMax: e12RatioMax})
	stopScrape := scr.Start()
	var bal *balance.Controller
	var stopBal func()
	if balanced {
		bal = c.NewBalancer(scr, balance.Config{
			CVMax:    e12CVMax,
			RatioMax: e12RatioMax,
			For:      2,
			MaxMoves: 16,
			// The Zipf skew is built from dozens of medium-heat keys
			// around one dominant one; reach deep into the movable tail.
			MinMoveFrac: 0.005,
		})
		stopBal = bal.Start()
	}

	// Warm-up: caches fill and, in the balanced scenario, the feedback
	// loop detects the skew and drains it before the measured window.
	runWorkload(k, client, warm, target, pat)

	before := make([]int64, blades)
	for i, b := range c.Blades {
		before[i] = b.Ops
	}
	r := runWorkload(k, client, dur, target, pat)
	deltas := make([]float64, blades)
	for i, b := range c.Blades {
		deltas[i] = float64(b.Ops - before[i])
	}
	st := metrics.Summarize(deltas)
	run := E12Run{
		OpsPerSec: float64(r.Ops) / dur.Seconds(),
		MBps:      r.Bytes.MBps(),
		CV:        st.CV(),
	}
	if st.Mean > 0 {
		run.Ratio = st.Max / st.Mean
	}
	if stopBal != nil {
		stopBal()
	}
	stopScrape()
	c.Stop()
	return run, bal, scr
}

// RunE12 executes the three scenarios under one seed.
func RunE12(seed int64) E12Result {
	res := E12Result{CVMax: e12CVMax, RatioMax: e12RatioMax}
	res.Uniform, _, _ = e12Scenario(seed, false, false)
	res.Static, _, _ = e12Scenario(seed, true, false)
	var bal *balance.Controller
	var scr *telemetry.Scraper
	res.Balanced, bal, scr = e12Scenario(seed, true, true)
	res.Migrations = bal.Stats().Migrations
	res.Skipped = bal.Stats().Skipped
	res.Decisions = bal.Decisions()
	res.Events = scr.Events()
	res.Skew = scr.SkewTable("E12 — per-blade ops (balanced run)", "blade/*/ops")
	return res
}

// E12 renders the experiment table.
func E12(seed int64) *metrics.Table { return e12Table(RunE12(seed)) }

func e12Table(r E12Result) *metrics.Table {
	tab := metrics.NewTable("E12 — §2.2/§6.3: adaptive hot-spot rebalancing under static-path routing",
		"workload", "balancing", "ops/s", "MB/s", "load CV", "max/mean")
	tab.AddRow("uniform", "off", int64(r.Uniform.OpsPerSec), fmtF(r.Uniform.MBps), fmtF(r.Uniform.CV), fmtF(r.Uniform.Ratio))
	tab.AddRow("zipf s=1.1", "off", int64(r.Static.OpsPerSec), fmtF(r.Static.MBps), fmtF(r.Static.CV), fmtF(r.Static.Ratio))
	tab.AddRow("zipf s=1.1", "on", int64(r.Balanced.OpsPerSec), fmtF(r.Balanced.MBps), fmtF(r.Balanced.CV), fmtF(r.Balanced.Ratio))
	tab.AddNote("skew thresholds (watchdog = balancer): CV > %s, max/mean > %s", fmtF(r.CVMax), fmtF(r.RatioMax))
	tab.AddNote("balanced run: %d home migrations (%d declined), measured CV %s (threshold %s), ops/s %s%% of uniform baseline",
		r.Migrations, r.Skipped, fmtF(r.Balanced.CV), fmtF(r.CVMax),
		fmtF(100*r.Balanced.OpsPerSec/r.Uniform.OpsPerSec))
	for _, d := range r.Decisions {
		tab.AddNote("decision: %s", d)
	}
	for _, ev := range r.Events {
		tab.AddNote("event: %s", ev)
	}
	tab.AddNote("%s", r.Skew.String())
	return tab
}
