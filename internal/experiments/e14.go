package experiments

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E14 — governor step response: the PR5 halve/double governor (qos.GovStep)
// against the PI controller (qos.GovPI) on identical seeds and identical
// aggressor loads. A victim tenant with a per-tenant SLO runs throughout;
// at onset a background scrub aggressor (blade CPU burn + parity reads on
// the background lane, the §2.4 maintenance mix) either switches on and
// stays on (step load) or pulses (burst load). A recorder watchdog behind
// the governor captures every scrape window's victim p99 and the
// post-decision background weight, giving an actuation trace per arm.
//
// Acceptance (checked by TestE14Quick): under the step aggressor the PI
// arm settles onto the SLO in strictly fewer windows than the step arm,
// breaches it in fewer windows overall, oscillates no more (actuation
// reversals), and keeps the victim's steady-state p99 — the second half
// of the loaded phase, after both governors have had ample time to
// converge — within the SLO; the burst aggressor must not make the PI
// arm oscillate or breach more than the step arm either. The scrub must
// not starve: a regulator that converges onto the setpoint harvests
// background bandwidth the halve/double law strands by over-squeezing
// after every breach (at full scale the PI arm completes ~14% more
// chunks; the CI-scale smoke only requires it stay within 20% of the
// step arm, since the peak-hold filter trades a little harvest for
// burst immunity on short runs). Loaded-phase-wide p99 is reported too,
// but it is dominated by the onset transient, which the settle and
// violation columns already measure. Same seed → byte-identical tables.
const (
	// e14Interval is the scrape window both governors act on.
	e14Interval = 100 * sim.Millisecond
	// e14MinCount mirrors GovernorConfig.MinCount for window judging.
	e14MinCount = 8
	// e14BGMax is the actuation ceiling. It deliberately over-provisions
	// the maintenance mix — at the ceiling the background lane's
	// per-cost tag spacing matches the victim lane's (weight 8, typical
	// op cost 1 vs scrub cost 4), so an ungoverned scrub storm genuinely
	// tramples the victim — and it is the governor, not a static weight,
	// that has to take that bandwidth away. The floor (default BGMin
	// 0.05) all but starves the scrub.
	e14BGMax = 32.0
	// e14ReversalRatio is the weight move below which a window-to-window
	// change is jitter, not actuation. Both governors act geometrically
	// (halve/double; the PI law interpolates in log space), so the
	// threshold is a ratio: a move counts only if the weight changed by
	// at least ×1.25 in either direction.
	e14ReversalRatio = 1.25
)

// e14Scale sizes one E14 run.
type e14Scale struct {
	blades    int
	victims   int
	victimWS  int64 // victim hot set, blocks
	target    sim.Duration
	scrubbers int // background scrub workers per blade
	pre       sim.Duration
	load      sim.Duration
	post      sim.Duration
	// burst pulse geometry (burst shape only).
	burstOn  sim.Duration
	burstOff sim.Duration
	// traced attaches a per-op tracer enabled only during the loaded
	// phase, so the arm's span log isolates behavior under contention.
	traced bool
}

func e14Full() e14Scale {
	return e14Scale{
		blades:    6,
		victims:   8,
		victimWS:  1 << 17,
		target:    55 * sim.Millisecond,
		scrubbers: 8,
		pre:       600 * sim.Millisecond,
		load:      3 * sim.Second,
		post:      800 * sim.Millisecond,
		burstOn:   400 * sim.Millisecond,
		burstOff:  300 * sim.Millisecond,
	}
}

func e14Quick() e14Scale {
	return e14Scale{
		blades:    4,
		victims:   8,
		victimWS:  1 << 17,
		target:    55 * sim.Millisecond,
		scrubbers: 8,
		pre:       400 * sim.Millisecond,
		load:      1500 * sim.Millisecond,
		post:      500 * sim.Millisecond,
		burstOn:   300 * sim.Millisecond,
		burstOff:  200 * sim.Millisecond,
	}
}

// e14Window is one scrape window of the actuation trace: victim-visible
// op count and windowed p99, plus the background weight after the
// governor's decision for that window.
type e14Window struct {
	n   int64
	p99 sim.Duration
	w   float64
}

// e14Recorder is a telemetry watchdog attached after the governor, so
// each window it sees the same histogram delta the governor judged and
// the weight the governor just set.
type e14Recorder struct {
	mgr  *qos.Manager
	prev metrics.HistogramSnapshot
	wins []e14Window
}

func (r *e14Recorder) Rule() string { return "e14-recorder" }

func (r *e14Recorder) Check(v *telemetry.View) []telemetry.Event {
	h := v.Reg.HistogramFor("cluster/op_latency")
	if h == nil {
		return nil
	}
	if v.First {
		r.prev = h.Snapshot()
		return nil
	}
	w := e14Window{n: h.CountSince(r.prev), w: r.mgr.BackgroundWeight()}
	if w.n > 0 {
		w.p99 = h.QuantileSince(r.prev, 0.99)
	}
	r.prev = h.Snapshot()
	r.wins = append(r.wins, w)
	return nil
}

// e14Aggressor drives the background scrub load: per-blade workers on the
// background lane looping blade-CPU burns and parity-read scrub shards
// until stopped. The burst shape gates work through on/off pulses aligned
// to the load phase start.
type e14Aggressor struct {
	c       *controller.Cluster
	stopped bool
	next    int
	Chunks  int64
}

func (a *e14Aggressor) start(k *sim.Kernel, sc e14Scale, burst bool) {
	type job struct {
		g      int
		lo, hi int64
	}
	// Small shards matter here: a 256-stripe shard is one enormous
	// non-preemptive disk transfer, and a victim op that queues behind it
	// eats the whole service time no matter what the WFQ weight says —
	// the governor's actuator would be disconnected from the victim's
	// p99. Short shards keep each background op small so the weight
	// genuinely modulates the victim tail.
	var jobs []job
	const shard = 4
	burn := controller.RebuildComputePerChunk * shard / 256
	for gi, g := range a.c.Groups {
		for lo := int64(0); lo < g.Stripes(); lo += shard {
			hi := lo + shard
			if hi > g.Stripes() {
				hi = g.Stripes()
			}
			jobs = append(jobs, job{g: gi, lo: lo, hi: hi})
		}
	}
	start := k.Now()
	cycle := sc.burstOn + sc.burstOff
	for _, b := range a.c.Blades {
		b := b
		for w := 0; w < sc.scrubbers; w++ {
			k.Go(fmt.Sprintf("e14-scrub/blade%d", b.ID), func(q *sim.Proc) {
				qos.TagBackground(q)
				for !a.stopped {
					if burst {
						// Off-pulse: sleep to the next on-pulse edge.
						into := q.Now().Sub(start) % cycle
						if into >= sc.burstOn {
							q.Sleep(cycle - into)
							continue
						}
					}
					j := jobs[a.next%len(jobs)]
					a.next++
					b.Engine.Busy(q, burn)
					if _, err := a.c.Groups[j.g].ScrubRange(q, j.lo, j.hi); err != nil {
						panic(fmt.Sprintf("e14 scrub: %v", err))
					}
					a.Chunks++
				}
			})
		}
	}
}

// E14Arm is one (mode, load shape) run's measurements.
type E14Arm struct {
	Mode string

	// Loaded-phase victim latency and throughput. SteadyP99 covers only
	// the second half of the loaded phase, after both governors have had
	// ample time to converge — the whole-phase p99 is dominated by the
	// onset transient, which the settle/violation columns measure.
	VictimP50, VictimP99 sim.Duration
	SteadyP99            sim.Duration
	VictimOpsPerSec      float64

	// Actuation-trace metrics over the loaded phase.
	// ConvergeWindows is the settling time: the 1-based index just past
	// the last judged window whose p99 still violated the target — i.e.
	// how many windows until the SLO held for the rest of the load. A
	// governor that squeezes fast but relapses (halve, calm, double,
	// breach again) keeps pushing this out; 0 means never violated.
	ConvergeWindows  int
	ViolationWindows int // judged windows with p99 > target
	Reversals        int // direction flips of significant weight moves
	WeightLo         float64
	WeightHi         float64
	FinalWeight      float64
	Narrows, Widens  int64
	ScrubChunks      int64
	Trace            []float64 // per-window background weight (loaded phase)

	// Tracer holds the loaded-phase span log when e14Scale.traced is set
	// (nil otherwise); critical-path analysis consumes it.
	Tracer *trace.Tracer

	// wins is the raw loaded-phase window series (tests poke at it).
	wins []e14Window
}

// e14Arm runs one governor mode under one load shape on a fresh kernel.
func e14Arm(seed int64, sc e14Scale, mode string, burst bool) E14Arm {
	k := sim.NewKernel(seed)
	cfg := clusterConfig(sc.blades)
	cfg.QoS = &qos.Config{
		Tenants: map[string]qos.TenantSpec{
			"victim": {SLOP99: sc.target},
		},
		Governor: qos.GovernorConfig{
			Mode:      mode,
			P99Target: sc.target,
			MinCount:  e14MinCount,
			QueueHigh: -1, // isolate the latency loops: identical signal per arm
			BGMax:     e14BGMax,
		},
	}
	var tr *trace.Tracer
	if sc.traced {
		tr = trace.NewTracer(k)
		cfg.Tracer = tr
	}
	c, err := controllerNew(k, cfg)
	if err != nil {
		panic(err)
	}
	c.Pool.CreateDMSD("v", 1<<20)
	if err := prefillVolume(k, c, "v", sc.victimWS); err != nil {
		panic(err)
	}
	c.QoS.SetEnabled(true)
	c.QoS.SetBackgroundWeight(e14BGMax) // both arms start parked at the ceiling
	scr := telemetry.NewScraper(k, c.Reg, e14Interval)
	scr.AddWatchdog(c.QoS.AttachGovernor(cfg.QoS.Governor))
	rec := &e14Recorder{mgr: c.QoS}
	scr.AddWatchdog(rec)
	stopScrape := scr.Start()

	victim := &e13Target{c: c, vol: "v", tenant: "victim", prio: 3}
	pat := workload.Uniform{Range: sc.victimWS, Blocks: 4}
	newRunner := func(d sim.Duration) *workload.Runner {
		return &workload.Runner{
			K:        k,
			Clients:  sc.victims,
			Target:   victim,
			Pattern:  func(int) workload.Pattern { return pat },
			Duration: d,
		}
	}

	// Pre phase: victim alone, governor parked at BGMax.
	newRunner(sc.pre).Run()

	// Onset: the aggressor switches on; the measured victim runner rides
	// through the whole loaded phase.
	onset := len(rec.wins)
	tr.SetEnabled(true) // nil-safe; trace only the loaded phase
	agg := &e14Aggressor{c: c}
	vr := newRunner(sc.load)
	vr.Start()
	agg.start(k, sc, burst)
	half := sc.load / 2
	k.RunFor(half)
	steadySnap := vr.Latency.Snapshot()
	k.RunFor(sc.load - half)
	vr.Bytes.CloseAt(k.Now())
	agg.stopped = true
	tr.SetEnabled(false)
	loadEnd := len(rec.wins)

	// Post phase: aggressor off, weight free to recover.
	newRunner(sc.post).Run()
	stopScrape()

	arm := E14Arm{
		Mode:            mode,
		VictimP50:       vr.Latency.P50(),
		VictimP99:       vr.Latency.P99(),
		SteadyP99:       vr.Latency.QuantileSince(steadySnap, 0.99),
		VictimOpsPerSec: float64(vr.Ops) / sc.load.Seconds(),
		FinalWeight:     c.QoS.BackgroundWeight(),
		ScrubChunks:     agg.Chunks,
		Tracer:          tr,
	}
	g := c.QoS.Governor()
	arm.Narrows, arm.Widens = g.Narrows, g.Widens

	loaded := rec.wins[onset:loadEnd]
	arm.wins = loaded
	arm.WeightLo, arm.WeightHi = e14BGMax, 0.0
	lastDir := 0
	prevW := e14BGMax
	if onset > 0 {
		prevW = rec.wins[onset-1].w
	}
	for i, w := range loaded {
		arm.Trace = append(arm.Trace, w.w)
		if w.w < arm.WeightLo {
			arm.WeightLo = w.w
		}
		if w.w > arm.WeightHi {
			arm.WeightHi = w.w
		}
		if w.n >= e14MinCount && w.p99 > sc.target {
			arm.ViolationWindows++
			arm.ConvergeWindows = i + 1
		}
		if r := w.w / prevW; r >= e14ReversalRatio || r <= 1/e14ReversalRatio {
			dir := 1
			if r < 1 {
				dir = -1
			}
			if lastDir != 0 && dir != lastDir {
				arm.Reversals++
			}
			lastDir = dir
		}
		prevW = w.w
	}
	c.Stop()
	return arm
}

// E14Result carries both load shapes' mode pairs.
type E14Result struct {
	Target             sim.Duration
	Step, PI           E14Arm // step aggressor (on and stays on)
	BurstStep, BurstPI E14Arm // pulsed aggressor
}

func runE14Scaled(seed int64, sc e14Scale) E14Result {
	return E14Result{
		Target:    sc.target,
		Step:      e14Arm(seed, sc, qos.GovStep, false),
		PI:        e14Arm(seed, sc, qos.GovPI, false),
		BurstStep: e14Arm(seed, sc, qos.GovStep, true),
		BurstPI:   e14Arm(seed, sc, qos.GovPI, true),
	}
}

// RunE14 executes the four full-scale arms under one seed.
func RunE14(seed int64) E14Result { return runE14Scaled(seed, e14Full()) }

// RunE14Quick is the reduced-scale variant for CI smoke and -short tests.
func RunE14Quick(seed int64) E14Result { return runE14Scaled(seed, e14Quick()) }

func e14Table(title string, r E14Result) *metrics.Table {
	tab := metrics.NewTable(title,
		"arm", "victim p50 ms", "victim p99 ms", "steady p99 ms", "victim ops/s",
		"settle (windows)", "violations", "reversals", "bg weight [lo..hi]")
	row := func(name string, a E14Arm) {
		tab.AddRow(name, fmtDur(a.VictimP50), fmtDur(a.VictimP99), fmtDur(a.SteadyP99),
			int64(a.VictimOpsPerSec), int64(a.ConvergeWindows), int64(a.ViolationWindows),
			int64(a.Reversals), fmt.Sprintf("[%s..%s]", fmtF(a.WeightLo), fmtF(a.WeightHi)))
	}
	row("step load, step governor", r.Step)
	row("step load, PI governor", r.PI)
	row("burst load, step governor", r.BurstStep)
	row("burst load, PI governor", r.BurstPI)
	tab.AddNote("victim SLO p99 %s ms, judged per %d ms scrape window (min %d ops); steady p99 covers the second half of the loaded phase",
		fmtDur(r.Target), int64(e14Interval.Millis()), int64(e14MinCount))
	note := func(name string, a E14Arm) {
		tab.AddNote("%s: %d narrows %d widens, final bg weight %s, scrub chunks %d, weight trace %s",
			name, a.Narrows, a.Widens, fmtF(a.FinalWeight), a.ScrubChunks, metrics.Sparkline(a.Trace))
	}
	note("step/step", r.Step)
	note("step/PI", r.PI)
	note("burst/step", r.BurstStep)
	note("burst/PI", r.BurstPI)
	return tab
}

// E14 renders the experiment table.
func E14(seed int64) *metrics.Table {
	return e14Table("E14 — governor step response: halve/double vs per-tenant PI control",
		RunE14(seed))
}

// E14Q renders the reduced-scale table (CI smoke; not part of All).
func E14Q(seed int64) *metrics.Table {
	return e14Table("E14Q — governor step response, reduced scale (CI smoke)",
		RunE14Quick(seed))
}
