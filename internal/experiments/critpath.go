package experiments

import (
	"fmt"

	"repro/internal/critpath"
	"repro/internal/metrics"
	"repro/internal/qos"
)

// CP1/CP2 — critical-path tail attribution. Where the phase histograms
// answer "how long did fabric spans take", the span-DAG analysis answers
// "how much of an op's wall clock did fabric *cause*": each traced op's
// critical path is reconstructed from parent links, concurrent siblings
// collapse into overlap instead of double-counting, and the ops are split
// into median (≤p50) and tail (≥p99) cohorts so the table shows which
// phase's share grows when an op lands in the tail. CP1 runs the canonical
// snapshot workload (the same run -snapshot records); CP2 re-runs the E14
// PI-governor arm with tracing on during the loaded phase only, so the
// attribution isolates behavior under the scrub aggressor. Same seed →
// byte-identical tables.

// RunCritPath analyzes the canonical snapshot workload's span DAG under
// one seed. Deterministic per seed.
func RunCritPath(seed int64) *critpath.Analysis {
	_, tracer := canonicalTraced(seed, false)
	return critpath.FromTracer(tracer)
}

// RunCritPathE14 re-runs the E14 PI arm (reduced scale, step aggressor)
// with tracing enabled during the loaded phase and returns its analysis:
// tail attribution for victim ops contended by the background scrub.
func RunCritPathE14(seed int64) *critpath.Analysis {
	sc := e14Quick()
	sc.traced = true
	arm := e14Arm(seed, sc, qos.GovPI, false)
	return critpath.FromTracer(arm.Tracer)
}

// cpTable renders one analysis as its tail-diagnosis table with the
// one-line summary and identity-check verdict attached.
func cpTable(title string, a *critpath.Analysis) *metrics.Table {
	tab := a.TailTable(title)
	tab.AddNote("%s", a.Summary())
	check := "true"
	if err := a.Check(); err != nil {
		check = fmt.Sprintf("FAILED: %v", err)
	}
	tab.AddNote("attribution identities (wall = Σ critical; total = critical+delegated+overlap): %s", check)
	return tab
}

// CP1 renders the canonical-workload tail diagnosis.
func CP1(seed int64) *metrics.Table {
	return cpTable("CP1 — critical-path tail diagnosis: canonical workload, median vs p99+ ops",
		RunCritPath(seed))
}

// CP2 renders the E14 loaded-phase tail diagnosis.
func CP2(seed int64) *metrics.Table {
	return cpTable("CP2 — critical-path tail diagnosis: E14 PI arm under scrub aggressor (loaded phase)",
		RunCritPathE14(seed))
}
