package experiments

import (
	"repro/internal/critpath"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PhaseQuantiles summarizes one trace phase for a perf snapshot.
type PhaseQuantiles struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// BalanceSummary condenses E12 — the adaptive hot-spot rebalancer — into
// the perf record: throughput and per-blade load CV with balancing off vs
// on, under the same Zipf seed.
type BalanceSummary struct {
	UniformOpsPerSec  float64 `json:"uniform_ops_per_sec"`
	StaticOpsPerSec   float64 `json:"static_ops_per_sec"`
	BalancedOpsPerSec float64 `json:"balanced_ops_per_sec"`
	StaticCV          float64 `json:"static_cv"`
	BalancedCV        float64 `json:"balanced_cv"`
	Migrations        int64   `json:"migrations"`
}

// QoSSummary condenses E13 — multi-tenant isolation — into the perf
// record: the victim tenant's p99 alone, contended with QoS, and
// contended without it, plus the aggressor's admission counters.
type QoSSummary struct {
	VictimSoloP99Ms float64 `json:"victim_solo_p99_ms"`
	VictimOnP99Ms   float64 `json:"victim_on_p99_ms"`
	VictimOffP99Ms  float64 `json:"victim_off_p99_ms"`
	VictimRatioOn   float64 `json:"victim_ratio_on"`
	VictimRatioOff  float64 `json:"victim_ratio_off"`
	AggregateFrac   float64 `json:"aggregate_frac"`
	Throttled       int64   `json:"throttled"`
	Delayed         int64   `json:"delayed"`
	GovernorNarrows int64   `json:"governor_narrows"`
	GovernorWidens  int64   `json:"governor_widens"`
}

// GovernorSummary condenses E14 — the governor step-response A/B at the
// reduced CI scale — into the perf record: the per-tenant PI arm's
// victim latency and actuation-quality metrics next to the legacy
// halve/double arm's, under the identical step aggressor, plus the PI
// arm's burst-load oscillation count.
type GovernorSummary struct {
	SLOMs             float64 `json:"slo_ms"`
	PIVictimP99Ms     float64 `json:"pi_victim_p99_ms"`
	PISteadyP99Ms     float64 `json:"pi_steady_p99_ms"`
	PISettleWindows   int     `json:"pi_settle_windows"`
	PIViolations      int     `json:"pi_violations"`
	PIReversals       int     `json:"pi_reversals"`
	PIScrubChunks     int64   `json:"pi_scrub_chunks"`
	StepVictimP99Ms   float64 `json:"step_victim_p99_ms"`
	StepSteadyP99Ms   float64 `json:"step_steady_p99_ms"`
	StepSettleWindows int     `json:"step_settle_windows"`
	StepViolations    int     `json:"step_violations"`
	StepReversals     int     `json:"step_reversals"`
	StepScrubChunks   int64   `json:"step_scrub_chunks"`
	BurstPIReversals  int     `json:"burst_pi_reversals"`
	BurstPISteadyP99  float64 `json:"burst_pi_steady_p99_ms"`
}

// HotCacheSummary condenses E15Q — the hot-key cache tier raced against
// home migration under fast-shifting Zipf skew, at the reduced CI scale —
// into the perf record: the shifting regime's three arms (throughput,
// windowed load CV, op p99) plus the cache tier's activity counters. The
// -baseline gate watches ShiftHotP99Ms.
type HotCacheSummary struct {
	ShiftOffOpsPerSec     float64 `json:"shift_off_ops_per_sec"`
	ShiftMigrateOpsPerSec float64 `json:"shift_migrate_ops_per_sec"`
	ShiftHotOpsPerSec     float64 `json:"shift_hot_ops_per_sec"`
	ShiftMigrateWinCV     float64 `json:"shift_migrate_win_cv"`
	ShiftHotWinCV         float64 `json:"shift_hot_win_cv"`
	ShiftMigrateP99Ms     float64 `json:"shift_migrate_p99_ms"`
	ShiftHotP99Ms         float64 `json:"shift_hot_p99_ms"`
	CacheHits             int64   `json:"cache_hits"`
	CacheFills            int64   `json:"cache_fills"`
	InvalKeys             int64   `json:"inval_keys"`
	Migrations            int64   `json:"migrations"`
}

// GatewaySummary condenses E16Q — the object gateway's shard-scaling
// sweep at the reduced CI scale — into the perf record: the measured
// throughput ceiling with one metadata shard and with four, the low-load
// linear-region points the scaling claim anchors on, and the IAM tier's
// hit p99. The -baseline gate watches ShardedCeilingOpsPerSec.
type GatewaySummary struct {
	Users                   int     `json:"users"`
	Buckets                 int     `json:"buckets"`
	CeilingOpsPerSec        float64 `json:"ceiling_ops_per_sec"`
	ShardedCeilingOpsPerSec float64 `json:"sharded_ceiling_ops_per_sec"`
	CeilingRatio            float64 `json:"ceiling_ratio"`
	LinearLowOpsPerSec      float64 `json:"linear_low_ops_per_sec"`
	LinearHighOpsPerSec     float64 `json:"linear_high_ops_per_sec"`
	IAMP99Ms                float64 `json:"iam_p99_ms"`
	SaturatedShardUtil      float64 `json:"saturated_shard_util"`
}

// PhaseBudget is one phase's slice of the critical-path latency budget:
// inclusive span count, total critical time and its share of all op wall
// time, plus the phase's mean critical contribution to a median op and a
// p99+ op. TailSharePct — the phase's share of the tail cohort's wall —
// is the signal the -baseline regression gate watches.
type PhaseBudget struct {
	Spans        int64   `json:"spans"`
	CriticalMs   float64 `json:"critical_ms"`
	SharePct     float64 `json:"share_pct"`
	MedianOpMs   float64 `json:"median_op_ms"`
	TailOpMs     float64 `json:"tail_op_ms"`
	TailSharePct float64 `json:"tail_share_pct"`
}

// CritPathSummary condenses the critical-path analysis of the canonical
// traced workload into the perf record: per-phase latency budget plus the
// median/tail cohort walls the budget shares are relative to.
type CritPathSummary struct {
	Ops          int                    `json:"ops"`
	Truncated    int                    `json:"truncated"`
	WallMs       float64                `json:"wall_ms"`
	MedianWallMs float64                `json:"median_wall_ms"`
	TailWallMs   float64                `json:"tail_wall_ms"`
	Phases       map[string]PhaseBudget `json:"phases"`
}

// critPathSummary flattens an analysis into the snapshot record, skipping
// phases with no critical contribution anywhere.
func critPathSummary(a *critpath.Analysis) CritPathSummary {
	median, tail := a.Cohorts()
	s := CritPathSummary{
		Ops:          len(a.Ops),
		Truncated:    a.Truncated,
		WallMs:       a.Wall.Millis(),
		MedianWallMs: median.MeanWall.Millis(),
		TailWallMs:   tail.MeanWall.Millis(),
		Phases:       make(map[string]PhaseBudget),
	}
	for pi, pt := range a.ByPhase {
		if pt.Spans == 0 && pt.Critical == 0 {
			continue
		}
		share := 0.0
		if a.Wall > 0 {
			share = 100 * float64(pt.Critical) / float64(a.Wall)
		}
		name := "other"
		if pi < len(trace.Phases) {
			name = string(trace.Phases[pi])
		}
		s.Phases[name] = PhaseBudget{
			Spans:        pt.Spans,
			CriticalMs:   pt.Critical.Millis(),
			SharePct:     share,
			MedianOpMs:   median.Crit[pi].Millis(),
			TailOpMs:     tail.Crit[pi].Millis(),
			TailSharePct: tail.Share(pi),
		}
	}
	return s
}

// Snapshot is the machine-readable perf record benchrunner writes per PR
// (BENCH_PRn.json), so the bench trajectory across PRs stays comparable:
// canonical traced workload, per-phase latency quantiles, throughput.
type Snapshot struct {
	Seed      int64                     `json:"seed"`
	Blades    int                       `json:"blades"`
	Clients   int                       `json:"clients"`
	Ops       int64                     `json:"ops"`
	MBps      float64                   `json:"mbps"`
	OpsPerSec float64                   `json:"ops_per_sec"`
	MeanMs    float64                   `json:"mean_ms"`
	P99Ms     float64                   `json:"p99_ms"`
	Phases    map[string]PhaseQuantiles `json:"phases"`
	CritPath  CritPathSummary           `json:"critpath"`
	Balance   BalanceSummary            `json:"balance"`
	QoS       QoSSummary                `json:"qos"`
	Governor  GovernorSummary           `json:"governor"`
	HotCache  HotCacheSummary           `json:"hotcache"`
	Gateway   GatewaySummary            `json:"gateway"`
}

// BatchComparison is the PR6 perf record: the canonical snapshot workload
// run unbatched (bit-exact with prior builds) and again with the batched
// fabric plane — frame coalescing plus vectorized coherence ops — under
// the same seed, with the headline fabric-tail reduction precomputed.
type BatchComparison struct {
	Unbatched             Snapshot `json:"unbatched"`
	Batched               Snapshot `json:"batched"`
	FabricP99ReductionPct float64  `json:"fabric_p99_reduction_pct"`
	OpP99ReductionPct     float64  `json:"op_p99_reduction_pct"`
}

// PerfSnapshot runs the canonical snapshot workload — an 8-blade cluster
// under a mixed read/write closed loop with tracing on — and returns the
// per-phase summary plus the E12 balance and E13 QoS summaries.
// Deterministic per seed.
func PerfSnapshot(seed int64) Snapshot {
	return perfSnapshot(seed, true, true, true, true, true, false)
}

// PerfSnapshotBatched is PerfSnapshot on the batched fabric plane,
// without the E12/E13/E14/E15/E16 arms (they characterize orthogonal
// subsystems).
func PerfSnapshotBatched(seed int64) Snapshot {
	return perfSnapshot(seed, false, false, false, false, false, true)
}

// RunBatchComparison builds the PR6 record: same seed, same workload,
// unbatched then batched, plus headline reductions.
func RunBatchComparison(seed int64) BatchComparison {
	un := perfSnapshot(seed, true, true, true, true, true, false)
	ba := perfSnapshot(seed, false, false, false, false, false, true)
	cmp := BatchComparison{Unbatched: un, Batched: ba}
	if f, ok := un.Phases["fabric"]; ok && f.P99Ms > 0 {
		cmp.FabricP99ReductionPct = 100 * (f.P99Ms - ba.Phases["fabric"].P99Ms) / f.P99Ms
	}
	if un.P99Ms > 0 {
		cmp.OpP99ReductionPct = 100 * (un.P99Ms - ba.P99Ms) / un.P99Ms
	}
	return cmp
}

// Canonical snapshot workload shape, shared by perfSnapshot and the
// critical-path experiments so their analyses describe the same run.
const (
	snapBlades  = 8
	snapClients = 32
	snapWS      = 4 << 10
	snapDur     = 2 * sim.Second
)

// canonicalTraced runs the canonical snapshot workload — an 8-blade
// cluster under a mixed read/write closed loop, warmed 2s untraced then
// measured 2s traced — and returns the traced window's workload result
// plus the tracer holding its span log. Deterministic per seed.
func canonicalTraced(seed int64, batched bool) (*workload.Runner, *trace.Tracer) {
	k := sim.NewKernel(seed)
	cfg := clusterConfig(snapBlades)
	cfg.FabricBatch = batched
	tracer := trace.NewTracer(k)
	cfg.Tracer = tracer
	c, err := controllerNew(k, cfg)
	if err != nil {
		panic(err)
	}
	if _, err := c.Pool.CreateDMSD("snap", 1<<20); err != nil {
		panic(err)
	}
	target := &clusterTarget{c: c, vol: "snap"}
	if err := prefillVolume(k, c, "snap", snapWS); err != nil {
		panic(err)
	}
	pat := func(int) workload.Pattern {
		return workload.Uniform{Range: snapWS, Blocks: 4, WriteFrac: 0.25}
	}
	// Warm untraced, then measure traced.
	runWorkload(k, snapClients, 2*sim.Second, target, pat)
	tracer.SetEnabled(true)
	r := runWorkload(k, snapClients, snapDur, target, pat)
	tracer.SetEnabled(false)
	c.Stop()
	return r, tracer
}

// perfSnapshot optionally skips the E12, E13, E14, E15 and E16 arms: the
// snapshot tests double-run the builder to prove determinism, and paying
// for second full runs there would duplicate what TestE12Deterministic,
// TestE13Deterministic, TestE14Deterministic, TestE15QuickDeterministic
// and TestE16QuickDeterministic already assert while pushing the package
// past the default go-test timeout.
func perfSnapshot(seed int64, withBalance, withQoS, withGovernor, withHotCache, withGateway, batched bool) Snapshot {
	r, tracer := canonicalTraced(seed, batched)

	snap := Snapshot{
		Seed:      seed,
		Blades:    snapBlades,
		Clients:   snapClients,
		Ops:       r.Ops,
		MBps:      r.Bytes.MBps(),
		OpsPerSec: float64(r.Ops) / snapDur.Seconds(),
		MeanMs:    r.Latency.Mean().Millis(),
		P99Ms:     r.Latency.P99().Millis(),
		Phases:    make(map[string]PhaseQuantiles, len(trace.Phases)),
		CritPath:  critPathSummary(critpath.FromTracer(tracer)),
	}
	for _, ph := range trace.Phases {
		h := tracer.PhaseHistogram(ph)
		if h == nil || h.Count() == 0 {
			continue
		}
		snap.Phases[string(ph)] = PhaseQuantiles{
			Count:  h.Count(),
			MeanMs: h.Mean().Millis(),
			P50Ms:  h.P50().Millis(),
			P99Ms:  h.P99().Millis(),
		}
	}
	if withBalance {
		e12 := RunE12(seed)
		snap.Balance = BalanceSummary{
			UniformOpsPerSec:  e12.Uniform.OpsPerSec,
			StaticOpsPerSec:   e12.Static.OpsPerSec,
			BalancedOpsPerSec: e12.Balanced.OpsPerSec,
			StaticCV:          e12.Static.CV,
			BalancedCV:        e12.Balanced.CV,
			Migrations:        e12.Migrations,
		}
	}
	if withQoS {
		e13 := RunE13(seed)
		snap.QoS = QoSSummary{
			VictimSoloP99Ms: e13.Solo.VictimP99.Millis(),
			VictimOnP99Ms:   e13.On.VictimP99.Millis(),
			VictimOffP99Ms:  e13.Off.VictimP99.Millis(),
			VictimRatioOn:   e13.VictimRatioOn,
			VictimRatioOff:  e13.VictimRatioOff,
			AggregateFrac:   e13.AggregateFrac,
			Throttled:       e13.On.Throttled,
			Delayed:         e13.On.Delayed,
			GovernorNarrows: e13.On.Narrows,
			GovernorWidens:  e13.On.Widens,
		}
	}
	if withGovernor {
		e14 := RunE14Quick(seed)
		snap.Governor = GovernorSummary{
			SLOMs:             e14.Target.Millis(),
			PIVictimP99Ms:     e14.PI.VictimP99.Millis(),
			PISteadyP99Ms:     e14.PI.SteadyP99.Millis(),
			PISettleWindows:   e14.PI.ConvergeWindows,
			PIViolations:      e14.PI.ViolationWindows,
			PIReversals:       e14.PI.Reversals,
			PIScrubChunks:     e14.PI.ScrubChunks,
			StepVictimP99Ms:   e14.Step.VictimP99.Millis(),
			StepSteadyP99Ms:   e14.Step.SteadyP99.Millis(),
			StepSettleWindows: e14.Step.ConvergeWindows,
			StepViolations:    e14.Step.ViolationWindows,
			StepReversals:     e14.Step.Reversals,
			StepScrubChunks:   e14.Step.ScrubChunks,
			BurstPIReversals:  e14.BurstPI.Reversals,
			BurstPISteadyP99:  e14.BurstPI.SteadyP99.Millis(),
		}
	}
	if withHotCache {
		e15 := RunE15Quick(seed)
		snap.HotCache = HotCacheSummary{
			ShiftOffOpsPerSec:     e15.ShiftOff.OpsPerSec,
			ShiftMigrateOpsPerSec: e15.ShiftMigrate.OpsPerSec,
			ShiftHotOpsPerSec:     e15.ShiftHotCache.OpsPerSec,
			ShiftMigrateWinCV:     e15.ShiftMigrate.WinCV,
			ShiftHotWinCV:         e15.ShiftHotCache.WinCV,
			ShiftMigrateP99Ms:     e15.ShiftMigrate.P99.Millis(),
			ShiftHotP99Ms:         e15.ShiftHotCache.P99.Millis(),
			CacheHits:             e15.ShiftHotCache.CacheHits,
			CacheFills:            e15.ShiftHotCache.CacheFills,
			InvalKeys:             e15.ShiftHotCache.Invals,
			Migrations:            e15.ShiftMigrate.Migrations,
		}
	}
	if withGateway {
		e16 := RunE16Quick(seed)
		low, high := e16.Point(1, 2), e16.Point(1, 4)
		var satUtil, iamP99 float64
		for _, pt := range e16.Points {
			if pt.Shards == 4 && pt.OpsPerSec == e16.Ceiling(4) {
				satUtil = pt.ShardUtil
			}
			if ms := pt.IAMP99.Millis(); ms > iamP99 {
				iamP99 = ms
			}
		}
		c1, c4 := e16.Ceiling(1), e16.Ceiling(4)
		snap.Gateway = GatewaySummary{
			Users:                   e16.Users,
			Buckets:                 e16.Buckets,
			CeilingOpsPerSec:        c1,
			ShardedCeilingOpsPerSec: c4,
			LinearLowOpsPerSec:      low.OpsPerSec,
			LinearHighOpsPerSec:     high.OpsPerSec,
			IAMP99Ms:                iamP99,
			SaturatedShardUtil:      satUtil,
		}
		if c1 > 0 {
			snap.Gateway.CeilingRatio = c4 / c1
		}
	}
	return snap
}
