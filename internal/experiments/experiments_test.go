package experiments

import (
	"repro/internal/qos"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// runE12Shared memoizes one full seed-1 E12 evaluation: the shape test
// and the determinism test both need it, and RunE12 is deterministic per
// seed, so re-simulating its three cluster arms per test only burns the
// package's go-test timeout budget.
var e12Shared = sync.OnceValue(func() E12Result { return RunE12(1) })

// row helpers for asserting on table contents.
func cell(tab interface{ String() string }, _ int) string { return tab.String() }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	skipIfShort(t)
	tab := E1(1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// achieved Gb/s column is index 2.
	one := parseF(t, tab.Rows[0][2])
	two := parseF(t, tab.Rows[1][2])
	four := parseF(t, tab.Rows[2][2])
	eight := parseF(t, tab.Rows[3][2])
	if one < 3.5 || one > 4.2 {
		t.Fatalf("1 blade = %v, want ~4", one)
	}
	if two < 7.0 || two > 8.4 {
		t.Fatalf("2 blades = %v, want ~8", two)
	}
	if four < 9.0 || four > 10.1 {
		t.Fatalf("4 blades = %v, want ~10", four)
	}
	if eight < four*0.95 {
		t.Fatalf("8 blades (%v) below 4-blade port limit (%v)", eight, four)
	}
}

func TestE2ScalesAndBeatsBaseline(t *testing.T) {
	skipIfShort(t)
	tab := E2(1)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	mbps := func(i int) float64 { return parseF(t, tab.Rows[i][2]) }
	// Monotone growth through the blade sweep (within 5% noise).
	for i := 1; i < 5; i++ {
		if mbps(i) < mbps(i-1)*0.95 {
			t.Fatalf("throughput shrank adding blades: row %d %v -> %v\n%s", i, mbps(i-1), mbps(i), tab)
		}
	}
	// Meaningful scaling: 16 blades ≥ 3× 1 blade.
	if mbps(4) < 3*mbps(0) {
		t.Fatalf("16 blades (%v) < 3× 1 blade (%v)\n%s", mbps(4), mbps(0), tab)
	}
	// 8-blade cluster beats the dual-controller baseline.
	if mbps(3) <= mbps(5) {
		t.Fatalf("8-blade cluster (%v) did not beat baseline (%v)\n%s", mbps(3), mbps(5), tab)
	}
}

func TestE3HotSpotContrast(t *testing.T) {
	skipIfShort(t)
	tab := E3(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	clusterCV := parseF(t, tab.Rows[0][3])
	baselineCV := parseF(t, tab.Rows[1][3])
	if clusterCV > 0.2 {
		t.Fatalf("cluster load CV = %v, want ~0 (balanced)\n%s", clusterCV, tab)
	}
	if baselineCV < 1.0 {
		t.Fatalf("baseline load CV = %v, want ~1.41 (one hot controller)\n%s", baselineCV, tab)
	}
	clusterOps := parseF(t, tab.Rows[0][1])
	baseOps := parseF(t, tab.Rows[1][1])
	if clusterOps <= baseOps {
		t.Fatalf("cluster ops/s (%v) did not beat hot-volume baseline (%v)\n%s", clusterOps, baseOps, tab)
	}
}

func TestE4RebuildScales(t *testing.T) {
	skipIfShort(t)
	tab := E4(1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	t1 := parseF(t, tab.Rows[0][1])
	t4 := parseF(t, tab.Rows[2][1])
	if t4 >= t1 {
		t.Fatalf("4-blade rebuild (%vs) not faster than 1-blade (%vs)\n%s", t4, t1, tab)
	}
}

func TestE5ThinBeatsThick(t *testing.T) {
	skipIfShort(t)
	tab := E5(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	thick := parseF(t, tab.Rows[0][1])
	thin := parseF(t, tab.Rows[1][1])
	if thin < 2*thick {
		t.Fatalf("thin fits %v tenants vs thick %v; want ≥2×\n%s", thin, thick, tab)
	}
}

func TestE6ReplicationSurvivability(t *testing.T) {
	skipIfShort(t)
	tab := E6(1)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		lostNm1 := parseF(t, row[2])
		if lostNm1 != 0 {
			t.Fatalf("N=%d lost %v blocks after N-1 failures\n%s", i+1, lostNm1, tab)
		}
	}
	// With N=1, killing one blade must lose something (write-back with no
	// replication), or the contrast claim is hollow.
	if lostN := parseF(t, tab.Rows[0][3]); lostN == 0 {
		t.Fatalf("N=1 lost nothing after 1 failure; premise broken\n%s", tab)
	}
}

func TestE7FirstTouchThenLocal(t *testing.T) {
	skipIfShort(t)
	tab := E7(1)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first := parseF(t, tab.Rows[0][2])
	if first < 80 { // ≥ 2×40 ms one-way
		t.Fatalf("first remote read %v ms, want ≥ RTT 80ms\n%s", first, tab)
	}
	for i := 1; i < 8; i++ {
		if l := parseF(t, tab.Rows[i][2]); l > first/4 {
			t.Fatalf("read %d latency %v ms not local-like\n%s", i+1, l, tab)
		}
	}
}

func TestE8SyncTracksDistanceAsyncDoesNot(t *testing.T) {
	skipIfShort(t)
	tab := E8(1)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rows alternate sync/async per distance.
	sync1 := parseF(t, tab.Rows[0][2])    // 1 ms sync
	sync100 := parseF(t, tab.Rows[6][2])  // 100 ms sync
	async100 := parseF(t, tab.Rows[7][2]) // 100 ms async
	if sync100 < 10*sync1 {
		t.Fatalf("sync latency did not track distance: %v vs %v\n%s", sync1, sync100, tab)
	}
	if async100 > sync100/4 {
		t.Fatalf("async latency %v not ≪ sync %v at 100ms\n%s", async100, sync100, tab)
	}
	// Sync never loses writes; async loses some at the largest distance.
	for i := 0; i < 8; i += 2 {
		if lost := parseF(t, tab.Rows[i][3]); lost != 0 {
			t.Fatalf("sync lost %v writes\n%s", lost, tab)
		}
	}
	if lost := parseF(t, tab.Rows[7][3]); lost == 0 {
		t.Fatalf("async lost nothing on immediate disaster; premise broken\n%s", tab)
	}
}

func TestE9EncryptionParallelism(t *testing.T) {
	skipIfShort(t)
	tab := E9(1)
	enc1 := parseF(t, tab.Rows[0][2])
	enc8 := parseF(t, tab.Rows[3][2])
	if enc1 > 2.2 {
		t.Fatalf("1-blade encrypted rate %v, want ≤ 2 Gb/s engine\n%s", enc1, tab)
	}
	if enc8 < 8.5 {
		t.Fatalf("8-blade encrypted rate %v, want near port speed\n%s", enc8, tab)
	}
}

func TestE10Availability(t *testing.T) {
	skipIfShort(t)
	tab := E10(1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	before := parseF(t, tab.Rows[0][1])
	after := parseF(t, tab.Rows[2][1])
	if after < before*0.5 {
		t.Fatalf("post-recovery throughput %v ≪ pre-failure %v\n%s", after, before, tab)
	}
	// Live blades: 8 before, 6 after.
	if tab.Rows[0][4] != "8" || tab.Rows[2][4] != "6" {
		t.Fatalf("live blade counts wrong\n%s", tab)
	}
}

// skipIfShort skips experiment regeneration in -short mode: each test
// re-runs a full simulated cluster, which the race-enabled tier of the
// verify recipe (`go test -race -short ./...`) cannot afford.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment regeneration skipped in -short mode")
	}
}

// TestE12RebalanceRecovers checks the experiment's acceptance claims: with
// balancing on, under the same Zipf seed, the per-blade load CV drops
// below the hot-spot watchdog threshold and throughput recovers to ≥ 90%
// of the uniform-workload baseline.
func TestE12RebalanceRecovers(t *testing.T) {
	skipIfShort(t)
	r := e12Shared()
	if r.Static.CV <= r.CVMax || r.Static.Ratio <= r.RatioMax {
		t.Fatalf("static-path Zipf run shows no hot-spot (CV %.2f, max/mean %.2f vs thresholds %.2f/%.2f); premise broken",
			r.Static.CV, r.Static.Ratio, r.CVMax, r.RatioMax)
	}
	if r.Migrations == 0 {
		t.Fatalf("balanced run migrated no homes: %+v", r)
	}
	if r.Balanced.CV >= r.CVMax {
		t.Fatalf("balanced load CV %.2f did not fall below the watchdog threshold %.2f", r.Balanced.CV, r.CVMax)
	}
	if got := r.Balanced.OpsPerSec / r.Uniform.OpsPerSec; got < 0.90 {
		t.Fatalf("balanced throughput %.1f%% of uniform baseline, want ≥ 90%%", 100*got)
	}
	// Balancing must actually help over leaving the skew in place.
	if r.Balanced.OpsPerSec <= r.Static.OpsPerSec {
		t.Fatalf("balancing did not improve throughput: %v vs static %v", r.Balanced.OpsPerSec, r.Static.OpsPerSec)
	}
	// The watchdog and the balancer watch the same signal: the balanced
	// run must carry at least one hot-spot warn from the skewed warm-up.
	warned := false
	for _, ev := range r.Events {
		if strings.Contains(ev.String(), "hot-spot") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no hot-spot watchdog event in the balanced run: %v", r.Events)
	}
}

// TestE12Deterministic: two same-seed runs must render byte-identical
// tables — balancer decisions, watchdog events, skew sparklines and all.
// One of the runs is the memoized evaluation shared with the shape test.
func TestE12Deterministic(t *testing.T) {
	skipIfShort(t)
	a := e12Table(e12Shared()).String()
	b := E12(1).String()
	if a != b {
		t.Fatalf("E12 not deterministic across runs with the same seed:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

func TestE11LossyFabricDeterministic(t *testing.T) {
	skipIfShort(t)
	tab := E11(1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	before := parseF(t, tab.Rows[0][1])
	after := parseF(t, tab.Rows[2][1])
	if after < before*0.5 {
		t.Fatalf("post-recovery throughput %v ≪ pre-failure %v\n%s", after, before, tab)
	}
	if tab.Rows[0][4] != "8" || tab.Rows[2][4] != "6" {
		t.Fatalf("live blade counts wrong\n%s", tab)
	}
	// Outside the failure window the retry layer must absorb the injected
	// faults completely: bounded degraded errors belong to the kill, not
	// to steady-state loss.
	if tab.Rows[0][3] != "0" || tab.Rows[2][3] != "0" {
		t.Fatalf("steady-state client errors under faults\n%s", tab)
	}
	var notes string
	for _, n := range tab.Notes {
		notes += n + "\n"
	}
	if !strings.Contains(notes, "lost after failures: 0") {
		t.Fatalf("acknowledged writes were lost\n%s", tab)
	}
	// Faults must actually have been injected, or the experiment is
	// vacuous.
	if strings.Contains(notes, "injected faults: 0 dropped") {
		t.Fatalf("no faults injected\n%s", tab)
	}

	// Determinism: the fault plan draws from the seeded kernel RNG, so a
	// second run with the same seed must be byte-identical — drops,
	// duplicates, retries, sparkline and all.
	if again := E11(1); again.String() != tab.String() {
		t.Fatalf("E11 not deterministic across runs with the same seed:\n--- run 1\n%s\n--- run 2\n%s", tab, again)
	}
}

// TestE13Isolation checks the experiment's acceptance claims at full
// scale: the contended-without-QoS ablation demonstrably violates the
// victim bound (the premise), QoS brings the victim's p99 back within
// e13VictimRatioMax of solo, the aggressor is actually shaped (delays and
// sheds both observed), aggregate client throughput is not sacrificed,
// and the rebuild still completes in both contended arms.
func TestE13Isolation(t *testing.T) {
	skipIfShort(t)
	r := RunE13(1)
	if r.VictimRatioOff <= r.RatioMax {
		t.Fatalf("QoS-off ablation shows no interference (victim p99 ratio %.2f vs bound %.2f); premise broken",
			r.VictimRatioOff, r.RatioMax)
	}
	if r.VictimRatioOn > r.RatioMax {
		t.Fatalf("QoS-on victim p99 ratio %.2f exceeds bound %.2f (solo %.3fms, contended %.3fms)",
			r.VictimRatioOn, r.RatioMax, r.Solo.VictimP99.Millis(), r.On.VictimP99.Millis())
	}
	if r.On.Throttled == 0 || r.On.Delayed == 0 {
		t.Fatalf("aggressor bucket never bound: delayed %d, throttled %d", r.On.Delayed, r.On.Throttled)
	}
	if r.AggregateFrac < r.AggregateMin {
		t.Fatalf("QoS-on aggregate ops/s is %.1f%% of QoS-off, want ≥ %.0f%%",
			100*r.AggregateFrac, 100*r.AggregateMin)
	}
	if r.On.RebuildMs <= 0 || r.Off.RebuildMs <= 0 {
		t.Fatalf("rebuild did not complete in a contended arm: on %.1fms off %.1fms",
			r.On.RebuildMs, r.Off.RebuildMs)
	}
	// The governor must have actually defended the SLO at least once, and
	// background work must have flowed through its lane.
	if r.On.Narrows == 0 {
		t.Fatalf("governor never narrowed the background lane: %+v", r.On)
	}
	if r.On.Lanes[qos.LaneBackground].Dispatched == 0 {
		t.Fatalf("no background-lane dispatches despite a concurrent rebuild: %+v", r.On.Lanes)
	}
}

// TestE13Deterministic: two same-seed runs must render byte-identical
// tables — governor decisions, throttle counters, lane stats and all.
// The reduced scale exercises the identical code path at a fraction of
// the full experiment's runtime.
func TestE13Deterministic(t *testing.T) {
	skipIfShort(t)
	a := E13Q(1).String()
	b := E13Q(1).String()
	if a != b {
		t.Fatalf("E13 not deterministic across runs with the same seed:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// TestE14Quick checks the governor A/B acceptance claims at the reduced
// scale (the same arms CI smokes via benchrunner -only E14Q). The step
// arm must actually exhibit the halve/double pathology — SLO breaches
// after onset — and the PI arm must settle strictly faster, breach in no
// more windows, reverse actuation direction no more often, and hold the
// victim's steady-state p99 within the SLO under both load shapes,
// without starving the scrub.
func TestE14Quick(t *testing.T) {
	skipIfShort(t)
	r := RunE14Quick(1)

	// Premise: the aggressor genuinely breaches the SLO under both
	// governors (otherwise there is nothing to regulate).
	if r.Step.ViolationWindows == 0 || r.PI.ViolationWindows == 0 {
		t.Fatalf("step aggressor never breached the SLO (step %d, pi %d violation windows); premise broken",
			r.Step.ViolationWindows, r.PI.ViolationWindows)
	}
	// Both arms start parked at the ceiling and must actually actuate.
	for _, a := range []E14Arm{r.Step, r.PI, r.BurstStep, r.BurstPI} {
		if a.Narrows == 0 {
			t.Fatalf("%s arm never narrowed the background lane", a.Mode)
		}
	}

	// Step aggressor: faster settling, no more breaches, no more
	// oscillation, steady state within the SLO.
	if r.PI.ConvergeWindows >= r.Step.ConvergeWindows {
		t.Fatalf("PI settled in %d windows, step in %d; want strictly faster",
			r.PI.ConvergeWindows, r.Step.ConvergeWindows)
	}
	if r.PI.ViolationWindows > r.Step.ViolationWindows {
		t.Fatalf("PI breached %d windows, step %d", r.PI.ViolationWindows, r.Step.ViolationWindows)
	}
	if r.PI.Reversals > r.Step.Reversals {
		t.Fatalf("PI reversed actuation %d times, step %d", r.PI.Reversals, r.Step.Reversals)
	}
	if r.PI.SteadyP99 > r.Target {
		t.Fatalf("PI steady-state p99 %.2fms exceeds SLO %.2fms",
			r.PI.SteadyP99.Millis(), r.Target.Millis())
	}

	// Burst aggressor: pulses must not make the PI loop oscillate or
	// breach more than the step governor.
	if r.BurstPI.ConvergeWindows > r.BurstStep.ConvergeWindows {
		t.Fatalf("burst PI settled in %d windows, step in %d",
			r.BurstPI.ConvergeWindows, r.BurstStep.ConvergeWindows)
	}
	if r.BurstPI.ViolationWindows > r.BurstStep.ViolationWindows {
		t.Fatalf("burst PI breached %d windows, step %d",
			r.BurstPI.ViolationWindows, r.BurstStep.ViolationWindows)
	}
	if r.BurstPI.Reversals > r.BurstStep.Reversals {
		t.Fatalf("burst PI reversed actuation %d times, step %d",
			r.BurstPI.Reversals, r.BurstStep.Reversals)
	}
	if r.BurstPI.SteadyP99 > r.Target {
		t.Fatalf("burst PI steady-state p99 %.2fms exceeds SLO %.2fms",
			r.BurstPI.SteadyP99.Millis(), r.Target.Millis())
	}

	// The scrub must keep flowing: converging onto the setpoint should
	// not cost more than a fifth of the step governor's harvest.
	if float64(r.PI.ScrubChunks) < 0.8*float64(r.Step.ScrubChunks) {
		t.Fatalf("PI scrub harvest %d chunks vs step %d; background starved",
			r.PI.ScrubChunks, r.Step.ScrubChunks)
	}
}

// TestE14Deterministic: two same-seed runs must render byte-identical
// tables — every PI decision, weight trace glyph, and scrub count.
func TestE14Deterministic(t *testing.T) {
	skipIfShort(t)
	a := E14Q(1).String()
	b := E14Q(1).String()
	if a != b {
		t.Fatalf("E14 not deterministic across runs with the same seed:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}
