package experiments

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E11 — §6.3 under a lossy fabric. E10 shows availability through blade
// failures on a perfect interconnect; E11 repeats the failure scenario
// while every fabric link drops 1% of messages, duplicates 0.5%, and
// delays 5% by up to 5 ms (seeded, so two runs with the same seed are
// byte-identical). The retry layer (bounded attempts, jittered exponential
// backoff) must convert the losses into bounded degraded-mode errors, not
// wedged processes: a burst of acknowledged writes before the failures
// must remain fully readable afterwards, and throughput must recover once
// the survivors finish the recovery protocol.
func E11(seed int64) *metrics.Table {
	tab := metrics.NewTable("E11 — §6.3: availability under a lossy fabric (1% drop, 0.5% dup, 5% delay ≤5 ms)",
		"phase", "MB/s", "ops/s", "errors", "live blades")
	const (
		blades  = 8
		clients = 32
		ws      = 4 << 10
		// nAck acknowledged writes are tracked individually and read back
		// after the failures — the zero-lost-writes acceptance check.
		nAck = 96
	)
	k := sim.NewKernel(seed)
	cfg := clusterConfig(blades)
	// Three cache copies per dirty block: the experiment kills two blades,
	// and the write-durability claim (E6) requires N-1 ≥ kills.
	cfg.ReplicationN = 3
	// Per-attempt deadline far above the healthy fabric RTT but small
	// enough that four attempts with backoff resolve inside the failure
	// window; a dropped message costs one timeout, not a wedged client.
	cfg.FabricRetry = simnet.RetryPolicy{
		Timeout:    50 * sim.Millisecond,
		Attempts:   4,
		Backoff:    sim.Millisecond,
		MaxBackoff: 8 * sim.Millisecond,
		Jitter:     sim.Millisecond,
	}
	cfg.FabricFaults = &simnet.FaultPlan{
		DropProb:      0.01,
		DupProb:       0.005,
		DelayProb:     0.05,
		MaxExtraDelay: 5 * sim.Millisecond,
	}
	// Tracer attached from construction but enabled only after the warm
	// and ack phases: the measured windows get per-phase attribution
	// without retaining millions of warm-up spans.
	tracer := trace.NewTracer(k)
	cfg.Tracer = tracer
	c, err := controllerNew(k, cfg)
	if err != nil {
		panic(err)
	}
	c.Pool.CreateDMSD("v", 1<<20)
	target := &clusterTarget{c: c, vol: "v"}
	if err := prefillVolume(k, c, "v", ws); err != nil {
		panic(err)
	}
	pat := func(int) workload.Pattern {
		return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0}
	}
	// Warm caches. Warming is slower than E10's because every dropped
	// fabric message costs a retry timeout; give it the same 8 s the
	// post-recovery re-warm gets so the before/after rows compare
	// like-for-like.
	runWorkload(k, clients, 8*sim.Second, target, pat)

	// Tracked write burst: every write the cluster acknowledges is
	// recorded (in issue order — a slice, not a map, so the readback I/O
	// sequence is deterministic) and must survive the blade kills.
	type ack struct {
		lba int64
		val byte
	}
	var acked []ack
	attempted, ackErrs := 0, 0
	if err := prefill(k, func(p *sim.Proc) error {
		blk := make([]byte, c.BlockSize())
		for i := 0; i < nAck; i++ {
			lba := int64(ws + i*3) // outside the read working set
			val := byte(i + 1)
			for j := range blk {
				blk[j] = val
			}
			attempted++
			if err := c.Write(p, c.Blade(i%blades), "v", lba, blk, 0); err != nil {
				ackErrs++ // degraded-mode failure: not acknowledged, not counted
				continue
			}
			acked = append(acked, ack{lba, val})
		}
		return nil
	}); err != nil {
		panic(err)
	}

	// Telemetry scraper over the measured windows: hot-spot, SLO (windowed
	// p99 against a 100 ms objective, client-visible errors, degraded-mode
	// duration) and stall watchdogs, sampling every 100 ms of virtual time.
	// Watchdog events also land in the trace stream while the tracer is on.
	scr := telemetry.NewScraper(k, c.Reg, 100*sim.Millisecond)
	scr.Tracer = tracer
	scr.AddWatchdog(&telemetry.HotSpot{Pattern: "blade/*/ops"})
	scr.AddWatchdog(&telemetry.SLO{
		Hist:     "cluster/op_latency",
		P99Max:   100 * sim.Millisecond,
		Errors:   "cluster/errors",
		Degraded: "cluster/degraded_ops",
	})
	scr.AddWatchdog(&telemetry.Stall{Queue: "disk/*/queue_depth", Throughput: "cluster/ops"})
	stopScrape := scr.Start()

	series := metrics.NewTimeSeries(0, 250*sim.Millisecond)
	measure := func(name string, dur sim.Duration) {
		before := c.Errors
		r := &workload.Runner{
			K: k, Clients: clients, Pattern: pat, Target: target,
			Duration: dur, Series: series,
		}
		r.Run()
		tab.AddRow(name, fmtF(r.Bytes.MBps()), int64(float64(r.Ops)/dur.Seconds()),
			c.Errors-before, len(c.Alive()))
	}

	tracer.SetEnabled(true)
	measure("before failures", sim.Second)

	killErr := c.Errors
	during := &workload.Runner{K: k, Clients: clients, Pattern: pat, Target: target, Duration: sim.Second, Series: series}
	during.Start()
	recovered := false
	var recoveryTook sim.Duration
	k.After(200*sim.Millisecond, func() {
		k.Go("killer", func(p *sim.Proc) {
			t0 := p.Now()
			c.FailBlade(p, 0)
			c.FailBlade(p, 1)
			recoveryTook = p.Now().Sub(t0)
			recovered = true
		})
	})
	k.RunFor(sim.Second)
	tab.AddRow("failure window", fmtF(during.Bytes.MBps()),
		int64(float64(during.Ops)/1.0), c.Errors-killErr, len(c.Alive()))
	for !recovered {
		k.RunFor(100 * sim.Millisecond)
	}
	tracer.SetEnabled(false)                           // the re-warm is unmeasured: keep it out of the breakdown
	runWorkload(k, clients, 8*sim.Second, target, pat) // re-warm (unmeasured)
	tracer.SetEnabled(true)
	measure("after recovery", sim.Second)
	tracer.SetEnabled(false)
	stopScrape()

	// Zero-lost-acknowledged-writes check: read back every acked write
	// through the survivors, over the still-lossy fabric.
	lost := 0
	if err := prefill(k, func(p *sim.Proc) error {
		for _, a := range acked {
			got, err := c.Read(p, c.PickBlade(), "v", a.lba, 1, 0)
			if err != nil || got[0] != a.val || got[len(got)-1] != a.val {
				lost++
			}
		}
		return nil
	}); err != nil {
		panic(err)
	}
	c.Stop()

	tot := c.FabricTotals()
	f := c.Net.Faults
	tab.AddNote("both failures detected and recovered in %s ms of virtual time", fmtF(recoveryTook.Millis()))
	tab.AddNote("acknowledged writes: %d of %d attempted; lost after failures: %d (must be 0)",
		len(acked), attempted, lost)
	tab.AddNote("injected faults: %d dropped, %d duplicated, %d delayed",
		f.Dropped, f.Duplicated, f.Delayed)
	tab.AddNote("retry layer: %d timeouts, %d retries, %d gave-up calls, %d degraded ops",
		tot.RPC.Timeouts, tot.RPC.Retries, tot.RPC.GaveUp, tot.DegradedOps)
	tab.AddNote("%s", series.Spark("throughput over time"))
	tab.AddNote("per-phase latency breakdown (measured windows, lossy fabric; coherence includes nested fabric time):\n%s",
		tracer.BreakdownTable("").String())
	tab.AddNote("per-blade load over the telemetry window (blades 0–1 stop moving after the kill):\n%s",
		scr.SkewTable("E11 — per-blade ops", "blade/*/ops").String())
	tab.AddNote("%s", scr.Report().String())
	return tab
}
