package experiments

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E13 — §2.4/§4: multi-tenant isolation under admission control and
// weighted-fair I/O scheduling. A small victim tenant with a hot working
// set and the highest cache priority shares the cluster with a saturating
// aggressor tenant and a concurrent distributed rebuild — the exact mix
// the paper's "storage services do not impede foreground I/O" claim is
// about. Three arms on the same seed:
//
//	solo — the victim alone on an idle cluster: the baseline p99.
//	QoS on — admission throttles the aggressor to its bucket rate, WFQ
//	  gives the victim's lane 8× the aggressor's share of every disk and
//	  blade CPU, and the governor squeezes the rebuild's background lane
//	  when the foreground p99 nears the SLO.
//	QoS off — the ablation: same contention, FIFO everywhere.
//
// Acceptance (checked by the E13 tests): with QoS on the victim's p99
// stays within e13VictimRatioMax of solo while the same contention with
// QoS off pushes it well past that; the aggressor is held near its bucket
// rate with sheds (Throttled > 0) proving the wait queue bounds; the
// rebuild still completes; and aggregate client throughput stays within
// e13AggregateMin of the QoS-off arm — isolation is not purchased by
// idling the cluster. Same seed → byte-identical tables.
const (
	// e13VictimRatioMax bounds contended-with-QoS victim p99 over solo.
	e13VictimRatioMax = 1.25
	// e13AggregateMin bounds QoS-on aggregate ops/s over QoS-off.
	e13AggregateMin = 0.90
)

// e13Scale sizes one E13 run. Full scale is the experiment; quick scale
// (fewer clients, shorter windows) is the CI smoke and test variant.
type e13Scale struct {
	blades     int
	victims    int
	aggressors int
	victimWS   int64 // victim hot set, blocks (own region)
	aggWS      int64 // aggressor region, blocks
	warm       sim.Duration
	dur        sim.Duration
	agg        qos.TenantSpec
}

func e13Full() e13Scale {
	return e13Scale{
		blades:     8,
		victims:    4,
		aggressors: 24,
		victimWS:   1 << 10,
		aggWS:      24 << 10,
		warm:       sim.Second,
		dur:        2 * sim.Second,
		// Sized near the aggressor's fair share of the contended disks so
		// admission shaves its bursts instead of idling capacity; the tight
		// wait queue is what produces visible sheds.
		agg: qos.TenantSpec{Rate: 3000, Burst: 64, MaxQueue: 8},
	}
}

func e13Quick() e13Scale {
	return e13Scale{
		blades:     4,
		victims:    2,
		aggressors: 12,
		victimWS:   1 << 9,
		aggWS:      8 << 10,
		warm:       500 * sim.Millisecond,
		dur:        sim.Second,
		agg:        qos.TenantSpec{Rate: 2000, Burst: 64, MaxQueue: 8},
	}
}

// e13Target drives one tenant's ops at a fixed priority into its own LBA
// region, tagging every op's process with the tenant so the admission
// bucket and the scheduling lanes see it.
type e13Target struct {
	c      *controller.Cluster
	vol    string
	tenant string
	prio   int
	offset int64
	buf    []byte
}

func (t *e13Target) BlockSize() int { return t.c.BlockSize() }

func (t *e13Target) Read(p *sim.Proc, lba int64, blocks int) error {
	qos.SetCtx(p, qos.Ctx{Tenant: t.tenant})
	_, err := t.c.Read(p, t.c.PickBlade(), t.vol, t.offset+lba, blocks, t.prio)
	return err
}

func (t *e13Target) Write(p *sim.Proc, lba int64, blocks int) error {
	qos.SetCtx(p, qos.Ctx{Tenant: t.tenant})
	need := blocks * t.c.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.c.WriteR(p, t.c.PickBlade(), t.vol, t.offset+lba, t.buf[:need], t.prio, 0)
}

// E13Arm is one scenario's measured window.
type E13Arm struct {
	VictimOpsPerSec float64
	VictimP50       sim.Duration
	VictimP99       sim.Duration
	AggOpsPerSec    float64
	AggregateOps    float64 // victim + aggressor ops/s
	Admitted        int64   // aggressor ops admitted by the bucket
	Delayed         int64   // aggressor ops delayed for tokens
	Throttled       int64   // aggressor ops shed with ErrThrottled
	RebuildMs       float64 // rebuild wall time (0 when no rebuild ran)
	Narrows, Widens int64   // governor decisions (QoS-on arm only)
	BGWeight        float64 // background lane weight at the end
	Lanes           [qos.NumLanes]qos.LaneStats
}

// e13Arm runs one (contended?, QoS?) combination on a fresh kernel.
func e13Arm(seed int64, sc e13Scale, contended, qosOn bool) (E13Arm, []telemetry.Event) {
	k := sim.NewKernel(seed)
	cfg := clusterConfig(sc.blades)
	cfg.QoS = &qos.Config{
		Tenants: map[string]qos.TenantSpec{"agg": sc.agg},
		Governor: qos.GovernorConfig{
			P99Target: 50 * sim.Millisecond,
		},
	}
	c, err := controllerNew(k, cfg)
	if err != nil {
		panic(err)
	}
	c.Pool.CreateDMSD("v", 1<<20)
	if err := prefillVolume(k, c, "v", sc.victimWS+sc.aggWS); err != nil {
		panic(err)
	}

	var scr *telemetry.Scraper
	var stopScrape func()
	if qosOn {
		c.QoS.SetEnabled(true)
		scr = telemetry.NewScraper(k, c.Reg, 100*sim.Millisecond)
		scr.AddWatchdog(c.QoS.AttachGovernor(cfg.QoS.Governor))
		stopScrape = scr.Start()
	}

	victim := &e13Target{c: c, vol: "v", tenant: "victim", prio: 3}
	newRunner := func(clients int, t workload.Target, pat workload.Pattern, d sim.Duration) *workload.Runner {
		return &workload.Runner{
			K:        k,
			Clients:  clients,
			Target:   t,
			Pattern:  func(int) workload.Pattern { return pat },
			Duration: d,
		}
	}
	victimPat := workload.Uniform{Range: sc.victimWS, Blocks: 4}
	aggressor := &e13Target{c: c, vol: "v", tenant: "agg", prio: 0, offset: sc.victimWS}
	aggPat := workload.Uniform{Range: sc.aggWS, Blocks: 8, WriteFrac: 0.5}

	// Warm-up: caches fill under the arm's contention mix (no rebuild yet).
	newRunner(sc.victims, victim, victimPat, sc.warm).Run()
	if contended {
		newRunner(sc.aggressors, aggressor, aggPat, sc.warm).Run()
	}

	// Contended arms lose a drive at the window edge; the rebuild runs
	// through the measured window as the §2.4 background service.
	rebuildDone := false
	var rebuildTime sim.Duration
	if contended {
		c.Groups[0].Disks()[1].Fail()
	}
	vr := newRunner(sc.victims, victim, victimPat, sc.dur)
	var ar *workload.Runner
	vr.Start()
	if contended {
		ar = newRunner(sc.aggressors, aggressor, aggPat, sc.dur)
		ar.Start()
		k.Go("e13-rebuild", func(p *sim.Proc) {
			t0 := p.Now()
			if err := c.DistributedRebuild(p, 0, 1); err != nil {
				panic(fmt.Sprintf("e13 rebuild: %v", err))
			}
			rebuildTime = p.Now().Sub(t0)
			rebuildDone = true
		})
	}
	k.RunFor(sc.dur)
	vr.Bytes.CloseAt(k.Now())
	if ar != nil {
		ar.Bytes.CloseAt(k.Now())
	}
	// Clients have stopped; let a straggling rebuild drain (bounded).
	for i := 0; contended && !rebuildDone && i < 1200; i++ {
		k.RunFor(100 * sim.Millisecond)
	}
	if contended && !rebuildDone {
		panic("e13: rebuild did not complete")
	}

	arm := E13Arm{
		VictimOpsPerSec: float64(vr.Ops) / sc.dur.Seconds(),
		VictimP50:       vr.Latency.P50(),
		VictimP99:       vr.Latency.P99(),
		BGWeight:        c.QoS.BackgroundWeight(),
		Lanes:           c.QoS.LaneTotals(),
	}
	arm.AggregateOps = arm.VictimOpsPerSec
	if ar != nil {
		arm.AggOpsPerSec = float64(ar.Ops) / sc.dur.Seconds()
		arm.AggregateOps += arm.AggOpsPerSec
		arm.RebuildMs = rebuildTime.Millis()
	}
	for _, ts := range c.QoS.Admission().Stats() {
		if ts.Tenant == "agg" {
			arm.Admitted = ts.Admitted
			arm.Delayed = ts.Delayed
			arm.Throttled = ts.Throttled
		}
	}
	var events []telemetry.Event
	if scr != nil {
		g := c.QoS.Governor()
		arm.Narrows, arm.Widens = g.Narrows, g.Widens
		events = scr.Events()
		stopScrape()
	}
	c.Stop()
	return arm, events
}

// E13Result carries the three arms and derived acceptance metrics.
type E13Result struct {
	Solo E13Arm // victim alone, QoS off
	On   E13Arm // contended, QoS on
	Off  E13Arm // contended, QoS off (the ablation)

	VictimRatioOn  float64 // On.VictimP99 / Solo.VictimP99
	VictimRatioOff float64 // Off.VictimP99 / Solo.VictimP99
	AggregateFrac  float64 // On.AggregateOps / Off.AggregateOps

	RatioMax, AggregateMin float64
	// AggRate echoes the aggressor's configured bucket rate (blocks/s).
	AggRate float64
	// Events is the QoS-on arm's watchdog stream — every governor
	// decision, as mirrored into trace when a tracer is attached.
	Events []telemetry.Event
}

func runE13Scaled(seed int64, sc e13Scale) E13Result {
	res := E13Result{RatioMax: e13VictimRatioMax, AggregateMin: e13AggregateMin, AggRate: sc.agg.Rate}
	res.Solo, _ = e13Arm(seed, sc, false, false)
	res.On, res.Events = e13Arm(seed, sc, true, true)
	res.Off, _ = e13Arm(seed, sc, true, false)
	if p := res.Solo.VictimP99; p > 0 {
		res.VictimRatioOn = float64(res.On.VictimP99) / float64(p)
		res.VictimRatioOff = float64(res.Off.VictimP99) / float64(p)
	}
	if res.Off.AggregateOps > 0 {
		res.AggregateFrac = res.On.AggregateOps / res.Off.AggregateOps
	}
	return res
}

// RunE13 executes the three full-scale arms under one seed.
func RunE13(seed int64) E13Result { return runE13Scaled(seed, e13Full()) }

// RunE13Quick is the reduced-scale variant for CI smoke and -short tests.
func RunE13Quick(seed int64) E13Result { return runE13Scaled(seed, e13Quick()) }

func e13Table(title string, r E13Result) *metrics.Table {
	tab := metrics.NewTable(title,
		"arm", "victim p50 ms", "victim p99 ms", "victim ops/s", "aggressor ops/s", "rebuild ms")
	row := func(name string, a E13Arm) {
		reb := "-"
		if a.RebuildMs > 0 {
			reb = fmtF(a.RebuildMs)
		}
		tab.AddRow(name, fmtDur(a.VictimP50), fmtDur(a.VictimP99),
			int64(a.VictimOpsPerSec), int64(a.AggOpsPerSec), reb)
	}
	row("victim solo", r.Solo)
	row("contended, QoS on", r.On)
	row("contended, QoS off", r.Off)
	tab.AddNote("victim p99 vs solo: QoS on %sx (bound %sx), QoS off %sx",
		fmtF(r.VictimRatioOn), fmtF(r.RatioMax), fmtF(r.VictimRatioOff))
	tab.AddNote("aggregate client ops/s: on %s vs off %s (%s%%, floor %s%%)",
		fmtF(r.On.AggregateOps), fmtF(r.Off.AggregateOps),
		fmtF(100*r.AggregateFrac), fmtF(100*e13AggregateMin))
	tab.AddNote("aggressor bucket (QoS on): admitted %d, delayed %d, throttled %d (rate %s blk/s)",
		r.On.Admitted, r.On.Delayed, r.On.Throttled, fmtF(r.AggRate))
	tab.AddNote("governor: %d narrows, %d widens, final bg weight %s",
		r.On.Narrows, r.On.Widens, fmtF(r.On.BGWeight))
	for l := 0; l < qos.NumLanes; l++ {
		tab.AddNote("lane %-3s (QoS on): dispatched %d, peak wait %d",
			qos.LaneName(l), r.On.Lanes[l].Dispatched, r.On.Lanes[l].MaxDepth)
	}
	for _, ev := range r.Events {
		tab.AddNote("event: %s", ev)
	}
	return tab
}

// E13 renders the experiment table.
func E13(seed int64) *metrics.Table {
	return e13Table("E13 — §2.4/§4: multi-tenant isolation (admission control + weighted-fair scheduling)",
		RunE13(seed))
}

// E13Q renders the reduced-scale table (CI smoke; not part of All).
func E13Q(seed int64) *metrics.Table {
	return e13Table("E13Q — multi-tenant isolation, reduced scale (CI smoke)",
		RunE13Quick(seed))
}
