package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// goldenTraceJSONL runs a small deterministic mixed workload on a 4-blade
// cluster with frame batching left off and returns the traced span log as
// JSONL bytes. The working set (256 blocks) fits far inside each blade's
// cache (4096 blocks), so no capacity evictions occur and the traced window
// exercises the synchronous RPC surface (gets/getx/inv/invm/downgrade/fetch
// plus replication pushes) whose timing the batching-off path must leave
// untouched.
func goldenTraceJSONL(seed int64) []byte {
	const (
		blades  = 4
		clients = 8
		ws      = 256
	)
	k := sim.NewKernel(seed)
	cfg := clusterConfig(blades)
	tracer := trace.NewTracer(k)
	cfg.Tracer = tracer
	c, err := controllerNew(k, cfg)
	if err != nil {
		panic(err)
	}
	if _, err := c.Pool.CreateDMSD("golden", 1<<20); err != nil {
		panic(err)
	}
	target := &clusterTarget{c: c, vol: "golden"}
	if err := prefillVolume(k, c, "golden", ws); err != nil {
		panic(err)
	}
	pat := func(int) workload.Pattern {
		return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0.25}
	}
	runWorkload(k, clients, 200*sim.Millisecond, target, pat)
	tracer.SetEnabled(true)
	runWorkload(k, clients, 200*sim.Millisecond, target, pat)
	tracer.SetEnabled(false)
	c.Stop()
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenUnbatched pins the batching-off trace to a golden file
// generated before frame coalescing existed: with FabricBatch disabled the
// fabric must stay byte-identical to the per-message build, same-seed.
// Regenerate (only when intentionally changing pre-batching behavior) with
//
//	GOLDEN=rewrite go test ./internal/experiments -run TestTraceGoldenUnbatched
func TestTraceGoldenUnbatched(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace run exceeds -short budget")
	}
	path := filepath.Join("testdata", "golden_trace_seed42.jsonl")
	got := goldenTraceJSONL(42)
	if os.Getenv("GOLDEN") == "rewrite" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with GOLDEN=rewrite to generate): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := bytes.Count(got, []byte{'\n'}), bytes.Count(want, []byte{'\n'})
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("batching-off trace diverged from pre-batching build: %d vs %d spans, first byte diff at offset %d",
			gl, wl, i)
	}
}
