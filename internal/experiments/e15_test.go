package experiments

import (
	"sync"
	"testing"
)

// One full E15 run shared by every assertion below (seven arms are
// expensive; the assertions all inspect different facets of one result).
var e15Shared = sync.OnceValue(func() E15Result { return RunE15(1) })

// TestE15CrossoverStaticSkew: on a stationary hot set the migration
// scheme wins sustained balance — it converges to a stable home
// assignment, so every measurement window sees the same even spread,
// while the cache tier's per-op two-choice routing oscillates window to
// window. Ops/s is deliberately NOT the deciding metric: once every arm
// is equally warm the pooled blade cache absorbs the read hot spot
// (E3's claim) and throughput is statistically flat across schemes — an
// earlier version of this test asserted a migrate ops/s win that turned
// out to be a warm-time artifact.
func TestE15CrossoverStaticSkew(t *testing.T) {
	skipIfShort(t)
	r := e15Shared()

	if r.StaticMigrate.Migrations == 0 {
		t.Fatalf("migrate arm moved no homes on static skew")
	}
	if r.StaticMigrate.WinCV > r.StaticHotCache.WinCV {
		t.Errorf("static skew: migrate windowed CV %.3f > hotcache %.3f; a converged home assignment should hold a steadier spread than per-op routing",
			r.StaticMigrate.WinCV, r.StaticHotCache.WinCV)
	}
	if r.StaticMigrate.CV >= r.StaticOff.CV {
		t.Errorf("static skew: migrate load CV %.3f not below the no-rebalance arm's %.3f; migration is not fixing the imbalance",
			r.StaticMigrate.CV, r.StaticOff.CV)
	}
	if min := 0.9 * r.StaticOff.OpsPerSec; r.StaticMigrate.OpsPerSec < min {
		t.Errorf("static skew: migrate %.0f ops/s more than 10%% below the no-rebalance arm %.0f ops/s",
			r.StaticMigrate.OpsPerSec, r.StaticOff.OpsPerSec)
	}
	if min := 0.9 * r.Uniform.OpsPerSec; r.StaticMigrate.OpsPerSec < min {
		t.Errorf("static skew: winning arm %.0f ops/s < 90%% of uniform baseline %.0f ops/s",
			r.StaticMigrate.OpsPerSec, r.Uniform.OpsPerSec)
	}
}

// TestE15CrossoverShiftingSkew: when the hot set rotates faster than the
// balancer's observe-plan-drain loop, the cache tier wins on load CV
// (aggregate and windowed) and on op p99 — the claim for fast-moving
// heat. Raw ops/s is not the metric: rotation's phase-concentrated
// destage convoys cost every arm — including the no-rebalance one —
// roughly a fifth of the uniform baseline regardless of scheme, and the
// uniform comparator itself swings ±20% across seeds, so the tier is
// held to "within 5% of the off arm" on its own workload and a 75%
// uniform floor (see the package doc on e15.go for the numbers).
func TestE15CrossoverShiftingSkew(t *testing.T) {
	skipIfShort(t)
	r := e15Shared()

	if r.ShiftHotCache.CacheHits == 0 {
		t.Fatalf("hotcache arm served no upper-layer hits on shifting skew")
	}
	if r.ShiftHotCache.WinCV > r.ShiftMigrate.WinCV {
		t.Errorf("shifting skew: hotcache windowed CV %.3f > migrate %.3f; the cache tier should spread fast-moving heat better",
			r.ShiftHotCache.WinCV, r.ShiftMigrate.WinCV)
	}
	if r.ShiftHotCache.CV > r.ShiftMigrate.CV {
		t.Errorf("shifting skew: hotcache load CV %.3f > migrate %.3f",
			r.ShiftHotCache.CV, r.ShiftMigrate.CV)
	}
	if r.ShiftHotCache.P99 > r.ShiftMigrate.P99 {
		t.Errorf("shifting skew: hotcache p99 %v > migrate %v; the cache tier should shorten the tail",
			r.ShiftHotCache.P99, r.ShiftMigrate.P99)
	}
	if min := 0.95 * r.ShiftOff.OpsPerSec; r.ShiftHotCache.OpsPerSec < min {
		t.Errorf("shifting skew: hotcache %.0f ops/s more than 5%% below the no-rebalance arm %.0f ops/s",
			r.ShiftHotCache.OpsPerSec, r.ShiftOff.OpsPerSec)
	}
	if min := 0.75 * r.Uniform.OpsPerSec; r.ShiftHotCache.OpsPerSec < min {
		t.Errorf("shifting skew: winning arm %.0f ops/s < 75%% of uniform baseline %.0f ops/s",
			r.ShiftHotCache.OpsPerSec, r.Uniform.OpsPerSec)
	}
}

// TestE15SkewHurtsWithoutRebalancing: sanity for the whole comparison —
// static Zipf with no rebalancing must actually concentrate load
// (higher CV than uniform), or the schemes have nothing to fix.
func TestE15SkewHurtsWithoutRebalancing(t *testing.T) {
	skipIfShort(t)
	r := e15Shared()
	if r.StaticOff.CV <= r.Uniform.CV {
		t.Errorf("static zipf off-arm CV %.3f not above uniform CV %.3f; skew is not biting",
			r.StaticOff.CV, r.Uniform.CV)
	}
	if r.ShiftOff.CV <= r.Uniform.CV {
		t.Errorf("shifting zipf off-arm CV %.3f not above uniform CV %.3f; skew is not biting",
			r.ShiftOff.CV, r.Uniform.CV)
	}
}

// TestE15Deterministic: the same seed renders a byte-identical table on a
// second run — the whole seven-arm matrix is a pure function of the seed.
func TestE15Deterministic(t *testing.T) {
	skipIfShort(t)
	a := e15Table(e15Shared(), "E15").String()
	b := e15Table(RunE15(1), "E15").String()
	if a != b {
		t.Fatalf("same-seed E15 runs differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestE15QuickDeterministic: the CI smoke variant is deterministic too
// (it is the arm the benchrunner baseline gate diffs against).
func TestE15QuickDeterministic(t *testing.T) {
	skipIfShort(t)
	a := e15Table(RunE15Quick(7), "E15Q").String()
	b := e15Table(RunE15Quick(7), "E15Q").String()
	if a != b {
		t.Fatalf("same-seed E15Q runs differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
