package experiments

import (
	"strings"
	"testing"

	"repro/internal/critpath"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCritPathReconciles is the analyze-smoke property on the canonical
// same-seed workload: the span-DAG attribution must reconcile exactly with
// the tracer's own accounting. Wall time tiles into critical segments
// (Check), and the analyzer's per-phase inclusive totals — recomputed here
// straight from the span log — match what it aggregated, while the phase
// histograms (the BreakdownTable's source) count every ended span the
// analyzer saw.
func TestCritPathReconciles(t *testing.T) {
	skipIfShort(t)
	_, tracer := canonicalTraced(3, false)
	a := critpath.FromTracer(tracer)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) < 100 {
		t.Fatalf("canonical workload analyzed only %d ops", len(a.Ops))
	}
	if tracer.Dropped() != 0 || a.DroppedUnknown {
		t.Fatalf("canonical workload should fit the span cap: %d dropped", tracer.Dropped())
	}
	// The traced window closes with each client's final op still in flight:
	// those spans never end, so up to one trace per client is rootless and
	// counted truncated — visibly, never folded into the attribution.
	if a.Truncated == 0 || a.Truncated > snapClients {
		t.Fatalf("want 1..%d in-flight truncated traces, got %d", snapClients, a.Truncated)
	}
	if a.Rootless != a.Truncated {
		t.Fatalf("window-end truncation should be rootless traces: %d rootless, %d truncated",
			a.Rootless, a.Truncated)
	}

	// Independent recomputation of the inclusive per-phase view over spans
	// of analyzed op traces; must match ByPhase span-for-span and ns-for-ns.
	analyzed := make(map[uint64]bool, len(a.Ops))
	for _, op := range a.Ops {
		analyzed[op.Trace] = true
	}
	nPhases := len(trace.Phases) + 1
	counts := make([]int64, nPhases)
	sums := make([]sim.Duration, nPhases)
	pidx := func(ph trace.Phase) int {
		for i, p := range trace.Phases {
			if p == ph {
				return i
			}
		}
		return len(trace.Phases)
	}
	var total int64
	for _, s := range tracer.Spans() {
		total++
		if !analyzed[s.Trace] {
			continue
		}
		pi := pidx(s.Phase)
		counts[pi]++
		sums[pi] += s.Duration()
	}
	for pi, pt := range a.ByPhase {
		if pt.Spans != counts[pi] || pt.Total != sums[pi] {
			t.Fatalf("phase %d inclusive totals diverge: analysis %d spans/%v, span log %d spans/%v",
				pi, pt.Spans, pt.Total, counts[pi], sums[pi])
		}
	}
	// Every retained span was observed by exactly one phase histogram, so
	// the BreakdownTable's counts sum to the span log the analyzer read.
	var histTotal int64
	for _, ph := range trace.Phases {
		histTotal += tracer.PhaseHistogram(ph).Count()
	}
	if histTotal != total {
		t.Fatalf("phase histograms counted %d spans, span log holds %d", histTotal, total)
	}
}

// TestCritPathDeterministic: same seed, byte-identical analyzer output at
// cluster scale — tables and folded stacks both, since BENCH diffs and
// flame graphs each consume one of them.
func TestCritPathDeterministic(t *testing.T) {
	skipIfShort(t)
	render := func() (string, string) {
		a := RunCritPath(7)
		var folded strings.Builder
		if err := a.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		return a.TailTable("t").String() + a.BudgetTable("b").String(), folded.String()
	}
	t1, f1 := render()
	t2, f2 := render()
	if t1 != t2 {
		t.Fatalf("same-seed tables differ:\n%s\nvs\n%s", t1, t2)
	}
	if f1 != f2 {
		t.Fatal("same-seed folded stacks differ")
	}
	if !strings.Contains(f1, "read") && !strings.Contains(f1, "write") {
		t.Fatalf("folded stacks carry no op frames:\n%.400s", f1)
	}
}

// TestCritPathE14TracedArm: the traced E14 arm must yield an analyzable
// span log — and tracing must not perturb the arm. The tracer rides
// virtual time, so the traced and untraced runs of the same seed must
// agree on every behavioural output.
func TestCritPathE14TracedArm(t *testing.T) {
	skipIfShort(t)
	sc := e14Quick()
	plain := e14Arm(11, sc, qos.GovPI, false)
	if plain.Tracer != nil {
		t.Fatal("untraced arm should carry no tracer")
	}
	sc.traced = true
	traced := e14Arm(11, sc, qos.GovPI, false)
	if traced.Tracer == nil {
		t.Fatal("traced arm lost its tracer")
	}
	if plain.VictimP99 != traced.VictimP99 || plain.ScrubChunks != traced.ScrubChunks ||
		plain.ViolationWindows != traced.ViolationWindows || plain.Reversals != traced.Reversals {
		t.Fatalf("tracing perturbed the arm: %+v vs %+v", plain, traced)
	}
	a := critpath.FromTracer(traced.Tracer)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) < 100 {
		t.Fatalf("E14 loaded phase analyzed only %d ops", len(a.Ops))
	}
	// The arm traces only the loaded phase: contended ops must show disk
	// or queue time on the critical path, or the attribution is vacuous.
	median, tail := a.Cohorts()
	if median.Ops == 0 || tail.Ops == 0 {
		t.Fatalf("cohorts empty: median %d, tail %d", median.Ops, tail.Ops)
	}
	if tail.MeanWall <= median.MeanWall {
		t.Fatalf("tail cohort no slower than median: %v vs %v", tail.MeanWall, median.MeanWall)
	}
}

// TestCritPathScaleTraced drives ten thousand traced closed-loop clients
// with the span log capped far below the load, the ISSUE-8 scale point:
// exemplar memory must stay bounded by the histogram's occupied buckets,
// and cap eviction must surface as counted truncation — never as silently
// skewed attribution.
func TestCritPathScaleTraced(t *testing.T) {
	skipIfShort(t)
	const (
		blades  = 16
		clients = 10_000
		ws      = 64 << 10
		dur     = 30 * sim.Millisecond
	)
	k := sim.NewKernel(8)
	cfg := clusterConfig(blades)
	cfg.FabricBatch = true
	tracer := trace.NewTracer(k)
	tracer.SetCap(1 << 12)
	cfg.Tracer = tracer
	c, err := controllerNew(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Pool.CreateDMSD("scale", 1<<22); err != nil {
		t.Fatal(err)
	}
	target := &clusterTarget{c: c, vol: "scale"}
	tracer.SetEnabled(true)
	r := runWorkload(k, clients, dur, target, func(int) workload.Pattern {
		return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0.25}
	})
	tracer.SetEnabled(false)
	if r.Ops < int64(clients)/2 {
		t.Fatalf("completed only %d ops for %d clients", r.Ops, clients)
	}
	if tracer.Dropped() == 0 {
		t.Fatal("expected span-cap eviction at this scale")
	}

	a := critpath.FromTracer(tracer)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.Truncated == 0 {
		t.Fatal("cap eviction must surface as truncated traces")
	}
	// No analyzed op may belong to a trace the tracer marked as dropped.
	for _, op := range a.Ops {
		if tracer.TraceDropped(op.Trace) {
			t.Fatalf("trace %d was analyzed despite dropped spans", op.Trace)
		}
	}

	// Exemplar storage on the op-latency histogram: one entry per occupied
	// bucket at most, regardless of how many of the 10k clients observed.
	h := c.Reg.HistogramFor("cluster/op_latency")
	if h == nil {
		t.Fatal("cluster/op_latency histogram missing")
	}
	exs := h.Exemplars()
	if len(exs) == 0 {
		t.Fatal("traced run recorded no exemplars")
	}
	if len(exs) > 256 {
		t.Fatalf("exemplar storage unbounded: %d entries", len(exs))
	}
	for _, ex := range exs {
		if ex.Trace == 0 {
			t.Fatal("exemplar with zero trace id")
		}
	}
	t.Logf("ops=%d spans=%d dropped=%d analyzed=%d truncated=%d exemplars=%d",
		r.Ops, len(tracer.Spans()), tracer.Dropped(), len(a.Ops), a.Truncated, len(exs))
}
