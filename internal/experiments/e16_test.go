package experiments

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// One full E16 run shared by every assertion below (two sweep arms over a
// seven-point client ladder are expensive; the assertions all inspect
// different facets of one result).
var e16Shared = sync.OnceValue(func() E16Result { return RunE16(1) })

// TestE16LinearUntilSaturation: below the metadata knee, doubling the
// closed-loop population doubles throughput — each op pays think time
// plus fixed tier costs and no queue has formed. The first two doublings
// of the single-shard sweep sit well under the shard's serial capacity,
// so they must scale nearly ideally.
func TestE16LinearUntilSaturation(t *testing.T) {
	skipIfShort(t)
	r := e16Shared()
	p2, p4, p8 := r.Point(1, 2), r.Point(1, 4), r.Point(1, 8)
	if p2.OpsPerSec == 0 || p4.OpsPerSec == 0 || p8.OpsPerSec == 0 {
		t.Fatalf("missing sweep points: %+v %+v %+v", p2, p4, p8)
	}
	if p4.OpsPerSec < 1.7*p2.OpsPerSec {
		t.Errorf("2→4 clients scaled %.0f → %.0f ops/s (%.2fx); the linear region should double",
			p2.OpsPerSec, p4.OpsPerSec, p4.OpsPerSec/p2.OpsPerSec)
	}
	if p8.OpsPerSec < 1.6*p4.OpsPerSec {
		t.Errorf("4→8 clients scaled %.0f → %.0f ops/s (%.2fx); still below the knee, should stay near-linear",
			p4.OpsPerSec, p8.OpsPerSec, p8.OpsPerSec/p4.OpsPerSec)
	}
}

// TestE16SingleShardCeiling: past saturation the single-shard arm goes
// flat — adding clients adds index-queue wait, not throughput — and the
// shard is measurably pegged (busy the whole window).
func TestE16SingleShardCeiling(t *testing.T) {
	skipIfShort(t)
	r := e16Shared()
	p16, p128 := r.Point(1, 16), r.Point(1, 128)
	if p128.OpsPerSec > 1.1*p16.OpsPerSec {
		t.Errorf("16→128 clients moved the saturated single-shard arm %.0f → %.0f ops/s; the ceiling should be flat",
			p16.OpsPerSec, p128.OpsPerSec)
	}
	for _, clients := range []int{32, 64, 128} {
		if pt := r.Point(1, clients); pt.ShardUtil < 0.95 {
			t.Errorf("%d clients: single shard only %.2f busy; the ceiling should come from a pegged index server",
				clients, pt.ShardUtil)
		}
	}
	// Queueing, not collapse: latency grows with the population while
	// throughput holds.
	if p128.P50 < 4*p16.P50 {
		t.Errorf("8x the population only moved p50 %v → %v; expected index-queue wait to dominate",
			p16.P50, p128.P50)
	}
}

// TestE16ShardingMovesCeiling: four metadata shards lift the measured
// ceiling at least 2× — less than 4× is expected, because Zipf-hot
// buckets hash unevenly and the busiest shard saturates first.
func TestE16ShardingMovesCeiling(t *testing.T) {
	skipIfShort(t)
	r := e16Shared()
	c1, c4 := r.Ceiling(1), r.Ceiling(4)
	if c4 < 2*c1 {
		t.Errorf("sharding 1→4 moved the ceiling %.0f → %.0f ops/s (%.2fx), want ≥2x",
			c1, c4, c4/c1)
	}
	// Below saturation sharding buys nothing — the low-load points of
	// the two arms must agree (same tier costs, no queues to split).
	a, b := r.Point(1, 4), r.Point(4, 4)
	if b.OpsPerSec < 0.85*a.OpsPerSec || b.OpsPerSec > 1.15*a.OpsPerSec {
		t.Errorf("unsaturated 4-client points diverge across arms: %.0f vs %.0f ops/s",
			a.OpsPerSec, b.OpsPerSec)
	}
}

// TestE16IAMTierFlat: the in-memory IAM tier never queues behind
// metadata — its hit p99 stays under 10 ms (the yig auth budget) and
// flat at every load point, including deep saturation. This is the
// reason the tiers are split.
func TestE16IAMTierFlat(t *testing.T) {
	skipIfShort(t)
	r := e16Shared()
	if r.Users < 1<<20 {
		t.Fatalf("full-scale run registered only %d users; the IAM claim is about a population in the millions", r.Users)
	}
	for _, pt := range r.Points {
		if pt.IAMP99 >= 10*sim.Millisecond {
			t.Errorf("shards=%d clients=%d: IAM hit p99 %v breaches the 10 ms auth budget",
				pt.Shards, pt.Clients, pt.IAMP99)
		}
		if pt.IAMP99 >= 1*sim.Millisecond {
			t.Errorf("shards=%d clients=%d: IAM hit p99 %v not flat under load; the in-memory tier must not queue",
				pt.Shards, pt.Clients, pt.IAMP99)
		}
	}
}

// TestE16Deterministic: the same seed renders a byte-identical table on
// a second run — the whole two-arm sweep is a pure function of the seed.
func TestE16Deterministic(t *testing.T) {
	skipIfShort(t)
	a := e16Table(e16Shared(), "E16").String()
	b := e16Table(RunE16(1), "E16").String()
	if a != b {
		t.Fatalf("same-seed E16 runs differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestE16QuickDeterministic: the CI smoke variant is deterministic too
// (it is the arm the benchrunner baseline gate diffs against).
func TestE16QuickDeterministic(t *testing.T) {
	skipIfShort(t)
	a := e16Table(RunE16Quick(7), "E16Q").String()
	b := e16Table(RunE16Quick(7), "E16Q").String()
	if a != b {
		t.Fatalf("same-seed E16Q runs differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
