package experiments

import (
	"repro/internal/sim"
	"repro/internal/stripe"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// tracedE1Stream repeats E1's 4-blade point with tracing and telemetry
// attached and returns both: one trace per 256 KiB chunk (fc-ingest and
// egress child spans) plus a registry carrying per-link byte counters. The
// breakdown shows where a striped stream's time goes (ingest serialization
// on the 2 Gb/s FC links vs queueing for the shared 10 Gb/s port); the
// registry's net/link/farm-*/bytes skew shows the round-robin striping
// spreading the stream evenly over the eight FC ingest links. Spans and
// samplers ride virtual time, so the same seed yields byte-identical
// exports — asserted by TestE1TraceDeterministic.
func tracedE1Stream(seed int64) (*trace.Tracer, *telemetry.Registry) {
	k := sim.NewKernel(seed)
	tr := trace.NewTracer(k)
	tr.SetEnabled(true)
	reg := telemetry.NewRegistry()
	s, err := stripe.New(k, stripe.Config{Blades: 4, Tracer: tr, Telemetry: reg})
	if err != nil {
		panic(err)
	}
	var serr error
	k.Go("traced-stream", func(p *sim.Proc) {
		_, serr = s.Stream(p, 64<<20)
	})
	k.Run()
	if serr != nil {
		panic(serr)
	}
	return tr, reg
}
