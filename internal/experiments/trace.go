package experiments

import (
	"repro/internal/sim"
	"repro/internal/stripe"
	"repro/internal/trace"
)

// tracedE1Stream repeats E1's 4-blade point with tracing attached and
// returns the tracer: one trace per 256 KiB chunk, with fc-ingest and
// egress child spans. The breakdown shows where a striped stream's time
// goes (ingest serialization on the 2 Gb/s FC links vs queueing for the
// shared 10 Gb/s port). Spans ride virtual time, so the same seed yields
// byte-identical trace exports — asserted by TestE1TraceDeterministic.
func tracedE1Stream(seed int64) *trace.Tracer {
	k := sim.NewKernel(seed)
	tr := trace.NewTracer(k)
	tr.SetEnabled(true)
	s, err := stripe.New(k, stripe.Config{Blades: 4, Tracer: tr})
	if err != nil {
		panic(err)
	}
	var serr error
	k.Go("traced-stream", func(p *sim.Proc) {
		_, serr = s.Stream(p, 64<<20)
	})
	k.Run()
	if serr != nil {
		panic(serr)
	}
	return tr
}
