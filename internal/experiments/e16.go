package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E16 — the object gateway's three-tier scaling claim. The gateway
// splits per-request work the way yig does: an IAM tier that answers
// every credential/ACL check from memory at a fixed cost, a metadata
// index tier that serializes per-shard, and the data path underneath
// with headroom to spare. The tier that saturates first is metadata —
// and because it is sharded by bucket, the fix is adding index shards,
// not faster disks.
//
// One seed drives a closed-loop client sweep against a bucket population
// under Zipf popularity (a handful of hot buckets carry most traffic,
// drawn from a user population in the millions at full scale), once with
// a single metadata shard and once with four:
//
//   - below saturation, throughput scales linearly with the client
//     count — each op pays think time plus a fixed tier-by-tier cost,
//     and no queue has formed;
//   - past the point where offered index ops exceed one shard's serial
//     capacity (1/MetaOpTime), the single-shard arm goes flat: adding
//     clients adds queueing at the index server, not throughput;
//   - four shards move that ceiling by at least 2× — not a full 4×,
//     because Zipf-hot buckets hash unevenly and the busiest shard
//     saturates while its siblings idle (the load-skew cost the
//     per-shard telemetry gauges exist to show);
//   - the IAM tier's hit latency stays flat and far under 10 ms at
//     every load point — credential checks never queue behind metadata,
//     which is the reason the tiers are split at all.
//
// The E16 tests assert each of these plus byte-identical same-seed
// reruns; the quick variant is the CI smoke gate (benchrunner -only
// E16Q) and feeds the BENCH baseline snapshot.

// e16Scale sizes one E16 evaluation; E16 and E16Q share the code path.
type e16Scale struct {
	users   int // IAM population (tenants registered + tokens issued)
	buckets int
	objects int // objects prefilled per bucket
	objSize int
	settle  sim.Duration // after prefill, before the sweep: drains the
	// destage convoy prefill leaves behind, so the first (smallest)
	// sweep step measures steady state, not cold-start disk stalls
	warm   sim.Duration // per sweep step, before its measured window
	dur    sim.Duration // measured window per sweep step
	sweep  []int        // closed-loop client counts, in order
	shards []int        // metadata shard arms
}

func e16FullScale() e16Scale {
	return e16Scale{
		users: 1 << 20, buckets: 256, objects: 16, objSize: 4096,
		settle: 3 * sim.Second, warm: 500 * sim.Millisecond, dur: 2 * sim.Second,
		sweep:  []int{2, 4, 8, 16, 32, 64, 128},
		shards: []int{1, 4},
	}
}

func e16QuickScale() e16Scale {
	return e16Scale{
		users: 1 << 14, buckets: 128, objects: 8, objSize: 4096,
		settle: 2 * sim.Second, warm: 500 * sim.Millisecond, dur: 1 * sim.Second,
		sweep:  []int{2, 4, 8, 16, 32, 64, 128},
		shards: []int{1, 4},
	}
}

// E16 workload constants. MetaOpTime sets the knee the experiment is
// about: one shard serializes index ops, so its capacity is
// 1/MetaOpTime = 2000 index ops/s, and with ~1.1 index ops per object
// op (reads cost one, writes a prepare+commit pair) the single-shard
// ceiling lands near 1800 ops/s — inside the sweep's offered range. The
// think time keeps per-client demand low enough that the first sweep
// doublings stay well under the knee (the linear region the tests
// assert on).
const (
	e16MetaOpTime = 500 * sim.Microsecond
	e16IAMLatency = 100 * sim.Microsecond
	e16Think      = 4 * sim.Millisecond
	e16WriteFrac  = 0.1
	e16ZipfS      = 1.2
)

// E16Point is one (shards, clients) measurement.
type E16Point struct {
	Shards, Clients int
	OpsPerSec       float64
	P50, P99        sim.Duration // client-observed object-op latency
	IAMP99          sim.Duration // IAM tier hit latency (cumulative)
	ShardUtil       float64      // busiest shard's busy fraction in the window
}

// E16Result carries the full sweep for every shard arm.
type E16Result struct {
	Users, Buckets int
	Points         []E16Point
}

// Point returns the measurement for one (shards, clients) pair.
func (r E16Result) Point(shards, clients int) E16Point {
	for _, pt := range r.Points {
		if pt.Shards == shards && pt.Clients == clients {
			return pt
		}
	}
	return E16Point{}
}

// Ceiling returns the best throughput an arm reached anywhere in its
// sweep — the measured capacity of that shard count.
func (r E16Result) Ceiling(shards int) float64 {
	var best float64
	for _, pt := range r.Points {
		if pt.Shards == shards && pt.OpsPerSec > best {
			best = pt.OpsPerSec
		}
	}
	return best
}

func e16Bucket(i int) string { return fmt.Sprintf("b-%04d", i) }
func e16Key(i int) string    { return fmt.Sprintf("o/%04d", i) }

// e16Arm runs the whole client sweep against one fresh system with the
// given shard count. The sweep shares the system: tenants register once,
// buckets prefill once, and each step spawns a fresh client population
// whose deadline expires before the next step begins — so later steps
// inherit warm caches instead of paying setup per point, exactly like a
// stepped load test against a live service.
func e16Arm(seed int64, sc e16Scale, shards int) []E16Point {
	sys, err := core.NewSystem(core.Options{
		Seed: seed,
		// SSD-class drives: the experiment's premise is that the data
		// tier has headroom and metadata saturates first. On the lab
		// default (8 ms spinning media) RAID5 write destage caps the
		// cluster near the 4-shard metadata ceiling and the knee this
		// experiment exists to show gets tangled with disk queues.
		DiskSpec: disk.Spec{
			BlockSize:   4096,
			Blocks:      1 << 16,
			Seek:        100 * sim.Microsecond,
			TransferBps: 400_000_000,
		},
		Gateway: &gateway.Config{
			MetaShards: shards,
			MetaOpTime: e16MetaOpTime,
			IAMLatency: e16IAMLatency,
		},
	})
	if err != nil {
		panic(err)
	}
	defer sys.Stop()
	gw := sys.Gateway

	// IAM population: every simulated user is a real tenant in the
	// security authority with a live token — the full credential cache
	// the in-memory tier answers from.
	tokens, err := sys.Auth.CreateTenants("u", sc.users, 24*3600*sim.Second)
	if err != nil {
		panic(err)
	}

	// Prefill: every bucket exists (public read-write, so any user's op
	// authorizes against the in-memory ACL) and holds its object
	// population, one proc per bucket.
	payload := make([]byte, sc.objSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	prefilled := 0
	for b := 0; b < sc.buckets; b++ {
		b := b
		sys.K.Go(fmt.Sprintf("e16-prefill-%d", b), func(p *sim.Proc) {
			defer func() { prefilled++ }()
			tok := tokens[b%len(tokens)]
			opts := gateway.BucketOptions{
				ACL:      gateway.ACL{Public: security.ReadWrite},
				Priority: -1,
			}
			if err := gw.CreateBucket(p, tok, e16Bucket(b), opts); err != nil {
				panic(err)
			}
			for o := 0; o < sc.objects; o++ {
				if _, err := gw.PutObject(p, tok, e16Bucket(b), e16Key(o), payload); err != nil {
					panic(err)
				}
			}
		})
	}
	for i := 0; prefilled < sc.buckets && i < 6000; i++ {
		sys.K.RunFor(100 * sim.Millisecond)
	}
	if prefilled < sc.buckets {
		panic("e16: prefill did not finish")
	}
	sys.K.RunFor(sc.settle)

	var points []E16Point
	for step, clients := range sc.sweep {
		lat := metrics.NewHistogram()
		measuring := false
		end := sys.K.Now().Add(sc.warm + sc.dur)
		for cl := 0; cl < clients; cl++ {
			cl := cl
			sys.K.Go(fmt.Sprintf("e16-c%d-%d", step, cl), func(p *sim.Proc) {
				// Per-client generator: bucket popularity is Zipf with a
				// static hot set (rotation parked far beyond the run),
				// users drawn uniformly from the full population.
				rng := rand.New(rand.NewSource(seed*7919 + int64(step)*1009 + int64(cl) + 1))
				pat := workload.NewBucketZipf(rng, sc.users, sc.buckets, sc.objects,
					e16ZipfS, e16WriteFrac, 1<<62, 1)
				for p.Now() < end {
					p.Sleep(e16Think)
					op := pat.Next(rng)
					tok := tokens[op.User]
					t0 := p.Now()
					var err error
					if op.Write {
						_, err = gw.PutObject(p, tok, e16Bucket(op.Bucket), e16Key(op.Obj), payload)
					} else {
						_, _, err = gw.GetObject(p, tok, e16Bucket(op.Bucket), e16Key(op.Obj))
					}
					if err != nil {
						panic(err)
					}
					if measuring {
						lat.Observe(p.Now().Sub(t0))
					}
				}
			})
		}
		sys.K.RunFor(sc.warm)
		before := gw.Stats()
		measuring = true
		sys.K.RunFor(sc.dur)
		after := gw.Stats()
		// Drain: clients quit at their deadline mid-window tails aside,
		// so a short run flushes in-flight ops before the next step's
		// population spawns.
		sys.K.RunFor(100 * sim.Millisecond)

		var maxShard int64
		for i := range after.ShardOps {
			if d := after.ShardOps[i] - before.ShardOps[i]; d > maxShard {
				maxShard = d
			}
		}
		points = append(points, E16Point{
			Shards:    shards,
			Clients:   clients,
			OpsPerSec: float64(after.Ops()-before.Ops()) / sc.dur.Seconds(),
			P50:       lat.P50(),
			P99:       lat.Quantile(0.99),
			IAMP99:    after.IAMHitP99,
			ShardUtil: float64(maxShard) * e16MetaOpTime.Seconds() / sc.dur.Seconds(),
		})
	}
	return points
}

// runE16 executes every shard arm's sweep under one seed.
func runE16(seed int64, sc e16Scale) E16Result {
	res := E16Result{Users: sc.users, Buckets: sc.buckets}
	for _, shards := range sc.shards {
		res.Points = append(res.Points, e16Arm(seed, sc, shards)...)
	}
	return res
}

// RunE16 executes the full-scale experiment.
func RunE16(seed int64) E16Result { return runE16(seed, e16FullScale()) }

// RunE16Quick executes the reduced-scale sweep the CI smoke gate uses.
func RunE16Quick(seed int64) E16Result { return runE16(seed, e16QuickScale()) }

// E16 renders the experiment table.
func E16(seed int64) *metrics.Table { return e16Table(RunE16(seed), "E16") }

// E16Quick renders the reduced-scale table (benchrunner -only E16Q).
func E16Quick(seed int64) *metrics.Table { return e16Table(RunE16Quick(seed), "E16Q") }

func e16Table(r E16Result, name string) *metrics.Table {
	tab := metrics.NewTable(name+" — object gateway: metadata sharding moves the saturation ceiling",
		"shards", "clients", "ops/s", "p50 ms", "p99 ms", "iam p99 ms", "hot shard util")
	for _, pt := range r.Points {
		tab.AddRow(int64(pt.Shards), int64(pt.Clients), int64(pt.OpsPerSec),
			fmtDur(pt.P50), fmtDur(pt.P99), fmtDur(pt.IAMP99), fmtF(pt.ShardUtil))
	}
	shards := []int{}
	for _, pt := range r.Points {
		if len(shards) == 0 || shards[len(shards)-1] != pt.Shards {
			shards = append(shards, pt.Shards)
		}
	}
	if len(shards) >= 2 {
		c1, cN := r.Ceiling(shards[0]), r.Ceiling(shards[len(shards)-1])
		if c1 > 0 {
			tab.AddNote("ceiling: %d ops/s at %d shard(s) → %d ops/s at %d (%.2fx)",
				int64(c1), shards[0], int64(cN), shards[len(shards)-1], cN/c1)
		}
	}
	tab.AddNote("%d users (IAM entries), %d buckets, zipf s=%s, write fraction %s, think %s ms, index op %s ms",
		r.Users, r.Buckets, fmtF(e16ZipfS), fmtF(e16WriteFrac), fmtDur(e16Think), fmtDur(e16MetaOpTime))
	return tab
}
