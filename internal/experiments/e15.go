package experiments

import (
	"math/rand"

	"repro/internal/balance"
	"repro/internal/cache"
	"repro/internal/controller"
	"repro/internal/hotcache"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E15 — rebalancing schemes raced against the speed of the heat. E12
// established that home migration drains a *stationary* hot spot; E15 asks
// what happens when the hot set itself moves. Three workloads (uniform;
// static Zipf; shifting Zipf whose hot set rotates every few dozen ops
// per client) cross three rebalancing schemes (off; home migration; the
// DistCache-style hot-key cache tier) under one seed:
//
// The metric both regimes are judged on is the windowed load CV (one
// window per rotation period of ops — see the sampler below), because
// raw ops/s barely separates the schemes here: the pooled blade cache
// (E3) already absorbs the *read* hot spot once warm, so what a
// rebalancing scheme buys on this workload is sustained load headroom
// and the op tail, not throughput. Every arm warms identically — an
// earlier version warmed the migrate arm twice as long "so the loop
// could converge", and that alone tripled its measured ops/s (the
// measured window replays the warmed sequence), a confound this
// experiment exists to avoid.
//
//   - On STATIC skew, migration wins sustained balance: it converges to
//     a stable home assignment, so every window sees the same even
//     spread (windowed CV ≈ aggregate CV). The cache tier's
//     power-of-two-choices routing re-decides per op from instantaneous
//     load, and that oscillation shows up as window-to-window jitter —
//     its windowed CV sits well above its own aggregate CV.
//   - On FAST-SHIFTING skew, the cache tier wins where its mechanism
//     says it should — instantaneous load spread and the op tail. By the
//     time the balancer has observed (For scrape intervals), planned,
//     and migrated a hot home, that key has already gone cold, so every
//     move is churn that lands late (its op p99 degrades to or below the
//     do-nothing arm); a cache node fills in one miss and tracks the
//     heat at read speed.
//
// Acceptance (checked by the E15 tests): the crossover holds on windowed
// load CV (migrate < hotcache on static, hotcache < migrate on
// shifting), the cache tier also beats migration's op p99 and aggregate
// CV on shifting, neither winner costs throughput (static migrate within
// 5% of its off arm and ≥90% of uniform; shifting hotcache within 5% of
// its off arm), and two same-seed runs render byte-identical tables. The
// shifting arms are NOT held to 90% of uniform: phase-concentrated
// destage convoys cost every shifting arm — including off — some 20% of
// the uniform baseline regardless of scheme, and the uniform comparator
// itself swings ±20% across seeds (disk-convoy luck), so that bound
// would measure the workload and the seed, not the scheme; a 75% floor
// holds with margin.

// e15WriteFrac is the write fraction every E15 arm runs (including the
// uniform baseline, for comparability): enough write traffic that the
// cache tier's write-through invalidations are a real cost, not so much
// that read absorption stops mattering. The regime is read-mostly on
// purpose — it is DistCache's regime, and with heavier write mixes a
// hot key's cached copy dies (write-through) after only a handful of
// reads, so neither scheme has much to cache or absorb.
const e15WriteFrac = 0.05

// e15Rotate/e15Stride shape the shifting workload: each client's hot set
// rotates every e15Rotate of its own ops — roughly 100ms of closed-loop
// operation, well inside the balancer's observe-then-act loop (scrape
// ×For, then a plan interval, then the migration drain) —
// displacing the rank→block mapping by the prime e15Stride. The
// rotation clock is op-coupled on purpose: the better a scheme serves
// the hot set, the faster the heat moves, so no fixed-period controller
// can get ahead of it.
const (
	e15Rotate = 32
	e15Stride = 2999
)

// e15Scale sizes one E15 evaluation; E15 and E15Q share the code path.
type e15Scale struct {
	blades  int
	clients int
	ws      int64
	warm    sim.Duration // identical for every arm — see e15Scenario
	dur     sim.Duration
}

func e15FullScale() e15Scale {
	return e15Scale{blades: 8, clients: 32, ws: 8 << 10, warm: 4 * sim.Second, dur: 2 * sim.Second}
}

func e15QuickScale() e15Scale {
	return e15Scale{blades: 4, clients: 12, ws: 2 << 10, warm: 2 * sim.Second, dur: 1 * sim.Second}
}

// hotTarget routes reads per the cache tier's power-of-two-choices
// decision — cache node or directory home — and writes to the home
// (write-through invalidation rides the home's exclusive grant). Every op
// reports its chosen blade to the tier so the two-choice load signal sees
// the full picture.
type hotTarget struct {
	c    *controller.Cluster
	tier *hotcache.Tier
	vol  string
	buf  []byte
}

func (t *hotTarget) BlockSize() int { return t.c.BlockSize() }

func (t *hotTarget) home(lba int64) int {
	if id := t.c.HomeBlade(t.vol, lba); id >= 0 {
		return id
	}
	return t.c.PickBlade().ID
}

func (t *hotTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	home := t.home(lba)
	blade, via := t.tier.Route(cache.Key{Vol: t.vol, LBA: lba}, home)
	done := t.tier.OpStart(blade)
	defer done()
	if via {
		_, err := t.c.ReadCached(p, t.tier, t.c.Blade(blade), t.vol, lba, blocks, 0)
		return err
	}
	_, err := t.c.Read(p, t.c.Blade(blade), t.vol, lba, blocks, 0)
	return err
}

func (t *hotTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	home := t.home(lba)
	done := t.tier.OpStart(home)
	defer done()
	need := blocks * t.c.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.c.Write(p, t.c.Blade(home), t.vol, lba, t.buf[:need], 0)
}

// E15Run is one arm's measured window.
type E15Run struct {
	OpsPerSec float64
	MBps      float64
	CV        float64
	Ratio     float64
	// WinCV is the mean of windowed load CVs, one window per rotation
	// period of ops (see the sampler in e15Scenario for why windows are
	// op-counted, not wall-time). Under fast-moving heat it is the honest
	// balance metric: over the whole measured window every blade hosts
	// hot phases about equally often, so the aggregate CV washes out
	// exactly the instantaneous imbalance that queues ops — which the
	// windowed CV still sees.
	WinCV    float64
	P50, P99 sim.Duration

	// Scheme-specific activity, zero for arms without that scheme.
	Migrations int64 // migrate: homes moved during the whole run
	CacheHits  int64 // hotcache: upper-layer hits in the whole run
	CacheFills int64
	Invals     int64 // hotcache: write-through key invalidations
}

// E15Result carries all seven arms.
type E15Result struct {
	Uniform E15Run // uniform × off: the baseline

	StaticOff, StaticMigrate, StaticHotCache E15Run
	ShiftOff, ShiftMigrate, ShiftHotCache    E15Run
}

// e15Workload names one of the three workload shapes.
type e15Workload int

const (
	e15Uniform e15Workload = iota
	e15StaticZipf
	e15ShiftZipf
)

// e15Scenario runs one (workload, scheme) arm on a fresh kernel.
func e15Scenario(seed int64, sc e15Scale, wl e15Workload, scheme string) E15Run {
	k := sim.NewKernel(seed)
	cfg := clusterConfig(sc.blades)
	cfg.CPUSlots = 6 // same headroom rationale as E12
	c, err := controllerNew(k, cfg)
	if err != nil {
		panic(err)
	}
	c.Pool.CreateDMSD("v", 1<<20)
	if err := prefillVolume(k, c, "v", sc.ws); err != nil {
		panic(err)
	}

	// Single-block ops for the same reason as E12: one op == one key, so
	// per-key heat and per-blade load line up for both schemes.
	pat := func(cl int) workload.Pattern {
		src := rand.New(rand.NewSource(seed*1009 + int64(cl) + 1))
		switch wl {
		case e15StaticZipf:
			return workload.NewZipf(src, sc.ws, 1.1, 1, e15WriteFrac)
		case e15ShiftZipf:
			return workload.NewShiftingZipf(src, sc.ws, 1.1, 1, e15WriteFrac, e15Rotate, e15Stride)
		default:
			return workload.Uniform{Range: sc.ws, Blocks: 1, WriteFrac: e15WriteFrac}
		}
	}

	scr := telemetry.NewScraper(k, c.Reg, 100*sim.Millisecond)
	stopScrape := scr.Start()

	var target workload.Target = &affinityTarget{c: c, vol: "v"}
	// Every arm warms for the same duration. The warm length is sized for
	// the slowest-converging scheme (migration's observe-plan-drain loop)
	// but giving only that arm extra warm would confound the comparison:
	// the measured window replays the same seeded sequence, so extra warm
	// alone inflates an arm's cache hit rate regardless of scheme.
	warm := sc.warm
	var bal *balance.Controller
	var stopBal func()
	var tier *hotcache.Tier
	switch scheme {
	case "migrate":
		bal = c.NewBalancer(scr, balance.Config{
			CVMax:       e12CVMax,
			RatioMax:    e12RatioMax,
			For:         2,
			MaxMoves:    16,
			MinMoveFrac: 0.005,
		})
		stopBal = bal.Start()
	case "hotcache":
		// Tuned for fast rotation. Half-life below the default: with
		// ~200ms hot phases, a 250ms half-life keeps last phase's keys
		// "hot" (and their reads routed at a cache node that can only
		// miss) for most of the next phase. HotMin below the default:
		// at this half-life a key needs a sustained read rate of
		// ~HotMin×7/s to stay eligible, so HotMin 8 would restrict the
		// tier to the top ~16 keys (~1/3 of the Zipf 1.1 traffic) and
		// leave the queue-burst tail to the homes.
		tier = c.NewHotCache(hotcache.Config{HeatHalfLife: 100 * sim.Millisecond})
		tier.SetEnabled(true)
		target = &hotTarget{c: c, tier: tier, vol: "v"}
	}

	runWorkload(k, sc.clients, warm, target, pat)

	snapshot := func() []float64 {
		cur := make([]float64, sc.blades)
		for i, b := range c.Blades {
			cur[i] = float64(b.Ops)
		}
		return cur
	}
	before := snapshot()
	// Windowed load sampler. Windows are one rotation period of OPS
	// (e15Rotate per client), not a fixed wall-time slice: the rotation
	// clock is op-coupled, so a fixed-ms window would cover more phases
	// for a faster arm (averaging its imbalance away) and hold more ops
	// (lowering its multinomial sampling-noise floor, ~sqrt(blades/N)).
	// Equal-op windows compare every arm at the same workload position
	// with the same noise floor. The sampler polls on a fine tick and the
	// aggregation below closes a window whenever a period's worth of ops
	// has completed since the last boundary.
	const samplerTick = 5 * sim.Millisecond
	var snaps [][]float64
	k.Go("e15-sampler", func(p *sim.Proc) {
		for i := 0; i < int(sc.dur/samplerTick)-1; i++ {
			p.Sleep(samplerTick)
			snaps = append(snaps, snapshot())
		}
	})
	r := runWorkload(k, sc.clients, sc.dur, target, pat)
	snaps = append(snaps, snapshot())

	deltas := make([]float64, sc.blades)
	for i, b := range c.Blades {
		deltas[i] = float64(b.Ops) - before[i]
	}
	st := metrics.Summarize(deltas)
	winOps := float64(e15Rotate * sc.clients)
	var winSum float64
	var wins int
	prev := before
	for _, s := range snaps {
		var total float64
		for i := range s {
			total += s[i] - prev[i]
		}
		if total < winOps {
			continue // window still filling
		}
		d := make([]float64, sc.blades)
		for i := range d {
			d[i] = s[i] - prev[i]
		}
		if w := metrics.Summarize(d); w.Mean > 0 {
			winSum += w.CV()
			wins++
		}
		prev = s
	}
	run := E15Run{
		OpsPerSec: float64(r.Ops) / sc.dur.Seconds(),
		MBps:      r.Bytes.MBps(),
		CV:        st.CV(),
		P50:       r.Latency.P50(),
		P99:       r.Latency.Quantile(0.99),
	}
	if wins > 0 {
		run.WinCV = winSum / float64(wins)
	}
	if st.Mean > 0 {
		run.Ratio = st.Max / st.Mean
	}
	if bal != nil {
		run.Migrations = bal.Stats().Migrations
	}
	if tier != nil {
		for i := 0; i < sc.blades; i++ {
			s := tier.Node(i).Stats()
			run.CacheHits += s.Hits
			run.CacheFills += s.Fills
		}
		run.Invals = tier.Stats().InvalKeys
	}
	if stopBal != nil {
		stopBal()
	}
	stopScrape()
	c.Stop()
	return run
}

// runE15 executes the seven arms at the given scale under one seed.
func runE15(seed int64, sc e15Scale) E15Result {
	var res E15Result
	res.Uniform = e15Scenario(seed, sc, e15Uniform, "off")
	res.StaticOff = e15Scenario(seed, sc, e15StaticZipf, "off")
	res.StaticMigrate = e15Scenario(seed, sc, e15StaticZipf, "migrate")
	res.StaticHotCache = e15Scenario(seed, sc, e15StaticZipf, "hotcache")
	res.ShiftOff = e15Scenario(seed, sc, e15ShiftZipf, "off")
	res.ShiftMigrate = e15Scenario(seed, sc, e15ShiftZipf, "migrate")
	res.ShiftHotCache = e15Scenario(seed, sc, e15ShiftZipf, "hotcache")
	return res
}

// RunE15 executes the full-scale experiment.
func RunE15(seed int64) E15Result { return runE15(seed, e15FullScale()) }

// RunE15Quick executes the reduced-scale arms the CI smoke gate uses.
func RunE15Quick(seed int64) E15Result { return runE15(seed, e15QuickScale()) }

// E15 renders the experiment table.
func E15(seed int64) *metrics.Table { return e15Table(RunE15(seed), "E15") }

// E15Quick renders the reduced-scale table (benchrunner -only E15Q).
func E15Quick(seed int64) *metrics.Table { return e15Table(RunE15Quick(seed), "E15Q") }

func e15Table(r E15Result, name string) *metrics.Table {
	tab := metrics.NewTable(name+" — hot-key cache tier vs home migration under shifting Zipf skew",
		"workload", "scheme", "ops/s", "MB/s", "load CV", "win CV", "max/mean", "p50 ms", "p99 ms")
	row := func(wl, scheme string, run E15Run) {
		tab.AddRow(wl, scheme, int64(run.OpsPerSec), fmtF(run.MBps), fmtF(run.CV), fmtF(run.WinCV),
			fmtF(run.Ratio), fmtDur(run.P50), fmtDur(run.P99))
	}
	row("uniform", "off", r.Uniform)
	row("zipf s=1.1", "off", r.StaticOff)
	row("zipf s=1.1", "migrate", r.StaticMigrate)
	row("zipf s=1.1", "hotcache", r.StaticHotCache)
	row("shifting zipf", "off", r.ShiftOff)
	row("shifting zipf", "migrate", r.ShiftMigrate)
	row("shifting zipf", "hotcache", r.ShiftHotCache)
	tab.AddNote("shifting: hot set rotates every %d ops/client (stride %d); write fraction %s everywhere",
		e15Rotate, e15Stride, fmtF(e15WriteFrac))
	tab.AddNote("static regime: migrate moved %d homes, reaching %s%% of uniform ops/s (hotcache arm: %s%%)",
		r.StaticMigrate.Migrations,
		fmtF(100*r.StaticMigrate.OpsPerSec/r.Uniform.OpsPerSec),
		fmtF(100*r.StaticHotCache.OpsPerSec/r.Uniform.OpsPerSec))
	tab.AddNote("shifting regime: hotcache served %d upper-layer hits (%d fills, %d write-through invals), reaching %s%% of uniform ops/s (migrate arm: %s%%, %d homes moved)",
		r.ShiftHotCache.CacheHits, r.ShiftHotCache.CacheFills, r.ShiftHotCache.Invals,
		fmtF(100*r.ShiftHotCache.OpsPerSec/r.Uniform.OpsPerSec),
		fmtF(100*r.ShiftMigrate.OpsPerSec/r.Uniform.OpsPerSec),
		r.ShiftMigrate.Migrations)
	return tab
}
