package experiments

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
	"repro/internal/telemetry"
	"repro/internal/workload"

	"repro/internal/core"
)

// E6 — §6.1: N-way replication of write data across controller caches.
// Write latency grows mildly with N; killing up to N−1 blades right after
// a burst of acknowledged writes loses nothing, while killing N can.
func E6(seed int64) *metrics.Table {
	tab := metrics.NewTable("E6 — §6.1: N-way write replication",
		"N (copies)", "write mean ms", "lost after N-1 failures", "lost after N failures")
	const (
		blades  = 6
		nWrites = 64
	)
	var replSkew string
	for _, n := range []int{1, 2, 3, 4} {
		lost := func(kills int) int {
			k := sim.NewKernel(seed)
			cfg := clusterConfig(blades)
			cfg.ReplicationN = n
			cfg.FlushInterval = 60 * sim.Second // rely on replication alone
			c, err := controllerNew(k, cfg)
			if err != nil {
				panic(err)
			}
			c.Pool.CreateDMSD("v", 1<<20)
			want := make(map[int64]byte)
			missing := 0
			done := false
			k.Go("body", func(p *sim.Proc) {
				defer func() { done = true }()
				blk := make([]byte, c.BlockSize())
				for i := 0; i < nWrites; i++ {
					lba := int64(i * 3)
					val := byte(i + 1)
					for j := range blk {
						blk[j] = val
					}
					if err := c.Write(p, c.Blade(i%blades), "v", lba, blk, 0); err != nil {
						panic(err)
					}
					want[lba] = val
				}
				// Fail the first `kills` blades at the same instant: the
				// correlated failure N-way replication is sized against.
				if kills > 0 {
					ids := make([]int, kills)
					for f := range ids {
						ids[f] = f
					}
					if err := c.FailBlades(p, ids...); err != nil {
						panic(err)
					}
				}
				b := c.PickBlade()
				// Read back in LBA order, not map order: the readback I/O
				// sequence must be identical across runs with the same seed.
				lbas := make([]int64, 0, len(want))
				for lba := range want {
					lbas = append(lbas, lba)
				}
				sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
				for _, lba := range lbas {
					got, err := c.Read(p, b, "v", lba, 1, 0)
					if err != nil || got[0] != want[lba] {
						missing++
					}
				}
			})
			for i := 0; !done && i < 3000; i++ {
				k.RunFor(100 * sim.Millisecond)
			}
			c.Stop()
			if !done {
				panic("E6 run did not finish")
			}
			return missing
		}

		// Measure write latency with this factor.
		k := sim.NewKernel(seed)
		cfg := clusterConfig(blades)
		cfg.ReplicationN = n
		c, err := controllerNew(k, cfg)
		if err != nil {
			panic(err)
		}
		c.Pool.CreateDMSD("v", 1<<20)
		hist := metrics.NewHistogram()
		doneLat := false
		k.Go("lat", func(p *sim.Proc) {
			blk := make([]byte, c.BlockSize())
			for i := 0; i < nWrites; i++ {
				t0 := p.Now()
				if err := c.Write(p, c.Blade(i%blades), "v", int64(i*5), blk, 0); err != nil {
					panic(err)
				}
				hist.Observe(p.Now().Sub(t0))
			}
			doneLat = true
		})
		for i := 0; !doneLat && i < 3000; i++ {
			k.RunFor(100 * sim.Millisecond)
		}
		c.Stop()
		if !doneLat {
			panic("E6 latency run did not finish")
		}

		if n == 3 {
			replSkew = telemetry.SkewTable(c.Reg, "E6 — per-blade client ops at N=3", "blade/*/ops").String() +
				telemetry.SkewTable(c.Reg, "E6 — per-blade replica pushes held at N=3", "blade/*/repl/puts").String()
		}
		tab.AddRow(n, fmtDur(hist.Mean()), lost(n-1), lost(n))
	}
	tab.AddNote("N-1 failures: zero loss (every dirty block still has a live copy); N failures can lose blocks whose entire copy set died")
	tab.AddNote("replication fan-out balance (telemetry registry, N=3 latency run):\n%s", replSkew)
	return tab
}

// E7 — §7.1 / Figure 3: distributed data access. The first block read at a
// remote site pays the WAN round trip; prefetch makes the rest local, and
// a hot file is promoted to a full local replica.
func E7(seed int64) *metrics.Table {
	tab := metrics.NewTable("E7 — §7.1: remote access latency by read number (40 ms one-way WAN)",
		"read#", "offset KiB", "latency ms", "served")
	gs, err := core.NewGeoSystem(seed, core.GeoOptions{
		Sites:     []string{"A", "B"},
		WANOneWay: 40 * sim.Millisecond,
		SiteOptions: func(string) core.Options {
			return core.Options{DiskSpec: labDisk(), Disks: 12, DisksPerGroup: 6}
		},
		Geo: geoCfg(256<<10, 4),
	})
	if err != nil {
		panic(err)
	}
	defer gs.Stop()
	data := make([]byte, 512<<10)
	for i := range data {
		data[i] = byte(i)
	}
	err = gs.Run(0, func(p *sim.Proc) error {
		a, b := gs.Site("A"), gs.Site("B")
		if err := a.Create(p, "/shared/results.dat", pfs.Policy{}); err != nil {
			return err
		}
		if err := a.WriteAt(p, "/shared/results.dat", 0, data); err != nil {
			return err
		}
		buf := make([]byte, 16<<10)
		for i := 0; i < 8; i++ {
			off := int64(i) * int64(len(buf))
			t0 := p.Now()
			if _, err := b.ReadAt(p, "/shared/results.dat", off, buf); err != nil {
				return err
			}
			served := "prefetched (local)"
			if i == 0 {
				served = "WAN fetch"
			}
			if !bytes.Equal(buf, data[off:off+int64(len(buf))]) {
				return fmt.Errorf("E7: data mismatch at read %d", i)
			}
			tab.AddRow(i+1, off>>10, fmtDur(p.Now().Sub(t0)), served)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	b := gs.Site("B")
	tab.AddNote("site B stats: %d WAN fetches, %d prefetch hits, %d promotions",
		b.Stats.RemoteReads, b.Stats.PrefetchHits, b.Stats.Promotions)
	return tab
}

// E8 — §7.2: remote replication. Synchronous replication's write latency
// tracks distance; asynchronous keeps local latency but opens a loss
// window (RPO) on site disaster.
func E8(seed int64) *metrics.Table {
	tab := metrics.NewTable("E8 — §7.2: sync vs async replication across distance",
		"one-way ms", "mode", "write mean ms", "writes lost on site disaster")
	for _, oneWay := range []sim.Duration{1 * sim.Millisecond, 10 * sim.Millisecond, 40 * sim.Millisecond, 100 * sim.Millisecond} {
		for _, mode := range []pfs.GeoMode{pfs.GeoSync, pfs.GeoAsync} {
			gs, err := core.NewGeoSystem(seed, core.GeoOptions{
				Sites:     []string{"A", "B"},
				WANOneWay: oneWay,
				SiteOptions: func(string) core.Options {
					return core.Options{DiskSpec: labDisk(), Disks: 12, DisksPerGroup: 6}
				},
				Geo: geoCfgShip(200 * sim.Millisecond),
			})
			if err != nil {
				panic(err)
			}
			const nWrites = 16
			hist := metrics.NewHistogram()
			lost := 0
			err = gs.Run(0, func(p *sim.Proc) error {
				a := gs.Site("A")
				pol := pfs.Policy{Geo: pfs.GeoPolicy{Mode: mode, Sites: []string{"B"}}}
				if err := a.Create(p, "/db/log", pol); err != nil {
					return err
				}
				blk := make([]byte, 4096)
				for i := 0; i < nWrites; i++ {
					t0 := p.Now()
					if err := a.WriteAt(p, "/db/log", int64(i*4096), blk); err != nil {
						return err
					}
					hist.Observe(p.Now().Sub(t0))
				}
				// Disaster: site A is lost immediately after the burst.
				gs.Fed.FailSite("A")
				gs.Fed.Failover("A")
				b := gs.Site("B")
				ino, err := b.FS().Stat("/db/log")
				if err != nil {
					lost = nWrites
					return nil
				}
				lost = nWrites - int(ino.Size/4096)
				return nil
			})
			if err != nil {
				panic(err)
			}
			gs.Stop()
			tab.AddRow(fmtF(oneWay.Millis()), mode.String(), fmtDur(hist.Mean()), lost)
		}
	}
	tab.AddNote("sync: latency ∝ distance, RPO 0; async: local latency, RPO = unshipped journal")
	return tab
}

// E9 — §5.1/§8.1: encryption at wire speed by parallelism. A single
// 2 Gb/s per-blade encryption engine caps one blade, but engines scale
// with the blade count until the port is the limit again.
func E9(seed int64) *metrics.Table {
	tab := metrics.NewTable("E9 — §8.1: streaming with per-blade encryption engines (2 Gb/s each)",
		"blades", "plaintext Gb/s", "encrypted Gb/s", "enc/plain %")
	counts := []int{1, 2, 4, 8}
	k1 := sim.NewKernel(seed)
	plain, err := stripe.Sweep(k1, stripe.Config{}, counts, 128<<20)
	if err != nil {
		panic(err)
	}
	k2 := sim.NewKernel(seed)
	enc, err := stripe.Sweep(k2, stripe.Config{EncBps: 2_000_000_000}, counts, 128<<20)
	if err != nil {
		panic(err)
	}
	for i, n := range counts {
		ratio := 100 * enc[i].Gbps() / plain[i].Gbps()
		tab.AddRow(n, fmtF(plain[i].Gbps()), fmtF(enc[i].Gbps()), fmtF(ratio))
	}
	tab.AddNote("with enough blades the encrypted stream reaches the same port limit — wire speed via parallelism")
	return tab
}

// E10 — §6.3: availability under blade failures. Two of eight blades die
// mid-workload; data stays reachable, load redistributes over the
// survivors, and throughput recovers immediately after the recovery
// protocol.
func E10(seed int64) *metrics.Table {
	tab := metrics.NewTable("E10 — §6.3: availability through blade failures",
		"phase", "MB/s", "ops/s", "errors", "live blades")
	const (
		blades  = 8
		clients = 32
		// The working set fits each blade's cache so the comparison
		// isolates availability (losing blades also shrinks the pooled
		// cache — that effect is §2.2's subject, shown in E2/E3).
		ws = 4 << 10
	)
	k := sim.NewKernel(seed)
	c, err := controllerNew(k, clusterConfig(blades))
	if err != nil {
		panic(err)
	}
	c.Pool.CreateDMSD("v", 1<<20)
	target := &clusterTarget{c: c, vol: "v"}
	if err := prefillVolume(k, c, "v", ws); err != nil {
		panic(err)
	}
	// Read workload: E10 is about availability of data access through
	// failures (write-durability under failures is E6's subject).
	pat := func(int) workload.Pattern {
		return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0}
	}
	runWorkload(k, clients, 2*sim.Second, target, pat) // warm caches

	series := metrics.NewTimeSeries(0, 250*sim.Millisecond)
	measure := func(name string, dur sim.Duration) {
		before := c.Errors
		r := &workload.Runner{
			K: k, Clients: clients, Pattern: pat, Target: target,
			Duration: dur, Series: series,
		}
		r.Run()
		tab.AddRow(name, fmtF(r.Bytes.MBps()), int64(float64(r.Ops)/dur.Seconds()),
			c.Errors-before, len(c.Alive()))
	}

	measure("before failures", sim.Second)
	// Kill two blades (with a workload running so in-flight ops can fail).
	// Recovery — survivors destaging the dead blades' replicated dirty
	// data and cold-starting under the new membership — takes real
	// (virtual) time; we measure the clean post-recovery regime after it
	// completes and report the recovery duration.
	killErr := c.Errors
	during := &workload.Runner{K: k, Clients: clients, Pattern: pat, Target: target, Duration: sim.Second, Series: series}
	during.Start()
	recovered := false
	var recoveryTook sim.Duration
	k.After(200*sim.Millisecond, func() {
		k.Go("killer", func(p *sim.Proc) {
			t0 := p.Now()
			c.FailBlade(p, 0)
			c.FailBlade(p, 1)
			recoveryTook = p.Now().Sub(t0)
			recovered = true
		})
	})
	k.RunFor(sim.Second)
	tab.AddRow("failure window", fmtF(during.Bytes.MBps()),
		int64(float64(during.Ops)/1.0), c.Errors-killErr, len(c.Alive()))
	for !recovered {
		k.RunFor(100 * sim.Millisecond)
	}
	// Recovery cold-starts every cache; warm back up (unmeasured) so the
	// post-recovery row compares like-for-like with the warm before row.
	// Re-warming the whole working set from 24 spindles takes several
	// simulated seconds — the cold-cache cost a real recovery also pays.
	runWorkload(k, clients, 8*sim.Second, target, pat)
	measure("after recovery", sim.Second)
	c.Stop()
	tab.AddNote("both failures detected and recovered in %s ms of virtual time", fmtF(recoveryTook.Millis()))
	tab.AddNote("%s", series.Spark("throughput over time"))

	load := c.LoadPerBlade()[2:] // survivors only
	tab.AddNote("surviving blades' load CV after failures: %s (≈0 = evenly redistributed)",
		fmtF(metrics.Summarize(load).CV()))
	return tab
}
