package experiments

import (
	"encoding/json"
	"testing"
)

// TestPerfSnapshotDeterministic is the golden-file property for the
// BENCH_PRn.json artifact: same-seed runs must serialize byte-identically,
// or the bench trajectory across PRs measures noise instead of code. The
// E12 balance and E13 QoS arms are skipped here — their determinism is
// asserted by TestE12Deterministic and TestE13Deterministic, and second
// full runs would blow the package's test-time budget.
func TestPerfSnapshotDeterministic(t *testing.T) {
	skipIfShort(t)
	a, err := json.MarshalIndent(perfSnapshot(1, false, false, false, false, false, false), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(perfSnapshot(1, false, false, false, false, false, false), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("same-seed snapshots differ:\n%s\nvs\n%s", a, b)
	}
}

func TestPerfSnapshotShape(t *testing.T) {
	skipIfShort(t)
	snap := perfSnapshot(2, false, false, false, false, false, false)
	if snap.Ops <= 0 {
		t.Fatalf("snapshot ran no ops: %+v", snap)
	}
	if snap.OpsPerSec <= 0 || snap.MBps <= 0 {
		t.Fatalf("snapshot rates empty: %+v", snap)
	}
	// The traced window must attribute latency to the pipeline's core
	// phases; their absence means tracing silently broke.
	for _, ph := range []string{"op", "queue", "coherence", "cache"} {
		q, ok := snap.Phases[ph]
		if !ok || q.Count == 0 {
			t.Fatalf("snapshot missing phase %q: %+v", ph, snap.Phases)
		}
	}
}
