package experiments

import (
	"bytes"
	"testing"
)

// Two same-seed traced E1 runs must produce byte-identical JSONL trace
// output — the tracing subsystem's determinism contract at experiment
// scale (this one stays on in -short mode: a single 4-blade stream is
// cheap).
func TestE1TraceDeterministic(t *testing.T) {
	var out [2]bytes.Buffer
	for i := range out {
		tr, _ := tracedE1Stream(3)
		if err := tr.WriteJSONL(&out[i]); err != nil {
			t.Fatal(err)
		}
		if tr.PhaseHistogram("op").Count() == 0 {
			t.Fatal("traced stream recorded no op spans")
		}
	}
	if out[0].Len() == 0 {
		t.Fatal("empty trace output")
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("same-seed traced E1 runs produced different JSONL")
	}
}
