package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// A1 — ablation: geographic prefetch (§7.1). With prefetch disabled every
// remote block pays the WAN round trip; with it on, only the first access
// does — the design choice that makes remote files usable at local speed.
func A1Prefetch(seed int64) *metrics.Table {
	tab := metrics.NewTable("A1 — ablation: remote-read prefetch (40 ms one-way WAN)",
		"prefetch", "read 1 ms", "read 2 ms", "read 3 ms", "WAN fetches")
	for _, prefetch := range []int64{0, 256 << 10} {
		gs, err := core.NewGeoSystem(seed, core.GeoOptions{
			Sites:     []string{"A", "B"},
			WANOneWay: 40 * sim.Millisecond,
			SiteOptions: func(string) core.Options {
				return core.Options{DiskSpec: labDisk(), Disks: 12, DisksPerGroup: 6}
			},
			Geo: geoCfg(max64Local(prefetch, 1), 1000), // 1 byte ≈ off
		})
		if err != nil {
			panic(err)
		}
		data := make([]byte, 128<<10)
		var lat [3]sim.Duration
		err = gs.Run(0, func(p *sim.Proc) error {
			a, b := gs.Site("A"), gs.Site("B")
			if err := a.Create(p, "/f", pfs.Policy{}); err != nil {
				return err
			}
			if err := a.WriteAt(p, "/f", 0, data); err != nil {
				return err
			}
			buf := make([]byte, 16<<10)
			for i := 0; i < 3; i++ {
				t0 := p.Now()
				if _, err := b.ReadAt(p, "/f", int64(i)*int64(len(buf)), buf); err != nil {
					return err
				}
				lat[i] = p.Now().Sub(t0)
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		label := "off"
		if prefetch > 0 {
			label = "256 KiB"
		}
		tab.AddRow(label, fmtDur(lat[0]), fmtDur(lat[1]), fmtDur(lat[2]),
			gs.Site("B").Stats.RemoteReads)
		gs.Stop()
	}
	tab.AddNote("without prefetch every 16 KiB read pays the WAN; with it only the first does")
	return tab
}

// A2 — ablation: peer-cache transfers (§6.3 "cache data migrated to where
// it is most needed"). With transfers off, every blade's first touch of a
// shared hot block reads the disks; with them on, one disk read serves the
// whole cluster.
func A2PeerFetch(seed int64) *metrics.Table {
	tab := metrics.NewTable("A2 — ablation: cache-to-cache transfers under shared hot reads",
		"peer fetch", "ops/s", "disk reads", "peer transfers", "p99 ms")
	const (
		clients = 16
		dur     = sim.Second
		ws      = 2 << 10
	)
	for _, off := range []bool{true, false} {
		k := sim.NewKernel(seed)
		cfg := clusterConfig(4)
		cfg.NoPeerFetch = off
		c, err := controllerNew(k, cfg)
		if err != nil {
			panic(err)
		}
		c.Pool.CreateDMSD("hot", 1<<20)
		target := &clusterTarget{c: c, vol: "hot"}
		if err := prefillVolume(k, c, "hot", ws); err != nil {
			panic(err)
		}
		r := runWorkload(k, clients, dur, target, func(int) workload.Pattern {
			return &workload.Zipf{Range: ws, S: 1.3, Blocks: 1}
		})
		c.Stop()
		var diskReads, peer int64
		for _, b := range c.Blades {
			st := b.Engine.Stats()
			diskReads += st.DiskReads
			peer += st.PeerFetches
		}
		label := "on"
		if off {
			label = "off"
		}
		tab.AddRow(label, int64(float64(r.Ops)/dur.Seconds()), diskReads, peer, fmtDur(r.Latency.P99()))
	}
	tab.AddNote("transfers let a block read from disk once serve all blades' caches")
	return tab
}

// A3 — ablation: write-back replication factor vs write latency at one
// distance scale — the §6.1 cost curve on its own.
func A3ReplicationCost(seed int64) *metrics.Table {
	tab := metrics.NewTable("A3 — ablation: write latency vs cache-replication factor",
		"N (copies)", "mean write ms", "p99 write ms")
	for _, n := range []int{1, 2, 3, 4, 5} {
		k := sim.NewKernel(seed)
		cfg := clusterConfig(6)
		cfg.ReplicationN = n
		c, err := controllerNew(k, cfg)
		if err != nil {
			panic(err)
		}
		c.Pool.CreateDMSD("v", 1<<20)
		hist := metrics.NewHistogram()
		done := false
		k.Go("w", func(p *sim.Proc) {
			blk := make([]byte, c.BlockSize())
			for i := 0; i < 200; i++ {
				t0 := p.Now()
				if err := c.Write(p, c.Blade(i%6), "v", int64(i), blk, 0); err != nil {
					panic(err)
				}
				hist.Observe(p.Now().Sub(t0))
			}
			done = true
		})
		for i := 0; !done && i < 1200; i++ {
			k.RunFor(100 * sim.Millisecond)
		}
		c.Stop()
		if !done {
			panic("A3 did not finish")
		}
		tab.AddRow(n, fmtDur(hist.Mean()), fmtDur(hist.P99()))
	}
	tab.AddNote("each extra copy adds one more parallel fabric push before the ack (§6.1)")
	return tab
}

func max64Local(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// A4 — ablation: controller readahead (§4 "storage prefetch operations").
// A sequential scan through the coherent cache with and without prefetch.
func A4ReadAhead(seed int64) *metrics.Table {
	tab := metrics.NewTable("A4 — ablation: sequential scan with controller readahead",
		"readahead", "scan MB/s", "mean ms/op", "prefetches")
	const scanBlocks = 2048
	for _, ra := range []int{0, 16} {
		k := sim.NewKernel(seed)
		cfg := clusterConfig(4)
		cfg.ReadAhead = ra
		c, err := controllerNew(k, cfg)
		if err != nil {
			panic(err)
		}
		c.Pool.CreateDMSD("seq", 1<<20)
		if err := prefillVolume(k, c, "seq", scanBlocks); err != nil {
			panic(err)
		}
		hist := metrics.NewHistogram()
		var elapsed sim.Duration
		done := false
		k.Go("scan", func(p *sim.Proc) {
			t0 := p.Now()
			b := c.Blade(0)
			for lba := int64(0); lba < scanBlocks; lba += 4 {
				s0 := p.Now()
				if _, err := c.Read(p, b, "seq", lba, 4, 0); err != nil {
					panic(err)
				}
				hist.Observe(p.Now().Sub(s0))
			}
			elapsed = p.Now().Sub(t0)
			done = true
		})
		for i := 0; !done && i < 6000; i++ {
			k.RunFor(100 * sim.Millisecond)
		}
		c.Stop()
		if !done {
			panic("A4 scan did not finish")
		}
		var prefetches int64
		for _, b := range c.Blades {
			prefetches += b.Engine.Stats().Prefetches
		}
		mbps := float64(scanBlocks*4096) / elapsed.Seconds() / 1e6
		tab.AddRow(ra, fmtF(mbps), fmtDur(hist.Mean()), prefetches)
	}
	tab.AddNote("prefetch overlaps disk time with the host's consumption of earlier blocks")
	return tab
}
