// Package experiments implements the reproduction of every quantitative
// claim in the paper, one function per experiment (E1–E11 in DESIGN.md).
// Each function builds its own simulated system(s), runs the workload, and
// returns the result table the benchmark harness prints; bench_test.go and
// cmd/benchrunner both call into here.
package experiments

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/disk"
	"repro/internal/georepl"
	"repro/internal/metrics"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/workload"
)

// labDisk is the drive model used across experiments: 4 KiB blocks,
// 256 MiB per drive (kept small so rebuild experiments finish quickly),
// 5 ms seek + 3 ms rotation, 50 MB/s media.
func labDisk() disk.Spec {
	return disk.Spec{
		BlockSize:   4096,
		Blocks:      1 << 16,
		Seek:        5 * sim.Millisecond,
		Rotation:    3 * sim.Millisecond,
		TransferBps: 400_000_000,
	}
}

// clusterConfig is the shared blade-cluster shape.
func clusterConfig(blades int) controller.Config {
	cfg := controller.DefaultConfig()
	cfg.Blades = blades
	cfg.DiskSpec = labDisk()
	cfg.Disks = 24
	cfg.DisksPerGroup = 6
	cfg.RAIDLevel = raid.RAID5
	cfg.ExtentBlocks = 64
	cfg.CacheBlocksPerBlade = 4096
	cfg.OpDelay = 50 * sim.Microsecond // models early-2000s controller CPUs
	cfg.CPUSlots = 4
	return cfg
}

// runWorkload drives a closed-loop population against a target and returns
// the runner for inspection.
func runWorkload(k *sim.Kernel, clients int, dur sim.Duration, target workload.Target, pat func(int) workload.Pattern) *workload.Runner {
	r := &workload.Runner{
		K:        k,
		Clients:  clients,
		Pattern:  pat,
		Target:   target,
		Duration: dur,
	}
	r.Run()
	return r
}

// clusterTarget adapts a cluster volume with round-robin blade selection.
type clusterTarget struct {
	c   *controller.Cluster
	vol string
	buf []byte
}

func (t *clusterTarget) BlockSize() int { return t.c.BlockSize() }

func (t *clusterTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	_, err := t.c.Read(p, t.c.PickBlade(), t.vol, lba, blocks, 0)
	return err
}

func (t *clusterTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	need := blocks * t.c.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.c.Write(p, t.c.PickBlade(), t.vol, lba, t.buf[:need], 0)
}

// prefillVolume writes [0, blocks) of a cluster volume directly through
// the pool — large sequential full-stripe writes that bypass the blade
// caches, so experiments start with clean caches over allocated,
// parity-consistent storage.
func prefillVolume(k *sim.Kernel, c *controller.Cluster, vol string, blocks int64) error {
	v, err := c.PoolFor("default")
	if err != nil {
		return err
	}
	target, ok := v.Volumes()[vol]
	if !ok {
		return fmt.Errorf("experiments: no volume %q", vol)
	}
	return prefill(k, func(p *sim.Proc) error {
		bs := int64(c.BlockSize())
		const chunk = int64(256)
		buf := make([]byte, chunk*bs)
		for i := range buf {
			buf[i] = byte(i)
		}
		for lba := int64(0); lba < blocks; lba += chunk {
			n := chunk
			if lba+n > blocks {
				n = blocks - lba
			}
			if err := target.Write(p, lba, buf[:n*bs]); err != nil {
				return err
			}
		}
		return nil
	})
}

// prefill writes the working set so reads hit allocated, parity-consistent
// storage rather than DMSD zero-fill.
func prefill(k *sim.Kernel, w func(p *sim.Proc) error) error {
	var err error
	done := false
	k.Go("prefill", func(p *sim.Proc) {
		err = w(p)
		done = true
	})
	for i := 0; !done && i < 6000; i++ {
		k.RunFor(100 * sim.Millisecond)
	}
	if !done {
		return fmt.Errorf("experiments: prefill did not finish")
	}
	return err
}

// fmtDur renders a duration in ms with two decimals for tables.
func fmtDur(d sim.Duration) string { return fmt.Sprintf("%.2f", d.Millis()) }

// fmtF renders a float with two decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// All runs every experiment and returns the tables in order.
func All(seed int64) []*metrics.Table {
	return []*metrics.Table{
		E1(seed),
		E2(seed),
		E3(seed),
		E4(seed),
		E5(seed),
		E6(seed),
		E7(seed),
		E8(seed),
		E9(seed),
		E10(seed),
		E11(seed),
		E12(seed),
		E13(seed),
		E14(seed),
		E15(seed),
		E16(seed),
	}
}

// controllerNew is a local alias keeping experiment code compact.
func controllerNew(k *sim.Kernel, cfg controller.Config) (*controller.Cluster, error) {
	return controller.New(k, cfg)
}

// ramDevice is an instant block device for capacity-accounting experiments
// (E5), where service time is irrelevant.
type ramDevice struct {
	bs     int
	blocks int64
	data   map[int64][]byte
}

func newRAMDevice(bs int, blocks int64) *ramDevice {
	return &ramDevice{bs: bs, blocks: blocks, data: make(map[int64][]byte)}
}

func (d *ramDevice) BlockSize() int  { return d.bs }
func (d *ramDevice) Capacity() int64 { return d.blocks }

func (d *ramDevice) Read(p *sim.Proc, lba int64, count int) ([]byte, error) {
	buf := make([]byte, count*d.bs)
	for i := 0; i < count; i++ {
		if b, ok := d.data[lba+int64(i)]; ok {
			copy(buf[i*d.bs:], b)
		}
	}
	return buf, nil
}

func (d *ramDevice) Write(p *sim.Proc, lba int64, data []byte) error {
	for i := 0; i < len(data)/d.bs; i++ {
		b := make([]byte, d.bs)
		copy(b, data[i*d.bs:])
		d.data[lba+int64(i)] = b
	}
	return nil
}

// geoCfg builds a georepl config with the given prefetch window and hot
// threshold.
func geoCfg(prefetchBytes int64, hotThreshold int) georepl.Config {
	return georepl.Config{PrefetchBytes: prefetchBytes, HotThreshold: hotThreshold}
}

// geoCfgShip builds a georepl config with the given async ship interval.
func geoCfgShip(interval sim.Duration) georepl.Config {
	return georepl.Config{ShipInterval: interval}
}
