package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stripe"
	"repro/internal/telemetry"
	"repro/internal/virt"
	"repro/internal/workload"
)

// E1 — Figure 1 / §2.3: single-stream bandwidth vs number of striped
// blades. One blade ingests 2×2 Gb/s of Fibre Channel; four blades
// saturate the 10 Gb/s port.
func E1(seed int64) *metrics.Table {
	k := sim.NewKernel(seed)
	counts := []int{1, 2, 4, 8}
	results, err := stripe.Sweep(k, stripe.Config{}, counts, 256<<20)
	if err != nil {
		panic(err)
	}
	tab := stripe.Table(counts, results, 2_000_000_000, 10_000_000_000)
	tab.AddNote("paper §2.3: four blades × 2×2 Gb/s FC take turns driving one 10 Gb/s port")
	tr, reg := tracedE1Stream(seed)
	tab.AddNote("per-phase chunk latency at 4 blades (op = farm→port; fabric = FC ingest; queue = egress wait for the shared port):\n%s",
		tr.BreakdownTable("").String())
	tab.AddNote("ingest-link balance at 4 blades (round-robin striping over 8 FC links):\n%s",
		telemetry.SkewTable(reg, "E1 — FC ingest-link bytes", "net/link/farm-*/bytes").String())
	return tab
}

// E2 — §2.1: aggregate throughput scales with blades without partitioning
// data; the traditional dual-controller array is flat.
func E2(seed int64) *metrics.Table {
	tab := metrics.NewTable("E2 — §2.1: aggregate throughput vs controllers",
		"system", "controllers", "MB/s", "ops/s", "mean ms", "p99 ms")
	const (
		clients = 48
		dur     = 2 * sim.Second
		// The working set fits each blade's cache: the controllers, not
		// the 24 spindles, are the bottleneck — §2.1's regime ("the only
		// way to overcome Moore's Law is through parallelism").
		wsBlocks = 3 << 10
		opBlocks = 16 // 64 KiB operations
	)
	// Shared read streams (§2.1: "many I/O streams to access the same
	// data without performance degradation"); write-path costs are
	// measured separately in E6/A3.
	pat := func(int) workload.Pattern {
		return workload.Uniform{Range: wsBlocks, Blocks: opBlocks, WriteFrac: 0}
	}

	for _, blades := range []int{1, 2, 4, 8, 16} {
		k := sim.NewKernel(seed)
		cfg := clusterConfig(blades)
		c, err := controllerNew(k, cfg)
		if err != nil {
			panic(err)
		}
		if _, err := c.Pool.CreateDMSD("bench", 1<<20); err != nil {
			panic(err)
		}
		target := &clusterTarget{c: c, vol: "bench"}
		if err := prefillVolume(k, c, "bench", wsBlocks); err != nil {
			panic(err)
		}
		runWorkload(k, clients, 2*sim.Second, target, pat) // warm caches
		r := runWorkload(k, clients, dur, target, pat)
		c.Stop()
		tab.AddRow("yotta", blades, fmtF(r.Bytes.MBps()), int64(float64(r.Ops)/dur.Seconds()),
			fmtDur(r.Latency.Mean()), fmtDur(r.Latency.P99()))
	}

	// Baseline: the same disks behind a fixed dual-controller array.
	k := sim.NewKernel(seed)
	bcfg := baseline.DefaultConfig()
	bcfg.DiskSpec = labDisk()
	bcfg.Disks = 24
	bcfg.DisksPerGroup = 6
	bcfg.ExtentBlocks = 64
	bcfg.CacheBlocksPerController = 4096
	bcfg.OpDelay = 50 * sim.Microsecond
	arr, err := baseline.New(k, bcfg)
	if err != nil {
		panic(err)
	}
	// Two volumes, one per controller — the best static split.
	arr.CreateVolume("v0", wsBlocks/2)
	arr.CreateVolume("v1", wsBlocks/2)
	tgt := &arrayTarget{a: arr, vols: []string{"v0", "v1"}, span: wsBlocks / 2}
	if err := prefill(k, func(p *sim.Proc) error { return seqFill(p, tgt, wsBlocks/2) }); err != nil {
		panic(err)
	}
	bpat := func(int) workload.Pattern {
		return workload.Uniform{Range: wsBlocks / 2, Blocks: opBlocks, WriteFrac: 0}
	}
	runWorkload(k, clients, 2*sim.Second, tgt, bpat) // warm caches
	r := runWorkload(k, clients, dur, tgt, bpat)
	arr.Stop()
	tab.AddRow("baseline", 2, fmtF(r.Bytes.MBps()), int64(float64(r.Ops)/dur.Seconds()),
		fmtDur(r.Latency.Mean()), fmtDur(r.Latency.P99()))
	tab.AddNote("yotta scales by adding blades to one shared pool; the array is capped at its controller pair")
	return tab
}

// seqFill writes the first n blocks of a target sequentially (prefill).
func seqFill(p *sim.Proc, t workload.Target, n int64) error {
	const step = 64
	for lba := int64(0); lba < n; lba += step {
		c := int64(step)
		if lba+c > n {
			c = n - lba
		}
		if err := t.Write(p, lba, int(c)); err != nil {
			return err
		}
	}
	return nil
}

// arrayTarget spreads accesses over the baseline array's volumes.
type arrayTarget struct {
	a    *baseline.Array
	vols []string
	span int64
	i    int
	buf  []byte
}

func (t *arrayTarget) BlockSize() int { return t.a.Pool.BlockSize() }

func (t *arrayTarget) pick() string {
	v := t.vols[t.i%len(t.vols)]
	t.i++
	return v
}

func (t *arrayTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	_, err := t.a.Read(p, t.pick(), lba%t.span, blocks)
	return err
}

func (t *arrayTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	need := blocks * t.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.a.Write(p, t.pick(), lba%t.span, t.buf[:need])
}

// singleVolArrayTarget pins every access to one volume — the hot-volume
// case of E3.
type singleVolArrayTarget struct {
	a   *baseline.Array
	vol string
	buf []byte
}

func (t *singleVolArrayTarget) BlockSize() int { return t.a.Pool.BlockSize() }

func (t *singleVolArrayTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	_, err := t.a.Read(p, t.vol, lba, blocks)
	return err
}

func (t *singleVolArrayTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	need := blocks * t.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.a.Write(p, t.vol, lba, t.buf[:need])
}

// E3 — §2.2/§6.3: Zipf-skewed "hot data" reads (the web-farm pattern the
// paper opens §2 with) drive one controller of the traditional array to
// saturation, while the cluster spreads the same load across every blade
// (load CV ≈ 0) and serves it from the pooled cache at processor speed.
func E3(seed int64) *metrics.Table {
	tab := metrics.NewTable("E3 — §2.2: hot-spot behaviour under Zipf reads",
		"system", "ops/s", "p99 ms", "load CV", "cache hit %")
	const (
		clients = 32
		dur     = 2 * sim.Second
		ws      = 8 << 10 // 32 MiB hot set
	)
	pat := func(int) workload.Pattern {
		return &workload.Zipf{Range: ws, S: 1.2, Blocks: 4, WriteFrac: 0}
	}

	// Cluster: 4 blades, one shared volume, any blade serves any block.
	k := sim.NewKernel(seed)
	c, err := controllerNew(k, clusterConfig(4))
	if err != nil {
		panic(err)
	}
	c.Pool.CreateDMSD("hot", 1<<20)
	target := &clusterTarget{c: c, vol: "hot"}
	if err := prefillVolume(k, c, "hot", ws); err != nil {
		panic(err)
	}
	runWorkload(k, clients, 4*sim.Second, target, pat) // warm the pooled cache
	r := runWorkload(k, clients, dur, target, pat)
	c.Stop()
	hits, misses := c.CacheStats()
	cv := metrics.Summarize(c.LoadPerBlade()).CV()
	tab.AddRow("yotta (4 blades)", int64(float64(r.Ops)/dur.Seconds()),
		fmtDur(r.Latency.P99()), fmtF(cv), fmtF(100*float64(hits)/float64(hits+misses)))

	// Baseline: the hot data lives in one volume owned by controller 0.
	k2 := sim.NewKernel(seed)
	bcfg := baseline.DefaultConfig()
	bcfg.DiskSpec = labDisk()
	bcfg.Disks = 24
	bcfg.DisksPerGroup = 6
	bcfg.ExtentBlocks = 64
	bcfg.CacheBlocksPerController = 4096
	bcfg.OpDelay = 50 * sim.Microsecond
	arr, err := baseline.New(k2, bcfg)
	if err != nil {
		panic(err)
	}
	arr.CreateVolume("hot", ws)
	arr.SetOwner("hot", 0)
	tgt := &singleVolArrayTarget{a: arr, vol: "hot"}
	if err := prefill(k2, func(p *sim.Proc) error { return seqFill(p, tgt, ws) }); err != nil {
		panic(err)
	}
	r2 := runWorkload(k2, clients, dur, tgt, pat)
	arr.Stop()
	ops := arr.ControllerOps()
	bcv := metrics.Summarize([]float64{float64(ops[0]), float64(ops[1])}).CV()
	tab.AddRow("baseline (hot volume)", int64(float64(r2.Ops)/dur.Seconds()),
		fmtDur(r2.Latency.P99()), fmtF(bcv), "n/a")
	tab.AddNote("load CV: 0 = perfectly balanced; √2 ≈ 1.41 = all load on one of two controllers")
	return tab
}

// E4 — §2.4: distributed rebuild. Time to reconstruct a failed drive vs
// blade count, with foreground I/O degradation; plus rebuild completion
// despite a blade dying mid-rebuild.
func E4(seed int64) *metrics.Table {
	tab := metrics.NewTable("E4 — §2.4: distributed rebuild",
		"blades", "rebuild s", "foreground p99 ms (during)", "baseline p99 ms (no rebuild)")
	const (
		clients = 16
		ws      = 8 << 10
	)
	pat := func(int) workload.Pattern {
		return workload.Uniform{Range: ws, Blocks: 4, WriteFrac: 0.1}
	}
	for _, blades := range []int{1, 2, 4, 8} {
		k := sim.NewKernel(seed)
		c, err := controllerNew(k, clusterConfig(blades))
		if err != nil {
			panic(err)
		}
		c.Pool.CreateDMSD("data", 1<<20)
		target := &clusterTarget{c: c, vol: "data"}
		if err := prefillVolume(k, c, "data", ws); err != nil {
			panic(err)
		}
		// Reference run without rebuild.
		ref := runWorkload(k, clients, sim.Second, target, pat)

		// Fail a disk and rebuild while foreground load continues.
		c.Groups[0].Disks()[1].Fail()
		var rebuildTime sim.Duration
		during := &workload.Runner{
			K: k, Clients: clients, Pattern: pat, Target: target,
			Duration: 120 * sim.Second, // bounded by rebuild completion below
		}
		during.Start()
		done := false
		k.Go("rebuild", func(p *sim.Proc) {
			t0 := p.Now()
			if err := c.DistributedRebuild(p, 0, 1); err != nil {
				panic(err)
			}
			rebuildTime = p.Now().Sub(t0)
			done = true
		})
		for !done {
			k.RunFor(100 * sim.Millisecond)
		}
		c.Stop()
		tab.AddRow(blades, fmtF(rebuildTime.Seconds()),
			fmtDur(during.Latency.P99()), fmtDur(ref.Latency.P99()))
	}
	tab.AddNote("rebuild compute spreads across blades; disks bound the floor")
	return tab
}

// E5 — §3: demand-mapped storage devices. Thin provisioning lets dozens of
// over-provisioned tenants share a pool that fixed partitioning exhausts
// after a handful.
func E5(seed int64) *metrics.Table {
	tab := metrics.NewTable("E5 — §3: DMSD thin provisioning vs fixed partitions",
		"model", "tenants fit", "provisioned", "physical used", "pool util %")
	k := sim.NewKernel(seed)
	devs := []virt.BlockDevice{}
	for i := 0; i < 4; i++ {
		devs = append(devs, newRAMDevice(4096, 64<<10)) // 4 × 256 MiB
	}
	pool, err := virt.NewPool(k, 64, devs...)
	if err != nil {
		panic(err)
	}
	const provisionExtents = 256 // each tenant asks for 64 MiB
	// Thick: how many fully provisioned tenants fit?
	thick := 0
	for {
		if _, err := pool.CreateVolume(fmt.Sprintf("thick%d", thick), provisionExtents*64); err != nil {
			break
		}
		thick++
	}
	used := pool.AllocatedExtents()
	tab.AddRow("fixed partitions", thick,
		metrics.FormatBytes(int64(thick)*provisionExtents*pool.ExtentBytes()),
		metrics.FormatBytes(used*pool.ExtentBytes()),
		fmtF(100*float64(used)/float64(pool.TotalExtents())))
	for i := 0; i < thick; i++ {
		pool.Delete(fmt.Sprintf("thick%d", i))
	}

	// Thin: tenants provision the same amount but write what they use
	// (skewed usage, ~8% mean).
	rng := k.Rand()
	thin := 0
	var provisioned int64
	fill := func(p *sim.Proc) error {
		for {
			name := fmt.Sprintf("thin%d", thin)
			v, err := pool.CreateDMSD(name, provisionExtents)
			if err != nil {
				return err
			}
			provisioned += provisionExtents
			use := 1 + rng.Int63n(2*provisionExtents/12) // mean ~8%
			for e := int64(0); e < use; e++ {
				if err := v.Write(p, e*64, make([]byte, 4096)); err != nil {
					pool.Delete(name)
					provisioned -= provisionExtents
					return nil // pool full: stop
				}
			}
			thin++
			if thin >= 48 {
				return nil
			}
		}
	}
	if err := prefill(k, fill); err != nil {
		panic(err)
	}
	usedThin := pool.AllocatedExtents()
	tab.AddRow("DMSD (thin)", thin,
		metrics.FormatBytes(provisioned*pool.ExtentBytes()),
		metrics.FormatBytes(usedThin*pool.ExtentBytes()),
		fmtF(100*float64(usedThin)/float64(pool.TotalExtents())))
	tab.AddNote("slack space is amortized across tenants; charge-back reflects actual usage (§3)")
	return tab
}
