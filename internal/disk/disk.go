// Package disk models the physical disk farm behind the controller blades:
// block-addressed drives with seek, rotational and media-transfer delays,
// FIFO queues, sparse in-memory block storage, and failure injection for
// RAID rebuild and availability experiments.
package disk

import (
	"errors"
	"fmt"

	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrFailed is returned by operations on a failed disk.
var ErrFailed = errors.New("disk: drive failed")

// ErrOutOfRange is returned for accesses beyond the disk's capacity.
var ErrOutOfRange = errors.New("disk: block out of range")

// Spec describes a drive's geometry and performance.
type Spec struct {
	// BlockSize is the sector/block size in bytes.
	BlockSize int
	// Blocks is the capacity in blocks.
	Blocks int64
	// Seek is the average seek time applied to non-sequential accesses.
	Seek sim.Duration
	// Rotation is the average rotational latency applied with each seek.
	Rotation sim.Duration
	// TransferBps is the sustained media rate in bits per second.
	TransferBps int64
}

// DefaultSpec is a drive of the paper's era: 4 KiB blocks, ~36 GiB,
// 5 ms seek, 3 ms rotational latency, 50 MB/s media rate.
func DefaultSpec() Spec {
	return Spec{
		BlockSize:   4096,
		Blocks:      9 << 20, // 9 Mi blocks = 36 GiB
		Seek:        5 * sim.Millisecond,
		Rotation:    3 * sim.Millisecond,
		TransferBps: 400_000_000, // 50 MB/s
	}
}

// Bytes returns the drive capacity in bytes.
func (s Spec) Bytes() int64 { return s.Blocks * int64(s.BlockSize) }

// Stats accumulates per-drive activity counters.
type Stats struct {
	Reads, Writes int64
	BytesRead     int64
	BytesWritten  int64
	Busy          sim.Duration
	QueueMax      int
	// LaneQueued and LaneQueueMax break queue occupancy down by QoS lane
	// (foreground 0..3, background last) — the signal E13's skew tables
	// and `yottactl top` use to show who is occupying the drive.
	LaneQueued   [qos.NumLanes]int
	LaneQueueMax [qos.NumLanes]int
}

// Disk is one simulated drive. All I/O is performed by simulation processes
// and is serialized FIFO through the drive.
type Disk struct {
	id      string
	spec    Spec
	k       *sim.Kernel
	store   map[int64][]byte
	gate    *sim.Semaphore
	sched   *qos.FairQueue
	queued  int
	lastEnd int64 // next sequential LBA; -1 forces a seek
	failed  bool
	stats   Stats
}

// New creates a drive named id with the given spec.
func New(k *sim.Kernel, id string, spec Spec) *Disk {
	if spec.BlockSize <= 0 || spec.Blocks <= 0 {
		panic("disk: invalid spec")
	}
	return &Disk{
		id:      id,
		spec:    spec,
		k:       k,
		store:   make(map[int64][]byte),
		gate:    sim.NewSemaphore(k, 1),
		lastEnd: -1,
	}
}

// ID returns the drive's name.
func (d *Disk) ID() string { return d.id }

// Spec returns the drive's geometry.
func (d *Disk) Spec() Spec { return d.spec }

// Stats returns a copy of the drive's activity counters.
func (d *Disk) Stats() Stats { return d.stats }

// QueueDepth reports the number of I/Os queued or in service right now —
// the instantaneous load signal the telemetry stall detector watches.
func (d *Disk) QueueDepth() int { return d.queued }

// SetScheduler installs a QoS fair queue in place of the drive's FIFO
// gate. Must be called before any I/O is issued; a nil q restores FIFO.
func (d *Disk) SetScheduler(q *qos.FairQueue) { d.sched = q }

// RegisterTelemetry publishes the drive's counters under s (reads, writes,
// bytes, busy time, live and high-water queue depth).
func (d *Disk) RegisterTelemetry(s telemetry.Scope) {
	s.Int("reads", func() int64 { return d.stats.Reads })
	s.Int("writes", func() int64 { return d.stats.Writes })
	s.Int("bytes_read", func() int64 { return d.stats.BytesRead })
	s.Int("bytes_written", func() int64 { return d.stats.BytesWritten })
	s.Func("busy_ms", func() float64 { return d.stats.Busy.Millis() })
	s.Int("queue_depth", func() int64 { return int64(d.queued) })
	s.Int("queue_max", func() int64 { return int64(d.stats.QueueMax) })
	for i := 0; i < qos.NumLanes; i++ {
		i := i
		ls := s.Sub(fmt.Sprintf("lane/%d", i))
		ls.Int("queue_depth", func() int64 { return int64(d.stats.LaneQueued[i]) })
		ls.Int("queue_max", func() int64 { return int64(d.stats.LaneQueueMax[i]) })
	}
	s.Int("failed", func() int64 {
		if d.failed {
			return 1
		}
		return 0
	})
}

// Failed reports whether the drive has failed.
func (d *Disk) Failed() bool { return d.failed }

// Fail marks the drive failed: queued and future I/O returns ErrFailed and
// stored data becomes unreadable, as with a dead spindle.
func (d *Disk) Fail() {
	d.failed = true
	d.store = make(map[int64][]byte)
}

// Replace swaps in a fresh (empty) drive of the same spec, as a technician
// would before a RAID rebuild.
func (d *Disk) Replace() {
	d.failed = false
	d.store = make(map[int64][]byte)
	d.lastEnd = -1
}

func (d *Disk) check(lba int64, count int) error {
	if d.failed {
		return ErrFailed
	}
	if lba < 0 || count < 0 || lba+int64(count) > d.spec.Blocks {
		return fmt.Errorf("%w: lba=%d count=%d cap=%d", ErrOutOfRange, lba, count, d.spec.Blocks)
	}
	return nil
}

// serviceTime returns the mechanical delay for an access of count blocks
// starting at lba: a seek+rotation unless it continues the previous access,
// plus media transfer time.
func (d *Disk) serviceTime(lba int64, count int) sim.Duration {
	var t sim.Duration
	if lba != d.lastEnd {
		t += d.spec.Seek + d.spec.Rotation
	}
	bits := int64(count) * int64(d.spec.BlockSize) * 8
	if d.spec.TransferBps > 0 {
		t += sim.Duration(float64(bits) / float64(d.spec.TransferBps) * float64(sim.Second))
	}
	return t
}

// acquire waits for the drive, competing in the caller's QoS lane when a
// scheduler is installed (FIFO gate otherwise). The lane gauges update
// unconditionally — they are pure counters, moving no simulated events —
// and the returned lane is handed back to release.
func (d *Disk) acquire(p *sim.Proc, cost int) int {
	lane := qos.LaneOf(p)
	d.queued++
	if d.queued > d.stats.QueueMax {
		d.stats.QueueMax = d.queued
	}
	d.stats.LaneQueued[lane]++
	if d.stats.LaneQueued[lane] > d.stats.LaneQueueMax[lane] {
		d.stats.LaneQueueMax[lane] = d.stats.LaneQueued[lane]
	}
	if d.sched != nil {
		d.sched.Acquire(p, lane, float64(cost))
	} else {
		d.gate.Acquire(p, 1)
	}
	return lane
}

func (d *Disk) release(lane int) {
	d.queued--
	d.stats.LaneQueued[lane]--
	if d.sched != nil {
		d.sched.Release()
	} else {
		d.gate.Release(1)
	}
}

// Read returns count blocks starting at lba. Unwritten blocks read as
// zeros. The calling process blocks for queueing plus service time.
func (d *Disk) Read(p *sim.Proc, lba int64, count int) ([]byte, error) {
	qs := trace.FromProc(p).Child("disk-queue", trace.Queue, d.id)
	lane := d.acquire(p, count)
	qs.End()
	defer d.release(lane)
	if err := d.check(lba, count); err != nil {
		return nil, err
	}
	st := d.serviceTime(lba, count)
	sp := trace.FromProc(p).Child("disk-read", trace.Disk, d.id)
	p.Sleep(st)
	sp.End()
	if d.failed { // failed while waiting
		return nil, ErrFailed
	}
	d.lastEnd = lba + int64(count)
	d.stats.Reads++
	d.stats.BytesRead += int64(count) * int64(d.spec.BlockSize)
	d.stats.Busy += st
	buf := make([]byte, count*d.spec.BlockSize)
	for i := 0; i < count; i++ {
		if blk, ok := d.store[lba+int64(i)]; ok {
			copy(buf[i*d.spec.BlockSize:], blk)
		}
	}
	return buf, nil
}

// Write stores data (a whole number of blocks) starting at lba.
func (d *Disk) Write(p *sim.Proc, lba int64, data []byte) error {
	if len(data)%d.spec.BlockSize != 0 {
		return fmt.Errorf("disk %s: write of %d bytes is not block-aligned", d.id, len(data))
	}
	count := len(data) / d.spec.BlockSize
	qs := trace.FromProc(p).Child("disk-queue", trace.Queue, d.id)
	lane := d.acquire(p, count)
	qs.End()
	defer d.release(lane)
	if err := d.check(lba, count); err != nil {
		return err
	}
	st := d.serviceTime(lba, count)
	sp := trace.FromProc(p).Child("disk-write", trace.Disk, d.id)
	p.Sleep(st)
	sp.End()
	if d.failed {
		return ErrFailed
	}
	d.lastEnd = lba + int64(count)
	d.stats.Writes++
	d.stats.BytesWritten += int64(len(data))
	d.stats.Busy += st
	for i := 0; i < count; i++ {
		src := data[i*d.spec.BlockSize : (i+1)*d.spec.BlockSize]
		// The store is sparse: all-zero blocks are represented by absence
		// (unwritten blocks already read as zeros), which keeps full-disk
		// operations like rebuilds from materializing empty regions.
		if allZero(src) {
			delete(d.store, lba+int64(i))
			continue
		}
		blk := make([]byte, d.spec.BlockSize)
		copy(blk, src)
		d.store[lba+int64(i)] = blk
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Peek returns the stored content of one block without any simulated delay
// or queueing. It is a test/verification helper, not a data path.
func (d *Disk) Peek(lba int64) []byte {
	blk, ok := d.store[lba]
	if !ok {
		return make([]byte, d.spec.BlockSize)
	}
	out := make([]byte, len(blk))
	copy(out, blk)
	return out
}

// AllocatedBlocks reports how many blocks hold written data.
func (d *Disk) AllocatedBlocks() int64 { return int64(len(d.store)) }

// Farm is a named collection of drives — the paper's "disk farm".
type Farm struct {
	Disks []*Disk
}

// NewFarm builds n identical drives named prefix0..prefix(n-1).
func NewFarm(k *sim.Kernel, prefix string, n int, spec Spec) *Farm {
	f := &Farm{}
	for i := 0; i < n; i++ {
		f.Disks = append(f.Disks, New(k, fmt.Sprintf("%s%d", prefix, i), spec))
	}
	return f
}

// TotalBytes returns the aggregate raw capacity.
func (f *Farm) TotalBytes() int64 {
	var total int64
	for _, d := range f.Disks {
		total += d.Spec().Bytes()
	}
	return total
}

// Healthy returns the drives not currently failed.
func (f *Farm) Healthy() []*Disk {
	var out []*Disk
	for _, d := range f.Disks {
		if !d.Failed() {
			out = append(out, d)
		}
	}
	return out
}

// CorruptBlock silently overwrites one block's stored content without any
// simulated delay — a fault-injection hook for scrub/parity-verification
// tests (it models latent media corruption, not a normal write).
func (d *Disk) CorruptBlock(lba int64, data []byte) {
	if lba < 0 || lba >= d.spec.Blocks {
		return
	}
	blk := make([]byte, d.spec.BlockSize)
	copy(blk, data)
	d.store[lba] = blk
}
