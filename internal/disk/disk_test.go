package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func testSpec() Spec {
	return Spec{
		BlockSize:   4096,
		Blocks:      1024,
		Seek:        5 * sim.Millisecond,
		Rotation:    3 * sim.Millisecond,
		TransferBps: 400_000_000,
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	var buf []byte
	k.Go("t", func(p *sim.Proc) {
		var err error
		buf, err = d.Read(p, 10, 2)
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	if len(buf) != 8192 {
		t.Fatalf("len = %d, want 8192", len(buf))
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	data := bytes.Repeat([]byte{0xAB}, 4096*3)
	var got []byte
	k.Go("t", func(p *sim.Proc) {
		if err := d.Write(p, 5, data); err != nil {
			t.Errorf("write: %v", err)
		}
		var err error
		got, err = d.Read(p, 5, 3)
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	k.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("read data != written data")
	}
}

func TestWriteDoesNotAliasCaller(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	data := make([]byte, 4096)
	data[0] = 1
	k.Go("t", func(p *sim.Proc) {
		d.Write(p, 0, data)
		data[0] = 99 // mutate caller's buffer after write
		got, _ := d.Read(p, 0, 1)
		if got[0] != 1 {
			t.Error("disk store aliases caller buffer")
		}
	})
	k.Run()
}

func TestSequentialSkipsSeek(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	var first, second sim.Duration
	k.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		d.Read(p, 0, 1)
		first = p.Now().Sub(t0)
		t1 := p.Now()
		d.Read(p, 1, 1) // continues at LBA 1: no seek
		second = p.Now().Sub(t1)
	})
	k.Run()
	seekRot := 8 * sim.Millisecond
	if first <= seekRot {
		t.Fatalf("first read %v should include seek+rotation %v", first, seekRot)
	}
	if second >= first {
		t.Fatalf("sequential read %v not faster than seeking read %v", second, first)
	}
	if diff := first - second; diff != seekRot {
		t.Fatalf("seek saving = %v, want %v", diff, seekRot)
	}
}

func TestRandomAccessPaysSeek(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	var elapsed sim.Duration
	k.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		d.Read(p, 100, 1)
		d.Read(p, 5, 1) // jump back: seek again
		elapsed = p.Now().Sub(t0)
	})
	k.Run()
	if elapsed < 16*sim.Millisecond {
		t.Fatalf("two random reads took %v, want ≥ 2×(seek+rot) = 16ms", elapsed)
	}
}

func TestFIFOQueueing(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("t", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * sim.Microsecond)
			d.Read(p, int64(i*100), 1)
			order = append(order, i)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
	if d.Stats().QueueMax < 2 {
		t.Fatalf("QueueMax = %d, want ≥2", d.Stats().QueueMax)
	}
}

func TestFailedDiskErrors(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	d.Fail()
	k.Go("t", func(p *sim.Proc) {
		if _, err := d.Read(p, 0, 1); !errors.Is(err, ErrFailed) {
			t.Errorf("read err = %v, want ErrFailed", err)
		}
		if err := d.Write(p, 0, make([]byte, 4096)); !errors.Is(err, ErrFailed) {
			t.Errorf("write err = %v, want ErrFailed", err)
		}
	})
	k.Run()
}

func TestFailLosesData(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	k.Go("t", func(p *sim.Proc) {
		d.Write(p, 0, bytes.Repeat([]byte{1}, 4096))
		d.Fail()
		d.Replace()
		got, err := d.Read(p, 0, 1)
		if err != nil {
			t.Errorf("read after replace: %v", err)
		}
		if got[0] != 0 {
			t.Error("replacement drive has old data")
		}
	})
	k.Run()
}

func TestOutOfRange(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	k.Go("t", func(p *sim.Proc) {
		if _, err := d.Read(p, 1020, 10); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("err = %v, want ErrOutOfRange", err)
		}
		if _, err := d.Read(p, -1, 1); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative lba err = %v, want ErrOutOfRange", err)
		}
	})
	k.Run()
}

func TestUnalignedWriteRejected(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	k.Go("t", func(p *sim.Proc) {
		if err := d.Write(p, 0, make([]byte, 100)); err == nil {
			t.Error("unaligned write accepted")
		}
	})
	k.Run()
}

func TestTransferRateMatchesSpec(t *testing.T) {
	k := sim.NewKernel(1)
	spec := testSpec()
	d := New(k, "d0", spec)
	// Sequential streaming: after the first seek, throughput ≈ media rate.
	const blocks = 256
	var elapsed sim.Duration
	k.Go("t", func(p *sim.Proc) {
		t0 := p.Now()
		d.Read(p, 0, blocks)
		elapsed = p.Now().Sub(t0)
	})
	k.Run()
	bits := float64(blocks * 4096 * 8)
	rate := bits / (elapsed - 8*sim.Millisecond).Seconds()
	if rate < 399e6 || rate > 401e6 {
		t.Fatalf("media rate = %.0f bps, want ~400e6", rate)
	}
}

func TestStatsAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	k.Go("t", func(p *sim.Proc) {
		d.Write(p, 0, make([]byte, 4096*2))
		d.Read(p, 0, 2)
	})
	k.Run()
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("ops = %d/%d, want 1/1", st.Reads, st.Writes)
	}
	if st.BytesRead != 8192 || st.BytesWritten != 8192 {
		t.Fatalf("bytes = %d/%d, want 8192/8192", st.BytesRead, st.BytesWritten)
	}
	if st.Busy <= 0 {
		t.Fatal("busy time not recorded")
	}
}

// Property: any write/read round trip returns exactly the written bytes.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, lbaRaw uint16, blocksRaw uint8) bool {
		spec := testSpec()
		count := int(blocksRaw)%4 + 1
		lba := int64(lbaRaw) % (spec.Blocks - int64(count))
		k := sim.NewKernel(seed)
		d := New(k, "d", spec)
		data := make([]byte, count*spec.BlockSize)
		k.Rand().Read(data)
		okRes := false
		k.Go("t", func(p *sim.Proc) {
			if err := d.Write(p, lba, data); err != nil {
				return
			}
			got, err := d.Read(p, lba, count)
			okRes = err == nil && bytes.Equal(got, data)
		})
		k.Run()
		return okRes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFarm(t *testing.T) {
	k := sim.NewKernel(1)
	f := NewFarm(k, "disk", 8, testSpec())
	if len(f.Disks) != 8 {
		t.Fatalf("farm size = %d", len(f.Disks))
	}
	if f.Disks[3].ID() != "disk3" {
		t.Fatalf("id = %q", f.Disks[3].ID())
	}
	if f.TotalBytes() != 8*1024*4096 {
		t.Fatalf("total = %d", f.TotalBytes())
	}
	f.Disks[2].Fail()
	if got := len(f.Healthy()); got != 7 {
		t.Fatalf("healthy = %d, want 7", got)
	}
}

func TestParallelDisksOverlap(t *testing.T) {
	// Two disks serving one request each should finish in ~one service
	// time, not two — the parallelism the paper's architecture exploits.
	k := sim.NewKernel(1)
	f := NewFarm(k, "d", 2, testSpec())
	g := sim.NewGroup(k)
	var finish sim.Time
	for i := 0; i < 2; i++ {
		i := i
		g.Add(1)
		k.Go("t", func(p *sim.Proc) {
			defer g.Done()
			f.Disks[i].Read(p, 0, 64)
		})
	}
	k.Go("waiter", func(p *sim.Proc) {
		g.Wait(p)
		finish = p.Now()
	})
	k.Run()
	single := 8*sim.Millisecond + sim.Duration(float64(64*4096*8)/400e6*float64(sim.Second))
	if finish.Sub(0) > single+sim.Millisecond {
		t.Fatalf("two parallel disks took %v, want ~%v", finish.Sub(0), single)
	}
}

// TestLaneGauges: the per-lane queue gauges track tagged processes through
// acquire/release — live depth returns to zero, high-water marks record
// the contention peak per lane, telemetry exports both.
func TestLaneGauges(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	reg := telemetry.NewRegistry()
	d.RegisterTelemetry(reg.Sub("disk/d0"))
	// Three lane-2 readers and two background readers pile up behind the
	// single spindle.
	for i := 0; i < 3; i++ {
		k.Go("fg", func(p *sim.Proc) {
			qos.SetCtx(p, qos.Ctx{Tenant: "t", Lane: 2})
			d.Read(p, 0, 1)
		})
	}
	for i := 0; i < 2; i++ {
		k.Go("bg", func(p *sim.Proc) {
			qos.TagBackground(p)
			d.Read(p, 500, 1)
		})
	}
	k.Run()
	st := d.Stats()
	if st.LaneQueueMax[2] != 3 {
		t.Errorf("lane 2 high-water = %d, want 3", st.LaneQueueMax[2])
	}
	if st.LaneQueueMax[qos.LaneBackground] != 2 {
		t.Errorf("background high-water = %d, want 2", st.LaneQueueMax[qos.LaneBackground])
	}
	for lane, q := range st.LaneQueued {
		if q != 0 {
			t.Errorf("lane %d live depth = %d after drain, want 0", lane, q)
		}
	}
	// Untouched lanes never registered occupancy.
	if st.LaneQueueMax[0] != 0 || st.LaneQueueMax[1] != 0 || st.LaneQueueMax[3] != 0 {
		t.Errorf("idle lanes recorded occupancy: %v", st.LaneQueueMax)
	}
	// And the registry mirrors the same numbers.
	if v, ok := reg.Value("disk/d0/lane/2/queue_max"); !ok || v != 3 {
		t.Errorf("telemetry lane/2/queue_max = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := reg.Value("disk/d0/lane/4/queue_depth"); !ok || v != 0 {
		t.Errorf("telemetry lane/4/queue_depth = %v (ok=%v), want 0", v, ok)
	}
}

// TestLaneGaugesWithScheduler: same accounting when a QoS FairQueue
// replaces the FIFO gate.
func TestLaneGaugesWithScheduler(t *testing.T) {
	k := sim.NewKernel(1)
	d := New(k, "d0", testSpec())
	m := qos.NewManager(k, qos.Config{})
	d.SetScheduler(m.NewFairQueue(1))
	m.SetEnabled(true)
	for i := 0; i < 4; i++ {
		lane := i % 2 // lanes 0 and 1
		k.Go("op", func(p *sim.Proc) {
			qos.SetCtx(p, qos.Ctx{Lane: lane})
			d.Read(p, int64(lane)*100, 1)
		})
	}
	k.Run()
	st := d.Stats()
	if st.LaneQueueMax[0] != 2 || st.LaneQueueMax[1] != 2 {
		t.Errorf("lane high-water = %v, want 2/2 on lanes 0,1", st.LaneQueueMax)
	}
	if st.Reads != 4 {
		t.Errorf("reads = %d, want 4", st.Reads)
	}
}
