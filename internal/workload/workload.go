// Package workload generates the I/O patterns the paper's evaluation
// needs: sequential streams that feed "heavy iron", uniform random access
// from clustered clients, and the Zipf-skewed "hot data" pattern whose hot
// spots gate traditional controllers (§2). Clients are closed-loop: each
// issues its next operation when the previous completes, so measured
// throughput reflects system capacity, not an open-loop overload.
package workload

import (
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Op is one generated operation.
type Op struct {
	LBA    int64
	Blocks int
	Write  bool
}

// Pattern produces a stream of operations.
type Pattern interface {
	Next(rng *rand.Rand) Op
}

// Sequential streams forward from Start, wrapping at Limit.
type Sequential struct {
	Start  int64
	Limit  int64
	Blocks int
	cursor int64
}

// Next returns the next sequential run.
func (s *Sequential) Next(rng *rand.Rand) Op {
	if s.Blocks <= 0 {
		s.Blocks = 16
	}
	lba := s.Start + s.cursor
	if lba+int64(s.Blocks) > s.Limit {
		s.cursor = 0
		lba = s.Start
	}
	s.cursor += int64(s.Blocks)
	return Op{LBA: lba, Blocks: s.Blocks}
}

// Uniform picks block addresses uniformly over [0, Range).
type Uniform struct {
	Range     int64
	Blocks    int
	WriteFrac float64
}

// Next returns a uniformly random operation.
func (u Uniform) Next(rng *rand.Rand) Op {
	blocks := u.Blocks
	if blocks <= 0 {
		blocks = 1
	}
	lba := rng.Int63n(max64(u.Range-int64(blocks), 1))
	return Op{LBA: lba, Blocks: blocks, Write: rng.Float64() < u.WriteFrac}
}

// Zipf skews accesses so a small set of blocks is hit extremely hard —
// the paper's "hot data" (§2). S > 1 controls the skew.
//
// Prefer NewZipf: a literal Zipf binds its value generator to whatever rng
// the *first* Next call happens to pass, so the generator's stream state
// silently depends on who touched the pattern first and never re-binds if
// a different rng is passed later.
type Zipf struct {
	Range     int64
	S         float64
	Blocks    int
	WriteFrac float64
	z         *rand.Zipf
}

// NewZipf builds a Zipf pattern bound to rng from construction, so the
// op stream is fully determined by rng's seed starting at op 0.
func NewZipf(rng *rand.Rand, rangeBlocks int64, s float64, blocks int, writeFrac float64) *Zipf {
	z := &Zipf{Range: rangeBlocks, S: s, Blocks: blocks, WriteFrac: writeFrac}
	z.bind(rng)
	return z
}

// bind attaches the Zipf value generator to rng.
func (z *Zipf) bind(rng *rand.Rand) {
	s := z.S
	if s <= 1 {
		s = 1.1
	}
	z.z = rand.NewZipf(rng, s, 1, uint64(max64(z.Range-1, 1)))
}

// Next returns a Zipf-distributed operation.
func (z *Zipf) Next(rng *rand.Rand) Op {
	if z.z == nil {
		z.bind(rng) // literal construction: bind on first use (see type doc)
	}
	blocks := z.Blocks
	if blocks <= 0 {
		blocks = 1
	}
	return Op{LBA: int64(z.z.Uint64()), Blocks: blocks, Write: rng.Float64() < z.WriteFrac}
}

// ShiftingZipf is Zipf whose hot set rotates: every RotateEvery ops the
// whole rank→block mapping shifts by Stride, so yesterday's hottest
// blocks go cold and a fresh set heats up. This is the adversarial case
// for home migration — by the time the balancer has observed, planned,
// and moved a hot home, the heat has already moved on — and the friendly
// case for a cache tier that fills in one miss.
//
// Rotation counts this pattern instance's ops (each client owns its own
// instance), so phase boundaries land on exact op indices: ops
// [0, RotateEvery) use phase 0, [RotateEvery, 2·RotateEvery) phase 1, …
// Like Zipf, construct with NewShiftingZipf so the value generator binds
// to one rng from op 0.
type ShiftingZipf struct {
	Range     int64
	S         float64
	Blocks    int
	WriteFrac float64
	// RotateEvery is the hot-set lifetime in ops (default 1024).
	RotateEvery int64
	// Stride is the per-phase shift of the rank→block mapping. Pick it
	// co-prime with Range so successive hot sets don't overlap (default
	// a fixed prime).
	Stride int64

	z   *rand.Zipf
	ops int64
}

// NewShiftingZipf builds a ShiftingZipf bound to rng from construction.
func NewShiftingZipf(rng *rand.Rand, rangeBlocks int64, s float64, blocks int, writeFrac float64, rotateEvery, stride int64) *ShiftingZipf {
	z := &ShiftingZipf{Range: rangeBlocks, S: s, Blocks: blocks, WriteFrac: writeFrac,
		RotateEvery: rotateEvery, Stride: stride}
	z.bind(rng)
	return z
}

func (z *ShiftingZipf) bind(rng *rand.Rand) {
	s := z.S
	if s <= 1 {
		s = 1.1
	}
	z.z = rand.NewZipf(rng, s, 1, uint64(max64(z.Range-1, 1)))
}

// Next returns the next operation; the Zipf rank is drawn first, then
// displaced by the current phase's rotation.
func (z *ShiftingZipf) Next(rng *rand.Rand) Op {
	if z.z == nil {
		z.bind(rng) // literal construction: bind on first use (see Zipf doc)
	}
	rotate := z.RotateEvery
	if rotate <= 0 {
		rotate = 1024
	}
	stride := z.Stride
	if stride <= 0 {
		stride = 2999
	}
	phase := z.ops / rotate
	z.ops++
	blocks := z.Blocks
	if blocks <= 0 {
		blocks = 1
	}
	rank := int64(z.z.Uint64())
	lba := (rank + phase*stride) % z.Range
	if lba < 0 {
		lba += z.Range
	}
	return Op{LBA: lba, Blocks: blocks, Write: rng.Float64() < z.WriteFrac}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Target is what a client drives — an adapter over a cluster volume, a
// baseline array volume, or a gateway LUN.
type Target interface {
	BlockSize() int
	Read(p *sim.Proc, lba int64, blocks int) error
	Write(p *sim.Proc, lba int64, blocks int) error
}

// Runner drives a closed-loop client population against a Target.
type Runner struct {
	K        *sim.Kernel
	Clients  int
	Pattern  func(client int) Pattern // per-client pattern factory
	Target   Target
	Duration sim.Duration
	// ThinkTime inserts idle time between a completion and the next
	// issue (0 = saturating clients).
	ThinkTime sim.Duration

	// Results
	Latency *metrics.Histogram
	Bytes   *metrics.Meter
	// Series, when non-nil, receives per-completion byte counts for
	// throughput-over-time rendering.
	Series *metrics.TimeSeries
	Ops    int64
	Errs   int64
}

// Start spawns the client processes. The caller then advances the kernel
// (RunFor/RunUntil); clients stop at the deadline.
func (r *Runner) Start() {
	if r.Latency == nil {
		r.Latency = metrics.NewHistogram()
	}
	if r.Bytes == nil {
		r.Bytes = metrics.NewMeter(r.K.Now())
	}
	deadline := r.K.Now().Add(r.Duration)
	bs := int64(r.Target.BlockSize())
	for c := 0; c < r.Clients; c++ {
		pattern := r.Pattern(c)
		rng := rand.New(rand.NewSource(r.K.Rand().Int63()))
		r.K.Go("client", func(p *sim.Proc) {
			for p.Now() < deadline {
				op := pattern.Next(rng)
				start := p.Now()
				var err error
				if op.Write {
					err = r.Target.Write(p, op.LBA, op.Blocks)
				} else {
					err = r.Target.Read(p, op.LBA, op.Blocks)
				}
				if err != nil {
					r.Errs++
					// Back off briefly rather than hot-looping on a
					// failed component.
					p.Sleep(sim.Millisecond)
					continue
				}
				r.Ops++
				r.Latency.Observe(p.Now().Sub(start))
				r.Bytes.Record(p.Now(), int64(op.Blocks)*bs)
				if r.Series != nil {
					r.Series.Record(p.Now(), float64(int64(op.Blocks)*bs))
				}
				if r.ThinkTime > 0 {
					p.Sleep(r.ThinkTime)
				}
			}
		})
	}
}

// Run starts the clients and advances the kernel through the full
// duration, then closes the throughput meter.
func (r *Runner) Run() {
	r.Start()
	r.K.RunFor(r.Duration)
	r.Bytes.CloseAt(r.K.Now())
}
