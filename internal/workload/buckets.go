package workload

import "math/rand"

// BucketOp is one generated object-gateway operation: a user touches one
// object inside one bucket. Indices are into the populations the caller
// registered with the gateway (users and buckets are cheap to enumerate;
// the mapping to tokens/bucket names stays with the experiment).
type BucketOp struct {
	User   int
	Bucket int
	Obj    int
	Write  bool
}

// BucketZipf is the multi-tenant object workload: bucket popularity is
// Zipf-skewed (a handful of buckets take most of the traffic — the same
// "hot data" shape as the block patterns, §2), the object within a bucket
// is uniform, and the acting user is uniform over a large population.
// The bucket ranks ride on ShiftingZipf, so the hot-bucket set can rotate
// mid-run exactly like the block generator's hot set; pass a RotateEvery
// beyond the run's op budget for static popularity.
//
// Construct with NewBucketZipf: like the block patterns, the Zipf value
// generator binds to one rng at construction so the op stream is fully
// determined by that rng's seed from op 0.
type BucketZipf struct {
	// Users is the simulated user population size (draws are uniform).
	Users int
	// ObjectsPerBucket bounds the per-bucket object index (uniform).
	ObjectsPerBucket int
	// WriteFrac is the probability an op is a put instead of a get.
	WriteFrac float64

	ranks *ShiftingZipf
}

// NewBucketZipf builds a bucket-popularity generator over buckets with
// Zipf skew s, bound to rng from construction. rotateEvery/stride shift
// the hot-bucket set like NewShiftingZipf (0 = the block defaults).
func NewBucketZipf(rng *rand.Rand, users, buckets, objectsPerBucket int, s, writeFrac float64, rotateEvery, stride int64) *BucketZipf {
	if buckets < 1 {
		buckets = 1
	}
	return &BucketZipf{
		Users:            users,
		ObjectsPerBucket: objectsPerBucket,
		WriteFrac:        writeFrac,
		// WriteFrac 0 on the inner pattern: the write draw happens here
		// (after the user/object draws) so the rng consumption order is
		// part of this type's determinism contract, not the inner one's.
		ranks: NewShiftingZipf(rng, int64(buckets), s, 1, 0, rotateEvery, stride),
	}
}

// Buckets returns the bucket population size.
func (b *BucketZipf) Buckets() int { return int(b.ranks.Range) }

// Next draws one operation. The rng consumption order is fixed: bucket
// rank (from the bound generator), inner write draw, user, object, write.
func (b *BucketZipf) Next(rng *rand.Rand) BucketOp {
	op := b.ranks.Next(rng)
	users := b.Users
	if users < 1 {
		users = 1
	}
	objs := b.ObjectsPerBucket
	if objs < 1 {
		objs = 1
	}
	return BucketOp{
		User:   rng.Intn(users),
		Bucket: int(op.LBA),
		Obj:    rng.Intn(objs),
		Write:  rng.Float64() < b.WriteFrac,
	}
}
