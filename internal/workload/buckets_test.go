package workload

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBucketZipfSameSeedDeterministic(t *testing.T) {
	gen := func() []BucketOp {
		rng := rand.New(rand.NewSource(42))
		bz := NewBucketZipf(rng, 1_000_000, 512, 64, 1.2, 0.1, 4096, 257)
		ops := make([]BucketOp, 10_000)
		for i := range ops {
			ops[i] = bz.Next(rng)
		}
		return ops
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same-seed streams diverge at op %d: %+v vs %+v", i, a[i], b[i])
			}
		}
		t.Fatalf("same-seed streams differ")
	}
}

func TestBucketZipfTopKSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const buckets = 512
	bz := NewBucketZipf(rng, 1_000_000, buckets, 64, 1.2, 0.1, 1<<62, 0)
	const n = 50_000
	counts := make([]int, buckets)
	writes := 0
	for i := 0; i < n; i++ {
		op := bz.Next(rng)
		if op.Bucket < 0 || op.Bucket >= buckets {
			t.Fatalf("bucket %d out of range", op.Bucket)
		}
		if op.User < 0 || op.User >= 1_000_000 {
			t.Fatalf("user %d out of range", op.User)
		}
		if op.Obj < 0 || op.Obj >= 64 {
			t.Fatalf("obj %d out of range", op.Obj)
		}
		counts[op.Bucket]++
		if op.Write {
			writes++
		}
	}
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top1 := float64(sorted[0]) / n
	top10 := 0
	for _, c := range sorted[:10] {
		top10 += c
	}
	// Zipf s=1.2 over 512 buckets: the head dominates. Loose bounds so
	// the test checks the shape, not the exact constants.
	if top1 < 0.10 {
		t.Fatalf("hottest bucket carries %.1f%% of ops, want >= 10%%", top1*100)
	}
	if frac := float64(top10) / n; frac < 0.40 {
		t.Fatalf("top-10 buckets carry %.1f%% of ops, want >= 40%%", frac*100)
	}
	// And the tail is not empty: skew, not a constant function.
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < buckets/4 {
		t.Fatalf("only %d/%d buckets ever touched", nonzero, buckets)
	}
	if wf := float64(writes) / n; wf < 0.05 || wf > 0.15 {
		t.Fatalf("write fraction %.3f, want ~0.1", wf)
	}
}

func TestBucketZipfRotationMovesHotSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const buckets = 256
	const rotate = 8192
	bz := NewBucketZipf(rng, 1000, buckets, 16, 1.3, 0, rotate, 61)
	hottest := func(n int) int {
		counts := make(map[int]int)
		for i := 0; i < n; i++ {
			counts[bz.Next(rng).Bucket]++
		}
		best, bestN := -1, -1
		for b, c := range counts {
			if c > bestN || (c == bestN && b < best) {
				best, bestN = b, c
			}
		}
		return best
	}
	h0 := hottest(rotate) // phase 0
	h1 := hottest(rotate) // phase 1: displaced by stride 61
	if h0 == h1 {
		t.Fatalf("hot bucket did not move across rotation (still %d)", h0)
	}
	if want := (h0 + 61) % buckets; h1 != want {
		t.Fatalf("hot bucket moved %d -> %d, want %d (stride displacement)", h0, h1, want)
	}
}
