package workload

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// fakeTarget counts operations with a fixed service time.
type fakeTarget struct {
	bs      int
	svc     sim.Duration
	reads   int64
	writes  int64
	maxLBA  int64
	failAll bool
}

func (f *fakeTarget) BlockSize() int { return f.bs }

func (f *fakeTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	if f.failAll {
		return errTest
	}
	if lba > f.maxLBA {
		f.maxLBA = lba
	}
	p.Sleep(f.svc)
	f.reads++
	return nil
}

func (f *fakeTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	if f.failAll {
		return errTest
	}
	p.Sleep(f.svc)
	f.writes++
	return nil
}

var errTest = errString("test failure")

type errString string

func (e errString) Error() string { return string(e) }

func TestSequentialWraps(t *testing.T) {
	s := &Sequential{Start: 0, Limit: 64, Blocks: 16}
	rng := rand.New(rand.NewSource(1))
	var lbas []int64
	for i := 0; i < 6; i++ {
		lbas = append(lbas, s.Next(rng).LBA)
	}
	want := []int64{0, 16, 32, 48, 0, 16}
	for i := range want {
		if lbas[i] != want[i] {
			t.Fatalf("lbas = %v, want %v", lbas, want)
		}
	}
}

func TestUniformInRange(t *testing.T) {
	u := Uniform{Range: 1000, Blocks: 4, WriteFrac: 0.3}
	rng := rand.New(rand.NewSource(2))
	writes := 0
	for i := 0; i < 2000; i++ {
		op := u.Next(rng)
		if op.LBA < 0 || op.LBA+int64(op.Blocks) > 1000 {
			t.Fatalf("op out of range: %+v", op)
		}
		if op.Write {
			writes++
		}
	}
	if writes < 450 || writes > 750 {
		t.Fatalf("writes = %d/2000, want ~600 (30%%)", writes)
	}
}

func TestZipfIsSkewed(t *testing.T) {
	z := &Zipf{Range: 10000, S: 1.2}
	rng := rand.New(rand.NewSource(3))
	counts := make(map[int64]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[z.Next(rng).LBA]++
	}
	// The hottest block should carry far more than a uniform share.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < n/100 {
		t.Fatalf("hottest block only %d/%d accesses; not skewed", maxC, n)
	}
}

// Property: Zipf never exceeds its range.
func TestZipfRangeProperty(t *testing.T) {
	f := func(seed int64, rangeRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int64(rangeRaw) + 2
		z := &Zipf{Range: r, S: 1.5}
		for i := 0; i < 50; i++ {
			if op := z.Next(rng); op.LBA < 0 || op.LBA >= r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerClosedLoop(t *testing.T) {
	k := sim.NewKernel(1)
	target := &fakeTarget{bs: 512, svc: sim.Millisecond}
	r := &Runner{
		K:        k,
		Clients:  4,
		Pattern:  func(int) Pattern { return Uniform{Range: 1000, Blocks: 1} },
		Target:   target,
		Duration: sim.Second,
	}
	r.Run()
	// 4 closed-loop clients at 1 ms service ≈ 4000 ops per second.
	if r.Ops < 3800 || r.Ops > 4100 {
		t.Fatalf("ops = %d, want ~4000", r.Ops)
	}
	if r.Latency.Count() != r.Ops {
		t.Fatalf("latency samples %d != ops %d", r.Latency.Count(), r.Ops)
	}
	if got := r.Latency.Mean(); got < sim.Millisecond || got > 2*sim.Millisecond {
		t.Fatalf("mean latency %v, want ~1ms", got)
	}
	if r.Bytes.Total() != r.Ops*512 {
		t.Fatalf("bytes = %d", r.Bytes.Total())
	}
}

func TestRunnerThinkTime(t *testing.T) {
	k := sim.NewKernel(1)
	target := &fakeTarget{bs: 512, svc: sim.Millisecond}
	r := &Runner{
		K:         k,
		Clients:   1,
		Pattern:   func(int) Pattern { return Uniform{Range: 100, Blocks: 1} },
		Target:    target,
		Duration:  sim.Second,
		ThinkTime: 9 * sim.Millisecond,
	}
	r.Run()
	// 1 ms service + 9 ms think = 100 ops/s.
	if r.Ops < 95 || r.Ops > 105 {
		t.Fatalf("ops = %d, want ~100", r.Ops)
	}
}

func TestRunnerCountsErrors(t *testing.T) {
	k := sim.NewKernel(1)
	target := &fakeTarget{bs: 512, svc: sim.Millisecond, failAll: true}
	r := &Runner{
		K:        k,
		Clients:  2,
		Pattern:  func(int) Pattern { return Uniform{Range: 100, Blocks: 1} },
		Target:   target,
		Duration: 100 * sim.Millisecond,
	}
	r.Run()
	if r.Errs == 0 || r.Ops != 0 {
		t.Fatalf("errs=%d ops=%d, want all errors", r.Errs, r.Ops)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	runOnce := func() int64 {
		k := sim.NewKernel(42)
		target := &fakeTarget{bs: 512, svc: 500 * sim.Microsecond}
		r := &Runner{
			K:        k,
			Clients:  3,
			Pattern:  func(int) Pattern { return &Zipf{Range: 500, S: 1.1, WriteFrac: 0.2} },
			Target:   target,
			Duration: 200 * sim.Millisecond,
		}
		r.Run()
		return r.Ops
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic runner: %d vs %d", a, b)
	}
}

// TestShiftingZipfSameSeedIdentical: same seed → byte-identical op
// stream, including the rotation schedule (it counts the instance's own
// ops, not any shared clock).
func TestShiftingZipfSameSeedIdentical(t *testing.T) {
	const seed, ops = 42, 5000
	mk := func() []Op {
		rng := rand.New(rand.NewSource(seed))
		z := NewShiftingZipf(rng, 8192, 1.1, 1, 0.2, 512, 2999)
		out := make([]Op, ops)
		for i := range out {
			out[i] = z.Next(rng)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestShiftingZipfRotationBoundaries: the phase displacement changes at
// exactly op RotateEvery, 2·RotateEvery, … — never one op early or late.
// Verified by replaying the identical rank stream through an unshifted
// Zipf twin and checking lba == (rank + phase·stride) mod range with the
// phase derived from the op index alone.
func TestShiftingZipfRotationBoundaries(t *testing.T) {
	const (
		seed   = 7
		rng64  = 4096
		rotate = 256
		stride = 997
		ops    = 5 * rotate
	)
	rngA := rand.New(rand.NewSource(seed))
	shifting := NewShiftingZipf(rngA, rng64, 1.2, 1, 0, rotate, stride)
	rngB := rand.New(rand.NewSource(seed))
	plain := NewZipf(rngB, rng64, 1.2, 1, 0)
	for i := 0; i < ops; i++ {
		got := shifting.Next(rngA).LBA
		rank := plain.Next(rngB).LBA
		phase := int64(i / rotate)
		want := (rank + phase*stride) % rng64
		if got != want {
			t.Fatalf("op %d (phase %d): lba=%d, want (rank %d + %d*%d) mod %d = %d",
				i, phase, got, rank, phase, stride, rng64, want)
		}
	}
}

// TestShiftingZipfHotSetMoves: within one phase the top-k blocks carry a
// Zipf-sized share of the mass, and consecutive phases' top-k sets are
// (nearly) disjoint — the whole point of the rotation.
func TestShiftingZipfHotSetMoves(t *testing.T) {
	const (
		rotate = 4096
		stride = 2999
		rng64  = 1 << 14
		topK   = 8
	)
	rng := rand.New(rand.NewSource(11))
	z := NewShiftingZipf(rng, rng64, 1.2, 1, 0, rotate, stride)
	topSet := func() (map[int64]bool, float64) {
		counts := make(map[int64]int)
		for i := 0; i < rotate; i++ {
			counts[z.Next(rng).LBA]++
		}
		type kc struct {
			lba int64
			n   int
		}
		ranked := make([]kc, 0, len(counts))
		for l, n := range counts {
			ranked = append(ranked, kc{l, n})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].n != ranked[j].n {
				return ranked[i].n > ranked[j].n
			}
			return ranked[i].lba < ranked[j].lba
		})
		top := make(map[int64]bool)
		mass := 0
		for i := 0; i < topK && i < len(ranked); i++ {
			top[ranked[i].lba] = true
			mass += ranked[i].n
		}
		return top, float64(mass) / rotate
	}
	top0, mass0 := topSet()
	top1, mass1 := topSet()
	// Zipf s=1.2: the top-8 of 16k blocks must dominate the phase.
	if mass0 < 0.25 || mass1 < 0.25 {
		t.Fatalf("top-%d mass %.2f/%.2f, want ≥0.25 each phase", topK, mass0, mass1)
	}
	overlap := 0
	for l := range top1 {
		if top0[l] {
			overlap++
		}
	}
	if overlap > topK/2 {
		t.Fatalf("phase 0 and 1 top-%d sets overlap in %d blocks; hot set did not move", topK, overlap)
	}
}

func TestMeterIntegration(t *testing.T) {
	k := sim.NewKernel(1)
	target := &fakeTarget{bs: 4096, svc: sim.Millisecond}
	m := metrics.NewMeter(0)
	r := &Runner{
		K:        k,
		Clients:  1,
		Pattern:  func(int) Pattern { return &Sequential{Limit: 1 << 20, Blocks: 8} },
		Target:   target,
		Duration: sim.Second,
		Bytes:    m,
	}
	r.Run()
	if m.MBps() <= 0 {
		t.Fatal("meter recorded nothing")
	}
}

// TestZipfSameSeedIdentical is the regression test for the lazy-bind bug:
// a Zipf literal used to attach its value generator to whichever rng the
// first Next call happened to pass, so two "same seed" runs could diverge
// from op 0 if construction order differed. NewZipf binds at construction;
// two generators built from equally-seeded rngs must emit byte-identical
// op streams from the very first draw.
func TestZipfSameSeedIdentical(t *testing.T) {
	const seed, ops = 42, 2000
	mk := func() []Op {
		rng := rand.New(rand.NewSource(seed))
		z := NewZipf(rng, 8192, 1.1, 4, 0.3)
		out := make([]Op, ops)
		for i := range out {
			out[i] = z.Next(rng)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The stream must also be insensitive to *when* the generator is built
	// relative to other draws on a different rng — the constructor, not the
	// first Next caller, owns the binding.
	rng1 := rand.New(rand.NewSource(seed))
	z1 := NewZipf(rng1, 8192, 1.1, 4, 0)
	rng2 := rand.New(rand.NewSource(seed))
	other := rand.New(rand.NewSource(99))
	other.Uint64() // unrelated traffic before z2 is ever used
	z2 := NewZipf(rng2, 8192, 1.1, 4, 0)
	for i := 0; i < ops; i++ {
		if l1, l2 := z1.Next(rng1).LBA, z2.Next(rng2).LBA; l1 != l2 {
			t.Fatalf("op %d LBA diverged with bystander rng traffic: %d vs %d", i, l1, l2)
		}
	}
}
