// Package security implements §5 of the paper: tenant separation for the
// shared storage pool. It provides token authentication in front of both
// data and control paths, LUN masking, at-rest and in-flight block
// encryption keyed per tenant (so circumvented ACLs or removed disks expose
// nothing, §5.1), selective in-band control lockdown (§5.2), and an audit
// trail — together the "fortified architectural ring".
package security

import (
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Errors returned by authentication and authorization checks.
var (
	ErrBadToken     = errors.New("security: invalid or expired token")
	ErrDenied       = errors.New("security: access denied")
	ErrNoTenant     = errors.New("security: unknown tenant")
	ErrInBandLocked = errors.New("security: in-band control command disabled")
)

// Tenant is one user group sharing the pool.
type Tenant struct {
	ID string
	// key is the tenant's AES-256 data key; it never leaves the
	// fortified ring.
	key []byte
}

// AuditEvent is one entry in the security log.
type AuditEvent struct {
	At     sim.Time
	Tenant string
	Action string
	Target string
	OK     bool
	Detail string
}

// Authority is the control-plane core: tenant registry, token issuing and
// verification, and the audit log. In the paper's deployment it runs on
// redundant management servers inside the secure network (Figure 2).
type Authority struct {
	k       *sim.Kernel
	tenants map[string]*Tenant
	tokens  map[string]tokenInfo
	audit   []AuditEvent
	nextTok uint64
}

type tokenInfo struct {
	tenant  string
	expires sim.Time
}

// NewAuthority returns an empty authority on k.
func NewAuthority(k *sim.Kernel) *Authority {
	return &Authority{
		k:       k,
		tenants: make(map[string]*Tenant),
		tokens:  make(map[string]tokenInfo),
	}
}

// CreateTenant registers a tenant and generates its data key.
func (a *Authority) CreateTenant(id string) (*Tenant, error) {
	if _, exists := a.tenants[id]; exists {
		return nil, fmt.Errorf("security: tenant %q exists", id)
	}
	key := make([]byte, 32)
	a.k.Rand().Read(key)
	t := &Tenant{ID: id, key: key}
	a.tenants[id] = t
	a.log(id, "tenant.create", id, true, "")
	return t, nil
}

// CreateTenants bulk-registers n tenants named prefix0..prefix<n-1> and
// returns one bearer token per tenant, each valid for ttl. It exists for
// IAM-scale populations (the object gateway registers millions of users at
// boot): per-tenant data keys are still drawn from the kernel's seeded rng,
// but the audit log records one summary event for the whole batch instead
// of 2n entries, keeping boot memory linear in the registry — not the log.
func (a *Authority) CreateTenants(prefix string, n int, ttl sim.Duration) ([]string, error) {
	tokens := make([]string, n)
	key := make([]byte, 32)
	raw := make([]byte, 16)
	expires := a.k.Now().Add(ttl)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s%d", prefix, i)
		if _, exists := a.tenants[id]; exists {
			return nil, fmt.Errorf("security: tenant %q exists", id)
		}
		a.k.Rand().Read(key)
		t := &Tenant{ID: id, key: append([]byte(nil), key...)}
		a.tenants[id] = t
		a.k.Rand().Read(raw)
		a.nextTok++
		tok := fmt.Sprintf("%d.%s", a.nextTok, hex.EncodeToString(raw))
		a.tokens[tok] = tokenInfo{tenant: id, expires: expires}
		tokens[i] = tok
	}
	a.log("", "tenant.bulk", prefix, true, fmt.Sprintf("n=%d", n))
	return tokens, nil
}

// Tenant looks up a tenant by ID.
func (a *Authority) Tenant(id string) (*Tenant, error) {
	t, ok := a.tenants[id]
	if !ok {
		return nil, ErrNoTenant
	}
	return t, nil
}

// Issue mints a bearer token for tenant, valid for ttl of virtual time.
func (a *Authority) Issue(tenantID string, ttl sim.Duration) (string, error) {
	if _, ok := a.tenants[tenantID]; !ok {
		return "", ErrNoTenant
	}
	raw := make([]byte, 16)
	a.k.Rand().Read(raw)
	a.nextTok++
	tok := fmt.Sprintf("%d.%s", a.nextTok, hex.EncodeToString(raw))
	a.tokens[tok] = tokenInfo{tenant: tenantID, expires: a.k.Now().Add(ttl)}
	a.log(tenantID, "token.issue", "", true, "")
	return tok, nil
}

// Revoke invalidates a token immediately.
func (a *Authority) Revoke(token string) {
	if info, ok := a.tokens[token]; ok {
		delete(a.tokens, token)
		a.log(info.tenant, "token.revoke", "", true, "")
	}
}

// Authenticate resolves a token to its tenant, rejecting unknown or
// expired tokens. Failures are audited.
func (a *Authority) Authenticate(token string) (string, error) {
	info, ok := a.tokens[token]
	if !ok {
		a.log("", "auth", "", false, "unknown token")
		return "", ErrBadToken
	}
	if a.k.Now() > info.expires {
		delete(a.tokens, token)
		a.log(info.tenant, "auth", "", false, "expired token")
		return "", ErrBadToken
	}
	return info.tenant, nil
}

func (a *Authority) log(tenant, action, target string, ok bool, detail string) {
	a.audit = append(a.audit, AuditEvent{
		At: a.k.Now(), Tenant: tenant, Action: action, Target: target, OK: ok, Detail: detail,
	})
}

// Record appends an event to the audit log on behalf of an enforcement
// point outside this package — the object gateway logs denied bucket
// operations here so one trail covers block and object access alike.
func (a *Authority) Record(tenant, action, target string, ok bool, detail string) {
	a.log(tenant, action, target, ok, detail)
}

// Audit returns the security log.
func (a *Authority) Audit() []AuditEvent { return a.audit }

// Denials returns the audited failures — what an operator reviews after an
// intrusion attempt.
func (a *Authority) Denials() []AuditEvent {
	var out []AuditEvent
	for _, e := range a.audit {
		if !e.OK {
			out = append(out, e)
		}
	}
	return out
}

// Access is a LUN permission level.
type Access int

// LUN permission levels.
const (
	NoAccess Access = iota
	ReadOnly
	ReadWrite
)

// LUNMask is the classic SAN separation mechanism (§5): each tenant
// privately owns portions of the pool, concealed from other attached
// servers.
type LUNMask struct {
	acl map[string]map[string]Access // lun → tenant → access
}

// NewLUNMask returns an empty mask (default deny).
func NewLUNMask() *LUNMask {
	return &LUNMask{acl: make(map[string]map[string]Access)}
}

// Allow grants tenant the given access to lun.
func (m *LUNMask) Allow(lun, tenant string, access Access) {
	byTenant, ok := m.acl[lun]
	if !ok {
		byTenant = make(map[string]Access)
		m.acl[lun] = byTenant
	}
	byTenant[tenant] = access
}

// Check verifies tenant may access lun (write=true requires ReadWrite).
func (m *LUNMask) Check(lun, tenant string, write bool) error {
	access := m.acl[lun][tenant]
	if access == NoAccess {
		return fmt.Errorf("%w: tenant %q on lun %q", ErrDenied, tenant, lun)
	}
	if write && access != ReadWrite {
		return fmt.Errorf("%w: tenant %q read-only on lun %q", ErrDenied, tenant, lun)
	}
	return nil
}

// Visible lists the LUNs tenant can see — masked LUNs simply do not appear
// (the concealment property of LUN masking).
func (m *LUNMask) Visible(tenant string) []string {
	var out []string
	for lun, byTenant := range m.acl {
		if byTenant[tenant] != NoAccess {
			out = append(out, lun)
		}
	}
	return out
}
