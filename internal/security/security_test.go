package security

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// memStore is a plain in-memory BlockStore (what's "on disk").
type memStore struct {
	bs   int
	vols map[string]map[int64][]byte
}

func newMemStore(vols ...string) *memStore {
	m := &memStore{bs: 512, vols: make(map[string]map[int64][]byte)}
	for _, v := range vols {
		m.vols[v] = make(map[int64][]byte)
	}
	return m
}

func (m *memStore) BlockSize() int { return m.bs }

func (m *memStore) ReadBlocks(p *sim.Proc, vol string, lba int64, count, prio int) ([]byte, error) {
	buf := make([]byte, count*m.bs)
	for i := 0; i < count; i++ {
		if b, ok := m.vols[vol][lba+int64(i)]; ok {
			copy(buf[i*m.bs:], b)
		}
	}
	return buf, nil
}

func (m *memStore) WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, prio, repl int) error {
	for i := 0; i < len(data)/m.bs; i++ {
		b := make([]byte, m.bs)
		copy(b, data[i*m.bs:])
		m.vols[vol][lba+int64(i)] = b
	}
	return nil
}

type rig struct {
	k     *sim.Kernel
	auth  *Authority
	mask  *LUNMask
	store *memStore
	gw    *Gateway
}

func newRig(t *testing.T, encrypt bool) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	auth := NewAuthority(k)
	mask := NewLUNMask()
	store := newMemStore("vol.a", "vol.b")
	gw := NewGateway(GatewayConfig{
		Authority: auth, Mask: mask, Store: store,
		EncryptAtRest: encrypt, EncThroughputBps: 0,
	})
	gw.ExportLUN("lunA", "vol.a")
	gw.ExportLUN("lunB", "vol.b")
	return &rig{k: k, auth: auth, mask: mask, store: store, gw: gw}
}

func (r *rig) run(body func(p *sim.Proc)) {
	r.k.Go("test", body)
	r.k.Run()
}

func (r *rig) token(t *testing.T, tenant string) string {
	t.Helper()
	if _, err := r.auth.Tenant(tenant); err != nil {
		if _, err := r.auth.CreateTenant(tenant); err != nil {
			t.Fatal(err)
		}
	}
	tok, err := r.auth.Issue(tenant, sim.Duration(1)*3600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func block(v byte) []byte { return bytes.Repeat([]byte{v}, 512) }

func TestAuthenticatedRoundTrip(t *testing.T) {
	r := newRig(t, true)
	tok := r.token(t, "physics")
	r.mask.Allow("lunA", "physics", ReadWrite)
	r.run(func(p *sim.Proc) {
		if err := r.gw.Write(p, tok, "lunA", 0, block(7), 0, 0); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := r.gw.Read(p, tok, "lunA", 0, 1, 0)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got, block(7)) {
			t.Error("round trip mismatch through encryption")
		}
	})
}

func TestAtRestCiphertext(t *testing.T) {
	r := newRig(t, true)
	tok := r.token(t, "physics")
	r.mask.Allow("lunA", "physics", ReadWrite)
	r.run(func(p *sim.Proc) {
		r.gw.Write(p, tok, "lunA", 3, block(9), 0, 0)
	})
	// What reached the store must not be the plaintext (a removed disk
	// reveals nothing, §5.1).
	onDisk := r.store.vols["vol.a"][3]
	if bytes.Equal(onDisk, block(9)) {
		t.Fatal("plaintext stored at rest")
	}
	if len(onDisk) != 512 {
		t.Fatal("ciphertext wrong size")
	}
}

func TestCrossTenantCiphertextUnreadable(t *testing.T) {
	r := newRig(t, true)
	tokA := r.token(t, "alice")
	tokB := r.token(t, "bob")
	// Misconfigured mask: bob was (wrongly) granted alice's LUN — the
	// paper's defense in depth: bob still reads only garbage.
	r.mask.Allow("lunA", "alice", ReadWrite)
	r.mask.Allow("lunA", "bob", ReadOnly)
	r.run(func(p *sim.Proc) {
		r.gw.Write(p, tokA, "lunA", 0, block(5), 0, 0)
		got, err := r.gw.Read(p, tokB, "lunA", 0, 1, 0)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if bytes.Equal(got, block(5)) {
			t.Error("tenant B decrypted tenant A's data")
		}
	})
}

func TestLUNMaskingDenies(t *testing.T) {
	r := newRig(t, false)
	tok := r.token(t, "intruder")
	r.run(func(p *sim.Proc) {
		if _, err := r.gw.Read(p, tok, "lunA", 0, 1, 0); !errors.Is(err, ErrDenied) {
			t.Errorf("masked read err = %v, want ErrDenied", err)
		}
		if err := r.gw.Write(p, tok, "lunA", 0, block(1), 0, 0); !errors.Is(err, ErrDenied) {
			t.Errorf("masked write err = %v, want ErrDenied", err)
		}
	})
	if len(r.auth.Denials()) < 2 {
		t.Fatalf("denials not audited: %d", len(r.auth.Denials()))
	}
}

func TestReadOnlyGrant(t *testing.T) {
	r := newRig(t, false)
	tok := r.token(t, "reader")
	r.mask.Allow("lunA", "reader", ReadOnly)
	r.run(func(p *sim.Proc) {
		if _, err := r.gw.Read(p, tok, "lunA", 0, 1, 0); err != nil {
			t.Errorf("RO read: %v", err)
		}
		if err := r.gw.Write(p, tok, "lunA", 0, block(1), 0, 0); !errors.Is(err, ErrDenied) {
			t.Errorf("RO write err = %v, want ErrDenied", err)
		}
	})
}

func TestMaskedLUNsInvisible(t *testing.T) {
	r := newRig(t, false)
	tok := r.token(t, "alice")
	r.mask.Allow("lunA", "alice", ReadWrite)
	vis, err := r.gw.Visible(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(vis) != 1 || vis[0] != "lunA" {
		t.Fatalf("visible = %v, want [lunA] only", vis)
	}
}

func TestBadAndExpiredTokens(t *testing.T) {
	r := newRig(t, false)
	r.mask.Allow("lunA", "alice", ReadWrite)
	r.auth.CreateTenant("alice")
	short, _ := r.auth.Issue("alice", sim.Millisecond)
	r.run(func(p *sim.Proc) {
		if _, err := r.gw.Read(p, "garbage", "lunA", 0, 1, 0); !errors.Is(err, ErrBadToken) {
			t.Errorf("bad token err = %v", err)
		}
		p.Sleep(10 * sim.Millisecond)
		if _, err := r.gw.Read(p, short, "lunA", 0, 1, 0); !errors.Is(err, ErrBadToken) {
			t.Errorf("expired token err = %v", err)
		}
	})
}

func TestRevokedToken(t *testing.T) {
	r := newRig(t, false)
	tok := r.token(t, "alice")
	r.mask.Allow("lunA", "alice", ReadWrite)
	r.auth.Revoke(tok)
	r.run(func(p *sim.Proc) {
		if _, err := r.gw.Read(p, tok, "lunA", 0, 1, 0); !errors.Is(err, ErrBadToken) {
			t.Errorf("revoked token err = %v", err)
		}
	})
}

func TestInBandControlLockdown(t *testing.T) {
	r := newRig(t, false)
	tok := r.token(t, "admin")
	r.gw.DisableInBand("volume.delete")
	ran := false
	runCmd := func() error { ran = true; return nil }
	// In-band (data path): refused.
	if err := r.gw.Control(tok, "volume.delete", true, runCmd); !errors.Is(err, ErrInBandLocked) {
		t.Fatalf("in-band err = %v, want ErrInBandLocked", err)
	}
	if ran {
		t.Fatal("locked command executed")
	}
	// Out-of-band (management network): allowed.
	if err := r.gw.Control(tok, "volume.delete", false, runCmd); err != nil {
		t.Fatalf("out-of-band err = %v", err)
	}
	if !ran {
		t.Fatal("out-of-band command did not run")
	}
	r.gw.EnableInBand("volume.delete")
	if err := r.gw.Control(tok, "volume.delete", true, runCmd); err != nil {
		t.Fatalf("re-enabled err = %v", err)
	}
}

// Property: encrypt/decrypt round-trips for any block address and payload,
// and ciphertexts under different tenants differ.
func TestCryptorProperty(t *testing.T) {
	k := sim.NewKernel(1)
	auth := NewAuthority(k)
	ta, _ := auth.CreateTenant("a")
	tb, _ := auth.CreateTenant("b")
	ca, _ := NewCryptor(ta, 0)
	cb, _ := NewCryptor(tb, 0)
	f := func(vol string, lba int64, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		enc := ca.EncryptBlock(nil, vol, lba, payload)
		if bytes.Equal(enc, payload) && len(payload) > 8 {
			return false // ciphertext == plaintext is essentially impossible
		}
		dec := ca.DecryptBlock(nil, vol, lba, enc)
		if !bytes.Equal(dec, payload) {
			return false
		}
		// A different tenant's key must not decrypt it.
		wrong := cb.DecryptBlock(nil, vol, lba, enc)
		return !bytes.Equal(wrong, payload) || len(payload) < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCryptorAddressBoundIVs(t *testing.T) {
	k := sim.NewKernel(1)
	auth := NewAuthority(k)
	ten, _ := auth.CreateTenant("a")
	c, _ := NewCryptor(ten, 0)
	pt := block(1)
	e1 := c.EncryptBlock(nil, "v", 1, pt)
	e2 := c.EncryptBlock(nil, "v", 2, pt)
	if bytes.Equal(e1, e2) {
		t.Fatal("same ciphertext at different LBAs (IV reuse)")
	}
}

func TestCryptorThroughputCharged(t *testing.T) {
	k := sim.NewKernel(1)
	auth := NewAuthority(k)
	ten, _ := auth.CreateTenant("a")
	c, _ := NewCryptor(ten, 1_000_000_000) // 1 Gb/s engine
	var elapsed sim.Duration
	k.Go("t", func(p *sim.Proc) {
		start := p.Now()
		c.EncryptBlock(p, "v", 0, make([]byte, 125_000_000)) // 1 Gb
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	if elapsed < 990*sim.Millisecond || elapsed > 1010*sim.Millisecond {
		t.Fatalf("1 Gb through 1 Gb/s engine took %v, want ~1s", elapsed)
	}
}

func TestStreamEncryption(t *testing.T) {
	k := sim.NewKernel(1)
	auth := NewAuthority(k)
	ten, _ := auth.CreateTenant("a")
	c, _ := NewCryptor(ten, 0)
	msg := []byte("inter-site replication payload")
	enc := c.EncryptStream(nil, "siteA-siteB", 42, msg)
	if bytes.Equal(enc, msg) {
		t.Fatal("stream plaintext on the wire")
	}
	dec := c.DecryptStream(nil, "siteA-siteB", 42, enc)
	if !bytes.Equal(dec, msg) {
		t.Fatal("stream round trip failed")
	}
}

func TestAuditTrail(t *testing.T) {
	r := newRig(t, false)
	tok := r.token(t, "alice")
	r.mask.Allow("lunA", "alice", ReadWrite)
	r.run(func(p *sim.Proc) {
		r.gw.Read(p, tok, "lunA", 0, 1, 0)
		r.gw.Read(p, tok, "lunB", 0, 1, 0) // masked → denied
	})
	events := r.auth.Audit()
	if len(events) == 0 {
		t.Fatal("no audit events")
	}
	found := false
	for _, e := range events {
		if !e.OK && e.Target == "lunB" {
			found = true
		}
	}
	if !found {
		t.Fatal("denied access to lunB not audited")
	}
}
