package security

import (
	"fmt"

	"repro/internal/sim"
)

// BlockStore is the data path the gateway protects — the blade cluster's
// block interface, by any route.
type BlockStore interface {
	BlockSize() int
	ReadBlocks(p *sim.Proc, vol string, lba int64, count int, priority int) ([]byte, error)
	WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, priority, replFactor int) error
}

// Gateway is the enforcement point in front of the storage system: every
// data and control operation authenticates first, LUN masking is applied,
// and tenant data is encrypted before it reaches the pool ("even if all of
// the security mechanisms were circumvented, an unauthorized user would
// not be able to read the data of another user", §5.1).
type Gateway struct {
	auth  *Authority
	mask  *LUNMask
	store BlockStore
	// cryptors caches per-tenant encryption engines.
	cryptors map[string]*Cryptor
	// encThroughputBps models the blades' encryption engines (§8.1).
	encThroughputBps int64
	// encryptAtRest toggles §5.1 storage-level encryption.
	encryptAtRest bool
	// inbandDisabled lists control commands refused on the data path
	// (§5.2: "in-band control commands would be able to be selectively
	// disabled").
	inbandDisabled map[string]bool
	// lunVolume maps exported LUN names to backing volume names.
	lunVolume map[string]string
}

// GatewayConfig assembles a Gateway.
type GatewayConfig struct {
	Authority        *Authority
	Mask             *LUNMask
	Store            BlockStore
	EncryptAtRest    bool
	EncThroughputBps int64
}

// NewGateway builds the enforcement point.
func NewGateway(cfg GatewayConfig) *Gateway {
	return &Gateway{
		auth:             cfg.Authority,
		mask:             cfg.Mask,
		store:            cfg.Store,
		cryptors:         make(map[string]*Cryptor),
		encThroughputBps: cfg.EncThroughputBps,
		encryptAtRest:    cfg.EncryptAtRest,
		inbandDisabled:   make(map[string]bool),
		lunVolume:        make(map[string]string),
	}
}

// ExportLUN publishes volume vol as LUN lun. Visibility still requires a
// LUN-mask grant.
func (g *Gateway) ExportLUN(lun, vol string) { g.lunVolume[lun] = vol }

// DisableInBand refuses the named control command when received on the
// data path; out-of-band (management network) invocation remains possible.
func (g *Gateway) DisableInBand(command string) { g.inbandDisabled[command] = true }

// EnableInBand re-enables an in-band control command.
func (g *Gateway) EnableInBand(command string) { delete(g.inbandDisabled, command) }

// Visible lists the LUNs the token's tenant can see.
func (g *Gateway) Visible(token string) ([]string, error) {
	tenant, err := g.auth.Authenticate(token)
	if err != nil {
		return nil, err
	}
	return g.mask.Visible(tenant), nil
}

// cryptor returns (building if needed) the tenant's encryption engine.
func (g *Gateway) cryptor(tenantID string) (*Cryptor, error) {
	if c, ok := g.cryptors[tenantID]; ok {
		return c, nil
	}
	t, err := g.auth.Tenant(tenantID)
	if err != nil {
		return nil, err
	}
	c, err := NewCryptor(t, g.encThroughputBps)
	if err != nil {
		return nil, err
	}
	g.cryptors[tenantID] = c
	return c, nil
}

// check authenticates the token and authorizes the LUN operation,
// returning tenant and backing volume.
func (g *Gateway) check(token, lun string, write bool) (tenant, vol string, err error) {
	tenant, err = g.auth.Authenticate(token)
	if err != nil {
		return "", "", err
	}
	vol, ok := g.lunVolume[lun]
	if !ok {
		// Unknown LUNs are indistinguishable from masked ones.
		g.auth.log(tenant, "io", lun, false, "no such lun")
		return "", "", fmt.Errorf("%w: lun %q", ErrDenied, lun)
	}
	if err := g.mask.Check(lun, tenant, write); err != nil {
		g.auth.log(tenant, "io", lun, false, "lun masked")
		return "", "", err
	}
	return tenant, vol, nil
}

// Read authenticates, authorizes and reads count blocks, decrypting
// at-rest ciphertext with the tenant's key.
func (g *Gateway) Read(p *sim.Proc, token, lun string, lba int64, count, priority int) ([]byte, error) {
	tenant, vol, err := g.check(token, lun, false)
	if err != nil {
		return nil, err
	}
	data, err := g.store.ReadBlocks(p, vol, lba, count, priority)
	if err != nil {
		return nil, err
	}
	if !g.encryptAtRest {
		return data, nil
	}
	cr, err := g.cryptor(tenant)
	if err != nil {
		return nil, err
	}
	bs := g.store.BlockSize()
	out := make([]byte, 0, len(data))
	for i := 0; i < count; i++ {
		out = append(out, cr.DecryptBlock(p, vol, lba+int64(i), data[i*bs:(i+1)*bs])...)
	}
	return out, nil
}

// Write authenticates, authorizes and writes block-aligned data,
// encrypting it with the tenant's key before it reaches the pool.
func (g *Gateway) Write(p *sim.Proc, token, lun string, lba int64, data []byte, priority, replFactor int) error {
	tenant, vol, err := g.check(token, lun, true)
	if err != nil {
		return err
	}
	if !g.encryptAtRest {
		return g.store.WriteBlocks(p, vol, lba, data, priority, replFactor)
	}
	cr, err := g.cryptor(tenant)
	if err != nil {
		return err
	}
	bs := g.store.BlockSize()
	enc := make([]byte, 0, len(data))
	for i := 0; i < len(data)/bs; i++ {
		enc = append(enc, cr.EncryptBlock(p, vol, lba+int64(i), data[i*bs:(i+1)*bs])...)
	}
	return g.store.WriteBlocks(p, vol, lba, enc, priority, replFactor)
}

// Control executes a named control-plane command. inBand reports whether
// the request arrived over the data path (host Fibre Channel / iSCSI)
// rather than the separate management network; disabled in-band commands
// are refused and audited.
func (g *Gateway) Control(token, command string, inBand bool, run func() error) error {
	tenant, err := g.auth.Authenticate(token)
	if err != nil {
		return err
	}
	if inBand && g.inbandDisabled[command] {
		g.auth.log(tenant, "control."+command, "", false, "in-band disabled")
		return fmt.Errorf("%w: %q", ErrInBandLocked, command)
	}
	g.auth.log(tenant, "control."+command, "", true, "")
	return run()
}
