package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"

	"repro/internal/sim"
)

// Cryptor performs the paper's "in-stream" block encryption (§5.1): data
// and metadata are encrypted on the way to disk and decrypted on the way
// back, keyed per tenant, so that a removed drive or a circumvented ACL
// yields only ciphertext.
//
// Blocks are encrypted with AES-256-CTR under a per-block IV derived from
// (volume, LBA), making every block independently addressable. The
// throughput of the engine is modeled explicitly: each operation charges
// virtual time against the blade's encryption bandwidth, which is what the
// wire-speed-by-parallelism claim of §8.1 is about.
type Cryptor struct {
	block cipher.Block
	// ThroughputBps is the engine's simulated rate in bits per second
	// (0 = free, e.g. when accounting happens elsewhere).
	ThroughputBps int64
}

// NewCryptor builds a cryptor for a tenant's key.
func NewCryptor(t *Tenant, throughputBps int64) (*Cryptor, error) {
	blk, err := aes.NewCipher(t.key)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	return &Cryptor{block: blk, ThroughputBps: throughputBps}, nil
}

// iv derives the per-block counter IV from the block address.
func (c *Cryptor) iv(vol string, lba int64) []byte {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s/%d", vol, lba)))
	return sum[:aes.BlockSize]
}

// cost blocks p for the engine's simulated processing time.
func (c *Cryptor) cost(p *sim.Proc, n int) {
	if c.ThroughputBps <= 0 || p == nil {
		return
	}
	p.Sleep(sim.Duration(float64(n*8) / float64(c.ThroughputBps) * float64(sim.Second)))
}

// EncryptBlock returns the ciphertext of data for block (vol, lba).
// CTR mode: the same call decrypts. The simulated engine time is charged
// to p.
func (c *Cryptor) EncryptBlock(p *sim.Proc, vol string, lba int64, data []byte) []byte {
	c.cost(p, len(data))
	out := make([]byte, len(data))
	cipher.NewCTR(c.block, c.iv(vol, lba)).XORKeyStream(out, data)
	return out
}

// DecryptBlock reverses EncryptBlock.
func (c *Cryptor) DecryptBlock(p *sim.Proc, vol string, lba int64, data []byte) []byte {
	return c.EncryptBlock(p, vol, lba, data)
}

// EncryptStream encrypts a transport payload (in-flight protection for
// non-secure media, §5.1) with a message-index IV.
func (c *Cryptor) EncryptStream(p *sim.Proc, streamID string, seq int64, data []byte) []byte {
	return c.EncryptBlock(p, "stream/"+streamID, seq, data)
}

// DecryptStream reverses EncryptStream.
func (c *Cryptor) DecryptStream(p *sim.Proc, streamID string, seq int64, data []byte) []byte {
	return c.EncryptBlock(p, "stream/"+streamID, seq, data)
}
