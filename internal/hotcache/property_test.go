package hotcache

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Property test for the cache tier's staleness guarantee, in the style of
// the coherence package's migration property test: after ANY fault-free
// mixed schedule of tier-routed reads (GetS + cache fills), writes (GetX
// + write-through invalidation), natural evictions (tiny cache nodes),
// tier disable/enable cycles, and home migrations racing all of it, a
// read must never return data older than the last write acknowledged
// BEFORE the read began, and the directory invariants must hold with the
// cache tier active. Schedules are random but seeded from a table, so
// every failure replays by its seed.
//
// The staleness assertion leans on the write-through protocol: every
// acked write is preceded by a GetX handled at the key's current home,
// and the home invalidates the tier's copy inside the grant — so a read
// that starts after the ack cannot find the superseded copy, and an
// in-flight fill racing the write is aborted by the epoch/generation
// guard.

// wval builds a block whose first two bytes identify the write (key
// index, per-key sequence number).
func wval(key, seq int) []byte {
	b := make([]byte, blockSize)
	b[0], b[1] = byte(key), byte(seq)
	return b
}

func TestPropertyTierStalenessUnderMixedSchedules(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 7, 11, 42, 99, 1234, 2024, 31337, 98765}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runTierStalenessProperty(t, seed)
		})
	}
}

func runTierStalenessProperty(t *testing.T, seed int64) {
	const (
		blades     = 4
		cohBlocks  = 8 // tiny: forces coherence-cache evictions
		nodeBlocks = 4 // tinier: forces tier-node evictions
		keys       = 24
		writers    = 3
		readers    = 3
		writerOps  = 50
		readerOps  = 120
		migrations = 12
		toggles    = 3
		tailOps    = 60
	)
	h := newHarness(seed, blades, cohBlocks, Config{
		HotMin:        1, // everything is hot: maximum cache traffic
		BlocksPerNode: nodeBlocks,
	})
	h.tier.SetEnabled(true)
	rng := rand.New(rand.NewSource(seed * 7919))

	// Control-plane endpoint for migrations, wired like the balancer's.
	h.net.Connect("ctl", "fabric", simnet.FC2G)
	ctl := simnet.NewConn(h.net, "ctl")
	retry := coherence.NormalizeRetry(simnet.RetryPolicy{})

	// acked[k] is the sequence number of the last ACKED write per key;
	// expected[k] the data. Keys are partitioned across writers (key k
	// belongs to writer k%writers) so both are well-defined mid-flight.
	acked := make([]int, keys)
	expected := make(map[int][]byte)
	seq := make(map[int]int)

	// readTier routes one read through the tier and checks the staleness
	// floor captured BEFORE the read was issued.
	readTier := func(p *sim.Proc, k int, label string) {
		floor := acked[k]
		d, via, err := h.readViaInfo(p, kb(int64(k)))
		if err != nil {
			t.Errorf("%s read key %d: %v", label, k, err)
			return
		}
		if int(d[1]) < floor {
			t.Errorf("%s read key %d (via=%v) returned seq %d, but seq %d was acked before the read began",
				label, k, via, d[1], floor)
		}
	}

	h.run(func(p *sim.Proc) {
		g := sim.NewGroup(h.k)

		for w := 0; w < writers; w++ {
			w := w
			wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < writerOps; i++ {
					k := wrng.Intn(keys/writers)*writers + w // this writer's keys only
					e := h.engines[wrng.Intn(blades)]
					seq[k]++
					v := wval(k, seq[k])
					if err := e.WriteBlock(p, kb(int64(k)), v, 0); err != nil {
						t.Errorf("writer%d op %d key %d: %v", w, i, k, err)
						return
					}
					expected[k] = v // acked
					acked[k] = seq[k]
				}
			})
		}

		for r := 0; r < readers; r++ {
			r := r
			rrng := rand.New(rand.NewSource(seed*2000 + int64(r)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("reader%d", r), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < readerOps; i++ {
					// Skewed choice: half the reads hammer 4 keys so the
					// tier sees real hot-key traffic and repeated hits.
					var k int
					if rrng.Intn(2) == 0 {
						k = rrng.Intn(4)
					} else {
						k = rrng.Intn(keys)
					}
					readTier(p, k, fmt.Sprintf("reader%d op %d", r, i))
				}
			})
		}

		mrng := rand.New(rand.NewSource(seed * 3000))
		g.Add(1)
		h.k.Go("migrator", func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < migrations; i++ {
				k := kb(int64(mrng.Intn(keys)))
				home, err := h.engines[0].Home(k)
				if err != nil {
					t.Errorf("migrator: home(%v): %v", k, err)
					return
				}
				to := mrng.Intn(blades)
				if to == home {
					to = (to + 1) % blades
				}
				// A stale candidate (home moved since we looked) is a
				// declined migrate, not a failure.
				coherence.RequestMigrate(p, ctl, h.peers[home], k, to, retry)
			}
		})

		// Toggler: disable/enable the tier mid-schedule so in-flight
		// fills hit the generation guard and the stores restart cold.
		trng := rand.New(rand.NewSource(seed * 4000))
		g.Add(1)
		h.k.Go("toggler", func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < toggles; i++ {
				p.Sleep(sim.Duration(1+trng.Intn(5)) * sim.Millisecond)
				h.tier.SetEnabled(false)
				p.Sleep(sim.Duration(1+trng.Intn(3)) * sim.Millisecond)
				h.tier.SetEnabled(true)
			}
		})

		g.Wait(p)

		// Sequential tail: reads here have no concurrent writers, so they
		// must return EXACTLY the last acked write, through the tier.
		for i := 0; i < tailOps; i++ {
			k := rng.Intn(keys)
			switch rng.Intn(4) {
			case 0, 1: // tier read, exact-match check
				want := expected[k]
				d, err := h.readVia(p, kb(int64(k)))
				if err != nil {
					t.Fatalf("tail op %d read key %d: %v", i, k, err)
				}
				if want != nil && (d[0] != want[0] || d[1] != want[1]) {
					t.Fatalf("tail op %d key %d read (%d,%d), want (%d,%d)",
						i, k, d[0], d[1], want[0], want[1])
				}
			case 2: // write
				seq[k]++
				v := wval(k, seq[k])
				if err := h.engines[rng.Intn(blades)].WriteBlock(p, kb(int64(k)), v, 0); err != nil {
					t.Fatalf("tail op %d write key %d: %v", i, k, err)
				}
				expected[k] = v
				acked[k] = seq[k]
			case 3: // migrate
				key := kb(int64(k))
				home, err := h.engines[0].Home(key)
				if err != nil {
					t.Fatalf("tail op %d home key %d: %v", i, k, err)
				}
				to := rng.Intn(blades)
				if to == home {
					to = (to + 1) % blades
				}
				coherence.RequestMigrate(p, ctl, h.peers[home], key, to, retry)
			}
		}

		// Final reads: every written key, once through the tier and once
		// straight through an engine, must return the last acked write.
		for k := 0; k < keys; k++ {
			want := expected[k]
			if want == nil {
				continue
			}
			d, err := h.readVia(p, kb(int64(k)))
			if err != nil {
				t.Fatalf("final tier read key %d: %v", k, err)
			}
			if d[0] != want[0] || d[1] != want[1] {
				t.Fatalf("final tier read key %d = (%d,%d), want last acked (%d,%d)",
					k, d[0], d[1], want[0], want[1])
			}
			d, err = h.engines[k%blades].ReadBlock(p, kb(int64(k)), 0)
			if err != nil {
				t.Fatalf("final engine read key %d: %v", k, err)
			}
			if d[0] != want[0] || d[1] != want[1] {
				t.Fatalf("final engine read key %d = (%d,%d), want last acked (%d,%d)",
					k, d[0], d[1], want[0], want[1])
			}
		}
	})

	if t.Failed() {
		return
	}

	// Directory invariants must hold with the cache tier active — the
	// tier's shadow copies live outside the directory's jurisdiction and
	// must not have perturbed it.
	ks := make([]cache.Key, keys)
	for k := range ks {
		ks[k] = kb(int64(k))
	}
	if err := coherence.CheckInvariants(h.engines, ks); err != nil {
		t.Fatal(err)
	}

	// The schedule must actually have exercised the machinery.
	var fills, invals int64
	for i := 0; i < blades; i++ {
		s := h.tier.Node(i).Stats()
		fills += s.Fills
		invals += s.Invalidations
	}
	if fills == 0 {
		t.Fatal("schedule filled no cache node; property not exercised")
	}
	if invals == 0 {
		t.Fatal("schedule triggered no write-through invalidation; property not exercised")
	}
	moved := int64(0)
	for _, e := range h.engines {
		moved += e.Stats().HomeMigrations
	}
	if moved == 0 {
		t.Fatal("schedule performed no successful migrations; property not exercised")
	}
}
