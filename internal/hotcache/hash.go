// Package hotcache is the DistCache-style upper cache layer: one small
// cache node per blade, keys partitioned by a hash independent of the
// directory-home hash, absorbing reads for the hottest directory keys.
//
// The load-balance argument is DistCache's: the lower layer (directory
// homes) partitions keys by one hash, the upper layer by an independent
// one, and the client picks between a key's two candidate blades with
// power-of-two-choices. For any hot set, the two partitions disagree on
// almost every key, so the union of the two layers spreads the hot keys
// across ~2× the blades and po2c keeps the per-blade load within a
// constant factor of even — without moving any directory state.
//
// Correctness rides on write-through invalidation: every write
// invalidates the upper layer's copies after its Modified copy is
// installed and before it is acknowledged (see
// coherence.SetWriteThroughHook), and fills guard their installs with a
// per-key epoch snapshotted before the fetch — so a cached read can
// never return data older than the last acked write.
package hotcache

import (
	"strconv"

	"repro/internal/cache"
)

// fnv1a64 constants (hash/fnv), inlined like coherence.keyHash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// PartitionHash maps a key to the upper cache layer's partition space.
// It must be independent of the directory-home hash (coherence.keyHash)
// or the two layers would co-locate every hot key on the same blade and
// the two-choice routing would degenerate to one choice. Independence
// comes from salting the FNV stream and passing the result through a
// splitmix64 finalizer, which decorrelates even keys whose unsalted FNV
// digests are close.
func PartitionHash(key cache.Key) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key.Vol); i++ {
		h ^= uint64(key.Vol[i])
		h *= fnvPrime64
	}
	h ^= '#' // salt: coherence.keyHash joins with '/'
	h *= fnvPrime64
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], key.LBA, 10) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// CacheBlade returns the blade whose cache node owns key in the upper
// layer's partition, for a cluster of n blades. The partition is static
// over all blades (not the live subset): a down blade's cache shard is
// simply unreachable and routing falls back to the key's home, rather
// than re-partitioning — which would orphan cached copies from their
// invalidation path.
func CacheBlade(key cache.Key, n int) int {
	if n <= 0 {
		return 0
	}
	return int(PartitionHash(key) % uint64(n))
}
