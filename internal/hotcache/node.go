package hotcache

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
)

// NodeStats counts one cache node's traffic.
type NodeStats struct {
	Hits          int64 // reads served from the node's store
	Misses        int64 // reads that fell through to the coherence plane
	Fills         int64 // miss results installed into the store
	FillAborts    int64 // installs abandoned because the key was written
	Invalidations int64 // write-through invalidations applied
}

// Node is one blade's shard of the upper cache layer: a small LRU of
// clean block copies for the hot keys this blade owns under
// PartitionHash. Copies enter only through fills (reads through the
// coherence plane) and leave through write-through invalidation,
// eviction, or a tier disable — they are shadow copies outside the
// directory's jurisdiction, so they carry no dirty state, ever.
type Node struct {
	self    int
	engine  *coherence.Engine
	store   *cache.Cache
	opDelay sim.Duration

	// epoch[key] counts invalidations of key; gen counts whole-store
	// clears. A fill records both before issuing its coherence read and
	// installs only if neither moved — the same install guard the
	// coherence engine uses (engine.go readBlock), shrunk to this node's
	// jurisdiction. There are no yields between the recheck and the
	// install, so the guard cannot be raced by a concurrent event.
	epoch map[cache.Key]uint64
	gen   uint64

	stats NodeStats
}

// epochSweepAt bounds the epoch map: once it outgrows this multiple of
// the store's capacity, entries for keys not currently cached are
// dropped. Dropping is safe in one direction only — a fill that recorded
// a pruned epoch later reads 0, mismatches, and aborts — so pruning can
// cause a spurious fill abort but never a stale install.
const epochSweepAt = 8

func newNode(self int, engine *coherence.Engine, blocks int, opDelay sim.Duration) *Node {
	return &Node{
		self:    self,
		engine:  engine,
		store:   cache.New(blocks),
		opDelay: opDelay,
		epoch:   make(map[cache.Key]uint64),
	}
}

// Read serves one block read through the cache node. A hit costs one CPU
// charge on this blade and returns the cached copy; a miss reads through
// the coherence plane (which does its own CPU accounting) and installs
// the result if no write or clear intervened.
func (n *Node) Read(p *sim.Proc, key cache.Key, priority int) ([]byte, error) {
	if ent, ok := n.store.Get(key); ok {
		n.stats.Hits++
		n.engine.Busy(p, n.opDelay)
		return append([]byte(nil), ent.Data...), nil
	}
	n.stats.Misses++
	gen, epoch := n.gen, n.epoch[key]
	// FetchBlock, not ReadBlock: the fill must stay outside the coherence
	// domain. A ReadBlock fill would register this blade as a sharer and
	// install a Shared coherence copy, making every later write to the
	// hot key pay an invalidation round trip inside its grant — the tier
	// carries its own freshness guarantee (epoch guard + write-through
	// hook), so the MSI bookkeeping would be pure overhead.
	data, err := n.engine.FetchBlock(p, key, priority)
	if err != nil {
		return nil, err
	}
	if n.gen == gen && n.epoch[key] == epoch {
		n.makeRoom()
		n.store.Put(key, append([]byte(nil), data...), cache.Shared, false, priority)
		n.stats.Fills++
	} else {
		n.stats.FillAborts++
	}
	return data, nil
}

// makeRoom evicts until one entry fits. Every entry is clean, so
// eviction is a plain drop — no writeback, no epoch bump (removing a
// copy cannot create staleness; only installing one can).
func (n *Node) makeRoom() {
	for n.store.NeedsRoom(1) {
		v := n.store.Victim()
		if v == nil {
			return
		}
		n.store.Evict(v)
	}
}

// Invalidate applies a write-through invalidation for keys: each key's
// epoch advances (killing in-flight fills) and any cached copy is
// removed. It runs synchronously inside the home's exclusive grant, so
// by the time the writer learns it owns the block, this node holds
// nothing stale.
func (n *Node) Invalidate(keys []cache.Key) {
	for _, key := range keys {
		n.epoch[key]++
		n.stats.Invalidations++
		n.store.Remove(key)
	}
	if len(n.epoch) > epochSweepAt*n.store.Capacity() {
		for k := range n.epoch {
			if _, cached := n.store.Peek(k); !cached {
				delete(n.epoch, k)
			}
		}
	}
}

// clear empties the node on a tier disable: the generation bump aborts
// every in-flight fill, so no copy filled under the old regime can land
// after the stores are declared empty.
func (n *Node) clear() {
	n.gen++
	n.store.Clear()
	n.epoch = make(map[cache.Key]uint64)
}

// Stats returns a copy of the node's counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Occupancy reports the fraction of the node's store in use.
func (n *Node) Occupancy() float64 {
	if n.store.Capacity() == 0 {
		return 0
	}
	return float64(n.store.Len()) / float64(n.store.Capacity())
}

// Len reports the number of cached blocks.
func (n *Node) Len() int { return n.store.Len() }
