package hotcache

import (
	"testing"

	"repro/internal/cache"
)

// FuzzHotcacheRouting pounds on the routing layer's algebraic invariants:
// the partition hash is a pure function of the key, CacheBlade always
// lands in range and is stable, and routeChoice's answer is exactly
// characterized by viaCache ⇔ (chosen blade == cache blade ≠ home) under
// the power-of-two-choices rule (ties go to the cache node). These are
// the properties the tier's correctness argument leans on: a viaCache=
// true answer is the only path that may install into a cache node, and
// write-through invalidation finds that node by recomputing the same
// CacheBlade.
func FuzzHotcacheRouting(f *testing.F) {
	f.Add("vol0", int64(0), byte(4), byte(0), uint16(0), uint16(0))
	f.Add("scratch", int64(1<<40), byte(1), byte(0), uint16(9), uint16(3))
	f.Add("v", int64(-7), byte(8), byte(5), uint16(2), uint16(2))
	f.Add("", int64(123456789), byte(16), byte(255), uint16(65535), uint16(0))
	f.Fuzz(func(t *testing.T, vol string, lba int64, blades, homeRaw byte, icb, ihome uint16) {
		n := int(blades)%32 + 1 // 1..32 blades
		home := int(homeRaw) % n
		key := cache.Key{Vol: vol, LBA: lba}

		if h1, h2 := PartitionHash(key), PartitionHash(key); h1 != h2 {
			t.Fatalf("PartitionHash(%v) unstable: %x vs %x", key, h1, h2)
		}
		cb := CacheBlade(key, n)
		if cb < 0 || cb >= n {
			t.Fatalf("CacheBlade(%v, %d) = %d out of range", key, n, cb)
		}
		if again := CacheBlade(key, n); again != cb {
			t.Fatalf("CacheBlade(%v, %d) unstable: %d vs %d", key, n, cb, again)
		}

		blade, via := routeChoice(cb, home, int(icb), int(ihome))
		if blade != cb && blade != home {
			t.Fatalf("routeChoice(%d, %d, %d, %d) chose %d: neither cache blade nor home",
				cb, home, icb, ihome, blade)
		}
		if via != (blade == cb && cb != home) {
			t.Fatalf("routeChoice(%d, %d, %d, %d) = (%d, %v): viaCache must hold iff the cache blade (≠ home) was chosen",
				cb, home, icb, ihome, blade, via)
		}
		if cb == home && via {
			t.Fatalf("routeChoice(%d, %d, ...) reported viaCache on a hash collision", cb, home)
		}
		if int(icb) > int(ihome) && via {
			t.Fatalf("routeChoice(%d, %d, %d, %d) picked the busier cache node", cb, home, icb, ihome)
		}
		if cb != home && int(icb) <= int(ihome) && !via {
			t.Fatalf("routeChoice(%d, %d, %d, %d) skipped the free (or tied) cache node", cb, home, icb, ihome)
		}
	})
}
