package hotcache

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const blockSize = 512

// memBacking is a shared stable store with a fixed access delay (same
// shape as the coherence package's test backing).
type memBacking struct {
	delay         sim.Duration
	data          map[cache.Key][]byte
	reads, writes int64
}

func newMemBacking(delay sim.Duration) *memBacking {
	return &memBacking{delay: delay, data: make(map[cache.Key][]byte)}
}

func (m *memBacking) ReadBlock(p *sim.Proc, key cache.Key) ([]byte, error) {
	p.Sleep(m.delay)
	m.reads++
	if d, ok := m.data[key]; ok {
		return append([]byte(nil), d...), nil
	}
	return make([]byte, blockSize), nil
}

func (m *memBacking) WriteBlock(p *sim.Proc, key cache.Key, data []byte) error {
	p.Sleep(m.delay)
	m.writes++
	m.data[key] = append([]byte(nil), data...)
	return nil
}

// harness is a blade cluster with the cache tier wired in, built from
// the coherence package's exported surface only.
type harness struct {
	k       *sim.Kernel
	net     *simnet.Network
	engines []*coherence.Engine
	conns   []*simnet.Conn
	peers   []simnet.Addr
	backing *memBacking
	tier    *Tier
}

func newHarness(seed int64, blades, cohBlocks int, cfg Config) *harness {
	k := sim.NewKernel(seed)
	net := simnet.New(k)
	backing := newMemBacking(2 * sim.Millisecond)
	h := &harness{k: k, net: net, backing: backing}
	h.peers = make([]simnet.Addr, blades)
	for i := range h.peers {
		h.peers[i] = simnet.Addr(fmt.Sprintf("blade%d", i))
		net.Connect(h.peers[i], "fabric", simnet.FC2G)
	}
	for i := 0; i < blades; i++ {
		conn := simnet.NewConn(net, h.peers[i])
		h.conns = append(h.conns, conn)
		h.engines = append(h.engines, coherence.New(k, coherence.Config{
			Conn:         conn,
			Peers:        h.peers,
			Self:         i,
			Cache:        cache.New(cohBlocks),
			Backing:      backing,
			BlockSize:    blockSize,
			OpDelay:      10 * sim.Microsecond,
			HandlerDelay: 5 * sim.Microsecond,
		}))
	}
	h.tier = New(cfg, Deps{
		K:       k,
		Engines: h.engines,
		Conns:   h.conns,
		Peers:   h.peers,
		Retry:   coherence.NormalizeRetry(simnet.RetryPolicy{}),
	})
	return h
}

func (h *harness) run(body func(p *sim.Proc)) {
	h.k.Go("test", body)
	h.k.Run()
}

func blk(v byte) []byte { return bytes.Repeat([]byte{v}, blockSize) }

func kb(i int64) cache.Key { return cache.Key{Vol: "v", LBA: i} }

// readVia routes one read through the tier exactly as a client would:
// resolve the home, ask the tier, dispatch to the cache node or the home
// engine, bracketing with the inflight accounting.
func (h *harness) readVia(p *sim.Proc, key cache.Key) ([]byte, error) {
	d, _, err := h.readViaInfo(p, key)
	return d, err
}

// readViaInfo is readVia exposing the routing decision (property-test
// failure diagnostics).
func (h *harness) readViaInfo(p *sim.Proc, key cache.Key) ([]byte, bool, error) {
	home, err := h.engines[0].Home(key)
	if err != nil {
		return nil, false, err
	}
	blade, via := h.tier.Route(key, home)
	done := h.tier.OpStart(blade)
	defer done()
	if via {
		d, err := h.tier.Node(blade).Read(p, key, 0)
		return d, true, err
	}
	d, err := h.engines[blade].ReadBlock(p, key, 0)
	return d, false, err
}

func TestPartitionHashIndependentOfHomeHash(t *testing.T) {
	// Over a block of consecutive keys, the directory-home partition and
	// the cache partition must disagree on most keys — co-location would
	// collapse the two-choice routing to one choice. Homes come from a
	// real engine (rendezvous over the live membership), cache blades
	// from CacheBlade.
	const blades, keys = 4, 256
	h := newHarness(1, blades, 64, Config{})
	same := 0
	for i := int64(0); i < keys; i++ {
		home, err := h.engines[0].Home(kb(i))
		if err != nil {
			t.Fatal(err)
		}
		if CacheBlade(kb(i), blades) == home {
			same++
		}
	}
	// Independent hashes collide on 1/blades of keys in expectation
	// (64/256); allow generous slack but reject correlation.
	if same < keys/16 || same > keys/2 {
		t.Fatalf("cache blade == home for %d/%d keys; partitions look correlated", same, keys)
	}
}

func TestCacheBladeStableAndInRange(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for i := int64(0); i < 100; i++ {
			b1, b2 := CacheBlade(kb(i), n), CacheBlade(kb(i), n)
			if b1 != b2 {
				t.Fatalf("CacheBlade not deterministic: %d vs %d", b1, b2)
			}
			if b1 < 0 || b1 >= n {
				t.Fatalf("CacheBlade(%d, %d) = %d out of range", i, n, b1)
			}
		}
	}
}

func TestRouteColdGoesHome(t *testing.T) {
	h := newHarness(1, 4, 64, Config{HotMin: 100}) // nothing gets hot
	h.tier.SetEnabled(true)
	h.run(func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := h.readVia(p, kb(7)); err != nil {
				t.Errorf("read: %v", err)
			}
		}
	})
	st := h.tier.Stats()
	if st.RoutedCache != 0 {
		t.Fatalf("cold key routed to cache %d times", st.RoutedCache)
	}
	if st.RoutedCold == 0 {
		t.Fatal("no cold routings recorded")
	}
}

func TestHotKeyFillsAndHits(t *testing.T) {
	h := newHarness(1, 4, 64, Config{HotMin: 1})
	h.tier.SetEnabled(true)
	key := kb(3)
	h.backing.data[key] = blk(9)
	cb := CacheBlade(key, 4)
	home, _ := h.engines[0].Home(key)
	if cb == home {
		t.Skipf("key 3 co-located (cb=home=%d); pick another key for this seed", cb)
	}
	h.run(func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d, err := h.readVia(p, key)
			if err != nil || d[0] != 9 {
				t.Errorf("read %d: %v %v", i, d[0], err)
			}
		}
	})
	ns := h.tier.Node(cb).Stats()
	if ns.Fills == 0 {
		t.Fatalf("hot key never filled the cache node: %+v", ns)
	}
	if ns.Hits == 0 {
		t.Fatalf("hot key never hit the cache node: %+v", ns)
	}
}

func TestWriteThroughInvalidates(t *testing.T) {
	h := newHarness(1, 4, 64, Config{HotMin: 1})
	h.tier.SetEnabled(true)
	key := kb(3)
	h.backing.data[key] = blk(1)
	cb := CacheBlade(key, 4)
	home, _ := h.engines[0].Home(key)
	if cb == home {
		t.Skip("key co-located for this membership")
	}
	h.run(func(p *sim.Proc) {
		// Heat the key until it is cached.
		for i := 0; i < 6; i++ {
			h.readVia(p, key)
		}
		if h.tier.Node(cb).Len() == 0 {
			t.Fatal("key not cached after hot reads")
		}
		// Write from an unrelated blade; the grant must kill the copy.
		if err := h.engines[(home+1)%4].WriteBlock(p, key, blk(2), 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		if h.tier.Node(cb).Len() != 0 {
			t.Fatal("cache copy survived an acked write")
		}
		// And the next tier read sees the new data.
		d, err := h.readVia(p, key)
		if err != nil || d[0] != 2 {
			t.Fatalf("read after write: %v %v, want 2", d[0], err)
		}
	})
	if h.tier.Node(cb).Stats().Invalidations == 0 {
		t.Fatal("no write-through invalidation recorded")
	}
}

func TestWriteToUncachedKeyCostsNoRPC(t *testing.T) {
	h := newHarness(1, 4, 64, Config{HotMin: 1})
	h.tier.SetEnabled(true)
	h.run(func(p *sim.Proc) {
		// Never routed through the tier: no mark, so the exclusive-grant
		// hook must skip the fan-out entirely.
		for i := int64(100); i < 120; i++ {
			if err := h.engines[int(i)%4].WriteBlock(p, kb(i), blk(byte(i)), 0); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
	})
	if st := h.tier.Stats(); st.Invals != 0 || st.InvalKeys != 0 {
		t.Fatalf("unmarked writes paid invalidation work: %+v", st)
	}
}

func TestDisableClearsAndStopsRouting(t *testing.T) {
	h := newHarness(1, 4, 16, Config{HotMin: 1})
	h.tier.SetEnabled(true)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 8; i++ {
			for j := 0; j < 4; j++ {
				h.readVia(p, kb(i))
			}
		}
	})
	cached := 0
	for i := 0; i < 4; i++ {
		cached += h.tier.Node(i).Len()
	}
	if cached == 0 {
		t.Fatal("nothing cached while enabled")
	}
	h.tier.SetEnabled(false)
	for i := 0; i < 4; i++ {
		if n := h.tier.Node(i).Len(); n != 0 {
			t.Fatalf("node%d still holds %d blocks after disable", i, n)
		}
	}
	before := h.tier.Stats()
	h.run(func(p *sim.Proc) {
		h.readVia(p, kb(0))
	})
	after := h.tier.Stats()
	if after.RoutedCache != before.RoutedCache || after.RoutedCold != before.RoutedCold {
		t.Fatalf("disabled tier still routing: %+v -> %+v", before, after)
	}
}

func TestNodeEvictionUnderPressure(t *testing.T) {
	h := newHarness(1, 2, 64, Config{HotMin: 1, BlocksPerNode: 4})
	h.tier.SetEnabled(true)
	h.run(func(p *sim.Proc) {
		for round := 0; round < 3; round++ {
			for i := int64(0); i < 32; i++ {
				for j := 0; j < 2; j++ {
					if _, err := h.readVia(p, kb(i)); err != nil {
						t.Fatalf("read: %v", err)
					}
				}
			}
		}
	})
	for i := 0; i < 2; i++ {
		if n := h.tier.Node(i).Len(); n > 4 {
			t.Fatalf("node%d holds %d blocks, capacity 4", i, n)
		}
	}
}

func TestRebalancerSurface(t *testing.T) {
	h := newHarness(1, 4, 64, Config{})
	if h.tier.Scheme() != "hotcache" {
		t.Fatalf("scheme = %q", h.tier.Scheme())
	}
	if h.tier.Enabled() {
		t.Fatal("tier must start disabled")
	}
	h.tier.SetEnabled(true)
	if !h.tier.Enabled() {
		t.Fatal("SetEnabled(true) did not arm")
	}
	if s := h.tier.Status(); !strings.Contains(s, "hotcache") || !strings.Contains(s, "enabled=true") {
		t.Fatalf("status = %q", s)
	}
	if r := h.tier.Report(); !strings.Contains(r, "node0") || !strings.Contains(r, "node3") {
		t.Fatalf("report missing per-node lines:\n%s", r)
	}
}

func TestRouteChoiceInvariants(t *testing.T) {
	cases := []struct {
		cb, home, ifCB, ifHome int
		wantBlade              int
		wantVia                bool
	}{
		{1, 2, 0, 0, 1, true},   // tie → cache node
		{1, 2, 3, 5, 1, true},   // cache node less loaded
		{1, 2, 5, 3, 2, false},  // home less loaded
		{2, 2, 0, 9, 2, false},  // collision: no second choice
		{0, 3, 10, 10, 0, true}, // tie at load
	}
	for _, c := range cases {
		blade, via := routeChoice(c.cb, c.home, c.ifCB, c.ifHome)
		if blade != c.wantBlade || via != c.wantVia {
			t.Fatalf("routeChoice(%d,%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.cb, c.home, c.ifCB, c.ifHome, blade, via, c.wantBlade, c.wantVia)
		}
	}
}
