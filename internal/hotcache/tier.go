package hotcache

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// Wire sizes, matching the coherence plane's conventions.
const ctrlSize = 64

func batchSize(n int) int { return ctrlSize + 16*n }

// Config tunes the cache tier.
type Config struct {
	// BlocksPerNode is each blade's cache-node capacity (default 512).
	BlocksPerNode int
	// HotMin is the decayed read rate above which a key is considered
	// hot and eligible for cache routing (default 8). Cold keys go
	// straight to their home: caching the long tail would just churn
	// the small stores and pay invalidation RPCs for nothing.
	HotMin float64
	// HeatHalfLife is the decay half-life of the per-key read counters
	// (default 250ms). Shorter tracks a shifting hot set faster.
	HeatHalfLife sim.Duration
	// OpDelay is the CPU charge for a cache-node hit (default 10µs).
	OpDelay sim.Duration
}

func (c Config) withDefaults() Config {
	if c.BlocksPerNode <= 0 {
		c.BlocksPerNode = 512
	}
	if c.HotMin <= 0 {
		c.HotMin = 8
	}
	if c.HeatHalfLife <= 0 {
		c.HeatHalfLife = 250 * sim.Millisecond
	}
	if c.OpDelay <= 0 {
		c.OpDelay = 10 * sim.Microsecond
	}
	return c
}

// Deps wires the tier into a cluster.
type Deps struct {
	K *sim.Kernel
	// Engines[i], Conns[i], Peers[i] describe blade i. The tier
	// registers its invalidation handler on every Conn and installs the
	// exclusive-grant hook on every Engine.
	Engines []*coherence.Engine
	Conns   []*simnet.Conn
	Peers   []simnet.Addr
	// Retry bounds the write-through invalidation RPCs.
	Retry simnet.RetryPolicy
	// Down, if set, reports whether a blade is out of service; routing
	// then falls back to the key's home.
	Down func(blade int) bool
}

// TierStats counts routing and invalidation activity.
type TierStats struct {
	RoutedCache int64 // hot reads sent to the key's cache node
	RoutedHome  int64 // hot reads sent home (po2c picked the home)
	RoutedCold  int64 // reads below the heat threshold
	Invals      int64 // exclusive grants that invalidated the tier
	InvalKeys   int64 // keys invalidated across those grants
}

// hcInvReq is the write-through invalidation RPC ("hc.invb").
type hcInvReq struct{ Keys []cache.Key }

type hcInvResp struct{}

// Tier is the upper cache layer: one Node per blade plus the routing and
// invalidation logic that ties them to the coherence plane. It satisfies
// the core.Rebalancer interface, so the controller, telemetry, and
// yottactl drive it exactly as they drive the migration balancer.
type Tier struct {
	cfg   Config
	deps  Deps
	nodes []*Node

	enabled bool
	heat    *tierHeat

	// inflight[b] counts ops currently dispatched to blade b by this
	// tier's clients — the load signal for the two-choice routing.
	inflight []int

	// mayCache marks keys that were ever routed toward a cache node
	// while the tier was enabled. The exclusive-grant hook skips the
	// invalidation fan-out for unmarked keys, so writes to never-cached
	// keys stay free. Marks are set BEFORE Route returns (so no fill can
	// start unmarked) and are only cleared wholesale on disable, after
	// the generation bump has aborted every in-flight fill — clearing a
	// single mark while enabled could race a concurrent re-mark.
	mayCache map[cache.Key]struct{}

	stats TierStats
}

// New builds the tier, registers the "hc.invb" handler on every blade's
// connection, and installs the exclusive-grant hook on every engine. The
// tier starts disabled; SetEnabled(true) arms the routing.
func New(cfg Config, deps Deps) *Tier {
	cfg = cfg.withDefaults()
	t := &Tier{
		cfg:      cfg,
		deps:     deps,
		nodes:    make([]*Node, len(deps.Engines)),
		heat:     newTierHeat(deps.K, cfg.HeatHalfLife),
		inflight: make([]int, len(deps.Engines)),
		mayCache: make(map[cache.Key]struct{}),
	}
	for i, e := range deps.Engines {
		i, e := i, e
		t.nodes[i] = newNode(i, e, cfg.BlocksPerNode, cfg.OpDelay)
		deps.Conns[i].Register("hc.invb", func(p *sim.Proc, from simnet.Addr, args any) (any, int) {
			req := args.(hcInvReq)
			t.nodes[i].Invalidate(req.Keys)
			return hcInvResp{}, ctrlSize
		})
		// The hook fires on the WRITER blade — e (blade i) — after its
		// Modified copy is installed and before the write acks, so the
		// invalidation fan-out uses that blade's connection.
		e.SetWriteThroughHook(func(p *sim.Proc, keys []cache.Key) {
			t.writeThrough(p, i, keys)
		})
	}
	return t
}

// Node returns blade i's cache node.
func (t *Tier) Node(i int) *Node { return t.nodes[i] }

// Stats returns a copy of the tier's routing counters.
func (t *Tier) Stats() TierStats { return t.stats }

// Route decides where a READ of key should go, given its directory home.
// It returns the blade to dispatch to and whether the dispatch is a
// cache-node read (Node.Read) rather than a plain home read. Only call
// Route for reads — it feeds the heat tracker, and writes must always go
// home anyway.
func (t *Tier) Route(key cache.Key, home int) (blade int, viaCache bool) {
	if !t.enabled {
		return home, false
	}
	if t.heat.TouchVal(key) < t.cfg.HotMin {
		t.stats.RoutedCold++
		return home, false
	}
	cb := CacheBlade(key, len(t.nodes))
	if t.deps.Down != nil && t.deps.Down(cb) {
		t.stats.RoutedHome++
		return home, false
	}
	blade, viaCache = routeChoice(cb, home, t.inflight[cb], t.inflight[home])
	if !viaCache {
		t.stats.RoutedHome++
		return home, false
	}
	// Mark before returning: once the caller may issue a cache-node
	// read (and thus a fill), every exclusive grant for the key must
	// fan out to the tier.
	t.mayCache[key] = struct{}{}
	t.stats.RoutedCache++
	return blade, true
}

// routeChoice is the pure power-of-two-choices decision between a key's
// two layers: its cache node (upper) and its directory home (lower),
// compared on outstanding-op counts. Ties go to the cache node — it
// serves from memory and spreads load off the home. When the two hashes
// collide on one blade there is no second choice and the read goes home
// plain (a cache copy there would spread nothing). viaCache is true iff
// the chosen blade is the key's cache node, never its home — the
// invariant FuzzHotcacheRouting pounds on.
func routeChoice(cb, home, inflightCB, inflightHome int) (blade int, viaCache bool) {
	if cb == home {
		return home, false
	}
	if inflightCB <= inflightHome {
		return cb, true
	}
	return home, false
}

// OpStart records an op dispatched to blade and returns its completion
// callback. Call it for every client op — reads and writes, routed or
// not — so the two-choice load signal sees the whole picture.
func (t *Tier) OpStart(blade int) (done func()) {
	if blade < 0 || blade >= len(t.inflight) {
		return func() {}
	}
	t.inflight[blade]++
	return func() { t.inflight[blade]-- }
}

// writeThrough is the write-through hook body: invalidate the cache
// copies of every marked key after the writer installed its Modified
// copy and before the write acks. It runs on the writer blade (self),
// outside any directory mutex; by the time the writer's client sees the
// ack, no tier node holds bytes the write superseded, and any in-flight
// fill that snapshotted its epoch earlier will abort its install.
func (t *Tier) writeThrough(p *sim.Proc, self int, keys []cache.Key) {
	var marked []cache.Key
	for _, k := range keys {
		if _, ok := t.mayCache[k]; ok {
			marked = append(marked, k)
		}
	}
	if len(marked) == 0 {
		return
	}
	t.stats.Invals++
	t.stats.InvalKeys += int64(len(marked))

	groups := make(map[int][]cache.Key)
	for _, k := range marked {
		cb := CacheBlade(k, len(t.nodes))
		groups[cb] = append(groups[cb], k)
	}
	// The writer's own shard is invalidated in place — no RPC.
	if g, ok := groups[self]; ok {
		t.nodes[self].Invalidate(g)
		delete(groups, self)
	}
	if len(groups) == 0 {
		return
	}
	blades := make([]int, 0, len(groups))
	for b := range groups {
		blades = append(blades, b)
	}
	sort.Ints(blades) // deterministic fan-out order
	conn := t.deps.Conns[self]
	if len(blades) == 1 {
		b := blades[0]
		conn.CallRetry(p, t.deps.Peers[b], "hc.invb", hcInvReq{Keys: groups[b]}, batchSize(len(groups[b])), t.deps.Retry)
		return
	}
	grp := sim.NewGroup(t.deps.K)
	for _, b := range blades {
		b := b
		grp.Add(1)
		t.deps.K.Go("hcinv", func(q *sim.Proc) {
			defer grp.Done()
			conn.CallRetry(q, t.deps.Peers[b], "hc.invb", hcInvReq{Keys: groups[b]}, batchSize(len(groups[b])), t.deps.Retry)
		})
	}
	grp.Wait(p)
}

// ---- Rebalancer interface ----

// Scheme identifies the tier's rebalancing strategy.
func (t *Tier) Scheme() string { return "hotcache" }

// Enabled reports whether cache routing is armed.
func (t *Tier) Enabled() bool { return t.enabled }

// SetEnabled arms or disarms the tier. Disabling clears every node (the
// generation bump aborts in-flight fills), drops the heat state, and
// forgets the mark set — the cluster reverts to plain home routing with
// write-through fan-out reduced to zero.
func (t *Tier) SetEnabled(on bool) {
	if t.enabled == on {
		return
	}
	t.enabled = on
	if !on {
		for _, n := range t.nodes {
			n.clear()
		}
		t.heat.Reset()
		t.mayCache = make(map[cache.Key]struct{})
	}
}

// Status is the one-line state summary yottactl prints.
func (t *Tier) Status() string {
	cached := 0
	for _, n := range t.nodes {
		cached += n.Len()
	}
	return fmt.Sprintf("hotcache: enabled=%v nodes=%d cached=%d hot=%d routed cache/home/cold=%d/%d/%d invals=%d",
		t.enabled, len(t.nodes), cached, t.heat.Hot(t.cfg.HotMin),
		t.stats.RoutedCache, t.stats.RoutedHome, t.stats.RoutedCold, t.stats.Invals)
}

// Report renders the per-node breakdown.
func (t *Tier) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Status())
	for i, n := range t.nodes {
		s := n.Stats()
		hitRate := 0.0
		if s.Hits+s.Misses > 0 {
			hitRate = float64(s.Hits) / float64(s.Hits+s.Misses)
		}
		fmt.Fprintf(&b, "  node%d: hits=%d misses=%d (%.0f%%) fills=%d aborts=%d invals=%d occ=%.0f%%\n",
			i, s.Hits, s.Misses, 100*hitRate, s.Fills, s.FillAborts, s.Invalidations, 100*n.Occupancy())
	}
	return b.String()
}

// RegisterTelemetry publishes the tier's gauges under s: per-layer
// routing counters at the top and per-node hit/fill/occupancy below.
func (t *Tier) RegisterTelemetry(s telemetry.Scope) {
	s.Func("enabled", func() float64 {
		if t.enabled {
			return 1
		}
		return 0
	})
	s.Int("routed_cache", func() int64 { return t.stats.RoutedCache })
	s.Int("routed_home", func() int64 { return t.stats.RoutedHome })
	s.Int("routed_cold", func() int64 { return t.stats.RoutedCold })
	s.Int("invals", func() int64 { return t.stats.Invals })
	s.Int("inval_keys", func() int64 { return t.stats.InvalKeys })
	for i, n := range t.nodes {
		n := n
		ns := s.Sub(fmt.Sprintf("node%d", i))
		ns.Int("hits", func() int64 { return n.stats.Hits })
		ns.Int("misses", func() int64 { return n.stats.Misses })
		ns.Int("fills", func() int64 { return n.stats.Fills })
		ns.Int("fill_aborts", func() int64 { return n.stats.FillAborts })
		ns.Int("invalidations", func() int64 { return n.stats.Invalidations })
		ns.Func("occupancy", n.Occupancy)
	}
}

// ---- heat tracking ----

// tierHeat is an exponentially decayed per-key read counter in virtual
// time, the same construction as the coherence engine's heat tracker but
// owned by the tier (the tier sees client-side reads before routing; the
// engine sees only what reaches each home).
type tierHeat struct {
	k        *sim.Kernel
	halfLife sim.Duration
	m        map[cache.Key]*heatCell
	touches  int
}

type heatCell struct {
	v float64
	t sim.Time
}

// heatSweepEvery bounds the heat map under a shifting working set.
const heatSweepEvery = 4096

func newTierHeat(k *sim.Kernel, halfLife sim.Duration) *tierHeat {
	return &tierHeat{k: k, halfLife: halfLife, m: make(map[cache.Key]*heatCell)}
}

func (h *tierHeat) decayTo(c *heatCell, now sim.Time) {
	if dt := now.Sub(c.t); dt > 0 {
		c.v *= math.Exp2(-float64(dt) / float64(h.halfLife))
		c.t = now
	}
}

// TouchVal records one read of key and returns its decayed rate.
func (h *tierHeat) TouchVal(key cache.Key) float64 {
	now := h.k.Now()
	c, ok := h.m[key]
	if !ok {
		c = &heatCell{t: now}
		h.m[key] = c
	}
	h.decayTo(c, now)
	c.v++
	h.touches++
	if h.touches >= heatSweepEvery {
		h.touches = 0
		for k, cell := range h.m {
			h.decayTo(cell, now)
			if cell.v < 0.5 {
				delete(h.m, k)
			}
		}
	}
	return c.v
}

// Hot counts keys currently at or above the threshold.
func (h *tierHeat) Hot(min float64) int {
	now := h.k.Now()
	n := 0
	for _, c := range h.m {
		h.decayTo(c, now)
		if c.v >= min {
			n++
		}
	}
	return n
}

// Reset drops every counter.
func (h *tierHeat) Reset() { h.m = make(map[cache.Key]*heatCell); h.touches = 0 }
