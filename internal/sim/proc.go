package sim

import "fmt"

// Proc is a cooperatively scheduled simulation process.
//
// A process is backed by a goroutine, but the kernel guarantees that at most
// one process (or callback) runs at a time: a process only executes between a
// kernel wake-up and its next blocking call (Sleep, Mailbox.Recv,
// Future.Wait, Semaphore.Acquire, ...). Methods on Proc must only be invoked
// from the process's own body.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan parkSignal
	blocked bool
	killed  bool
	done    bool
	// gen increments every time the process unblocks, invalidating wake
	// events scheduled for an earlier blocking point.
	gen uint64
	// tctx is an opaque trace context (internal/trace.Ctx) carried by the
	// process. Children spawned from a process body inherit it; sim itself
	// never inspects it, which keeps the package dependency-free.
	tctx any
	// qctx is an opaque QoS context (internal/qos.Ctx) carried the same
	// way: inherited by children, adopted by RPC handlers, never inspected
	// by sim itself.
	qctx any
}

type killedPanic struct{ name string }

func (kp killedPanic) String() string { return "sim: proc " + kp.name + " killed by Kernel.Close" }

// Go spawns a process named name running fn. The process body starts at the
// current virtual time, after already-queued events at this time.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan parkSignal)}
	if k.cur != nil {
		// A process spawned from within another process inherits its trace
		// context, so fan-out helpers (RAID stripes, replication pushes)
		// stay attributed to the client op that spawned them.
		p.tctx = k.cur.tctx
		// QoS context rides along identically so a client op's tenant and
		// lane follow every stripe/replica worker down to the disk queue.
		p.qctx = k.cur.qctx
	}
	k.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			delete(k.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); ok {
					k.parked <- parkSignal{}
					return
				}
				panic(fmt.Sprintf("sim: proc %q panicked: %v", name, r))
			}
			k.parked <- parkSignal{}
		}()
		fn(p)
	}()
	p.blocked = true
	k.At(k.now, func() { k.wake(p) })
	return p
}

// wake transfers control to p and blocks the kernel until p parks or exits.
func (k *Kernel) wake(p *Proc) {
	if p.done || !p.blocked {
		return
	}
	p.blocked = false
	prev := k.cur
	k.cur = p
	p.resume <- parkSignal{}
	<-k.parked
	k.cur = prev
}

// park blocks p until the kernel wakes it again.
func (p *Proc) park() {
	p.blocked = true
	p.k.parked <- parkSignal{}
	<-p.resume
	p.gen++
	if p.killed {
		panic(killedPanic{p.name})
	}
}

// wakeEvent returns a callback that wakes p, valid only for p's current
// blocking period: if p has already been woken by something else when the
// callback fires, it is a no-op. Primitives schedule this (via Kernel.At)
// instead of waking directly so equal-time events keep FIFO order.
func (p *Proc) wakeEvent() func() {
	g := p.gen
	return func() {
		if !p.done && p.blocked && p.gen == g {
			p.k.wake(p)
		}
	}
}

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// TraceCtx returns the process's trace context (nil when untraced). The
// value is opaque to sim; internal/trace owns its concrete type.
func (p *Proc) TraceCtx() any { return p.tctx }

// SetTraceCtx installs v as the process's trace context. RPC handler
// processes use it to adopt the caller's context carried over the wire.
func (p *Proc) SetTraceCtx(v any) { p.tctx = v }

// QoSCtx returns the process's QoS context (nil when untagged). The value
// is opaque to sim; internal/qos owns its concrete type.
func (p *Proc) QoSCtx() any { return p.qctx }

// SetQoSCtx installs v as the process's QoS context. The controller tags
// ops at the front door; RPC handlers adopt the caller's tag over the wire.
func (p *Proc) SetQoSCtx(v any) { p.qctx = v }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Sleep blocks the process for d of virtual time. Non-positive durations
// yield to other events scheduled at the current time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.At(k.now.Add(d), p.wakeEvent())
	p.park()
}

// Yield lets every other event already scheduled at the current time run
// before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
