package sim

// Mailbox is an unbounded FIFO queue connecting processes (and plain
// callbacks) on the same kernel. Send never blocks; Recv blocks the calling
// process until a value is available. Values are delivered in send order,
// and blocked receivers are served in arrival order.
type Mailbox[T any] struct {
	k       *Kernel
	q       []T
	waiters []*Proc
}

// NewMailbox returns an empty mailbox bound to k.
func NewMailbox[T any](k *Kernel) *Mailbox[T] {
	return &Mailbox[T]{k: k}
}

// Send enqueues v and wakes one blocked receiver, if any.
func (m *Mailbox[T]) Send(v T) {
	m.q = append(m.q, v)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.k.At(m.k.now, w.wakeEvent())
	}
}

// Recv blocks p until a value is available and returns it.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for len(m.q) == 0 {
		m.waiters = append(m.waiters, p)
		p.park()
	}
	v := m.q[0]
	var zero T
	m.q[0] = zero
	m.q = m.q[1:]
	return v
}

// TryRecv returns the next value without blocking; ok is false if empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if len(m.q) == 0 {
		return v, false
	}
	v = m.q[0]
	var zero T
	m.q[0] = zero
	m.q = m.q[1:]
	return v, true
}

// Len reports the number of queued values.
func (m *Mailbox[T]) Len() int { return len(m.q) }

// Future is a single-assignment value that processes can wait on.
// The zero Future is not usable; construct with NewFuture.
type Future[T any] struct {
	k         *Kernel
	set       bool
	v         T
	waiters   []*Proc
	callbacks []func(T)
}

// NewFuture returns an unset future bound to k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Set assigns the value and wakes all waiters. Setting twice panics: a
// future models exactly-once completion (e.g. an RPC reply).
func (f *Future[T]) Set(v T) {
	if f.set {
		panic("sim: Future set twice")
	}
	f.set = true
	f.v = v
	for _, w := range f.waiters {
		f.k.At(f.k.now, w.wakeEvent())
	}
	f.waiters = nil
	for _, cb := range f.callbacks {
		cb := cb
		f.k.At(f.k.now, func() { cb(v) })
	}
	f.callbacks = nil
}

// Done reports whether the future has been set.
func (f *Future[T]) Done() bool { return f.set }

// Wait blocks p until the future is set, then returns the value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.set {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.v
}

// OnDone registers fn to be scheduled when the future is set. If the future
// is already set, fn is scheduled immediately.
func (f *Future[T]) OnDone(fn func(T)) {
	if f.set {
		v := f.v
		f.k.At(f.k.now, func() { fn(v) })
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// WaitAll blocks p until every future in fs is set.
func WaitAll[T any](p *Proc, fs ...*Future[T]) {
	for _, f := range fs {
		f.Wait(p)
	}
}

// Semaphore is a counting semaphore for modeling limited resources
// (e.g. controller CPU slots). Waiters acquire in FIFO order.
type Semaphore struct {
	k       *Kernel
	avail   int
	waiters []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	return &Semaphore{k: k, avail: n}
}

// Acquire blocks p until n permits are available, then takes them.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return
	}
	s.waiters = append(s.waiters, semWaiter{p, n})
	for {
		p.park()
		if len(s.waiters) > 0 && s.waiters[0].p == p && s.avail >= n {
			s.waiters = s.waiters[1:]
			s.avail -= n
			s.kick()
			return
		}
	}
}

// Release returns n permits and wakes eligible waiters.
func (s *Semaphore) Release(n int) {
	s.avail += n
	s.kick()
}

func (s *Semaphore) kick() {
	if len(s.waiters) > 0 && s.avail >= s.waiters[0].n {
		w := s.waiters[0].p
		s.k.At(s.k.now, w.wakeEvent())
	}
}

// Available reports the current number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Group counts outstanding work items, letting a process wait for all of
// them to finish — the virtual-time analogue of sync.WaitGroup.
type Group struct {
	k       *Kernel
	n       int
	waiters []*Proc
}

// NewGroup returns an empty group bound to k.
func NewGroup(k *Kernel) *Group { return &Group{k: k} }

// Add registers delta additional work items.
func (g *Group) Add(delta int) { g.n += delta }

// Done marks one work item finished.
func (g *Group) Done() {
	g.n--
	if g.n < 0 {
		panic("sim: Group counter went negative")
	}
	if g.n == 0 {
		for _, w := range g.waiters {
			g.k.At(g.k.now, w.wakeEvent())
		}
		g.waiters = nil
	}
}

// Wait blocks p until the counter reaches zero.
func (g *Group) Wait(p *Proc) {
	for g.n > 0 {
		g.waiters = append(g.waiters, p)
		p.park()
	}
}

// Pending reports the current counter value.
func (g *Group) Pending() int { return g.n }

// Mutex serializes processes over a critical section in FIFO order.
type Mutex struct {
	sem *Semaphore
}

// NewMutex returns an unlocked mutex bound to k.
func NewMutex(k *Kernel) *Mutex { return &Mutex{sem: NewSemaphore(k, 1)} }

// Lock blocks p until the mutex is acquired.
func (m *Mutex) Lock(p *Proc) { m.sem.Acquire(p, 1) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.sem.Release(1) }
