// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every component of the storage system runs on virtual time supplied by a
// Kernel. Work is expressed either as plain scheduled callbacks (At/After) or
// as cooperatively scheduled processes (Go) that may block on Sleep, Mailbox,
// Future and Semaphore primitives. Exactly one process or callback executes
// at any instant, and events at equal times fire in scheduling order, so a
// run is fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is an absolute virtual time in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis reports d as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports t as a floating-point number of seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Kernel is a discrete-event scheduler with a virtual clock.
//
// A Kernel is not safe for concurrent use; all interaction must happen from
// the goroutine that calls Run (directly or from within scheduled callbacks
// and processes, which the kernel serializes).
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	parked chan parkSignal
	procs  map[*Proc]struct{}
	closed bool
	// stopAt, when nonzero, bounds Run: events after it stay queued.
	stopAt Time
	// cur is the process currently executing, nil while the kernel itself
	// (or a plain callback) runs. Go uses it to inherit trace context into
	// child processes. All access is ordered by the resume/parked handoff.
	cur *Proc
}

type parkSignal struct{}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan parkSignal),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// At schedules fn to run at absolute time t. Times in the past run "now"
// (the kernel clock never moves backward).
func (k *Kernel) At(t Time, fn func()) {
	if k.closed {
		return
	}
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Run executes events until the queue is empty.
func (k *Kernel) Run() { k.run(0) }

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled after t remain queued for a later Run/RunUntil.
func (k *Kernel) RunUntil(t Time) { k.run(t) }

// RunFor executes events for d of virtual time from now.
func (k *Kernel) RunFor(d Duration) { k.run(k.now.Add(d)) }

func (k *Kernel) run(until Time) {
	for len(k.events) > 0 {
		if until != 0 && k.events.peek().at > until {
			break
		}
		e := heap.Pop(&k.events).(*event)
		if e.at > k.now {
			k.now = e.at
		}
		e.fn()
	}
	if until > k.now {
		k.now = until
	}
}

// Close terminates every blocked process (their stack frames unwind via an
// internal panic recovered by the kernel) and drops all queued events. It is
// safe to call Close more than once. After Close the kernel is inert.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.events = nil
	for p := range k.procs {
		if p.blocked {
			p.killed = true
			p.resume <- parkSignal{}
			<-k.parked
		}
	}
	k.procs = nil
}
