package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, d := range []Duration{5, 1, 3, 2, 4} {
		d := d
		k.After(d*Millisecond, func() { got = append(got, k.Now()) })
	}
	k.Run()
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != Time(5*Millisecond) {
		t.Fatalf("final time = %v, want 5ms", k.Now())
	}
}

func TestKernelEqualTimesFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(Millisecond), func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO at equal time)", i, v, i)
		}
	}
}

// Property: regardless of insertion order, events fire sorted by time.
func TestKernelOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel(1)
		var fired []Time
		for _, d := range delays {
			k.After(Duration(d)*Microsecond, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var trace []string
	k.After(Millisecond, func() {
		trace = append(trace, "a")
		k.After(Millisecond, func() { trace = append(trace, "c") })
		k.After(0, func() { trace = append(trace, "b") })
	})
	k.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*Time(Second), func() { count++ })
	}
	k.RunUntil(Time(5 * Second))
	if count != 5 {
		t.Fatalf("ran %d events by t=5s, want 5", count)
	}
	if k.Now() != Time(5*Second) {
		t.Fatalf("now = %v, want 5s", k.Now())
	}
	k.Run()
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestKernelRunForAdvancesIdleClock(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(3 * Second)
	if k.Now() != Time(3*Second) {
		t.Fatalf("now = %v, want 3s with empty queue", k.Now())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * Millisecond)
		woke = p.Now()
	})
	k.Run()
	if woke != Time(42*Millisecond) {
		t.Fatalf("woke at %v, want 42ms", woke)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel(7)
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(Millisecond)
				}
			})
		}
		k.Run()
		return trace
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic trace length")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic trace at %d: %v vs %v", i, first, again)
			}
		}
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[int](k)
	var got []int
	k.Go("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			mb.Send(i)
			p.Sleep(Millisecond)
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestMailboxBlocksUntilSend(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[string](k)
	var at Time
	k.Go("recv", func(p *Proc) {
		mb.Recv(p)
		at = p.Now()
	})
	k.After(10*Millisecond, func() { mb.Send("hi") })
	k.Run()
	if at != Time(10*Millisecond) {
		t.Fatalf("receiver resumed at %v, want 10ms", at)
	}
}

func TestMailboxManyReceiversArrivalOrder(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[int](k)
	var order []string
	for _, name := range []string{"r1", "r2", "r3"} {
		name := name
		k.Go(name, func(p *Proc) {
			mb.Recv(p)
			order = append(order, name)
		})
	}
	k.After(Millisecond, func() {
		mb.Send(1)
		mb.Send(2)
		mb.Send(3)
	})
	k.Run()
	want := []string{"r1", "r2", "r3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestFutureWaitBeforeAndAfterSet(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var before, after int
	k.Go("early", func(p *Proc) { before = f.Wait(p) })
	k.After(Millisecond, func() { f.Set(99) })
	k.Go("late", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		after = f.Wait(p)
	})
	k.Run()
	if before != 99 || after != 99 {
		t.Fatalf("before=%d after=%d, want 99/99", before, after)
	}
	if !f.Done() {
		t.Fatal("future not done")
	}
}

func TestFutureSetTwicePanics(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Set did not panic")
		}
	}()
	f.Set(2)
}

func TestFutureOnDone(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var got []int
	f.OnDone(func(v int) { got = append(got, v) })
	k.After(Millisecond, func() { f.Set(7) })
	k.Run()
	f.OnDone(func(v int) { got = append(got, v*10) })
	k.Run()
	if len(got) != 2 || got[0] != 7 || got[1] != 70 {
		t.Fatalf("got %v, want [7 70]", got)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		k.Go("worker", func(p *Proc) {
			sem.Acquire(p, 1)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(Millisecond)
			active--
			sem.Release(1)
		})
	}
	k.Run()
	if maxActive != 2 {
		t.Fatalf("max concurrency %d, want 2", maxActive)
	}
	if sem.Available() != 2 {
		t.Fatalf("permits leaked: %d available, want 2", sem.Available())
	}
}

func TestSemaphoreFIFOFairness(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 0)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			p.Sleep(Duration(i) * Microsecond) // stagger arrival
			sem.Acquire(p, 1)
			order = append(order, i)
		})
	}
	k.After(Millisecond, func() { sem.Release(4) })
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("acquire order %v, want FIFO", order)
		}
	}
}

func TestGroupWait(t *testing.T) {
	k := NewKernel(1)
	g := NewGroup(k)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		i := i
		g.Add(1)
		k.Go("w", func(p *Proc) {
			p.Sleep(Duration(i) * Millisecond)
			g.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		g.Wait(p)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt != Time(3*Millisecond) {
		t.Fatalf("group completed at %v, want 3ms", doneAt)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := NewKernel(1)
	mu := NewMutex(k)
	inside := 0
	violated := false
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			mu.Lock(p)
			inside++
			if inside > 1 {
				violated = true
			}
			p.Sleep(Millisecond)
			inside--
			mu.Unlock()
		})
	}
	k.Run()
	if violated {
		t.Fatal("two processes inside mutex-protected section")
	}
}

func TestCloseReleasesBlockedProcs(t *testing.T) {
	k := NewKernel(1)
	mb := NewMailbox[int](k)
	cleaned := false
	k.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		mb.Recv(p) // never satisfied
	})
	k.RunFor(Millisecond)
	k.Close()
	if !cleaned {
		t.Fatal("blocked proc's defers did not run on Close")
	}
}

// Property: a stale wake event from a semaphore must never cut a later Sleep
// short. Regression guard for the wake-generation mechanism.
func TestNoStaleWakeups(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 0)
	var wokeAt Time
	k.Go("victim", func(p *Proc) {
		sem.Acquire(p, 1)
		p.Sleep(10 * Millisecond) // must not be shortened by a second kick
		wokeAt = p.Now()
	})
	k.After(Millisecond, func() {
		sem.Release(1) // schedules wake
		sem.Release(1) // schedules a second (stale) wake for the same proc
	})
	k.Run()
	if wokeAt != Time(11*Millisecond) {
		t.Fatalf("victim woke at %v, want 11ms (stale wake fired)", wokeAt)
	}
}

// Property: kernel RNG is deterministic per seed.
func TestDeterministicRand(t *testing.T) {
	draw := func(seed int64) []int64 {
		k := NewKernel(seed)
		out := make([]int64, 8)
		for i := range out {
			out[i] = k.Rand().Int63()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

// Property: Duration arithmetic helpers are mutually consistent.
func TestDurationConversionsProperty(t *testing.T) {
	f := func(ms uint16) bool {
		d := Duration(ms) * Millisecond
		return d.Seconds() == float64(ms)/1000 && d.Millis() == float64(ms)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsStress(t *testing.T) {
	k := NewKernel(99)
	rng := rand.New(rand.NewSource(5))
	total := 0
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(10)
		k.Go("w", func(p *Proc) {
			for j := 0; j < n; j++ {
				p.Sleep(Duration(rng.Intn(1000)) * Microsecond)
			}
			total++
		})
	}
	k.Run()
	if total != 200 {
		t.Fatalf("only %d/200 procs completed", total)
	}
}
