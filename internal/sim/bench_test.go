package sim

import "testing"

// BenchmarkEventThroughput measures raw scheduler throughput — the budget
// every simulated component spends from.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel(1)
	count := 0
	var schedule func()
	schedule = func() {
		count++
		if count < b.N {
			k.After(Microsecond, schedule)
		}
	}
	b.ResetTimer()
	k.After(Microsecond, schedule)
	k.Run()
}

// BenchmarkProcSwitch measures a process sleep/wake round trip (two
// goroutine handoffs).
func BenchmarkProcSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkMailboxSendRecv measures producer/consumer handoff cost.
func BenchmarkMailboxSendRecv(b *testing.B) {
	k := NewKernel(1)
	mb := NewMailbox[int](k)
	k.Go("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mb.Recv(p)
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mb.Send(i)
			p.Yield()
		}
	})
	b.ResetTimer()
	k.Run()
}
