package balance

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/sim"
)

// planMoves is a pure function of its inputs, so these tests pin exact
// burst schedules without a kernel, scraper, or fabric.

func kh(lba int64, heat float64) coherence.KeyHeat {
	return coherence.KeyHeat{Key: cache.Key{Vol: "v", LBA: lba}, Heat: heat}
}

func planCfg() Config {
	// MinMoveFrac is a power of two and the test heats are scaled so that
	// "exactly at the churn floor" is exact in float64: with mean = 40·s
	// and MinMoveFrac = 1/4, the floor 0.25·(40·s) equals 10·s bit-for-bit
	// (scaling by powers of two is exact), which is the estimated load of
	// a key with heat 10.
	return Config{
		Interval:     250 * sim.Millisecond,
		HeatHalfLife: 250 * sim.Millisecond,
		MaxMoves:     4,
		MinMoveFrac:  0.25,
		KeyCooldown:  sim.Duration(20) * 250 * sim.Millisecond,
	}
}

func heatScale(cfg Config) float64 {
	return math.Ln2 * float64(cfg.Interval) / float64(cfg.HeatHalfLife)
}

// A key whose heat has decayed to EXACTLY the churn floor must not be
// planned: the floor is exclusive. The pre-fix planner used a strict
// comparison (est < floor), so an exactly-at-floor key was re-planned
// every tick, ping-ponging a cold home between blades.
func TestPlanMovesChurnFloorExclusive(t *testing.T) {
	cfg := planCfg()
	s := heatScale(cfg)
	mean := 40 * s
	srcLoad := 100 * s

	cands := []coherence.KeyHeat{
		kh(1, 50), // est 50·s: movable
		kh(2, 10), // est 10·s == 0.25·mean: exactly at the floor
		kh(3, 5),  // colder tail; must never be reached
	}
	targets := []coldBlade{{id: 2, load: 0}, {id: 3, load: 5 * s}}

	plan := planMoves(cfg, sim.Time(0), map[cache.Key]sim.Time{}, cands, targets, mean, srcLoad)
	if len(plan) != 1 {
		t.Fatalf("planned %d moves, want 1 (at-floor key must break the burst): %+v", len(plan), plan)
	}
	if plan[0].cand.Key.LBA != 1 || plan[0].to != 2 {
		t.Fatalf("planned %s/%d -> blade%d, want v/1 -> blade2 (the coldest target)",
			plan[0].cand.Key.Vol, plan[0].cand.Key.LBA, plan[0].to)
	}
}

// A key just above the floor is still planned — the fix must not have
// widened the exclusion.
func TestPlanMovesJustAboveFloorStillMoves(t *testing.T) {
	cfg := planCfg()
	s := heatScale(cfg)
	mean := 40 * s

	cands := []coherence.KeyHeat{kh(1, 11)} // est 11·s > floor 10·s
	targets := []coldBlade{{id: 2, load: 0}}
	plan := planMoves(cfg, sim.Time(0), map[cache.Key]sim.Time{}, cands, targets, mean, 100*s)
	if len(plan) != 1 || plan[0].cand.Key.LBA != 1 {
		t.Fatalf("planned %+v, want the above-floor key moved", plan)
	}
}

// Cooldown is a continue, not a break: a recently-moved hot key is skipped
// and the movable keys after it still get planned, onto coldest-first
// targets whose projected loads update in place.
func TestPlanMovesCooldownSkipsNotBreaks(t *testing.T) {
	cfg := planCfg()
	s := heatScale(cfg)
	mean := 40 * s
	now := sim.Time(cfg.KeyCooldown) // one full cooldown into the run

	lastMoved := map[cache.Key]sim.Time{
		{Vol: "v", LBA: 1}: now - sim.Time(cfg.KeyCooldown)/2, // still cooling
	}
	cands := []coherence.KeyHeat{
		kh(1, 60), // hottest, but cooling down: skipped
		kh(2, 50),
		kh(3, 30),
	}
	targets := []coldBlade{{id: 2, load: 0}, {id: 3, load: 20 * s}}

	plan := planMoves(cfg, now, lastMoved, cands, targets, mean, 200*s)
	if len(plan) != 2 {
		t.Fatalf("planned %d moves, want 2: %+v", len(plan), plan)
	}
	// Key 2 (est 50·s) takes blade2 (load 0), projecting it to 50·s; key 3
	// (est 30·s) then finds blade3 (20·s) the coldest and fits under the
	// mean+half-est bound (50·s < 40·s+15·s).
	if plan[0].cand.Key.LBA != 2 || plan[0].to != 2 {
		t.Fatalf("first move %+v, want v/2 -> blade2", plan[0])
	}
	if plan[1].cand.Key.LBA != 3 || plan[1].to != 3 {
		t.Fatalf("second move %+v, want v/3 -> blade3", plan[1])
	}
}

// A single dominant key whose load no target can absorb stays pinned, and
// the burst stops once the source is projected at the mean.
func TestPlanMovesDominantKeyPinnedAndMeanStop(t *testing.T) {
	cfg := planCfg()
	s := heatScale(cfg)
	mean := 40 * s

	cands := []coherence.KeyHeat{
		kh(1, 100), // est 100·s: 0+100·s > mean+50·s — no target can absorb
		kh(2, 50),
		kh(3, 45), // never reached: source hits the mean after key 2
	}
	targets := []coldBlade{{id: 2, load: 0}}
	plan := planMoves(cfg, sim.Time(0), map[cache.Key]sim.Time{}, cands, targets, mean, 90*s)
	if len(plan) != 1 || plan[0].cand.Key.LBA != 2 {
		t.Fatalf("planned %+v, want only v/2 (dominant pinned, then mean stop)", plan)
	}
}

// pruneCooldowns drops exactly the entries whose cooldown has elapsed.
func TestPruneCooldowns(t *testing.T) {
	cfg := planCfg()
	now := sim.Time(10 * cfg.KeyCooldown)
	c := &Controller{cfg: cfg, lastMoved: map[cache.Key]sim.Time{
		{Vol: "v", LBA: 1}: now - sim.Time(cfg.KeyCooldown),     // exactly elapsed: dropped
		{Vol: "v", LBA: 2}: now - sim.Time(cfg.KeyCooldown) + 1, // one tick left: kept
		{Vol: "v", LBA: 3}: now - 2*sim.Time(cfg.KeyCooldown),   // long gone: dropped
	}}
	c.pruneCooldowns(now)
	if len(c.lastMoved) != 1 {
		t.Fatalf("kept %d entries, want 1: %v", len(c.lastMoved), c.lastMoved)
	}
	if _, ok := c.lastMoved[cache.Key{Vol: "v", LBA: 2}]; !ok {
		t.Fatalf("the still-cooling key was pruned: %v", c.lastMoved)
	}
}
