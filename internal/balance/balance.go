// Package balance closes the loop the paper sketches in §2.2/§6.3: the
// blade caches pool into one coherent cache, and "load balancing removes
// the per-controller hot-spot". PR-3's telemetry watchdog only *detects*
// per-blade load skew; this package *acts* on it. A virtual-time
// controller watches the scraper's per-blade load series and, when skew
// stays above the hot-spot thresholds for a configured number of
// intervals, migrates the directory homes of the hottest blocks from the
// hottest blade to underloaded blades via the coherence layer's
// migrate/adopt/sethome exchange.
//
// Everything the controller reads (scrape deltas, per-key heat) and every
// order it iterates in (sorted blade IDs, heat-ranked keys with
// deterministic tie-breaks) is a pure function of virtual time and the
// seed, so two same-seed runs make byte-identical decisions.
package balance

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config tunes the rebalance controller. Zero values select defaults that
// mirror the telemetry hot-spot watchdog, so "the watchdog would fire"
// and "the balancer acts" describe the same condition.
type Config struct {
	// Interval is the controller's tick period (default: the scraper's
	// interval). Ticks with no fresh scrape are no-ops.
	Interval sim.Duration
	// Pattern selects the per-blade load series (default "blade/*/ops";
	// the '*' segment must be the blade ID).
	Pattern string
	// CVMax / RatioMax / MinTotal / For mirror telemetry.HotSpot: the
	// per-interval deltas must show CV > CVMax AND max/mean > RatioMax
	// with at least MinTotal total load for For consecutive ticks before
	// the controller migrates anything.
	CVMax    float64
	RatioMax float64
	MinTotal float64
	For      int
	// MaxMoves bounds home migrations per burst (default 4).
	MaxMoves int
	// KeyCooldown is how long a migrated key is exempt from further
	// moves (default 20 intervals). A single dominant key can overload
	// whichever blade homes it; without a cooldown the controller
	// ping-pongs it between blades forever instead of spreading the
	// movable warm keys around it.
	KeyCooldown sim.Duration
	// MinMoveFrac is the churn floor: candidates whose estimated load is
	// below this fraction of the per-blade mean are not worth a
	// migration RPC (default 0.02). Lower it to drain skew built from
	// many medium-heat keys.
	MinMoveFrac float64
	// HeatHalfLife must match the engines' heat decay half-life (default
	// 250 ms, the coherence default); it converts a key's decayed heat
	// into an estimated per-interval load when planning a burst.
	HeatHalfLife sim.Duration
}

// Deps wires the controller into a cluster.
type Deps struct {
	K       *sim.Kernel
	Scraper *telemetry.Scraper
	// Engines holds every blade's coherence engine, indexed by blade ID
	// (management-plane inspection: heat ranking and home validation).
	Engines []*coherence.Engine
	// Alive reports the live blade IDs (sorted).
	Alive func() []int
	// Conn is the controller's own fabric endpoint; Peers are the blade
	// addresses, indexed by blade ID. Migrations are real fabric RPCs.
	Conn  *simnet.Conn
	Peers []simnet.Addr
	// Tracer, when non-nil and enabled, records one Balance-phase root
	// span per migration with the coherence exchange nested under it.
	Tracer *trace.Tracer
	// Retry is the RPC retry policy for migrate calls.
	Retry simnet.RetryPolicy
}

// Decision is one committed home migration.
type Decision struct {
	T    sim.Time
	Key  cache.Key
	From int
	To   int
	Heat float64
}

func (d Decision) String() string {
	return fmt.Sprintf("t=%.0fms %s/%d: blade%d -> blade%d (heat %.1f)",
		sim.Duration(d.T).Millis(), d.Key.Vol, d.Key.LBA, d.From, d.To, d.Heat)
}

// Stats counts controller activity.
type Stats struct {
	Ticks      int64 // ticks with a fresh scrape evaluated
	Bursts     int64 // skew episodes that triggered migrations
	Migrations int64 // homes moved
	Skipped    int64 // candidates declined by the home or failed RPCs
}

// Controller is the rebalance feedback loop.
type Controller struct {
	k    *sim.Kernel
	cfg  Config
	deps Deps

	enabled bool
	started bool
	stopped bool
	busy    bool // a migration burst is in flight; ticks skip until done

	streak      int
	lastScrapes int64
	stats       Stats
	decisions   []Decision
	lastMoved   map[cache.Key]sim.Time
}

// New builds a controller. It starts enabled; SetEnabled(false) parks it
// (ticks still fire but evaluate nothing).
func New(cfg Config, deps Deps) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = deps.Scraper.Interval()
	}
	if cfg.Pattern == "" {
		cfg.Pattern = "blade/*/ops"
	}
	if cfg.CVMax <= 0 {
		cfg.CVMax = 0.5
	}
	if cfg.RatioMax <= 0 {
		cfg.RatioMax = 2
	}
	if cfg.MinTotal <= 0 {
		cfg.MinTotal = 1
	}
	if cfg.For <= 0 {
		cfg.For = 2
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 4
	}
	if cfg.KeyCooldown <= 0 {
		cfg.KeyCooldown = 20 * cfg.Interval
	}
	if cfg.HeatHalfLife <= 0 {
		cfg.HeatHalfLife = 250 * sim.Millisecond
	}
	if cfg.MinMoveFrac <= 0 {
		cfg.MinMoveFrac = 0.02
	}
	return &Controller{k: deps.K, cfg: cfg, deps: deps, enabled: true,
		lastMoved: make(map[cache.Key]sim.Time)}
}

// SetEnabled turns the feedback loop on or off; disabling also resets the
// skew streak so re-enabling requires fresh evidence.
func (c *Controller) SetEnabled(on bool) {
	c.enabled = on
	if !on {
		c.streak = 0
	}
}

// Enabled reports whether the loop acts on skew.
func (c *Controller) Enabled() bool { return c.enabled }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Decisions returns the committed migration log in decision order.
func (c *Controller) Decisions() []Decision {
	return append([]Decision(nil), c.decisions...)
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// RegisterTelemetry publishes the controller's counters under s.
func (c *Controller) RegisterTelemetry(s telemetry.Scope) {
	s.Int("ticks", func() int64 { return c.stats.Ticks })
	s.Int("bursts", func() int64 { return c.stats.Bursts })
	s.Int("migrations", func() int64 { return c.stats.Migrations })
	s.Int("skipped", func() int64 { return c.stats.Skipped })
}

// Start schedules the periodic tick (first tick one interval from now) and
// returns a stop function.
func (c *Controller) Start() (stop func()) {
	if c.started {
		panic("balance: controller already started")
	}
	c.started = true
	c.stopped = false
	var tick func()
	tick = func() {
		if c.stopped {
			return
		}
		c.k.Go("balance", func(p *sim.Proc) {
			// Home migration is a storage service; its fabric and disk
			// work rides the background QoS lane.
			qos.TagBackground(p)
			c.tick(p)
		})
		c.k.After(c.cfg.Interval, tick)
	}
	c.k.After(c.cfg.Interval, tick)
	return func() {
		c.stopped = true
		c.started = false
	}
}

// bladeFromName extracts the blade ID occupying pattern's '*' segment
// (e.g. "blade/*/ops" matches "blade/3/ops" → 3). Returns -1 when the
// name does not carry an ID there.
func bladeFromName(pattern, name string) int {
	ps := strings.Split(pattern, "/")
	ns := strings.Split(name, "/")
	if len(ps) != len(ns) {
		return -1
	}
	for i, seg := range ps {
		if seg == "*" {
			if id, err := strconv.Atoi(ns[i]); err == nil {
				return id
			}
			return -1
		}
	}
	return -1
}

// loads returns the last inter-scrape delta of the matched series per live
// blade, in sorted blade-ID order.
func (c *Controller) loads() (ids []int, deltas []float64) {
	scr := c.deps.Scraper
	aliveSet := make(map[int]bool)
	for _, b := range c.deps.Alive() {
		aliveSet[b] = true
	}
	byBlade := make(map[int]float64)
	for _, name := range scr.Registry().Match(c.cfg.Pattern) {
		id := bladeFromName(c.cfg.Pattern, name)
		if id < 0 || !aliveSet[id] {
			continue
		}
		s := scr.Series(name)
		if len(s) < 2 {
			continue
		}
		byBlade[id] += s[len(s)-1] - s[len(s)-2]
	}
	for id := range byBlade {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		deltas = append(deltas, byBlade[id])
	}
	return ids, deltas
}

// tick evaluates one control interval.
func (c *Controller) tick(p *sim.Proc) {
	if !c.enabled || c.busy {
		return
	}
	scr := c.deps.Scraper
	n := scr.Scrapes()
	if n < 2 || n == c.lastScrapes {
		return // no fresh delta to act on
	}
	c.lastScrapes = n
	c.stats.Ticks++

	ids, deltas := c.loads()
	if len(ids) < 2 {
		c.streak = 0
		return // one blade cannot be imbalanced
	}
	st := metrics.Summarize(deltas)
	total := st.Mean * float64(st.N)
	skewed := total >= c.cfg.MinTotal && st.CV() > c.cfg.CVMax && st.Max/st.Mean > c.cfg.RatioMax
	if !skewed {
		c.streak = 0
		return
	}
	c.streak++
	if c.streak < c.cfg.For {
		return
	}
	// Sustained skew: pick the hottest blade as the source and spread its
	// hottest homes across the blades running below the mean.
	src, srcLoad := ids[0], deltas[0]
	for i, id := range ids {
		if deltas[i] > srcLoad {
			src, srcLoad = id, deltas[i]
		}
	}
	var targets []coldBlade
	for i, id := range ids {
		if id != src && deltas[i] < st.Mean {
			targets = append(targets, coldBlade{id, deltas[i]})
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].load != targets[j].load {
			return targets[i].load < targets[j].load
		}
		return targets[i].id < targets[j].id
	})
	if len(targets) == 0 || src >= len(c.deps.Engines) {
		c.streak = 0
		return
	}
	now := c.k.Now()
	c.pruneCooldowns(now)
	cands := c.deps.Engines[src].HottestHomes(c.cfg.MaxMoves * 4)
	plan := planMoves(c.cfg, now, c.lastMoved, cands, targets, st.Mean, srcLoad)
	if len(plan) == 0 {
		c.streak = 0
		return
	}
	c.stats.Bursts++
	c.busy = true
	c.k.Go("balance-migrate", func(q *sim.Proc) {
		defer func() { c.busy = false }()
		for _, m := range plan {
			c.migrate(q, m.cand, src, m.to)
		}
		// Re-arm only after For more skewed intervals: the moves need a
		// full interval to show up in the load series.
		c.streak = 0
	})
}

// coldBlade is a migration target with its projected load.
type coldBlade struct {
	id   int
	load float64
}

// move is one planned home migration.
type move struct {
	cand coherence.KeyHeat
	to   int
}

// planMoves plans one migration burst: hand each candidate (heat-
// descending order expected) to the coldest projected target, stop once
// the source is projected at the mean, and drop tail keys whose move
// would not measurably shift load. It is a pure function of its inputs —
// no engine, clock, or fabric access — so regression tests can pin an
// exact schedule. targets' projected loads are updated in place.
func planMoves(cfg Config, now sim.Time, lastMoved map[cache.Key]sim.Time,
	cands []coherence.KeyHeat, targets []coldBlade, mean, srcLoad float64) []move {
	// A key's decayed heat, scaled to the scrape interval, estimates the
	// load its home carries per interval.
	scale := math.Ln2 * float64(cfg.Interval) / float64(cfg.HeatHalfLife)
	srcProj := srcLoad
	var plan []move
	for _, cand := range cands {
		if len(plan) >= cfg.MaxMoves || srcProj <= mean {
			break
		}
		if t, ok := lastMoved[cand.Key]; ok && now.Sub(t) < cfg.KeyCooldown {
			continue // recently moved: spread the movable keys around it
		}
		est := cand.Heat * scale
		if est <= cfg.MinMoveFrac*mean {
			// Heat-descending order: the rest is tail churn. The floor is
			// exclusive — a key whose heat has decayed to exactly the
			// churn floor is already indistinguishable from tail noise,
			// and re-planning it every tick just ping-pongs a cold home.
			break
		}
		best := -1
		for i := range targets {
			if best < 0 || targets[i].load < targets[best].load {
				best = i
			}
		}
		if targets[best].load+est > mean+0.5*est {
			// No target can absorb this key without becoming the next hot
			// spot. In particular a single dominant key whose load exceeds
			// the fair share stays pinned wherever it is — migrating it
			// would only relocate the bottleneck — and the controller
			// spreads the movable warm keys around it instead.
			continue
		}
		plan = append(plan, move{cand, targets[best].id})
		targets[best].load += est
		srcProj -= est
	}
	return plan
}

// pruneCooldowns drops lastMoved entries whose cooldown has fully
// elapsed: they can no longer affect planning, and without pruning the
// map grows with every key ever migrated.
func (c *Controller) pruneCooldowns(now sim.Time) {
	for k, t := range c.lastMoved {
		if now.Sub(t) >= c.cfg.KeyCooldown {
			delete(c.lastMoved, k)
		}
	}
}

// migrate commits one home move via the coherence protocol, under a
// Balance-phase trace span.
func (c *Controller) migrate(p *sim.Proc, cand coherence.KeyHeat, from, to int) {
	var sp *trace.Active
	if c.deps.Tracer.Enabled() {
		sp = c.deps.Tracer.StartTrace("migrate", trace.Balance, "balancer").
			Detail("%s/%d blade%d->blade%d heat=%.1f", cand.Key.Vol, cand.Key.LBA, from, to, cand.Heat)
		defer sp.End()
		defer sp.Push(p)()
	}
	moved, err := coherence.RequestMigrate(p, c.deps.Conn, c.deps.Peers[from], cand.Key, to, c.deps.Retry)
	if err != nil || !moved {
		c.stats.Skipped++
		return
	}
	c.stats.Migrations++
	c.lastMoved[cand.Key] = p.Now()
	c.decisions = append(c.decisions, Decision{T: p.Now(), Key: cand.Key, From: from, To: to, Heat: cand.Heat})
}

// Scheme identifies the controller's rebalancing strategy (the
// core.Rebalancer interface; the hotcache tier answers "hotcache").
func (c *Controller) Scheme() string { return "migrate" }

// Status is the one-line state summary yottactl prints.
func (c *Controller) Status() string {
	return fmt.Sprintf("balance: enabled=%v ticks=%d bursts=%d migrations=%d skipped=%d",
		c.enabled, c.stats.Ticks, c.stats.Bursts, c.stats.Migrations, c.stats.Skipped)
}

// Report renders the decision log plus counters for CLI status output.
func (c *Controller) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Status())
	for _, d := range c.decisions {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}
