package virt

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrNoSpaceOn is returned when a target device has no free extents.
var ErrNoSpaceOn = errors.New("virt: no free extents on target device")

// allocOn pops a free extent living on device dev.
func (pl *Pool) allocOn(dev int) (extentRef, error) {
	for i := len(pl.free) - 1; i >= 0; i-- {
		if pl.free[i].dev == dev {
			e := pl.free[i]
			pl.free = append(pl.free[:i], pl.free[i+1:]...)
			pl.refcount[e] = 1
			return e, nil
		}
	}
	return extentRef{}, fmt.Errorf("%w: device %d", ErrNoSpaceOn, dev)
}

// ExtentDevice reports which backing device holds virtual extent ext
// (-1 when unmapped) — the observability side of §3's virtualization.
func (v *Volume) ExtentDevice(ext int64) int {
	if e, ok := v.mapping[ext]; ok {
		return e.dev
	}
	return -1
}

// MigrateExtent moves one mapped virtual extent onto device toDev: the
// data is copied and only the virtual-to-real mapping changes — hosts
// keep addressing the same virtual blocks throughout ("changes in the
// physical location of storage blocks … accommodated by a simple update
// of the virtual-to-real mappings", §3). Extents shared with snapshots
// are copied away; the snapshot keeps the original.
func (v *Volume) MigrateExtent(p *sim.Proc, ext int64, toDev int) error {
	if v.deleted {
		return fmt.Errorf("virt: volume %q deleted", v.name)
	}
	if v.kind == Snapshot {
		return ErrReadOnly
	}
	if toDev < 0 || toDev >= len(v.pool.devices) {
		return fmt.Errorf("virt: no device %d", toDev)
	}
	if v.cowMu == nil {
		v.cowMu = sim.NewMutex(v.pool.k)
	}
	v.cowMu.Lock(p)
	defer v.cowMu.Unlock()
	old, ok := v.mapping[ext]
	if !ok {
		return fmt.Errorf("virt: extent %d not mapped", ext)
	}
	if old.dev == toDev {
		return nil
	}
	ne, err := v.pool.allocOn(toDev)
	if err != nil {
		return err
	}
	data, err := v.pool.devices[old.dev].Read(p, old.start, int(v.pool.extentBlocks))
	if err != nil {
		v.pool.unref(ne)
		return err
	}
	if err := v.pool.devices[ne.dev].Write(p, ne.start, data); err != nil {
		v.pool.unref(ne)
		return err
	}
	v.pool.unref(old)
	v.mapping[ext] = ne
	return nil
}

// DeviceLoad reports how many allocated extents live on each device.
func (pl *Pool) DeviceLoad() []int64 {
	load := make([]int64, len(pl.devices))
	for e, rc := range pl.refcount {
		if rc > 0 {
			load[e.dev]++
		}
	}
	return load
}

// Evacuate migrates every writable volume's extents off device dev —
// the online decommissioning that lets the system be upgraded
// "incrementally … never taken down for maintenance" (§6.3). Snapshots
// pin their shared extents; those stay (the caller deletes or ages out
// snapshots first for a full drain). Returns the number of extents moved.
func (pl *Pool) Evacuate(p *sim.Proc, dev int) (int, error) {
	if dev < 0 || dev >= len(pl.devices) {
		return 0, fmt.Errorf("virt: no device %d", dev)
	}
	moved := 0
	for _, v := range pl.volumes {
		if v.kind == Snapshot {
			continue
		}
		for ext, e := range v.mapping {
			if e.dev != dev {
				continue
			}
			target := pl.pickTargetAvoiding(dev)
			if target < 0 {
				return moved, fmt.Errorf("%w: nowhere to evacuate", ErrPoolExhausted)
			}
			if err := v.MigrateExtent(p, ext, target); err != nil {
				return moved, err
			}
			moved++
		}
	}
	return moved, nil
}

// pickTargetAvoiding returns the least-loaded device with free space,
// excluding avoid (-1 if none).
func (pl *Pool) pickTargetAvoiding(avoid int) int {
	freeByDev := make([]int64, len(pl.devices))
	for _, e := range pl.free {
		freeByDev[e.dev]++
	}
	load := pl.DeviceLoad()
	best, bestLoad := -1, int64(1<<62)
	for d := range pl.devices {
		if d == avoid || freeByDev[d] == 0 {
			continue
		}
		if load[d] < bestLoad {
			best, bestLoad = d, load[d]
		}
	}
	return best
}

// Rebalance migrates extents from the most-loaded to the least-loaded
// devices until the spread (max-min) is at most tolerance extents.
// Returns the number of extents moved.
func (pl *Pool) Rebalance(p *sim.Proc, tolerance int64) (int, error) {
	if tolerance < 1 {
		tolerance = 1
	}
	moved := 0
	for iter := 0; iter < 10000; iter++ {
		load := pl.DeviceLoad()
		maxD, minD := 0, 0
		for d := range load {
			if load[d] > load[maxD] {
				maxD = d
			}
			if load[d] < load[minD] {
				minD = d
			}
		}
		if load[maxD]-load[minD] <= tolerance {
			return moved, nil
		}
		// Find one migratable extent on maxD.
		migrated := false
		for _, v := range pl.volumes {
			if v.kind == Snapshot {
				continue
			}
			for ext, e := range v.mapping {
				if e.dev != maxD {
					continue
				}
				if err := v.MigrateExtent(p, ext, minD); err != nil {
					return moved, err
				}
				moved++
				migrated = true
				break
			}
			if migrated {
				break
			}
		}
		if !migrated {
			return moved, nil // only snapshot-pinned extents remain
		}
	}
	return moved, nil
}
