// Package virt implements the paper's storage virtualization layer (§3):
// a shared pool of physical extents carved from backing devices (RAID
// groups), classic fully-provisioned virtual volumes, demand-mapped storage
// devices (DMSDs) whose virtual-to-real mappings are created on first write
// and freed on trim, and copy-on-write snapshots (§7.2).
package virt

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// BlockDevice is the abstraction the pool carves extents from — in the full
// system a raid.Group, in unit tests any in-memory implementation.
type BlockDevice interface {
	BlockSize() int
	Capacity() int64
	Read(p *sim.Proc, lba int64, count int) ([]byte, error)
	Write(p *sim.Proc, lba int64, data []byte) error
}

// ErrPoolExhausted is returned when no free extents remain.
var ErrPoolExhausted = errors.New("virt: pool exhausted")

// ErrOutOfRange is returned for I/O beyond a volume's virtual size.
var ErrOutOfRange = errors.New("virt: access out of volume range")

// ErrReadOnly is returned for writes to snapshots.
var ErrReadOnly = errors.New("virt: volume is read-only")

// extentRef locates one physical extent.
type extentRef struct {
	dev   int
	start int64 // starting block on the device
}

// Pool manages physical extents across backing devices and the volumes
// mapped onto them.
type Pool struct {
	k            *sim.Kernel
	devices      []BlockDevice
	extentBlocks int64
	blockSize    int
	free         []extentRef
	refcount     map[extentRef]int
	volumes      map[string]*Volume
	nextAlloc    int // round-robin cursor over devices at build time
	totalExtents int64
}

// NewPool builds a pool over devices, dividing each into extents of
// extentBlocks blocks. All devices must share a block size.
func NewPool(k *sim.Kernel, extentBlocks int64, devices ...BlockDevice) (*Pool, error) {
	if len(devices) == 0 {
		return nil, errors.New("virt: pool needs at least one device")
	}
	if extentBlocks <= 0 {
		return nil, errors.New("virt: extent size must be positive")
	}
	bs := devices[0].BlockSize()
	pl := &Pool{
		k:            k,
		devices:      devices,
		extentBlocks: extentBlocks,
		blockSize:    bs,
		refcount:     make(map[extentRef]int),
		volumes:      make(map[string]*Volume),
	}
	// Interleave extents across devices so consecutive allocations land on
	// different spindle groups — the pool-wide load spreading of §2.
	perDev := make([][]extentRef, len(devices))
	for i, d := range devices {
		if d.BlockSize() != bs {
			return nil, errors.New("virt: mixed block sizes in pool")
		}
		n := d.Capacity() / extentBlocks
		for e := int64(0); e < n; e++ {
			perDev[i] = append(perDev[i], extentRef{dev: i, start: e * extentBlocks})
		}
	}
	for round := 0; ; round++ {
		added := false
		for i := range perDev {
			if round < len(perDev[i]) {
				pl.free = append(pl.free, perDev[i][round])
				added = true
			}
		}
		if !added {
			break
		}
	}
	// Allocate from the front: reverse so pop-from-end yields interleaved order.
	for i, j := 0, len(pl.free)-1; i < j; i, j = i+1, j-1 {
		pl.free[i], pl.free[j] = pl.free[j], pl.free[i]
	}
	pl.totalExtents = int64(len(pl.free))
	return pl, nil
}

// BlockSize returns the pool's block size in bytes.
func (pl *Pool) BlockSize() int { return pl.blockSize }

// ExtentBlocks returns the extent size in blocks.
func (pl *Pool) ExtentBlocks() int64 { return pl.extentBlocks }

// ExtentBytes returns the extent size in bytes.
func (pl *Pool) ExtentBytes() int64 { return pl.extentBlocks * int64(pl.blockSize) }

// TotalExtents returns the pool's physical extent count.
func (pl *Pool) TotalExtents() int64 { return pl.totalExtents }

// FreeExtents returns the number of unallocated extents.
func (pl *Pool) FreeExtents() int64 { return int64(len(pl.free)) }

// AllocatedExtents returns extents currently referenced by volumes or
// snapshots.
func (pl *Pool) AllocatedExtents() int64 { return pl.totalExtents - int64(len(pl.free)) }

// AllocatedBytes returns the physically consumed capacity.
func (pl *Pool) AllocatedBytes() int64 { return pl.AllocatedExtents() * pl.ExtentBytes() }

// Volumes returns the live volumes by name.
func (pl *Pool) Volumes() map[string]*Volume { return pl.volumes }

func (pl *Pool) alloc() (extentRef, error) {
	if len(pl.free) == 0 {
		return extentRef{}, ErrPoolExhausted
	}
	e := pl.free[len(pl.free)-1]
	pl.free = pl.free[:len(pl.free)-1]
	pl.refcount[e] = 1
	return e, nil
}

func (pl *Pool) ref(e extentRef) { pl.refcount[e]++ }

func (pl *Pool) unref(e extentRef) {
	pl.refcount[e]--
	if pl.refcount[e] < 0 {
		panic("virt: extent refcount negative")
	}
	if pl.refcount[e] == 0 {
		delete(pl.refcount, e)
		pl.free = append(pl.free, e)
	}
}

// Kind distinguishes volume provisioning models.
type Kind int

const (
	// Thick volumes allocate their full size at creation — the
	// "traditional virtual disk" the paper contrasts against.
	Thick Kind = iota
	// Demand volumes (DMSDs) map extents on first write (§3).
	Demand
	// Snapshot volumes are read-only point-in-time images (§7.2).
	Snapshot
)

func (k Kind) String() string {
	switch k {
	case Thick:
		return "thick"
	case Demand:
		return "dmsd"
	case Snapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// CreateVolume creates a fully provisioned volume of sizeBlocks blocks
// (rounded up to whole extents), failing if the pool lacks space.
func (pl *Pool) CreateVolume(name string, sizeBlocks int64) (*Volume, error) {
	if _, exists := pl.volumes[name]; exists {
		return nil, fmt.Errorf("virt: volume %q exists", name)
	}
	extents := (sizeBlocks + pl.extentBlocks - 1) / pl.extentBlocks
	if extents > int64(len(pl.free)) {
		return nil, fmt.Errorf("%w: need %d extents, %d free", ErrPoolExhausted, extents, len(pl.free))
	}
	v := &Volume{pool: pl, name: name, kind: Thick, virtExtents: extents, mapping: make(map[int64]extentRef)}
	for i := int64(0); i < extents; i++ {
		e, err := pl.alloc()
		if err != nil {
			v.release()
			return nil, err
		}
		v.mapping[i] = e
	}
	pl.volumes[name] = v
	return v, nil
}

// CreateDMSD creates a demand-mapped device with a virtual size of
// virtExtents extents (each ExtentBytes() long) and no physical allocation.
// Virtual sizes up to the paper's 1.5 yottabytes are representable
// (1.5 YB at 1 MiB extents ≈ 1.4×10¹⁸ extents).
func (pl *Pool) CreateDMSD(name string, virtExtents int64) (*Volume, error) {
	if _, exists := pl.volumes[name]; exists {
		return nil, fmt.Errorf("virt: volume %q exists", name)
	}
	if virtExtents <= 0 {
		return nil, errors.New("virt: DMSD size must be positive")
	}
	v := &Volume{pool: pl, name: name, kind: Demand, virtExtents: virtExtents, mapping: make(map[int64]extentRef)}
	v.cowMu = sim.NewMutex(pl.k)
	pl.volumes[name] = v
	return v, nil
}

// Delete removes a volume and releases its extents (shared COW extents
// survive while snapshots still reference them).
func (pl *Pool) Delete(name string) error {
	v, ok := pl.volumes[name]
	if !ok {
		return fmt.Errorf("virt: no volume %q", name)
	}
	v.release()
	delete(pl.volumes, name)
	return nil
}
