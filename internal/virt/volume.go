package virt

import (
	"fmt"

	"repro/internal/sim"
)

// Volume is a virtual block device carved from a Pool: thick, demand-mapped
// (DMSD) or a read-only snapshot. The operating system above "generally
// cannot perceive them as anything but real disks" (§3) — the interface is
// the same BlockDevice shape as the physical layers below.
type Volume struct {
	pool        *Pool
	name        string
	kind        Kind
	virtExtents int64
	mapping     map[int64]extentRef
	cowMu       *sim.Mutex
	deleted     bool
	// writesSinceAlloc counts extent allocations, for charge-back (§3:
	// "charge back can reflect actual storage usage").
	allocations int64
}

// Name returns the volume's name.
func (v *Volume) Name() string { return v.name }

// Kind returns the provisioning model.
func (v *Volume) Kind() Kind { return v.kind }

// BlockSize returns the logical block size.
func (v *Volume) BlockSize() int { return v.pool.blockSize }

// Capacity returns the virtual size in blocks. For yottabyte-scale DMSDs
// this can overflow; see VirtExtents for the exact extent count.
func (v *Volume) Capacity() int64 { return v.virtExtents * v.pool.extentBlocks }

// VirtExtents returns the virtual size in extents.
func (v *Volume) VirtExtents() int64 { return v.virtExtents }

// MappedExtents returns the number of physically mapped extents — the
// volume's actual storage consumption.
func (v *Volume) MappedExtents() int64 { return int64(len(v.mapping)) }

// PhysicalBytes returns the physically consumed bytes.
func (v *Volume) PhysicalBytes() int64 { return v.MappedExtents() * v.pool.ExtentBytes() }

// Allocations returns how many extent allocations this volume has caused —
// the charge-back counter of §3.
func (v *Volume) Allocations() int64 { return v.allocations }

// inRange reports whether [lba, lba+count) fits the virtual size without
// overflowing (virtual sizes can exceed int64 blocks).
func (v *Volume) inRange(lba int64, count int) bool {
	if lba < 0 || count < 0 {
		return false
	}
	eb := v.pool.extentBlocks
	lastExt := (lba + int64(count) - 1) / eb
	if count == 0 {
		lastExt = lba / eb
	}
	return lastExt < v.virtExtents
}

// extSpan describes the intersection of an I/O with one virtual extent.
type extSpan struct {
	ext      int64 // virtual extent index
	inExt    int64 // starting block within the extent
	blocks   int64 // block count within the extent
	bufStart int64 // offset (blocks) into the caller's buffer
}

func (v *Volume) spans(lba int64, count int) []extSpan {
	eb := v.pool.extentBlocks
	var out []extSpan
	done := int64(0)
	for done < int64(count) {
		cur := lba + done
		ext := cur / eb
		in := cur % eb
		n := eb - in
		if rem := int64(count) - done; n > rem {
			n = rem
		}
		out = append(out, extSpan{ext: ext, inExt: in, blocks: n, bufStart: done})
		done += n
	}
	return out
}

func parDo(p *sim.Proc, fns ...func(q *sim.Proc) error) error {
	if len(fns) == 1 {
		return fns[0](p)
	}
	k := p.Kernel()
	grp := sim.NewGroup(k)
	var firstErr error
	for _, fn := range fns {
		fn := fn
		grp.Add(1)
		k.Go(p.Name()+"/vpar", func(q *sim.Proc) {
			defer grp.Done()
			if err := fn(q); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	grp.Wait(p)
	return firstErr
}

// Read returns count blocks from virtual address lba. Unmapped ranges read
// as zeros without touching any device.
func (v *Volume) Read(p *sim.Proc, lba int64, count int) ([]byte, error) {
	if v.deleted {
		return nil, fmt.Errorf("virt: volume %q deleted", v.name)
	}
	if !v.inRange(lba, count) {
		return nil, fmt.Errorf("%w: lba=%d count=%d", ErrOutOfRange, lba, count)
	}
	bs := int64(v.pool.blockSize)
	buf := make([]byte, int64(count)*bs)
	var fns []func(q *sim.Proc) error
	for _, sp := range v.spans(lba, count) {
		e, ok := v.mapping[sp.ext]
		if !ok {
			continue // zeros
		}
		sp, e := sp, e
		fns = append(fns, func(q *sim.Proc) error {
			dev := v.pool.devices[e.dev]
			data, err := dev.Read(q, e.start+sp.inExt, int(sp.blocks))
			if err != nil {
				return err
			}
			copy(buf[sp.bufStart*bs:], data)
			return nil
		})
	}
	if len(fns) == 0 {
		return buf, nil
	}
	return buf, parDo(p, fns...)
}

// Write stores block-aligned data at virtual address lba, allocating
// (DMSD) or copying (shared snapshot extents) physical extents as needed.
func (v *Volume) Write(p *sim.Proc, lba int64, data []byte) error {
	if v.deleted {
		return fmt.Errorf("virt: volume %q deleted", v.name)
	}
	if v.kind == Snapshot {
		return ErrReadOnly
	}
	bs := int64(v.pool.blockSize)
	if int64(len(data))%bs != 0 {
		return fmt.Errorf("virt: write of %d bytes not block-aligned", len(data))
	}
	count := int(int64(len(data)) / bs)
	if !v.inRange(lba, count) {
		return fmt.Errorf("%w: lba=%d count=%d", ErrOutOfRange, lba, count)
	}
	var fns []func(q *sim.Proc) error
	for _, sp := range v.spans(lba, count) {
		sp := sp
		chunk := data[sp.bufStart*bs : (sp.bufStart+sp.blocks)*bs]
		fns = append(fns, func(q *sim.Proc) error {
			return v.writeExtent(q, sp, chunk)
		})
	}
	return parDo(p, fns...)
}

// writeExtent performs the write into a single virtual extent.
func (v *Volume) writeExtent(p *sim.Proc, sp extSpan, chunk []byte) error {
	// Fast path: extent mapped exclusively — write in place.
	if e, ok := v.mapping[sp.ext]; ok && v.pool.refcount[e] == 1 {
		dev := v.pool.devices[e.dev]
		return dev.Write(p, e.start+sp.inExt, chunk)
	}
	// Slow path: allocation or copy-on-write; serialize mapping changes.
	if v.cowMu != nil {
		v.cowMu.Lock(p)
		defer v.cowMu.Unlock()
	}
	e, mapped := v.mapping[sp.ext]
	switch {
	case mapped && v.pool.refcount[e] == 1:
		// Raced another writer that already resolved it.
		dev := v.pool.devices[e.dev]
		return dev.Write(p, e.start+sp.inExt, chunk)

	case !mapped:
		// First write to a DMSD extent: allocate and, if partially
		// covered, surround with zeros (fresh extents must read as zero).
		ne, err := v.pool.alloc()
		if err != nil {
			return err
		}
		v.allocations++
		dev := v.pool.devices[ne.dev]
		full := sp.blocks == v.pool.extentBlocks
		var werr error
		if full {
			werr = dev.Write(p, ne.start, chunk)
		} else {
			bs := int64(v.pool.blockSize)
			buf := make([]byte, v.pool.extentBlocks*bs)
			copy(buf[sp.inExt*bs:], chunk)
			werr = dev.Write(p, ne.start, buf)
		}
		if werr != nil {
			v.pool.unref(ne)
			return werr
		}
		v.mapping[sp.ext] = ne
		return nil

	default:
		// Shared with a snapshot: copy the old extent, then overwrite.
		ne, err := v.pool.alloc()
		if err != nil {
			return err
		}
		v.allocations++
		oldDev := v.pool.devices[e.dev]
		old, err := oldDev.Read(p, e.start, int(v.pool.extentBlocks))
		if err != nil {
			v.pool.unref(ne)
			return err
		}
		bs := int64(v.pool.blockSize)
		copy(old[sp.inExt*bs:], chunk)
		newDev := v.pool.devices[ne.dev]
		if err := newDev.Write(p, ne.start, old); err != nil {
			v.pool.unref(ne)
			return err
		}
		v.pool.unref(e)
		v.mapping[sp.ext] = ne
		return nil
	}
}

// Trim declares [lba, lba+count) unused. Extents entirely inside the range
// are unmapped and returned to the pool (§3: "when a virtual disk block
// becomes unused, the physical block is freed"). Thick volumes ignore trim.
func (v *Volume) Trim(lba int64, count int) error {
	if v.kind != Demand {
		return nil
	}
	if !v.inRange(lba, count) {
		return fmt.Errorf("%w: lba=%d count=%d", ErrOutOfRange, lba, count)
	}
	eb := v.pool.extentBlocks
	firstFull := (lba + eb - 1) / eb
	lastFull := (lba + int64(count)) / eb // exclusive
	for ext := firstFull; ext < lastFull; ext++ {
		if e, ok := v.mapping[ext]; ok {
			v.pool.unref(e)
			delete(v.mapping, ext)
		}
	}
	return nil
}

// SnapshotAs creates a read-only point-in-time copy named name. The copy
// shares extents with the source; source writes COW away from it. Snapshot
// targets live in the pool like any volume and need not match the source's
// size class (§7.2: "remove the restriction of copies being the same size").
func (v *Volume) SnapshotAs(name string) (*Volume, error) {
	if _, exists := v.pool.volumes[name]; exists {
		return nil, fmt.Errorf("virt: volume %q exists", name)
	}
	if v.kind == Snapshot {
		return nil, fmt.Errorf("virt: cannot snapshot a snapshot")
	}
	s := &Volume{
		pool:        v.pool,
		name:        name,
		kind:        Snapshot,
		virtExtents: v.virtExtents,
		mapping:     make(map[int64]extentRef, len(v.mapping)),
	}
	for ext, e := range v.mapping {
		s.mapping[ext] = e
		v.pool.ref(e)
	}
	if v.cowMu == nil {
		v.cowMu = sim.NewMutex(v.pool.k)
	}
	v.pool.volumes[name] = s
	return s, nil
}

// Resize changes the virtual size to newExtents extents. Thick volumes
// allocate or free accordingly; DMSDs adjust bounds only ("host
// applications never have to deal with volume resizing", §3 — growth is
// free until written).
func (v *Volume) Resize(newExtents int64) error {
	if v.kind == Snapshot {
		return ErrReadOnly
	}
	if newExtents <= 0 {
		return fmt.Errorf("virt: invalid size %d", newExtents)
	}
	if v.kind == Thick {
		for e := v.virtExtents; e < newExtents; e++ {
			ne, err := v.pool.alloc()
			if err != nil {
				return err
			}
			v.mapping[e] = ne
		}
		for e := newExtents; e < v.virtExtents; e++ {
			if old, ok := v.mapping[e]; ok {
				v.pool.unref(old)
				delete(v.mapping, e)
			}
		}
	} else {
		for ext, e := range v.mapping {
			if ext >= newExtents {
				v.pool.unref(e)
				delete(v.mapping, ext)
			}
		}
	}
	v.virtExtents = newExtents
	return nil
}

// release returns all of the volume's extents to the pool.
func (v *Volume) release() {
	for ext, e := range v.mapping {
		v.pool.unref(e)
		delete(v.mapping, ext)
	}
	v.deleted = true
}

// MappedExtentIndexes returns the virtual extent indexes currently mapped,
// in unspecified order (used by distributed copy services).
func (v *Volume) MappedExtentIndexes() []int64 {
	out := make([]int64, 0, len(v.mapping))
	for ext := range v.mapping {
		out = append(out, ext)
	}
	return out
}
