package virt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/sim"
)

// memDev is an instant in-memory BlockDevice for unit tests.
type memDev struct {
	blockSize int
	blocks    int64
	data      map[int64][]byte
}

func newMemDev(blocks int64) *memDev {
	return &memDev{blockSize: 512, blocks: blocks, data: make(map[int64][]byte)}
}

func (m *memDev) BlockSize() int  { return m.blockSize }
func (m *memDev) Capacity() int64 { return m.blocks }

func (m *memDev) Read(p *sim.Proc, lba int64, count int) ([]byte, error) {
	if lba < 0 || lba+int64(count) > m.blocks {
		return nil, fmt.Errorf("memdev: out of range")
	}
	buf := make([]byte, count*m.blockSize)
	for i := 0; i < count; i++ {
		if b, ok := m.data[lba+int64(i)]; ok {
			copy(buf[i*m.blockSize:], b)
		}
	}
	return buf, nil
}

func (m *memDev) Write(p *sim.Proc, lba int64, data []byte) error {
	if len(data)%m.blockSize != 0 {
		return fmt.Errorf("memdev: unaligned")
	}
	count := len(data) / m.blockSize
	if lba < 0 || lba+int64(count) > m.blocks {
		return fmt.Errorf("memdev: out of range")
	}
	for i := 0; i < count; i++ {
		b := make([]byte, m.blockSize)
		copy(b, data[i*m.blockSize:])
		m.data[lba+int64(i)] = b
	}
	return nil
}

func newTestPool(t *testing.T, k *sim.Kernel, devBlocks int64, nDev int) *Pool {
	t.Helper()
	devs := make([]BlockDevice, nDev)
	for i := range devs {
		devs[i] = newMemDev(devBlocks)
	}
	pl, err := NewPool(k, 8, devs...) // 8-block extents
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func run(k *sim.Kernel, body func(p *sim.Proc)) {
	k.Go("test", body)
	k.Run()
}

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*13 + seed
	}
	return out
}

func TestPoolGeometry(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2) // 2 devices × 8 extents
	if pl.TotalExtents() != 16 {
		t.Fatalf("total extents = %d, want 16", pl.TotalExtents())
	}
	if pl.ExtentBytes() != 8*512 {
		t.Fatalf("extent bytes = %d", pl.ExtentBytes())
	}
	if pl.FreeExtents() != 16 || pl.AllocatedExtents() != 0 {
		t.Fatal("fresh pool not empty")
	}
}

func TestThickVolumeAllocatesUpFront(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, err := pl.CreateVolume("vol", 20) // 20 blocks → 3 extents
	if err != nil {
		t.Fatal(err)
	}
	if v.MappedExtents() != 3 {
		t.Fatalf("mapped = %d, want 3", v.MappedExtents())
	}
	if pl.AllocatedExtents() != 3 {
		t.Fatalf("pool allocated = %d, want 3", pl.AllocatedExtents())
	}
}

func TestThickVolumeExhaustsPool(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	if _, err := pl.CreateVolume("big", 16*8+1); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestDMSDAllocatesOnWriteOnly(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, err := pl.CreateDMSD("thin", 1000) // virtual: 1000 extents ≫ pool
	if err != nil {
		t.Fatal(err)
	}
	if v.MappedExtents() != 0 {
		t.Fatal("DMSD allocated at creation")
	}
	run(k, func(p *sim.Proc) {
		// Read of unwritten space: zeros, no allocation.
		got, err := v.Read(p, 5000, 4)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		for _, b := range got {
			if b != 0 {
				t.Error("unwritten DMSD read nonzero")
			}
		}
		if v.MappedExtents() != 0 {
			t.Error("read caused allocation")
		}
		// One-block write allocates exactly one extent.
		if err := v.Write(p, 770, pattern(512, 1)); err != nil {
			t.Errorf("write: %v", err)
		}
		if v.MappedExtents() != 1 {
			t.Errorf("mapped = %d after 1-block write, want 1", v.MappedExtents())
		}
	})
}

func TestDMSDRoundTripAndZeroFill(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("thin", 100)
	data := pattern(512*3, 7)
	run(k, func(p *sim.Proc) {
		if err := v.Write(p, 10, data); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := v.Read(p, 10, 3)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip mismatch")
		}
		// Neighbors within the same freshly allocated extent must be zero.
		zb, _ := v.Read(p, 8, 2)
		for _, b := range zb {
			if b != 0 {
				t.Error("fresh extent neighbors not zeroed")
			}
		}
	})
}

func TestDMSDWriteSpanningExtents(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("thin", 100)
	data := pattern(512*20, 3) // 20 blocks across 3+ extents
	run(k, func(p *sim.Proc) {
		if err := v.Write(p, 5, data); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := v.Read(p, 5, 20)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Error("spanning write mismatch")
		}
	})
	if v.MappedExtents() != 4 { // blocks 5..24 cover extents 0..3
		t.Fatalf("mapped = %d, want 4", v.MappedExtents())
	}
}

func TestTrimFreesExtents(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("thin", 100)
	run(k, func(p *sim.Proc) {
		v.Write(p, 0, pattern(512*24, 1)) // extents 0,1,2
	})
	freeBefore := pl.FreeExtents()
	// Trim covering extent 1 fully, extents 0/2 partially.
	if err := v.Trim(6, 12); err != nil {
		t.Fatal(err)
	}
	if v.MappedExtents() != 2 {
		t.Fatalf("mapped = %d after trim, want 2", v.MappedExtents())
	}
	if pl.FreeExtents() != freeBefore+1 {
		t.Fatalf("free = %d, want %d", pl.FreeExtents(), freeBefore+1)
	}
	// Trimmed range reads as zeros after being freed and rewritten flow.
	run(k, func(p *sim.Proc) {
		got, _ := v.Read(p, 8, 8)
		for _, b := range got {
			if b != 0 {
				t.Error("trimmed extent not zero on read")
			}
		}
	})
}

func TestDMSDYottabyteVirtualSize(t *testing.T) {
	// §3: DMSDs "up to 1.5 yottabytes". At the production extent size of
	// 1 MiB that is ~1.4×10¹⁸ extents — representable in an int64 extent
	// count, with zero physical allocation until written.
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	const extents15YB = int64(1.5e24 / (1 << 20))
	v, err := pl.CreateDMSD("yotta", extents15YB)
	if err != nil {
		t.Fatal(err)
	}
	if v.VirtExtents() != extents15YB {
		t.Fatal("virtual size mismatch")
	}
	if v.MappedExtents() != 0 || pl.AllocatedExtents() != 0 {
		t.Fatal("yottabyte DMSD consumed physical space at creation")
	}
}

func TestSlackAmortization(t *testing.T) {
	// The E5 claim in miniature: many over-provisioned DMSDs fit in a pool
	// that could hold only a few thick volumes of the same nominal size.
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 512, 4) // 4 devs × 64 extents = 256 extents
	// Thick: 256/64 = 4 volumes of 64 extents fit.
	for i := 0; i < 4; i++ {
		if _, err := pl.CreateVolume(fmt.Sprintf("thick%d", i), 64*8); err != nil {
			t.Fatalf("thick%d: %v", i, err)
		}
	}
	if _, err := pl.CreateVolume("thick4", 64*8); err == nil {
		t.Fatal("5th thick volume fit; pool accounting broken")
	}
	for i := 0; i < 4; i++ {
		pl.Delete(fmt.Sprintf("thick%d", i))
	}
	// Thin: 32 DMSDs of the same nominal size coexist while actual usage
	// is low.
	for i := 0; i < 32; i++ {
		v, err := pl.CreateDMSD(fmt.Sprintf("thin%d", i), 64)
		if err != nil {
			t.Fatalf("thin%d: %v", i, err)
		}
		run(k, func(p *sim.Proc) {
			v.Write(p, 0, pattern(512*8, byte(i))) // 1 extent actually used
		})
	}
	if pl.AllocatedExtents() != 32 {
		t.Fatalf("allocated = %d, want 32", pl.AllocatedExtents())
	}
}

func TestSnapshotCOW(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("base", 100)
	orig := pattern(512*8, 11)
	run(k, func(p *sim.Proc) {
		v.Write(p, 0, orig)
	})
	snap, err := v.SnapshotAs("snap1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind() != Snapshot {
		t.Fatal("wrong kind")
	}
	newData := pattern(512*2, 99)
	run(k, func(p *sim.Proc) {
		// Overwrite part of the shared extent: must COW.
		if err := v.Write(p, 2, newData); err != nil {
			t.Errorf("post-snapshot write: %v", err)
		}
		// Snapshot still sees the original.
		got, err := snap.Read(p, 0, 8)
		if err != nil {
			t.Errorf("snapshot read: %v", err)
		}
		if !bytes.Equal(got, orig) {
			t.Error("snapshot changed after source write")
		}
		// Source sees the merge.
		got2, _ := v.Read(p, 0, 8)
		want := append([]byte(nil), orig...)
		copy(want[2*512:], newData)
		if !bytes.Equal(got2, want) {
			t.Error("source data wrong after COW")
		}
	})
	if pl.AllocatedExtents() != 2 {
		t.Fatalf("allocated = %d after COW, want 2 (old+new)", pl.AllocatedExtents())
	}
}

func TestSnapshotIsReadOnly(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("base", 100)
	snap, _ := v.SnapshotAs("s")
	run(k, func(p *sim.Proc) {
		if err := snap.Write(p, 0, pattern(512, 1)); !errors.Is(err, ErrReadOnly) {
			t.Errorf("err = %v, want ErrReadOnly", err)
		}
	})
}

func TestDeleteSnapshotFreesSharedExtents(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("base", 100)
	run(k, func(p *sim.Proc) { v.Write(p, 0, pattern(512*8, 2)) })
	v.SnapshotAs("s")
	pl.Delete("base")
	if pl.AllocatedExtents() != 1 {
		t.Fatalf("allocated = %d with snapshot alive, want 1", pl.AllocatedExtents())
	}
	pl.Delete("s")
	if pl.AllocatedExtents() != 0 {
		t.Fatalf("allocated = %d after both deleted, want 0", pl.AllocatedExtents())
	}
}

func TestResize(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	thick, _ := pl.CreateVolume("thick", 16) // 2 extents
	if err := thick.Resize(4); err != nil {
		t.Fatal(err)
	}
	if thick.MappedExtents() != 4 || pl.AllocatedExtents() != 4 {
		t.Fatal("thick grow did not allocate")
	}
	if err := thick.Resize(1); err != nil {
		t.Fatal(err)
	}
	if pl.AllocatedExtents() != 1 {
		t.Fatal("thick shrink did not free")
	}
	thin, _ := pl.CreateDMSD("thin", 10)
	run(k, func(p *sim.Proc) { thin.Write(p, 9*8, pattern(512, 1)) })
	if err := thin.Resize(5); err != nil {
		t.Fatal(err)
	}
	if thin.MappedExtents() != 0 {
		t.Fatal("DMSD shrink did not drop out-of-range extents")
	}
}

func TestChargeBackCountsAllocations(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("t", 100)
	run(k, func(p *sim.Proc) {
		v.Write(p, 0, pattern(512, 1))
		v.Write(p, 1, pattern(512, 2)) // same extent: no new allocation
		v.Write(p, 8, pattern(512, 3)) // next extent
	})
	if v.Allocations() != 2 {
		t.Fatalf("allocations = %d, want 2", v.Allocations())
	}
}

// Property: for any write pattern, pool accounting stays consistent:
// allocated+free == total, and every written block reads back.
func TestPoolAccountingProperty(t *testing.T) {
	f := func(seed int64, writes []uint16) bool {
		k := sim.NewKernel(seed)
		devs := []BlockDevice{newMemDev(256), newMemDev(256)}
		pl, err := NewPool(k, 8, devs...)
		if err != nil {
			return false
		}
		v, err := pl.CreateDMSD("t", 32)
		if err != nil {
			return false
		}
		shadow := make(map[int64]byte)
		okRes := true
		run(k, func(p *sim.Proc) {
			for i, w := range writes {
				if i >= 16 {
					break
				}
				lba := int64(w) % v.Capacity()
				val := byte(w>>8) | 1
				if err := v.Write(p, lba, bytes.Repeat([]byte{val}, 512)); err != nil {
					okRes = false
					return
				}
				shadow[lba] = val
			}
			for lba, val := range shadow {
				got, err := v.Read(p, lba, 1)
				if err != nil || got[0] != val {
					okRes = false
					return
				}
			}
		})
		if !okRes {
			return false
		}
		return pl.AllocatedExtents()+pl.FreeExtents() == pl.TotalExtents()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeOverRAIDGroup(t *testing.T) {
	// Integration: pool carved from a real RAID-5 group over simulated
	// disks, surviving a disk failure underneath the virtualization layer.
	k := sim.NewKernel(1)
	spec := disk.Spec{BlockSize: 512, Blocks: 1024, Seek: sim.Millisecond, Rotation: sim.Millisecond, TransferBps: 400_000_000}
	farm := disk.NewFarm(k, "d", 5, spec)
	g, err := raid.NewGroup(k, raid.RAID5, farm.Disks)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPool(k, 16, g)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pl.CreateDMSD("data", 64)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(512*64, 17)
	run(k, func(p *sim.Proc) {
		if err := v.Write(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		farm.Disks[2].Fail()
		got, err := v.Read(p, 0, 64)
		if err != nil {
			t.Errorf("read through degraded RAID: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("data mismatch through degraded RAID")
		}
	})
}

func TestDuplicateVolumeName(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	pl.CreateDMSD("x", 10)
	if _, err := pl.CreateDMSD("x", 10); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := pl.CreateVolume("x", 8); err == nil {
		t.Fatal("duplicate name accepted for thick")
	}
}

func TestExtentsInterleaveAcrossDevices(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("t", 100)
	run(k, func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			v.Write(p, i*8, pattern(512, byte(i)))
		}
	})
	devs := make(map[int]int)
	for _, e := range v.mapping {
		devs[e.dev]++
	}
	if len(devs) != 2 {
		t.Fatalf("allocations used %d devices, want 2 (interleaving)", len(devs))
	}
}
