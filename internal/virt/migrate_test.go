package virt

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestMigrateExtentPreservesData(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("m", 100)
	data := pattern(512*8, 9)
	run(k, func(p *sim.Proc) {
		v.Write(p, 0, data)
		from := v.ExtentDevice(0)
		to := 1 - from
		if err := v.MigrateExtent(p, 0, to); err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		if v.ExtentDevice(0) != to {
			t.Error("mapping not updated")
		}
		got, err := v.Read(p, 0, 8)
		if err != nil || !bytes.Equal(got, data) {
			t.Error("data changed by migration")
		}
	})
	if pl.AllocatedExtents() != 1 {
		t.Fatalf("allocated = %d after migration, want 1 (old freed)", pl.AllocatedExtents())
	}
}

func TestMigrateToSameDeviceIsNoOp(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("m", 10)
	run(k, func(p *sim.Proc) {
		v.Write(p, 0, pattern(512, 1))
		d := v.ExtentDevice(0)
		if err := v.MigrateExtent(p, 0, d); err != nil {
			t.Errorf("noop migrate: %v", err)
		}
	})
}

func TestMigrateUnmappedFails(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("m", 10)
	run(k, func(p *sim.Proc) {
		if err := v.MigrateExtent(p, 5, 0); err == nil {
			t.Error("migrating unmapped extent succeeded")
		}
	})
}

func TestMigrateSharedExtentLeavesSnapshotIntact(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 2)
	v, _ := pl.CreateDMSD("m", 10)
	orig := pattern(512*8, 3)
	run(k, func(p *sim.Proc) {
		v.Write(p, 0, orig)
	})
	snap, _ := v.SnapshotAs("s")
	run(k, func(p *sim.Proc) {
		from := v.ExtentDevice(0)
		if err := v.MigrateExtent(p, 0, 1-from); err != nil {
			t.Errorf("migrate shared: %v", err)
			return
		}
		got, err := snap.Read(p, 0, 8)
		if err != nil || !bytes.Equal(got, orig) {
			t.Error("snapshot content changed by source migration")
		}
	})
	// Both the snapshot's original extent and the migrated copy are live.
	if pl.AllocatedExtents() != 2 {
		t.Fatalf("allocated = %d, want 2", pl.AllocatedExtents())
	}
}

func TestEvacuateDrainsDevice(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 512, 3)
	v, _ := pl.CreateDMSD("m", 1000)
	run(k, func(p *sim.Proc) {
		for i := int64(0); i < 12; i++ {
			v.Write(p, i*8, pattern(512, byte(i)))
		}
		moved, err := pl.Evacuate(p, 0)
		if err != nil {
			t.Errorf("evacuate: %v", err)
			return
		}
		if moved == 0 {
			t.Error("nothing moved")
		}
	})
	if load := pl.DeviceLoad(); load[0] != 0 {
		t.Fatalf("device 0 still holds %d extents after evacuation", load[0])
	}
	// All data still readable.
	run(k, func(p *sim.Proc) {
		for i := int64(0); i < 12; i++ {
			got, err := v.Read(p, i*8, 1)
			if err != nil || got[0] != pattern(1, byte(i))[0] {
				t.Errorf("extent %d unreadable after evacuation: %v", i, err)
			}
		}
	})
}

func TestRebalanceEvensLoad(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 512, 2)
	v, _ := pl.CreateDMSD("m", 1000)
	run(k, func(p *sim.Proc) {
		for i := int64(0); i < 16; i++ {
			v.Write(p, i*8, pattern(512, byte(i)))
		}
		// Skew: pull everything onto device 0.
		for i := int64(0); i < 16; i++ {
			if v.ExtentDevice(i) == 1 {
				if err := v.MigrateExtent(p, i, 0); err != nil {
					t.Errorf("skew: %v", err)
					return
				}
			}
		}
		if load := pl.DeviceLoad(); load[0] != 16 {
			t.Errorf("skew failed: %v", load)
			return
		}
		moved, err := pl.Rebalance(p, 2)
		if err != nil {
			t.Errorf("rebalance: %v", err)
			return
		}
		if moved < 6 {
			t.Errorf("moved only %d extents", moved)
		}
	})
	load := pl.DeviceLoad()
	if diff := load[0] - load[1]; diff > 2 && diff < -2 {
		t.Fatalf("unbalanced after rebalance: %v", load)
	}
}

func TestEvacuateFullPoolFails(t *testing.T) {
	k := sim.NewKernel(1)
	pl := newTestPool(t, k, 64, 1) // single device: nowhere to go
	v, _ := pl.CreateDMSD("m", 10)
	run(k, func(p *sim.Proc) {
		v.Write(p, 0, pattern(512, 1))
		if _, err := pl.Evacuate(p, 0); !errors.Is(err, ErrPoolExhausted) {
			t.Errorf("err = %v, want ErrPoolExhausted", err)
		}
	})
}
