package raid

// GF(2⁸) arithmetic for RAID-6 Reed–Solomon parity, using the standard
// polynomial x⁸+x⁴+x³+x²+1 (0x11d) — the same field used by Linux md and
// the RAID Advisory Board literature the paper cites.

var gfExp [512]byte
var gfLog [256]byte

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 2
		x = gfMulNoTable(x, 2)
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMulNoTable multiplies in GF(2⁸) by shift-and-reduce; used only to build
// the tables.
func gfMulNoTable(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1d
		}
		b >>= 1
	}
	return p
}

// gfMul multiplies a and b in GF(2⁸).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b in GF(2⁸); b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("raid: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns 2^n in GF(2⁸) — the RAID-6 coefficient for data disk n.
func gfPow2(n int) byte { return gfExp[n%255] }

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// xorInto sets dst ^= src elementwise.
func xorInto(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// gfMulInto sets dst ^= c·src elementwise.
func gfMulInto(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorInto(dst, src)
		return
	}
	lc := int(gfLog[c])
	for i := range src {
		if src[i] != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[src[i]])]
		}
	}
}

// gfScale sets buf = c·buf elementwise.
func gfScale(buf []byte, c byte) {
	if c == 1 {
		return
	}
	if c == 0 {
		for i := range buf {
			buf[i] = 0
		}
		return
	}
	lc := int(gfLog[c])
	for i := range buf {
		if buf[i] != 0 {
			buf[i] = gfExp[lc+int(gfLog[buf[i]])]
		}
	}
}
