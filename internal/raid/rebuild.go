package raid

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// RebuildChunkStripes is the number of stripe rows reconstructed per rebuild
// work unit. Chunks are the distribution granularity: the cluster layer
// hands chunks to different controller blades (§2.4), and a chunk whose
// blade dies is simply reissued elsewhere.
const RebuildChunkStripes int64 = 256

type rebuildState struct {
	chunk int64
	total int64
	done  map[int64]bool
	// epoch counts degraded writes that raced a chunk's reconstruction;
	// RebuildChunk retries until it completes without interference.
	epoch map[int64]uint64
}

// markDirty records that a write touched stripes [s, s+count) while disk idx
// was unavailable, so an in-flight reconstruction of those chunks is stale.
func (g *Group) markDirty(idx int, s, count int64) {
	st := g.rebuilding[idx]
	if st == nil {
		return
	}
	for c := s / st.chunk; c <= (s+count-1)/st.chunk; c++ {
		if !st.done[c] {
			st.epoch[c]++
		}
	}
}

// StartRebuild replaces the failed disk idx with a fresh drive and opens a
// rebuild: the disk serves I/O again chunk by chunk as reconstruction
// progresses. It returns the number of chunks to rebuild.
func (g *Group) StartRebuild(idx int) (chunks int64, err error) {
	if idx < 0 || idx >= len(g.disks) {
		return 0, fmt.Errorf("raid: no disk %d", idx)
	}
	if !g.disks[idx].Failed() {
		return 0, errors.New("raid: disk has not failed")
	}
	if g.level == RAID0 {
		return 0, ErrUnrecoverable
	}
	g.disks[idx].Replace()
	st := &rebuildState{
		chunk: RebuildChunkStripes,
		done:  make(map[int64]bool),
		epoch: make(map[int64]uint64),
	}
	st.total = (g.stripes + st.chunk - 1) / st.chunk
	g.rebuilding[idx] = st
	return st.total, nil
}

// Rebuilding reports whether disk idx is mid-rebuild.
func (g *Group) Rebuilding(idx int) bool { return g.rebuilding[idx] != nil }

// RebuildProgress returns the fraction of chunks completed for disk idx
// (1.0 if not rebuilding).
func (g *Group) RebuildProgress(idx int) float64 {
	st := g.rebuilding[idx]
	if st == nil {
		return 1
	}
	return float64(len(st.done)) / float64(st.total)
}

// RebuildChunk reconstructs chunk c of disk idx's rebuild. It may be called
// from any simulation process; disjoint chunks may be rebuilt concurrently
// by different workers. Completing the final chunk closes the rebuild.
func (g *Group) RebuildChunk(p *sim.Proc, idx int, c int64) error {
	st := g.rebuilding[idx]
	if st == nil {
		return errors.New("raid: disk not rebuilding")
	}
	if c < 0 || c >= st.total {
		return fmt.Errorf("raid: chunk %d out of range", c)
	}
	if st.done[c] {
		return nil
	}
	lo := c * st.chunk
	hi := lo + st.chunk
	if hi > g.stripes {
		hi = g.stripes
	}
	for {
		e := st.epoch[c]
		var err error
		if g.level == RAID1 {
			err = g.rebuildMirrorRange(p, idx, lo, hi)
		} else {
			err = g.rebuildParityRange(p, idx, lo, hi)
		}
		if err != nil {
			return err
		}
		if st.epoch[c] == e {
			st.done[c] = true
			if int64(len(st.done)) == st.total {
				delete(g.rebuilding, idx)
			}
			return nil
		}
		// A degraded write raced us; reconstruct this chunk again.
	}
}

func (g *Group) rebuildMirrorRange(p *sim.Proc, idx int, lo, hi int64) error {
	src := -1
	for i := range g.disks {
		if i != idx && g.available(i, lo) {
			src = i
			break
		}
	}
	if src < 0 {
		return ErrUnrecoverable
	}
	data, err := g.disks[src].Read(p, lo, int(hi-lo))
	if err != nil {
		return err
	}
	return g.disks[idx].Write(p, lo, data)
}

// rebuildParityRange reconstructs disk idx's blocks for stripes [lo,hi):
// it streams the whole range from every surviving disk in parallel (one
// sequential read each), reconstructs in memory, and writes the result as
// one sequential write — the access pattern real rebuilds use.
func (g *Group) rebuildParityRange(p *sim.Proc, idx int, lo, hi int64) error {
	n := int(hi - lo)
	raw := make([][]byte, len(g.disks))
	var fns []func(q *sim.Proc) error
	for i := range g.disks {
		i := i
		if i == idx || !g.available(i, lo) {
			continue
		}
		fns = append(fns, func(q *sim.Proc) error {
			d, err := g.disks[i].Read(q, lo, n)
			if err == nil {
				raw[i] = d
			}
			return err
		})
	}
	if err := parallel(p, fns...); err != nil {
		return err
	}

	out := make([]byte, n*g.blockSize)
	for s := lo; s < hi; s++ {
		off := int(s-lo) * g.blockSize
		blockOf := func(di int) []byte {
			if raw[di] == nil {
				return nil
			}
			return raw[di][off : off+g.blockSize]
		}
		pd, qd := g.parityDisks(s)
		dataDisks := g.dataDisks(s)
		data := make([][]byte, len(dataDisks))
		var missing []int
		targetDataIdx := -1
		for i, di := range dataDisks {
			if di == idx {
				missing = append(missing, i)
				targetDataIdx = i
				continue
			}
			if b := blockOf(di); b != nil {
				data[i] = b
			} else {
				missing = append(missing, i)
			}
		}
		var pBuf, qBuf []byte
		pLost, qLost := true, true
		if pd >= 0 && pd != idx {
			if b := blockOf(pd); b != nil {
				pBuf, pLost = b, false
			}
		}
		if qd >= 0 && qd != idx {
			if b := blockOf(qd); b != nil {
				qBuf, qLost = b, false
			}
		}
		if len(missing) > 0 {
			if err := Reconstruct(data, pBuf, qBuf, missing, pLost, qLost); err != nil {
				return err
			}
		}
		var target []byte
		switch {
		case targetDataIdx >= 0:
			target = data[targetDataIdx]
		case pd == idx:
			target = XORParity(data)
		case qd == idx:
			target = RSParity(data)
		default:
			return fmt.Errorf("raid: disk %d holds no block in stripe %d", idx, s)
		}
		copy(out[off:], target)
	}
	return g.disks[idx].Write(p, lo, out)
}

// Rebuild runs a complete rebuild of disk idx with the given number of
// concurrent workers, blocking p until done. The cluster layer distributes
// chunks across blades instead; this is the single-controller path the
// baseline uses.
func (g *Group) Rebuild(p *sim.Proc, idx int, workers int) error {
	st := g.rebuilding[idx]
	if st == nil {
		return errors.New("raid: disk not rebuilding (call StartRebuild)")
	}
	if workers < 1 {
		workers = 1
	}
	total := st.total
	next := int64(0)
	var fns []func(q *sim.Proc) error
	var firstErr error
	for w := 0; w < workers; w++ {
		fns = append(fns, func(q *sim.Proc) error {
			for {
				if next >= total {
					return nil
				}
				c := next
				next++
				if err := g.RebuildChunk(q, idx, c); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return err
				}
			}
		})
	}
	if err := parallel(p, fns...); err != nil {
		return err
	}
	return firstErr
}

// ScrubRange verifies parity for stripes [lo, hi): every stripe's P (and
// Q) is recomputed from data and compared with what the disks hold — the
// §2.4 maintenance function that catches latent corruption before a disk
// failure turns it into data loss. Inconsistent stripes are repaired by
// rewriting parity from data, and their count is returned.
func (g *Group) ScrubRange(p *sim.Proc, lo, hi int64) (bad int64, err error) {
	if g.level != RAID5 && g.level != RAID6 {
		return 0, nil // mirror scrub is a plain compare; not modeled
	}
	if lo < 0 {
		lo = 0
	}
	if hi > g.stripes {
		hi = g.stripes
	}
	n := int(hi - lo)
	if n <= 0 {
		return 0, nil
	}
	raw := make([][]byte, len(g.disks))
	var fns []func(q *sim.Proc) error
	for i := range g.disks {
		i := i
		if !g.available(i, lo) {
			return 0, ErrUnrecoverable
		}
		fns = append(fns, func(q *sim.Proc) error {
			d, err := g.disks[i].Read(q, lo, n)
			if err == nil {
				raw[i] = d
			}
			return err
		})
	}
	if err := parallel(p, fns...); err != nil {
		return 0, err
	}
	for s := lo; s < hi; s++ {
		off := int(s-lo) * g.blockSize
		pd, qd := g.parityDisks(s)
		data := make([][]byte, 0, g.dataPerStripe())
		for _, di := range g.dataDisks(s) {
			data = append(data, raw[di][off:off+g.blockSize])
		}
		wantP := XORParity(data)
		stripeBad := false
		if !bytesEqual(raw[pd][off:off+g.blockSize], wantP) {
			stripeBad = true
			if err := g.disks[pd].Write(p, s, wantP); err != nil {
				return bad, err
			}
		}
		if qd >= 0 {
			wantQ := RSParity(data)
			if !bytesEqual(raw[qd][off:off+g.blockSize], wantQ) {
				stripeBad = true
				if err := g.disks[qd].Write(p, s, wantQ); err != nil {
					return bad, err
				}
			}
		}
		if stripeBad {
			bad++
		}
	}
	return bad, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
