package raid

import (
	"testing"
	"testing/quick"
)

func TestGFMulAgainstReference(t *testing.T) {
	f := func(a, b byte) bool { return gfMul(a, b) == gfMulNoTable(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Associativity, commutativity, distributivity over sampled triples.
	f := func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			return false
		}
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGFDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfDiv(gfMul(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGFInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d, want 1", got, a)
		}
	}
}

func TestGFPow2Distinct(t *testing.T) {
	// Coefficients for distinct disks must be distinct (up to 255 disks),
	// or RAID-6 two-failure recovery would divide by zero.
	seen := make(map[byte]int)
	for i := 0; i < 255; i++ {
		c := gfPow2(i)
		if c == 0 {
			t.Fatalf("gfPow2(%d) = 0", i)
		}
		if j, dup := seen[c]; dup {
			t.Fatalf("gfPow2(%d) == gfPow2(%d)", i, j)
		}
		seen[c] = i
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on division by zero")
		}
	}()
	gfDiv(5, 0)
}

func TestXorIntoAndMulInto(t *testing.T) {
	dst := []byte{1, 2, 3}
	xorInto(dst, []byte{1, 2, 3})
	for _, b := range dst {
		if b != 0 {
			t.Fatal("x^x != 0")
		}
	}
	dst = []byte{0, 0}
	gfMulInto(dst, []byte{3, 7}, 2)
	if dst[0] != gfMul(3, 2) || dst[1] != gfMul(7, 2) {
		t.Fatal("gfMulInto mismatch")
	}
	gfMulInto(dst, []byte{1, 1}, 0) // no-op
	if dst[0] != gfMul(3, 2) {
		t.Fatal("gfMulInto with c=0 modified dst")
	}
}

func TestGFScale(t *testing.T) {
	buf := []byte{5, 9, 0}
	gfScale(buf, 3)
	if buf[0] != gfMul(5, 3) || buf[1] != gfMul(9, 3) || buf[2] != 0 {
		t.Fatal("gfScale mismatch")
	}
	gfScale(buf, 1)
	if buf[0] != gfMul(5, 3) {
		t.Fatal("gfScale by 1 changed buffer")
	}
	gfScale(buf, 0)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("gfScale by 0 not zero")
		}
	}
}
