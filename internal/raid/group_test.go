package raid

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/sim"
)

func smallSpec() disk.Spec {
	return disk.Spec{
		BlockSize:   512,
		Blocks:      2048,
		Seek:        sim.Millisecond,
		Rotation:    sim.Millisecond,
		TransferBps: 400_000_000,
	}
}

func newTestGroup(t *testing.T, k *sim.Kernel, level Level, n int) *Group {
	if t != nil {
		t.Helper()
	}
	farm := disk.NewFarm(k, "d", n, smallSpec())
	g, err := NewGroup(k, level, farm.Disks)
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	return g
}

// run executes body as a proc and drains the kernel.
func run(k *sim.Kernel, body func(p *sim.Proc)) {
	k.Go("test", body)
	k.Run()
}

func fillPattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*7 + seed
	}
	return out
}

func TestCapacityByLevel(t *testing.T) {
	k := sim.NewKernel(1)
	cases := []struct {
		level Level
		disks int
		want  int64
	}{
		{RAID0, 4, 4 * 2048},
		{RAID1, 3, 2048},
		{RAID5, 5, 4 * 2048},
		{RAID6, 6, 4 * 2048},
	}
	for _, c := range cases {
		g := newTestGroup(t, k, c.level, c.disks)
		if got := g.Capacity(); got != c.want {
			t.Errorf("%v×%d capacity = %d, want %d", c.level, c.disks, got, c.want)
		}
	}
}

func TestMinDisksEnforced(t *testing.T) {
	k := sim.NewKernel(1)
	farm := disk.NewFarm(k, "d", 2, smallSpec())
	if _, err := NewGroup(k, RAID5, farm.Disks); err == nil {
		t.Fatal("RAID5 on 2 disks accepted")
	}
	if _, err := NewGroup(k, RAID6, farm.Disks); err == nil {
		t.Fatal("RAID6 on 2 disks accepted")
	}
}

func TestRoundTripAllLevels(t *testing.T) {
	for _, level := range []Level{RAID0, RAID1, RAID5, RAID6} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			k := sim.NewKernel(1)
			g := newTestGroup(t, k, level, 5)
			data := fillPattern(512*37, 3)
			var got []byte
			run(k, func(p *sim.Proc) {
				if err := g.Write(p, 11, data); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				var err error
				got, err = g.Read(p, 11, 37)
				if err != nil {
					t.Errorf("read: %v", err)
				}
			})
			if !bytes.Equal(got, data) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

func TestParityConsistencyOnDisk(t *testing.T) {
	// After writes, every stripe's P must equal the XOR of its data and Q
	// the RS combination — checked directly against disk contents.
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID6, 6)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, fillPattern(512*64, 9))
		g.Write(p, 5, fillPattern(512*3, 77)) // partial-stripe RMW
	})
	dps := g.dataPerStripe()
	for s := int64(0); s < 20; s++ {
		pd, qd := g.parityDisks(s)
		var data [][]byte
		for _, di := range g.dataDisks(s) {
			data = append(data, g.disks[di].Peek(s))
		}
		if !bytes.Equal(g.disks[pd].Peek(s), XORParity(data)) {
			t.Fatalf("stripe %d: P inconsistent (dps=%d)", s, dps)
		}
		if !bytes.Equal(g.disks[qd].Peek(s), RSParity(data)) {
			t.Fatalf("stripe %d: Q inconsistent", s)
		}
	}
}

func TestDegradedReadRAID5(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID5, 5)
	data := fillPattern(512*40, 5)
	run(k, func(p *sim.Proc) {
		if err := g.Write(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		g.Disks()[2].Fail()
		got, err := g.Read(p, 0, 40)
		if err != nil {
			t.Errorf("degraded read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("degraded read returned wrong data")
		}
	})
}

func TestDegradedReadRAID6TwoFailures(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID6, 6)
	data := fillPattern(512*64, 8)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, data)
		g.Disks()[1].Fail()
		g.Disks()[4].Fail()
		got, err := g.Read(p, 0, 64)
		if err != nil {
			t.Errorf("double-degraded read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("double-degraded read wrong data")
		}
	})
}

func TestRAID5ThreeFailuresUnrecoverable(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID5, 5)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, fillPattern(512*8, 1))
		g.Disks()[0].Fail()
		g.Disks()[1].Fail()
		if _, err := g.Read(p, 0, 8); err == nil {
			t.Error("read succeeded with 2 failures on RAID5")
		}
	})
}

func TestDegradedWriteThenRecoverRAID5(t *testing.T) {
	// Write while a disk is down; the data must still be fully readable
	// (via parity), including blocks that would have lived on the dead disk.
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID5, 5)
	data := fillPattern(512*32, 42)
	run(k, func(p *sim.Proc) {
		g.Disks()[3].Fail()
		if err := g.Write(p, 7, data); err != nil {
			t.Errorf("degraded write: %v", err)
			return
		}
		got, err := g.Read(p, 7, 32)
		if err != nil {
			t.Errorf("read after degraded write: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("degraded write lost data")
		}
	})
}

func TestMirrorSurvivesAllButOne(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID1, 4)
	data := fillPattern(512*4, 6)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, data)
		g.Disks()[0].Fail()
		g.Disks()[1].Fail()
		g.Disks()[2].Fail()
		got, err := g.Read(p, 0, 4)
		if err != nil {
			t.Errorf("read with 3/4 mirrors dead: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("surviving mirror returned wrong data")
		}
	})
}

func TestRAID0NoRedundancy(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID0, 4)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, fillPattern(512*8, 1))
		g.Disks()[1].Fail()
		if _, err := g.Read(p, 0, 8); err == nil {
			t.Error("RAID0 read succeeded with failed disk")
		}
	})
}

func TestRebuildRAID5RestoresData(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID5, 5)
	data := fillPattern(512*200, 13)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, data)
		g.Disks()[2].Fail()
		if _, err := g.StartRebuild(2); err != nil {
			t.Errorf("start rebuild: %v", err)
			return
		}
		if err := g.Rebuild(p, 2, 2); err != nil {
			t.Errorf("rebuild: %v", err)
			return
		}
		if g.Rebuilding(2) {
			t.Error("rebuild did not close")
		}
	})
	// Verify the replacement disk itself now holds correct blocks: read
	// with all *other* data sources failed where possible is overkill;
	// instead verify full-array read and parity consistency.
	k2 := sim.NewKernel(1)
	_ = k2
	run(k, func(p *sim.Proc) {
		got, err := g.Read(p, 0, 200)
		if err != nil {
			t.Errorf("read after rebuild: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("data corrupted by rebuild")
		}
	})
	for s := int64(0); s < 50; s++ {
		pd, _ := g.parityDisks(s)
		var blocks [][]byte
		for _, di := range g.dataDisks(s) {
			blocks = append(blocks, g.Disks()[di].Peek(s))
		}
		if !bytes.Equal(g.Disks()[pd].Peek(s), XORParity(blocks)) {
			t.Fatalf("stripe %d parity wrong after rebuild", s)
		}
	}
}

func TestRebuildRAID1(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID1, 2)
	data := fillPattern(512*100, 21)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, data)
		g.Disks()[1].Fail()
		g.StartRebuild(1)
		if err := g.Rebuild(p, 1, 1); err != nil {
			t.Errorf("rebuild: %v", err)
			return
		}
		// Kill the original; the rebuilt mirror must serve alone.
		g.Disks()[0].Fail()
		got, err := g.Read(p, 0, 100)
		if err != nil {
			t.Errorf("read from rebuilt mirror: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("rebuilt mirror has wrong data")
		}
	})
}

func TestRebuildServesIOConcurrently(t *testing.T) {
	// Reads and writes issued during a rebuild must return correct data.
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID5, 5)
	before := fillPattern(512*400, 3)
	var rebuildErr error
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, before)
		g.Disks()[1].Fail()
		g.StartRebuild(1)
		grp := sim.NewGroup(k)
		grp.Add(1)
		k.Go("rebuilder", func(q *sim.Proc) {
			defer grp.Done()
			rebuildErr = g.Rebuild(q, 1, 1)
		})
		// Foreground traffic during rebuild, overlapping rebuilt regions.
		during := fillPattern(512*50, 99)
		if err := g.Write(p, 100, during); err != nil {
			t.Errorf("write during rebuild: %v", err)
		}
		got, err := g.Read(p, 100, 50)
		if err != nil {
			t.Errorf("read during rebuild: %v", err)
		} else if !bytes.Equal(got, during) {
			t.Error("read during rebuild returned stale data")
		}
		grp.Wait(p)
		// After rebuild, everything must be consistent.
		final, err := g.Read(p, 0, 400)
		if err != nil {
			t.Errorf("final read: %v", err)
			return
		}
		want := append([]byte(nil), before...)
		copy(want[100*512:], during)
		if !bytes.Equal(final, want) {
			t.Error("post-rebuild content mismatch")
		}
	})
	if rebuildErr != nil {
		t.Fatalf("rebuild: %v", rebuildErr)
	}
}

func TestRebuildMoreWorkersIsFaster(t *testing.T) {
	elapsed := func(workers int) sim.Duration {
		k := sim.NewKernel(1)
		g := newTestGroup(nil, k, RAID5, 5)
		var dur sim.Duration
		run(k, func(p *sim.Proc) {
			g.Write(p, 0, fillPattern(512*512, 1))
			g.Disks()[0].Fail()
			g.StartRebuild(0)
			t0 := p.Now()
			g.Rebuild(p, 0, workers)
			dur = p.Now().Sub(t0)
		})
		return dur
	}
	one := elapsed(1)
	four := elapsed(4)
	if four >= one {
		t.Fatalf("4 workers (%v) not faster than 1 (%v)", four, one)
	}
}

// Property: random writes at random offsets always read back exactly, for
// every level, including after a random single-disk failure.
func TestRandomIOWithFailureProperty(t *testing.T) {
	f := func(seed int64, levelRaw, failRaw uint8, ops []uint16) bool {
		levels := []Level{RAID1, RAID5, RAID6}
		level := levels[int(levelRaw)%len(levels)]
		k := sim.NewKernel(seed)
		farm := disk.NewFarm(k, "d", 6, smallSpec())
		g, err := NewGroup(k, level, farm.Disks)
		if err != nil {
			return false
		}
		shadow := make(map[int64]byte) // logical block → seed byte
		okRes := true
		run(k, func(p *sim.Proc) {
			for i, op := range ops {
				if i > 12 {
					break
				}
				lba := int64(op) % (g.Capacity() - 4)
				val := byte(op >> 8)
				blk := bytes.Repeat([]byte{val}, 512*2)
				if err := g.Write(p, lba, blk); err != nil {
					okRes = false
					return
				}
				shadow[lba] = val
				shadow[lba+1] = val
			}
			g.Disks()[int(failRaw)%6].Fail()
			for lba, val := range shadow {
				got, err := g.Read(p, lba, 1)
				if err != nil {
					okRes = false
					return
				}
				for _, b := range got {
					if b != val {
						okRes = false
						return
					}
				}
			}
		})
		return okRes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelReadFasterThanSerial(t *testing.T) {
	// A large RAID0 read across 4 disks should take ~1/4 the media time of
	// a single disk — the multi-spindle bandwidth claim.
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID0, 4)
	single := disk.New(k, "solo", smallSpec())
	const blocks = 1024
	var striped, solo sim.Duration
	run(k, func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := g.Read(p, 0, blocks); err != nil {
			t.Errorf("striped read: %v", err)
		}
		striped = p.Now().Sub(t0)
		t1 := p.Now()
		if _, err := single.Read(p, 0, blocks); err != nil {
			t.Errorf("solo read: %v", err)
		}
		solo = p.Now().Sub(t1)
	})
	// Transfer time parallelizes 4×; the per-disk seek does not, so expect
	// clearly >2× overall.
	if striped*2 > solo {
		t.Fatalf("striped %v not >2× faster than solo %v", striped, solo)
	}
}

func TestScrubDetectsAndRepairsCorruption(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID5, 5)
	data := fillPattern(512*40, 3)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, data)
		// Latent corruption: flip a parity block behind the array's back.
		pd, _ := g.parityDisks(3)
		g.Disks()[pd].CorruptBlock(3, fillPattern(512, 0xEE))
		bad, err := g.ScrubRange(p, 0, 20)
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if bad != 1 {
			t.Errorf("scrub found %d bad stripes, want 1", bad)
		}
		// Second pass: clean.
		bad, err = g.ScrubRange(p, 0, 20)
		if err != nil || bad != 0 {
			t.Errorf("re-scrub: bad=%d err=%v", bad, err)
		}
		// The repaired parity must reconstruct data after a disk loss.
		g.Disks()[1].Fail()
		got, err := g.Read(p, 0, 40)
		if err != nil {
			t.Errorf("degraded read after repair: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("repaired parity reconstructed wrong data")
		}
	})
}

func TestScrubCleanGroupFindsNothing(t *testing.T) {
	k := sim.NewKernel(1)
	g := newTestGroup(t, k, RAID6, 6)
	run(k, func(p *sim.Proc) {
		g.Write(p, 0, fillPattern(512*64, 5))
		bad, err := g.ScrubRange(p, 0, g.Stripes())
		if err != nil || bad != 0 {
			t.Errorf("clean scrub: bad=%d err=%v", bad, err)
		}
	})
}
