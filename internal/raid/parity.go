// Package raid implements the RAID layouts the paper's controllers manage
// (§4, §6): RAID-0 striping, RAID-1 mirroring, RAID-5 rotating XOR parity
// and RAID-6 P+Q Reed–Solomon parity, including degraded reads, degraded
// writes, and distributable rebuild — the "storage services" of §2.4.
package raid

import (
	"errors"
	"fmt"
)

// ErrTooManyFailures is returned when a stripe has lost more blocks than
// its parity can reconstruct.
var ErrTooManyFailures = errors.New("raid: too many failures to reconstruct")

// XORParity computes the RAID-5 P block: the XOR of all data blocks.
func XORParity(data [][]byte) []byte {
	if len(data) == 0 {
		return nil
	}
	p := make([]byte, len(data[0]))
	for _, d := range data {
		xorInto(p, d)
	}
	return p
}

// RSParity computes the RAID-6 Q block: Σ gⁱ·dataᵢ over GF(2⁸).
func RSParity(data [][]byte) []byte {
	if len(data) == 0 {
		return nil
	}
	q := make([]byte, len(data[0]))
	for i, d := range data {
		gfMulInto(q, d, gfPow2(i))
	}
	return q
}

// Reconstruct fills in the missing entries of data (marked by nil slices at
// the indices listed in missing) from the surviving data plus P and/or Q
// parity. p may be nil if lost (counts as a failure); q likewise. RAID-5
// callers pass q == nil with at most one missing block total.
//
// The supported cases follow the standard RAID-6 equations:
//
//	P = Σ dᵢ            Q = Σ gⁱ·dᵢ
func Reconstruct(data [][]byte, p, q []byte, missing []int, pLost, qLost bool) error {
	// Classify unrecoverable loss before probing for a block length: a
	// stripe that lost everything is "too many failures", not a malformed
	// call.
	parityAvail := 0
	if !pLost && p != nil {
		parityAvail++
	}
	if !qLost && q != nil {
		parityAvail++
	}
	if len(missing) > parityAvail {
		return fmt.Errorf("%w: %d data blocks lost, %d parity available", ErrTooManyFailures, len(missing), parityAvail)
	}

	blockLen := 0
	for _, d := range data {
		if d != nil {
			blockLen = len(d)
			break
		}
	}
	if blockLen == 0 && p != nil {
		blockLen = len(p)
	}
	if blockLen == 0 && q != nil {
		blockLen = len(q)
	}
	if blockLen == 0 {
		return errors.New("raid: nothing to reconstruct from")
	}

	switch len(missing) {
	case 0:
		return nil // only parity lost; caller regenerates via XORParity/RSParity

	case 1:
		x := missing[0]
		if !pLost && p != nil {
			// d_x = P ⊕ Σ_{i≠x} d_i
			buf := make([]byte, blockLen)
			copy(buf, p)
			for i, d := range data {
				if i != x {
					xorInto(buf, d)
				}
			}
			data[x] = buf
			return nil
		}
		// d_x = (Q ⊕ Σ_{i≠x} gⁱ·dᵢ) / gˣ
		buf := make([]byte, blockLen)
		copy(buf, q)
		for i, d := range data {
			if i != x {
				gfMulInto(buf, d, gfPow2(i))
			}
		}
		gfScale(buf, gfInv(gfPow2(x)))
		data[x] = buf
		return nil

	case 2:
		if pLost || qLost || p == nil || q == nil {
			return fmt.Errorf("%w: two data blocks lost with parity missing", ErrTooManyFailures)
		}
		x, y := missing[0], missing[1]
		if x == y {
			return errors.New("raid: duplicate missing index")
		}
		if x > y {
			x, y = y, x
		}
		// A = P ⊕ Σ_{i∉{x,y}} dᵢ          = d_x ⊕ d_y
		// B = Q ⊕ Σ_{i∉{x,y}} gⁱ·dᵢ       = gˣ·d_x ⊕ g^y·d_y
		// d_x = (B ⊕ g^y·A) / (gˣ ⊕ g^y) ; d_y = A ⊕ d_x
		a := make([]byte, blockLen)
		copy(a, p)
		b := make([]byte, blockLen)
		copy(b, q)
		for i, d := range data {
			if i == x || i == y {
				continue
			}
			xorInto(a, d)
			gfMulInto(b, d, gfPow2(i))
		}
		gx, gy := gfPow2(x), gfPow2(y)
		denomInv := gfInv(gx ^ gy)
		dx := make([]byte, blockLen)
		copy(dx, b)
		gfMulInto(dx, a, gy)
		gfScale(dx, denomInv)
		dy := make([]byte, blockLen)
		copy(dy, a)
		xorInto(dy, dx)
		data[x] = dx
		data[y] = dy
		return nil

	default:
		return fmt.Errorf("%w: %d data blocks lost", ErrTooManyFailures, len(missing))
	}
}
