package raid

import (
	"fmt"

	"repro/internal/sim"
)

// Read returns count logical blocks starting at lba, reconstructing any
// blocks that live on failed or not-yet-rebuilt disks (degraded read).
func (g *Group) Read(p *sim.Proc, lba int64, count int) ([]byte, error) {
	if lba < 0 || count < 0 || lba+int64(count) > g.Capacity() {
		return nil, fmt.Errorf("raid: read out of range lba=%d count=%d cap=%d", lba, count, g.Capacity())
	}
	buf := make([]byte, count*g.blockSize)
	if count == 0 {
		return buf, nil
	}
	if g.level == RAID1 {
		return buf, g.readMirrored(p, lba, count, buf)
	}

	var items []extent
	degradedStripes := make(map[int64][]int64) // stripe → logical blocks needing reconstruction
	for i := 0; i < count; i++ {
		l := lba + int64(i)
		diskIdx, dlba := g.locate(l)
		if g.available(diskIdx, dlba) {
			items = append(items, extent{diskIdx: diskIdx, lba: dlba, positions: []int64{int64(i)}})
		} else {
			if g.level == RAID0 {
				return nil, ErrUnrecoverable
			}
			s := dlba // for RAID5/6 the on-disk LBA is the stripe number
			degradedStripes[s] = append(degradedStripes[s], l)
		}
	}

	var fns []func(q *sim.Proc) error
	for _, ext := range coalesce(items) {
		ext := ext
		fns = append(fns, func(q *sim.Proc) error {
			data, err := g.disks[ext.diskIdx].Read(q, ext.lba, len(ext.positions))
			if err != nil {
				return err
			}
			for j, pos := range ext.positions {
				copy(buf[pos*int64(g.blockSize):], data[j*g.blockSize:(j+1)*g.blockSize])
			}
			return nil
		})
	}
	for s, logicals := range degradedStripes {
		s, logicals := s, logicals
		fns = append(fns, func(q *sim.Proc) error {
			stripe, err := g.stripeData(q, s, nil)
			if err != nil {
				return err
			}
			dps := int64(g.dataPerStripe())
			for _, l := range logicals {
				idx := l % dps
				copy(buf[(l-lba)*int64(g.blockSize):], stripe[idx])
			}
			return nil
		})
	}
	return buf, parallel(p, fns...)
}

// readMirrored serves a RAID-1 read from the least-recently-used healthy
// mirror, falling back if the chosen mirror fails mid-flight.
func (g *Group) readMirrored(p *sim.Proc, lba int64, count int, buf []byte) error {
	for attempt := 0; attempt < len(g.disks); attempt++ {
		idx := -1
		for off := 0; off < len(g.disks); off++ {
			i := (int(lba) + attempt + off) % len(g.disks)
			if g.available(i, lba) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return ErrUnrecoverable
		}
		data, err := g.disks[idx].Read(p, lba, count)
		if err == nil {
			copy(buf, data)
			return nil
		}
	}
	return ErrUnrecoverable
}

// Write stores data (block-aligned) starting at logical block lba, keeping
// parity/mirrors consistent, including degraded stripes.
func (g *Group) Write(p *sim.Proc, lba int64, data []byte) error {
	if len(data)%g.blockSize != 0 {
		return fmt.Errorf("raid: write of %d bytes not block-aligned", len(data))
	}
	count := len(data) / g.blockSize
	if lba < 0 || lba+int64(count) > g.Capacity() {
		return fmt.Errorf("raid: write out of range lba=%d count=%d cap=%d", lba, count, g.Capacity())
	}
	if count == 0 {
		return nil
	}
	switch g.level {
	case RAID0:
		return g.writeStriped(p, lba, count, data)
	case RAID1:
		return g.writeMirrored(p, lba, count, data)
	default:
		return g.writeParity(p, lba, count, data)
	}
}

func (g *Group) writeStriped(p *sim.Proc, lba int64, count int, data []byte) error {
	var items []extent
	for i := 0; i < count; i++ {
		diskIdx, dlba := g.locate(lba + int64(i))
		if !g.available(diskIdx, dlba) {
			return ErrUnrecoverable
		}
		items = append(items, extent{diskIdx: diskIdx, lba: dlba, positions: []int64{int64(i)}})
	}
	var fns []func(q *sim.Proc) error
	for _, ext := range coalesce(items) {
		ext := ext
		fns = append(fns, func(q *sim.Proc) error {
			out := make([]byte, len(ext.positions)*g.blockSize)
			for j, pos := range ext.positions {
				copy(out[j*g.blockSize:], data[pos*int64(g.blockSize):(pos+1)*int64(g.blockSize)])
			}
			return g.disks[ext.diskIdx].Write(q, ext.lba, out)
		})
	}
	return parallel(p, fns...)
}

func (g *Group) writeMirrored(p *sim.Proc, lba int64, count int, data []byte) error {
	var fns []func(q *sim.Proc) error
	wrote := 0
	for i := range g.disks {
		i := i
		if g.disks[i].Failed() {
			continue
		}
		wrote++
		fns = append(fns, func(q *sim.Proc) error {
			err := g.disks[i].Write(q, lba, data)
			g.markDirty(i, lba, int64(count))
			return err
		})
	}
	if wrote == 0 {
		return ErrUnrecoverable
	}
	return parallel(p, fns...)
}

// writeParity handles RAID-5/6, stripe row by stripe row.
func (g *Group) writeParity(p *sim.Proc, lba int64, count int, data []byte) error {
	dps := int64(g.dataPerStripe())
	first := lba / dps
	last := (lba + int64(count) - 1) / dps
	var fns []func(q *sim.Proc) error
	for s := first; s <= last; s++ {
		s := s
		// logical block range of this stripe intersected with the write
		lo := s * dps
		if lo < lba {
			lo = lba
		}
		hi := (s + 1) * dps
		if hi > lba+int64(count) {
			hi = lba + int64(count)
		}
		newData := make(map[int64][]byte) // stripe-local data index → block
		for l := lo; l < hi; l++ {
			off := (l - lba) * int64(g.blockSize)
			newData[l%dps] = data[off : off+int64(g.blockSize)]
		}
		fns = append(fns, func(q *sim.Proc) error {
			return g.writeStripe(q, s, newData)
		})
	}
	return parallel(p, fns...)
}

// writeStripe updates one RAID-5/6 stripe row with the given new data
// blocks (indexed by stripe-local data position).
func (g *Group) writeStripe(p *sim.Proc, s int64, newData map[int64][]byte) error {
	dps := g.dataPerStripe()
	pd, qd := g.parityDisks(s)
	dataDisks := g.dataDisks(s)

	degraded := false
	for i := range g.disks {
		if !g.available(i, s) {
			degraded = true
			break
		}
	}
	fullStripe := len(newData) == dps

	switch {
	case !degraded && fullStripe:
		// Reconstruct-write: parity from new data alone, no reads.
		blocks := make([][]byte, dps)
		for i := range blocks {
			blocks[i] = newData[int64(i)]
		}
		return g.writeStripeBlocks(p, s, blocks, dataDisks, pd, qd, nil)

	case !degraded:
		// Read-modify-write: read old target blocks and parity, apply deltas.
		return g.rmwStripe(p, s, newData, dataDisks, pd, qd)

	default:
		// Degraded: recover the full old stripe, merge, rewrite what we can.
		old, err := g.stripeData(p, s, nil)
		if err != nil {
			return err
		}
		blocks := make([][]byte, dps)
		for i := range blocks {
			if nd, ok := newData[int64(i)]; ok {
				blocks[i] = nd
			} else {
				blocks[i] = old[i]
			}
		}
		only := make(map[int64]bool, len(newData))
		for idx := range newData {
			only[idx] = true
		}
		return g.writeStripeBlocks(p, s, blocks, dataDisks, pd, qd, only)
	}
}

// writeStripeBlocks writes the given full logical stripe content: data
// blocks whose stripe-local index is in writeIdx (nil = all), plus parity,
// skipping unavailable disks (their content is encoded in the parity).
func (g *Group) writeStripeBlocks(p *sim.Proc, s int64, blocks [][]byte, dataDisks []int, pd, qd int, writeIdx map[int64]bool) error {
	var fns []func(q *sim.Proc) error
	for i, di := range dataDisks {
		i, di := i, di
		if writeIdx != nil && !writeIdx[int64(i)] {
			continue
		}
		if !g.available(di, s) {
			g.markDirty(di, s, 1)
			continue
		}
		fns = append(fns, func(q *sim.Proc) error {
			return g.disks[di].Write(q, s, blocks[i])
		})
	}
	if pd >= 0 {
		pp := XORParity(blocks)
		if g.available(pd, s) {
			fns = append(fns, func(q *sim.Proc) error {
				return g.disks[pd].Write(q, s, pp)
			})
		} else {
			g.markDirty(pd, s, 1)
		}
	}
	if qd >= 0 {
		qq := RSParity(blocks)
		if g.available(qd, s) {
			fns = append(fns, func(q *sim.Proc) error {
				return g.disks[qd].Write(q, s, qq)
			})
		} else {
			g.markDirty(qd, s, 1)
		}
	}
	return parallel(p, fns...)
}

// rmwStripe performs the classic small-write read-modify-write on a
// healthy stripe: read old data + parity, XOR deltas in, write back.
func (g *Group) rmwStripe(p *sim.Proc, s int64, newData map[int64][]byte, dataDisks []int, pd, qd int) error {
	oldData := make(map[int64][]byte)
	var oldP, oldQ []byte
	var readFns []func(q *sim.Proc) error
	for idx := range newData {
		idx := idx
		readFns = append(readFns, func(q *sim.Proc) error {
			d, err := g.disks[dataDisks[idx]].Read(q, s, 1)
			if err == nil {
				oldData[idx] = d
			}
			return err
		})
	}
	readFns = append(readFns, func(q *sim.Proc) error {
		d, err := g.disks[pd].Read(q, s, 1)
		if err == nil {
			oldP = d
		}
		return err
	})
	if qd >= 0 {
		readFns = append(readFns, func(q *sim.Proc) error {
			d, err := g.disks[qd].Read(q, s, 1)
			if err == nil {
				oldQ = d
			}
			return err
		})
	}
	if err := parallel(p, readFns...); err != nil {
		return err
	}

	newP := make([]byte, g.blockSize)
	copy(newP, oldP)
	var newQ []byte
	if qd >= 0 {
		newQ = make([]byte, g.blockSize)
		copy(newQ, oldQ)
	}
	for idx, nd := range newData {
		delta := make([]byte, g.blockSize)
		copy(delta, oldData[idx])
		xorInto(delta, nd)
		xorInto(newP, delta)
		if newQ != nil {
			gfMulInto(newQ, delta, gfPow2(int(idx)))
		}
	}

	var writeFns []func(q *sim.Proc) error
	for idx, nd := range newData {
		idx, nd := idx, nd
		writeFns = append(writeFns, func(q *sim.Proc) error {
			return g.disks[dataDisks[idx]].Write(q, s, nd)
		})
	}
	writeFns = append(writeFns, func(q *sim.Proc) error {
		return g.disks[pd].Write(q, s, newP)
	})
	if qd >= 0 {
		writeFns = append(writeFns, func(q *sim.Proc) error {
			return g.disks[qd].Write(q, s, newQ)
		})
	}
	return parallel(p, writeFns...)
}

// stripeData returns the full data content of stripe s, reading what is
// available and reconstructing the rest from parity. Disks in exclude are
// treated as unavailable (used by rebuild).
func (g *Group) stripeData(p *sim.Proc, s int64, exclude map[int]bool) ([][]byte, error) {
	pd, qd := g.parityDisks(s)
	dataDisks := g.dataDisks(s)
	avail := func(i int) bool { return !exclude[i] && g.available(i, s) }

	data := make([][]byte, len(dataDisks))
	var pBuf, qBuf []byte
	var missing []int
	pLost, qLost := pd < 0, qd < 0

	var fns []func(q *sim.Proc) error
	for i, di := range dataDisks {
		i, di := i, di
		if !avail(di) {
			missing = append(missing, i)
			continue
		}
		fns = append(fns, func(q *sim.Proc) error {
			d, err := g.disks[di].Read(q, s, 1)
			if err == nil {
				data[i] = d
			}
			return err
		})
	}
	needParity := len(missing) > 0
	if pd >= 0 {
		if !avail(pd) {
			pLost = true
		} else if needParity {
			fns = append(fns, func(q *sim.Proc) error {
				d, err := g.disks[pd].Read(q, s, 1)
				if err == nil {
					pBuf = d
				}
				return err
			})
		}
	}
	if qd >= 0 {
		if !avail(qd) {
			qLost = true
		} else if needParity {
			fns = append(fns, func(q *sim.Proc) error {
				d, err := g.disks[qd].Read(q, s, 1)
				if err == nil {
					qBuf = d
				}
				return err
			})
		}
	}
	if err := parallel(p, fns...); err != nil {
		return nil, err
	}
	if len(missing) > 0 {
		if err := Reconstruct(data, pBuf, qBuf, missing, pLost || pBuf == nil, qLost || qBuf == nil); err != nil {
			return nil, err
		}
	}
	return data, nil
}
