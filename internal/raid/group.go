package raid

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Level identifies a RAID layout.
type Level int

// Supported layouts. The paper's file metadata can override the automatic
// RAID type selection per file (§4); these are the choices.
const (
	RAID0 Level = iota
	RAID1
	RAID5
	RAID6
)

func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID1:
		return "RAID1"
	case RAID5:
		return "RAID5"
	case RAID6:
		return "RAID6"
	default:
		return fmt.Sprintf("RAID(%d)", int(l))
	}
}

// MinDisks returns the minimum group size for the level.
func (l Level) MinDisks() int {
	switch l {
	case RAID0:
		return 1
	case RAID1:
		return 2
	case RAID5:
		return 3
	case RAID6:
		return 4
	default:
		return 0
	}
}

// ErrUnrecoverable is returned when the group has lost more disks than its
// redundancy covers.
var ErrUnrecoverable = errors.New("raid: group unrecoverable")

// Group presents a set of disks as one logical block device with the
// chosen redundancy. Any simulation process may call Read/Write; member
// disk I/O within an operation proceeds in parallel, which is where the
// paper's multi-spindle bandwidth comes from.
type Group struct {
	k         *sim.Kernel
	level     Level
	disks     []*disk.Disk
	blockSize int
	stripes   int64
	// rebuilding maps disk index → rebuild bookkeeping. A replaced disk
	// serves I/O only for chunks already reconstructed.
	rebuilding map[int]*rebuildState
}

// NewGroup builds a RAID group over disks, which must share a spec.
func NewGroup(k *sim.Kernel, level Level, disks []*disk.Disk) (*Group, error) {
	if len(disks) < level.MinDisks() {
		return nil, fmt.Errorf("raid: %v needs ≥%d disks, got %d", level, level.MinDisks(), len(disks))
	}
	bs := disks[0].Spec().BlockSize
	stripes := disks[0].Spec().Blocks
	for _, d := range disks[1:] {
		if d.Spec().BlockSize != bs {
			return nil, errors.New("raid: mixed block sizes in group")
		}
		if d.Spec().Blocks < stripes {
			stripes = d.Spec().Blocks
		}
	}
	return &Group{
		k: k, level: level, disks: disks,
		blockSize: bs, stripes: stripes,
		rebuilding: make(map[int]*rebuildState),
	}, nil
}

// Level returns the group's RAID level.
func (g *Group) Level() Level { return g.level }

// BlockSize returns the logical block size in bytes.
func (g *Group) BlockSize() int { return g.blockSize }

// Disks returns the member drives.
func (g *Group) Disks() []*disk.Disk { return g.disks }

// Stripes returns the number of stripe rows.
func (g *Group) Stripes() int64 { return g.stripes }

// dataPerStripe returns the logical blocks stored per stripe row.
func (g *Group) dataPerStripe() int {
	switch g.level {
	case RAID0:
		return len(g.disks)
	case RAID1:
		return 1
	case RAID5:
		return len(g.disks) - 1
	case RAID6:
		return len(g.disks) - 2
	}
	return 0
}

// Capacity returns the logical capacity in blocks.
func (g *Group) Capacity() int64 { return g.stripes * int64(g.dataPerStripe()) }

// parityDisks returns the disk indices holding P and Q for stripe s.
// q is -1 for levels without Q; p is -1 for levels without parity.
func (g *Group) parityDisks(s int64) (p, q int) {
	n := int64(len(g.disks))
	switch g.level {
	case RAID5:
		return int(n - 1 - s%n), -1
	case RAID6:
		pd := int(n - 1 - s%n)
		return pd, (pd + 1) % int(n)
	default:
		return -1, -1
	}
}

// dataDisks returns, in coefficient order, the disk indices holding data
// blocks of stripe s.
func (g *Group) dataDisks(s int64) []int {
	p, q := g.parityDisks(s)
	out := make([]int, 0, g.dataPerStripe())
	for i := range g.disks {
		if i != p && i != q {
			out = append(out, i)
		}
	}
	return out
}

// locate maps logical block l to its disk index and on-disk LBA.
func (g *Group) locate(l int64) (diskIdx int, lba int64) {
	switch g.level {
	case RAID0:
		return int(l % int64(len(g.disks))), l / int64(len(g.disks))
	case RAID1:
		return 0, l // primary copy; mirrors at same LBA on other disks
	case RAID5, RAID6:
		dps := int64(g.dataPerStripe())
		s := l / dps
		idx := int(l % dps)
		return g.dataDisks(s)[idx], s
	}
	panic("raid: bad level")
}

// available reports whether disk i can serve stripe s: it must be healthy
// and, if mid-rebuild, already reconstructed past s.
func (g *Group) available(i int, s int64) bool {
	if g.disks[i].Failed() {
		return false
	}
	if st, ok := g.rebuilding[i]; ok && !st.done[s/st.chunk] {
		return false
	}
	return true
}

// parallel runs fns as concurrent simulation processes, blocking p until
// all complete; the first non-nil error is returned.
func parallel(p *sim.Proc, fns ...func(q *sim.Proc) error) error {
	if len(fns) == 1 {
		return fns[0](p)
	}
	k := p.Kernel()
	grp := sim.NewGroup(k)
	var firstErr error
	for _, fn := range fns {
		fn := fn
		grp.Add(1)
		k.Go(p.Name()+"/par", func(q *sim.Proc) {
			defer grp.Done()
			if err := fn(q); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	grp.Wait(p)
	return firstErr
}

// extent is a contiguous run of blocks on one disk, used to coalesce I/O.
type extent struct {
	diskIdx int
	lba     int64
	// logical positions (offsets into the caller's buffer), one per block.
	positions []int64
}

// coalesce groups (disk, lba)→bufferPos mappings into per-disk sequential
// extents so member disks stream instead of seeking per block.
func coalesce(items []extent) []extent {
	sort.Slice(items, func(i, j int) bool {
		if items[i].diskIdx != items[j].diskIdx {
			return items[i].diskIdx < items[j].diskIdx
		}
		return items[i].lba < items[j].lba
	})
	var out []extent
	for _, it := range items {
		n := len(out)
		if n > 0 && out[n-1].diskIdx == it.diskIdx &&
			out[n-1].lba+int64(len(out[n-1].positions)) == it.lba {
			out[n-1].positions = append(out[n-1].positions, it.positions...)
			continue
		}
		out = append(out, it)
	}
	return out
}
