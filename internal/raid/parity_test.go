package raid

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randStripe(rng *rand.Rand, nData, blockLen int) [][]byte {
	data := make([][]byte, nData)
	for i := range data {
		data[i] = make([]byte, blockLen)
		rng.Read(data[i])
	}
	return data
}

func cloneStripe(data [][]byte) [][]byte {
	out := make([][]byte, len(data))
	for i, d := range data {
		out[i] = append([]byte(nil), d...)
	}
	return out
}

// Property: losing any single data block is recoverable from P alone.
func TestReconstructSingleFromP(t *testing.T) {
	f := func(seed int64, nRaw, lostRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%6 + 2
		lost := int(lostRaw) % n
		data := randStripe(rng, n, 64)
		p := XORParity(data)
		work := cloneStripe(data)
		work[lost] = nil
		if err := Reconstruct(work, p, nil, []int{lost}, false, true); err != nil {
			return false
		}
		return bytes.Equal(work[lost], data[lost])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: losing any single data block is recoverable from Q alone
// (the case where P died too).
func TestReconstructSingleFromQ(t *testing.T) {
	f := func(seed int64, nRaw, lostRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%6 + 2
		lost := int(lostRaw) % n
		data := randStripe(rng, n, 64)
		q := RSParity(data)
		work := cloneStripe(data)
		work[lost] = nil
		if err := Reconstruct(work, nil, q, []int{lost}, true, false); err != nil {
			return false
		}
		return bytes.Equal(work[lost], data[lost])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: losing any two distinct data blocks is recoverable from P+Q.
func TestReconstructDoubleFromPQ(t *testing.T) {
	f := func(seed int64, nRaw, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%6 + 3
		a, b := int(aRaw)%n, int(bRaw)%n
		if a == b {
			b = (a + 1) % n
		}
		data := randStripe(rng, n, 64)
		p := XORParity(data)
		q := RSParity(data)
		work := cloneStripe(data)
		work[a], work[b] = nil, nil
		if err := Reconstruct(work, p, q, []int{a, b}, false, false); err != nil {
			return false
		}
		return bytes.Equal(work[a], data[a]) && bytes.Equal(work[b], data[b])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructTooManyFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randStripe(rng, 5, 16)
	p := XORParity(data)
	work := cloneStripe(data)
	work[0], work[1] = nil, nil
	// Two data losses with only P: unrecoverable.
	if err := Reconstruct(work, p, nil, []int{0, 1}, false, true); err == nil {
		t.Fatal("expected failure with 2 losses and P only")
	}
	// Three losses: unrecoverable even with P+Q.
	q := RSParity(data)
	work = cloneStripe(data)
	work[0], work[1], work[2] = nil, nil, nil
	if err := Reconstruct(work, p, q, []int{0, 1, 2}, false, false); err == nil {
		t.Fatal("expected failure with 3 losses")
	}
}

func TestParityLinearity(t *testing.T) {
	// Updating one data block changes P by the XOR delta and Q by the
	// coefficient-scaled delta — the algebra behind read-modify-write.
	rng := rand.New(rand.NewSource(2))
	data := randStripe(rng, 4, 32)
	p := XORParity(data)
	q := RSParity(data)
	idx := 2
	newBlock := make([]byte, 32)
	rng.Read(newBlock)
	delta := make([]byte, 32)
	copy(delta, data[idx])
	xorInto(delta, newBlock)

	newP := append([]byte(nil), p...)
	xorInto(newP, delta)
	newQ := append([]byte(nil), q...)
	gfMulInto(newQ, delta, gfPow2(idx))

	data[idx] = newBlock
	if !bytes.Equal(newP, XORParity(data)) {
		t.Fatal("P delta update != recomputed P")
	}
	if !bytes.Equal(newQ, RSParity(data)) {
		t.Fatal("Q delta update != recomputed Q")
	}
}

func TestZeroStripeParity(t *testing.T) {
	data := make([][]byte, 3)
	for i := range data {
		data[i] = make([]byte, 16)
	}
	for _, b := range XORParity(data) {
		if b != 0 {
			t.Fatal("parity of zeros not zero")
		}
	}
	for _, b := range RSParity(data) {
		if b != 0 {
			t.Fatal("Q of zeros not zero")
		}
	}
}
