package raid

import (
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

func benchStripe(n, blockLen int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, n)
	for i := range data {
		data[i] = make([]byte, blockLen)
		rng.Read(data[i])
	}
	return data
}

func BenchmarkXORParity(b *testing.B) {
	data := benchStripe(5, 4096)
	b.SetBytes(5 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORParity(data)
	}
}

func BenchmarkRSParity(b *testing.B) {
	data := benchStripe(5, 4096)
	b.SetBytes(5 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RSParity(data)
	}
}

func BenchmarkReconstructSingle(b *testing.B) {
	data := benchStripe(5, 4096)
	p := XORParity(data)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(data))
		copy(work, data)
		work[2] = nil
		if err := Reconstruct(work, p, nil, []int{2}, false, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructDouble(b *testing.B) {
	data := benchStripe(6, 4096)
	p := XORParity(data)
	q := RSParity(data)
	b.SetBytes(2 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(data))
		copy(work, data)
		work[1], work[4] = nil, nil
		if err := Reconstruct(work, p, q, []int{1, 4}, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAID5SmallWriteRMW measures the simulated latency of the
// read-modify-write small-write path (host cost of simulating it).
func BenchmarkRAID5SmallWriteRMW(b *testing.B) {
	spec := disk.Spec{BlockSize: 4096, Blocks: 1 << 14, Seek: 5 * sim.Millisecond,
		Rotation: 3 * sim.Millisecond, TransferBps: 400_000_000}
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(int64(i))
		farm := disk.NewFarm(k, "d", 5, spec)
		g, _ := NewGroup(k, RAID5, farm.Disks)
		k.Go("w", func(p *sim.Proc) {
			buf := make([]byte, 4096)
			for j := int64(0); j < 16; j++ {
				g.Write(p, j*7, buf)
			}
		})
		k.Run()
	}
}

// BenchmarkRAID5FullStripeWrite measures the reconstruct-write fast path.
func BenchmarkRAID5FullStripeWrite(b *testing.B) {
	spec := disk.Spec{BlockSize: 4096, Blocks: 1 << 14, Seek: 5 * sim.Millisecond,
		Rotation: 3 * sim.Millisecond, TransferBps: 400_000_000}
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(int64(i))
		farm := disk.NewFarm(k, "d", 5, spec)
		g, _ := NewGroup(k, RAID5, farm.Disks)
		k.Go("w", func(p *sim.Proc) {
			buf := make([]byte, 4*4096) // exactly one stripe row
			for j := int64(0); j < 16; j++ {
				g.Write(p, j*4, buf)
			}
		})
		k.Run()
	}
}
