package raid

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzGF256 checks the table-driven GF(2⁸) arithmetic against the
// shift-and-reduce reference implementation and the field axioms. The
// tables are built once at init; a single wrong entry silently corrupts
// every Q parity the array ever writes, so the field laws are worth
// fuzzing rather than spot-checking.
func FuzzGF256(f *testing.F) {
	f.Add(byte(0), byte(0), byte(0))
	f.Add(byte(1), byte(2), byte(3))
	f.Add(byte(0x1d), byte(0x80), byte(0xff))
	f.Add(byte(255), byte(254), byte(253))
	f.Fuzz(func(t *testing.T, a, b, c byte) {
		// The fast multiply must agree with the reference bit-twiddle.
		if got, want := gfMul(a, b), gfMulNoTable(a, b); got != want {
			t.Fatalf("gfMul(%d,%d) = %d, reference says %d", a, b, got, want)
		}
		// Field axioms: commutativity, associativity, distributivity over
		// the field's addition (XOR), multiplicative identity.
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("gfMul not commutative for %d,%d", a, b)
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("gfMul not associative for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("gfMul not distributive over XOR for %d,%d,%d", a, b, c)
		}
		if gfMul(a, 1) != a {
			t.Fatalf("1 is not the multiplicative identity for %d", a)
		}
		// Division and inverse round-trips (on the nonzero subgroup).
		if b != 0 {
			if gfDiv(gfMul(a, b), b) != a {
				t.Fatalf("(%d*%d)/%d != %d", a, b, b, a)
			}
			if gfMul(b, gfInv(b)) != 1 {
				t.Fatalf("%d * inv(%d) != 1", b, b)
			}
		}
		// The vectorized helpers must match the scalar ops elementwise.
		src := []byte{a, b, c}
		dst := []byte{c, a, b}
		want := []byte{dst[0] ^ gfMul(src[0], c), dst[1] ^ gfMul(src[1], c), dst[2] ^ gfMul(src[2], c)}
		gfMulInto(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("gfMulInto(%v, %d) = %v, want %v", src, c, dst, want)
		}
		buf := []byte{a, b, c}
		scaled := []byte{gfMul(a, c), gfMul(b, c), gfMul(c, c)}
		gfScale(buf, c)
		if !bytes.Equal(buf, scaled) {
			t.Fatalf("gfScale(%v, %d) = %v, want %v", []byte{a, b, c}, c, buf, scaled)
		}
	})
}

// FuzzReconstruct round-trips the RAID-6 equations: build a stripe, compute
// P and Q, knock out up to two data blocks (plus optionally a parity), and
// demand that Reconstruct either restores the exact bytes or reports
// ErrTooManyFailures — never a silently wrong block.
func FuzzReconstruct(f *testing.F) {
	f.Add(byte(0), byte(0), byte(0), byte(1), byte(0), int64(1))
	f.Add(byte(3), byte(16), byte(1), byte(2), byte(2), int64(7))
	f.Add(byte(5), byte(63), byte(0), byte(4), byte(6), int64(1009))
	f.Add(byte(2), byte(8), byte(1), byte(1), byte(12), int64(-5))
	f.Fuzz(func(t *testing.T, nSel, lenSel, m1, m2, mode byte, seed int64) {
		n := 2 + int(nSel%6)        // 2..7 data disks
		blockLen := 1 + int(lenSel%64) // 1..64 bytes per block
		// Deterministic stripe content from the fuzzed seed.
		rng := uint64(seed)
		orig := make([][]byte, n)
		for i := range orig {
			orig[i] = make([]byte, blockLen)
			for j := range orig[i] {
				rng = rng*6364136223846793005 + 1442695040888963407
				orig[i][j] = byte(rng >> 56)
			}
		}
		p := XORParity(orig)
		q := RSParity(orig)

		// Failure plan: 0-2 missing data blocks, optionally lost parity.
		missing := []int{}
		switch mode % 3 {
		case 1:
			missing = []int{int(m1) % n}
		case 2:
			x, y := int(m1)%n, int(m2)%n
			if x == y {
				missing = []int{x}
			} else {
				missing = []int{x, y}
			}
		}
		pLost := mode&4 != 0
		qLost := mode&8 != 0
		// Exercise both "lost" encodings: the explicit flag and a nil slice.
		pIn, qIn := append([]byte(nil), p...), append([]byte(nil), q...)
		if pLost && mode&16 != 0 {
			pIn = nil
		}
		if qLost && mode&32 != 0 {
			qIn = nil
		}

		data := make([][]byte, n)
		for i := range orig {
			data[i] = append([]byte(nil), orig[i]...)
		}
		for _, x := range missing {
			data[x] = nil
		}

		parityAvail := 0
		if !pLost {
			parityAvail++
		}
		if !qLost {
			parityAvail++
		}
		err := Reconstruct(data, pIn, qIn, missing, pLost, qLost)
		if len(missing) > parityAvail {
			if !errors.Is(err, ErrTooManyFailures) {
				t.Fatalf("%d missing with %d parity available: err = %v, want ErrTooManyFailures", len(missing), parityAvail, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("reconstruct(%d disks, missing %v, pLost=%v qLost=%v): %v", n, missing, pLost, qLost, err)
		}
		for i := range orig {
			if !bytes.Equal(data[i], orig[i]) {
				t.Fatalf("disk %d reconstructed wrong: got %v, want %v (missing %v, pLost=%v qLost=%v)",
					i, data[i], orig[i], missing, pLost, qLost)
			}
		}
		// Regenerated parity over the restored stripe must match the
		// original, or the stripe would scrub dirty after a rebuild.
		if !bytes.Equal(XORParity(data), p) || !bytes.Equal(RSParity(data), q) {
			t.Fatalf("parity mismatch after reconstruct (missing %v)", missing)
		}
	})
}
