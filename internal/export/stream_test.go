package export

import (
	"bytes"
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
)

func newStreamRig(t *testing.T) (*rig, *StreamGateway, *StreamClient) {
	t.Helper()
	r := newRig(t)
	gw := NewStreamGateway(r.net, "rtsp", r.fs, r.auth)
	r.net.Connect("rtsp", "lan", simnetGbE())
	cl := NewStreamClient(r.net, "viewer")
	r.net.Connect("viewer", "lan", simnetGbE())
	return r, gw, cl
}

func simnetGbE() (spec struct {
	BandwidthBps int64
	Latency      sim.Duration
}) {
	spec.BandwidthBps = 10_000_000_000
	spec.Latency = 10 * sim.Microsecond
	return
}

func TestStreamDeliversWholeFile(t *testing.T) {
	r, gw, cl := newStreamRig(t)
	media := bytes.Repeat([]byte("frame-data!"), 30000) // ~330 KiB
	r.run(func(p *sim.Proc) {
		r.fs.WriteFile(p, "/movie", media, pfs.Policy{})
		resp, err := cl.Open(p, "rtsp", StreamOpen{Token: r.token, Path: "/movie", ChunkBytes: 32 << 10})
		if err != nil || resp.Err != "" {
			t.Errorf("open: %v %s", err, resp.Err)
			return
		}
		if resp.Size != int64(len(media)) {
			t.Errorf("size = %d", resp.Size)
		}
		for !cl.Done {
			p.Sleep(10 * sim.Millisecond)
		}
	})
	if !bytes.Equal(cl.Reassemble(), media) {
		t.Fatal("reassembled stream != source file")
	}
	if gw.Sessions() != 0 {
		t.Fatal("session not reaped after completion")
	}
}

func TestStreamPacing(t *testing.T) {
	r, _, cl := newStreamRig(t)
	media := make([]byte, 125_000) // 1 Mb
	var took sim.Duration
	r.run(func(p *sim.Proc) {
		r.fs.WriteFile(p, "/clip", media, pfs.Policy{})
		t0 := p.Now()
		resp, err := cl.Open(p, "rtsp", StreamOpen{
			Token: r.token, Path: "/clip",
			BitrateBps: 1_000_000, // 1 Mb/s → ~1 s for 1 Mb
			ChunkBytes: 12_500,
		})
		if err != nil || resp.Err != "" {
			t.Errorf("open: %v %s", err, resp.Err)
			return
		}
		for !cl.Done {
			p.Sleep(10 * sim.Millisecond)
		}
		took = p.Now().Sub(t0)
	})
	if took < 900*sim.Millisecond || took > 1300*sim.Millisecond {
		t.Fatalf("1 Mb at 1 Mb/s took %v, want ~1s (paced)", took)
	}
}

func TestStreamPauseResume(t *testing.T) {
	r, _, cl := newStreamRig(t)
	media := make([]byte, 256<<10)
	r.run(func(p *sim.Proc) {
		r.fs.WriteFile(p, "/clip", media, pfs.Policy{})
		resp, _ := cl.Open(p, "rtsp", StreamOpen{
			Token: r.token, Path: "/clip",
			BitrateBps: 8_000_000, ChunkBytes: 16 << 10,
		})
		p.Sleep(50 * sim.Millisecond)
		if err := cl.Ctl(p, "rtsp", resp.Session, "pause"); err != nil {
			t.Errorf("pause: %v", err)
			return
		}
		got := len(cl.Chunks)
		p.Sleep(300 * sim.Millisecond)
		if len(cl.Chunks) > got+1 {
			t.Error("chunks kept flowing while paused")
		}
		if err := cl.Ctl(p, "rtsp", resp.Session, "resume"); err != nil {
			t.Errorf("resume: %v", err)
			return
		}
		for !cl.Done {
			p.Sleep(10 * sim.Millisecond)
		}
	})
	if !bytes.Equal(cl.Reassemble(), media) {
		t.Fatal("pause/resume corrupted stream")
	}
}

func TestStreamTeardown(t *testing.T) {
	r, gw, cl := newStreamRig(t)
	media := make([]byte, 1<<20)
	r.run(func(p *sim.Proc) {
		r.fs.WriteFile(p, "/clip", media, pfs.Policy{})
		resp, _ := cl.Open(p, "rtsp", StreamOpen{
			Token: r.token, Path: "/clip",
			BitrateBps: 1_000_000, ChunkBytes: 16 << 10,
		})
		p.Sleep(100 * sim.Millisecond)
		if err := cl.Ctl(p, "rtsp", resp.Session, "teardown"); err != nil {
			t.Errorf("teardown: %v", err)
			return
		}
		p.Sleep(200 * sim.Millisecond)
	})
	if cl.Done {
		t.Fatal("stream completed despite teardown")
	}
	if gw.Sessions() != 0 {
		t.Fatal("session survived teardown")
	}
}

func TestStreamAuthRequired(t *testing.T) {
	r, _, cl := newStreamRig(t)
	r.run(func(p *sim.Proc) {
		r.fs.WriteFile(p, "/clip", []byte("x"), pfs.Policy{})
		resp, err := cl.Open(p, "rtsp", StreamOpen{Token: "bogus", Path: "/clip"})
		if err != nil {
			t.Errorf("rpc: %v", err)
			return
		}
		if resp.Err == "" {
			t.Error("unauthenticated stream opened")
		}
	})
}
