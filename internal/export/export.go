// Package export implements §8 of the paper: the storage system speaks to
// the network directly. Controller blades run protocol engines themselves —
// a block target (the SAN/iSCSI surface), a file gateway (the NAS surface
// over the parallel file system), and an HTTP-style object service that
// streams file content straight from storage onto the network. All of them
// sit behind the security gateway: authentication precedes data access,
// and no user code executes on the blades (§5.2) — the services expose
// fixed verbs only.
package export

import (
	"fmt"
	"strings"

	"repro/internal/pfs"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const ctrlSize = 96

// BlockRequest is the block target's wire request (iSCSI-like).
type BlockRequest struct {
	Token string
	LUN   string
	LBA   int64
	Count int
	Data  []byte // nil for reads
	Write bool
}

// BlockResponse is the block target's reply.
type BlockResponse struct {
	Data []byte
	Err  string
}

// ReportLUNsRequest asks which LUNs the token may see.
type ReportLUNsRequest struct{ Token string }

// ReportLUNsResponse lists visible LUNs (masked LUNs are absent).
type ReportLUNsResponse struct {
	LUNs []string
	Err  string
}

// BlockTarget serves the block protocol on a host-facing address.
type BlockTarget struct {
	gw   *security.Gateway
	conn *simnet.Conn
	// Served counts requests (per-port load accounting).
	Served int64
}

// NewBlockTarget attaches a block target at addr on the host network.
func NewBlockTarget(net *simnet.Network, addr simnet.Addr, gw *security.Gateway) *BlockTarget {
	t := &BlockTarget{gw: gw, conn: simnet.NewConn(net, addr)}
	t.conn.Register("scsi.io", t.handleIO)
	t.conn.Register("scsi.report_luns", t.handleReport)
	return t
}

func (t *BlockTarget) handleIO(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(BlockRequest)
	t.Served++
	if req.Write {
		if err := t.gw.Write(p, req.Token, req.LUN, req.LBA, req.Data, 0, 0); err != nil {
			return BlockResponse{Err: err.Error()}, ctrlSize
		}
		return BlockResponse{}, ctrlSize
	}
	data, err := t.gw.Read(p, req.Token, req.LUN, req.LBA, req.Count, 0)
	if err != nil {
		return BlockResponse{Err: err.Error()}, ctrlSize
	}
	return BlockResponse{Data: data}, ctrlSize + len(data)
}

func (t *BlockTarget) handleReport(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(ReportLUNsRequest)
	t.Served++
	luns, err := t.gw.Visible(req.Token)
	if err != nil {
		return ReportLUNsResponse{Err: err.Error()}, ctrlSize
	}
	return ReportLUNsResponse{LUNs: luns}, ctrlSize
}

// FileRequest is the NAS gateway's wire request.
type FileRequest struct {
	Op     string // "read", "write", "create", "mkdir", "list", "stat", "remove"
	Path   string
	Off    int64
	N      int
	Data   []byte
	Policy pfs.Policy
}

// FileResponse is the NAS gateway's reply.
type FileResponse struct {
	Data  []byte
	Names []string
	Size  int64
	Err   string
}

// FileGateway serves the NAS protocol over a parallel file system.
type FileGateway struct {
	fs     *pfs.FS
	conn   *simnet.Conn
	Served int64
}

// NewFileGateway attaches a file gateway at addr on the host network.
func NewFileGateway(net *simnet.Network, addr simnet.Addr, fs *pfs.FS) *FileGateway {
	g := &FileGateway{fs: fs, conn: simnet.NewConn(net, addr)}
	g.conn.Register("nas.op", g.handle)
	return g
}

func (g *FileGateway) handle(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(FileRequest)
	g.Served++
	fail := func(err error) (any, int) { return FileResponse{Err: err.Error()}, ctrlSize }
	switch req.Op {
	case "read":
		buf := make([]byte, req.N)
		n, err := g.fs.ReadAt(p, req.Path, req.Off, buf)
		if err != nil {
			return fail(err)
		}
		return FileResponse{Data: buf[:n]}, ctrlSize + n
	case "write":
		if _, err := g.fs.Stat(req.Path); err != nil {
			if _, cerr := g.fs.Create(req.Path, req.Policy); cerr != nil {
				return fail(cerr)
			}
		}
		if _, err := g.fs.WriteAt(p, req.Path, req.Off, req.Data); err != nil {
			return fail(err)
		}
		return FileResponse{}, ctrlSize
	case "create":
		if _, err := g.fs.Create(req.Path, req.Policy); err != nil {
			return fail(err)
		}
		return FileResponse{}, ctrlSize
	case "mkdir":
		if err := g.fs.MkdirAll(req.Path); err != nil {
			return fail(err)
		}
		return FileResponse{}, ctrlSize
	case "list":
		names, err := g.fs.List(req.Path)
		if err != nil {
			return fail(err)
		}
		return FileResponse{Names: names}, ctrlSize
	case "stat":
		ino, err := g.fs.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		return FileResponse{Size: ino.Size}, ctrlSize
	case "remove":
		if err := g.fs.Remove(req.Path); err != nil {
			return fail(err)
		}
		return FileResponse{}, ctrlSize
	default:
		return FileResponse{Err: fmt.Sprintf("export: unknown op %q", req.Op)}, ctrlSize
	}
}

// HTTPRequest is a GET with an optional byte range — the paper's example
// of a level-7 protocol exported directly from storage (§8: the HTTP
// engine runs on the blade; only authentication and CGI live elsewhere).
type HTTPRequest struct {
	Token string
	Path  string
	// RangeFrom/RangeTo select bytes [RangeFrom, RangeTo); both zero
	// means the whole object.
	RangeFrom, RangeTo int64
}

// HTTPResponse carries the status and body.
type HTTPResponse struct {
	Status int
	Body   []byte
}

// HTTPGateway streams file objects over the host network.
type HTTPGateway struct {
	fs     *pfs.FS
	auth   *security.Authority
	conn   *simnet.Conn
	Served int64
}

// NewHTTPGateway attaches an HTTP-style object service at addr.
func NewHTTPGateway(net *simnet.Network, addr simnet.Addr, fs *pfs.FS, auth *security.Authority) *HTTPGateway {
	g := &HTTPGateway{fs: fs, auth: auth, conn: simnet.NewConn(net, addr)}
	g.conn.Register("http.get", g.handleGet)
	return g
}

func (g *HTTPGateway) handleGet(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(HTTPRequest)
	g.Served++
	if _, err := g.auth.Authenticate(req.Token); err != nil {
		return HTTPResponse{Status: 401}, ctrlSize
	}
	if !strings.HasPrefix(req.Path, "/") {
		return HTTPResponse{Status: 400}, ctrlSize
	}
	ino, err := g.fs.Stat(req.Path)
	if err != nil {
		return HTTPResponse{Status: 404}, ctrlSize
	}
	from0, to := req.RangeFrom, req.RangeTo
	status := 200
	if from0 == 0 && to == 0 {
		to = ino.Size
	} else {
		status = 206
		if to > ino.Size {
			to = ino.Size
		}
	}
	if from0 < 0 || from0 > to {
		return HTTPResponse{Status: 416}, ctrlSize
	}
	buf := make([]byte, to-from0)
	n, err := g.fs.ReadAt(p, req.Path, from0, buf)
	if err != nil {
		return HTTPResponse{Status: 500}, ctrlSize
	}
	return HTTPResponse{Status: status, Body: buf[:n]}, ctrlSize + n
}

// Client is a host-side helper for driving the exports in examples and
// tests.
type Client struct {
	Conn *simnet.Conn
}

// NewClient attaches a client at addr.
func NewClient(net *simnet.Network, addr simnet.Addr) *Client {
	return &Client{Conn: simnet.NewConn(net, addr)}
}

// BlockIO issues one block request to a target.
func (c *Client) BlockIO(p *sim.Proc, target simnet.Addr, req BlockRequest) (BlockResponse, error) {
	size := ctrlSize + len(req.Data)
	raw, err := c.Conn.CallTimeout(p, target, "scsi.io", req, size, 60*sim.Second)
	if err != nil {
		return BlockResponse{}, err
	}
	return raw.(BlockResponse), nil
}

// ReportLUNs lists LUNs visible to the token.
func (c *Client) ReportLUNs(p *sim.Proc, target simnet.Addr, token string) (ReportLUNsResponse, error) {
	raw, err := c.Conn.CallTimeout(p, target, "scsi.report_luns", ReportLUNsRequest{Token: token}, ctrlSize, 60*sim.Second)
	if err != nil {
		return ReportLUNsResponse{}, err
	}
	return raw.(ReportLUNsResponse), nil
}

// File issues one NAS operation.
func (c *Client) File(p *sim.Proc, target simnet.Addr, req FileRequest) (FileResponse, error) {
	size := ctrlSize + len(req.Data)
	raw, err := c.Conn.CallTimeout(p, target, "nas.op", req, size, 60*sim.Second)
	if err != nil {
		return FileResponse{}, err
	}
	return raw.(FileResponse), nil
}

// Get issues one HTTP-style GET.
func (c *Client) Get(p *sim.Proc, target simnet.Addr, req HTTPRequest) (HTTPResponse, error) {
	raw, err := c.Conn.CallTimeout(p, target, "http.get", req, ctrlSize, 60*sim.Second)
	if err != nil {
		return HTTPResponse{}, err
	}
	return raw.(HTTPResponse), nil
}
