package export

import (
	"bytes"
	"testing"

	"repro/internal/pfs"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// memStore backs the gateway without a full cluster.
type memStore struct {
	bs   int
	vols map[string]map[int64][]byte
}

func newMemStore(vols ...string) *memStore {
	m := &memStore{bs: 512, vols: make(map[string]map[int64][]byte)}
	for _, v := range vols {
		m.vols[v] = make(map[int64][]byte)
	}
	return m
}

func (m *memStore) BlockSize() int { return m.bs }

func (m *memStore) ReadBlocks(p *sim.Proc, vol string, lba int64, count, prio int) ([]byte, error) {
	buf := make([]byte, count*m.bs)
	for i := 0; i < count; i++ {
		if b, ok := m.vols[vol][lba+int64(i)]; ok {
			copy(buf[i*m.bs:], b)
		}
	}
	return buf, nil
}

func (m *memStore) WriteBlocks(p *sim.Proc, vol string, lba int64, data []byte, prio, repl int) error {
	for i := 0; i < len(data)/m.bs; i++ {
		b := make([]byte, m.bs)
		copy(b, data[i*m.bs:])
		m.vols[vol][lba+int64(i)] = b
	}
	return nil
}

type rig struct {
	k      *sim.Kernel
	net    *simnet.Network
	auth   *security.Authority
	client *Client
	fs     *pfs.FS
	token  string
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	net := simnet.New(k)
	for _, n := range []simnet.Addr{"host", "target", "nas", "http"} {
		net.Connect(n, "lan", simnet.GbE10)
	}
	auth := security.NewAuthority(k)
	mask := security.NewLUNMask()
	store := newMemStore("vol0", "fsvol")
	gw := security.NewGateway(security.GatewayConfig{Authority: auth, Mask: mask, Store: store})
	gw.ExportLUN("lun0", "vol0")
	auth.CreateTenant("lab")
	token, _ := auth.Issue("lab", 3600*sim.Second)
	mask.Allow("lun0", "lab", security.ReadWrite)

	fs, err := pfs.New(k, pfs.Config{IO: store, Classes: map[string]string{"d": "fsvol"}, DefaultClass: "d"})
	if err != nil {
		t.Fatal(err)
	}
	NewBlockTarget(net, "target", gw)
	NewFileGateway(net, "nas", fs)
	NewHTTPGateway(net, "http", fs, auth)
	return &rig{k: k, net: net, auth: auth, client: NewClient(net, "host"), fs: fs, token: token}
}

func (r *rig) run(body func(p *sim.Proc)) {
	r.k.Go("test", body)
	r.k.Run()
}

func TestBlockProtocolRoundTrip(t *testing.T) {
	r := newRig(t)
	data := bytes.Repeat([]byte{7}, 1024)
	r.run(func(p *sim.Proc) {
		resp, err := r.client.BlockIO(p, "target", BlockRequest{
			Token: r.token, LUN: "lun0", LBA: 4, Data: data, Write: true,
		})
		if err != nil || resp.Err != "" {
			t.Errorf("write: %v %s", err, resp.Err)
			return
		}
		resp, err = r.client.BlockIO(p, "target", BlockRequest{
			Token: r.token, LUN: "lun0", LBA: 4, Count: 2,
		})
		if err != nil || resp.Err != "" {
			t.Errorf("read: %v %s", err, resp.Err)
			return
		}
		if !bytes.Equal(resp.Data, data) {
			t.Error("block round trip mismatch")
		}
	})
}

func TestBlockProtocolAuthRequired(t *testing.T) {
	r := newRig(t)
	r.run(func(p *sim.Proc) {
		resp, err := r.client.BlockIO(p, "target", BlockRequest{
			Token: "bogus", LUN: "lun0", LBA: 0, Count: 1,
		})
		if err != nil {
			t.Errorf("rpc: %v", err)
			return
		}
		if resp.Err == "" {
			t.Error("unauthenticated block read served")
		}
	})
}

func TestReportLUNsHonorsMask(t *testing.T) {
	r := newRig(t)
	r.run(func(p *sim.Proc) {
		resp, err := r.client.ReportLUNs(p, "target", r.token)
		if err != nil || resp.Err != "" {
			t.Errorf("report: %v %s", err, resp.Err)
			return
		}
		if len(resp.LUNs) != 1 || resp.LUNs[0] != "lun0" {
			t.Errorf("luns = %v, want [lun0]", resp.LUNs)
		}
	})
}

func TestNASProtocol(t *testing.T) {
	r := newRig(t)
	content := []byte("nas file body")
	r.run(func(p *sim.Proc) {
		if resp, err := r.client.File(p, "nas", FileRequest{Op: "mkdir", Path: "/exp"}); err != nil || resp.Err != "" {
			t.Errorf("mkdir: %v %s", err, resp.Err)
			return
		}
		if resp, err := r.client.File(p, "nas", FileRequest{Op: "write", Path: "/exp/a.txt", Data: content}); err != nil || resp.Err != "" {
			t.Errorf("write: %v %s", err, resp.Err)
			return
		}
		resp, err := r.client.File(p, "nas", FileRequest{Op: "read", Path: "/exp/a.txt", N: 64})
		if err != nil || resp.Err != "" {
			t.Errorf("read: %v %s", err, resp.Err)
			return
		}
		if !bytes.Equal(resp.Data, content) {
			t.Error("nas read mismatch")
		}
		if resp, _ := r.client.File(p, "nas", FileRequest{Op: "stat", Path: "/exp/a.txt"}); resp.Size != int64(len(content)) {
			t.Errorf("stat size = %d", resp.Size)
		}
		if resp, _ := r.client.File(p, "nas", FileRequest{Op: "list", Path: "/exp"}); len(resp.Names) != 1 {
			t.Errorf("list = %v", resp.Names)
		}
		if resp, _ := r.client.File(p, "nas", FileRequest{Op: "remove", Path: "/exp/a.txt"}); resp.Err != "" {
			t.Errorf("remove: %s", resp.Err)
		}
		if resp, _ := r.client.File(p, "nas", FileRequest{Op: "bogus"}); resp.Err == "" {
			t.Error("unknown op accepted")
		}
	})
}

func TestHTTPGateway(t *testing.T) {
	r := newRig(t)
	body := bytes.Repeat([]byte("object-data "), 100)
	r.run(func(p *sim.Proc) {
		if err := r.fs.MkdirAll("/www"); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		if err := r.fs.WriteFile(p, "/www/obj", body, pfs.Policy{}); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		resp, err := r.client.Get(p, "http", HTTPRequest{Token: r.token, Path: "/www/obj"})
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if resp.Status != 200 || !bytes.Equal(resp.Body, body) {
			t.Errorf("status=%d len=%d", resp.Status, len(resp.Body))
		}
		// Range request.
		resp, _ = r.client.Get(p, "http", HTTPRequest{Token: r.token, Path: "/www/obj", RangeFrom: 12, RangeTo: 24})
		if resp.Status != 206 || !bytes.Equal(resp.Body, body[12:24]) {
			t.Errorf("range: status=%d body=%q", resp.Status, resp.Body)
		}
		// Unauthenticated.
		resp, _ = r.client.Get(p, "http", HTTPRequest{Token: "junk", Path: "/www/obj"})
		if resp.Status != 401 {
			t.Errorf("unauth status = %d, want 401", resp.Status)
		}
		// Missing object.
		resp, _ = r.client.Get(p, "http", HTTPRequest{Token: r.token, Path: "/nope"})
		if resp.Status != 404 {
			t.Errorf("missing status = %d, want 404", resp.Status)
		}
	})
}
