package export

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/security"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// The streaming gateway is the paper's RTSP example (§8): media-style
// sessions that pace file content from storage onto the network at a
// target bitrate, with pause/resume — served directly by the blades.

// StreamOpen starts a session.
type StreamOpen struct {
	Token string
	Path  string
	// BitrateBps paces delivery (0 = as fast as the network allows).
	BitrateBps int64
	// ChunkBytes is the delivery unit (default 64 KiB).
	ChunkBytes int
}

// StreamOpenResp returns the session handle.
type StreamOpenResp struct {
	Session int64
	Size    int64
	Err     string
}

// StreamCtl pauses, resumes or tears down a session.
type StreamCtl struct {
	Session int64
	Op      string // "pause", "resume", "teardown"
}

// StreamCtlResp acknowledges control operations.
type StreamCtlResp struct{ Err string }

// StreamChunk is one delivered piece of the stream.
type StreamChunk struct {
	Session int64
	Seq     int64
	Off     int64
	Data    []byte
	// Last marks the final chunk of the file.
	Last bool
}

type streamSession struct {
	path    string
	off     int64
	size    int64
	seq     int64
	client  simnet.Addr
	paused  bool
	dead    bool
	bitrate int64
	chunk   int
}

// StreamGateway serves paced media sessions over a parallel file system.
type StreamGateway struct {
	fs       *pfs.FS
	auth     *security.Authority
	conn     *simnet.Conn
	sessions map[int64]*streamSession
	nextID   int64
	// Served counts delivered chunks.
	Served int64
}

// NewStreamGateway attaches the streaming service at addr.
func NewStreamGateway(net *simnet.Network, addr simnet.Addr, fs *pfs.FS, auth *security.Authority) *StreamGateway {
	g := &StreamGateway{
		fs: fs, auth: auth,
		conn:     simnet.NewConn(net, addr),
		sessions: make(map[int64]*streamSession),
	}
	g.conn.Register("rtsp.open", g.handleOpen)
	g.conn.Register("rtsp.ctl", g.handleCtl)
	return g
}

func (g *StreamGateway) handleOpen(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(StreamOpen)
	if _, err := g.auth.Authenticate(req.Token); err != nil {
		return StreamOpenResp{Err: err.Error()}, ctrlSize
	}
	ino, err := g.fs.Stat(req.Path)
	if err != nil {
		return StreamOpenResp{Err: err.Error()}, ctrlSize
	}
	chunk := req.ChunkBytes
	if chunk <= 0 {
		chunk = 64 << 10
	}
	g.nextID++
	s := &streamSession{
		path: req.Path, size: ino.Size, client: from,
		bitrate: req.BitrateBps, chunk: chunk,
	}
	g.sessions[g.nextID] = s
	id := g.nextID
	g.conn.Network().Kernel().Go(fmt.Sprintf("rtsp.session%d", id), func(q *sim.Proc) {
		g.pump(q, id, s)
	})
	return StreamOpenResp{Session: id, Size: ino.Size}, ctrlSize
}

// pump delivers the file as paced chunks until done or torn down.
func (g *StreamGateway) pump(p *sim.Proc, id int64, s *streamSession) {
	k := g.conn.Network().Kernel()
	buf := make([]byte, s.chunk)
	for !s.dead && s.off < s.size {
		if s.paused {
			p.Sleep(5 * sim.Millisecond)
			continue
		}
		n, err := g.fs.ReadAt(p, s.path, s.off, buf)
		if err != nil || n == 0 {
			break
		}
		last := s.off+int64(n) >= s.size
		g.conn.Go(p, s.client, "rtsp.chunk", StreamChunk{
			Session: id, Seq: s.seq, Off: s.off,
			Data: append([]byte(nil), buf[:n]...), Last: last,
		}, ctrlSize+n, 0)
		g.Served++
		s.seq++
		s.off += int64(n)
		if s.bitrate > 0 {
			p.Sleep(sim.Duration(float64(n*8) / float64(s.bitrate) * float64(sim.Second)))
		}
	}
	_ = k
	delete(g.sessions, id)
}

func (g *StreamGateway) handleCtl(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(StreamCtl)
	s, ok := g.sessions[req.Session]
	if !ok {
		return StreamCtlResp{Err: "no such session"}, ctrlSize
	}
	switch req.Op {
	case "pause":
		s.paused = true
	case "resume":
		s.paused = false
	case "teardown":
		s.dead = true
	default:
		return StreamCtlResp{Err: "unknown op " + req.Op}, ctrlSize
	}
	return StreamCtlResp{}, ctrlSize
}

// Sessions reports the live session count.
func (g *StreamGateway) Sessions() int { return len(g.sessions) }

// StreamClient collects chunks on the host side.
type StreamClient struct {
	Conn   *simnet.Conn
	Chunks []StreamChunk
	// Done is set when the Last chunk arrives.
	Done bool
}

// NewStreamClient attaches a chunk receiver at addr.
func NewStreamClient(net *simnet.Network, addr simnet.Addr) *StreamClient {
	c := &StreamClient{Conn: simnet.NewConn(net, addr)}
	c.Conn.Register("rtsp.chunk", func(p *sim.Proc, from simnet.Addr, args any) (any, int) {
		ch := args.(StreamChunk)
		c.Chunks = append(c.Chunks, ch)
		if ch.Last {
			c.Done = true
		}
		return nil, 0
	})
	return c
}

// Open starts a session against the gateway at target.
func (c *StreamClient) Open(p *sim.Proc, target simnet.Addr, req StreamOpen) (StreamOpenResp, error) {
	raw, err := c.Conn.CallTimeout(p, target, "rtsp.open", req, ctrlSize, 60*sim.Second)
	if err != nil {
		return StreamOpenResp{}, err
	}
	return raw.(StreamOpenResp), nil
}

// Ctl sends a control operation.
func (c *StreamClient) Ctl(p *sim.Proc, target simnet.Addr, session int64, op string) error {
	raw, err := c.Conn.CallTimeout(p, target, "rtsp.ctl", StreamCtl{Session: session, Op: op}, ctrlSize, 60*sim.Second)
	if err != nil {
		return err
	}
	if resp := raw.(StreamCtlResp); resp.Err != "" {
		return fmt.Errorf("export: %s", resp.Err)
	}
	return nil
}

// Reassemble returns the received bytes in offset order.
func (c *StreamClient) Reassemble() []byte {
	var total int64
	for _, ch := range c.Chunks {
		if end := ch.Off + int64(len(ch.Data)); end > total {
			total = end
		}
	}
	out := make([]byte, total)
	for _, ch := range c.Chunks {
		copy(out[ch.Off:], ch.Data)
	}
	return out
}
