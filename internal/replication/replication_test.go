package replication

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

type rig struct {
	k    *sim.Kernel
	net  *simnet.Network
	mgrs []*Manager
}

func newRig(blades, n int) *rig {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	peers := make([]simnet.Addr, blades)
	for i := range peers {
		peers[i] = simnet.Addr(fmt.Sprintf("blade%d", i))
		net.Connect(peers[i], "fabric", simnet.FC2G)
	}
	r := &rig{k: k, net: net}
	for i := 0; i < blades; i++ {
		conn := simnet.NewConn(net, peers[i])
		r.mgrs = append(r.mgrs, New(k, conn, peers, i, n))
	}
	return r
}

func (r *rig) run(body func(p *sim.Proc)) {
	r.k.Go("test", body)
	r.k.Run()
}

func key(i int64) cache.Key { return cache.Key{Vol: "v", LBA: i} }

func data(v byte) []byte { return bytes.Repeat([]byte{v}, 128) }

func TestReplicatePlacesNMinus1Copies(t *testing.T) {
	r := newRig(5, 3)
	r.run(func(p *sim.Proc) {
		if err := r.mgrs[0].ReplicateDirty(p, key(1), data(7), 1, 0); err != nil {
			t.Errorf("replicate: %v", err)
		}
	})
	total := 0
	for i := 1; i < 5; i++ {
		total += len(r.mgrs[i].HeldFor(0))
	}
	if total != 2 {
		t.Fatalf("replica copies = %d, want 2 (N-1)", total)
	}
	if r.mgrs[0].HeldBlocks() != 0 {
		t.Fatal("owner holds a replica for itself")
	}
}

func TestFactorOneIsNoOp(t *testing.T) {
	r := newRig(3, 1)
	r.run(func(p *sim.Proc) {
		if err := r.mgrs[0].ReplicateDirty(p, key(1), data(1), 1, 0); err != nil {
			t.Errorf("replicate: %v", err)
		}
	})
	for _, m := range r.mgrs {
		if m.HeldBlocks() != 0 {
			t.Fatal("N=1 created replicas")
		}
	}
}

func TestBuddiesDeterministicAndDistinct(t *testing.T) {
	r := newRig(6, 4)
	for i := int64(0); i < 50; i++ {
		b1 := r.mgrs[2].buddies(key(i), 0)
		b2 := r.mgrs[2].buddies(key(i), 0)
		if len(b1) != 3 {
			t.Fatalf("buddies = %v, want 3", b1)
		}
		seen := map[int]bool{2: true}
		for j, b := range b1 {
			if b != b2[j] {
				t.Fatal("buddies not deterministic")
			}
			if seen[b] {
				t.Fatalf("duplicate/self buddy in %v", b1)
			}
			seen[b] = true
		}
	}
}

func TestFactorClampedToLiveBlades(t *testing.T) {
	r := newRig(3, 8) // ask for more copies than blades exist
	r.run(func(p *sim.Proc) {
		if err := r.mgrs[0].ReplicateDirty(p, key(1), data(1), 1, 0); err != nil {
			t.Errorf("replicate: %v", err)
		}
	})
	total := 0
	for i := 1; i < 3; i++ {
		total += len(r.mgrs[i].HeldFor(0))
	}
	if total != 2 {
		t.Fatalf("copies = %d, want 2 (all other blades)", total)
	}
}

func TestDropReleasesReplicas(t *testing.T) {
	r := newRig(4, 2)
	r.run(func(p *sim.Proc) {
		r.mgrs[0].ReplicateDirty(p, key(5), data(9), 3, 0)
		r.mgrs[0].OnClean(p, key(5), 3)
		p.Sleep(sim.Millisecond) // let async drops land
	})
	for i := 1; i < 4; i++ {
		if len(r.mgrs[i].HeldFor(0)) != 0 {
			t.Fatalf("blade %d still holds replica after drop", i)
		}
	}
}

func TestStaleDropIgnored(t *testing.T) {
	r := newRig(4, 2)
	r.run(func(p *sim.Proc) {
		r.mgrs[0].ReplicateDirty(p, key(5), data(9), 7, 0) // version 7
		r.mgrs[0].OnClean(p, key(5), 3)                    // stale destage of v3
		p.Sleep(sim.Millisecond)
	})
	total := 0
	for i := 1; i < 4; i++ {
		total += len(r.mgrs[i].HeldFor(0))
	}
	if total != 1 {
		t.Fatalf("replicas = %d after stale drop, want 1", total)
	}
}

func TestNewerPutSupersedes(t *testing.T) {
	r := newRig(4, 2)
	r.run(func(p *sim.Proc) {
		r.mgrs[0].ReplicateDirty(p, key(5), data(1), 1, 0)
		r.mgrs[0].ReplicateDirty(p, key(5), data(2), 2, 0)
	})
	for i := 1; i < 4; i++ {
		for _, rep := range r.mgrs[i].HeldFor(0) {
			if rep.Data[0] != 2 || rep.Version != 2 {
				t.Fatalf("replica = v%d d=%d, want v2 d=2", rep.Version, rep.Data[0])
			}
		}
	}
}

func TestRecoverForDestagesDeadOwnersBlocks(t *testing.T) {
	r := newRig(4, 3)
	r.run(func(p *sim.Proc) {
		r.mgrs[0].ReplicateDirty(p, key(1), data(11), 1, 0)
		r.mgrs[0].ReplicateDirty(p, key(2), data(22), 1, 0)
	})
	// Blade 0 dies; survivors destage its replicas.
	disk := make(map[cache.Key][]byte)
	r.run(func(p *sim.Proc) {
		for i := 1; i < 4; i++ {
			r.mgrs[i].RecoverFor(p, 0, func(q *sim.Proc, k cache.Key, d []byte) error {
				disk[k] = d
				return nil
			})
		}
	})
	if !bytes.Equal(disk[key(1)], data(11)) || !bytes.Equal(disk[key(2)], data(22)) {
		t.Fatal("recovery did not destage dead owner's writes")
	}
	for i := 1; i < 4; i++ {
		if len(r.mgrs[i].HeldFor(0)) != 0 {
			t.Fatal("replicas not released after recovery")
		}
	}
}

// Property: with factor N over B blades, any set of up to N−1 blade
// failures leaves at least one copy (owner cache or replica) of an
// acknowledged write.
func TestSurvivabilityProperty(t *testing.T) {
	f := func(keyRaw uint16, failMask uint8) bool {
		const blades, n = 5, 3
		r := newRig(blades, n)
		k := key(int64(keyRaw))
		owner := 0
		r.run(func(p *sim.Proc) {
			r.mgrs[owner].ReplicateDirty(p, k, data(byte(keyRaw)), 1, 0)
		})
		// Choose up to N-1 = 2 failures (possibly including the owner).
		var failed []int
		for b := 0; b < blades && len(failed) < n-1; b++ {
			if failMask&(1<<b) != 0 {
				failed = append(failed, b)
			}
		}
		isFailed := func(b int) bool {
			for _, f := range failed {
				if f == b {
					return true
				}
			}
			return false
		}
		copies := 0
		if !isFailed(owner) {
			copies++ // owner's own dirty cache copy survives
		}
		for b := 0; b < blades; b++ {
			if !isFailed(b) && len(r.mgrs[b].HeldFor(owner)) > 0 {
				copies++
			}
		}
		return copies >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAliveExcludesDeadBuddies(t *testing.T) {
	r := newRig(4, 3)
	for _, m := range r.mgrs {
		m.SetAlive([]int{0, 2, 3}) // blade 1 dead
	}
	for i := int64(0); i < 20; i++ {
		for _, b := range r.mgrs[0].buddies(key(i), 0) {
			if b == 1 {
				t.Fatal("dead blade chosen as buddy")
			}
		}
	}
}
