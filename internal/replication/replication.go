// Package replication implements N-way replication of write data across
// controller caches (§6.1): a write is acknowledged only after N blade
// caches hold the dirty data, so N−1 blade failures lose nothing. Replicas
// are released once the owner destages the block, and surviving holders
// destage a dead owner's replicas during recovery.
package replication

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

const ctrlSize = 64

// Replica is a dirty block held on behalf of another blade.
type Replica struct {
	Owner   int
	Version uint64
	Data    []byte
}

type putReq struct {
	Key     cache.Key
	Owner   int
	Version uint64
	Data    []byte
}
type putResp struct{}
type dropReq struct {
	Key     cache.Key
	Owner   int
	Version uint64
}
type dropResp struct{}

// Manager runs replication for one blade: it pushes this blade's dirty
// blocks to buddies and stores replicas for peers.
type Manager struct {
	k     *sim.Kernel
	conn  *simnet.Conn
	peers []simnet.Addr
	self  int
	// n is the total number of cache copies per dirty block (owner
	// included); n=1 disables replication.
	n     int
	alive []int
	// held maps (owner, key) → replica stored for that owner.
	held map[int]map[cache.Key]Replica
	// placed records where this blade last replicated each of its own
	// dirty blocks, so OnClean drops from the right buddies even when a
	// per-file factor differs from the default.
	placed map[cache.Key][]int
	// Retry bounds each replica push (per-attempt deadline, attempt
	// budget, jittered backoff); the zero value falls back to a single
	// 2 s-deadline attempt per buddy, the pre-retry behaviour.
	Retry simnet.RetryPolicy
	// Stats
	Puts, Drops, Recovered int64
}

// New builds a manager and registers its handlers on conn (which may be
// shared with the coherence engine — method names do not collide).
func New(k *sim.Kernel, conn *simnet.Conn, peers []simnet.Addr, self, n int) *Manager {
	m := &Manager{
		k: k, conn: conn, peers: peers, self: self, n: n,
		held:   make(map[int]map[cache.Key]Replica),
		placed: make(map[cache.Key][]int),
	}
	for i := range peers {
		m.alive = append(m.alive, i)
	}
	conn.Register("repl.put", m.handlePut)
	conn.Register("repl.drop", m.handleDrop)
	return m
}

// SetAlive installs the live membership (must match the coherence layer).
func (m *Manager) SetAlive(alive []int) {
	m.alive = append([]int(nil), alive...)
}

// Factor returns the replication factor N.
func (m *Manager) Factor() int { return m.n }

// RegisterTelemetry publishes the manager's counters under s: replica
// pushes/releases, recoveries replayed, and replicas currently held for
// peers.
func (m *Manager) RegisterTelemetry(s telemetry.Scope) {
	s.Int("puts", func() int64 { return m.Puts })
	s.Int("drops", func() int64 { return m.Drops })
	s.Int("recovered", func() int64 { return m.Recovered })
	s.Int("held_blocks", func() int64 { return int64(m.HeldBlocks()) })
}

// SetFactor changes N for subsequent writes. The paper allows the level to
// be "dynamically specified on a file-by-file basis"; the per-write factor
// is plumbed through the PFS policy layer via managers configured per class.
func (m *Manager) SetFactor(n int) { m.n = n }

// buddies returns the factor−1 blades (≠ self) that replicate key for
// this blade, chosen deterministically so recovery can be audited.
// factor ≤ 0 selects the manager default.
func (m *Manager) buddies(key cache.Key, factor int) []int {
	if factor <= 0 {
		factor = m.n
	}
	want := factor - 1
	if want <= 0 {
		return nil
	}
	live := make([]int, 0, len(m.alive))
	for _, id := range m.alive {
		if id != m.self {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if want > len(live) {
		want = len(live)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", key.Vol, key.LBA)
	start := int(h.Sum64() % uint64(len(live)))
	out := make([]int, 0, want)
	for i := 0; i < want; i++ {
		out = append(out, live[(start+i)%len(live)])
	}
	return out
}

// ReplicateDirty pushes the block to all buddies and blocks until every
// one acknowledges — the paper's write-ack condition. It has the exact
// signature of coherence.Config.ReplicateDirty. factor overrides the
// manager's default replication factor when positive (per-file policy §4).
func (m *Manager) ReplicateDirty(p *sim.Proc, key cache.Key, data []byte, version uint64, factor int) error {
	buddies := m.buddies(key, factor)
	m.placed[key] = buddies
	if len(buddies) == 0 {
		return nil
	}
	pol := m.Retry
	if pol.Timeout <= 0 {
		pol.Timeout = 2 * sim.Second
	}
	if pol.Attempts < 1 {
		// Match the coherence layer's default: a single dropped packet
		// should not fail an acknowledged write.
		pol.Attempts = 3
	}
	var sp *trace.Active
	if ctx := trace.FromProc(p); ctx.Valid() {
		sp = ctx.Child("replicate", trace.Repl, fmt.Sprintf("blade%d", m.self))
	}
	// The per-buddy push processes must parent under the replicate span,
	// not the op root, so push its context while spawning.
	pop := sp.Push(p)
	grp := sim.NewGroup(m.k)
	var firstErr error
	for _, b := range buddies {
		b := b
		grp.Add(1)
		m.k.Go("repl.put", func(q *sim.Proc) {
			defer grp.Done()
			_, err := m.conn.CallRetry(q, m.peers[b], "repl.put",
				putReq{Key: key, Owner: m.self, Version: version, Data: data},
				ctrlSize+len(data), pol)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("replication: put to blade %d: %w", b, err)
			}
		})
	}
	pop()
	grp.Wait(p)
	sp.End()
	m.Puts++
	return firstErr
}

// OnClean releases replicas after the owner destaged version. It has the
// exact signature of coherence.Config.OnClean and is fire-and-forget.
func (m *Manager) OnClean(p *sim.Proc, key cache.Key, version uint64) {
	targets, ok := m.placed[key]
	if !ok {
		targets = m.buddies(key, 0)
	}
	for _, b := range targets {
		m.conn.Go(p, m.peers[b], "repl.drop",
			dropReq{Key: key, Owner: m.self, Version: version}, ctrlSize, 0)
	}
	m.Drops++
}

func (m *Manager) handlePut(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(putReq)
	byOwner, ok := m.held[req.Owner]
	if !ok {
		byOwner = make(map[cache.Key]Replica)
		m.held[req.Owner] = byOwner
	}
	if old, exists := byOwner[req.Key]; !exists || req.Version >= old.Version {
		byOwner[req.Key] = Replica{Owner: req.Owner, Version: req.Version, Data: append([]byte(nil), req.Data...)}
	}
	return putResp{}, ctrlSize
}

func (m *Manager) handleDrop(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(dropReq)
	if byOwner, ok := m.held[req.Owner]; ok {
		if r, exists := byOwner[req.Key]; exists && r.Version <= req.Version {
			delete(byOwner, req.Key)
		}
	}
	return dropResp{}, ctrlSize
}

// HeldFor returns the replicas this blade stores for owner (for recovery
// and tests).
func (m *Manager) HeldFor(owner int) map[cache.Key]Replica {
	out := make(map[cache.Key]Replica, len(m.held[owner]))
	for k, v := range m.held[owner] {
		out[k] = v
	}
	return out
}

// HeldBlocks returns the total replica count stored on this blade.
func (m *Manager) HeldBlocks() int {
	n := 0
	for _, byOwner := range m.held {
		n += len(byOwner)
	}
	return n
}

// RecoverFor destages every replica held for the dead owner via write and
// discards it, returning the number recovered. The cluster calls this on
// every survivor when a blade dies; together the survivors cover all of
// the dead blade's acknowledged-but-undestaged writes (unless all N
// holders died).
func (m *Manager) RecoverFor(p *sim.Proc, dead int, write func(p *sim.Proc, key cache.Key, data []byte) error) (int, error) {
	byOwner := m.held[dead]
	// Destage in key order, not map order: recovery I/O timing must be
	// identical across runs with the same seed.
	keys := make([]cache.Key, 0, len(byOwner))
	for key := range byOwner {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Vol != keys[j].Vol {
			return keys[i].Vol < keys[j].Vol
		}
		return keys[i].LBA < keys[j].LBA
	})
	n := 0
	for _, key := range keys {
		if err := write(p, key, byOwner[key].Data); err != nil {
			return n, err
		}
		delete(byOwner, key)
		n++
		m.Recovered++
	}
	return n, nil
}

// DropOwner discards all replicas held for owner without destaging (used
// when the owner recovered by itself).
func (m *Manager) DropOwner(owner int) { delete(m.held, owner) }
