// Package baseline implements the storage architecture the paper argues
// against: a traditional monolithic array with a fixed pair of controllers
// (active-active write-cache mirroring, §6.1), private per-controller
// caches with no inter-controller coherence, and volumes statically owned
// by one controller. Hot volumes therefore saturate one controller while
// the other idles (§2: "hot spots in cache and processors on controllers"),
// aggregate performance stops scaling at two controllers, and rebuilds run
// on a single controller in competition with foreground I/O (§2.4).
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/virt"
)

// Config sizes the array.
type Config struct {
	// CacheBlocksPerController sizes each private cache.
	CacheBlocksPerController int
	// Disks and DisksPerGroup shape the RAID groups.
	Disks         int
	DisksPerGroup int
	RAIDLevel     raid.Level
	DiskSpec      disk.Spec
	ExtentBlocks  int64
	// OpDelay and CPUSlots model each controller's processor.
	OpDelay  sim.Duration
	CPUSlots int
	// FlushInterval drives write-back destaging (0 = 20 ms).
	FlushInterval sim.Duration
	// MirrorWrites enables active-active write-cache mirroring: dirty
	// data is copied to the partner, surviving one controller failure.
	MirrorWrites bool
}

// DefaultConfig mirrors the cluster's default disk complement.
func DefaultConfig() Config {
	return Config{
		CacheBlocksPerController: 4096,
		Disks:                    20,
		DisksPerGroup:            5,
		RAIDLevel:                raid.RAID5,
		ExtentBlocks:             256,
		OpDelay:                  10 * sim.Microsecond,
		CPUSlots:                 4,
		MirrorWrites:             true,
	}
}

// controller is one of the array's two brains.
type controller struct {
	id    int
	cache *cache.Cache
	// mirror holds partner dirty data (key → data) when MirrorWrites.
	mirror map[cache.Key][]byte
	cpu    *sim.Semaphore
	down   bool
	Ops    int64
}

// Array is the traditional dual-controller system.
type Array struct {
	K      *sim.Kernel
	Cfg    Config
	Farm   *disk.Farm
	Groups []*raid.Group
	Pool   *virt.Pool

	ctrls    [2]*controller
	volOwner map[string]int
	Errors   int64

	stopFlush func()
}

// New builds the array.
func New(k *sim.Kernel, cfg Config) (*Array, error) {
	if cfg.DiskSpec.BlockSize == 0 {
		cfg.DiskSpec = disk.DefaultSpec()
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 20 * sim.Millisecond
	}
	if cfg.ExtentBlocks == 0 {
		cfg.ExtentBlocks = 256
	}
	if cfg.CPUSlots == 0 {
		cfg.CPUSlots = 4
	}
	if cfg.DisksPerGroup <= 0 || cfg.Disks%cfg.DisksPerGroup != 0 {
		return nil, fmt.Errorf("baseline: %d disks not divisible by group width %d", cfg.Disks, cfg.DisksPerGroup)
	}
	a := &Array{K: k, Cfg: cfg, volOwner: make(map[string]int)}
	a.Farm = disk.NewFarm(k, "bdisk", cfg.Disks, cfg.DiskSpec)
	var devices []virt.BlockDevice
	for g := 0; g < cfg.Disks/cfg.DisksPerGroup; g++ {
		grp, err := raid.NewGroup(k, cfg.RAIDLevel, a.Farm.Disks[g*cfg.DisksPerGroup:(g+1)*cfg.DisksPerGroup])
		if err != nil {
			return nil, err
		}
		a.Groups = append(a.Groups, grp)
		devices = append(devices, grp)
	}
	pool, err := virt.NewPool(k, cfg.ExtentBlocks, devices...)
	if err != nil {
		return nil, err
	}
	a.Pool = pool
	for i := 0; i < 2; i++ {
		a.ctrls[i] = &controller{
			id:     i,
			cache:  cache.New(cfg.CacheBlocksPerController),
			mirror: make(map[cache.Key][]byte),
			cpu:    sim.NewSemaphore(k, cfg.CPUSlots),
		}
	}
	a.startFlusher()
	return a, nil
}

// CreateVolume provisions a thick volume and assigns it a controller owner
// (round-robin by count — the static partitioning of traditional arrays).
func (a *Array) CreateVolume(name string, blocks int64) error {
	if _, err := a.Pool.CreateVolume(name, blocks); err != nil {
		return err
	}
	a.volOwner[name] = len(a.volOwner) % 2
	return nil
}

// SetOwner pins a volume to a controller (for experiments).
func (a *Array) SetOwner(vol string, ctrl int) { a.volOwner[vol] = ctrl % 2 }

// Owner reports which controller serves vol.
func (a *Array) Owner(vol string) int { return a.volOwner[vol] }

// ControllerOps returns per-controller served operation counts.
func (a *Array) ControllerOps() [2]int64 {
	return [2]int64{a.ctrls[0].Ops, a.ctrls[1].Ops}
}

// owner resolves the serving controller, failing over to the partner when
// the owner is down.
func (a *Array) owner(vol string) (*controller, error) {
	id, ok := a.volOwner[vol]
	if !ok {
		return nil, fmt.Errorf("baseline: no volume %q", vol)
	}
	c := a.ctrls[id]
	if c.down {
		c = a.ctrls[1-id]
	}
	if c.down {
		return nil, errors.New("baseline: both controllers down")
	}
	return c, nil
}

func (a *Array) volume(vol string) (*virt.Volume, error) {
	v, ok := a.Pool.Volumes()[vol]
	if !ok {
		return nil, fmt.Errorf("baseline: no volume %q", vol)
	}
	return v, nil
}

func (c *controller) busy(p *sim.Proc, d sim.Duration) {
	c.cpu.Acquire(p, 1)
	p.Sleep(d)
	c.cpu.Release(1)
}

// Read serves count blocks through the volume's owning controller.
func (a *Array) Read(p *sim.Proc, vol string, lba int64, count int) ([]byte, error) {
	c, err := a.owner(vol)
	if err != nil {
		a.Errors++
		return nil, err
	}
	v, err := a.volume(vol)
	if err != nil {
		a.Errors++
		return nil, err
	}
	bs := a.Pool.BlockSize()
	out := make([]byte, count*bs)
	for i := 0; i < count; i++ {
		c.busy(p, a.Cfg.OpDelay)
		key := cache.Key{Vol: vol, LBA: lba + int64(i)}
		if ent, ok := c.cache.Get(key); ok {
			copy(out[i*bs:], ent.Data)
			continue
		}
		data, err := v.Read(p, lba+int64(i), 1)
		if err != nil {
			a.Errors++
			return nil, err
		}
		a.makeRoom(p, c, v)
		c.cache.Put(key, data, cache.Shared, false, 0)
		copy(out[i*bs:], data)
	}
	c.Ops += int64(count)
	return out, nil
}

// Write stores block-aligned data through the owning controller,
// write-back with optional partner mirroring.
func (a *Array) Write(p *sim.Proc, vol string, lba int64, data []byte) error {
	c, err := a.owner(vol)
	if err != nil {
		a.Errors++
		return err
	}
	v, err := a.volume(vol)
	if err != nil {
		a.Errors++
		return err
	}
	bs := a.Pool.BlockSize()
	if len(data)%bs != 0 {
		return fmt.Errorf("baseline: unaligned write of %d bytes", len(data))
	}
	partner := a.ctrls[1-c.id]
	for i := 0; i < len(data)/bs; i++ {
		c.busy(p, a.Cfg.OpDelay)
		key := cache.Key{Vol: vol, LBA: lba + int64(i)}
		blk := append([]byte(nil), data[i*bs:(i+1)*bs]...)
		a.makeRoom(p, c, v)
		ent := c.cache.Put(key, blk, cache.Modified, true, 0)
		ent.Version++
		if a.Cfg.MirrorWrites && !partner.down {
			// Cache-mirror copy over the controllers' internal bus;
			// modeled as a CPU charge on the partner.
			partner.busy(p, a.Cfg.OpDelay/2)
			partner.mirror[key] = blk
		}
	}
	c.Ops += int64(len(data) / bs)
	return nil
}

// makeRoom evicts from c's cache, destaging dirty victims.
func (a *Array) makeRoom(p *sim.Proc, c *controller, v *virt.Volume) {
	for c.cache.NeedsRoom(1) {
		victim := c.cache.Victim()
		if victim == nil {
			return
		}
		if victim.Dirty {
			if err := a.destage(p, c, victim); err != nil {
				return
			}
		}
		c.cache.Evict(victim)
	}
}

// destage writes one dirty block to its volume and releases the mirror.
func (a *Array) destage(p *sim.Proc, c *controller, ent *cache.Entry) error {
	v, err := a.volume(ent.Key.Vol)
	if err != nil {
		return err
	}
	ver := ent.Version
	ent.Pinned = true
	err = v.Write(p, ent.Key.LBA, ent.Data)
	ent.Pinned = false
	if err != nil {
		return err
	}
	if ent.Version == ver {
		ent.Dirty = false
		delete(a.ctrls[1-c.id].mirror, ent.Key)
	}
	return nil
}

// startFlusher runs one destager per controller.
func (a *Array) startFlusher() {
	stopped := false
	a.stopFlush = func() { stopped = true }
	for i := 0; i < 2; i++ {
		c := a.ctrls[i]
		a.K.Go(fmt.Sprintf("baseline.flusher%d", i), func(p *sim.Proc) {
			for {
				p.Sleep(a.Cfg.FlushInterval)
				if stopped || c.down {
					return
				}
				flushed := 0
				for _, ent := range c.cache.DirtyEntries() {
					if flushed >= 64 {
						break
					}
					if ent.Pinned || !ent.Dirty {
						continue
					}
					if a.destage(p, c, ent) == nil {
						flushed++
					}
				}
			}
		})
	}
}

// Stop halts background flushers.
func (a *Array) Stop() {
	if a.stopFlush != nil {
		a.stopFlush()
	}
}

// FailController kills controller id. With mirroring, the partner destages
// the dead controller's dirty data from its mirror copy; without, that
// data is simply gone — the single-point-of-failure exposure of §6.1.
func (a *Array) FailController(p *sim.Proc, id int) error {
	c := a.ctrls[id%2]
	if c.down {
		return nil
	}
	c.down = true
	c.cache.Clear()
	partner := a.ctrls[1-id%2]
	if partner.down {
		return errors.New("baseline: both controllers down")
	}
	if a.Cfg.MirrorWrites {
		for key, blk := range partner.mirror {
			v, err := a.volume(key.Vol)
			if err != nil {
				continue
			}
			if err := v.Write(p, key.LBA, blk); err != nil {
				return err
			}
			delete(partner.mirror, key)
		}
	} else {
		partner.mirror = make(map[cache.Key][]byte)
	}
	return nil
}

// Rebuild runs a single-controller rebuild of group g's disk idx — the
// whole reconstruction competes with foreground I/O through one brain.
func (a *Array) Rebuild(p *sim.Proc, g, idx int) error {
	if g < 0 || g >= len(a.Groups) {
		return fmt.Errorf("baseline: no group %d", g)
	}
	group := a.Groups[g]
	if _, err := group.StartRebuild(idx); err != nil {
		return err
	}
	// One controller, one rebuild worker.
	return group.Rebuild(p, idx, 1)
}
