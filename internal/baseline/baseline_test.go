package baseline

import (
	"bytes"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.DiskSpec = disk.Spec{
		BlockSize:   512,
		Blocks:      4096,
		Seek:        2 * sim.Millisecond,
		Rotation:    sim.Millisecond,
		TransferBps: 400_000_000,
	}
	cfg.Disks = 10
	cfg.DisksPerGroup = 5
	cfg.ExtentBlocks = 16
	cfg.CacheBlocksPerController = 256
	return cfg
}

func newArray(t *testing.T, mutate func(*Config)) (*Array, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel(1)
	cfg := smallConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, k
}

func run(k *sim.Kernel, body func(p *sim.Proc)) {
	done := false
	k.Go("test", func(p *sim.Proc) { body(p); done = true })
	k.RunFor(60 * sim.Second)
	if !done {
		panic("baseline test did not finish")
	}
}

func pat(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*17 + seed
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	a, k := newArray(t, nil)
	defer a.Stop()
	if err := a.CreateVolume("v", 256); err != nil {
		t.Fatal(err)
	}
	data := pat(512*8, 1)
	run(k, func(p *sim.Proc) {
		if err := a.Write(p, "v", 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := a.Read(p, "v", 0, 8)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip mismatch")
		}
	})
}

func TestStaticOwnershipConcentratesLoad(t *testing.T) {
	// The §2 hot-spot defect: all traffic to one volume lands on one
	// controller regardless of load.
	a, k := newArray(t, nil)
	defer a.Stop()
	a.CreateVolume("hot", 256)
	a.SetOwner("hot", 0)
	run(k, func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			a.Read(p, "hot", int64(i%32), 1)
		}
	})
	ops := a.ControllerOps()
	if ops[0] != 64 || ops[1] != 0 {
		t.Fatalf("ops = %v, want all 64 on controller 0", ops)
	}
}

func TestFailoverToPartner(t *testing.T) {
	a, k := newArray(t, nil)
	defer a.Stop()
	a.CreateVolume("v", 256)
	a.SetOwner("v", 0)
	data := pat(512*2, 3)
	run(k, func(p *sim.Proc) {
		if err := a.Write(p, "v", 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Owner dies; mirrored dirty data must survive via the partner.
		if err := a.FailController(p, 0); err != nil {
			t.Errorf("fail: %v", err)
			return
		}
		got, err := a.Read(p, "v", 0, 2)
		if err != nil {
			t.Errorf("read after failover: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("mirrored write lost on single controller failure")
		}
	})
}

func TestNoMirrorLosesDirtyData(t *testing.T) {
	a, k := newArray(t, func(cfg *Config) {
		cfg.MirrorWrites = false
		cfg.FlushInterval = 10 * sim.Second
	})
	defer a.Stop()
	a.CreateVolume("v", 256)
	a.SetOwner("v", 0)
	data := pat(512, 5)
	run(k, func(p *sim.Proc) {
		a.Write(p, "v", 0, data)
		a.FailController(p, 0)
		got, err := a.Read(p, "v", 0, 1)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if bytes.Equal(got, data) {
			t.Error("unmirrored dirty data survived controller loss — premise broken")
		}
	})
}

func TestBothControllersDown(t *testing.T) {
	a, k := newArray(t, nil)
	defer a.Stop()
	a.CreateVolume("v", 256)
	run(k, func(p *sim.Proc) {
		a.FailController(p, 0)
		if err := a.FailController(p, 1); err == nil {
			t.Error("second controller failure not reported")
		}
		if _, err := a.Read(p, "v", 0, 1); err == nil {
			t.Error("read served with both controllers down")
		}
	})
}

func TestRebuildSingleController(t *testing.T) {
	a, k := newArray(t, nil)
	defer a.Stop()
	a.CreateVolume("v", 512)
	data := pat(512*64, 7)
	run(k, func(p *sim.Proc) {
		a.Write(p, "v", 0, data)
		// Force destage so the RAID group holds the data.
		for _, c := range a.ctrls {
			for _, ent := range c.cache.DirtyEntries() {
				a.destage(p, c, ent)
			}
		}
		a.Groups[0].Disks()[1].Fail()
		if err := a.Rebuild(p, 0, 1); err != nil {
			t.Errorf("rebuild: %v", err)
			return
		}
		got, err := a.Read(p, "v", 0, 64)
		if err != nil {
			t.Errorf("read after rebuild: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("data wrong after rebuild")
		}
	})
}

func TestCacheHitsServeFromController(t *testing.T) {
	a, k := newArray(t, nil)
	defer a.Stop()
	a.CreateVolume("v", 256)
	var cold, warm sim.Duration
	run(k, func(p *sim.Proc) {
		a.Write(p, "v", 0, pat(512, 1))
		t0 := p.Now()
		a.Read(p, "v", 0, 1)
		cold = p.Now().Sub(t0) // may hit cache (write-back) — measure anyway
		t1 := p.Now()
		a.Read(p, "v", 0, 1)
		warm = p.Now().Sub(t1)
	})
	if warm > cold {
		t.Fatalf("warm read %v slower than first read %v", warm, cold)
	}
	if warm > sim.Millisecond {
		t.Fatalf("cache hit took %v; should be CPU-bound microseconds", warm)
	}
}
