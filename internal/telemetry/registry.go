// Package telemetry turns the simulator's loose per-package statistics into
// one first-class observability surface: a hierarchical named registry every
// instrument publishes into (blade/3/cache/hits, disk/12/queue_depth,
// net/link/blade0-blade1/bytes), a virtual-time scraper that snapshots the
// registry into ring-buffered time series, and watchdogs (hot-spot, SLO,
// stall) that evaluate rules over consecutive scrapes — directly
// instrumenting the paper's aggregate claims (§2.1 linear scaling, §2.2 no
// per-blade hot spots, §2.4 services that don't impede foreground I/O).
//
// Everything here is a pure read of the simulation: samplers take zero
// virtual time and draw no randomness, so scraping is deterministic
// (same-seed runs export byte-identical timelines) and non-perturbing
// (enabling the scraper moves no simulated events) — the same contract the
// tracer keeps.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Registry is a hierarchical named-metric registry. Instruments register
// under '/'-separated paths; names are unique and every read-out order is
// sorted naturally (blade/10 after blade/9), so any export built from a
// Registry is deterministic by construction.
//
// Samplers must be pure reads of simulation state: no virtual time, no
// randomness, no mutation.
type Registry struct {
	samplers map[string]func() float64
	hists    map[string]*metrics.Histogram
	gauges   []*metrics.Gauge
	names    []string
	sorted   bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		samplers: make(map[string]func() float64),
		hists:    make(map[string]*metrics.Histogram),
	}
}

// Func registers fn as the sampler for metric name. Registering a duplicate
// name panics: a collision silently shadowing a metric would corrupt every
// consumer, and registration happens once at construction time.
func (r *Registry) Func(name string, fn func() float64) {
	if name == "" || fn == nil {
		panic("telemetry: empty metric name or nil sampler")
	}
	if _, dup := r.samplers[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.samplers[name] = fn
	r.names = append(r.names, name)
	r.sorted = false
}

// Int registers an int64-valued sampler.
func (r *Registry) Int(name string, fn func() int64) {
	r.Func(name, func() float64 { return float64(fn()) })
}

// Counter registers a metrics.Counter's current value.
func (r *Registry) Counter(name string, c *metrics.Counter) {
	r.Int(name, c.Value)
}

// Gauge registers a metrics.Gauge as three series: the current value plus
// its high and low watermarks (name, name/max, name/min). The gauge is also
// remembered for ResetWatermarks, so under a scraper the watermarks report
// per-interval peaks rather than lifetime extremes.
func (r *Registry) Gauge(name string, g *metrics.Gauge) {
	r.Int(name, g.Value)
	r.Int(name+"/max", g.Max)
	r.Int(name+"/min", g.Min)
	r.gauges = append(r.gauges, g)
}

// Histogram registers a metrics.Histogram as derived series (name/count,
// name/mean_ms, name/p50_ms, name/p99_ms) and keeps the histogram itself
// retrievable via HistogramFor, so watchdogs can compute windowed quantiles.
func (r *Registry) Histogram(name string, h *metrics.Histogram) {
	if _, dup := r.hists[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate histogram %q", name))
	}
	r.hists[name] = h
	r.Int(name+"/count", h.Count)
	r.Func(name+"/mean_ms", func() float64 { return h.Mean().Millis() })
	r.Func(name+"/p50_ms", func() float64 { return h.P50().Millis() })
	r.Func(name+"/p99_ms", func() float64 { return h.P99().Millis() })
}

// HistogramFor returns the histogram registered under name, or nil.
func (r *Registry) HistogramFor(name string) *metrics.Histogram { return r.hists[name] }

// ExemplarFor returns the exemplar nearest the q-quantile of the histogram
// registered under name: the trace ID of the op behind that latency. ok is
// false when the histogram is unknown or carries no traced samples.
// Exemplars are surfaced here as a lookup, not as derived series — traces
// are identities, not measurements to scrape.
func (r *Registry) ExemplarFor(name string, q float64) (metrics.Exemplar, bool) {
	h := r.hists[name]
	if h == nil {
		return metrics.Exemplar{}, false
	}
	return h.ExemplarNear(q)
}

// ResetWatermarks re-arms every registered gauge's high/low watermarks at
// its current value. The scraper calls this after each scrape.
func (r *Registry) ResetWatermarks() {
	for _, g := range r.gauges {
		g.Reset()
	}
}

// Len reports the number of registered series.
func (r *Registry) Len() int { return len(r.names) }

func (r *Registry) sortNames() {
	if !r.sorted {
		sort.Slice(r.names, func(i, j int) bool { return naturalLess(r.names[i], r.names[j]) })
		r.sorted = true
	}
}

// Names returns every registered metric name in natural sorted order.
func (r *Registry) Names() []string {
	r.sortNames()
	return append([]string(nil), r.names...)
}

// Value samples one metric by name.
func (r *Registry) Value(name string) (float64, bool) {
	fn, ok := r.samplers[name]
	if !ok {
		return 0, false
	}
	return fn(), true
}

// Sample reads every metric once, returning names (natural order) and the
// values aligned with them.
func (r *Registry) Sample() (names []string, values []float64) {
	names = r.Names()
	values = make([]float64, len(names))
	for i, n := range names {
		values[i] = r.samplers[n]()
	}
	return names, values
}

// Match returns the registered names matching pattern, in natural order.
// Pattern segments are matched literally except "*", which matches exactly
// one path segment: "blade/*/ops" matches blade/0/ops but not
// blade/0/cache/hits.
func (r *Registry) Match(pattern string) []string {
	r.sortNames()
	var out []string
	for _, n := range r.names {
		if matchPattern(pattern, n) {
			out = append(out, n)
		}
	}
	return out
}

func matchPattern(pattern, name string) bool {
	ps := strings.Split(pattern, "/")
	ns := strings.Split(name, "/")
	if len(ps) != len(ns) {
		return false
	}
	for i := range ps {
		if ps[i] != "*" && ps[i] != ns[i] {
			return false
		}
	}
	return true
}

// naturalLess orders '/'-separated paths segment-wise, comparing all-digit
// segments numerically so blade/10 sorts after blade/9.
func naturalLess(a, b string) bool {
	as, bs := strings.Split(a, "/"), strings.Split(b, "/")
	for i := 0; i < len(as) && i < len(bs); i++ {
		x, y := as[i], bs[i]
		if x == y {
			continue
		}
		xn, xe := strconv.ParseInt(x, 10, 64)
		yn, ye := strconv.ParseInt(y, 10, 64)
		if xe == nil && ye == nil {
			return xn < yn
		}
		return x < y
	}
	return len(as) < len(bs)
}

// WriteProm writes the registry's current values as Prometheus text
// exposition ('/' becomes '_' in names; one "name value" line per metric,
// sorted, so the output is byte-stable for a given state).
func (r *Registry) WriteProm(w io.Writer) error {
	names, values := r.Sample()
	for i, n := range names {
		if _, err := fmt.Fprintf(w, "%s %s\n", promName(n), formatValue(values[i])); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a '/'-separated metric path into a Prometheus-legal
// metric name.
func promName(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// formatValue renders a float64 the way encoding/json does (shortest
// round-trip form), so Prom and JSONL exports agree byte-for-byte across
// runs.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Scope is a Registry view under a fixed name prefix, so a package can
// register its instruments without knowing where it sits in the hierarchy
// (the cluster hands its blade-3 engine the "blade/3" scope).
type Scope struct {
	r      *Registry
	prefix string
}

// Sub returns a scope rooted at prefix.
func (r *Registry) Sub(prefix string) Scope { return Scope{r: r, prefix: prefix} }

// Sub narrows the scope by another path component.
func (s Scope) Sub(prefix string) Scope {
	return Scope{r: s.r, prefix: s.prefix + "/" + prefix}
}

// Registry returns the underlying registry.
func (s Scope) Registry() *Registry { return s.r }

func (s Scope) name(n string) string {
	if s.prefix == "" {
		return n
	}
	return s.prefix + "/" + n
}

// Func, Int, Counter, Gauge and Histogram mirror the Registry methods under
// the scope's prefix.
func (s Scope) Func(n string, fn func() float64)        { s.r.Func(s.name(n), fn) }
func (s Scope) Int(n string, fn func() int64)           { s.r.Int(s.name(n), fn) }
func (s Scope) Counter(n string, c *metrics.Counter)    { s.r.Counter(s.name(n), c) }
func (s Scope) Gauge(n string, g *metrics.Gauge)        { s.r.Gauge(s.name(n), g) }
func (s Scope) Histogram(n string, h *metrics.Histogram) { s.r.Histogram(s.name(n), h) }
