package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultScrapeCap bounds the number of retained scrapes per scraper; older
// scrapes fall out of the ring. Watchdogs keep working across wraps because
// the previous full snapshot is held separately.
const DefaultScrapeCap = 1 << 10

// Scraper is a simulated process that snapshots a Registry every Interval of
// virtual time into a ring of time series, evaluates watchdogs over
// consecutive snapshots, and exports the retained window as a JSONL
// timeline. Scrapes happen in zero virtual time and draw no randomness, so
// a scraping run is byte-identical to the same seed without one.
type Scraper struct {
	k        *sim.Kernel
	reg      *Registry
	interval sim.Duration
	cap      int

	// Tracer, when non-nil, receives every watchdog event as an instant
	// span (phase trace.Watchdog), interleaving alarms with the per-op
	// spans they explain.
	Tracer *trace.Tracer

	watchdogs []Watchdog

	// Frozen at the first scrape so ring rows stay aligned; register every
	// instrument before starting the scraper.
	names []string

	times   []sim.Time  // ring, capacity cap
	rows    [][]float64 // ring, aligned with times
	head    int         // index of the oldest retained scrape
	n       int         // retained count
	prev    []float64   // last full snapshot (survives ring wrap)
	prevT   sim.Time
	scrapes int64
	events  []Event
	stopped bool
	started bool
}

// NewScraper returns a scraper over reg ticking every interval.
func NewScraper(k *sim.Kernel, reg *Registry, interval sim.Duration) *Scraper {
	if interval <= 0 {
		panic("telemetry: scrape interval must be positive")
	}
	return &Scraper{k: k, reg: reg, interval: interval, cap: DefaultScrapeCap}
}

// SetCap resizes the retained-scrape ring (existing scrapes are dropped).
func (s *Scraper) SetCap(n int) {
	if n <= 0 {
		panic("telemetry: scrape cap must be positive")
	}
	s.cap = n
	s.times, s.rows, s.head, s.n = nil, nil, 0, 0
}

// AddWatchdog attaches w; it is evaluated on every scrape, in attach order.
func (s *Scraper) AddWatchdog(w Watchdog) { s.watchdogs = append(s.watchdogs, w) }

// Interval returns the scrape period.
func (s *Scraper) Interval() sim.Duration { return s.interval }

// Registry returns the scraped registry.
func (s *Scraper) Registry() *Registry { return s.reg }

// Start schedules the periodic scrape (first tick one interval from now)
// and returns a stop function. Stopping lets the kernel's event queue
// drain; a stopped scraper keeps its retained window and can be restarted.
func (s *Scraper) Start() (stop func()) {
	if s.started {
		panic("telemetry: scraper already started")
	}
	s.started = true
	s.stopped = false
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.ScrapeNow()
		s.k.After(s.interval, tick)
	}
	s.k.After(s.interval, tick)
	return func() {
		s.stopped = true
		s.started = false
	}
}

// ScrapeNow takes one snapshot immediately (also usable without Start for
// manually paced scraping). It consumes no virtual time.
func (s *Scraper) ScrapeNow() {
	if s.names == nil {
		s.names, _ = s.reg.Sample()
	}
	now := s.k.Now()
	cur := make([]float64, len(s.names))
	for i, n := range s.names {
		cur[i] = s.reg.samplers[n]()
	}

	// Ring push.
	if s.times == nil {
		s.times = make([]sim.Time, s.cap)
		s.rows = make([][]float64, s.cap)
	}
	pos := (s.head + s.n) % s.cap
	if s.n == s.cap {
		s.head = (s.head + 1) % s.cap
	} else {
		s.n++
	}
	s.times[pos] = now
	s.rows[pos] = cur

	v := &View{
		T:        now,
		Interval: now.Sub(s.prevT),
		First:    s.scrapes == 0,
		Reg:      s.reg,
		names:    s.names,
		prev:     s.prev,
		cur:      cur,
	}
	for _, w := range s.watchdogs {
		for _, ev := range w.Check(v) {
			s.emit(ev)
		}
	}

	s.prev = cur
	s.prevT = now
	s.scrapes++
	s.reg.ResetWatermarks()
}

func (s *Scraper) emit(ev Event) {
	ev.T = s.k.Now()
	s.events = append(s.events, ev)
	if s.Tracer.Enabled() {
		a := s.Tracer.StartTrace(ev.Rule, trace.Watchdog, "telemetry")
		a.Detail("%s: %s", ev.Severity, ev.Detail)
		a.End()
	}
}

// Scrapes reports how many scrapes have run (including ones that have
// fallen out of the ring).
func (s *Scraper) Scrapes() int64 { return s.scrapes }

// Events returns every watchdog event emitted so far, in order.
func (s *Scraper) Events() []Event { return append([]Event(nil), s.events...) }

// Times returns the retained scrape timestamps, oldest first.
func (s *Scraper) Times() []sim.Time {
	out := make([]sim.Time, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.times[(s.head+i)%s.cap]
	}
	return out
}

// Window returns the virtual-time span covered by the retained scrapes.
func (s *Scraper) Window() sim.Duration {
	if s.n < 2 {
		return 0
	}
	return s.times[(s.head+s.n-1)%s.cap].Sub(s.times[s.head])
}

func (s *Scraper) indexOf(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Series returns name's raw values over the retained window, oldest first
// (nil if the metric is unknown or nothing was scraped).
func (s *Scraper) Series(name string) []float64 {
	idx := s.indexOf(name)
	if idx < 0 {
		return nil
	}
	out := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.rows[(s.head+i)%s.cap][idx]
	}
	return out
}

// DeltaSeries returns name's per-interval increments over the retained
// window (one shorter than Series) — the natural view of a cumulative
// counter.
func (s *Scraper) DeltaSeries(name string) []float64 {
	raw := s.Series(name)
	if len(raw) < 2 {
		return nil
	}
	out := make([]float64, len(raw)-1)
	for i := range out {
		out[i] = raw[i+1] - raw[i]
	}
	return out
}

// WindowDelta returns last-minus-first of name over the retained window.
func (s *Scraper) WindowDelta(name string) float64 {
	raw := s.Series(name)
	if len(raw) < 2 {
		return 0
	}
	return raw[len(raw)-1] - raw[0]
}

// timelineLine is one JSONL timeline record. Field order (and json.Marshal's
// sorted map keys) makes the export byte-stable for a given scrape history.
type timelineLine struct {
	TNs     int64              `json:"t_ns"`
	Metrics map[string]float64 `json:"metrics"`
}

// WriteJSONL exports the retained scrapes as a JSONL timeline, one line per
// scrape with every metric's value at that instant. Same-seed runs produce
// byte-identical output.
func (s *Scraper) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := 0; i < s.n; i++ {
		pos := (s.head + i) % s.cap
		m := make(map[string]float64, len(s.names))
		for j, name := range s.names {
			m[name] = s.rows[pos][j]
		}
		if err := enc.Encode(timelineLine{TNs: int64(s.times[pos]), Metrics: m}); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsJSONL exports every watchdog event as JSONL, one per line.
func (s *Scraper) WriteEventsJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range s.events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// SkewTable renders how the per-interval increments of the metrics matching
// pattern (e.g. "blade/*/ops") distributed over the retained window: total,
// share, and a sparkline per series, with the CV / max-mean skew statistics
// the hot-spot watchdog alarms on. This is the E-series "no hot spots"
// artifact.
func (s *Scraper) SkewTable(title, pattern string) *metrics.Table {
	tab := metrics.NewTable(title, "metric", "total", "share %", "over time")
	var names []string
	for _, n := range s.names {
		if matchPattern(pattern, n) {
			names = append(names, n)
		}
	}
	totals := make([]float64, len(names))
	var sum float64
	for i, n := range names {
		totals[i] = s.WindowDelta(n)
		sum += totals[i]
	}
	for i, n := range names {
		share := 0.0
		if sum > 0 {
			share = 100 * totals[i] / sum
		}
		tab.AddRow(n, int64(totals[i]), share, metrics.Sparkline(s.DeltaSeries(n)))
	}
	addSkewNote(tab, totals)
	return tab
}

// SkewTable renders the distribution of the current values of the metrics
// matching pattern — the scraper-free variant for end-of-run totals.
func SkewTable(reg *Registry, title, pattern string) *metrics.Table {
	tab := metrics.NewTable(title, "metric", "value", "share %")
	names := reg.Match(pattern)
	vals := make([]float64, len(names))
	var sum float64
	for i, n := range names {
		vals[i], _ = reg.Value(n)
		sum += vals[i]
	}
	for i, n := range names {
		share := 0.0
		if sum > 0 {
			share = 100 * vals[i] / sum
		}
		tab.AddRow(n, int64(vals[i]), share)
	}
	addSkewNote(tab, vals)
	return tab
}

func addSkewNote(tab *metrics.Table, vals []float64) {
	st := metrics.Summarize(vals)
	ratio := 0.0
	if st.Mean > 0 {
		ratio = st.Max / st.Mean
	}
	tab.AddNote("skew: CV %.2f, max/mean %.2f (0 and 1 = perfectly balanced)", st.CV(), ratio)
}

// Report summarizes a scraping run: coverage plus every watchdog event.
type Report struct {
	Scrapes  int64
	Interval sim.Duration
	Window   sim.Duration
	Events   []Event
}

// Report builds the run summary.
func (s *Scraper) Report() *Report {
	return &Report{Scrapes: s.scrapes, Interval: s.interval, Window: s.Window(), Events: s.Events()}
}

// String renders the report for humans: one header line, then one line per
// event (or a clean bill of health).
func (r *Report) String() string {
	out := fmt.Sprintf("telemetry: %d scrapes every %v covering %v; %d watchdog events",
		r.Scrapes, r.Interval, r.Window, len(r.Events))
	if len(r.Events) == 0 {
		return out + " (all watchdogs quiet)"
	}
	for _, ev := range r.Events {
		out += "\n  " + ev.String()
	}
	return out
}
