package telemetry

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// deltaView builds the View a HotSpot would see for one scrape whose
// per-interval increments are exactly deltas (prev is all zeros, cur is the
// deltas themselves — Check only ever looks at the difference).
func deltaView(tick int, names []string, deltas []float64) *View {
	iv := 100 * sim.Millisecond
	return &View{
		T:        sim.Time(0).Add(sim.Duration(tick) * iv),
		Interval: iv,
		names:    names,
		prev:     make([]float64, len(names)),
		cur:      deltas,
	}
}

var bladeNames = []string{"blade/0/ops", "blade/1/ops", "blade/2/ops", "blade/3/ops"}

// skewedDeltas trips both default thresholds: CV ≈ 1.73 > 0.5 and
// max/mean = 4 > 2.
var skewedDeltas = []float64{400, 0, 0, 0}

// levelDeltas is perfectly balanced: CV = 0, ratio = 1.
var levelDeltas = []float64{100, 100, 100, 100}

// TestHotSpotZeroScrapes: the very first scrape carries no deltas, so even a
// wildly skewed snapshot must produce no events and must not advance the
// arming streak.
func TestHotSpotZeroScrapes(t *testing.T) {
	h := &HotSpot{Pattern: "blade/*/ops", For: 1}
	v := deltaView(0, bladeNames, skewedDeltas)
	v.First = true
	for i := 0; i < 3; i++ {
		if ev := h.Check(v); ev != nil {
			t.Fatalf("first-scrape check %d emitted %v, want nil", i, ev)
		}
	}
	// The first real scrape after that must still need a full streak of its
	// own: nothing leaked from the First views.
	if ev := h.Check(deltaView(1, bladeNames, skewedDeltas)); len(ev) == 0 {
		t.Fatalf("For=1 watchdog did not fire on first real skewed interval")
	}
}

// TestHotSpotSingleBlade: with fewer than two matching series the CV is
// undefined, so the watchdog must stay silent no matter the load.
func TestHotSpotSingleBlade(t *testing.T) {
	h := &HotSpot{Pattern: "blade/*/ops", For: 1}
	one := []string{"blade/0/ops"}
	for i := 1; i <= 4; i++ {
		if ev := h.Check(deltaView(i, one, []float64{1e6})); ev != nil {
			t.Fatalf("single-blade check %d emitted %v, want nil", i, ev)
		}
	}
	// Zero matching series (pattern matches nothing) is the same story.
	h2 := &HotSpot{Pattern: "disk/*/ops", For: 1}
	if ev := h2.Check(deltaView(1, bladeNames, skewedDeltas)); ev != nil {
		t.Fatalf("no-match pattern emitted %v, want nil", ev)
	}
}

// TestHotSpotExactRatioThreshold: the comparisons are strict, so load that
// hovers exactly at max/mean == RatioMax must never arm, however long it
// persists.
func TestHotSpotExactRatioThreshold(t *testing.T) {
	h := &HotSpot{Pattern: "blade/*/ops"} // defaults: CVMax 0.5, RatioMax 2, For 2
	// mean 2, max 4 → ratio exactly 2.0; CV ≈ 0.94 is well past CVMax, so
	// only the ratio leg is holding the alarm back.
	hover := []float64{4, 2, 1, 1}
	st := metrics.Summarize(hover)
	if r := st.Max / st.Mean; r != 2.0 {
		t.Fatalf("test vector drifted: max/mean = %v, want exactly 2.0", r)
	}
	if st.CV() <= 0.5 {
		t.Fatalf("test vector drifted: CV = %v, want > 0.5", st.CV())
	}
	for i := 1; i <= 10; i++ {
		if ev := h.Check(deltaView(i, bladeNames, hover)); ev != nil {
			t.Fatalf("interval %d at exact ratio threshold emitted %v, want nil", i, ev)
		}
	}
}

// TestHotSpotExactCVThreshold: same strictness for the CV leg — pin CVMax to
// the exact CV of the hovering deltas and loosen RatioMax so only CV gates.
func TestHotSpotExactCVThreshold(t *testing.T) {
	hover := []float64{3, 1, 2, 2}
	st := metrics.Summarize(hover)
	h := &HotSpot{Pattern: "blade/*/ops", CVMax: st.CV(), RatioMax: 1.01, For: 1}
	if r := st.Max / st.Mean; r <= 1.01 {
		t.Fatalf("test vector drifted: ratio %v should exceed RatioMax", r)
	}
	for i := 1; i <= 10; i++ {
		if ev := h.Check(deltaView(i, bladeNames, hover)); ev != nil {
			t.Fatalf("interval %d at exact CV threshold emitted %v, want nil", i, ev)
		}
	}
	// One epsilon past the threshold fires immediately (For=1).
	h2 := &HotSpot{Pattern: "blade/*/ops", CVMax: st.CV() * 0.999, RatioMax: 1.01, For: 1}
	if ev := h2.Check(deltaView(1, bladeNames, hover)); len(ev) != 1 || ev[0].Severity != "warn" {
		t.Fatalf("just past CV threshold: got %v, want one warn", ev)
	}
}

// TestHotSpotHoverNoFlap: load alternating between skewed and level every
// interval never satisfies For=2 consecutive skewed intervals, so the alarm
// must neither enter nor emit spurious clears.
func TestHotSpotHoverNoFlap(t *testing.T) {
	h := &HotSpot{Pattern: "blade/*/ops", For: 2}
	for i := 1; i <= 12; i++ {
		d := levelDeltas
		if i%2 == 1 {
			d = skewedDeltas
		}
		if ev := h.Check(deltaView(i, bladeNames, d)); ev != nil {
			t.Fatalf("alternating interval %d emitted %v, want nothing (streak resets)", i, ev)
		}
	}
}

// TestHotSpotSingleWarnThenClear: sustained skew emits exactly one warn when
// the streak arms, stays silent while still firing, then emits exactly one
// info clear when balance returns — and can re-arm afterwards.
func TestHotSpotSingleWarnThenClear(t *testing.T) {
	h := &HotSpot{Pattern: "blade/*/ops", For: 2}
	var events []Event
	tick := 0
	feed := func(d []float64) []Event {
		tick++
		ev := h.Check(deltaView(tick, bladeNames, d))
		events = append(events, ev...)
		return ev
	}

	if ev := feed(skewedDeltas); ev != nil {
		t.Fatalf("streak 1 of 2 emitted %v", ev)
	}
	if ev := feed(skewedDeltas); len(ev) != 1 || ev[0].Severity != "warn" {
		t.Fatalf("streak 2 of 2: got %v, want one warn", ev)
	}
	for i := 0; i < 5; i++ {
		if ev := feed(skewedDeltas); ev != nil {
			t.Fatalf("already-firing interval emitted %v, want dedup to nil", ev)
		}
	}
	clear := feed(levelDeltas)
	if len(clear) != 1 || clear[0].Severity != "info" || !strings.Contains(clear[0].Detail, "rebalanced") {
		t.Fatalf("first level interval: got %v, want one info clear", clear)
	}
	for i := 0; i < 3; i++ {
		if ev := feed(levelDeltas); ev != nil {
			t.Fatalf("already-clear interval emitted %v, want nil", ev)
		}
	}
	// Re-skew: a fresh full streak is required, then exactly one new warn.
	if ev := feed(skewedDeltas); ev != nil {
		t.Fatalf("re-arm streak 1 emitted %v", ev)
	}
	if ev := feed(skewedDeltas); len(ev) != 1 || ev[0].Severity != "warn" {
		t.Fatalf("re-arm streak 2: got %v, want one warn", ev)
	}
	warns, infos := 0, 0
	for _, e := range events {
		switch e.Severity {
		case "warn":
			warns++
		case "info":
			infos++
		}
	}
	if warns != 2 || infos != 1 {
		t.Fatalf("event tally warns=%d infos=%d, want 2 warns and 1 info: %v", warns, infos, events)
	}
}

// TestHotSpotIdleHoldsState: intervals below MinTotal are evidence of
// nothing — they must neither advance nor reset the streak, so
// skewed, idle, skewed arms a For=2 alarm.
func TestHotSpotIdleHoldsState(t *testing.T) {
	h := &HotSpot{Pattern: "blade/*/ops", For: 2}
	if ev := h.Check(deltaView(1, bladeNames, skewedDeltas)); ev != nil {
		t.Fatalf("streak 1 emitted %v", ev)
	}
	idle := []float64{0.2, 0, 0, 0} // total 0.2 < default MinTotal 1
	if ev := h.Check(deltaView(2, bladeNames, idle)); ev != nil {
		t.Fatalf("idle interval emitted %v, want nil", ev)
	}
	if ev := h.Check(deltaView(3, bladeNames, skewedDeltas)); len(ev) != 1 || ev[0].Severity != "warn" {
		t.Fatalf("skew resuming after idle: got %v, want one warn (streak held)", ev)
	}
}
