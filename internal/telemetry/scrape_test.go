package telemetry

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// tickingCounter builds a registry over a counter a sim process increments
// once per virtual millisecond — the minimal scrapeable workload.
func tickingCounter(k *sim.Kernel) (*Registry, *metrics.Counter) {
	r := NewRegistry()
	var c metrics.Counter
	r.Counter("ticks", &c)
	k.Go("ticker", func(p *sim.Proc) {
		for {
			p.Sleep(sim.Millisecond)
			c.Inc()
		}
	})
	return r, &c
}

func TestScraperSeriesAndDeltas(t *testing.T) {
	k := sim.NewKernel(1)
	reg, _ := tickingCounter(k)
	s := NewScraper(k, reg, 10*sim.Millisecond)
	stop := s.Start()
	k.RunFor(100 * sim.Millisecond)
	stop()

	if s.Scrapes() != 10 {
		t.Fatalf("Scrapes() = %d, want 10", s.Scrapes())
	}
	series := s.Series("ticks")
	if len(series) != 10 {
		t.Fatalf("len(Series) = %d, want 10", len(series))
	}
	deltas := s.DeltaSeries("ticks")
	if len(deltas) != 9 {
		t.Fatalf("len(DeltaSeries) = %d, want 9", len(deltas))
	}
	for i, d := range deltas {
		if d != 10 {
			t.Fatalf("DeltaSeries[%d] = %v, want 10 (counter ticks 1/ms, scrape every 10ms)", i, d)
		}
	}
	if got := s.WindowDelta("ticks"); got != 90 {
		t.Fatalf("WindowDelta = %v, want 90", got)
	}
	if got := s.Window(); got != 90*sim.Millisecond {
		t.Fatalf("Window() = %v, want 90ms", got)
	}
	if s.Series("unknown") != nil {
		t.Fatal("Series of unknown metric should be nil")
	}
}

func TestScraperRingWrap(t *testing.T) {
	k := sim.NewKernel(1)
	reg, _ := tickingCounter(k)
	s := NewScraper(k, reg, 10*sim.Millisecond)
	s.SetCap(4)
	stop := s.Start()
	k.RunFor(100 * sim.Millisecond)
	stop()

	if s.Scrapes() != 10 {
		t.Fatalf("Scrapes() = %d, want 10 (wrapping must not lose count)", s.Scrapes())
	}
	times := s.Times()
	if len(times) != 4 {
		t.Fatalf("len(Times) = %d, want cap 4", len(times))
	}
	// Oldest-first, and only the last 4 scrape instants survive.
	want := []sim.Time{
		sim.Time(70 * sim.Millisecond),
		sim.Time(80 * sim.Millisecond),
		sim.Time(90 * sim.Millisecond),
		sim.Time(100 * sim.Millisecond),
	}
	if !reflect.DeepEqual(times, want) {
		t.Fatalf("Times() = %v, want %v", times, want)
	}
	// At each scrape instant the tick scheduled for that exact time has
	// not yet run (the scrape event was enqueued earlier), so the counter
	// reads N*10-1.
	series := s.Series("ticks")
	if len(series) != 4 || series[0] != 69 || series[3] != 99 {
		t.Fatalf("Series after wrap = %v, want [69 79 89 99]", series)
	}
}

func TestScraperStopMovesNoEvents(t *testing.T) {
	// A stopped scraper must let the kernel drain: its tick chain ends.
	k := sim.NewKernel(1)
	reg := NewRegistry()
	reg.Int("zero", func() int64 { return 0 })
	s := NewScraper(k, reg, 10*sim.Millisecond)
	stop := s.Start()
	k.RunFor(30 * sim.Millisecond)
	stop()
	k.Run() // would never return if the scraper kept rescheduling
	if s.Scrapes() != 3 {
		t.Fatalf("Scrapes() = %d, want 3", s.Scrapes())
	}
}

// scrapeRun runs the same seeded scrape workload and returns its exports.
func scrapeRun(seed int64) (timeline, events string, scrapes int64) {
	k := sim.NewKernel(seed)
	reg, _ := tickingCounter(k)
	// A second, seeded-random counter exercises value formatting.
	var noisy metrics.Counter
	reg.Counter("noisy", &noisy)
	k.Go("noise", func(p *sim.Proc) {
		for {
			p.Sleep(sim.Duration(1+k.Rand().Int63n(int64(2*sim.Millisecond))))
			noisy.Add(k.Rand().Int63n(5))
		}
	})
	s := NewScraper(k, reg, 5*sim.Millisecond)
	s.AddWatchdog(&Stall{Queue: "ticks", Throughput: "noisy"})
	stop := s.Start()
	k.RunFor(80 * sim.Millisecond)
	stop()
	var tl, ev bytes.Buffer
	if err := s.WriteJSONL(&tl); err != nil {
		panic(err)
	}
	if err := s.WriteEventsJSONL(&ev); err != nil {
		panic(err)
	}
	return tl.String(), ev.String(), s.Scrapes()
}

func TestScraperDeterministic(t *testing.T) {
	tl1, ev1, n1 := scrapeRun(42)
	tl2, ev2, n2 := scrapeRun(42)
	if n1 != n2 {
		t.Fatalf("scrape counts differ: %d vs %d", n1, n2)
	}
	if tl1 != tl2 {
		t.Fatalf("same-seed timelines differ:\n%s\nvs\n%s", tl1, tl2)
	}
	if ev1 != ev2 {
		t.Fatalf("same-seed event streams differ:\n%q vs %q", ev1, ev2)
	}
	if tl1 == "" {
		t.Fatal("timeline export is empty")
	}
}

// watchdogHarness drives a watchdog with hand-built per-blade loads: each
// step advances virtual time one interval, applies the load, and scrapes.
type watchdogHarness struct {
	k    *sim.Kernel
	s    *Scraper
	vals map[string]*int64
}

func newWatchdogHarness(t *testing.T, w Watchdog, names ...string) *watchdogHarness {
	t.Helper()
	k := sim.NewKernel(1)
	reg := NewRegistry()
	h := &watchdogHarness{k: k, vals: make(map[string]*int64)}
	for _, n := range names {
		v := new(int64)
		h.vals[n] = v
		reg.Int(n, func() int64 { return *v })
	}
	h.s = NewScraper(k, reg, 10*sim.Millisecond)
	h.s.AddWatchdog(w)
	return h
}

// step bumps the named metrics by the given deltas, advances one interval,
// and scrapes, returning the events that scrape emitted.
func (h *watchdogHarness) step(deltas map[string]int64) []Event {
	for n, d := range deltas {
		*h.vals[n] += d
	}
	h.k.RunFor(10 * sim.Millisecond)
	before := len(h.s.Events())
	h.s.ScrapeNow()
	return h.s.Events()[before:]
}

func TestHotSpotWatchdog(t *testing.T) {
	hs := &HotSpot{Pattern: "blade/*/ops"}
	h := newWatchdogHarness(t, hs, "blade/0/ops", "blade/1/ops", "blade/2/ops")

	balanced := map[string]int64{"blade/0/ops": 10, "blade/1/ops": 10, "blade/2/ops": 10}
	skewed := map[string]int64{"blade/0/ops": 30, "blade/1/ops": 0, "blade/2/ops": 0}

	if ev := h.step(balanced); len(ev) != 0 {
		t.Fatalf("first scrape emitted %v", ev)
	}
	if ev := h.step(balanced); len(ev) != 0 {
		t.Fatalf("balanced interval emitted %v", ev)
	}
	if ev := h.step(skewed); len(ev) != 0 {
		t.Fatalf("one skewed interval should not arm (For=2), got %v", ev)
	}
	ev := h.step(skewed)
	if len(ev) != 1 || ev[0].Severity != "warn" {
		t.Fatalf("second skewed interval should fire warn, got %v", ev)
	}
	if want := "hottest blade/0/ops"; !contains(ev[0].Detail, want) {
		t.Fatalf("warn detail %q missing %q", ev[0].Detail, want)
	}
	if ev := h.step(skewed); len(ev) != 0 {
		t.Fatalf("already-firing alarm re-fired: %v", ev)
	}
	// Idle interval: no evidence either way, alarm holds.
	if ev := h.step(nil); len(ev) != 0 {
		t.Fatalf("idle interval emitted %v", ev)
	}
	ev = h.step(balanced)
	if len(ev) != 1 || ev[0].Severity != "info" {
		t.Fatalf("rebalance should emit info clear, got %v", ev)
	}
	if ev := h.step(balanced); len(ev) != 0 {
		t.Fatalf("cleared alarm re-cleared: %v", ev)
	}
}

func TestSLOWatchdogLatency(t *testing.T) {
	k := sim.NewKernel(1)
	reg := NewRegistry()
	lat := metrics.NewHistogram()
	reg.Histogram("lat", lat)
	s := NewScraper(k, reg, 10*sim.Millisecond)
	slo := &SLO{Hist: "lat", P99Max: 5 * sim.Millisecond, MinCount: 4}
	s.AddWatchdog(slo)

	observe := func(d sim.Duration, n int) {
		for i := 0; i < n; i++ {
			lat.Observe(d)
		}
	}
	step := func() []Event {
		k.RunFor(10 * sim.Millisecond)
		before := len(s.Events())
		s.ScrapeNow()
		return s.Events()[before:]
	}

	observe(time1ms, 20)
	if ev := step(); len(ev) != 0 {
		t.Fatalf("first scrape emitted %v", ev)
	}
	observe(time1ms, 20)
	if ev := step(); len(ev) != 0 {
		t.Fatalf("healthy window emitted %v", ev)
	}
	// The lifetime p99 stays poisoned low; only the *windowed* p99 sees
	// the regression.
	observe(20*sim.Millisecond, 20)
	ev := step()
	if len(ev) != 1 || ev[0].Severity != "warn" {
		t.Fatalf("breached window should warn, got %v", ev)
	}
	// Too few samples: no verdict, alarm holds.
	observe(20*sim.Millisecond, 2)
	if ev := step(); len(ev) != 0 {
		t.Fatalf("thin window emitted %v", ev)
	}
	observe(time1ms, 20)
	ev = step()
	if len(ev) != 1 || ev[0].Severity != "info" {
		t.Fatalf("recovered window should clear, got %v", ev)
	}
}

const time1ms = sim.Millisecond

func TestSLOWatchdogErrorsAndDegraded(t *testing.T) {
	slo := &SLO{Errors: "cluster/errors", Degraded: "cluster/degraded_ops"}
	h := newWatchdogHarness(t, slo, "cluster/errors", "cluster/degraded_ops")

	if ev := h.step(nil); len(ev) != 0 {
		t.Fatalf("first scrape emitted %v", ev)
	}
	ev := h.step(map[string]int64{"cluster/errors": 3})
	if len(ev) != 1 || ev[0].Severity != "warn" || !contains(ev[0].Detail, "rose by 3") {
		t.Fatalf("error delta should warn, got %v", ev)
	}
	ev = h.step(map[string]int64{"cluster/degraded_ops": 5})
	if len(ev) != 1 || !contains(ev[0].Detail, "degraded mode entered") {
		t.Fatalf("degraded entry should warn, got %v", ev)
	}
	if ev := h.step(map[string]int64{"cluster/degraded_ops": 2}); len(ev) != 0 {
		t.Fatalf("ongoing degraded window emitted %v", ev)
	}
	ev = h.step(nil)
	if len(ev) != 1 || ev[0].Severity != "info" || !contains(ev[0].Detail, "degraded mode cleared") {
		t.Fatalf("degraded exit should clear, got %v", ev)
	}
}

func TestStallWatchdog(t *testing.T) {
	st := &Stall{Queue: "disk/*/queue_depth", Throughput: "cluster/ops"}
	h := newWatchdogHarness(t, st, "disk/0/queue_depth", "disk/1/queue_depth", "cluster/ops")

	grow := map[string]int64{"disk/0/queue_depth": 2, "disk/1/queue_depth": 1}
	busy := map[string]int64{"disk/0/queue_depth": 2, "cluster/ops": 50}

	if ev := h.step(nil); len(ev) != 0 {
		t.Fatalf("first scrape emitted %v", ev)
	}
	for i := 0; i < 2; i++ {
		if ev := h.step(grow); len(ev) != 0 {
			t.Fatalf("stalled interval %d should not arm yet (For=3), got %v", i+1, ev)
		}
	}
	ev := h.step(grow)
	if len(ev) != 1 || ev[0].Severity != "warn" {
		t.Fatalf("third stalled interval should fire, got %v", ev)
	}
	// Queues still growing but throughput moving: busy, not stalled.
	ev = h.step(busy)
	if len(ev) != 1 || ev[0].Severity != "info" {
		t.Fatalf("moving throughput should clear the stall, got %v", ev)
	}
	if ev := h.step(busy); len(ev) != 0 {
		t.Fatalf("busy interval emitted %v", ev)
	}
}

func TestScraperSkewTableAndReport(t *testing.T) {
	k := sim.NewKernel(1)
	reg := NewRegistry()
	vals := map[string]*int64{}
	for _, n := range []string{"blade/0/ops", "blade/1/ops"} {
		v := new(int64)
		vals[n] = v
		reg.Int(n, func() int64 { return *v })
	}
	s := NewScraper(k, reg, 10*sim.Millisecond)
	for i := 0; i < 5; i++ {
		*vals["blade/0/ops"] += 30
		*vals["blade/1/ops"] += 10
		k.RunFor(10 * sim.Millisecond)
		s.ScrapeNow()
	}
	tab := s.SkewTable("load", "blade/*/ops")
	out := tab.String()
	for _, want := range []string{"blade/0/ops", "blade/1/ops", "skew: CV"} {
		if !contains(out, want) {
			t.Fatalf("skew table missing %q:\n%s", want, out)
		}
	}
	rep := s.Report()
	if rep.Scrapes != 5 || len(rep.Events) != 0 {
		t.Fatalf("Report = %+v, want 5 scrapes, 0 events", rep)
	}
	if !contains(rep.String(), "all watchdogs quiet") {
		t.Fatalf("quiet report missing clean bill: %s", rep.String())
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

func ExampleReport_String() {
	r := &Report{Scrapes: 3, Interval: 10 * sim.Millisecond, Window: 20 * sim.Millisecond}
	fmt.Println(r.String())
	// Output: telemetry: 3 scrapes every 10.000ms covering 20.000ms; 0 watchdog events (all watchdogs quiet)
}
