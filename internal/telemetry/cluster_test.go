// Cluster-scale telemetry tests live in telemetry_test because controller
// itself registers into telemetry — importing it from an internal test file
// would cycle.
package telemetry_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/controller"
	"repro/internal/disk"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func testConfig(blades int) controller.Config {
	cfg := controller.DefaultConfig()
	cfg.Blades = blades
	cfg.Disks = 12
	cfg.DisksPerGroup = 6
	cfg.RAIDLevel = raid.RAID5
	cfg.ExtentBlocks = 64
	cfg.CacheBlocksPerBlade = 1024
	cfg.DiskSpec = disk.Spec{
		BlockSize:   4096,
		Blocks:      1 << 14,
		Seek:        sim.Millisecond,
		Rotation:    sim.Millisecond / 2,
		TransferBps: 400_000_000,
	}
	cfg.OpDelay = 20 * sim.Microsecond
	return cfg
}

// balancedTarget spreads ops round-robin over the blades (the normal
// load-balanced front end).
type balancedTarget struct {
	c   *controller.Cluster
	buf []byte
}

func (t *balancedTarget) BlockSize() int { return t.c.BlockSize() }

func (t *balancedTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	_, err := t.c.Read(p, t.c.PickBlade(), "v", lba, blocks, 0)
	return err
}

func (t *balancedTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	need := blocks * t.c.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.c.Write(p, t.c.PickBlade(), "v", lba, t.buf[:need], 0)
}

// pinnedTarget sends every op to blade 0 — load balancing disabled, the
// configuration the hot-spot watchdog exists to catch.
type pinnedTarget struct {
	c   *controller.Cluster
	buf []byte
}

func (t *pinnedTarget) BlockSize() int { return t.c.BlockSize() }

func (t *pinnedTarget) Read(p *sim.Proc, lba int64, blocks int) error {
	_, err := t.c.Read(p, t.c.Blade(0), "v", lba, blocks, 0)
	return err
}

func (t *pinnedTarget) Write(p *sim.Proc, lba int64, blocks int) error {
	need := blocks * t.c.BlockSize()
	if len(t.buf) < need {
		t.buf = make([]byte, need)
	}
	return t.c.Write(p, t.c.Blade(0), "v", lba, t.buf[:need], 0)
}

type clusterRun struct {
	timeline string
	events   []telemetry.Event
	scrapes  int64
	ops      int64
	errs     int64
	bladeOps []int64
	p50, p99 sim.Duration
	endOps   float64 // cluster/ops registry value at the end
}

// runCluster drives a seeded Zipf write workload against a 3-blade cluster,
// optionally scraping telemetry every 50 ms of virtual time.
func runCluster(t *testing.T, seed int64, pinned, scrape bool) clusterRun {
	t.Helper()
	k := sim.NewKernel(seed)
	c, err := controller.New(k, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pool.CreateDMSD("v", 1<<20); err != nil {
		t.Fatal(err)
	}
	var s *telemetry.Scraper
	var stop func()
	if scrape {
		s = telemetry.NewScraper(k, c.Reg, 50*sim.Millisecond)
		s.AddWatchdog(&telemetry.HotSpot{Pattern: "blade/*/ops"})
		s.AddWatchdog(&telemetry.Stall{Queue: "disk/*/queue_depth", Throughput: "cluster/ops"})
		stop = s.Start()
	}
	var target workload.Target
	if pinned {
		target = &pinnedTarget{c: c}
	} else {
		target = &balancedTarget{c: c}
	}
	r := &workload.Runner{
		K:       k,
		Clients: 6,
		Pattern: func(int) workload.Pattern {
			return &workload.Zipf{Range: 4096, S: 1.2, Blocks: 2, WriteFrac: 1}
		},
		Target:   target,
		Duration: 600 * sim.Millisecond,
	}
	r.Run()
	out := clusterRun{ops: r.Ops, errs: r.Errs, p50: r.Latency.P50(), p99: r.Latency.P99()}
	for i := 0; i < 3; i++ {
		out.bladeOps = append(out.bladeOps, c.Blade(i).Ops)
	}
	out.endOps, _ = c.Reg.Value("cluster/ops")
	if s != nil {
		stop()
		var tl bytes.Buffer
		if err := s.WriteJSONL(&tl); err != nil {
			t.Fatal(err)
		}
		out.timeline = tl.String()
		out.events = s.Events()
		out.scrapes = s.Scrapes()
	}
	c.Stop()
	return out
}

func eventString(evs []telemetry.Event) string {
	var b strings.Builder
	for _, ev := range evs {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestClusterTelemetryDeterministic asserts the acceptance criterion at
// cluster scale: same-seed runs export byte-identical JSONL timelines and
// identical watchdog event sequences.
func TestClusterTelemetryDeterministic(t *testing.T) {
	a := runCluster(t, 7, true, true)
	b := runCluster(t, 7, true, true)
	if a.scrapes == 0 {
		t.Fatal("no scrapes ran")
	}
	if a.timeline != b.timeline {
		t.Fatal("same-seed cluster runs produced different JSONL timelines")
	}
	if eventString(a.events) != eventString(b.events) {
		t.Fatalf("same-seed cluster runs produced different watchdog events:\n%s\nvs\n%s",
			eventString(a.events), eventString(b.events))
	}
	if a.ops != b.ops || a.p99 != b.p99 {
		t.Fatalf("same-seed cluster runs diverged: ops %d vs %d, p99 %v vs %v",
			a.ops, b.ops, a.p99, b.p99)
	}
}

// TestClusterTelemetryNonPerturbing asserts the scraper moves no simulated
// events: a run with scraping enabled is operation-for-operation identical
// to the same seed without it.
func TestClusterTelemetryNonPerturbing(t *testing.T) {
	on := runCluster(t, 11, false, true)
	off := runCluster(t, 11, false, false)
	if on.scrapes == 0 {
		t.Fatal("no scrapes ran in the instrumented run")
	}
	if on.ops != off.ops || on.errs != off.errs {
		t.Fatalf("scraping perturbed the workload: ops %d vs %d, errs %d vs %d",
			on.ops, off.ops, on.errs, off.errs)
	}
	if on.p50 != off.p50 || on.p99 != off.p99 {
		t.Fatalf("scraping perturbed latency: p50 %v vs %v, p99 %v vs %v",
			on.p50, off.p50, on.p99, off.p99)
	}
	for i := range on.bladeOps {
		if on.bladeOps[i] != off.bladeOps[i] {
			t.Fatalf("scraping perturbed blade %d load: %d vs %d", i, on.bladeOps[i], off.bladeOps[i])
		}
	}
	if on.endOps != off.endOps {
		t.Fatalf("scraping perturbed cluster/ops: %v vs %v", on.endOps, off.endOps)
	}
}

// TestHotSpotFiresOnPinnedLoad asserts the watchdog's discriminating power:
// with load balancing disabled (every op pinned to blade 0) it must fire,
// and on the balanced round-robin front end it must stay quiet.
func TestHotSpotFiresOnPinnedLoad(t *testing.T) {
	pinned := runCluster(t, 3, true, true)
	var warned bool
	for _, ev := range pinned.events {
		if ev.Rule == "hot-spot" && ev.Severity == "warn" {
			warned = true
			if !strings.Contains(ev.Detail, "blade/0/ops") {
				t.Fatalf("hot-spot warn does not name blade 0: %s", ev.Detail)
			}
		}
	}
	if !warned {
		t.Fatalf("hot-spot watchdog stayed quiet on pinned load; events: %s", eventString(pinned.events))
	}
	if pinned.bladeOps[0] == 0 || pinned.bladeOps[1] != 0 || pinned.bladeOps[2] != 0 {
		t.Fatalf("pinned run not actually pinned: blade ops %v", pinned.bladeOps)
	}

	balanced := runCluster(t, 3, false, true)
	for _, ev := range balanced.events {
		if ev.Rule == "hot-spot" {
			t.Fatalf("hot-spot fired on balanced load: %s", ev.String())
		}
	}
}
