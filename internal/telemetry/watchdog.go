package telemetry

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Event is one structured watchdog emission. Events carry virtual-time
// stamps and deterministic details, so same-seed runs produce identical
// event sequences.
type Event struct {
	T        sim.Time `json:"t_ns"`
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"` // "warn" or "info" (clears)
	Detail   string   `json:"detail"`
}

// String renders the event for notes and reports.
func (e Event) String() string {
	return fmt.Sprintf("t=%.0fms [%s] %s: %s", sim.Duration(e.T).Millis(), e.Severity, e.Rule, e.Detail)
}

// View is what a watchdog sees at one scrape: the current and previous
// snapshots plus the registry (for histogram access). All lookups are pure
// reads of already-sampled values.
type View struct {
	T        sim.Time
	Interval sim.Duration
	// First is true on the very first scrape, when no deltas exist yet.
	First bool
	Reg   *Registry

	names      []string
	prev, cur  []float64
	indexCache map[string]int
}

func (v *View) index(name string) int {
	if v.indexCache == nil {
		v.indexCache = make(map[string]int, len(v.names))
		for i, n := range v.names {
			v.indexCache[n] = i
		}
	}
	if i, ok := v.indexCache[name]; ok {
		return i
	}
	return -1
}

// Value returns name's current sampled value (0 if unknown).
func (v *View) Value(name string) float64 {
	if i := v.index(name); i >= 0 {
		return v.cur[i]
	}
	return 0
}

// Delta returns name's increment since the previous scrape (0 on the first).
func (v *View) Delta(name string) float64 {
	i := v.index(name)
	if i < 0 || v.First || v.prev == nil {
		return 0
	}
	return v.cur[i] - v.prev[i]
}

// MatchDeltas returns the per-interval increments of every metric matching
// pattern, with the names aligned, in natural order.
func (v *View) MatchDeltas(pattern string) (names []string, deltas []float64) {
	for i, n := range v.names {
		if !matchPattern(pattern, n) {
			continue
		}
		names = append(names, n)
		if v.First || v.prev == nil {
			deltas = append(deltas, 0)
		} else {
			deltas = append(deltas, v.cur[i]-v.prev[i])
		}
	}
	return names, deltas
}

// Watchdog evaluates a rule over consecutive scrapes. Check must be a pure
// function of the view plus the watchdog's own state — no randomness, no
// virtual time — so event sequences are deterministic.
type Watchdog interface {
	// Rule names the watchdog in events and traces.
	Rule() string
	// Check inspects one scrape and returns any events to emit.
	Check(v *View) []Event
}

// HotSpot alarms when load concentrates on few members of a group — the
// failure mode the paper's pooled cache is designed out of (§2.2) and the
// one DistCache identifies as the killer of distributed caching tiers. It
// summarizes the per-interval increments of the metrics matching Pattern
// (e.g. "blade/*/ops") and fires when both the coefficient of variation and
// the max/mean ratio exceed their thresholds for For consecutive intervals.
type HotSpot struct {
	// Pattern selects the load metric per group member.
	Pattern string
	// CVMax is the coefficient-of-variation threshold (default 0.5;
	// 0 = perfectly balanced).
	CVMax float64
	// RatioMax is the max/mean threshold (default 2; 1 = perfectly
	// balanced).
	RatioMax float64
	// MinTotal ignores intervals with less total load than this
	// (default 1): an idle cluster is not a skewed one.
	MinTotal float64
	// For is how many consecutive skewed intervals arm the alarm
	// (default 2).
	For int

	streak int
	firing bool
}

// Rule implements Watchdog.
func (h *HotSpot) Rule() string { return "hot-spot" }

// Check implements Watchdog.
func (h *HotSpot) Check(v *View) []Event {
	cvMax, ratioMax, minTotal, arm := h.CVMax, h.RatioMax, h.MinTotal, h.For
	if cvMax <= 0 {
		cvMax = 0.5
	}
	if ratioMax <= 0 {
		ratioMax = 2
	}
	if minTotal <= 0 {
		minTotal = 1
	}
	if arm <= 0 {
		arm = 2
	}
	if v.First {
		return nil
	}
	names, deltas := v.MatchDeltas(h.Pattern)
	if len(names) < 2 {
		return nil
	}
	st := metrics.Summarize(deltas)
	total := st.Mean * float64(st.N)
	if total < minTotal {
		// Idle interval: evidence of nothing; hold state.
		return nil
	}
	ratio := 0.0
	if st.Mean > 0 {
		ratio = st.Max / st.Mean
	}
	skewed := st.CV() > cvMax && ratio > ratioMax
	if !skewed {
		h.streak = 0
		if h.firing {
			h.firing = false
			return []Event{{Rule: h.Rule(), Severity: "info",
				Detail: fmt.Sprintf("%s rebalanced: CV %.2f, max/mean %.2f", h.Pattern, st.CV(), ratio)}}
		}
		return nil
	}
	h.streak++
	if h.streak < arm || h.firing {
		return nil
	}
	h.firing = true
	hottest := ""
	for i, d := range deltas {
		if d == st.Max {
			hottest = names[i]
			break
		}
	}
	return []Event{{Rule: h.Rule(), Severity: "warn",
		Detail: fmt.Sprintf("%s skewed for %d intervals: CV %.2f > %.2f, max/mean %.2f > %.2f, hottest %s",
			h.Pattern, h.streak, st.CV(), cvMax, ratio, ratioMax, hottest)}}
}

// SLO monitors service-level objectives over each scrape interval: windowed
// p99 latency from a registered histogram, client-visible errors
// (acked-write loss shows up here), and degraded-mode duration.
type SLO struct {
	// Hist names a histogram registered with Registry.Histogram (e.g.
	// "cluster/op_latency"); its per-window p99 is compared to P99Max.
	Hist string
	// P99Max is the windowed-p99 latency objective (0 disables the check).
	P99Max sim.Duration
	// MinCount is the fewest samples a window needs to be judged
	// (default 16): two slow ops in an idle window are not a breach.
	MinCount int64
	// Errors, when set, names a counter whose increments are client-visible
	// failures; any increment emits an event.
	Errors string
	// Degraded, when set, names a counter of degraded-mode operations;
	// the watchdog reports when degraded mode is entered and, on exit, how
	// long it lasted.
	Degraded string

	prevSnap   metrics.HistogramSnapshot
	haveSnap   bool
	latFiring  bool
	degSince   sim.Time
	degWindows int
}

// Rule implements Watchdog.
func (s *SLO) Rule() string { return "slo" }

// Check implements Watchdog.
func (s *SLO) Check(v *View) []Event {
	var out []Event
	minCount := s.MinCount
	if minCount <= 0 {
		minCount = 16
	}
	if s.Hist != "" && s.P99Max > 0 {
		if h := v.Reg.HistogramFor(s.Hist); h != nil {
			if s.haveSnap && !v.First {
				n := h.CountSince(s.prevSnap)
				p99 := h.QuantileSince(s.prevSnap, 0.99)
				switch {
				case n >= minCount && p99 > s.P99Max && !s.latFiring:
					s.latFiring = true
					out = append(out, Event{Rule: s.Rule(), Severity: "warn",
						Detail: fmt.Sprintf("%s window p99 %.3fms exceeds SLO %.3fms (%d ops)",
							s.Hist, p99.Millis(), s.P99Max.Millis(), n)})
				case n >= minCount && p99 <= s.P99Max && s.latFiring:
					s.latFiring = false
					out = append(out, Event{Rule: s.Rule(), Severity: "info",
						Detail: fmt.Sprintf("%s window p99 %.3fms back within SLO %.3fms",
							s.Hist, p99.Millis(), s.P99Max.Millis())})
				}
			}
			s.prevSnap = h.Snapshot()
			s.haveSnap = true
		}
	}
	if s.Errors != "" && !v.First {
		if d := v.Delta(s.Errors); d > 0 {
			out = append(out, Event{Rule: s.Rule(), Severity: "warn",
				Detail: fmt.Sprintf("%s rose by %d this interval", s.Errors, int64(d))})
		}
	}
	if s.Degraded != "" && !v.First {
		d := v.Delta(s.Degraded)
		switch {
		case d > 0 && s.degWindows == 0:
			s.degSince = v.T.Add(-v.Interval)
			s.degWindows = 1
			out = append(out, Event{Rule: s.Rule(), Severity: "warn",
				Detail: fmt.Sprintf("degraded mode entered (%s +%d)", s.Degraded, int64(d))})
		case d > 0:
			s.degWindows++
		case d == 0 && s.degWindows > 0:
			out = append(out, Event{Rule: s.Rule(), Severity: "info",
				Detail: fmt.Sprintf("degraded mode cleared after ≈%.0fms (%d intervals)",
					v.T.Sub(s.degSince).Millis()-v.Interval.Millis(), s.degWindows)})
			s.degWindows = 0
		}
	}
	return out
}

// Stall alarms when queues grow while throughput stays flat — the signature
// of a wedged pipeline (as opposed to one that is merely busy, where
// throughput is nonzero, or idle, where queues drain).
type Stall struct {
	// Queue is a pattern of queue-depth metrics, summed (e.g.
	// "disk/*/queue_depth").
	Queue string
	// Throughput names a cumulative work counter (e.g. "cluster/ops").
	Throughput string
	// For is how many consecutive stalled intervals arm the alarm
	// (default 3).
	For int

	streak int
	firing bool
}

// Rule implements Watchdog.
func (s *Stall) Rule() string { return "stall" }

// Check implements Watchdog.
func (s *Stall) Check(v *View) []Event {
	arm := s.For
	if arm <= 0 {
		arm = 3
	}
	if v.First {
		return nil
	}
	_, qd := v.MatchDeltas(s.Queue)
	var qGrowth float64
	for _, d := range qd {
		qGrowth += d
	}
	tput := v.Delta(s.Throughput)
	if qGrowth > 0 && tput <= 0 {
		s.streak++
		if s.streak >= arm && !s.firing {
			s.firing = true
			return []Event{{Rule: s.Rule(), Severity: "warn",
				Detail: fmt.Sprintf("%s grew %d over %d intervals while %s was flat",
					s.Queue, int64(qGrowth), s.streak, s.Throughput)}}
		}
		return nil
	}
	s.streak = 0
	if s.firing {
		s.firing = false
		return []Event{{Rule: s.Rule(), Severity: "info",
			Detail: fmt.Sprintf("%s stall cleared (%s moving again)", s.Queue, s.Throughput)}}
	}
	return nil
}
