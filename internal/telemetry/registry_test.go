package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestRegistryNaturalOrder(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"blade/10/ops", "blade/9/ops", "blade/2/cache/hits", "cluster/ops", "blade/2/ops"} {
		r.Int(n, func() int64 { return 0 })
	}
	got := r.Names()
	want := []string{"blade/2/cache/hits", "blade/2/ops", "blade/9/ops", "blade/10/ops", "cluster/ops"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	if r.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", r.Len(), len(want))
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Int("a/b", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Int("a/b", func() int64 { return 1 })
}

func TestRegistryMatch(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"blade/0/ops", "blade/1/ops", "blade/0/cache/hits", "disk/0/queue_depth", "cluster/ops"} {
		r.Int(n, func() int64 { return 0 })
	}
	cases := []struct {
		pattern string
		want    []string
	}{
		{"blade/*/ops", []string{"blade/0/ops", "blade/1/ops"}},
		{"blade/0/cache/hits", []string{"blade/0/cache/hits"}},
		{"*/*/ops", []string{"blade/0/ops", "blade/1/ops"}},
		// '*' matches exactly one segment, so a 3-segment pattern never
		// matches a 4-segment name.
		{"blade/*/*", []string{"blade/0/ops", "blade/1/ops"}},
		{"nothing/*", nil},
	}
	for _, c := range cases {
		got := r.Match(c.pattern)
		if len(got) != len(c.want) {
			t.Fatalf("Match(%q) = %v, want %v", c.pattern, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("Match(%q) = %v, want %v", c.pattern, got, c.want)
			}
		}
	}
}

func TestRegistryGaugeWatermarks(t *testing.T) {
	r := NewRegistry()
	var g metrics.Gauge
	r.Gauge("q", &g)
	for _, n := range []string{"q", "q/max", "q/min"} {
		if _, ok := r.Value(n); !ok {
			t.Fatalf("gauge registration missing series %q", n)
		}
	}
	g.Add(5)
	g.Add(-8)
	g.Add(4)
	check := func(name string, want float64) {
		t.Helper()
		v, _ := r.Value(name)
		if v != want {
			t.Fatalf("%s = %v, want %v", name, v, want)
		}
	}
	check("q", 1)
	check("q/max", 5)
	check("q/min", -3)

	// ResetWatermarks re-arms the extremes at the current value — the
	// scraper's per-interval peak semantics.
	r.ResetWatermarks()
	check("q/max", 1)
	check("q/min", 1)
	g.Add(2)
	check("q/max", 3)
	check("q/min", 1)
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := metrics.NewHistogram()
	r.Histogram("lat", h)
	h.Observe(2 * sim.Millisecond)
	h.Observe(4 * sim.Millisecond)
	if v, _ := r.Value("lat/count"); v != 2 {
		t.Fatalf("lat/count = %v, want 2", v)
	}
	if v, _ := r.Value("lat/p99_ms"); v <= 0 {
		t.Fatalf("lat/p99_ms = %v, want > 0", v)
	}
	if v, _ := r.Value("lat/mean_ms"); v <= 0 {
		t.Fatalf("lat/mean_ms = %v, want > 0", v)
	}
	if r.HistogramFor("lat") != h {
		t.Fatal("HistogramFor did not return the registered histogram")
	}
	if r.HistogramFor("nope") != nil {
		t.Fatal("HistogramFor returned a histogram for an unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate histogram registration did not panic")
		}
	}()
	r.Histogram("lat", metrics.NewHistogram())
}

func TestWritePromStable(t *testing.T) {
	r := NewRegistry()
	r.Int("net/link/blade0.fc0-switch/bytes", func() int64 { return 42 })
	r.Int("blade/3/ops", func() int64 { return 7 })
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteProm not byte-stable:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "blade_3_ops 7\n") {
		t.Fatalf("missing sanitized blade line in:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "net_link_blade0_fc0_switch_bytes 42\n") {
		t.Fatalf("link name not sanitized in:\n%s", a.String())
	}
}

func TestScopeSub(t *testing.T) {
	r := NewRegistry()
	s := r.Sub("blade/3").Sub("cache")
	s.Int("hits", func() int64 { return 11 })
	if v, ok := r.Value("blade/3/cache/hits"); !ok || v != 11 {
		t.Fatalf("scoped registration: got (%v, %v), want (11, true)", v, ok)
	}
	if s.Registry() != r {
		t.Fatal("Scope.Registry() did not return the root registry")
	}
}

func TestSkewTableFree(t *testing.T) {
	r := NewRegistry()
	vals := map[string]int64{"blade/0/ops": 90, "blade/1/ops": 5, "blade/2/ops": 5}
	for n, v := range vals {
		v := v
		r.Int(n, func() int64 { return v })
	}
	tab := SkewTable(r, "skew", "blade/*/ops")
	out := tab.String()
	if !strings.Contains(out, "blade/0/ops") || !strings.Contains(out, "90") {
		t.Fatalf("skew table missing hottest row:\n%s", out)
	}
	if !strings.Contains(out, "skew: CV") {
		t.Fatalf("skew table missing CV note:\n%s", out)
	}
}

func TestRegistryExemplarFor(t *testing.T) {
	r := NewRegistry()
	h := metrics.NewHistogram()
	r.Histogram("cluster/op_latency", h)
	if _, ok := r.ExemplarFor("cluster/op_latency", 0.99); ok {
		t.Fatal("exemplar from empty histogram")
	}
	if _, ok := r.ExemplarFor("no/such", 0.99); ok {
		t.Fatal("exemplar from unknown histogram")
	}
	for i := 0; i < 50; i++ {
		h.ObserveTraced(sim.Duration(1000+i), uint64(i+1))
	}
	h.ObserveTraced(sim.Duration(1e9), 77)
	ex, ok := r.ExemplarFor("cluster/op_latency", 1.0)
	if !ok || ex.Trace != 77 {
		t.Errorf("ExemplarFor(p100) = %+v ok=%v, want trace 77", ex, ok)
	}
	// Registering with exemplars must not add derived series (scrape and
	// prom output stay stable).
	if got := r.Len(); got != 4 {
		t.Errorf("registry Len = %d, want 4 derived series only", got)
	}
}
