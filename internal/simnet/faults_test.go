package simnet

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestFaultPlanDropsMessage(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{Latency: sim.Millisecond})
	n.SetFaults("a", "b", FaultPlan{DropProb: 1})
	delivered := false
	n.Node("b").Handle(func(m Message) { delivered = true })
	// Send reports success: the sender cannot tell a dropped message from
	// a delivered one — that is what the RPC timeout layer is for.
	if ok := n.Node("a").Send("b", "x", 100); !ok {
		t.Fatal("send reported failure; drops must be silent to the sender")
	}
	k.Run()
	if delivered {
		t.Fatal("message delivered despite DropProb=1")
	}
	if n.Faults.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Faults.Dropped)
	}
}

func TestFaultPlanDuplicatesMessage(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{Latency: sim.Millisecond})
	n.SetFaults("a", "b", FaultPlan{DupProb: 1, MaxExtraDelay: sim.Millisecond})
	var arrivals []sim.Time
	n.Node("b").Handle(func(m Message) { arrivals = append(arrivals, k.Now()) })
	n.Node("a").Send("b", "x", 100)
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(arrivals))
	}
	if arrivals[1] < arrivals[0] {
		t.Fatalf("second copy (%v) arrived before first (%v)", arrivals[1], arrivals[0])
	}
	if n.Faults.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", n.Faults.Duplicated)
	}
}

func TestFaultPlanDelaysMessage(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	base := sim.Millisecond
	extra := 5 * sim.Millisecond
	n.Connect("a", "b", LinkSpec{Latency: base})
	n.SetFaults("a", "b", FaultPlan{DelayProb: 1, MaxExtraDelay: extra})
	var arrived sim.Time
	n.Node("b").Handle(func(m Message) { arrived = k.Now() })
	n.Node("a").Send("b", "x", 0)
	k.Run()
	if arrived < sim.Time(base) || arrived > sim.Time(base+extra) {
		t.Fatalf("arrived at %v, want within [%v, %v]", arrived, base, base+extra)
	}
	if n.Faults.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", n.Faults.Delayed)
	}
}

// lossyRun sends msgs messages over a lossy link and returns every arrival
// time plus the fault counters.
func lossyRun(seed int64, msgs int) ([]sim.Time, FaultStats) {
	k := sim.NewKernel(seed)
	n := New(k)
	n.Connect("a", "b", LinkSpec{BandwidthBps: 1_000_000_000, Latency: sim.Millisecond})
	n.SetFaults("a", "b", FaultPlan{DropProb: 0.2, DupProb: 0.1, DelayProb: 0.3, MaxExtraDelay: 2 * sim.Millisecond})
	var arrivals []sim.Time
	n.Node("b").Handle(func(m Message) { arrivals = append(arrivals, k.Now()) })
	for i := 0; i < msgs; i++ {
		n.Node("a").Send("b", i, 1000)
	}
	k.Run()
	return arrivals, n.Faults
}

func TestFaultPlanDeterministic(t *testing.T) {
	a1, f1 := lossyRun(42, 200)
	a2, f2 := lossyRun(42, 200)
	if f1 != f2 {
		t.Fatalf("fault counters differ across identical runs: %+v vs %+v", f1, f2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a1[i], a2[i])
		}
	}
	// A different seed must draw a different fault sequence, or the plan
	// is not actually seeded.
	_, f3 := lossyRun(43, 200)
	if f1 == f3 {
		t.Fatalf("seeds 42 and 43 injected identical faults: %+v", f1)
	}
	if f1.Dropped == 0 || f1.Duplicated == 0 || f1.Delayed == 0 {
		t.Fatalf("expected all fault kinds at these probabilities: %+v", f1)
	}
}

func TestCallRetryRecoversAfterDrops(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("client", "server", LinkSpec{Latency: sim.Millisecond})
	srv := NewConn(n, "server")
	srv.Register("echo", func(p *sim.Proc, from Addr, args any) (any, int) {
		return args, 16
	})
	cli := NewConn(n, "client")
	n.SetFaults("client", "server", FaultPlan{DropProb: 1})
	// The fabric heals between the second and third attempt.
	k.After(120*sim.Millisecond, func() { n.SetFaults("client", "server", FaultPlan{}) })
	var got any
	var err error
	k.Go("caller", func(p *sim.Proc) {
		got, err = cli.CallRetry(p, "server", "echo", 7, 16, RetryPolicy{
			Timeout:  50 * sim.Millisecond,
			Attempts: 4,
			Backoff:  10 * sim.Millisecond,
		})
	})
	k.Run()
	if err != nil || got != 7 {
		t.Fatalf("CallRetry = %v, %v; want 7, nil", got, err)
	}
	st := cli.Stats()
	if st.Timeouts != 2 || st.Retries != 2 || st.GaveUp != 0 {
		t.Fatalf("stats = %+v; want 2 timeouts, 2 retries, 0 gave up", st)
	}
}

func TestCallRetryGivesUpBounded(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("client", "server", LinkSpec{Latency: sim.Millisecond})
	srv := NewConn(n, "server")
	srv.Register("echo", func(p *sim.Proc, from Addr, args any) (any, int) { return args, 16 })
	cli := NewConn(n, "client")
	n.SetFaults("client", "server", FaultPlan{DropProb: 1})
	var err error
	done := false
	k.Go("caller", func(p *sim.Proc) {
		_, err = cli.CallRetry(p, "server", "echo", 7, 16, RetryPolicy{
			Timeout:  50 * sim.Millisecond,
			Attempts: 3,
			Backoff:  10 * sim.Millisecond,
		})
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("CallRetry wedged on a fully lossy link")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want wrapped ErrTimeout", err)
	}
	st := cli.Stats()
	if st.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1", st.GaveUp)
	}
	// Three 50 ms attempts plus two bounded backoffs: well under a second.
	if now := k.Now(); now > sim.Time(sim.Second) {
		t.Fatalf("gave up only after %v; retry budget unbounded?", now)
	}
	if srv.Served() != 0 {
		t.Fatalf("server served %d requests across a drop-everything link", srv.Served())
	}
}

func TestDuplicateRequestSuppressed(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("client", "server", LinkSpec{Latency: sim.Millisecond})
	executions := 0
	srv := NewConn(n, "server")
	srv.Register("bump", func(p *sim.Proc, from Addr, args any) (any, int) {
		executions++
		return executions, 16
	})
	cli := NewConn(n, "client")
	// Every message is duplicated — requests and replies alike. The
	// request-side dedup must keep the handler at one execution per id;
	// the duplicated reply is ignored because the pending future was
	// already consumed.
	n.SetFaults("client", "server", FaultPlan{DupProb: 1, MaxExtraDelay: sim.Millisecond})
	var got any
	var err error
	k.Go("caller", func(p *sim.Proc) {
		got, err = cli.CallRetry(p, "server", "bump", nil, 16, RetryPolicy{
			Timeout: 50 * sim.Millisecond, Attempts: 2,
		})
	})
	k.Run()
	if err != nil || got != 1 {
		t.Fatalf("CallRetry = %v, %v; want 1, nil", got, err)
	}
	if executions != 1 {
		t.Fatalf("handler executed %d times for one request; duplicates not suppressed", executions)
	}
	if n.Faults.Duplicated == 0 {
		t.Fatal("no duplicates injected; test is vacuous")
	}
}
