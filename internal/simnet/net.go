// Package simnet models the networks the paper's architecture lives on:
// Fibre Channel fabrics between controller blades and disks, host-side
// Ethernet, the PCI-X funnel of Figure 1, and inter-site WAN links.
//
// A Network is a graph of nodes joined by duplex links, each with a
// bandwidth and a propagation delay. Messages are store-and-forward with
// FIFO serialization per link, so bandwidth ceilings and queueing delays
// emerge naturally — which is exactly what the paper's Figure-1 arithmetic
// (4 blades × 2×2 Gb/s FC ≈ one 10 Gb/s stream) depends on.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Addr names a node on the network.
type Addr string

// LinkSpec describes one direction of a link.
type LinkSpec struct {
	// BandwidthBps is the transmission rate in bits per second.
	// Zero means infinite (no serialization delay).
	BandwidthBps int64
	// Latency is the propagation delay.
	Latency sim.Duration
}

// Common link specifications from the paper's era.
var (
	// FC1G and FC2G are the 1 and 2 Gb/s Fibre Channel rates of §2.3.
	FC1G = LinkSpec{BandwidthBps: 1_000_000_000, Latency: 5 * sim.Microsecond}
	FC2G = LinkSpec{BandwidthBps: 2_000_000_000, Latency: 5 * sim.Microsecond}
	// GbE10 is the 10 Gigabit Ethernet port of Figure 1.
	GbE10 = LinkSpec{BandwidthBps: 10_000_000_000, Latency: 10 * sim.Microsecond}
	// PCIX is the shared PCI-X bus the striped controllers take turns on.
	PCIX = LinkSpec{BandwidthBps: 8_500_000_000, Latency: 1 * sim.Microsecond}
)

// WAN returns a wide-area link with the given one-way latency and bandwidth.
func WAN(oneWay sim.Duration, bps int64) LinkSpec {
	return LinkSpec{BandwidthBps: bps, Latency: oneWay}
}

// FaultPlan injects partial-failure behaviour into a link: each message
// crossing a faulted hop may be dropped, duplicated, or delayed, with the
// decisions drawn from the kernel's seeded RNG so a faulted run is exactly
// reproducible. The zero FaultPlan injects nothing.
type FaultPlan struct {
	// DropProb is the probability a message is lost in transit (the link
	// still carries it; the receiver simply never sees it).
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// DelayProb is the probability a message suffers extra delay, drawn
	// uniformly from [0, MaxExtraDelay].
	DelayProb float64
	// MaxExtraDelay bounds the injected delay (also used to stagger the
	// second copy of a duplicated message).
	MaxExtraDelay sim.Duration
}

// Active reports whether the plan injects any fault at all.
func (fp FaultPlan) Active() bool {
	return fp.DropProb > 0 || fp.DupProb > 0 || fp.DelayProb > 0
}

// FaultStats counts injected fault events across the network.
type FaultStats struct {
	Dropped    int64 // messages lost in transit
	Duplicated int64 // messages delivered twice
	Delayed    int64 // messages given extra delay
}

type link struct {
	spec      LinkSpec
	busyUntil sim.Time
	bytes     int64
	faults    FaultPlan
}

// txTime returns the serialization delay for size bytes, rounded up to the
// next nanosecond so a link never appears faster than its configured rate.
func (l *link) txTime(size int) sim.Duration {
	if l.spec.BandwidthBps <= 0 {
		return 0
	}
	return sim.Duration(math.Ceil(float64(size*8) / float64(l.spec.BandwidthBps) * float64(sim.Second)))
}

// Message is a unit of delivery. Payload crosses the simulated network by
// reference; Size is what occupies the wire.
type Message struct {
	From, To Addr
	Payload  any
	Size     int
}

// Network is a graph of nodes and links on a single kernel.
type Network struct {
	k     *sim.Kernel
	nodes map[Addr]*Endpoint
	links map[[2]Addr]*link
	adj   map[Addr][]Addr
	down  map[Addr]bool
	// routes caches next-hop tables, invalidated on topology change.
	routes map[Addr]map[Addr]Addr
	// Dropped counts messages discarded because an endpoint was down.
	Dropped int64
	// Faults counts injected fault events (see FaultPlan).
	Faults FaultStats
	// faultsActive caches whether any link carries a fault plan, so the
	// fault-free fast path costs nothing.
	faultsActive bool
}

// New returns an empty network on k.
func New(k *sim.Kernel) *Network {
	return &Network{
		k:     k,
		nodes: make(map[Addr]*Endpoint),
		links: make(map[[2]Addr]*link),
		adj:   make(map[Addr][]Addr),
		down:  make(map[Addr]bool),
	}
}

// Kernel returns the kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Node returns the endpoint for addr, creating it if needed.
func (n *Network) Node(addr Addr) *Endpoint {
	if ep, ok := n.nodes[addr]; ok {
		return ep
	}
	ep := &Endpoint{net: n, addr: addr, inbox: sim.NewMailbox[Message](n.k)}
	n.nodes[addr] = ep
	return ep
}

// Connect joins a and b with a duplex link (same spec both ways).
// Reconnecting replaces the existing link spec.
func (n *Network) Connect(a, b Addr, spec LinkSpec) {
	n.Node(a)
	n.Node(b)
	for _, pair := range [][2]Addr{{a, b}, {b, a}} {
		if _, exists := n.links[pair]; !exists {
			n.adj[pair[0]] = append(n.adj[pair[0]], pair[1])
		}
		n.links[pair] = &link{spec: spec}
	}
	n.routes = nil
}

// SetFaults installs plan on the duplex link between a and b (both
// directions). A zero plan clears injection on that link.
func (n *Network) SetFaults(a, b Addr, plan FaultPlan) {
	for _, pair := range [][2]Addr{{a, b}, {b, a}} {
		if l, ok := n.links[pair]; ok {
			l.faults = plan
		}
	}
	n.refreshFaultsActive()
}

// SetFaultsAll installs plan on every existing link. A zero plan disables
// all fault injection.
func (n *Network) SetFaultsAll(plan FaultPlan) {
	for _, l := range n.links {
		l.faults = plan
	}
	n.refreshFaultsActive()
}

// FaultsActive reports whether any link currently injects faults.
func (n *Network) FaultsActive() bool { return n.faultsActive }

func (n *Network) refreshFaultsActive() {
	n.faultsActive = false
	for _, l := range n.links {
		if l.faults.Active() {
			n.faultsActive = true
			return
		}
	}
}

// SetDown marks addr unreachable (true) or reachable (false). Messages
// addressed to, or mid-flight toward, a down node are dropped; messages a
// down node tries to send are dropped at origin.
func (n *Network) SetDown(addr Addr, down bool) { n.down[addr] = down }

// Down reports whether addr is marked down.
func (n *Network) Down(addr Addr) bool { return n.down[addr] }

// Reachable reports whether a message from→to would be accepted right now:
// both endpoints up and a route between them. It mirrors Send's admission
// check without transmitting anything (used by frame coalescing to fail
// fast at enqueue time).
func (n *Network) Reachable(from, to Addr) bool {
	if n.down[from] || n.down[to] {
		return false
	}
	return n.path(from, to) != nil
}

// LinkBytes reports the bytes carried so far on the a→b link.
func (n *Network) LinkBytes(a, b Addr) int64 {
	if l, ok := n.links[[2]Addr{a, b}]; ok {
		return l.bytes
	}
	return 0
}

// Links returns every directed link's (from, to) pair in sorted order —
// the links live in a map, and deterministic exposition must not depend on
// map iteration order.
func (n *Network) Links() [][2]Addr {
	out := make([][2]Addr, 0, len(n.links))
	for pair := range n.links {
		out = append(out, pair)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// RegisterTelemetry publishes the network's counters under s: endpoint
// drops, injected-fault counts, and bytes carried per directed link
// (link/<from>-<to>/bytes). Links are enumerated at registration time, so
// register after the topology is built.
func (n *Network) RegisterTelemetry(s telemetry.Scope) {
	s.Int("dropped", func() int64 { return n.Dropped })
	f := s.Sub("faults")
	f.Int("dropped", func() int64 { return n.Faults.Dropped })
	f.Int("duplicated", func() int64 { return n.Faults.Duplicated })
	f.Int("delayed", func() int64 { return n.Faults.Delayed })
	for _, pair := range n.Links() {
		l := n.links[pair]
		s.Int(fmt.Sprintf("link/%s-%s/bytes", pair[0], pair[1]), func() int64 { return l.bytes })
	}
}

// path returns the hop sequence from src to dst (excluding src), or nil if
// unreachable. Routing is minimum-hop, computed by BFS and cached.
func (n *Network) path(src, dst Addr) []Addr {
	if src == dst {
		return []Addr{}
	}
	if n.routes == nil {
		n.routes = make(map[Addr]map[Addr]Addr)
	}
	var hops []Addr
	cur := src
	for cur != dst {
		step, ok := n.routes[cur]
		if !ok {
			step = n.bfs(cur)
			n.routes[cur] = step
		}
		h, ok := step[dst]
		if !ok {
			return nil
		}
		hops = append(hops, h)
		cur = h
		if len(hops) > len(n.nodes) {
			panic(fmt.Sprintf("simnet: routing loop %s->%s", src, dst))
		}
	}
	return hops
}

// bfs computes the next-hop table from src: for each reachable destination,
// the first hop on a minimum-hop path.
func (n *Network) bfs(src Addr) map[Addr]Addr {
	next := make(map[Addr]Addr)
	type qe struct {
		node  Addr
		first Addr
	}
	visited := map[Addr]bool{src: true}
	var queue []qe
	for _, nb := range n.adj[src] {
		if !visited[nb] {
			visited[nb] = true
			next[nb] = nb
			queue = append(queue, qe{nb, nb})
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		for _, nb := range n.adj[e.node] {
			if !visited[nb] {
				visited[nb] = true
				next[nb] = e.first
				queue = append(queue, qe{nb, e.first})
			}
		}
	}
	return next
}

// Send transmits msg across the network, invoking delivery at the
// destination endpoint after all serialization and propagation delays.
// It returns the scheduled arrival time, or ok=false if the destination is
// unreachable or an endpoint is down at send time. (A node that goes down
// after send still swallows the message at arrival.)
func (n *Network) Send(msg Message) (arrival sim.Time, ok bool) {
	if n.down[msg.From] || n.down[msg.To] {
		n.Dropped++
		return 0, false
	}
	hops := n.path(msg.From, msg.To)
	if hops == nil {
		n.Dropped++
		return 0, false
	}
	t := n.k.Now()
	cur := msg.From
	duplicate := false
	for _, h := range hops {
		l := n.links[[2]Addr{cur, h}]
		depart := t
		if l.busyUntil > depart {
			depart = l.busyUntil
		}
		done := depart.Add(l.txTime(msg.Size))
		l.busyUntil = done
		l.bytes += int64(msg.Size)
		t = done.Add(l.spec.Latency)
		cur = h
		if fp := l.faults; fp.Active() {
			rng := n.k.Rand()
			if fp.DropProb > 0 && rng.Float64() < fp.DropProb {
				// Lost in transit: the link carried it, the sender is
				// none the wiser, and the receiver never sees it.
				n.Faults.Dropped++
				return t, true
			}
			if fp.DelayProb > 0 && rng.Float64() < fp.DelayProb {
				n.Faults.Delayed++
				t = t.Add(n.extraDelay(fp))
			}
			if fp.DupProb > 0 && rng.Float64() < fp.DupProb {
				duplicate = true
			}
		}
	}
	n.scheduleDelivery(msg, t)
	if duplicate {
		n.Faults.Duplicated++
		// The second copy trails the first by a jittered gap.
		var fp FaultPlan
		if len(hops) > 0 {
			fp = n.links[[2]Addr{msg.From, hops[0]}].faults
		}
		n.scheduleDelivery(msg, t.Add(n.extraDelay(fp)))
	}
	return t, true
}

// extraDelay draws a uniform delay in [0, MaxExtraDelay] from the kernel RNG.
func (n *Network) extraDelay(fp FaultPlan) sim.Duration {
	if fp.MaxExtraDelay <= 0 {
		return 0
	}
	return sim.Duration(n.k.Rand().Int63n(int64(fp.MaxExtraDelay) + 1))
}

func (n *Network) scheduleDelivery(msg Message, t sim.Time) {
	dst := n.Node(msg.To)
	n.k.At(t, func() {
		if n.down[msg.To] || n.down[msg.From] {
			n.Dropped++
			return
		}
		dst.deliver(msg)
	})
}

// Endpoint is a node's attachment point: incoming messages go either to a
// registered handler or to the endpoint's inbox mailbox.
type Endpoint struct {
	net     *Network
	addr    Addr
	inbox   *sim.Mailbox[Message]
	handler func(Message)
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Network returns the network this endpoint belongs to.
func (e *Endpoint) Network() *Network { return e.net }

// Handle registers fn to receive messages, replacing inbox delivery.
func (e *Endpoint) Handle(fn func(Message)) { e.handler = fn }

// Inbox returns the endpoint's mailbox (used when no handler is set).
func (e *Endpoint) Inbox() *sim.Mailbox[Message] { return e.inbox }

// Send transmits a payload of the given wire size to dst.
func (e *Endpoint) Send(dst Addr, payload any, size int) bool {
	_, ok := e.net.Send(Message{From: e.addr, To: dst, Payload: payload, Size: size})
	return ok
}

func (e *Endpoint) deliver(msg Message) {
	if e.handler != nil {
		e.handler(msg)
		return
	}
	e.inbox.Send(msg)
}
