package simnet

import (
	"fmt"
	"testing"

	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rpcPair builds a two-node network with a client and server Conn.
func rpcPair(k *sim.Kernel, spec LinkSpec) (*Network, *Conn, *Conn) {
	n := New(k)
	n.Connect("c", "s", spec)
	srv := NewConn(n, "s")
	cli := NewConn(n, "c")
	return n, cli, srv
}

// Satellite 1: async calls must carry the caller's trace and QoS contexts
// exactly as synchronous calls do.
func TestGoPropagatesTraceAndQoS(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: sim.Millisecond})
	tr := trace.NewTracer(k)
	tr.SetEnabled(true)
	var seen []qos.Ctx
	srv.Register("work", func(p *sim.Proc, from Addr, args any) (any, int) {
		seen = append(seen, qos.FromProc(p))
		trace.FromProc(p).Child("handler:"+fmt.Sprint(args), trace.Disk, "s").End()
		return nil, 0
	})
	want := qos.Ctx{Tenant: "acme", Lane: 2}
	root := tr.StartTrace("op", trace.Op, "c")
	k.Go("caller", func(p *sim.Proc) {
		qos.SetCtx(p, want)
		pop := root.Push(p)
		defer pop()
		if _, err := cli.Call(p, "s", "work", "sync", 0); err != nil {
			t.Error(err)
		}
		cli.Go(p, "s", "work", "async", 0, 0).Wait(p)
	})
	k.Run()
	root.End()
	if len(seen) != 2 {
		t.Fatalf("served %d calls, want 2", len(seen))
	}
	for i, got := range seen {
		if got != want {
			t.Fatalf("handler %d qos ctx = %+v, want %+v (async must charge the caller's lane)", i, got, want)
		}
	}
	// The handler spans — and the rpc:work fabric spans above them — must
	// all join the caller's trace. The root span id doubles as the trace id.
	spans := tr.Spans()
	var rootID uint64
	for _, s := range spans {
		if s.Name == "op" {
			rootID = s.ID
		}
	}
	if rootID == 0 {
		t.Fatal("root span not recorded")
	}
	wantNames := map[string]int{"handler:sync": 0, "handler:async": 0, "rpc:work": 0}
	for _, s := range spans {
		if _, ok := wantNames[s.Name]; !ok {
			continue
		}
		wantNames[s.Name]++
		if s.Trace != rootID {
			t.Fatalf("span %q trace = %d, want %d (escaped the caller's trace)", s.Name, s.Trace, rootID)
		}
	}
	if wantNames["handler:sync"] != 1 || wantNames["handler:async"] != 1 || wantNames["rpc:work"] != 2 {
		t.Fatalf("span counts = %v, want sync=1 async=1 rpc=2", wantNames)
	}
}

// Satellite 2: the duplicate-suppression window must stay bounded no matter
// how long faults stay active.
func TestDupSuppressionBounded(t *testing.T) {
	k := sim.NewKernel(1)
	n, _, srv := rpcPair(k, LinkSpec{})
	srv.Register("noop", func(p *sim.Proc, from Addr, args any) (any, int) { return nil, 0 })
	// A plan that is "active" but never actually perturbs anything.
	n.SetFaultsAll(FaultPlan{DelayProb: 1e-12})
	total := 3 * seenGenCap
	for i := 0; i < total; i++ {
		srv.dispatch("c", rpcRequest{id: uint64(i + 1), method: "noop"})
	}
	k.Run()
	if got := len(srv.seenCur) + len(srv.seenPrev); got > 2*seenGenCap {
		t.Fatalf("suppression window holds %d ids, want <= %d", got, 2*seenGenCap)
	}
	if srv.Served() != int64(total) {
		t.Fatalf("served = %d, want %d", srv.Served(), total)
	}
	// A duplicate of a recent id is still suppressed...
	srv.dispatch("c", rpcRequest{id: uint64(total), method: "noop"})
	if srv.Served() != int64(total) {
		t.Fatal("recent duplicate executed twice")
	}
	// ...while one past the window has aged out and re-executes (bounded
	// memory necessarily forgets ancient ids).
	srv.dispatch("c", rpcRequest{id: 1, method: "noop"})
	if srv.Served() != int64(total)+1 {
		t.Fatal("aged-out id should no longer be suppressed")
	}
}

// Satellite 2: a duplicate delivered after the fault plan clears must still
// be suppressed when its first copy arrived under faults.
func TestDupSuppressedAfterFaultsClear(t *testing.T) {
	k := sim.NewKernel(1)
	n, _, srv := rpcPair(k, LinkSpec{})
	srv.Register("noop", func(p *sim.Proc, from Addr, args any) (any, int) { return nil, 0 })
	n.SetFaultsAll(FaultPlan{DelayProb: 1e-12})
	srv.dispatch("c", rpcRequest{id: 7, method: "noop"})
	k.Run()
	if srv.Served() != 1 {
		t.Fatalf("served = %d, want 1", srv.Served())
	}
	n.SetFaultsAll(FaultPlan{}) // plan cleared; the dup is already in flight
	srv.dispatch("c", rpcRequest{id: 7, method: "noop"})
	k.Run()
	if srv.Served() != 1 {
		t.Fatalf("served = %d after late duplicate, want 1 (executed twice)", srv.Served())
	}
}

// Satellite 3: Retries counts only re-attempts that actually went back on
// the wire after their backoff completed.
func TestRetryCounterAccuracy(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: sim.Millisecond})
	srv.Register("hang", func(p *sim.Proc, from Addr, args any) (any, int) {
		p.Sleep(10 * sim.Second)
		return nil, 0
	})
	k.Go("caller", func(p *sim.Proc) {
		cli.CallRetry(p, "s", "hang", nil, 0, RetryPolicy{
			Timeout: 10 * sim.Millisecond, Attempts: 3, Backoff: 5 * sim.Millisecond,
		})
	})
	k.RunUntil(sim.Time(sim.Second))
	st := cli.Stats()
	if st.Timeouts != 3 || st.Retries != 2 || st.GaveUp != 1 || st.Calls != 3 {
		t.Fatalf("stats = %+v, want Calls=3 Timeouts=3 Retries=2 GaveUp=1", st)
	}
}

// Satellite 3: a proc killed mid-backoff must not record a retry that never
// happened.
func TestRetryCounterKilledMidBackoff(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: sim.Millisecond})
	srv.Register("hang", func(p *sim.Proc, from Addr, args any) (any, int) {
		p.Sleep(10 * sim.Second)
		return nil, 0
	})
	k.Go("caller", func(p *sim.Proc) {
		cli.CallRetry(p, "s", "hang", nil, 0, RetryPolicy{
			Timeout: 10 * sim.Millisecond, Attempts: 2, Backoff: 100 * sim.Millisecond,
		})
	})
	// First attempt times out at 10ms; the retry would fire at 110ms. Kill
	// the caller in the middle of its backoff sleep.
	k.RunUntil(sim.Time(50 * sim.Millisecond))
	k.Close()
	st := cli.Stats()
	if st.Retries != 0 {
		t.Fatalf("Retries = %d after kill mid-backoff, want 0", st.Retries)
	}
	if st.Timeouts != 1 || st.Calls != 1 {
		t.Fatalf("stats = %+v, want Calls=1 Timeouts=1", st)
	}
}

// Two requests issued back-to-back must ride one frame, and their replies
// must coalesce on the reverse direction with the second one piggybacked.
func TestFrameCoalescing(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: sim.Millisecond})
	srv.Register("one", func(p *sim.Proc, from Addr, args any) (any, int) { return 1, 0 })
	cli.SetBatching(true, BatchPolicy{})
	srv.SetBatching(true, BatchPolicy{})
	var sum int
	k.Go("caller", func(p *sim.Proc) {
		f1 := cli.Go(p, "s", "one", nil, 0, 0)
		f2 := cli.Go(p, "s", "one", nil, 0, 0)
		sum = f1.Wait(p).(int) + f2.Wait(p).(int)
	})
	k.Run()
	if sum != 2 {
		t.Fatalf("sum = %d, want 2", sum)
	}
	cs, ss := cli.BatchStats(), srv.BatchStats()
	if cs.Frames != 1 || cs.Messages != 2 {
		t.Fatalf("client stats = %+v, want 2 messages in 1 frame", cs)
	}
	if ss.Frames != 1 || ss.Messages != 2 || ss.Piggybacked != 1 {
		t.Fatalf("server stats = %+v, want both replies in 1 frame, 1 piggybacked", ss)
	}
	if cli.OccupancyHistogram().Count() != 1 || cli.OccupancyHistogram().Mean() != 2 {
		t.Fatalf("occupancy count=%d mean=%v, want one sample of 2",
			cli.OccupancyHistogram().Count(), cli.OccupancyHistogram().Mean())
	}
}

// A lone message flushes when the coalescing window expires, and the delay
// histogram records exactly that wait.
func TestFrameWindowFlush(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: sim.Millisecond})
	srv.Register("ping", func(p *sim.Proc, from Addr, args any) (any, int) { return "pong", 0 })
	win := 20 * sim.Microsecond
	cli.SetBatching(true, BatchPolicy{Window: win})
	var rtt sim.Duration
	k.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		if _, err := cli.Call(p, "s", "ping", nil, 0); err != nil {
			t.Error(err)
		}
		rtt = p.Now().Sub(start)
	})
	k.Run()
	// Unbatched RTT is 2 ms; batching adds the request's window wait (the
	// reply is unbatched — the server conn is not coalescing).
	if want := 2*sim.Millisecond + win; rtt != want {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
	h := cli.BatchDelayHistogram()
	if h.Count() != 1 || h.Mean() != win {
		t.Fatalf("delay count=%d mean=%v, want one sample of %v", h.Count(), h.Mean(), win)
	}
}

// Hitting MaxMsgs flushes immediately without waiting out the window.
func TestFrameMaxMsgsFlush(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: sim.Millisecond})
	srv.Register("one", func(p *sim.Proc, from Addr, args any) (any, int) { return 1, 0 })
	cli.SetBatching(true, BatchPolicy{Window: sim.Second, MaxMsgs: 2})
	var end sim.Time
	k.Go("caller", func(p *sim.Proc) {
		f1 := cli.Go(p, "s", "one", nil, 0, 0)
		f2 := cli.Go(p, "s", "one", nil, 0, 0)
		sim.WaitAll(p, f1, f2)
		end = p.Now()
	})
	k.Run()
	if end != sim.Time(2*sim.Millisecond) {
		t.Fatalf("completed at %v, want 2ms (bound flush must not wait for the window)", end)
	}
	if d := cli.BatchDelayHistogram().Mean(); d != 0 {
		t.Fatalf("batch delay = %v, want 0", d)
	}
}

// Disabling batching flushes anything still queued, in the same event.
func TestSetBatchingOffFlushes(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: sim.Millisecond})
	srv.Register("one", func(p *sim.Proc, from Addr, args any) (any, int) { return 1, 0 })
	cli.SetBatching(true, BatchPolicy{Window: sim.Second})
	var got any
	var end sim.Time
	k.Go("caller", func(p *sim.Proc) {
		f := cli.Go(p, "s", "one", nil, 0, 0)
		p.Yield() // let the enqueue land, then turn batching off
		cli.SetBatching(false, BatchPolicy{})
		got = f.Wait(p)
		end = p.Now()
	})
	k.Run()
	if got != 1 {
		t.Fatalf("reply = %v, want 1 (queued frame lost on disable)", got)
	}
	// (The stale 1s window timer still fires as a no-op; only the reply
	// time matters.)
	if end > sim.Time(10*sim.Millisecond) {
		t.Fatalf("reply at %v — frame waited out the 1s window despite disable", end)
	}
}

// With batching off, no frames are emitted and no batching state accrues:
// the wire behavior is the pre-batching per-message path.
func TestBatchingOffIsPerMessage(t *testing.T) {
	k := sim.NewKernel(1)
	_, cli, srv := rpcPair(k, LinkSpec{Latency: 5 * sim.Millisecond})
	srv.Register("ping", func(p *sim.Proc, from Addr, args any) (any, int) { return "pong", 0 })
	var rtt sim.Duration
	k.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		cli.Call(p, "s", "ping", nil, 0)
		rtt = p.Now().Sub(start)
	})
	k.Run()
	if rtt != 10*sim.Millisecond {
		t.Fatalf("rtt = %v, want 10ms", rtt)
	}
	if cli.BatchStats() != (BatchStats{}) || srv.BatchStats() != (BatchStats{}) {
		t.Fatal("batch counters moved with batching off")
	}
	if cli.OccupancyHistogram() != nil {
		t.Fatal("occupancy histogram allocated with batching off")
	}
}

// An unreachable peer fails fast at enqueue time, matching the unbatched
// ErrUnreachable contract.
func TestBatchedUnreachableFailsFast(t *testing.T) {
	k := sim.NewKernel(1)
	n, cli, _ := rpcPair(k, LinkSpec{})
	n.SetDown("s", true)
	cli.SetBatching(true, BatchPolicy{})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		_, err = cli.Call(p, "s", "ping", nil, 0)
	})
	k.Run()
	if err != ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if cli.BatchStats().Frames != 0 {
		t.Fatal("frame emitted toward a down peer")
	}
}
