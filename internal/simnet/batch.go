package simnet

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Frame coalescing amortizes the fabric's per-message cost: when batching
// is enabled, every payload a Conn sends (requests and replies alike) is
// queued per destination peer and flushed as one rpcFrame when either the
// coalescing window expires or the queue hits its message/byte bound.
// Replies piggyback on frames already pending toward the caller — the
// simulated analogue of acks riding reverse-direction traffic.
//
// Determinism: queue state lives on the Conn, flush timers are kernel
// events, and forced flushes (SetBatching off) walk peers in sorted order,
// so batched runs are exactly reproducible per seed. With batching off the
// send path is byte-for-byte the pre-batching one: Conn.send degrades to a
// direct Endpoint.Send with no queueing, no timers, and no extra state.

// BatchPolicy bounds frame coalescing. The zero value takes defaults.
type BatchPolicy struct {
	// Window is the longest a queued payload waits for companions before
	// its frame is flushed (virtual time). Default 10µs — two fabric hops.
	Window sim.Duration
	// MaxMsgs flushes the frame early once this many payloads queue.
	// Default 16.
	MaxMsgs int
	// MaxBytes flushes the frame early once the queued payload bytes reach
	// this bound. Default 64 KiB.
	MaxBytes int
}

func (p BatchPolicy) withDefaults() BatchPolicy {
	if p.Window <= 0 {
		p.Window = 10 * sim.Microsecond
	}
	if p.MaxMsgs <= 0 {
		p.MaxMsgs = 16
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = 64 << 10
	}
	return p
}

// BatchStats counts a connection's frame coalescing activity.
type BatchStats struct {
	Frames      int64 // fabric frames sent
	Messages    int64 // payloads carried inside frames
	Piggybacked int64 // replies that joined a frame already pending toward the caller
}

// frameOverhead is the wire cost of one frame header. Individual messages
// already include their own header in the caller-declared size; a frame
// pays one header for the whole group.
const frameOverhead = 32

type frameItem struct {
	payload any
	size    int
}

// rpcFrame is the wire payload of one coalesced frame.
type rpcFrame struct {
	items []frameItem
}

// peerQueue accumulates payloads bound for one peer between flushes.
type peerQueue struct {
	items []frameItem
	bytes int
	since sim.Time // enqueue time of the oldest queued payload
	gen   uint64   // flush generation, invalidates stale window timers
}

// SetBatching enables or disables frame coalescing. Disabling flushes any
// queued frames immediately (sorted peer order) and restores the direct
// per-message path. pol is ignored when disabling.
func (c *Conn) SetBatching(on bool, pol BatchPolicy) {
	if !on {
		if c.batching {
			c.flushAll()
		}
		c.batching = false
		return
	}
	c.batching = true
	c.pol = pol.withDefaults()
	if c.outq == nil {
		c.outq = make(map[Addr]*peerQueue)
	}
	if c.occupancy == nil {
		c.occupancy = metrics.NewHistogram()
		c.batchDelay = metrics.NewHistogram()
	}
}

// Batching reports whether frame coalescing is on.
func (c *Conn) Batching() bool { return c.batching }

// BatchStats returns a copy of the coalescing counters.
func (c *Conn) BatchStats() BatchStats { return c.bstats }

// OccupancyHistogram returns the per-frame occupancy histogram (samples are
// message counts, recorded in sim.Duration units of 1), or nil before
// batching is first enabled.
func (c *Conn) OccupancyHistogram() *metrics.Histogram { return c.occupancy }

// BatchDelayHistogram returns the histogram of per-frame coalescing delay
// (flush time minus the oldest payload's enqueue time), or nil before
// batching is first enabled.
func (c *Conn) BatchDelayHistogram() *metrics.Histogram { return c.batchDelay }

// send is the single egress point for every payload the Conn emits. With
// batching off it is exactly Endpoint.Send; with batching on the payload
// joins (or opens) the destination's pending frame.
func (c *Conn) send(dst Addr, payload any, size int) bool {
	if !c.batching {
		return c.ep.Send(dst, payload, size)
	}
	return c.enqueue(dst, payload, size)
}

func (c *Conn) enqueue(dst Addr, payload any, size int) bool {
	net := c.ep.Network()
	if !net.Reachable(c.Addr(), dst) {
		// Match the unbatched fast-fail so callers still get
		// ErrUnreachable instead of a timeout. A peer that goes down
		// between enqueue and flush loses the frame in flight, exactly as
		// a wire message would be lost.
		net.Dropped++
		return false
	}
	q := c.outq[dst]
	if q == nil {
		q = &peerQueue{}
		c.outq[dst] = q
	}
	if len(q.items) == 0 {
		q.since = net.Kernel().Now()
		gen := q.gen
		net.Kernel().After(c.pol.Window, func() {
			if q.gen == gen && len(q.items) > 0 {
				c.flush(dst, q)
			}
		})
	} else if _, isReply := payload.(rpcReply); isReply {
		// The reply joins a frame already headed for the caller.
		c.bstats.Piggybacked++
	}
	q.items = append(q.items, frameItem{payload: payload, size: size})
	q.bytes += size
	if len(q.items) >= c.pol.MaxMsgs || q.bytes >= c.pol.MaxBytes {
		c.flush(dst, q)
	}
	return true
}

// flush emits dst's pending frame. Runs synchronously in whichever event or
// process context tripped the bound (or the window timer's event context).
func (c *Conn) flush(dst Addr, q *peerQueue) {
	if len(q.items) == 0 {
		return
	}
	items := q.items
	bytes := q.bytes
	since := q.since
	q.items = nil
	q.bytes = 0
	q.gen++
	k := c.ep.Network().Kernel()
	c.bstats.Frames++
	c.bstats.Messages += int64(len(items))
	c.occupancy.Observe(sim.Duration(len(items)))
	c.batchDelay.Observe(k.Now().Sub(since))
	c.ep.Send(dst, rpcFrame{items: items}, frameOverhead+bytes)
}

// flushAll drains every pending frame in sorted peer order (deterministic
// despite the queue map).
func (c *Conn) flushAll() {
	peers := make([]Addr, 0, len(c.outq))
	for a, q := range c.outq {
		if len(q.items) > 0 {
			peers = append(peers, a)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, a := range peers {
		c.flush(a, c.outq[a])
	}
}
