package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDirectLinkTiming(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	// 1 Gb/s, 1 ms latency: 125000 bytes = 1 ms serialization + 1 ms prop.
	n.Connect("a", "b", LinkSpec{BandwidthBps: 1_000_000_000, Latency: sim.Millisecond})
	var arrived sim.Time
	n.Node("b").Handle(func(m Message) { arrived = k.Now() })
	n.Node("a").Send("b", "x", 125_000)
	k.Run()
	want := sim.Time(2 * sim.Millisecond)
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestLinkFIFOSerialization(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{BandwidthBps: 1_000_000_000, Latency: 0})
	var arrivals []sim.Time
	n.Node("b").Handle(func(m Message) { arrivals = append(arrivals, k.Now()) })
	// Two back-to-back 125000-byte messages: second must queue behind first.
	n.Node("a").Send("b", 1, 125_000)
	n.Node("a").Send("b", 2, 125_000)
	k.Run()
	if arrivals[0] != sim.Time(sim.Millisecond) || arrivals[1] != sim.Time(2*sim.Millisecond) {
		t.Fatalf("arrivals %v, want [1ms 2ms]", arrivals)
	}
}

func TestInfiniteBandwidthLink(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{Latency: 3 * sim.Microsecond})
	var arrived sim.Time
	n.Node("b").Handle(func(m Message) { arrived = k.Now() })
	n.Node("a").Send("b", "x", 1<<30)
	k.Run()
	if arrived != sim.Time(3*sim.Microsecond) {
		t.Fatalf("arrived at %v, want 3us (no serialization)", arrived)
	}
}

func TestMultiHopRouting(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	spec := LinkSpec{Latency: sim.Millisecond}
	n.Connect("a", "sw", spec)
	n.Connect("sw", "b", spec)
	var arrived sim.Time
	n.Node("b").Handle(func(m Message) { arrived = k.Now() })
	if ok := n.Node("a").Send("b", "x", 100); !ok {
		t.Fatal("send failed")
	}
	k.Run()
	if arrived != sim.Time(2*sim.Millisecond) {
		t.Fatalf("arrived at %v, want 2ms over two hops", arrived)
	}
}

func TestRoutingPicksMinHop(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	slow := LinkSpec{Latency: 10 * sim.Millisecond}
	n.Connect("a", "m1", slow)
	n.Connect("m1", "m2", slow)
	n.Connect("m2", "b", slow)
	n.Connect("a", "b", slow) // direct: 1 hop
	var arrived sim.Time
	n.Node("b").Handle(func(m Message) { arrived = k.Now() })
	n.Node("a").Send("b", "x", 0)
	k.Run()
	if arrived != sim.Time(10*sim.Millisecond) {
		t.Fatalf("arrived at %v, want 10ms via direct link", arrived)
	}
}

func TestUnreachable(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{})
	n.Node("island")
	if ok := n.Node("a").Send("island", "x", 1); ok {
		t.Fatal("send to unconnected node should fail")
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
}

func TestDownNodeDropsInFlight(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{Latency: 10 * sim.Millisecond})
	delivered := false
	n.Node("b").Handle(func(m Message) { delivered = true })
	n.Node("a").Send("b", "x", 0)
	k.After(sim.Millisecond, func() { n.SetDown("b", true) })
	k.Run()
	if delivered {
		t.Fatal("message delivered to node that went down mid-flight")
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
}

func TestDownSenderCannotSend(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{})
	n.SetDown("a", true)
	if ok := n.Node("a").Send("b", "x", 0); ok {
		t.Fatal("down sender transmitted")
	}
}

func TestLinkBytesAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("a", "b", LinkSpec{})
	n.Node("b").Handle(func(m Message) {})
	n.Node("a").Send("b", "x", 1000)
	n.Node("a").Send("b", "x", 234)
	k.Run()
	if got := n.LinkBytes("a", "b"); got != 1234 {
		t.Fatalf("LinkBytes = %d, want 1234", got)
	}
	if got := n.LinkBytes("b", "a"); got != 0 {
		t.Fatalf("reverse LinkBytes = %d, want 0", got)
	}
}

// Property: measured link throughput never exceeds configured bandwidth.
func TestBandwidthCeilingProperty(t *testing.T) {
	f := func(sizes []uint16, bwMbps uint8) bool {
		if len(sizes) == 0 || bwMbps == 0 {
			return true
		}
		bw := int64(bwMbps) * 1_000_000
		k := sim.NewKernel(1)
		n := New(k)
		n.Connect("a", "b", LinkSpec{BandwidthBps: bw})
		var total int64
		var last sim.Time
		n.Node("b").Handle(func(m Message) {
			total += int64(m.Size)
			last = k.Now()
		})
		for _, s := range sizes {
			n.Node("a").Send("b", "x", int(s)+1)
		}
		k.Run()
		if last == 0 {
			return true
		}
		rate := float64(total*8) / last.Seconds()
		return rate <= float64(bw)*1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Arithmetic(t *testing.T) {
	// A 2 Gb/s FC link should carry ~250 MB/s; verify serialization math.
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("blade", "port", FC2G)
	var last sim.Time
	var total int64
	n.Node("port").Handle(func(m Message) { total += int64(m.Size); last = k.Now() })
	const chunk = 1 << 20
	for i := 0; i < 64; i++ {
		n.Node("blade").Send("port", i, chunk)
	}
	k.Run()
	gbps := float64(total*8) / last.Seconds() / 1e9
	if math.Abs(gbps-2.0) > 0.05 {
		t.Fatalf("sustained FC2G rate = %.3f Gb/s, want ~2.0", gbps)
	}
}

func TestRPCBasic(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("client", "server", LinkSpec{Latency: sim.Millisecond})
	srv := NewConn(n, "server")
	srv.Register("add", func(p *sim.Proc, from Addr, args any) (any, int) {
		xs := args.([2]int)
		return xs[0] + xs[1], 8
	})
	cli := NewConn(n, "client")
	var got any
	var err error
	k.Go("caller", func(p *sim.Proc) {
		got, err = cli.Call(p, "server", "add", [2]int{2, 3}, 16)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("rpc result = %v, want 5", got)
	}
	if srv.Served() != 1 {
		t.Fatalf("served = %d, want 1", srv.Served())
	}
}

func TestRPCRoundTripTiming(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("client", "server", LinkSpec{Latency: 5 * sim.Millisecond})
	srv := NewConn(n, "server")
	srv.Register("ping", func(p *sim.Proc, from Addr, args any) (any, int) { return "pong", 0 })
	cli := NewConn(n, "client")
	var rtt sim.Duration
	k.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		cli.Call(p, "server", "ping", nil, 0)
		rtt = p.Now().Sub(start)
	})
	k.Run()
	if rtt != 10*sim.Millisecond {
		t.Fatalf("rtt = %v, want 10ms", rtt)
	}
}

func TestRPCHandlerMayBlock(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("c", "s", LinkSpec{})
	srv := NewConn(n, "s")
	srv.Register("slow", func(p *sim.Proc, from Addr, args any) (any, int) {
		p.Sleep(7 * sim.Millisecond)
		return "done", 0
	})
	cli := NewConn(n, "c")
	var end sim.Time
	k.Go("caller", func(p *sim.Proc) {
		cli.Call(p, "s", "slow", nil, 0)
		end = p.Now()
	})
	k.Run()
	if end != sim.Time(7*sim.Millisecond) {
		t.Fatalf("call returned at %v, want 7ms", end)
	}
}

func TestRPCTimeoutOnDeadPeer(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("c", "s", LinkSpec{Latency: sim.Millisecond})
	srv := NewConn(n, "s")
	srv.Register("ping", func(p *sim.Proc, from Addr, args any) (any, int) {
		p.Sleep(time100ms)
		return "late", 0
	})
	cli := NewConn(n, "c")
	var err error
	k.Go("caller", func(p *sim.Proc) {
		_, err = cli.CallTimeout(p, "s", "ping", nil, 0, 10*sim.Millisecond)
	})
	k.Run()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

const time100ms = 100 * sim.Millisecond

func TestRPCUnreachableError(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("c", "s", LinkSpec{})
	n.SetDown("s", true)
	cli := NewConn(n, "c")
	var err error
	k.Go("caller", func(p *sim.Proc) {
		_, err = cli.Call(p, "s", "ping", nil, 0)
	})
	k.Run()
	if err != ErrUnreachable {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("c", "s", LinkSpec{})
	srv := NewConn(n, "s")
	srv.Register("echo", func(p *sim.Proc, from Addr, args any) (any, int) {
		p.Sleep(sim.Duration(args.(int)) * sim.Millisecond)
		return args, 0
	})
	cli := NewConn(n, "c")
	results := make([]any, 5)
	g := sim.NewGroup(k)
	for i := 0; i < 5; i++ {
		i := i
		g.Add(1)
		k.Go("caller", func(p *sim.Proc) {
			defer g.Done()
			r, err := cli.Call(p, "s", "echo", 5-i, 0)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			results[i] = r
		})
	}
	k.Run()
	for i, r := range results {
		if r != 5-i {
			t.Fatalf("results[%d] = %v, want %d (reply mismatched to caller)", i, r, 5-i)
		}
	}
}

func TestRPCAsyncGo(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.Connect("c", "s", LinkSpec{})
	srv := NewConn(n, "s")
	srv.Register("one", func(p *sim.Proc, from Addr, args any) (any, int) { return 1, 0 })
	cli := NewConn(n, "c")
	var sum int
	k.Go("caller", func(p *sim.Proc) {
		f1 := cli.Go(p, "s", "one", nil, 0, 0)
		f2 := cli.Go(p, "s", "one", nil, 0, 0)
		sum = f1.Wait(p).(int) + f2.Wait(p).(int)
	})
	k.Run()
	if sum != 2 {
		t.Fatalf("sum = %d, want 2", sum)
	}
}
