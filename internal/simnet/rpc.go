package simnet

import (
	"errors"
	"fmt"

	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrTimeout is returned by Call when the reply does not arrive in time —
// the way a live system notices a dead controller blade.
var ErrTimeout = errors.New("simnet: rpc timeout")

// ErrUnreachable is returned when no route exists or the peer is down at
// send time.
var ErrUnreachable = errors.New("simnet: peer unreachable")

// RetryPolicy bounds CallRetry: per-attempt deadline, attempt budget, and
// jittered exponential backoff between attempts. The zero value means one
// attempt with no deadline (equivalent to plain Call).
type RetryPolicy struct {
	// Timeout is the per-attempt deadline (zero = wait forever).
	Timeout sim.Duration
	// Attempts is the total number of tries (values < 1 mean 1).
	Attempts int
	// Backoff is the pause before the second attempt; it doubles each
	// further attempt.
	Backoff sim.Duration
	// MaxBackoff caps the doubling (zero = uncapped).
	MaxBackoff sim.Duration
	// Jitter adds a uniform random extra in [0, Jitter) to each backoff,
	// de-synchronizing competing retriers.
	Jitter sim.Duration
}

// RPCStats counts a connection's client-side fault handling.
type RPCStats struct {
	Calls    int64 // attempts issued (retries included)
	Timeouts int64 // attempts that hit their deadline
	Retries  int64 // re-attempts after a timeout
	GaveUp   int64 // calls abandoned with the retry budget exhausted
}

// RegisterTelemetry publishes c's client-side RPC counters and the number
// of requests served as a callee under s.
func (c *Conn) RegisterTelemetry(s telemetry.Scope) {
	s.Int("calls", func() int64 { return c.stats.Calls })
	s.Int("timeouts", func() int64 { return c.stats.Timeouts })
	s.Int("retries", func() int64 { return c.stats.Retries })
	s.Int("gave_up", func() int64 { return c.stats.GaveUp })
	s.Int("served", func() int64 { return c.served })
}

// Handler serves one RPC method. It runs in its own simulation process, so
// it may block on disk and network operations. It returns the result payload
// and the wire size of the reply.
type Handler func(p *sim.Proc, from Addr, args any) (result any, size int)

type rpcRequest struct {
	id     uint64
	method string
	args   any
	// tctx carries the caller's trace context across the simulated wire,
	// so handler-side work joins the caller's trace.
	tctx trace.Ctx
	// qctx carries the caller's QoS tag (tenant + lane) the same way, so
	// remote handler CPU and disk time are charged to the right lane.
	qctx qos.Ctx
}

type rpcReply struct {
	id     uint64
	result any
}

// Conn is an RPC endpoint: it can both serve registered methods and call
// methods on peers. One Conn owns its node's message delivery.
type Conn struct {
	ep       *Endpoint
	handlers map[string]Handler
	pending  map[uint64]*sim.Future[any]
	nextID   uint64
	// DefaultTimeout bounds Call when no explicit timeout is given.
	// Zero means wait forever.
	DefaultTimeout sim.Duration
	// served counts requests handled, for load-balance accounting.
	served int64
	stats  RPCStats
	// seen suppresses network-duplicated requests (tracked only while the
	// fabric injects faults, so the fault-free path stays allocation-free).
	seen map[reqKey]bool
}

type reqKey struct {
	from Addr
	id   uint64
}

// NewConn attaches an RPC connection to addr on net.
func NewConn(net *Network, addr Addr) *Conn {
	c := &Conn{
		ep:       net.Node(addr),
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]*sim.Future[any]),
	}
	c.ep.Handle(c.onMessage)
	return c
}

// Addr returns the connection's network address.
func (c *Conn) Addr() Addr { return c.ep.Addr() }

// Network returns the underlying network.
func (c *Conn) Network() *Network { return c.ep.Network() }

// Served reports how many requests this connection has handled.
func (c *Conn) Served() int64 { return c.served }

// Stats returns a copy of the connection's client-side RPC counters.
func (c *Conn) Stats() RPCStats { return c.stats }

// Register installs a handler for method. Registering a method twice
// replaces the earlier handler.
func (c *Conn) Register(method string, h Handler) { c.handlers[method] = h }

func (c *Conn) onMessage(msg Message) {
	k := c.ep.Network().Kernel()
	switch m := msg.Payload.(type) {
	case rpcRequest:
		h, ok := c.handlers[m.method]
		if !ok {
			panic(fmt.Sprintf("simnet: %s has no handler for %q", c.Addr(), m.method))
		}
		// Under fault injection the fabric may deliver a request twice;
		// execute it once (the lost-reply case is covered by the caller's
		// retry, which uses a fresh request id).
		if c.ep.Network().FaultsActive() {
			if c.seen == nil {
				c.seen = make(map[reqKey]bool)
			}
			rk := reqKey{from: msg.From, id: m.id}
			if c.seen[rk] {
				return
			}
			c.seen[rk] = true
		}
		c.served++
		k.Go(string(c.Addr())+"/"+m.method, func(p *sim.Proc) {
			if m.tctx.Valid() {
				// Adopt the caller's trace so handler-side spans (disk
				// service, nested coherence calls) attribute correctly.
				p.SetTraceCtx(m.tctx)
			}
			if m.qctx != (qos.Ctx{}) {
				qos.SetCtx(p, m.qctx)
			}
			result, size := h(p, msg.From, m.args)
			c.ep.Send(msg.From, rpcReply{id: m.id, result: result}, size)
		})
	case rpcReply:
		if f, ok := c.pending[m.id]; ok {
			delete(c.pending, m.id)
			f.Set(m.result)
		}
	default:
		panic(fmt.Sprintf("simnet: %s received non-RPC payload %T", c.Addr(), msg.Payload))
	}
}

// Call invokes method on dst, blocking p until the reply arrives, the
// DefaultTimeout expires, or the peer is unreachable. argSize is the request
// wire size in bytes.
func (c *Conn) Call(p *sim.Proc, dst Addr, method string, args any, argSize int) (any, error) {
	return c.CallTimeout(p, dst, method, args, argSize, c.DefaultTimeout)
}

// CallTimeout is Call with an explicit timeout (zero = wait forever).
func (c *Conn) CallTimeout(p *sim.Proc, dst Addr, method string, args any, argSize int, timeout sim.Duration) (any, error) {
	k := c.ep.Network().Kernel()
	c.nextID++
	id := c.nextID
	c.stats.Calls++
	sp := trace.FromProc(p).Child("rpc:"+method, trace.Fabric, string(dst))
	f := sim.NewFuture[any](k)
	c.pending[id] = f
	if !c.ep.Send(dst, rpcRequest{id: id, method: method, args: args, tctx: sp.Ctx(), qctx: qos.FromProc(p)}, argSize) {
		delete(c.pending, id)
		sp.Detail("unreachable").End()
		return nil, ErrUnreachable
	}
	timedOut := false
	if timeout > 0 {
		k.After(timeout, func() {
			if pf, ok := c.pending[id]; ok && pf == f {
				delete(c.pending, id)
				timedOut = true
				f.Set(nil)
			}
		})
	}
	result := f.Wait(p)
	if timedOut {
		c.stats.Timeouts++
		sp.Detail("timeout").End()
		return nil, ErrTimeout
	}
	sp.End()
	return result, nil
}

// CallRetry is Call wrapped in a bounded retry loop per pol: every attempt
// runs under pol.Timeout, timeouts are retried after jittered exponential
// backoff, and the last error is returned once the attempt budget is spent.
// Non-timeout errors (an unreachable peer has failed, not merely dropped a
// message) are returned immediately — retrying them cannot help and only
// delays the caller's failover logic.
func (c *Conn) CallRetry(p *sim.Proc, dst Addr, method string, args any, argSize int, pol RetryPolicy) (any, error) {
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	k := c.ep.Network().Kernel()
	backoff := pol.Backoff
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := backoff
			if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
				d = pol.MaxBackoff
			}
			if pol.Jitter > 0 {
				d += sim.Duration(k.Rand().Int63n(int64(pol.Jitter)))
			}
			p.Sleep(d)
			backoff *= 2
			c.stats.Retries++
		}
		result, err := c.CallTimeout(p, dst, method, args, argSize, pol.Timeout)
		if err == nil {
			return result, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, err
		}
	}
	c.stats.GaveUp++
	return nil, fmt.Errorf("simnet: %s to %s gave up after %d attempts: %w", method, dst, attempts, lastErr)
}

// Go starts an asynchronous call, returning a future that yields the reply
// payload (nil on unreachable/timeout paths — use Call for error detail).
func (c *Conn) Go(dst Addr, method string, args any, argSize int, timeout sim.Duration) *sim.Future[any] {
	k := c.ep.Network().Kernel()
	c.nextID++
	id := c.nextID
	f := sim.NewFuture[any](k)
	if !c.ep.Send(dst, rpcRequest{id: id, method: method, args: args}, argSize) {
		f.Set(nil)
		return f
	}
	c.pending[id] = f
	if timeout > 0 {
		k.After(timeout, func() {
			if pf, ok := c.pending[id]; ok && pf == f {
				delete(c.pending, id)
				f.Set(nil)
			}
		})
	}
	return f
}
