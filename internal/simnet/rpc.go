package simnet

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrTimeout is returned by Call when the reply does not arrive in time —
// the way a live system notices a dead controller blade.
var ErrTimeout = errors.New("simnet: rpc timeout")

// ErrUnreachable is returned when no route exists or the peer is down at
// send time.
var ErrUnreachable = errors.New("simnet: peer unreachable")

// RetryPolicy bounds CallRetry: per-attempt deadline, attempt budget, and
// jittered exponential backoff between attempts. The zero value means one
// attempt with no deadline (equivalent to plain Call).
type RetryPolicy struct {
	// Timeout is the per-attempt deadline (zero = wait forever).
	Timeout sim.Duration
	// Attempts is the total number of tries (values < 1 mean 1).
	Attempts int
	// Backoff is the pause before the second attempt; it doubles each
	// further attempt.
	Backoff sim.Duration
	// MaxBackoff caps the doubling (zero = uncapped).
	MaxBackoff sim.Duration
	// Jitter adds a uniform random extra in [0, Jitter) to each backoff,
	// de-synchronizing competing retriers.
	Jitter sim.Duration
}

// RPCStats counts a connection's client-side fault handling.
type RPCStats struct {
	Calls    int64 // attempts issued (retries included)
	Timeouts int64 // attempts that hit their deadline
	Retries  int64 // re-attempts after a timeout
	GaveUp   int64 // calls abandoned with the retry budget exhausted
}

// RegisterTelemetry publishes c's client-side RPC counters and the number
// of requests served as a callee under s.
func (c *Conn) RegisterTelemetry(s telemetry.Scope) {
	s.Int("calls", func() int64 { return c.stats.Calls })
	s.Int("timeouts", func() int64 { return c.stats.Timeouts })
	s.Int("retries", func() int64 { return c.stats.Retries })
	s.Int("gave_up", func() int64 { return c.stats.GaveUp })
	s.Int("served", func() int64 { return c.served })
	b := s.Sub("batch")
	b.Int("frames", func() int64 { return c.bstats.Frames })
	b.Int("messages", func() int64 { return c.bstats.Messages })
	b.Int("piggybacked", func() int64 { return c.bstats.Piggybacked })
	// Occupancy samples are message counts (not durations), so publish the
	// derived series directly instead of a ms-scaled histogram.
	b.Func("occupancy_mean", func() float64 {
		if c.occupancy == nil {
			return 0
		}
		return float64(c.occupancy.Mean())
	})
	b.Func("occupancy_p99", func() float64 {
		if c.occupancy == nil {
			return 0
		}
		return float64(c.occupancy.Quantile(0.99))
	})
	b.Func("delay_mean_ms", func() float64 {
		if c.batchDelay == nil {
			return 0
		}
		return c.batchDelay.Mean().Millis()
	})
	b.Func("delay_p99_ms", func() float64 {
		if c.batchDelay == nil {
			return 0
		}
		return c.batchDelay.P99().Millis()
	})
}

// Handler serves one RPC method. It runs in its own simulation process, so
// it may block on disk and network operations. It returns the result payload
// and the wire size of the reply.
type Handler func(p *sim.Proc, from Addr, args any) (result any, size int)

type rpcRequest struct {
	id     uint64
	method string
	args   any
	// tctx carries the caller's trace context across the simulated wire,
	// so handler-side work joins the caller's trace.
	tctx trace.Ctx
	// qctx carries the caller's QoS tag (tenant + lane) the same way, so
	// remote handler CPU and disk time are charged to the right lane.
	qctx qos.Ctx
}

type rpcReply struct {
	id     uint64
	result any
}

// Conn is an RPC endpoint: it can both serve registered methods and call
// methods on peers. One Conn owns its node's message delivery.
type Conn struct {
	ep       *Endpoint
	handlers map[string]Handler
	pending  map[uint64]*sim.Future[any]
	nextID   uint64
	// DefaultTimeout bounds Call when no explicit timeout is given.
	// Zero means wait forever.
	DefaultTimeout sim.Duration
	// served counts requests handled, for load-balance accounting.
	served int64
	stats  RPCStats
	// seenCur/seenPrev suppress network-duplicated requests. Ids are
	// recorded only while the fabric injects faults (the fault-free path
	// stays allocation-free) but membership is checked on every delivery,
	// so a duplicate whose first copy arrived under faults is still
	// suppressed after the fault plan clears. Two fixed-size generations
	// bound the memory: when the current generation fills, it becomes the
	// previous one and the oldest ids age out.
	seenCur  map[reqKey]struct{}
	seenPrev map[reqKey]struct{}

	// Frame coalescing state (see batch.go). All zero when batching is off.
	batching   bool
	pol        BatchPolicy
	outq       map[Addr]*peerQueue
	bstats     BatchStats
	occupancy  *metrics.Histogram
	batchDelay *metrics.Histogram
}

// seenGenCap bounds each duplicate-suppression generation; the window
// covers between seenGenCap and 2*seenGenCap of the most recent faulted
// request ids.
const seenGenCap = 8192

// dupSeen reports whether rk was already delivered within the suppression
// window. Nil-map lookups are free, so the fault-free path pays only this.
func (c *Conn) dupSeen(rk reqKey) bool {
	if _, ok := c.seenCur[rk]; ok {
		return true
	}
	_, ok := c.seenPrev[rk]
	return ok
}

// noteSeen records rk, rotating generations once the current one fills.
func (c *Conn) noteSeen(rk reqKey) {
	if c.seenCur == nil {
		c.seenCur = make(map[reqKey]struct{})
	}
	if len(c.seenCur) >= seenGenCap {
		c.seenPrev = c.seenCur
		c.seenCur = make(map[reqKey]struct{})
	}
	c.seenCur[rk] = struct{}{}
}

type reqKey struct {
	from Addr
	id   uint64
}

// NewConn attaches an RPC connection to addr on net.
func NewConn(net *Network, addr Addr) *Conn {
	c := &Conn{
		ep:       net.Node(addr),
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]*sim.Future[any]),
	}
	c.ep.Handle(c.onMessage)
	return c
}

// Addr returns the connection's network address.
func (c *Conn) Addr() Addr { return c.ep.Addr() }

// Network returns the underlying network.
func (c *Conn) Network() *Network { return c.ep.Network() }

// Served reports how many requests this connection has handled.
func (c *Conn) Served() int64 { return c.served }

// Stats returns a copy of the connection's client-side RPC counters.
func (c *Conn) Stats() RPCStats { return c.stats }

// Register installs a handler for method. Registering a method twice
// replaces the earlier handler.
func (c *Conn) Register(method string, h Handler) { c.handlers[method] = h }

func (c *Conn) onMessage(msg Message) {
	if fr, ok := msg.Payload.(rpcFrame); ok {
		for _, it := range fr.items {
			c.dispatch(msg.From, it.payload)
		}
		return
	}
	c.dispatch(msg.From, msg.Payload)
}

func (c *Conn) dispatch(from Addr, payload any) {
	k := c.ep.Network().Kernel()
	switch m := payload.(type) {
	case rpcRequest:
		h, ok := c.handlers[m.method]
		if !ok {
			panic(fmt.Sprintf("simnet: %s has no handler for %q", c.Addr(), m.method))
		}
		// Under fault injection the fabric may deliver a request twice;
		// execute it once (the lost-reply case is covered by the caller's
		// retry, which uses a fresh request id). The membership check is
		// unconditional: a duplicate whose first copy arrived while faults
		// were active must stay suppressed even after the plan clears.
		rk := reqKey{from: from, id: m.id}
		if c.dupSeen(rk) {
			return
		}
		if c.ep.Network().FaultsActive() {
			c.noteSeen(rk)
		}
		c.served++
		k.Go(string(c.Addr())+"/"+m.method, func(p *sim.Proc) {
			if m.tctx.Valid() {
				// Adopt the caller's trace so handler-side spans (disk
				// service, nested coherence calls) attribute correctly.
				p.SetTraceCtx(m.tctx)
			}
			if m.qctx != (qos.Ctx{}) {
				qos.SetCtx(p, m.qctx)
			}
			result, size := h(p, from, m.args)
			c.send(from, rpcReply{id: m.id, result: result}, size)
		})
	case rpcReply:
		if f, ok := c.pending[m.id]; ok {
			delete(c.pending, m.id)
			f.Set(m.result)
		}
	default:
		panic(fmt.Sprintf("simnet: %s received non-RPC payload %T", c.Addr(), payload))
	}
}

// Call invokes method on dst, blocking p until the reply arrives, the
// DefaultTimeout expires, or the peer is unreachable. argSize is the request
// wire size in bytes.
func (c *Conn) Call(p *sim.Proc, dst Addr, method string, args any, argSize int) (any, error) {
	return c.CallTimeout(p, dst, method, args, argSize, c.DefaultTimeout)
}

// CallTimeout is Call with an explicit timeout (zero = wait forever).
func (c *Conn) CallTimeout(p *sim.Proc, dst Addr, method string, args any, argSize int, timeout sim.Duration) (any, error) {
	k := c.ep.Network().Kernel()
	c.nextID++
	id := c.nextID
	c.stats.Calls++
	sp := trace.FromProc(p).Child("rpc:"+method, trace.Fabric, string(dst))
	f := sim.NewFuture[any](k)
	c.pending[id] = f
	if !c.send(dst, rpcRequest{id: id, method: method, args: args, tctx: sp.Ctx(), qctx: qos.FromProc(p)}, argSize) {
		delete(c.pending, id)
		sp.Detail("unreachable").End()
		return nil, ErrUnreachable
	}
	timedOut := false
	if timeout > 0 {
		k.After(timeout, func() {
			if pf, ok := c.pending[id]; ok && pf == f {
				delete(c.pending, id)
				timedOut = true
				f.Set(nil)
			}
		})
	}
	result := f.Wait(p)
	if timedOut {
		c.stats.Timeouts++
		sp.Detail("timeout").End()
		return nil, ErrTimeout
	}
	sp.End()
	return result, nil
}

// CallRetry is Call wrapped in a bounded retry loop per pol: every attempt
// runs under pol.Timeout, timeouts are retried after jittered exponential
// backoff, and the last error is returned once the attempt budget is spent.
// Non-timeout errors (an unreachable peer has failed, not merely dropped a
// message) are returned immediately — retrying them cannot help and only
// delays the caller's failover logic.
func (c *Conn) CallRetry(p *sim.Proc, dst Addr, method string, args any, argSize int, pol RetryPolicy) (any, error) {
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	k := c.ep.Network().Kernel()
	backoff := pol.Backoff
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := backoff
			if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
				d = pol.MaxBackoff
			}
			if pol.Jitter > 0 {
				d += sim.Duration(k.Rand().Int63n(int64(pol.Jitter)))
			}
			p.Sleep(d)
			backoff *= 2
			// Count the retry only after the backoff completes: a proc
			// killed mid-sleep unwinds out of Sleep and must not record a
			// re-attempt that never went on the wire.
			c.stats.Retries++
		}
		result, err := c.CallTimeout(p, dst, method, args, argSize, pol.Timeout)
		if err == nil {
			return result, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, err
		}
	}
	c.stats.GaveUp++
	return nil, fmt.Errorf("simnet: %s to %s gave up after %d attempts: %w", method, dst, attempts, lastErr)
}

// Go starts an asynchronous call, returning a future that yields the reply
// payload (nil on unreachable/timeout paths — use Call for error detail).
// The caller's trace and QoS contexts propagate exactly as CallTimeout's
// do, so async pushes stay inside the caller's trace and remote handler
// time is charged to the caller's lane; p may be nil for callers running
// outside any process (the span is then simply absent).
func (c *Conn) Go(p *sim.Proc, dst Addr, method string, args any, argSize int, timeout sim.Duration) *sim.Future[any] {
	k := c.ep.Network().Kernel()
	c.nextID++
	id := c.nextID
	f := sim.NewFuture[any](k)
	sp := trace.FromProc(p).Child("rpc:"+method, trace.Fabric, string(dst))
	if !c.send(dst, rpcRequest{id: id, method: method, args: args, tctx: sp.Ctx(), qctx: qos.FromProc(p)}, argSize) {
		sp.Detail("unreachable").End()
		f.Set(nil)
		return f
	}
	c.pending[id] = f
	if timeout > 0 {
		k.After(timeout, func() {
			if pf, ok := c.pending[id]; ok && pf == f {
				delete(c.pending, id)
				f.Set(nil)
			}
		})
	}
	if sp != nil {
		if timeout > 0 {
			f.OnDone(func(any) { sp.End() })
		} else {
			// Fire-and-forget: no deadline means no caller observes the
			// completion, and the reply may land after the enclosing op's
			// root span has closed. An instant span marks the dispatch
			// (keeping child spans nested inside their parents); the
			// handler still adopts the propagated context.
			sp.End()
		}
	}
	return f
}
