// Package qos arbitrates the cluster's shared resources between tenants
// and between foreground and background work — the paper's §2.4 promise
// that storage services "do not impede foreground I/O" and §4's per-file
// policy classes, enforced rather than accidental.
//
// Three mechanisms compose:
//
//   - Admission: per-tenant token buckets (GCRA on virtual time) at the
//     controller front door. A tenant over its rate waits in a bounded
//     queue; when the queue is full the op sheds with ErrThrottled.
//   - FairQueue: weighted-fair queueing with priority lanes replacing the
//     FIFO disk gate and the coherence CPU semaphore. Lanes 0..3 are
//     foreground (from pfs.Policy.CachePriority); lane 4 is background
//     (rebuild, scrub, replication destage, migration).
//   - Governor: a telemetry watchdog that narrows the background lane's
//     weight when the windowed foreground p99 nears the SLO or disk
//     queues run deep, and widens it again in calm windows.
//
// Every op carries a Ctx (tenant + lane) on its sim.Proc; children inherit
// it and simnet carries it across RPC boundaries, so remote coherence CPU
// time and disk service land on the originating tenant's lane.
package qos

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Lane layout: four foreground lanes mapped 1:1 from the documented
// pfs.Policy.CachePriority range 0..3, plus one background lane for
// storage services.
const (
	NumForeground  = 4
	LaneBackground = NumForeground
	NumLanes       = NumForeground + 1
)

// ErrThrottled is returned by Admit when a tenant is over its token-bucket
// rate and its bounded wait queue is already full. It is a by-design
// shed, not a failure: callers surface it to the client without counting
// it against cluster error SLOs.
var ErrThrottled = errors.New("qos: tenant throttled (admission queue full)")

// Ctx tags an op with its tenant and scheduling lane. The zero Ctx is a
// valid default: unknown tenant, foreground lane 0.
type Ctx struct {
	Tenant string
	Lane   int
}

// ClampLane maps any int onto a valid lane index: negatives to lane 0,
// overlarge values to the highest foreground lane (background must be
// requested explicitly via LaneBackground itself).
func ClampLane(lane int) int {
	if lane == LaneBackground {
		return lane
	}
	if lane < 0 {
		return 0
	}
	if lane >= NumForeground {
		return NumForeground - 1
	}
	return lane
}

// FromProc returns the QoS context carried by p (zero Ctx when untagged).
func FromProc(p *sim.Proc) Ctx {
	if c, ok := p.QoSCtx().(Ctx); ok {
		return c
	}
	return Ctx{}
}

// SetCtx installs c as p's QoS context; children spawned from p inherit it.
func SetCtx(p *sim.Proc, c Ctx) {
	c.Lane = ClampLane(c.Lane)
	p.SetQoSCtx(c)
}

// LaneOf returns the (clamped) lane p's current context selects.
func LaneOf(p *sim.Proc) int { return ClampLane(FromProc(p).Lane) }

// TagBackground moves p (and everything it subsequently spawns) onto the
// background lane, preserving any tenant tag. Rebuild, scrub, migration
// and destage workers call this at spawn.
func TagBackground(p *sim.Proc) {
	c := FromProc(p)
	c.Lane = LaneBackground
	p.SetQoSCtx(c)
}

// TenantSpec is one tenant's admission contract.
type TenantSpec struct {
	// Rate is the sustained admission rate in cost units (blocks) per
	// second. 0 means unlimited (no bucket).
	Rate float64
	// Burst is the bucket depth in cost units: how far a tenant may run
	// ahead of its rate before ops start waiting.
	Burst float64
	// MaxQueue bounds how many ops may wait for tokens at once; arrivals
	// beyond it shed with ErrThrottled. 0 takes DefaultMaxQueue on
	// rate-limited specs (a spec that only sets Rate/Burst gets pacing,
	// not a shed cliff); negative means no waiting — immediate shed when
	// out of tokens.
	MaxQueue int
	// SLOP99 is the tenant's p99 latency objective. When set (and QoS
	// telemetry is on), the governor runs a PI loop on this tenant's
	// windowed op p99 against it, squeezing background work as needed.
	// 0 means no per-tenant objective (the cluster-wide P99Target still
	// applies).
	SLOP99 sim.Duration
}

// Config configures the whole subsystem. The zero value is usable: no
// tenant buckets, default lane weights, default governor bounds.
type Config struct {
	// Tenants maps tenant name to its admission contract.
	Tenants map[string]TenantSpec
	// Weights are the per-lane WFQ weights; zero entries take defaults
	// (foreground 1,2,4,8 for lanes 0..3; background 1).
	Weights [NumLanes]float64
	// Governor tunes the feedback loop; see GovernorConfig.
	Governor GovernorConfig
}

// DefaultWeights returns the default per-lane WFQ weights.
func DefaultWeights() [NumLanes]float64 {
	return [NumLanes]float64{1, 2, 4, 8, 1}
}

func (c Config) weights() [NumLanes]float64 {
	w := DefaultWeights()
	for i, v := range c.Weights {
		if v > 0 {
			w[i] = v
		}
	}
	return w
}

// Manager bundles the subsystem for one cluster: the admission stage, every
// installed FairQueue, and the governor's current background share. It is
// the single switch yottactl's `qos on|off` flips.
type Manager struct {
	k        *sim.Kernel
	cfg      Config
	enabled  bool
	adm      *Admission
	queues   []*FairQueue
	weights  [NumLanes]float64
	bgWeight float64
	gov      *Governor

	// sloTenants are the tenants with a per-tenant SLOP99, sorted; each
	// gets its own op-latency histogram the governor's PI loop reads.
	sloTenants []string
	tenantHist map[string]*metrics.Histogram
}

// NewManager builds a manager (initially disabled) from cfg.
func NewManager(k *sim.Kernel, cfg Config) *Manager {
	w := cfg.weights()
	m := &Manager{
		k:          k,
		cfg:        cfg,
		adm:        NewAdmission(k, cfg.Tenants),
		weights:    w,
		bgWeight:   w[LaneBackground],
		tenantHist: make(map[string]*metrics.Histogram),
	}
	for _, n := range sortedTenants(cfg.Tenants) {
		if cfg.Tenants[n].SLOP99 > 0 {
			m.sloTenants = append(m.sloTenants, n)
			m.tenantHist[n] = metrics.NewHistogram()
		}
	}
	return m
}

// ObserveOp records one completed foreground op's latency against the
// tenant's SLO histogram. Tenants without an SLOP99 (and the unknown
// tenant "") are no-ops — the cluster-wide histogram already covers them.
// The controller calls this wherever it observes cluster/op_latency.
func (m *Manager) ObserveOp(tenant string, d sim.Duration) {
	if h, ok := m.tenantHist[tenant]; ok {
		h.Observe(d)
	}
}

// TenantHistogram returns tenant's SLO op-latency histogram, or nil when
// the tenant has no SLOP99.
func (m *Manager) TenantHistogram(tenant string) *metrics.Histogram {
	return m.tenantHist[tenant]
}

// SLOTenants returns the tenants with a per-tenant p99 objective, sorted.
func (m *Manager) SLOTenants() []string { return m.sloTenants }

// NewFairQueue creates a FairQueue with capacity slots, registers it with
// the manager (so enable/disable and governor decisions reach it), and
// returns it.
func (m *Manager) NewFairQueue(capacity int) *FairQueue {
	q := NewFairQueue(m.k, capacity, m.weights)
	q.SetEnabled(m.enabled)
	q.SetWeight(LaneBackground, m.bgWeight)
	m.queues = append(m.queues, q)
	return q
}

// SetEnabled flips the whole subsystem: admission buckets and every
// registered queue. Disabled, every queue degrades to the global-FIFO
// order the plain semaphores had, and Admit is a no-op — so QoS off is
// behaviourally the pre-QoS cluster.
func (m *Manager) SetEnabled(on bool) {
	m.enabled = on
	m.adm.SetEnabled(on)
	for _, q := range m.queues {
		q.SetEnabled(on)
	}
}

// Enabled reports the switch state.
func (m *Manager) Enabled() bool { return m.enabled }

// Admission returns the admission stage.
func (m *Manager) Admission() *Admission { return m.adm }

// Admit charges cost units against tenant's bucket, waiting (in virtual
// time) or shedding with ErrThrottled per the tenant's spec. A no-op when
// the subsystem is disabled.
func (m *Manager) Admit(p *sim.Proc, tenant string, cost int) error {
	return m.adm.Admit(p, tenant, cost)
}

// SetBackgroundWeight sets the background lane's WFQ weight on every
// registered queue. The governor calls this; yottactl reports it.
func (m *Manager) SetBackgroundWeight(w float64) {
	if w <= 0 {
		w = minBackgroundWeight
	}
	m.bgWeight = w
	for _, q := range m.queues {
		q.SetWeight(LaneBackground, w)
	}
}

// BackgroundWeight returns the background lane's current weight.
func (m *Manager) BackgroundWeight() float64 { return m.bgWeight }

// Weights returns the configured per-lane weights (background reflects the
// governor's current setting).
func (m *Manager) Weights() [NumLanes]float64 {
	w := m.weights
	w[LaneBackground] = m.bgWeight
	return w
}

// Governor returns the attached governor, or nil when telemetry is off.
func (m *Manager) Governor() *Governor { return m.gov }

// AttachGovernor builds the feedback governor over this manager and
// remembers it for status reporting. The caller registers the returned
// watchdog with the telemetry scraper.
func (m *Manager) AttachGovernor(cfg GovernorConfig) *Governor {
	g := NewGovernor(cfg, m)
	m.gov = g
	return g
}

// RegisterTelemetry publishes the subsystem's counters under s
// (qos/enabled, qos/bg_weight_milli, qos/tenant/<name>/{admitted,
// throttled, delayed, waiting}, qos/governor/{narrows,widens,
// output_milli,error_milli}, and for every tenant with an SLOP99 the
// qos/tenant/<name>/op_latency histogram plus its governor loop's
// slo_{error,output}_milli gauges).
//
// The governor attaches after telemetry registration (it needs the
// scraper), so every governor-backed gauge is a nil-safe closure read at
// sample time.
func (m *Manager) RegisterTelemetry(s telemetry.Scope) {
	s.Int("enabled", func() int64 {
		if m.enabled {
			return 1
		}
		return 0
	})
	// Weights are floats; exporting milli-units keeps the registry integral
	// and the export byte-stable.
	s.Int("bg_weight_milli", func() int64 { return int64(m.bgWeight * 1000) })
	m.adm.registerTelemetry(s.Sub("tenant"))
	s.Int("governor/narrows", func() int64 {
		if m.gov == nil {
			return 0
		}
		return m.gov.Narrows
	})
	s.Int("governor/widens", func() int64 {
		if m.gov == nil {
			return 0
		}
		return m.gov.Widens
	})
	s.Int("governor/output_milli", func() int64 {
		if m.gov == nil {
			return 0
		}
		return int64(m.gov.Output() * 1000)
	})
	s.Int("governor/error_milli", func() int64 { return m.loopErrMilli("") })
	for _, n := range m.sloTenants {
		n := n
		ts := s.Sub("tenant").Sub(n)
		ts.Histogram("op_latency", m.tenantHist[n])
		ts.Int("slo_error_milli", func() int64 { return m.loopErrMilli(n) })
		ts.Int("slo_output_milli", func() int64 {
			if m.gov == nil {
				return 0
			}
			_, out, _ := m.gov.LoopState(n)
			return int64(out * 1000)
		})
	}
}

// loopErrMilli samples one governor loop's last normalized error in
// milli-units (0 when the governor is detached or has no such loop).
func (m *Manager) loopErrMilli(tenant string) int64 {
	if m.gov == nil {
		return 0
	}
	err, _, ok := m.gov.LoopState(tenant)
	if !ok {
		return 0
	}
	return int64(err * 1000)
}

// LaneTotals aggregates per-lane scheduling stats across every registered
// queue: dispatches and live depth sum; peak depth takes the max.
func (m *Manager) LaneTotals() [NumLanes]LaneStats {
	var out [NumLanes]LaneStats
	for _, q := range m.queues {
		st := q.Stats()
		for l := 0; l < NumLanes; l++ {
			out[l].Dispatched += st[l].Dispatched
			out[l].Depth += st[l].Depth
			if st[l].MaxDepth > out[l].MaxDepth {
				out[l].MaxDepth = st[l].MaxDepth
			}
		}
	}
	return out
}

// LaneName renders a lane index for reports ("fg0".."fg3", "bg").
func LaneName(lane int) string {
	if lane == LaneBackground {
		return "bg"
	}
	return fmt.Sprintf("fg%d", lane)
}

// Report renders a multi-line human-readable status: switch, weights,
// per-tenant bucket counters, governor state, per-queue lane occupancy.
func (m *Manager) Report() string {
	var b strings.Builder
	state := "off"
	if m.enabled {
		state = "on"
	}
	fmt.Fprintf(&b, "qos: %s\n", state)
	w := m.Weights()
	fmt.Fprintf(&b, "lane weights: fg %.3g/%.3g/%.3g/%.3g bg %.3g\n", w[0], w[1], w[2], w[3], w[4])
	if m.gov != nil {
		fmt.Fprintf(&b, "governor: %s, target p99 %.3fms, bg share [%.3g..%.3g], %d narrows, %d widens\n",
			m.gov.Mode(), m.gov.cfg.P99Target.Millis(), m.gov.cfg.bgMin(), m.gov.cfg.bgMax(), m.gov.Narrows, m.gov.Widens)
		if m.gov.Mode() == GovPI {
			fmt.Fprintf(&b, "governor output: u %.3f (bg weight %.3g)\n", m.gov.Output(), m.bgWeight)
			for _, lp := range m.gov.loops {
				name := lp.tenant
				if name == "" {
					name = "(cluster)"
				}
				fmt.Fprintf(&b, "governor loop %-10s target p99 %.3fms: err %+.3f integ %.3f out %.3f\n",
					name, lp.target.Millis(), lp.err, lp.integ, lp.out)
			}
		}
	} else {
		fmt.Fprintf(&b, "governor: detached (telemetry off)\n")
	}
	stats := m.adm.Stats()
	if len(stats) == 0 {
		fmt.Fprintf(&b, "tenants: none configured (admission pass-through)\n")
	}
	for _, t := range stats {
		slo := ""
		if s, ok := m.cfg.Tenants[t.Tenant]; ok && s.SLOP99 > 0 {
			slo = fmt.Sprintf(" slo-p99 %.3fms", s.SLOP99.Millis())
		}
		fmt.Fprintf(&b, "tenant %-10s rate %.0f/s burst %.0f maxq %d%s: admitted %d delayed %d throttled %d wait %.1fms\n",
			t.Tenant, t.Rate, t.Burst, t.MaxQueue, slo, t.Admitted, t.Delayed, t.Throttled, t.WaitMs)
	}
	if n := len(m.queues); n > 0 {
		totals := m.LaneTotals()
		fmt.Fprintf(&b, "queues: %d installed\n", n)
		for l := 0; l < NumLanes; l++ {
			fmt.Fprintf(&b, "lane %-3s dispatched %-8d waiting %-4d peak-wait %d\n",
				LaneName(l), totals[l].Dispatched, totals[l].Depth, totals[l].MaxDepth)
		}
	}
	return b.String()
}

// sortedTenants returns cfg's tenant names sorted, for deterministic
// iteration everywhere.
func sortedTenants(specs map[string]TenantSpec) []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
