package qos

import (
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Admission is the front-door token-bucket stage: one GCRA (generic cell
// rate algorithm) bucket per configured tenant, refilled by virtual time.
// A conforming op passes immediately; an over-rate op reserves the next
// emission slot and sleeps until it, up to the tenant's MaxQueue
// outstanding waiters; beyond that arrivals shed with ErrThrottled so the
// wait queue stays bounded.
//
// GCRA keeps one theoretical-arrival-time (TAT) per tenant instead of a
// fractional token count, so refill is exact integer virtual-time
// arithmetic — no float drift, byte-identical same-seed runs.
type Admission struct {
	k       *sim.Kernel
	enabled bool
	names   []string
	buckets map[string]*bucket
}

type bucket struct {
	spec TenantSpec
	// tat is the theoretical arrival time of the next conforming op.
	tat sim.Time
	// waiting counts ops currently sleeping for tokens.
	waiting int

	admitted  int64
	delayed   int64
	throttled int64
	waitTime  sim.Duration
}

// TenantStats is one tenant's admission counters for reports and E13.
type TenantStats struct {
	Tenant    string
	Rate      float64
	Burst     float64
	MaxQueue  int
	Admitted  int64
	Delayed   int64
	Throttled int64
	Waiting   int
	WaitMs    float64
}

// DefaultMaxQueue is the wait-queue bound a rate-limited TenantSpec gets
// when it leaves MaxQueue zero. A spec that only sets Rate/Burst wants
// pacing, not a shed-everything-over-rate cliff; callers that really want
// immediate sheds say so with a negative MaxQueue.
const DefaultMaxQueue = 64

// NewAdmission builds the stage (initially disabled) from the tenant
// specs, validating each one: tenants with Rate <= 0 are pass-through,
// rate-limited specs with MaxQueue left zero get DefaultMaxQueue, and a
// negative MaxQueue normalizes to 0 (no waiting — immediate shed when out
// of tokens). Stats report the effective spec.
func NewAdmission(k *sim.Kernel, specs map[string]TenantSpec) *Admission {
	a := &Admission{k: k, buckets: make(map[string]*bucket), names: sortedTenants(specs)}
	for _, n := range a.names {
		spec := specs[n]
		if spec.Rate > 0 && spec.MaxQueue == 0 {
			spec.MaxQueue = DefaultMaxQueue
		}
		if spec.MaxQueue < 0 {
			spec.MaxQueue = 0
		}
		a.buckets[n] = &bucket{spec: spec}
	}
	return a
}

// SetEnabled flips the stage; disabled, Admit admits everything instantly.
func (a *Admission) SetEnabled(on bool) { a.enabled = on }

// Admit charges cost units (blocks) against tenant's bucket from process
// p. It returns nil once admitted — possibly after sleeping in virtual
// time — or ErrThrottled when the tenant's wait queue is full. Unknown
// and unlimited tenants pass through untouched.
func (a *Admission) Admit(p *sim.Proc, tenant string, cost int) error {
	if !a.enabled {
		return nil
	}
	b, ok := a.buckets[tenant]
	if !ok || b.spec.Rate <= 0 {
		return nil
	}
	if cost < 1 {
		cost = 1
	}
	// Emission interval for this op and the bucket's burst tolerance,
	// both in virtual time.
	t := sim.Duration(float64(cost) / b.spec.Rate * float64(sim.Second))
	tau := sim.Duration(b.spec.Burst / b.spec.Rate * float64(sim.Second))
	now := p.Now()
	earliest := b.tat.Add(-tau)
	if now >= earliest {
		// Conforming: consume and go.
		if now > b.tat {
			b.tat = now
		}
		b.tat = b.tat.Add(t)
		b.admitted++
		return nil
	}
	if b.waiting >= b.spec.MaxQueue {
		b.throttled++
		return ErrThrottled
	}
	// Reserve the next emission slot now so later arrivals queue behind
	// it, then sleep until the slot conforms. A non-positive wait cannot
	// happen here (now < earliest strictly), but guard it anyway so a
	// zero-wait op is counted as a plain admit — never as a Delayed op
	// with zero waitTime, and never a Sleep(0) that would shuffle the
	// event order for nothing.
	b.tat = b.tat.Add(t)
	wait := earliest.Sub(now)
	if wait <= 0 {
		b.admitted++
		return nil
	}
	b.waiting++
	p.Sleep(wait)
	b.waiting--
	b.admitted++
	b.delayed++
	b.waitTime += wait
	return nil
}

// Stats returns per-tenant counters in sorted tenant order.
func (a *Admission) Stats() []TenantStats {
	out := make([]TenantStats, 0, len(a.names))
	for _, n := range a.names {
		b := a.buckets[n]
		out = append(out, TenantStats{
			Tenant:    n,
			Rate:      b.spec.Rate,
			Burst:     b.spec.Burst,
			MaxQueue:  b.spec.MaxQueue,
			Admitted:  b.admitted,
			Delayed:   b.delayed,
			Throttled: b.throttled,
			Waiting:   b.waiting,
			WaitMs:    b.waitTime.Millis(),
		})
	}
	return out
}

// Throttled returns tenant's shed count (0 for unknown tenants).
func (a *Admission) Throttled(tenant string) int64 {
	if b, ok := a.buckets[tenant]; ok {
		return b.throttled
	}
	return 0
}

// registerTelemetry publishes per-tenant counters under s
// (<tenant>/{admitted,delayed,throttled,waiting}).
func (a *Admission) registerTelemetry(s telemetry.Scope) {
	for _, n := range a.names {
		b := a.buckets[n]
		ts := s.Sub(n)
		ts.Int("admitted", func() int64 { return b.admitted })
		ts.Int("delayed", func() int64 { return b.delayed })
		ts.Int("throttled", func() int64 { return b.throttled })
		ts.Int("waiting", func() int64 { return int64(b.waiting) })
	}
}
