package qos

import "repro/internal/sim"

// FairQueue is a start-time fair queueing (SFQ) semaphore: capacity
// service slots shared across NumLanes lanes, each with a weight. Waiters
// are stamped with a virtual finish tag at enqueue (start = max(queue
// virtual time, lane's last finish); finish = start + cost/weight) and
// dispatched in finish-tag order, which gives each backlogged lane
// throughput proportional to its weight while staying work-conserving:
// an idle lane cedes its share instantly because tags only advance with
// real arrivals.
//
// Disabled, tags are ignored and waiters dispatch in global arrival
// order — exactly the plain sim.Semaphore the queue replaces, so QoS off
// reproduces the pre-QoS cluster's event order.
type FairQueue struct {
	k        *sim.Kernel
	capacity int
	avail    int
	enabled  bool

	weights    [NumLanes]float64
	vtime      float64
	lastFinish [NumLanes]float64
	seq        uint64

	queues [NumLanes][]fqWaiter

	depth      [NumLanes]int
	maxDepth   [NumLanes]int
	dispatched [NumLanes]int64
}

type fqWaiter struct {
	f      *sim.Future[struct{}]
	finish float64
	cost   float64
	seq    uint64
}

// LaneStats is one lane's occupancy snapshot: ops currently waiting, the
// high-water waiting depth, and total dispatches.
type LaneStats struct {
	Depth      int
	MaxDepth   int
	Dispatched int64
}

// NewFairQueue returns a queue with capacity service slots and the given
// lane weights (zero entries default to 1). Initially disabled (FIFO).
func NewFairQueue(k *sim.Kernel, capacity int, weights [NumLanes]float64) *FairQueue {
	if capacity < 1 {
		capacity = 1
	}
	for i, w := range weights {
		if w <= 0 {
			weights[i] = 1
		}
	}
	return &FairQueue{k: k, capacity: capacity, avail: capacity, weights: weights}
}

// SetEnabled switches between weighted-fair (true) and global-FIFO
// (false) dispatch. Tags are assigned at enqueue, so already-queued
// waiters keep the order they arrived under.
func (q *FairQueue) SetEnabled(on bool) { q.enabled = on }

// Enabled reports the dispatch mode.
func (q *FairQueue) Enabled() bool { return q.enabled }

// SetWeight updates one lane's weight, effective immediately: waiters
// already stamped under the old weight are re-tagged at the new rate from
// the current virtual time (intra-lane order preserved), because tags
// computed under the old weight would keep charging the old rate until
// the backlog drained — a governor narrow on a deep background lane would
// otherwise not bite until every pre-change waiter dispatched, and stale
// tags can over- or under-penalize the lane against its peers. An empty
// lane just has lastFinish reset to the queue's virtual time so its next
// arrival starts fresh under the new weight.
func (q *FairQueue) SetWeight(lane int, w float64) {
	if w <= 0 {
		w = minBackgroundWeight
	}
	lane = ClampLane(lane)
	if q.weights[lane] == w {
		return
	}
	q.weights[lane] = w
	if !q.enabled {
		// Disabled queues carry no meaningful tags (dispatch is by seq);
		// the new weight applies if and when the queue is re-enabled.
		return
	}
	if len(q.queues[lane]) == 0 {
		q.lastFinish[lane] = q.vtime
		return
	}
	prev := q.vtime
	for i := range q.queues[lane] {
		wt := &q.queues[lane][i]
		wt.finish = prev + wt.cost/w
		prev = wt.finish
	}
	q.lastFinish[lane] = prev
}

// Acquire blocks p until a service slot is free, competing in lane with
// the given cost (cost <= 0 counts as 1). Callers must pair it with
// Release.
func (q *FairQueue) Acquire(p *sim.Proc, lane int, cost float64) {
	lane = ClampLane(lane)
	if cost <= 0 {
		cost = 1
	}
	if q.avail > 0 && q.idle() {
		// Work-conserving fast path: free slot, nobody waiting.
		q.avail--
		q.dispatched[lane]++
		return
	}
	w := fqWaiter{f: sim.NewFuture[struct{}](q.k), cost: cost, seq: q.seq}
	q.seq++
	if q.enabled {
		start := q.lastFinish[lane]
		if q.vtime > start {
			start = q.vtime
		}
		w.finish = start + cost/q.weights[lane]
		q.lastFinish[lane] = w.finish
	}
	q.queues[lane] = append(q.queues[lane], w)
	q.depth[lane]++
	if q.depth[lane] > q.maxDepth[lane] {
		q.maxDepth[lane] = q.depth[lane]
	}
	w.f.Wait(p)
}

// Release frees one service slot and dispatches eligible waiters.
func (q *FairQueue) Release() {
	q.avail++
	if q.avail > q.capacity {
		panic("qos: FairQueue released more than acquired")
	}
	q.dispatch()
}

// idle reports whether no waiter is queued in any lane.
func (q *FairQueue) idle() bool {
	for l := 0; l < NumLanes; l++ {
		if len(q.queues[l]) > 0 {
			return false
		}
	}
	return true
}

// dispatch grants free slots to waiting ops in tag order (arrival order
// when disabled). Each grant schedules the waiter's wake at the current
// virtual time via Future.Set, preserving deterministic event order.
func (q *FairQueue) dispatch() {
	for q.avail > 0 {
		best := -1
		for l := 0; l < NumLanes; l++ {
			if len(q.queues[l]) == 0 {
				continue
			}
			if best < 0 || q.before(q.queues[l][0], q.queues[best][0]) {
				best = l
			}
		}
		if best < 0 {
			return
		}
		w := q.queues[best][0]
		q.queues[best] = q.queues[best][1:]
		q.depth[best]--
		q.avail--
		q.dispatched[best]++
		if q.enabled && w.finish > q.vtime {
			q.vtime = w.finish
		}
		w.f.Set(struct{}{})
	}
}

// before orders two lane heads: by finish tag when enabled (arrival seq
// breaks ties), by arrival seq alone when disabled.
func (q *FairQueue) before(a, b fqWaiter) bool {
	if q.enabled {
		if a.finish != b.finish {
			return a.finish < b.finish
		}
	}
	return a.seq < b.seq
}

// Available reports the current number of free service slots.
func (q *FairQueue) Available() int { return q.avail }

// Stats returns per-lane occupancy counters.
func (q *FairQueue) Stats() [NumLanes]LaneStats {
	var out [NumLanes]LaneStats
	for l := 0; l < NumLanes; l++ {
		out[l] = LaneStats{Depth: q.depth[l], MaxDepth: q.maxDepth[l], Dispatched: q.dispatched[l]}
	}
	return out
}

// Depth reports how many ops are waiting in lane.
func (q *FairQueue) Depth(lane int) int { return q.depth[ClampLane(lane)] }
