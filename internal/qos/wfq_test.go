package qos

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// wfqOp is one scripted acquire in the randomized schedules below.
type wfqOp struct {
	lane    int
	arrive  sim.Duration
	cost    float64
	service sim.Duration
}

// runSchedule replays ops against a fresh capacity-1 FairQueue and returns
// the grant order as lane indexes. Each op is its own process: it sleeps
// to its arrival time, competes for the queue in its lane, holds the slot
// for its service time, releases.
func runSchedule(seed int64, enabled bool, ops []wfqOp) (order []int, makespan sim.Duration) {
	k := sim.NewKernel(seed)
	q := NewFairQueue(k, 1, DefaultWeights())
	q.SetEnabled(enabled)
	for i, op := range ops {
		op := op
		k.Go(fmt.Sprintf("op%d", i), func(p *sim.Proc) {
			p.Sleep(op.arrive)
			q.Acquire(p, op.lane, op.cost)
			order = append(order, op.lane)
			p.Sleep(op.service)
			q.Release()
		})
	}
	k.Run()
	return order, sim.Duration(k.Now())
}

// randomSchedule builds a mixed-lane load: perLane ops in every lane, all
// arriving inside a burst window far shorter than total service demand,
// so every lane stays backlogged for most of the run.
func randomSchedule(seed int64, perLane int) []wfqOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []wfqOp
	for lane := 0; lane < NumLanes; lane++ {
		for i := 0; i < perLane; i++ {
			ops = append(ops, wfqOp{
				lane:    lane,
				arrive:  sim.Duration(rng.Intn(500)) * sim.Microsecond,
				cost:    float64(1 + rng.Intn(4)),
				service: sim.Duration(200+rng.Intn(200)) * sim.Microsecond,
			})
		}
	}
	return ops
}

// TestWFQNoStarvation: under sustained mixed-lane backlog, every lane with
// waiters keeps making progress — the gap between a lane's consecutive
// grants stays bounded (FIFO would let a burst of high-weight arrivals
// push the rest out indefinitely; SFQ finish tags cannot).
func TestWFQNoStarvation(t *testing.T) {
	const perLane = 40
	for seed := int64(1); seed <= 6; seed++ {
		order, _ := runSchedule(seed, true, randomSchedule(seed, perLane))
		if len(order) != perLane*NumLanes {
			t.Fatalf("seed %d: %d grants, want %d", seed, len(order), perLane*NumLanes)
		}
		// Worst-case inter-grant gap for the min-weight lane competing with
		// weights 1,2,4,8,1 and max cost 4: roughly sum(w)/min(w) * maxCost
		// dispatches. 80 is a generous deterministic bound.
		const maxGap = 80
		last := map[int]int{}
		granted := map[int]int{}
		for i, lane := range order {
			if prev, seen := last[lane]; seen && granted[lane] < perLane {
				if gap := i - prev; gap > maxGap {
					t.Fatalf("seed %d: lane %d starved for %d dispatches (pos %d)", seed, lane, gap, i)
				}
			}
			last[lane] = i
			granted[lane]++
		}
	}
}

// TestWFQDeterministic: the same seed must replay to the identical grant
// sequence — the property every same-seed experiment rests on.
func TestWFQDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		a, ma := runSchedule(seed, true, randomSchedule(seed, 30))
		b, mb := runSchedule(seed, true, randomSchedule(seed, 30))
		if ma != mb {
			t.Fatalf("seed %d: makespans differ: %v vs %v", seed, ma, mb)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("seed %d: grant orders differ:\n%v\n%v", seed, a, b)
		}
	}
}

// TestWFQWorkConserving: with only one lane backlogged, weighting must not
// cost any throughput — the makespan equals the plain-FIFO makespan, and
// the slot is never idle while work waits.
func TestWFQWorkConserving(t *testing.T) {
	for lane := 0; lane < NumLanes; lane++ {
		var ops []wfqOp
		for i := 0; i < 50; i++ {
			ops = append(ops, wfqOp{lane: lane, cost: 1, service: 300 * sim.Microsecond})
		}
		_, wfq := runSchedule(1, true, ops)
		_, fifo := runSchedule(1, false, ops)
		if wfq != fifo {
			t.Fatalf("lane %d: WFQ makespan %v != FIFO makespan %v", lane, wfq, fifo)
		}
		if want := 50 * 300 * sim.Microsecond; wfq != want {
			t.Fatalf("lane %d: slot went idle with work queued: makespan %v, want %v", lane, wfq, want)
		}
	}
}

// TestWFQWeightedShares: while every lane is continuously backlogged, the
// grant counts over a window track the lane weights (the defining WFQ
// property, loose tolerance for discretization).
func TestWFQWeightedShares(t *testing.T) {
	const perLane = 60
	var ops []wfqOp
	for lane := 0; lane < NumLanes; lane++ {
		for i := 0; i < perLane; i++ {
			ops = append(ops, wfqOp{lane: lane, cost: 1, service: 100 * sim.Microsecond})
		}
	}
	order, _ := runSchedule(1, true, ops)
	// Judge only the prefix where all lanes still have waiters: stop once
	// any lane is exhausted.
	counts := map[int]int{}
	window := 0
	for _, lane := range order {
		counts[lane]++
		window++
		if counts[lane] == perLane {
			break
		}
	}
	w := DefaultWeights()
	var totalW float64
	for _, x := range w {
		totalW += x
	}
	for lane := 0; lane < NumLanes; lane++ {
		got := float64(counts[lane]) / float64(window)
		want := w[lane] / totalW
		if got < want*0.7-0.02 || got > want*1.3+0.02 {
			t.Errorf("lane %d share %.3f, want ≈%.3f (counts %v over %d)", lane, got, want, counts, window)
		}
	}
}

// weightChange is a scripted SetWeight call at a virtual time, for the
// mid-run weight-change tests below.
type weightChange struct {
	at   sim.Duration
	lane int
	w    float64
}

// fqGrant records one grant with its virtual timestamp so tests can judge
// shares inside a time window.
type fqGrant struct {
	lane int
	at   sim.Duration
}

// runScheduleChanges is runSchedule (enabled mode) plus scripted weight
// changes applied mid-run from their own processes.
func runScheduleChanges(seed int64, ops []wfqOp, changes []weightChange) (grants []fqGrant, makespan sim.Duration) {
	k := sim.NewKernel(seed)
	q := NewFairQueue(k, 1, DefaultWeights())
	q.SetEnabled(true)
	for i, op := range ops {
		op := op
		k.Go(fmt.Sprintf("op%d", i), func(p *sim.Proc) {
			p.Sleep(op.arrive)
			q.Acquire(p, op.lane, op.cost)
			grants = append(grants, fqGrant{lane: op.lane, at: sim.Duration(p.Now())})
			p.Sleep(op.service)
			q.Release()
		})
	}
	for i, ch := range changes {
		ch := ch
		k.Go(fmt.Sprintf("chg%d", i), func(p *sim.Proc) {
			p.Sleep(ch.at)
			q.SetWeight(ch.lane, ch.w)
		})
	}
	k.Run()
	return grants, sim.Duration(k.Now())
}

// laneShare returns lane's fraction of the grants inside [from, to).
func laneShare(grants []fqGrant, lane int, from, to sim.Duration) (share float64, n int) {
	hit := 0
	for _, g := range grants {
		if g.at < from || g.at >= to {
			continue
		}
		n++
		if g.lane == lane {
			hit++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(hit) / float64(n), n
}

// TestWFQSetWeightMidBacklog is the SetWeight retagging regression: a
// governor-style narrow on a deep background backlog must bite on the very
// next grants, not after the pre-change backlog drains. Before retagging,
// the background waiters kept their equal-weight finish tags and held a
// ~50% share until the lane emptied.
func TestWFQSetWeightMidBacklog(t *testing.T) {
	const perLane = 80
	var ops []wfqOp
	for _, lane := range []int{0, LaneBackground} { // both weight 1 by default
		for i := 0; i < perLane; i++ {
			ops = append(ops, wfqOp{lane: lane, cost: 1, service: 100 * sim.Microsecond})
		}
	}
	grants, _ := runScheduleChanges(1, ops, []weightChange{
		{at: 3 * sim.Millisecond, lane: LaneBackground, w: 0.25},
	})
	pre, npre := laneShare(grants, LaneBackground, 0, 3*sim.Millisecond)
	if npre < 20 || pre < 0.4 || pre > 0.6 {
		t.Fatalf("pre-change background share %.3f over %d grants, want ≈0.5", pre, npre)
	}
	// After the narrow, weights are 1 vs 0.25: the background share must
	// drop to ≈0.2 immediately (stale tags would hold it at ≈0.5).
	post, npost := laneShare(grants, LaneBackground, 3500*sim.Microsecond, 10*sim.Millisecond)
	if npost < 40 {
		t.Fatalf("post-change window too thin: %d grants", npost)
	}
	if post < 0.1 || post > 0.3 {
		t.Fatalf("post-change background share %.3f over %d grants, want ≈0.2 under the new weight", post, npost)
	}
}

// TestWFQSharesTrackCurrentWeights: with every lane continuously
// backlogged, a mid-run widen must move the measured shares to the *new*
// weight vector — the satellite property that shares track current
// weights, not the weights ops were stamped under.
func TestWFQSharesTrackCurrentWeights(t *testing.T) {
	const perLane = 80
	var ops []wfqOp
	for lane := 0; lane < NumLanes; lane++ {
		for i := 0; i < perLane; i++ {
			ops = append(ops, wfqOp{lane: lane, cost: 1, service: 100 * sim.Microsecond})
		}
	}
	const newBG = 6.0
	grants, _ := runScheduleChanges(1, ops, []weightChange{
		{at: 8 * sim.Millisecond, lane: LaneBackground, w: newBG},
	})
	w := DefaultWeights()
	w[LaneBackground] = newBG
	var totalW float64
	for _, x := range w {
		totalW += x
	}
	// Judge a settled window after the change; all lanes stay backlogged
	// through 16ms (see the grant budget in the share math above).
	for lane := 0; lane < NumLanes; lane++ {
		got, n := laneShare(grants, lane, 9*sim.Millisecond, 16*sim.Millisecond)
		want := w[lane] / totalW
		if n < 40 {
			t.Fatalf("lane %d: window too thin (%d grants)", lane, n)
		}
		if got < want*0.7-0.02 || got > want*1.3+0.02 {
			t.Errorf("lane %d share %.3f over %d grants, want ≈%.3f under current weights", lane, got, n, want)
		}
	}
}

// TestWFQNoStarvationUnderWeightChanges: randomized schedules with random
// mid-run weight changes still grant every op with bounded inter-grant
// gaps per lane — retagging never strands a waiter.
func TestWFQNoStarvationUnderWeightChanges(t *testing.T) {
	const perLane = 40
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		var changes []weightChange
		steps := []float64{0.5, 1, 2, 4, 8}
		for i := 0; i < 6; i++ {
			changes = append(changes, weightChange{
				at:   sim.Duration(1+rng.Intn(12)) * sim.Millisecond,
				lane: rng.Intn(NumLanes),
				w:    steps[rng.Intn(len(steps))],
			})
		}
		grants, _ := runScheduleChanges(seed, randomSchedule(seed, perLane), changes)
		if len(grants) != perLane*NumLanes {
			t.Fatalf("seed %d: %d grants, want %d", seed, len(grants), perLane*NumLanes)
		}
		// Looser bound than TestWFQNoStarvation: weights may sit at 8:0.5
		// for a stretch, so a min-weight lane can legitimately wait
		// ~sum(w)/min(w)*maxCost ≈ 150 dispatches.
		const maxGap = 150
		last := map[int]int{}
		granted := map[int]int{}
		for i, g := range grants {
			if prev, seen := last[g.lane]; seen && granted[g.lane] < perLane {
				if gap := i - prev; gap > maxGap {
					t.Fatalf("seed %d: lane %d starved for %d dispatches (pos %d)", seed, g.lane, gap, i)
				}
			}
			last[g.lane] = i
			granted[g.lane]++
		}
	}
}

// TestWFQDeterministicUnderWeightChanges: scripted weight changes keep the
// same-seed byte-identical replay property.
func TestWFQDeterministicUnderWeightChanges(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		changes := []weightChange{
			{at: 2 * sim.Millisecond, lane: LaneBackground, w: 0.25},
			{at: 5 * sim.Millisecond, lane: 1, w: 6},
			{at: 9 * sim.Millisecond, lane: LaneBackground, w: 2},
		}
		a, ma := runScheduleChanges(seed, randomSchedule(seed, 30), changes)
		b, mb := runScheduleChanges(seed, randomSchedule(seed, 30), changes)
		if ma != mb {
			t.Fatalf("seed %d: makespans differ: %v vs %v", seed, ma, mb)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("seed %d: grant orders differ:\n%v\n%v", seed, a, b)
		}
	}
}

// TestWFQDisabledIsFIFO: disabled, grants come in arrival order regardless
// of lane — the pre-QoS semaphore behaviour.
func TestWFQDisabledIsFIFO(t *testing.T) {
	var ops []wfqOp
	for i := 0; i < 30; i++ {
		ops = append(ops, wfqOp{
			lane:    i % NumLanes,
			arrive:  sim.Duration(i) * sim.Microsecond,
			cost:    1,
			service: 500 * sim.Microsecond,
		})
	}
	order, _ := runSchedule(1, false, ops)
	for i, lane := range order {
		if lane != i%NumLanes {
			t.Fatalf("grant %d went to lane %d, want arrival order (lane %d)", i, lane, i%NumLanes)
		}
	}
}
