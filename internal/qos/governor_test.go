package qos

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// govHarness wires a Manager + Governor to a real registry holding the
// latency histogram, and hand-builds telemetry views the way the scraper
// would — the governor is a pure function of the view stream.
type govHarness struct {
	m    *Manager
	g    *Governor
	h    *metrics.Histogram
	reg  *telemetry.Registry
	tick int
}

func newGovHarness(t *testing.T, cfg GovernorConfig) *govHarness {
	t.Helper()
	return newGovHarnessFull(t, Config{}, cfg, true)
}

// newGovHarnessFull is newGovHarness with a full qos Config (for
// per-tenant SLO loops) and control over whether the cluster latency
// histogram is registered up front (for the appears-mid-run tests).
func newGovHarnessFull(t *testing.T, qcfg Config, gcfg GovernorConfig, withHist bool) *govHarness {
	t.Helper()
	k := sim.NewKernel(1)
	m := NewManager(k, qcfg)
	m.NewFairQueue(1)
	m.SetEnabled(true)
	reg := telemetry.NewRegistry()
	h := metrics.NewHistogram()
	if withHist {
		reg.Histogram("cluster/op_latency", h)
	}
	return &govHarness{m: m, g: m.AttachGovernor(gcfg), h: h, reg: reg}
}

// attachHist registers the cluster latency histogram mid-run, modelling a
// component that starts publishing after the scraper's first windows.
func (hs *govHarness) attachHist() { hs.reg.Histogram("cluster/op_latency", hs.h) }

// check runs one scraper window: observe n latency samples, then Check.
func (hs *govHarness) check(n int, d sim.Duration) []telemetry.Event {
	for i := 0; i < n; i++ {
		hs.h.Observe(d)
	}
	hs.tick++
	v := &telemetry.View{
		T:        sim.Time(0).Add(sim.Duration(hs.tick) * 100 * sim.Millisecond),
		Interval: 100 * sim.Millisecond,
		First:    hs.tick == 1,
		Reg:      hs.reg,
	}
	return hs.g.Check(v)
}

// TestGovernorNarrowsUnderPressure: windowed p99 past NearFrac×target
// halves the background weight each window down to BGMin, emitting a warn
// event per step and counting Narrows.
func TestGovernorNarrowsUnderPressure(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		Mode:      GovStep,
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1, // isolate the latency signal
	})
	if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
		t.Fatalf("first window judged without a baseline snapshot: %v", ev)
	}
	want := []float64{0.5, 0.25, 0.125}
	for i, w := range want {
		ev := hs.check(20, 50*sim.Millisecond)
		if len(ev) != 1 || ev[0].Severity != "warn" || !strings.Contains(ev[0].Detail, "narrow") {
			t.Fatalf("window %d: events = %+v, want one narrow warn", i, ev)
		}
		if got := hs.m.BackgroundWeight(); got != w {
			t.Fatalf("window %d: bg weight %v, want %v", i, got, w)
		}
	}
	// Keep squeezing: the weight floors at BGMin and events stop.
	for i := 0; i < 10; i++ {
		hs.check(20, 50*sim.Millisecond)
	}
	if got := hs.m.BackgroundWeight(); got != hs.g.cfg.bgMin() {
		t.Errorf("bg weight %v, want floor %v", got, hs.g.cfg.bgMin())
	}
	if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
		t.Errorf("at the floor, still emitting: %+v", ev)
	}
	if hs.g.Narrows < 3 {
		t.Errorf("Narrows = %d, want >= 3", hs.g.Narrows)
	}
}

// TestGovernorWidensAfterCalm: CalmWindows quiet windows double the weight
// back toward BGMax with an info event each step.
func TestGovernorWidensAfterCalm(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		Mode:        GovStep,
		P99Target:   10 * sim.Millisecond,
		MinCount:    4,
		CalmWindows: 2,
		QueueHigh:   -1,
	})
	hs.check(20, 50*sim.Millisecond) // baseline
	hs.check(20, 50*sim.Millisecond) // narrow 1 -> 0.5
	hs.check(20, 50*sim.Millisecond) // narrow 0.5 -> 0.25
	if got := hs.m.BackgroundWeight(); got != 0.25 {
		t.Fatalf("setup: bg weight %v, want 0.25", got)
	}
	// Calm: plenty of ops, all fast.
	if ev := hs.check(20, 1*sim.Millisecond); ev != nil {
		t.Fatalf("calm window 1 acted early: %+v", ev)
	}
	ev := hs.check(20, 1*sim.Millisecond)
	if len(ev) != 1 || ev[0].Severity != "info" || !strings.Contains(ev[0].Detail, "widen") {
		t.Fatalf("calm window 2: events = %+v, want one widen info", ev)
	}
	if got := hs.m.BackgroundWeight(); got != 0.5 {
		t.Errorf("bg weight %v, want 0.5", got)
	}
	hs.check(20, 1*sim.Millisecond)
	hs.check(20, 1*sim.Millisecond) // second calm pair: 0.5 -> 1
	if got := hs.m.BackgroundWeight(); got != 1 {
		t.Errorf("bg weight %v, want restored to 1", got)
	}
	if hs.g.Widens != 2 {
		t.Errorf("Widens = %d, want 2", hs.g.Widens)
	}
	// Fully restored: calm windows stop emitting.
	hs.check(20, 1*sim.Millisecond)
	if ev := hs.check(20, 1*sim.Millisecond); ev != nil {
		t.Errorf("at BGMax, still widening: %+v", ev)
	}
}

// TestGovernorIgnoresThinWindows: fewer than MinCount samples must not
// trigger a narrow, however slow they were — a two-op window is noise.
func TestGovernorIgnoresThinWindows(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		Mode:      GovStep,
		P99Target: 10 * sim.Millisecond,
		MinCount:  16,
		QueueHigh: -1,
	})
	hs.check(2, 50*sim.Millisecond) // baseline
	for i := 0; i < 4; i++ {
		if ev := hs.check(2, 50*sim.Millisecond); ev != nil {
			t.Fatalf("thin window %d narrowed: %+v", i, ev)
		}
	}
	if got := hs.m.BackgroundWeight(); got != 1 {
		t.Errorf("bg weight %v, want untouched 1", got)
	}
}

// TestGovernorInertWhenDisabled: with the manager switched off the
// governor neither acts nor counts, whatever the view says.
func TestGovernorInertWhenDisabled(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1,
	})
	hs.m.SetEnabled(false)
	for i := 0; i < 3; i++ {
		if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
			t.Fatalf("disabled governor emitted: %+v", ev)
		}
	}
	if hs.g.Narrows != 0 || hs.m.BackgroundWeight() != 1 {
		t.Errorf("disabled governor acted: narrows %d weight %v", hs.g.Narrows, hs.m.BackgroundWeight())
	}
}

// TestGovernorStepCalmClamped is the unbounded-calm regression: parked at
// BGMax through a long quiet stretch, the calm counter must clamp at
// CalmWindows instead of counting forever.
func TestGovernorStepCalmClamped(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		Mode:        GovStep,
		P99Target:   10 * sim.Millisecond,
		MinCount:    4,
		CalmWindows: 2,
		QueueHigh:   -1,
	})
	hs.check(20, 1*sim.Millisecond) // baseline
	for i := 0; i < 50; i++ {
		hs.check(20, 1*sim.Millisecond)
	}
	if hs.g.calm > hs.g.cfg.calmWindows() {
		t.Errorf("calm counter grew to %d, want clamped at %d", hs.g.calm, hs.g.cfg.calmWindows())
	}
}

// TestGovernorStepHistogramAppearsMidRun is the haveSnap regression: when
// the latency histogram is registered after the scraper's first windows,
// the first window it is visible in must be judged (against a zero
// baseline) — the old bootstrap silently skipped it.
func TestGovernorStepHistogramAppearsMidRun(t *testing.T) {
	hs := newGovHarnessFull(t, Config{}, GovernorConfig{
		Mode:      GovStep,
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1,
	}, false)
	// Three windows with no histogram registered: nothing to judge.
	for i := 0; i < 3; i++ {
		if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
			t.Fatalf("window %d without histogram emitted: %+v", i, ev)
		}
	}
	hs.attachHist()
	// First window the histogram is visible: the accumulated slow samples
	// are over target, so the governor must narrow now, not one window
	// later.
	ev := hs.check(20, 50*sim.Millisecond)
	if len(ev) != 1 || !strings.Contains(ev[0].Detail, "narrow") {
		t.Fatalf("first visible window not judged: events = %+v", ev)
	}
	if got := hs.m.BackgroundWeight(); got != 0.5 {
		t.Errorf("bg weight %v, want 0.5 after the first visible window", got)
	}
}

// TestGovernorPIHistogramAppearsMidRun: same transition under the PI
// controller — the loop holds while the histogram is missing, then acts
// on its first visible window.
func TestGovernorPIHistogramAppearsMidRun(t *testing.T) {
	hs := newGovHarnessFull(t, Config{}, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1,
	}, false)
	for i := 0; i < 3; i++ {
		if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
			t.Fatalf("window %d without histogram emitted: %+v", i, ev)
		}
	}
	if got := hs.m.BackgroundWeight(); got != 1 {
		t.Fatalf("weight moved with no signal: %v", got)
	}
	hs.attachHist()
	hs.check(20, 50*sim.Millisecond)
	if got := hs.m.BackgroundWeight(); got >= 1 {
		t.Errorf("bg weight %v, want squeezed below 1 on the first visible window", got)
	}
	if hs.g.Narrows == 0 {
		t.Errorf("Narrows = 0, want the first visible window counted")
	}
}

// TestGovernorPISqueezesAndRecovers: sustained over-target p99 drives the
// weight monotonically toward BGMin (integral accumulation); sustained
// under-target p99 bleeds the integral and restores BGMax. No halving
// steps, no oscillation between fixed levels.
func TestGovernorPISqueezesAndRecovers(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1,
	})
	hs.check(20, 50*sim.Millisecond) // baseline window
	prev := hs.m.BackgroundWeight()
	for i := 0; i < 10; i++ {
		hs.check(20, 50*sim.Millisecond)
		w := hs.m.BackgroundWeight()
		if w > prev+weightEps {
			t.Fatalf("window %d: weight rose under sustained pressure: %v -> %v", i, prev, w)
		}
		prev = w
	}
	if min := hs.g.cfg.bgMin(); prev > min+1e-9 {
		t.Errorf("sustained 5x-over-target pressure settled at %v, want floor %v", prev, min)
	}
	// Recovery: fast windows under the setpoint.
	for i := 0; i < 20; i++ {
		hs.check(20, 1*sim.Millisecond)
	}
	if got := hs.m.BackgroundWeight(); got < hs.g.cfg.bgMax()-weightEps {
		t.Errorf("bg weight %v after sustained calm, want restored to %v", got, hs.g.cfg.bgMax())
	}
	if hs.g.Narrows == 0 || hs.g.Widens == 0 {
		t.Errorf("narrows %d widens %d, want both counted", hs.g.Narrows, hs.g.Widens)
	}
}

// TestGovernorPIBoundedActuation: whatever the signal does, the applied
// weight stays inside [BGMin, BGMax].
func TestGovernorPIBoundedActuation(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1,
	})
	durs := []sim.Duration{
		50 * sim.Millisecond, 1 * sim.Millisecond, 200 * sim.Millisecond,
		5 * sim.Millisecond, 500 * sim.Millisecond, 1 * sim.Microsecond,
	}
	for i := 0; i < 60; i++ {
		hs.check(20, durs[i%len(durs)])
		w := hs.m.BackgroundWeight()
		if w < hs.g.cfg.bgMin()-1e-9 || w > hs.g.cfg.bgMax()+1e-9 {
			t.Fatalf("window %d: weight %v outside [%v, %v]", i, w, hs.g.cfg.bgMin(), hs.g.cfg.bgMax())
		}
	}
}

// TestGovernorPIThinWindowsRelax: once load stops entirely (thin windows),
// the integral bleeds off so background work gets its bandwidth back —
// the PI analogue of the step governor's calm widen.
func TestGovernorPIThinWindowsRelax(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  16,
		QueueHigh: -1,
	})
	hs.check(20, 50*sim.Millisecond) // baseline
	for i := 0; i < 8; i++ {
		hs.check(20, 50*sim.Millisecond)
	}
	squeezed := hs.m.BackgroundWeight()
	if squeezed >= 1 {
		t.Fatalf("setup: pressure did not squeeze (weight %v)", squeezed)
	}
	// Clients leave: two-op windows are never judged, but they do relax.
	for i := 0; i < 20; i++ {
		hs.check(2, 50*sim.Millisecond)
	}
	if got := hs.m.BackgroundWeight(); got < hs.g.cfg.bgMax()-weightEps {
		t.Errorf("bg weight %v after idle stretch, want relaxed to %v", got, hs.g.cfg.bgMax())
	}
}

// TestGovernorPIPerTenantSLO: a tenant with an SLOP99 gets its own loop
// fed by Manager.ObserveOp; breaching it squeezes background work even
// with no cluster-wide target configured, while an SLO-less tenant's
// latency moves nothing.
func TestGovernorPIPerTenantSLO(t *testing.T) {
	hs := newGovHarnessFull(t, Config{
		Tenants: map[string]TenantSpec{
			"fusion": {Rate: 1000, SLOP99: 10 * sim.Millisecond},
			"batch":  {Rate: 1000},
		},
	}, GovernorConfig{
		MinCount:  4,
		QueueHigh: -1, // no cluster P99Target, no queue loop: tenant SLO only
	}, true)
	if _, _, ok := hs.g.LoopState("fusion"); !ok {
		t.Fatal("no PI loop for the SLO tenant")
	}
	if _, _, ok := hs.g.LoopState("batch"); ok {
		t.Fatal("SLO-less tenant got a loop")
	}
	observe := func(tenant string, n int, d sim.Duration) {
		for i := 0; i < n; i++ {
			hs.m.ObserveOp(tenant, d)
		}
	}
	// batch's misery alone must not squeeze anything (it has no SLO, and
	// ObserveOp drops it on the floor).
	observe("batch", 20, 500*sim.Millisecond)
	hs.check(0, 0) // baseline window
	observe("batch", 20, 500*sim.Millisecond)
	hs.check(0, 0)
	if got := hs.m.BackgroundWeight(); got != 1 {
		t.Fatalf("SLO-less tenant latency moved the weight to %v", got)
	}
	// fusion breaching its 10ms SLO squeezes.
	observe("fusion", 20, 50*sim.Millisecond)
	hs.check(0, 0)
	if got := hs.m.BackgroundWeight(); got >= 1 {
		t.Errorf("bg weight %v, want squeezed on tenant SLO breach", got)
	}
	err, out, _ := hs.g.LoopState("fusion")
	if err <= 0 || out <= 0 {
		t.Errorf("fusion loop err %.3f out %.3f, want both positive under breach", err, out)
	}
	// fusion back under its SLO: the squeeze releases.
	for i := 0; i < 20; i++ {
		observe("fusion", 20, 1*sim.Millisecond)
		hs.check(0, 0)
	}
	if got := hs.m.BackgroundWeight(); got < 1-weightEps {
		t.Errorf("bg weight %v, want restored once fusion meets its SLO", got)
	}
}
