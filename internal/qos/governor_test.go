package qos

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// govHarness wires a Manager + Governor to a real registry holding the
// latency histogram, and hand-builds telemetry views the way the scraper
// would — the governor is a pure function of the view stream.
type govHarness struct {
	m    *Manager
	g    *Governor
	h    *metrics.Histogram
	reg  *telemetry.Registry
	tick int
}

func newGovHarness(t *testing.T, cfg GovernorConfig) *govHarness {
	t.Helper()
	k := sim.NewKernel(1)
	m := NewManager(k, Config{})
	m.NewFairQueue(1)
	m.SetEnabled(true)
	reg := telemetry.NewRegistry()
	h := metrics.NewHistogram()
	reg.Histogram("cluster/op_latency", h)
	return &govHarness{m: m, g: m.AttachGovernor(cfg), h: h, reg: reg}
}

// check runs one scraper window: observe n latency samples, then Check.
func (hs *govHarness) check(n int, d sim.Duration) []telemetry.Event {
	for i := 0; i < n; i++ {
		hs.h.Observe(d)
	}
	hs.tick++
	v := &telemetry.View{
		T:        sim.Time(0).Add(sim.Duration(hs.tick) * 100 * sim.Millisecond),
		Interval: 100 * sim.Millisecond,
		First:    hs.tick == 1,
		Reg:      hs.reg,
	}
	return hs.g.Check(v)
}

// TestGovernorNarrowsUnderPressure: windowed p99 past NearFrac×target
// halves the background weight each window down to BGMin, emitting a warn
// event per step and counting Narrows.
func TestGovernorNarrowsUnderPressure(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1, // isolate the latency signal
	})
	if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
		t.Fatalf("first window judged without a baseline snapshot: %v", ev)
	}
	want := []float64{0.5, 0.25, 0.125}
	for i, w := range want {
		ev := hs.check(20, 50*sim.Millisecond)
		if len(ev) != 1 || ev[0].Severity != "warn" || !strings.Contains(ev[0].Detail, "narrow") {
			t.Fatalf("window %d: events = %+v, want one narrow warn", i, ev)
		}
		if got := hs.m.BackgroundWeight(); got != w {
			t.Fatalf("window %d: bg weight %v, want %v", i, got, w)
		}
	}
	// Keep squeezing: the weight floors at BGMin and events stop.
	for i := 0; i < 10; i++ {
		hs.check(20, 50*sim.Millisecond)
	}
	if got := hs.m.BackgroundWeight(); got != hs.g.cfg.bgMin() {
		t.Errorf("bg weight %v, want floor %v", got, hs.g.cfg.bgMin())
	}
	if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
		t.Errorf("at the floor, still emitting: %+v", ev)
	}
	if hs.g.Narrows < 3 {
		t.Errorf("Narrows = %d, want >= 3", hs.g.Narrows)
	}
}

// TestGovernorWidensAfterCalm: CalmWindows quiet windows double the weight
// back toward BGMax with an info event each step.
func TestGovernorWidensAfterCalm(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target:   10 * sim.Millisecond,
		MinCount:    4,
		CalmWindows: 2,
		QueueHigh:   -1,
	})
	hs.check(20, 50*sim.Millisecond) // baseline
	hs.check(20, 50*sim.Millisecond) // narrow 1 -> 0.5
	hs.check(20, 50*sim.Millisecond) // narrow 0.5 -> 0.25
	if got := hs.m.BackgroundWeight(); got != 0.25 {
		t.Fatalf("setup: bg weight %v, want 0.25", got)
	}
	// Calm: plenty of ops, all fast.
	if ev := hs.check(20, 1*sim.Millisecond); ev != nil {
		t.Fatalf("calm window 1 acted early: %+v", ev)
	}
	ev := hs.check(20, 1*sim.Millisecond)
	if len(ev) != 1 || ev[0].Severity != "info" || !strings.Contains(ev[0].Detail, "widen") {
		t.Fatalf("calm window 2: events = %+v, want one widen info", ev)
	}
	if got := hs.m.BackgroundWeight(); got != 0.5 {
		t.Errorf("bg weight %v, want 0.5", got)
	}
	hs.check(20, 1*sim.Millisecond)
	hs.check(20, 1*sim.Millisecond) // second calm pair: 0.5 -> 1
	if got := hs.m.BackgroundWeight(); got != 1 {
		t.Errorf("bg weight %v, want restored to 1", got)
	}
	if hs.g.Widens != 2 {
		t.Errorf("Widens = %d, want 2", hs.g.Widens)
	}
	// Fully restored: calm windows stop emitting.
	hs.check(20, 1*sim.Millisecond)
	if ev := hs.check(20, 1*sim.Millisecond); ev != nil {
		t.Errorf("at BGMax, still widening: %+v", ev)
	}
}

// TestGovernorIgnoresThinWindows: fewer than MinCount samples must not
// trigger a narrow, however slow they were — a two-op window is noise.
func TestGovernorIgnoresThinWindows(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  16,
		QueueHigh: -1,
	})
	hs.check(2, 50*sim.Millisecond) // baseline
	for i := 0; i < 4; i++ {
		if ev := hs.check(2, 50*sim.Millisecond); ev != nil {
			t.Fatalf("thin window %d narrowed: %+v", i, ev)
		}
	}
	if got := hs.m.BackgroundWeight(); got != 1 {
		t.Errorf("bg weight %v, want untouched 1", got)
	}
}

// TestGovernorInertWhenDisabled: with the manager switched off the
// governor neither acts nor counts, whatever the view says.
func TestGovernorInertWhenDisabled(t *testing.T) {
	hs := newGovHarness(t, GovernorConfig{
		P99Target: 10 * sim.Millisecond,
		MinCount:  4,
		QueueHigh: -1,
	})
	hs.m.SetEnabled(false)
	for i := 0; i < 3; i++ {
		if ev := hs.check(20, 50*sim.Millisecond); ev != nil {
			t.Fatalf("disabled governor emitted: %+v", ev)
		}
	}
	if hs.g.Narrows != 0 || hs.m.BackgroundWeight() != 1 {
		t.Errorf("disabled governor acted: narrows %d weight %v", hs.g.Narrows, hs.m.BackgroundWeight())
	}
}
