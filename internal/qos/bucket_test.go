package qos

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestBucketPacesToRate: a single tenant pushing cost units back-to-back
// gets its burst instantly, then is paced to exactly Rate by GCRA's
// virtual-time reservation.
func TestBucketPacesToRate(t *testing.T) {
	k := sim.NewKernel(1)
	a := NewAdmission(k, map[string]TenantSpec{
		"t": {Rate: 1000, Burst: 1, MaxQueue: 32},
	})
	a.SetEnabled(true)
	var end sim.Time
	k.Go("client", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := a.Admit(p, "t", 1); err != nil {
				t.Errorf("op %d: %v", i, err)
			}
		}
		end = p.Now()
	})
	k.Run()
	// Rate 1000/s is a 1ms emission interval; burst 1 lets two ops through
	// at t=0, then every later op waits to its slot: 10 ops end at 8ms.
	if want := sim.Time(0).Add(8 * sim.Millisecond); end != want {
		t.Errorf("10 ops finished at %v, want %v", end, want)
	}
	st := a.Stats()
	if len(st) != 1 || st[0].Admitted != 10 || st[0].Delayed != 8 || st[0].Throttled != 0 {
		t.Errorf("stats = %+v, want admitted 10 delayed 8 throttled 0", st)
	}
}

// TestBucketShedsWhenQueueFull: concurrent arrivals past burst+MaxQueue
// shed with ErrThrottled instead of queueing unboundedly.
func TestBucketShedsWhenQueueFull(t *testing.T) {
	k := sim.NewKernel(1)
	a := NewAdmission(k, map[string]TenantSpec{
		"t": {Rate: 100, Burst: 1, MaxQueue: 2},
	})
	a.SetEnabled(true)
	var admitted, throttled int
	for i := 0; i < 8; i++ {
		k.Go("client", func(p *sim.Proc) {
			err := a.Admit(p, "t", 1)
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrThrottled):
				throttled++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
	k.Run()
	// At t=0: burst admits 2 instantly, MaxQueue holds 2 waiters, the
	// remaining 4 shed.
	if admitted != 4 || throttled != 4 {
		t.Errorf("admitted %d throttled %d, want 4/4", admitted, throttled)
	}
	if got := a.Throttled("t"); got != 4 {
		t.Errorf("Throttled(t) = %d, want 4", got)
	}
	if got := a.Throttled("nosuch"); got != 0 {
		t.Errorf("Throttled(nosuch) = %d, want 0", got)
	}
}

// TestBucketPassThrough: disabled stage, unknown tenants and unlimited
// (Rate 0) tenants all admit instantly with no accounting.
func TestBucketPassThrough(t *testing.T) {
	k := sim.NewKernel(1)
	a := NewAdmission(k, map[string]TenantSpec{
		"limited":   {Rate: 1, Burst: 1, MaxQueue: 0},
		"unlimited": {Rate: 0},
	})
	k.Go("client", func(p *sim.Proc) {
		// Disabled: even the limited tenant sails through at any rate.
		for i := 0; i < 5; i++ {
			if err := a.Admit(p, "limited", 1000); err != nil {
				t.Errorf("disabled admit: %v", err)
			}
		}
		a.SetEnabled(true)
		for i := 0; i < 5; i++ {
			if err := a.Admit(p, "unlimited", 1000); err != nil {
				t.Errorf("unlimited admit: %v", err)
			}
			if err := a.Admit(p, "stranger", 1000); err != nil {
				t.Errorf("unknown-tenant admit: %v", err)
			}
		}
		if p.Now() != 0 {
			t.Errorf("pass-through admits consumed virtual time: now %v", p.Now())
		}
	})
	k.Run()
	for _, st := range a.Stats() {
		if st.Tenant == "limited" && st.Admitted != 0 {
			t.Errorf("disabled admits were counted: %+v", st)
		}
	}
}

// TestBucketUnsetMaxQueueQueues is the MaxQueue-default regression: a spec
// that only sets Rate/Burst must pace over-rate ops (DefaultMaxQueue
// waiters), not shed every one of them the way the old zero-means-no-wait
// reading did.
func TestBucketUnsetMaxQueueQueues(t *testing.T) {
	k := sim.NewKernel(1)
	a := NewAdmission(k, map[string]TenantSpec{
		"t": {Rate: 1000, Burst: 1}, // MaxQueue deliberately unset
	})
	a.SetEnabled(true)
	var end sim.Time
	k.Go("client", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := a.Admit(p, "t", 1); err != nil {
				t.Errorf("op %d: %v (unset MaxQueue must queue, not shed)", i, err)
			}
		}
		end = p.Now()
	})
	k.Run()
	if want := sim.Time(0).Add(8 * sim.Millisecond); end != want {
		t.Errorf("10 ops finished at %v, want %v (paced to rate)", end, want)
	}
	st := a.Stats()
	if len(st) != 1 || st[0].Admitted != 10 || st[0].Delayed != 8 || st[0].Throttled != 0 {
		t.Errorf("stats = %+v, want admitted 10 delayed 8 throttled 0", st)
	}
	if st[0].MaxQueue != DefaultMaxQueue {
		t.Errorf("effective MaxQueue = %d, want DefaultMaxQueue %d", st[0].MaxQueue, DefaultMaxQueue)
	}
}

// TestBucketUnsetMaxQueueStillBounded: the default is a bound, not
// unlimited — concurrent arrivals beyond burst+DefaultMaxQueue still shed.
func TestBucketUnsetMaxQueueStillBounded(t *testing.T) {
	k := sim.NewKernel(1)
	a := NewAdmission(k, map[string]TenantSpec{
		"t": {Rate: 100, Burst: 1},
	})
	a.SetEnabled(true)
	var admitted, throttled int
	for i := 0; i < DefaultMaxQueue+6; i++ {
		k.Go("client", func(p *sim.Proc) {
			err := a.Admit(p, "t", 1)
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrThrottled):
				throttled++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
	k.Run()
	// Burst admits 2 instantly, DefaultMaxQueue waiters queue, the rest shed.
	if admitted != DefaultMaxQueue+2 || throttled != 4 {
		t.Errorf("admitted %d throttled %d, want %d/4", admitted, throttled, DefaultMaxQueue+2)
	}
}

// TestBucketNegativeMaxQueueShedsImmediately: a negative MaxQueue is the
// explicit opt-in to the old no-wait behaviour.
func TestBucketNegativeMaxQueueShedsImmediately(t *testing.T) {
	k := sim.NewKernel(1)
	a := NewAdmission(k, map[string]TenantSpec{
		"t": {Rate: 100, Burst: 1, MaxQueue: -1},
	})
	a.SetEnabled(true)
	k.Go("client", func(p *sim.Proc) {
		var admitted, throttled int
		for i := 0; i < 5; i++ {
			err := a.Admit(p, "t", 1)
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrThrottled):
				throttled++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}
		if admitted != 2 || throttled != 3 {
			t.Errorf("admitted %d throttled %d, want 2/3", admitted, throttled)
		}
		if p.Now() != 0 {
			t.Errorf("no-wait sheds consumed virtual time: now %v", p.Now())
		}
	})
	k.Run()
}

// TestBucketDeterministic: same seed, same schedule, byte-identical
// counters — the admission stage adds no nondeterminism.
func TestBucketDeterministic(t *testing.T) {
	run := func() []TenantStats {
		k := sim.NewKernel(7)
		a := NewAdmission(k, map[string]TenantSpec{
			"a": {Rate: 500, Burst: 4, MaxQueue: 3},
			"b": {Rate: 2000, Burst: 2, MaxQueue: 1},
		})
		a.SetEnabled(true)
		for i := 0; i < 24; i++ {
			tenant := "a"
			if i%3 == 0 {
				tenant = "b"
			}
			delay := sim.Duration(i%5) * 300 * sim.Microsecond
			k.Go("client", func(p *sim.Proc) {
				p.Sleep(delay)
				_ = a.Admit(p, tenant, 1+i%2)
			})
		}
		k.Run()
		return a.Stats()
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("stats diverged across same-seed runs:\n%+v\n%+v", x[i], y[i])
		}
	}
}
