package qos

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// minBackgroundWeight is the floor the governor may squeeze the
// background lane down to: it never starves background work entirely,
// only slows it.
const minBackgroundWeight = 0.05

// GovernorConfig tunes the feedback loop between the telemetry scraper
// and the background lane's WFQ weight.
type GovernorConfig struct {
	// Hist names the latency histogram to watch (default
	// "cluster/op_latency").
	Hist string
	// P99Target is the foreground latency objective the governor defends
	// (typically the SLO watchdog's own threshold). 0 disables the
	// latency signal.
	P99Target sim.Duration
	// NearFrac is the fraction of P99Target at which the governor starts
	// narrowing, before the SLO watchdog actually fires (default 0.8).
	NearFrac float64
	// QueuePattern matches per-disk queue-depth gauges (default
	// "disk/*/queue_depth").
	QueuePattern string
	// QueueHigh is the mean per-disk queue depth that also counts as
	// pressure (default 6; 0 keeps the default, negative disables).
	QueueHigh float64
	// MinCount is the fewest window samples needed to judge the p99
	// (default 16).
	MinCount int64
	// CalmWindows is how many consecutive unpressured windows earn a
	// widen step (default 2).
	CalmWindows int
	// BGMax is the widest background weight the governor restores to
	// (default 1).
	BGMax float64
	// BGMin is the narrowest it squeezes to (default 0.05).
	BGMin float64
}

func (c GovernorConfig) hist() string {
	if c.Hist == "" {
		return "cluster/op_latency"
	}
	return c.Hist
}

func (c GovernorConfig) nearFrac() float64 {
	if c.NearFrac <= 0 {
		return 0.8
	}
	return c.NearFrac
}

func (c GovernorConfig) queuePattern() string {
	if c.QueuePattern == "" {
		return "disk/*/queue_depth"
	}
	return c.QueuePattern
}

func (c GovernorConfig) queueHigh() float64 {
	if c.QueueHigh == 0 {
		return 6
	}
	return c.QueueHigh
}

func (c GovernorConfig) minCount() int64 {
	if c.MinCount <= 0 {
		return 16
	}
	return c.MinCount
}

func (c GovernorConfig) calmWindows() int {
	if c.CalmWindows <= 0 {
		return 2
	}
	return c.CalmWindows
}

func (c GovernorConfig) bgMax() float64 {
	if c.BGMax <= 0 {
		return 1
	}
	return c.BGMax
}

func (c GovernorConfig) bgMin() float64 {
	if c.BGMin <= 0 {
		return minBackgroundWeight
	}
	return c.BGMin
}

// Governor is a telemetry.Watchdog that adaptively trades background
// bandwidth for foreground latency: when the windowed foreground p99
// nears the SLO (or disk queues run deep), it halves the background
// lane's weight toward BGMin; after CalmWindows quiet windows it doubles
// the weight back toward BGMax. Every decision is emitted as a watchdog
// event, which the scraper mirrors into the trace stream — so governor
// activity is visible in both `yottactl telemetry events` and trace
// exports.
//
// Check is a pure function of the view and the governor's own state (the
// windowed-p99 snapshot, the calm counter): no randomness, no virtual
// time, so same-seed runs make identical decisions.
type Governor struct {
	cfg GovernorConfig
	mgr *Manager

	prevSnap metrics.HistogramSnapshot
	haveSnap bool
	calm     int

	// Narrows and Widens count decisions, for telemetry and E13 notes.
	Narrows int64
	Widens  int64
}

// NewGovernor builds a governor driving mgr's background weight.
func NewGovernor(cfg GovernorConfig, mgr *Manager) *Governor {
	return &Governor{cfg: cfg, mgr: mgr}
}

// Rule implements telemetry.Watchdog.
func (g *Governor) Rule() string { return "qos-governor" }

// Check implements telemetry.Watchdog.
func (g *Governor) Check(v *telemetry.View) []telemetry.Event {
	if !g.mgr.Enabled() {
		return nil
	}
	// Latency signal: windowed p99 against the near-threshold.
	pressured := false
	detail := ""
	if g.cfg.P99Target > 0 {
		if h := v.Reg.HistogramFor(g.cfg.hist()); h != nil {
			if g.haveSnap && !v.First {
				n := h.CountSince(g.prevSnap)
				p99 := h.QuantileSince(g.prevSnap, 0.99)
				limit := sim.Duration(float64(g.cfg.P99Target) * g.cfg.nearFrac())
				if n >= g.cfg.minCount() && p99 > limit {
					pressured = true
					detail = fmt.Sprintf("window p99 %.3fms > %.3fms (%.0f%% of SLO, %d ops)",
						p99.Millis(), limit.Millis(), g.cfg.nearFrac()*100, n)
				}
			}
			g.prevSnap = h.Snapshot()
			g.haveSnap = true
		}
	}
	// Queue signal: mean per-disk queue depth.
	if !pressured && g.cfg.queueHigh() > 0 {
		if names := v.Reg.Match(g.cfg.queuePattern()); len(names) > 0 {
			sum := 0.0
			for _, n := range names {
				sum += v.Value(n)
			}
			mean := sum / float64(len(names))
			if mean >= g.cfg.queueHigh() {
				pressured = true
				detail = fmt.Sprintf("mean disk queue depth %.1f >= %.1f", mean, g.cfg.queueHigh())
			}
		}
	}

	cur := g.mgr.BackgroundWeight()
	if pressured {
		g.calm = 0
		if cur > g.cfg.bgMin() {
			next := cur / 2
			if next < g.cfg.bgMin() {
				next = g.cfg.bgMin()
			}
			g.mgr.SetBackgroundWeight(next)
			g.Narrows++
			return []telemetry.Event{{Rule: g.Rule(), Severity: "warn",
				Detail: fmt.Sprintf("narrow background lane %.3g -> %.3g: %s", cur, next, detail)}}
		}
		return nil
	}
	g.calm++
	if g.calm >= g.cfg.calmWindows() && cur < g.cfg.bgMax() {
		g.calm = 0
		next := cur * 2
		if next > g.cfg.bgMax() {
			next = g.cfg.bgMax()
		}
		g.mgr.SetBackgroundWeight(next)
		g.Widens++
		return []telemetry.Event{{Rule: g.Rule(), Severity: "info",
			Detail: fmt.Sprintf("widen background lane %.3g -> %.3g after %d calm windows", cur, next, g.cfg.calmWindows())}}
	}
	return nil
}
