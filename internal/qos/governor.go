package qos

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// minBackgroundWeight is the floor the governor may squeeze the
// background lane down to: it never starves background work entirely,
// only slows it.
const minBackgroundWeight = 0.05

// Governor modes. GovPI (the default) drives the background weight
// continuously from PI loops; GovStep is the PR5 halve/double threshold
// governor, kept for A/B comparison (experiment E14).
const (
	GovPI   = "pi"
	GovStep = "step"
)

// weightEps is the smallest background-weight move worth applying;
// below it the actuation is noise (and would churn WFQ retagging).
const weightEps = 0.0005

// eventFrac is the fraction of the actuation range a weight move must
// cross to be worth a traced event. The PI controller adjusts every
// window; only meaningful moves should reach the event/trace stream.
const eventFrac = 0.02

// piFiltAlpha is the EWMA coefficient applied to each PI loop's
// normalized error before it drives the gains. A windowed p99 is
// quantized by histogram buckets (adjacent buckets are ~20% apart), so
// the raw error jitters bucket-to-bucket even in steady state; filtering
// keeps the actuator from chasing that quantization noise. The filter is
// asymmetric (peak-hold): error rising above the filtered value is
// believed at piFiltAlphaUp, falling error only at piFiltAlpha. A tail
// SLO is about peaks, so a pulsed aggressor must be regulated at its
// pulse peaks — a symmetric filter would average the on- and off-pulse
// windows and hold a weight whose on-pulses still breach.
const (
	piFiltAlpha   = 0.35
	piFiltAlphaUp = 0.6
)

// piDeadband is the filtered-error hold band: within ±piDeadband of the
// setpoint the loop freezes its output instead of dithering the weight.
// The halve/double governor's lack of exactly this hysteresis is what
// makes it oscillate when the steady-state p99 lands near the threshold
// (see E14).
const piDeadband = 0.15

// GovernorConfig tunes the feedback loop between the telemetry scraper
// and the background lane's WFQ weight.
type GovernorConfig struct {
	// Mode selects the control law: GovPI (default) or GovStep (the
	// legacy halve/double governor, kept as the E14 comparison arm).
	Mode string
	// Hist names the latency histogram to watch for the cluster-wide
	// objective (default "cluster/op_latency").
	Hist string
	// P99Target is the cluster-wide foreground latency objective
	// (typically the SLO watchdog's own threshold). 0 disables the
	// cluster-wide latency loop; per-tenant TenantSpec.SLOP99 loops run
	// regardless.
	P99Target sim.Duration
	// NearFrac scales the setpoint below the objective: the governor
	// regulates the windowed p99 to NearFrac×target, keeping headroom
	// under the SLO rather than riding it (default 0.8). In step mode
	// this is the narrow threshold, as in PR5.
	NearFrac float64
	// KP is the proportional gain of the PI loops: squeeze fraction per
	// unit of normalized error (default 0.6). The error is EWMA-filtered
	// and carries a ±10% hold band before the gains see it, so KP acts
	// on trend, not on per-window p99 quantization noise. Ignored in
	// step mode.
	KP float64
	// KI is the integral gain per window (default 0.2); the integral
	// term is clamped to [0,1] (anti-windup) and bleeds off on thin
	// windows so the lane recovers when load stops. Ignored in step mode.
	KI float64
	// QueuePattern matches per-disk queue-depth gauges (default
	// "disk/*/queue_depth").
	QueuePattern string
	// QueueHigh is the mean per-disk queue depth treated as full-scale
	// pressure (default 6; 0 keeps the default, negative disables the
	// queue loop).
	QueueHigh float64
	// MinCount is the fewest window samples needed to judge a p99
	// (default 16).
	MinCount int64
	// CalmWindows is how many consecutive unpressured windows earn a
	// widen step in step mode (default 2). Unused in PI mode.
	CalmWindows int
	// BGMax is the widest background weight — the actuation ceiling,
	// held when no loop sees pressure (default 1).
	BGMax float64
	// BGMin is the narrowest it squeezes to (default 0.05).
	BGMin float64
}

func (c GovernorConfig) mode() string {
	if c.Mode == "" {
		return GovPI
	}
	return c.Mode
}

func (c GovernorConfig) hist() string {
	if c.Hist == "" {
		return "cluster/op_latency"
	}
	return c.Hist
}

func (c GovernorConfig) nearFrac() float64 {
	if c.NearFrac <= 0 {
		return 0.8
	}
	return c.NearFrac
}

func (c GovernorConfig) kp() float64 {
	if c.KP <= 0 {
		return 0.6
	}
	return c.KP
}

func (c GovernorConfig) ki() float64 {
	if c.KI <= 0 {
		return 0.2
	}
	return c.KI
}

func (c GovernorConfig) queuePattern() string {
	if c.QueuePattern == "" {
		return "disk/*/queue_depth"
	}
	return c.QueuePattern
}

func (c GovernorConfig) queueHigh() float64 {
	if c.QueueHigh == 0 {
		return 6
	}
	return c.QueueHigh
}

func (c GovernorConfig) minCount() int64 {
	if c.MinCount <= 0 {
		return 16
	}
	return c.MinCount
}

func (c GovernorConfig) calmWindows() int {
	if c.CalmWindows <= 0 {
		return 2
	}
	return c.CalmWindows
}

func (c GovernorConfig) bgMax() float64 {
	if c.BGMax <= 0 {
		return 1
	}
	return c.BGMax
}

func (c GovernorConfig) bgMin() float64 {
	if c.BGMin <= 0 {
		return minBackgroundWeight
	}
	return c.BGMin
}

// piLoop is one PI control loop: a latency objective (cluster-wide or one
// tenant's SLOP99) with its windowed-p99 snapshot and controller state.
// Error is normalized against the setpoint, so gains are dimensionless
// and shared across loops with very different targets:
//
//	e    = (window p99 − setpoint) / setpoint
//	integ = clamp(integ + KI·e, 0, 1)        // anti-windup clamp
//	out   = clamp(KP·e + integ, 0, 1)        // squeeze fraction
//
// A thin window (fewer than MinCount samples) is not judged; instead the
// integral bleeds off by KI so the background lane recovers toward BGMax
// once foreground load stops, without ever acting on a noisy p99.
type piLoop struct {
	tenant string // "" for the cluster-wide objective
	target sim.Duration

	prevSnap metrics.HistogramSnapshot
	integ    float64
	filt     float64 // EWMA-filtered normalized error
	err      float64 // last (filtered) normalized error, for telemetry
	out      float64 // last squeeze fraction in [0,1], for telemetry
}

// Governor is a telemetry.Watchdog that adaptively trades background
// bandwidth for foreground latency.
//
// In PI mode (the default) it runs one PI loop per latency objective —
// the cluster-wide P99Target plus one loop per tenant with a SLOP99 —
// and a proportional loop on mean disk queue depth. Each loop outputs a
// squeeze fraction in [0,1]; the most-constrained loop wins (max), and
// the background lane's weight is set continuously to
//
//	w = BGMax · (BGMin/BGMax)^u
//
// so actuation is bounded to [BGMin, BGMax] by construction. The
// interpolation is geometric, not linear: queueing latency responds to
// weight ratios, so equal control steps should multiply the weight by
// equal factors — the same reasoning behind the step governor's halving
// — or the loop gain would vary wildly across the actuation range. Unlike the
// PR5 halve/double governor it has no hysteresis counter to wind up and
// no 2× steps to oscillate between: near the setpoint the moves shrink
// toward zero.
//
// In step mode it is the PR5 governor: pressure halves the weight, calm
// windows double it back — kept verbatim (minus two bug fixes) as the
// comparison arm for experiment E14.
//
// Weight moves larger than eventFrac of the actuation range are emitted
// as watchdog events, which the scraper mirrors into the trace stream —
// so governor activity is visible in both `yottactl telemetry events`
// and trace exports without one event per window of micro-adjustment.
//
// Check is a pure function of the view and the governor's own state (the
// windowed-p99 snapshots, the loop integrals): no randomness, no wall
// clock, so same-seed runs make identical decisions.
type Governor struct {
	cfg GovernorConfig
	mgr *Manager

	// PI state.
	loops    []*piLoop
	queueErr float64 // last queue-loop normalized error
	queueOut float64 // last queue-loop squeeze fraction
	lastU    float64 // last winning squeeze fraction

	// Step-mode state.
	prevSnap metrics.HistogramSnapshot
	calm     int

	// Narrows and Widens count weight moves down/up, for telemetry and
	// experiment notes. In PI mode a "move" is any applied adjustment
	// beyond weightEps.
	Narrows int64
	Widens  int64
}

// NewGovernor builds a governor driving mgr's background weight. PI
// loops are created for the cluster objective (when P99Target > 0) and
// for every tenant whose spec sets SLOP99, in sorted tenant order.
func NewGovernor(cfg GovernorConfig, mgr *Manager) *Governor {
	g := &Governor{cfg: cfg, mgr: mgr}
	if cfg.P99Target > 0 {
		g.loops = append(g.loops, &piLoop{target: cfg.P99Target})
	}
	for _, n := range mgr.sloTenants {
		g.loops = append(g.loops, &piLoop{tenant: n, target: mgr.cfg.Tenants[n].SLOP99})
	}
	return g
}

// Rule implements telemetry.Watchdog.
func (g *Governor) Rule() string { return "qos-governor" }

// Mode reports the active control law (GovPI or GovStep).
func (g *Governor) Mode() string { return g.cfg.mode() }

// Output reports the last winning squeeze fraction in [0,1] (PI mode).
func (g *Governor) Output() float64 { return g.lastU }

// LoopState reports one PI loop's last normalized error and squeeze
// fraction; tenant "" selects the cluster-wide loop. ok is false when no
// such loop exists.
func (g *Governor) LoopState(tenant string) (err, out float64, ok bool) {
	for _, lp := range g.loops {
		if lp.tenant == tenant {
			return lp.err, lp.out, true
		}
	}
	return 0, 0, false
}

// Check implements telemetry.Watchdog.
func (g *Governor) Check(v *telemetry.View) []telemetry.Event {
	if !g.mgr.Enabled() {
		return nil
	}
	if g.cfg.mode() == GovStep {
		return g.checkStep(v)
	}
	return g.checkPI(v)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// histFor resolves the histogram one loop watches: the cluster loop reads
// the configured registry histogram; tenant loops read the manager's own
// per-tenant op-latency histograms (fed by controller.observeOp), which
// exist independent of any telemetry scope naming.
func (g *Governor) histFor(v *telemetry.View, lp *piLoop) *metrics.Histogram {
	if lp.tenant == "" {
		return v.Reg.HistogramFor(g.cfg.hist())
	}
	return g.mgr.TenantHistogram(lp.tenant)
}

// checkPI runs every loop over the window and applies the winning squeeze.
func (g *Governor) checkPI(v *telemetry.View) []telemetry.Event {
	u := 0.0
	why := "no pressure"
	for _, lp := range g.loops {
		h := g.histFor(v, lp)
		if h == nil {
			// Histogram not registered (yet): hold this loop's state. Its
			// first appearance is baselined below and the very next window
			// is judged — there is no silently skipped window.
			continue
		}
		if v.First {
			lp.prevSnap = h.Snapshot()
			continue
		}
		n := h.CountSince(lp.prevSnap)
		setpoint := float64(lp.target) * g.cfg.nearFrac()
		if n < g.cfg.minCount() {
			// Thin window: no judgement, bleed the integral and the
			// error filter toward rest so the lane recovers when the
			// foreground goes quiet.
			lp.filt *= 1 - piFiltAlpha
			lp.err = 0
			lp.integ = clamp01(lp.integ - g.cfg.ki())
			lp.out = lp.integ
		} else {
			p99 := h.QuantileSince(lp.prevSnap, 0.99)
			e := (float64(p99) - setpoint) / setpoint
			a := piFiltAlpha
			if e > lp.filt {
				a = piFiltAlphaUp
			}
			lp.filt = a*e + (1-a)*lp.filt
			lp.err = lp.filt
			if lp.filt > -piDeadband && lp.filt < piDeadband {
				// In the hold band: freeze the output rather than
				// dither the weight against p99 quantization noise.
				lp.out = lp.integ
			} else {
				lp.integ = clamp01(lp.integ + g.cfg.ki()*lp.filt)
				lp.out = clamp01(g.cfg.kp()*lp.filt + lp.integ)
			}
		}
		lp.prevSnap = h.Snapshot()
		if lp.out > u {
			u = lp.out
			name := lp.tenant
			if name == "" {
				name = "cluster"
			}
			why = fmt.Sprintf("%s loop: err %+.2f integ %.2f", name, lp.err, lp.integ)
		}
	}
	// Queue-pressure loop: proportional on mean disk queue depth, scaled
	// so depth at QueueHigh is full squeeze. Purely proportional — queue
	// depth is already an integral of over-admission, integrating it
	// again double-counts.
	g.queueErr, g.queueOut = 0, 0
	if high := g.cfg.queueHigh(); high > 0 {
		if names := v.Reg.Match(g.cfg.queuePattern()); len(names) > 0 {
			sum := 0.0
			for _, n := range names {
				sum += v.Value(n)
			}
			mean := sum / float64(len(names))
			g.queueErr = (mean - high) / high
			g.queueOut = clamp01(1 + g.queueErr) // full squeeze at mean == high
			if g.queueOut > u {
				u = g.queueOut
				why = fmt.Sprintf("queue loop: mean depth %.1f vs %.1f", mean, high)
			}
		}
	}
	g.lastU = u

	bgMax, bgMin := g.cfg.bgMax(), g.cfg.bgMin()
	next := bgMax * math.Pow(bgMin/bgMax, u)
	cur := g.mgr.BackgroundWeight()
	delta := next - cur
	if delta > -weightEps && delta < weightEps {
		return nil
	}
	g.mgr.SetBackgroundWeight(next)
	sev := "info"
	verb := "widen"
	mag := delta
	if delta < 0 {
		g.Narrows++
		sev, verb, mag = "warn", "narrow", -delta
	} else {
		g.Widens++
	}
	if mag < eventFrac*(bgMax-bgMin) {
		// Micro-adjustment: applied, but not worth a traced event.
		return nil
	}
	return []telemetry.Event{{Rule: g.Rule(), Severity: sev,
		Detail: fmt.Sprintf("%s background lane %.3g -> %.3g (u=%.2f): %s", verb, cur, next, u, why)}}
}

// checkStep is the PR5 halve/double governor, kept as the E14 comparison
// arm. Two fixes relative to PR5: the first window after the latency
// histogram appears is judged against a zero baseline instead of being
// silently skipped, and the calm counter clamps at CalmWindows instead
// of growing without bound while the lane sits at BGMax.
func (g *Governor) checkStep(v *telemetry.View) []telemetry.Event {
	// Latency signal: windowed p99 against the near-threshold.
	pressured := false
	detail := ""
	if g.cfg.P99Target > 0 {
		if h := v.Reg.HistogramFor(g.cfg.hist()); h != nil {
			if !v.First {
				n := h.CountSince(g.prevSnap)
				p99 := h.QuantileSince(g.prevSnap, 0.99)
				limit := sim.Duration(float64(g.cfg.P99Target) * g.cfg.nearFrac())
				if n >= g.cfg.minCount() && p99 > limit {
					pressured = true
					detail = fmt.Sprintf("window p99 %.3fms > %.3fms (%.0f%% of SLO, %d ops)",
						p99.Millis(), limit.Millis(), g.cfg.nearFrac()*100, n)
				}
			}
			g.prevSnap = h.Snapshot()
		}
	}
	// Queue signal: mean per-disk queue depth.
	if !pressured && g.cfg.queueHigh() > 0 {
		if names := v.Reg.Match(g.cfg.queuePattern()); len(names) > 0 {
			sum := 0.0
			for _, n := range names {
				sum += v.Value(n)
			}
			mean := sum / float64(len(names))
			if mean >= g.cfg.queueHigh() {
				pressured = true
				detail = fmt.Sprintf("mean disk queue depth %.1f >= %.1f", mean, g.cfg.queueHigh())
			}
		}
	}

	cur := g.mgr.BackgroundWeight()
	if pressured {
		g.calm = 0
		if cur > g.cfg.bgMin() {
			next := cur / 2
			if next < g.cfg.bgMin() {
				next = g.cfg.bgMin()
			}
			g.mgr.SetBackgroundWeight(next)
			g.Narrows++
			return []telemetry.Event{{Rule: g.Rule(), Severity: "warn",
				Detail: fmt.Sprintf("narrow background lane %.3g -> %.3g: %s", cur, next, detail)}}
		}
		return nil
	}
	if g.calm < g.cfg.calmWindows() {
		g.calm++
	}
	if g.calm >= g.cfg.calmWindows() && cur < g.cfg.bgMax() {
		g.calm = 0
		next := cur * 2
		if next > g.cfg.bgMax() {
			next = g.cfg.bgMax()
		}
		g.mgr.SetBackgroundWeight(next)
		g.Widens++
		return []telemetry.Event{{Rule: g.Rule(), Severity: "info",
			Detail: fmt.Sprintf("widen background lane %.3g -> %.3g after %d calm windows", cur, next, g.cfg.calmWindows())}}
	}
	return nil
}
