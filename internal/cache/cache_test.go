package cache

import (
	"testing"
	"testing/quick"
)

func key(i int64) Key { return Key{Vol: "v", LBA: i} }

func TestPutGet(t *testing.T) {
	c := New(10)
	c.Put(key(1), []byte{1}, Shared, false, 0)
	e, ok := c.Get(key(1))
	if !ok || e.Data[0] != 1 || e.State != Shared {
		t.Fatal("get after put failed")
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("hit on absent key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(10)
	c.Put(key(1), []byte{1}, Shared, false, 0)
	c.Put(key(1), []byte{2}, Modified, true, 1)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	e, _ := c.Peek(key(1))
	if e.Data[0] != 2 || e.State != Modified || !e.Dirty || e.Priority != 1 {
		t.Fatal("replace did not update fields")
	}
}

func TestVictimIsLRU(t *testing.T) {
	c := New(3)
	c.Put(key(1), nil, Shared, false, 0)
	c.Put(key(2), nil, Shared, false, 0)
	c.Put(key(3), nil, Shared, false, 0)
	c.Get(key(1)) // refresh 1; victim should now be 2
	v := c.Victim()
	if v.Key != key(2) {
		t.Fatalf("victim = %v, want v/2", v.Key)
	}
}

func TestVictimPrefersCleanOverDirty(t *testing.T) {
	c := New(3)
	c.Put(key(1), nil, Modified, true, 0) // older but dirty
	c.Put(key(2), nil, Shared, false, 0)  // clean
	if v := c.Victim(); v.Key != key(2) {
		t.Fatalf("victim = %v, want clean v/2", v.Key)
	}
}

func TestVictimPrefersLowPriority(t *testing.T) {
	c := New(3)
	c.Put(key(1), nil, Shared, false, 3) // high retention (§4 override)
	c.Put(key(2), nil, Shared, false, 0)
	c.Get(key(1))
	c.Get(key(2)) // 2 is most recent but lowest priority
	if v := c.Victim(); v.Key != key(2) {
		t.Fatalf("victim = %v, want low-priority v/2", v.Key)
	}
}

func TestVictimSkipsPinned(t *testing.T) {
	c := New(2)
	e1 := c.Put(key(1), nil, Shared, false, 0)
	e1.Pinned = true
	c.Put(key(2), nil, Shared, false, 0)
	if v := c.Victim(); v.Key != key(2) {
		t.Fatalf("victim = %v, want v/2 (1 pinned)", v.Key)
	}
	e2, _ := c.Peek(key(2))
	e2.Pinned = true
	if v := c.Victim(); v != nil {
		t.Fatalf("victim = %v, want nil (all pinned)", v.Key)
	}
}

func TestVictimFallsBackToDirty(t *testing.T) {
	c := New(2)
	c.Put(key(1), nil, Modified, true, 2)
	c.Put(key(2), nil, Modified, true, 1)
	if v := c.Victim(); v.Key != key(2) {
		t.Fatalf("victim = %v, want lowest-lane dirty v/2", v.Key)
	}
}

func TestEvictAndRemove(t *testing.T) {
	c := New(5)
	c.Put(key(1), nil, Shared, false, 0)
	e, _ := c.Peek(key(1))
	c.Evict(e)
	if c.Len() != 0 || c.Stats().Evictions != 1 {
		t.Fatal("evict bookkeeping wrong")
	}
	c.Evict(e) // double evict is a no-op
	if c.Stats().Evictions != 1 {
		t.Fatal("double evict counted")
	}
	c.Put(key(2), nil, Shared, false, 0)
	c.Remove(key(2))
	if c.Len() != 0 {
		t.Fatal("remove failed")
	}
}

func TestDirtyEntries(t *testing.T) {
	c := New(10)
	c.Put(key(1), nil, Modified, true, 0)
	c.Put(key(2), nil, Shared, false, 0)
	c.Put(key(3), nil, Modified, true, 2)
	ds := c.DirtyEntries()
	if len(ds) != 2 {
		t.Fatalf("dirty = %d, want 2", len(ds))
	}
}

func TestNeedsRoom(t *testing.T) {
	c := New(2)
	c.Put(key(1), nil, Shared, false, 0)
	if c.NeedsRoom(1) {
		t.Fatal("room exists")
	}
	c.Put(key(2), nil, Shared, false, 0)
	if !c.NeedsRoom(1) {
		t.Fatal("full cache claims room")
	}
}

func TestClear(t *testing.T) {
	c := New(5)
	c.Put(key(1), nil, Shared, false, 0)
	c.Put(key(2), nil, Modified, true, 3)
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear left entries")
	}
	if v := c.Victim(); v != nil {
		t.Fatal("victim on empty cache")
	}
}

func TestPriorityClamping(t *testing.T) {
	c := New(5)
	e := c.Put(key(1), nil, Shared, false, 99)
	if e.Priority != NumPriorities-1 {
		t.Fatalf("priority = %d, want clamped to %d", e.Priority, NumPriorities-1)
	}
	e2 := c.Put(key(2), nil, Shared, false, -5)
	if e2.Priority != 0 {
		t.Fatalf("priority = %d, want clamped to 0", e2.Priority)
	}
}

func TestHitRate(t *testing.T) {
	c := New(5)
	c.Put(key(1), nil, Shared, false, 0)
	c.Get(key(1))
	c.Get(key(2))
	c.Get(key(1))
	if hr := c.Stats().HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
}

// Property: Len never exceeds inserted keys; evicting every victim in a
// loop always empties the cache (no stranded entries).
func TestDrainProperty(t *testing.T) {
	f := func(keys []int64) bool {
		c := New(8)
		for _, k := range keys {
			if c.NeedsRoom(1) {
				v := c.Victim()
				if v == nil {
					return false
				}
				c.Evict(v)
			}
			c.Put(key(k%16), nil, Shared, false, int(k)%NumPriorities)
		}
		if c.Len() > 8 {
			return false
		}
		for c.Len() > 0 {
			v := c.Victim()
			if v == nil {
				return false
			}
			c.Evict(v)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the victim is never more recently used than any other entry in
// the same lane with the same dirtiness class.
func TestVictimLRUWithinLaneProperty(t *testing.T) {
	f := func(accesses []uint8) bool {
		c := New(64)
		order := make(map[Key]int)
		step := 0
		for _, a := range accesses {
			k := key(int64(a % 32))
			step++
			if _, ok := c.Peek(k); ok {
				c.Get(k)
			} else {
				c.Put(k, nil, Shared, false, 0)
			}
			order[k] = step
		}
		v := c.Victim()
		if v == nil {
			return len(order) == 0
		}
		for k, s := range order {
			if _, ok := c.Peek(k); ok && s < order[v.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPutReplaceBumpsVersion(t *testing.T) {
	c := New(10)
	e := c.Put(key(1), []byte{1}, Shared, false, 0)
	v0 := e.Version
	// Replacing the content must bump Version: writeback paths compare
	// the version they captured before destaging against the entry's
	// current version before clearing Dirty, and a silent replace would
	// let them mark the new content clean without persisting it.
	e2 := c.Put(key(1), []byte{2}, Modified, true, 0)
	if e2 != e {
		t.Fatal("replace allocated a new entry")
	}
	if e2.Version <= v0 {
		t.Fatalf("Version = %d after replace, want > %d", e2.Version, v0)
	}
	prev := e2.Version
	c.Put(key(1), []byte{3}, Modified, true, 0)
	if e2.Version <= prev {
		t.Fatalf("Version = %d after second replace, want > %d", e2.Version, prev)
	}
}

func TestPutCountsInsertsAndReplacesSeparately(t *testing.T) {
	c := New(10)
	c.Put(key(1), []byte{1}, Shared, false, 0)
	c.Put(key(2), []byte{2}, Shared, false, 0)
	c.Put(key(1), []byte{9}, Modified, true, 0) // replace, not insert
	st := c.Stats()
	if st.Inserts != 2 {
		t.Fatalf("Inserts = %d, want 2 (replaces must not count)", st.Inserts)
	}
	if st.Replaces != 1 {
		t.Fatalf("Replaces = %d, want 1", st.Replaces)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}
