// Package cache implements the per-blade block cache of §2.2: an LRU cache
// with retention-priority lanes (file metadata can "override cache retention
// priorities", §4), dirty tracking for write-back, and the coherence state
// tag maintained by the inter-controller protocol in internal/coherence.
package cache

import (
	"container/list"
	"fmt"

	"repro/internal/telemetry"
)

// Key identifies a cached block: a virtual volume name plus block address.
type Key struct {
	Vol string
	LBA int64
}

func (k Key) String() string { return fmt.Sprintf("%s/%d", k.Vol, k.LBA) }

// State is the block's coherence state on this blade.
type State uint8

// MSI coherence states.
const (
	Invalid  State = iota
	Shared         // clean, possibly cached on other blades too
	Modified       // exclusive; may be dirty
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// NumPriorities is the count of retention lanes; priority 0 evicts first.
const NumPriorities = 4

// Entry is one cached block.
type Entry struct {
	Key      Key
	Data     []byte
	State    State
	Dirty    bool
	Priority int
	// Pinned entries are immune to eviction (e.g. mid-writeback).
	Pinned bool
	// Version increments on every data update; writeback paths use it to
	// detect concurrent modification before clearing Dirty.
	Version uint64

	elem *list.Element
	lane int
}

// Stats counts cache activity. Inserts counts new entries only; replacing
// an existing entry's content via Put counts as a Replace, not an Insert
// (Len and capacity accounting are unaffected by replaces).
type Stats struct {
	Hits, Misses, Evictions, Inserts, Replaces int64
}

// Cache is a fixed-capacity block cache. It is a passive data structure:
// all policy (writeback, coherence messaging) lives in the caller.
type Cache struct {
	capacity int
	entries  map[Key]*Entry
	lanes    [NumPriorities]*list.List // front = LRU victim end
	stats    Stats
}

// New returns a cache holding up to capacity blocks.
func New(capacity int) *Cache {
	c := &Cache{capacity: capacity, entries: make(map[Key]*Entry)}
	for i := range c.lanes {
		c.lanes[i] = list.New()
	}
	return c
}

// Capacity returns the configured block capacity.
func (c *Cache) Capacity() int { return c.capacity }

// SetCapacity adjusts capacity (the caller evicts the overflow).
func (c *Cache) SetCapacity(n int) { c.capacity = n }

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// RegisterTelemetry publishes the cache's counters and occupancy under s.
func (c *Cache) RegisterTelemetry(s telemetry.Scope) {
	s.Int("hits", func() int64 { return c.stats.Hits })
	s.Int("misses", func() int64 { return c.stats.Misses })
	s.Int("evictions", func() int64 { return c.stats.Evictions })
	s.Int("inserts", func() int64 { return c.stats.Inserts })
	s.Int("replaces", func() int64 { return c.stats.Replaces })
	s.Int("len", func() int64 { return int64(len(c.entries)) })
	s.Int("capacity", func() int64 { return int64(c.capacity) })
}

// Get returns the entry for key and refreshes its recency; ok is false on
// miss. Hit/miss counters update accordingly.
func (c *Cache) Get(key Key) (*Entry, bool) {
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lanes[e.lane].MoveToBack(e.elem)
	return e, true
}

// Peek returns the entry without touching recency or counters.
func (c *Cache) Peek(key Key) (*Entry, bool) {
	e, ok := c.entries[key]
	return e, ok
}

// Put inserts or replaces an entry. The caller must have made room first
// (Put never evicts; see Victim). Data is stored by reference.
func (c *Cache) Put(key Key, data []byte, state State, dirty bool, priority int) *Entry {
	if priority < 0 {
		priority = 0
	}
	if priority >= NumPriorities {
		priority = NumPriorities - 1
	}
	if e, ok := c.entries[key]; ok {
		c.lanes[e.lane].Remove(e.elem)
		e.Data, e.State, e.Dirty, e.Priority = data, state, dirty, priority
		// The replace path rewrites Data, so it must bump Version like
		// every other data update: writeback paths compare Version before
		// clearing Dirty, and a silent replace would let a concurrent
		// destage mark the new content clean without persisting it.
		e.Version++
		e.lane = priority
		e.elem = c.lanes[priority].PushBack(e)
		c.stats.Replaces++
		return e
	}
	e := &Entry{Key: key, Data: data, State: state, Dirty: dirty, Priority: priority, lane: priority}
	e.elem = c.lanes[priority].PushBack(e)
	c.entries[key] = e
	c.stats.Inserts++
	return e
}

// Remove drops key from the cache (no writeback — caller's job).
func (c *Cache) Remove(key Key) {
	if e, ok := c.entries[key]; ok {
		c.lanes[e.lane].Remove(e.elem)
		delete(c.entries, key)
	}
}

// NeedsRoom reports whether inserting n new blocks would exceed capacity.
func (c *Cache) NeedsRoom(n int) bool { return len(c.entries)+n > c.capacity }

// Victim returns the best eviction candidate: the least-recently-used,
// lowest-priority entry, preferring clean over dirty (dirty victims force a
// writeback on the caller). Pinned entries are skipped. Returns nil if no
// candidate exists.
func (c *Cache) Victim() *Entry {
	// First pass: clean entries, lowest lane first.
	for lane := 0; lane < NumPriorities; lane++ {
		for el := c.lanes[lane].Front(); el != nil; el = el.Next() {
			e := el.Value.(*Entry)
			if !e.Pinned && !e.Dirty {
				return e
			}
		}
	}
	// Second pass: accept a dirty victim.
	for lane := 0; lane < NumPriorities; lane++ {
		for el := c.lanes[lane].Front(); el != nil; el = el.Next() {
			e := el.Value.(*Entry)
			if !e.Pinned {
				return e
			}
		}
	}
	return nil
}

// Evict removes e and counts the eviction.
func (c *Cache) Evict(e *Entry) {
	if _, ok := c.entries[e.Key]; !ok {
		return
	}
	c.lanes[e.lane].Remove(e.elem)
	delete(c.entries, e.Key)
	c.stats.Evictions++
}

// DirtyEntries returns all dirty entries (oldest first per lane), for the
// background flusher and for flush-on-failure recovery.
func (c *Cache) DirtyEntries() []*Entry {
	var out []*Entry
	for lane := 0; lane < NumPriorities; lane++ {
		for el := c.lanes[lane].Front(); el != nil; el = el.Next() {
			e := el.Value.(*Entry)
			if e.Dirty {
				out = append(out, e)
			}
		}
	}
	return out
}

// Keys returns all cached keys (unspecified order).
func (c *Cache) Keys() []Key {
	out := make([]Key, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}

// Clear drops every entry without writeback (cold restart after a
// membership change; dirty data must have been flushed by the caller).
func (c *Cache) Clear() {
	c.entries = make(map[Key]*Entry)
	for i := range c.lanes {
		c.lanes[i] = list.New()
	}
}

// HitRate returns hits/(hits+misses), 0 when no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
