package metrics

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestExemplarBasics(t *testing.T) {
	h := NewHistogram()
	h.ObserveTraced(100, 1)
	h.ObserveTraced(105, 2)  // same bucket, larger → replaces
	h.ObserveTraced(105, 3)  // tie → first writer wins (strictly greater only)
	h.ObserveTraced(1e6, 4)  // distinct bucket
	h.Observe(2e6)           // untraced: no exemplar
	h.ObserveTraced(3e6, 0)  // trace 0 = untraced
	exs := h.Exemplars()
	if len(exs) != 2 {
		t.Fatalf("exemplars = %+v, want 2", exs)
	}
	if exs[0].Trace != 2 || exs[0].Value != 105 {
		t.Errorf("low exemplar = %+v, want trace 2 @105", exs[0])
	}
	if exs[1].Trace != 4 {
		t.Errorf("high exemplar = %+v, want trace 4", exs[1])
	}
	if exs[0].Bucket >= exs[1].Bucket {
		t.Error("exemplars not sorted by bucket")
	}
}

func TestExemplarNear(t *testing.T) {
	h := NewHistogram()
	if _, ok := h.ExemplarNear(0.99); ok {
		t.Fatal("empty histogram should have no exemplar")
	}
	// 95 fast ops traced, 5 slow ops in one far bucket: p99 lands among
	// the slow ones, whose exemplar is the slowest of the five.
	for i := 0; i < 95; i++ {
		h.ObserveTraced(sim.Duration(1000+i), uint64(i+1))
	}
	for i := 0; i < 5; i++ {
		h.ObserveTraced(sim.Duration(1e9+float64(i)*1e7), uint64(551+i))
	}
	ex, ok := h.ExemplarNear(0.99)
	if !ok || ex.Trace != 555 {
		t.Errorf("p99 exemplar = %+v ok=%v, want trace 555", ex, ok)
	}
	ex, ok = h.ExemplarNear(0.50)
	if !ok || ex.Trace == 555 {
		t.Errorf("p50 exemplar = %+v, should come from the fast cluster", ex)
	}
}

// TestExemplarDeterminism: the same observation sequence produces a
// deeply equal exemplar set, and order of ties never matters because only
// strictly greater values replace.
func TestExemplarDeterminism(t *testing.T) {
	run := func() []Exemplar {
		h := NewHistogram()
		for i := 0; i < 10000; i++ {
			d := sim.Duration((i*7919)%100000 + 1)
			h.ObserveTraced(d, uint64(i+1))
		}
		return h.Exemplars()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("exemplar sets differ across identical runs")
	}
}

// TestExemplarMemoryBounded: exemplar count is bounded by occupied
// buckets, not samples.
func TestExemplarMemoryBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 200000; i++ {
		h.ObserveTraced(sim.Duration(i%1000000+1), uint64(i+1))
	}
	if n := len(h.Exemplars()); n > 250 {
		t.Errorf("%d exemplars for ~200 occupied buckets — not bounded", n)
	}
}
