package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as aligned plain-text tables — the
// benchmark harness's analogue of the rows a paper's evaluation reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line rendered after the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
