package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGaugeTracksMax(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(10)
	g.Add(-12)
	if g.Value() != 3 {
		t.Fatalf("value = %d, want 3", g.Value())
	}
	if g.Max() != 15 {
		t.Fatalf("max = %d, want 15", g.Max())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i) * sim.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != sim.Millisecond {
		t.Fatalf("min = %v", h.Min())
	}
	if h.Max() != 100*sim.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 49*sim.Millisecond || mean > 52*sim.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", mean)
	}
}

// Property: quantiles are monotone in q and bounded by min/max, within
// bucket resolution.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, r := range raw {
			h.Observe(sim.Duration(r%10_000_000) + 1)
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		prev := sim.Duration(-1)
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram quantile approximates the exact quantile within
// bucket relative error (~7%) plus one bucket.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	var exact []float64
	for i := 0; i < 5000; i++ {
		d := sim.Duration((i*7919)%1_000_000 + 1)
		h.Observe(d)
		exact = append(exact, float64(d))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := exact[int(q*float64(len(exact)-1))]
		got := float64(h.Quantile(q))
		if got < want*0.85 || got > want*1.20 {
			t.Fatalf("q=%.2f: got %.0f, exact %.0f (outside tolerance)", q, got, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestMeterRates(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Second), 125_000_000) // 125 MB over 1 s
	if g := m.Gbps(); math.Abs(g-1.0) > 1e-9 {
		t.Fatalf("Gbps = %v, want 1.0", g)
	}
	if mb := m.MBps(); math.Abs(mb-125) > 1e-9 {
		t.Fatalf("MBps = %v, want 125", mb)
	}
}

func TestMeterCloseAtExtendsWindow(t *testing.T) {
	m := NewMeter(0)
	m.Record(sim.Time(sim.Second), 100)
	m.CloseAt(sim.Time(2 * sim.Second))
	if m.Window() != 2*sim.Second {
		t.Fatalf("window = %v, want 2s", m.Window())
	}
	if m.PerSecond() != 50 {
		t.Fatalf("rate = %v, want 50", m.PerSecond())
	}
}

func TestMeterZeroWindow(t *testing.T) {
	m := NewMeter(0)
	m.Record(0, 100)
	if m.PerSecond() != 0 {
		t.Fatal("zero-window meter should report 0 rate, not Inf")
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if st.Mean != 5 {
		t.Fatalf("mean = %v, want 5", st.Mean)
	}
	if st.Min != 2 || st.Max != 9 {
		t.Fatalf("min/max = %v/%v", st.Min, st.Max)
	}
	if math.Abs(st.Std-2.138) > 0.01 {
		t.Fatalf("std = %v, want ~2.138 (sample std)", st.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.N != 0 || st.Mean != 0 || st.CV() != 0 {
		t.Fatal("empty summarize should be all zero")
	}
}

// Property: CV is scale-invariant — multiplying all observations by a
// positive constant leaves CV unchanged.
func TestCVScaleInvariance(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) < 2 || scale == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
			ys[i] = xs[i] * float64(scale)
		}
		a, b := Summarize(xs).CV(), Summarize(ys).CV()
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(sim.Time(sim.Second), 20)
	if s.Mean() != 15 {
		t.Fatalf("series mean = %v, want 15", s.Mean())
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("E1", "blades", "Gbps")
	tab.AddRow(4, 9.87)
	tab.AddNote("port limit 10 Gb/s")
	out := tab.String()
	for _, want := range []string{"== E1 ==", "blades", "9.87", "note: port limit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512B",
		2048:            "2.0KiB",
		3 * 1024 * 1024: "3.0MiB",
		5 << 30:         "5.0GiB",
		int64(1) << 50:  "1.0PiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("len = %d", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series = %q", flat)
		}
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(0, sim.Duration(100)*sim.Millisecond)
	ts.Record(sim.Time(50*sim.Millisecond), 1)
	ts.Record(sim.Time(60*sim.Millisecond), 2)
	ts.Record(sim.Time(250*sim.Millisecond), 4)
	vals := ts.Values()
	if len(vals) != 3 || vals[0] != 3 || vals[1] != 0 || vals[2] != 4 {
		t.Fatalf("vals = %v", vals)
	}
	if !strings.Contains(ts.Spark("x"), "windows") {
		t.Fatal("spark caption missing")
	}
	ts.Record(-1, 9) // before start: ignored
	if ts.Values()[0] != 3 {
		t.Fatal("pre-start sample recorded")
	}
}
