// Package metrics provides the measurement instruments used by every
// experiment in this repository: counters, latency histograms, throughput
// meters and small statistical helpers, plus plain-text table rendering for
// the benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Counter is a monotonically increasing count.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be non-negative).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a value that can move in both directions, tracking high and low
// watermarks. The zero Gauge is ready to use and starts its watermarks at 0,
// so Max/Min cover the implicit initial value too; Reset re-arms both
// watermarks at the current value for per-window peak reporting.
type Gauge struct {
	v, max, min int64
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	g.v += delta
	if g.v > g.max {
		g.max = g.v
	}
	if g.v < g.min {
		g.min = g.v
	}
}

// Set sets the gauge to v.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
	if v < g.min {
		g.min = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the maximum observed since construction or the last Reset.
func (g *Gauge) Max() int64 { return g.max }

// Min returns the minimum observed since construction or the last Reset.
func (g *Gauge) Min() int64 { return g.min }

// Reset re-arms both watermarks at the current value, opening a new
// observation window (the telemetry scraper does this after every scrape so
// Max/Min report per-interval peaks).
func (g *Gauge) Reset() {
	g.max = g.v
	g.min = g.v
}

// Histogram records sim.Duration samples in logarithmic buckets
// (~7% relative width), supporting quantile queries without storing
// every sample.
type Histogram struct {
	buckets map[int]int64
	count   int64
	sum     float64
	min     sim.Duration
	max     sim.Duration

	// exemplars holds, per occupied bucket, the trace behind the bucket's
	// largest traced sample (lazily allocated; only ObserveTraced feeds
	// it). Memory is bounded by the occupied-bucket count, not the sample
	// count.
	exemplars map[int]Exemplar
}

// Exemplar links a histogram bucket back to the trace of its largest
// traced sample, so a quantile can be followed to a concrete op.
type Exemplar struct {
	Bucket int
	Trace  uint64
	Value  sim.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64), min: math.MaxInt64}
}

const histGrowth = 1.07

func bucketOf(d sim.Duration) int {
	if d <= 0 {
		return 0
	}
	return 1 + int(math.Log(float64(d))/math.Log(histGrowth))
}

func bucketUpper(b int) sim.Duration {
	if b == 0 {
		return 0
	}
	return sim.Duration(math.Pow(histGrowth, float64(b)))
}

// Observe records one sample.
func (h *Histogram) Observe(d sim.Duration) {
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += float64(d)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// ObserveTraced records one sample and, when trace != 0, offers it as the
// bucket's exemplar. The exemplar is replaced only by a strictly greater
// value, so for a fixed observation sequence (deterministic under the sim
// kernel) the exemplar set is deterministic regardless of ties.
func (h *Histogram) ObserveTraced(d sim.Duration, trace uint64) {
	h.Observe(d)
	if trace == 0 {
		return
	}
	b := bucketOf(d)
	ex, ok := h.exemplars[b]
	if ok && d <= ex.Value {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make(map[int]Exemplar)
	}
	h.exemplars[b] = Exemplar{Bucket: b, Trace: trace, Value: d}
}

// Exemplars returns all bucket exemplars sorted by bucket (ascending
// value order), empty if no traced samples were observed.
func (h *Histogram) Exemplars() []Exemplar {
	if len(h.exemplars) == 0 {
		return nil
	}
	out := make([]Exemplar, 0, len(h.exemplars))
	for _, ex := range h.exemplars {
		out = append(out, ex)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}

// ExemplarNear returns the exemplar closest to the q-quantile: the one in
// the highest occupied bucket not above Quantile(q)'s bucket, falling back
// to the lowest exemplar above it. ok is false if no exemplars exist.
func (h *Histogram) ExemplarNear(q float64) (Exemplar, bool) {
	exs := h.Exemplars()
	if len(exs) == 0 {
		return Exemplar{}, false
	}
	qb := bucketOf(h.Quantile(q))
	best := exs[0]
	for _, ex := range exs {
		if ex.Bucket > qb {
			break
		}
		best = ex
	}
	return best, true
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the arithmetic mean of all samples (0 if empty).
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return sim.Duration(h.sum / float64(h.count))
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() sim.Duration { return h.max }

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1), accurate to
// the bucket width (~7%). Exact min/max are returned at the extremes.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var cum int64
	for _, b := range keys {
		cum += h.buckets[b]
		if cum >= target {
			u := bucketUpper(b)
			// Clamp to the observed range: bucketUpper of the lowest
			// occupied bucket can fall below the recorded minimum (the
			// bucket's upper bound is only within ~7% of its samples),
			// and a quantile below Min() misleads every consumer.
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// P50, P99 are convenience quantiles.
func (h *Histogram) P50() sim.Duration { return h.Quantile(0.50) }
func (h *Histogram) P99() sim.Duration { return h.Quantile(0.99) }

// HistogramSnapshot is a point-in-time copy of a Histogram's bucket state,
// taken with Snapshot. Holding one lets a consumer compute windowed
// statistics (count, mean, quantiles of only the samples observed since the
// snapshot) from a cumulative histogram — how the telemetry SLO watchdog
// gets a per-scrape p99 without resetting the shared instrument.
type HistogramSnapshot struct {
	buckets map[int]int64
	count   int64
	sum     float64
}

// Snapshot copies the histogram's current bucket state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{buckets: make(map[int]int64, len(h.buckets)), count: h.count, sum: h.sum}
	for b, n := range h.buckets {
		s.buckets[b] = n
	}
	return s
}

// CountSince returns the number of samples observed since prev was taken.
func (h *Histogram) CountSince(prev HistogramSnapshot) int64 { return h.count - prev.count }

// MeanSince returns the mean of the samples observed since prev was taken
// (0 if none).
func (h *Histogram) MeanSince(prev HistogramSnapshot) sim.Duration {
	n := h.count - prev.count
	if n <= 0 {
		return 0
	}
	return sim.Duration((h.sum - prev.sum) / float64(n))
}

// QuantileSince returns an upper bound on the q-quantile of only the samples
// observed since prev was taken (0 if none), accurate to the bucket width.
// The result is clamped to the histogram's lifetime max; the per-window
// minimum is not tracked, so the low extreme is bucket-resolution only.
func (h *Histogram) QuantileSince(prev HistogramSnapshot, q float64) sim.Duration {
	n := h.count - prev.count
	if n <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var cum int64
	for _, b := range keys {
		cum += h.buckets[b] - prev.buckets[b]
		if cum >= target {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Meter measures throughput: bytes (or operations) accumulated over a
// virtual-time window.
type Meter struct {
	bytes int64
	start sim.Time
	end   sim.Time
}

// NewMeter returns a meter whose window opens at start.
func NewMeter(start sim.Time) *Meter { return &Meter{start: start, end: start} }

// Record adds n bytes/ops observed at time t.
func (m *Meter) Record(t sim.Time, n int64) {
	m.bytes += n
	if t > m.end {
		m.end = t
	}
}

// CloseAt fixes the window end (e.g. the experiment end time).
func (m *Meter) CloseAt(t sim.Time) {
	if t > m.end {
		m.end = t
	}
}

// Total returns total bytes/ops recorded.
func (m *Meter) Total() int64 { return m.bytes }

// Window returns the elapsed window.
func (m *Meter) Window() sim.Duration { return m.end.Sub(m.start) }

// PerSecond returns the average rate over the window.
func (m *Meter) PerSecond() float64 {
	w := m.Window().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(m.bytes) / w
}

// Gbps returns the average rate in gigabits per second.
func (m *Meter) Gbps() float64 { return m.PerSecond() * 8 / 1e9 }

// MBps returns the average rate in megabytes (1e6) per second.
func (m *Meter) MBps() float64 { return m.PerSecond() / 1e6 }

// Series is an ordered list of (time, value) points, used for
// throughput-over-time and latency-over-offset plots.
type Series struct {
	Name   string
	Points []Point
}

// Point is a single sample in a Series.
type Point struct {
	T sim.Time
	V float64
}

// Add appends a point.
func (s *Series) Add(t sim.Time, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Mean returns the mean of point values (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, pt := range s.Points {
		sum += pt.V
	}
	return sum / float64(len(s.Points))
}

// Stats summarizes a plain slice of float64 observations.
type Stats struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes summary statistics for xs.
func Summarize(xs []float64) Stats {
	st := Stats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		st.Min, st.Max = 0, 0
		return st
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < st.Min {
			st.Min = x
		}
		if x > st.Max {
			st.Max = x
		}
	}
	st.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - st.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		st.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return st
}

// CV returns the coefficient of variation (std/mean), the hot-spot metric
// used in experiment E3: near 0 means perfectly balanced load.
func (s Stats) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// FormatBytes renders a byte count with a binary-prefix unit.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPEZY"[exp])
}
