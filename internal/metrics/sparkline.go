package metrics

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// sparkRunes are the eight block-element levels used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip — benchrunner uses
// it for throughput-over-time views (e.g. the E10 failure dip).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// TimeSeries samples a counter-like value into fixed windows so that a
// throughput-over-time strip can be rendered afterwards.
type TimeSeries struct {
	start  sim.Time
	window sim.Duration
	vals   []float64
}

// NewTimeSeries begins sampling at start with the given window width.
func NewTimeSeries(start sim.Time, window sim.Duration) *TimeSeries {
	return &TimeSeries{start: start, window: window}
}

// Record adds v at time t to the matching window.
func (ts *TimeSeries) Record(t sim.Time, v float64) {
	if t < ts.start {
		return
	}
	idx := int(t.Sub(ts.start) / ts.window)
	for len(ts.vals) <= idx {
		ts.vals = append(ts.vals, 0)
	}
	ts.vals[idx] += v
}

// Values returns the per-window totals.
func (ts *TimeSeries) Values() []float64 { return append([]float64(nil), ts.vals...) }

// Spark renders the series as a sparkline with a caption.
func (ts *TimeSeries) Spark(caption string) string {
	return fmt.Sprintf("%s [%s] (%d windows of %v)", caption, Sparkline(ts.vals), len(ts.vals), ts.window)
}
