package metrics

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// sparkRunes are the eight block-element levels used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip — benchrunner uses
// it for throughput-over-time views (e.g. the E10 failure dip).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	// Non-finite inputs must not reach the index arithmetic: NaN poisons
	// min/max and converts to an out-of-range rune index. They render as
	// a blank cell instead.
	first := true
	var min, max float64
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if first || v < min {
			min = v
		}
		if first || v > max {
			max = v
		}
		first = false
	}
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			sb.WriteRune(' ')
			continue
		}
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx > len(sparkRunes)-1 {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// TimeSeries samples a counter-like value into fixed windows so that a
// throughput-over-time strip can be rendered afterwards.
type TimeSeries struct {
	start   sim.Time
	window  sim.Duration
	vals    []float64
	dropped int64
}

// NewTimeSeries begins sampling at start with the given window width.
func NewTimeSeries(start sim.Time, window sim.Duration) *TimeSeries {
	return &TimeSeries{start: start, window: window}
}

// maxTimeSeriesWindows bounds how far Record will grow the window slice:
// one stray far-future timestamp must not allocate gigabytes. 1<<20
// windows is ~12 days at the 1 s windows experiments use.
const maxTimeSeriesWindows = 1 << 20

// Record adds v at time t to the matching window. Samples before the
// series start or beyond maxTimeSeriesWindows windows are dropped (the
// drop count is available via Dropped).
func (ts *TimeSeries) Record(t sim.Time, v float64) {
	if t < ts.start || ts.window <= 0 {
		return
	}
	idx64 := int64(t.Sub(ts.start) / ts.window)
	if idx64 >= maxTimeSeriesWindows {
		ts.dropped++
		return
	}
	idx := int(idx64)
	for len(ts.vals) <= idx {
		ts.vals = append(ts.vals, 0)
	}
	ts.vals[idx] += v
}

// Dropped reports samples discarded because their window index exceeded
// the growth cap.
func (ts *TimeSeries) Dropped() int64 { return ts.dropped }

// Values returns the per-window totals.
func (ts *TimeSeries) Values() []float64 { return append([]float64(nil), ts.vals...) }

// Spark renders the series as a sparkline with a caption.
func (ts *TimeSeries) Spark(caption string) string {
	return fmt.Sprintf("%s [%s] (%d windows of %v)", caption, Sparkline(ts.vals), len(ts.vals), ts.window)
}
