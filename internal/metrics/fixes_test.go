package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/sim"
)

// Regression: NaN/±Inf inputs used to convert to an out-of-range rune
// index and panic. They must render as blanks and leave the finite
// values' scaling intact.
func TestSparklineNonFinite(t *testing.T) {
	cases := [][]float64{
		{math.NaN()},
		{math.Inf(1)},
		{math.Inf(-1)},
		{1, math.NaN(), 3},
		{math.Inf(-1), 0, math.Inf(1)},
		{math.NaN(), math.NaN()},
	}
	for _, vals := range cases {
		s := Sparkline(vals) // must not panic
		if utf8.RuneCountInString(s) != len(vals) {
			t.Fatalf("Sparkline(%v) = %q: %d runes, want %d", vals, s, utf8.RuneCountInString(s), len(vals))
		}
	}
	// Non-finite cells are blank; finite neighbours still span the ramp.
	s := Sparkline([]float64{0, math.NaN(), 10})
	runes := []rune(s)
	if runes[1] != ' ' {
		t.Fatalf("NaN cell = %q, want blank (full strip %q)", runes[1], s)
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("finite cells lost scaling: %q", s)
	}
}

// The index arithmetic must stay clamped even for adversarial finite
// values near the float boundaries.
func TestSparklineExtremeFinite(t *testing.T) {
	s := Sparkline([]float64{-math.MaxFloat64, math.MaxFloat64})
	if utf8.RuneCountInString(s) != 2 {
		t.Fatalf("strip = %q", s)
	}
	if strings.ContainsRune(s, ' ') {
		t.Fatalf("finite values rendered blank: %q", s)
	}
}

// Regression: one far-future timestamp used to grow vals unboundedly
// (gigabytes for a stray t). Past the window cap the sample is dropped
// and counted instead.
func TestTimeSeriesGrowthCap(t *testing.T) {
	ts := NewTimeSeries(0, sim.Second)
	ts.Record(0, 1)
	// ~31 years in the future at 1 s windows: far past the cap.
	ts.Record(sim.Time(1_000_000_000)*sim.Time(sim.Second), 1)
	if n := len(ts.Values()); n > maxTimeSeriesWindows {
		t.Fatalf("vals grew to %d windows", n)
	}
	if ts.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", ts.Dropped())
	}
	// The last in-range window still records.
	edge := sim.Time(maxTimeSeriesWindows-1) * sim.Time(sim.Second)
	ts.Record(edge, 2)
	if ts.Dropped() != 1 {
		t.Fatalf("in-range edge sample dropped")
	}
	if vals := ts.Values(); vals[maxTimeSeriesWindows-1] != 2 {
		t.Fatalf("edge window = %v, want 2", vals[maxTimeSeriesWindows-1])
	}
	// First out-of-range index drops.
	ts.Record(edge+sim.Time(sim.Second), 3)
	if ts.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", ts.Dropped())
	}
}

func TestTimeSeriesZeroWindow(t *testing.T) {
	ts := &TimeSeries{} // zero window must not divide by zero
	ts.Record(sim.Time(sim.Second), 1)
	if len(ts.Values()) != 0 {
		t.Fatalf("zero-window series recorded %v", ts.Values())
	}
}

// Regression: Quantile returned bucketUpper, which for low q could fall
// below the recorded Min. The result must stay within [Min, Max].
func TestHistogramQuantileClamped(t *testing.T) {
	// Single sample: every quantile is that sample.
	h := NewHistogram()
	h.Observe(123456)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 123456 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 123456", q, got)
		}
	}

	// Bucket-edge values: all samples in one bucket, low quantiles must
	// not dip below Min.
	h2 := NewHistogram()
	samples := []sim.Duration{1000, 1001, 1002, 1069}
	for _, d := range samples {
		h2.Observe(d)
	}
	for _, q := range []float64{0, 0.001, 0.25, 0.5, 0.75, 0.99, 1} {
		got := h2.Quantile(q)
		if got < h2.Min() || got > h2.Max() {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, got, h2.Min(), h2.Max())
		}
	}
	if h2.Quantile(0) != h2.Min() {
		t.Fatalf("Quantile(0) = %v, want Min %v", h2.Quantile(0), h2.Min())
	}
	if h2.Quantile(1) != h2.Max() {
		t.Fatalf("Quantile(1) = %v, want Max %v", h2.Quantile(1), h2.Max())
	}

	// Wide spread: the invariant holds across many buckets too.
	h3 := NewHistogram()
	for d := sim.Duration(1); d < 1_000_000; d *= 3 {
		h3.Observe(d)
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h3.Quantile(q)
		if got < h3.Min() || got > h3.Max() {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, got, h3.Min(), h3.Max())
		}
	}
}
