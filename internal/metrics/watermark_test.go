package metrics

import (
	"testing"

	"repro/internal/sim"
)

func TestGaugeMinWatermark(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-8)
	g.Add(10)
	if g.Value() != 7 {
		t.Fatalf("Value = %d, want 7", g.Value())
	}
	if g.Max() != 7 {
		t.Fatalf("Max = %d, want 7", g.Max())
	}
	if g.Min() != -3 {
		t.Fatalf("Min = %d, want -3", g.Min())
	}
}

func TestGaugeZeroValueWatermarks(t *testing.T) {
	// The zero Gauge has observed the value 0, so both watermarks start
	// there: a gauge that only ever rises keeps Min = 0.
	var g Gauge
	g.Add(3)
	if g.Min() != 0 {
		t.Fatalf("Min = %d, want 0", g.Min())
	}
	if g.Max() != 3 {
		t.Fatalf("Max = %d, want 3", g.Max())
	}
}

func TestGaugeSetMovesWatermarks(t *testing.T) {
	var g Gauge
	g.Set(-4)
	g.Set(9)
	if g.Min() != -4 || g.Max() != 9 {
		t.Fatalf("watermarks = [%d, %d], want [-4, 9]", g.Min(), g.Max())
	}
}

func TestGaugeReset(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-8)
	g.Reset()
	if g.Value() != -3 {
		t.Fatalf("Reset changed the value: %d", g.Value())
	}
	if g.Max() != -3 || g.Min() != -3 {
		t.Fatalf("watermarks after Reset = [%d, %d], want [-3, -3]", g.Min(), g.Max())
	}
	g.Add(1)
	if g.Max() != -2 || g.Min() != -3 {
		t.Fatalf("watermarks after Reset+Add = [%d, %d], want [-3, -2]", g.Min(), g.Max())
	}
}

func TestMeterClosedAtStart(t *testing.T) {
	// A meter created and closed at the same instant must report zero
	// rates, not Inf/NaN — the empty measurement window a scraper can
	// produce at startup.
	start := sim.Time(3 * sim.Second)
	m := NewMeter(start)
	m.CloseAt(start)
	if m.PerSecond() != 0 || m.Gbps() != 0 || m.MBps() != 0 {
		t.Fatalf("zero-window rates = %v B/s, %v Gb/s, %v MB/s, want all 0",
			m.PerSecond(), m.Gbps(), m.MBps())
	}
}

func TestHistogramSnapshotWindow(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(sim.Millisecond)
	}
	snap := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(20 * sim.Millisecond)
	}
	if n := h.CountSince(snap); n != 100 {
		t.Fatalf("CountSince = %d, want 100", n)
	}
	// The lifetime p50 straddles both populations; the windowed quantiles
	// see only the slow second batch.
	if p50 := h.QuantileSince(snap, 0.50); p50 < 15*sim.Millisecond {
		t.Fatalf("windowed p50 = %v, want ≈20ms", p50)
	}
	if mean := h.MeanSince(snap); mean < 15*sim.Millisecond {
		t.Fatalf("windowed mean = %v, want ≈20ms", mean)
	}
	if lifetime := h.P50(); lifetime > 5*sim.Millisecond {
		t.Fatalf("lifetime p50 = %v, want ≈1ms (both batches pooled)", lifetime)
	}
}

func TestHistogramSnapshotEmptyWindow(t *testing.T) {
	h := NewHistogram()
	h.Observe(sim.Millisecond)
	snap := h.Snapshot()
	if n := h.CountSince(snap); n != 0 {
		t.Fatalf("CountSince on empty window = %d, want 0", n)
	}
	if q := h.QuantileSince(snap, 0.99); q != 0 {
		t.Fatalf("QuantileSince on empty window = %v, want 0", q)
	}
	if m := h.MeanSince(snap); m != 0 {
		t.Fatalf("MeanSince on empty window = %v, want 0", m)
	}
}

func TestHistogramZeroSnapshotIsLifetime(t *testing.T) {
	// The zero-value snapshot means "since the beginning": windowed reads
	// against it must agree with the lifetime accessors.
	h := NewHistogram()
	for i := 1; i <= 50; i++ {
		h.Observe(sim.Duration(i) * sim.Millisecond)
	}
	var zero HistogramSnapshot
	if h.CountSince(zero) != h.Count() {
		t.Fatalf("CountSince(zero) = %d, want %d", h.CountSince(zero), h.Count())
	}
	if h.QuantileSince(zero, 0.99) != h.P99() {
		t.Fatalf("QuantileSince(zero, .99) = %v, want %v", h.QuantileSince(zero, 0.99), h.P99())
	}
}
