package stripe

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func stream(t *testing.T, cfg Config, bytes int64) Result {
	t.Helper()
	k := sim.NewKernel(1)
	s, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	k.Go("stream", func(p *sim.Proc) {
		var serr error
		res, serr = s.Stream(p, bytes)
		if serr != nil {
			t.Errorf("stream: %v", serr)
		}
	})
	k.Run()
	return res
}

const gib = int64(1) << 30

func TestOneBladeLimitedByFC(t *testing.T) {
	res := stream(t, Config{Blades: 1}, gib/4)
	// One blade = 2 × 2 Gb/s FC = 4 Gb/s.
	if g := res.Gbps(); math.Abs(g-4.0) > 0.2 {
		t.Fatalf("1 blade = %.2f Gb/s, want ~4", g)
	}
}

func TestTwoBladesDouble(t *testing.T) {
	res := stream(t, Config{Blades: 2}, gib/2)
	if g := res.Gbps(); math.Abs(g-8.0) > 0.4 {
		t.Fatalf("2 blades = %.2f Gb/s, want ~8", g)
	}
}

func TestFourBladesSaturatePort(t *testing.T) {
	// The paper's headline: four blades × 2×2 Gb/s FC drive a 10 Gb/s
	// port at ~wire speed.
	res := stream(t, Config{Blades: 4}, gib)
	if g := res.Gbps(); g < 9.5 || g > 10.01 {
		t.Fatalf("4 blades = %.2f Gb/s, want ~10 (port limited)", g)
	}
}

func TestEightBladesStillPortLimited(t *testing.T) {
	r4 := stream(t, Config{Blades: 4}, gib/2)
	r8 := stream(t, Config{Blades: 8}, gib/2)
	if r8.Gbps() > r4.Gbps()*1.05 {
		t.Fatalf("8 blades (%.2f) exceeded port limit seen at 4 (%.2f)", r8.Gbps(), r4.Gbps())
	}
	if r8.Gbps() < 9.0 {
		t.Fatalf("8 blades = %.2f Gb/s, want port-limited ~10", r8.Gbps())
	}
}

func TestAllBytesDelivered(t *testing.T) {
	total := int64(100<<20 + 12345) // non-chunk-aligned tail
	res := stream(t, Config{Blades: 3}, total)
	if res.Bytes != total {
		t.Fatalf("delivered %d bytes, want %d", res.Bytes, total)
	}
}

func TestReorderBounded(t *testing.T) {
	res := stream(t, Config{Blades: 4}, gib/4)
	// Round-robin striping over equal links keeps reordering small —
	// a reassembly buffer of a few chunks suffices.
	if res.MaxReorder > 16 {
		t.Fatalf("reorder depth %d; expected a small reassembly window", res.MaxReorder)
	}
}

func TestEncryptionEngineThrottles(t *testing.T) {
	// Each blade's encryption engine at 1 Gb/s caps a 1-blade stream at
	// ~1 Gb/s even though FC supplies 4.
	res := stream(t, Config{Blades: 1, EncBps: 1_000_000_000}, gib/8)
	if g := res.Gbps(); math.Abs(g-1.0) > 0.1 {
		t.Fatalf("encrypted 1-blade stream = %.2f Gb/s, want ~1", g)
	}
	// Parallelism restores wire speed: 8 blades × 1 Gb/s engines ≈ 8 Gb/s.
	res8 := stream(t, Config{Blades: 8, EncBps: 1_000_000_000}, gib/2)
	if g := res8.Gbps(); g < 7.0 {
		t.Fatalf("encrypted 8-blade stream = %.2f Gb/s, want ~8 (wire speed by parallelism)", g)
	}
}

func TestSlowFCVariant(t *testing.T) {
	// With 1 Gb/s FC (the paper's older rate), one blade gives ~2 Gb/s.
	res := stream(t, Config{Blades: 1, FCLink: simnet.FC1G}, gib/8)
	if g := res.Gbps(); math.Abs(g-2.0) > 0.15 {
		t.Fatalf("1 blade on FC1G = %.2f Gb/s, want ~2", g)
	}
}

func TestSweep(t *testing.T) {
	k := sim.NewKernel(1)
	counts := []int{1, 2, 4}
	results, err := Sweep(k, Config{}, counts, gib/4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Monotone non-decreasing throughput with more blades.
	for i := 1; i < len(results); i++ {
		if results[i].Gbps() < results[i-1].Gbps()*0.99 {
			t.Fatalf("throughput decreased adding blades: %v", results)
		}
	}
	tab := Table(counts, results, 2_000_000_000, 10_000_000_000)
	if tab.String() == "" {
		t.Fatal("empty table")
	}
}

func TestBadConfig(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(k, Config{Blades: 0}); err == nil {
		t.Fatal("0 blades accepted")
	}
	s, _ := New(k, Config{Blades: 1})
	k.Go("t", func(p *sim.Proc) {
		if _, err := s.Stream(p, 0); err == nil {
			t.Error("zero-byte stream accepted")
		}
	})
	k.Run()
}
