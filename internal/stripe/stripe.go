// Package stripe implements Figure 1 of the paper: driving a high-speed
// network link by striping a large read, round robin, over several
// controller blades. Each blade ingests from the disk farm over two Fibre
// Channel connections and the blades take turns feeding one high-speed
// port. With 2 Gb/s FC, one blade sustains ~4 Gb/s, two ~8 Gb/s, and four
// saturate a 10 Gb/s port — the paper's arithmetic.
//
// The chain for every chunk is
//
//	farm --FC link--> blade FC port --enc engine--> switch --10GbE--> port
//
// where the encryption stage is an optional per-blade bandwidth (§8.1);
// with it disabled the stage is free.
package stripe

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config describes the Figure-1 topology.
type Config struct {
	// Blades is the number of controller blades striped over.
	Blades int
	// FCPerBlade is the number of Fibre Channel ingest links per blade
	// (the paper's blades have two).
	FCPerBlade int
	// FCLink is each ingest link's spec (default simnet.FC2G).
	FCLink simnet.LinkSpec
	// PortLink is the high-speed egress (default simnet.GbE10).
	PortLink simnet.LinkSpec
	// ChunkBytes is the striping unit (default 256 KiB).
	ChunkBytes int
	// EncBps, when nonzero, inserts a per-blade encryption engine of this
	// rate into the path (§5.1/§8.1). Zero = no encryption stage.
	EncBps int64
	// Tracer, when non-nil and enabled, records one trace per chunk:
	// an op root with fc-ingest (farm→FC link) and egress (FC→port)
	// child spans, giving E1 a per-phase latency breakdown.
	Tracer *trace.Tracer
	// Telemetry, when non-nil, registers the topology's counters (notably
	// net/link/<from>-<to>/bytes for every FC ingest link and the shared
	// egress port) into the registry at construction, so a streamed
	// transfer's link balance is observable (E1's skew table).
	Telemetry *telemetry.Registry
}

// Result summarizes one streamed transfer.
type Result struct {
	Bytes   int64
	Elapsed sim.Duration
	Chunks  int
	// MaxReorder is the largest distance between a chunk's arrival rank
	// and its stripe index — what a port-side reassembly buffer absorbs.
	MaxReorder int
}

// Gbps returns the achieved stream rate.
func (r Result) Gbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes*8) / r.Elapsed.Seconds() / 1e9
}

// Streamer owns a Figure-1 topology on its own network.
type Streamer struct {
	k   *sim.Kernel
	cfg Config
	net *simnet.Network
	fcs []simnet.Addr // one address per (blade, FC link)
}

// New builds the topology.
func New(k *sim.Kernel, cfg Config) (*Streamer, error) {
	if cfg.Blades <= 0 {
		return nil, fmt.Errorf("stripe: need ≥1 blade")
	}
	if cfg.FCPerBlade <= 0 {
		cfg.FCPerBlade = 2
	}
	if cfg.FCLink == (simnet.LinkSpec{}) {
		cfg.FCLink = simnet.FC2G
	}
	if cfg.PortLink == (simnet.LinkSpec{}) {
		cfg.PortLink = simnet.GbE10
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 256 << 10
	}
	s := &Streamer{k: k, cfg: cfg, net: simnet.New(k)}
	s.net.Connect("switch", "port", cfg.PortLink)
	for b := 0; b < cfg.Blades; b++ {
		enc := simnet.Addr(fmt.Sprintf("blade%d.enc", b))
		// One encryption engine per blade: both FC ports funnel through it.
		engineLink := simnet.LinkSpec{Latency: sim.Microsecond}
		if cfg.EncBps > 0 {
			engineLink.BandwidthBps = cfg.EncBps
		}
		for l := 0; l < cfg.FCPerBlade; l++ {
			fc := simnet.Addr(fmt.Sprintf("blade%d.fc%d", b, l))
			s.net.Connect("farm", fc, cfg.FCLink)
			s.net.Connect(fc, enc, simnet.LinkSpec{Latency: sim.Microsecond})
			s.fcs = append(s.fcs, fc)
		}
		s.net.Connect(enc, "switch", engineLink)
	}
	if cfg.Telemetry != nil {
		s.net.RegisterTelemetry(cfg.Telemetry.Sub("net"))
	}
	return s, nil
}

// chunkTag carries the stripe index through the pipeline.
type chunkTag struct{ idx int }

// Stream pushes totalBytes through the striped pipeline, blocking p until
// the last byte reaches the port, and returns the achieved rate.
func (s *Streamer) Stream(p *sim.Proc, totalBytes int64) (Result, error) {
	if totalBytes <= 0 {
		return Result{}, fmt.Errorf("stripe: nothing to stream")
	}
	chunk := int64(s.cfg.ChunkBytes)
	nChunks := int((totalBytes + chunk - 1) / chunk)
	done := sim.NewFuture[sim.Time](s.k)
	arrived := 0
	maxReorder := 0
	var delivered int64

	// Per-chunk span handles, indexed by stripe index. Handlers run as
	// kernel callbacks in deterministic delivery order, so span start/end
	// order is reproducible per seed.
	var roots, ingests, egresses []*trace.Active
	if s.cfg.Tracer.Enabled() {
		roots = make([]*trace.Active, nChunks)
		ingests = make([]*trace.Active, nChunks)
		egresses = make([]*trace.Active, nChunks)
	}

	s.net.Node("port").Handle(func(m simnet.Message) {
		tag := m.Payload.(chunkTag)
		if roots != nil {
			egresses[tag.idx].End()
			roots[tag.idx].End()
		}
		if d := tag.idx - arrived; d > maxReorder {
			maxReorder = d
		}
		if d := arrived - tag.idx; d > maxReorder {
			maxReorder = d
		}
		arrived++
		delivered += int64(m.Size)
		if arrived == nChunks {
			done.Set(s.k.Now())
		}
	})

	// Each FC endpoint forwards ingested chunks toward the port.
	for _, fc := range s.fcs {
		fc := fc
		s.net.Node(fc).Handle(func(m simnet.Message) {
			if roots != nil {
				tag := m.Payload.(chunkTag)
				ingests[tag.idx].End()
				egresses[tag.idx] = roots[tag.idx].Child("egress", trace.Queue, "port")
			}
			s.net.Send(simnet.Message{From: fc, To: "port", Payload: m.Payload, Size: m.Size})
		})
	}

	start := s.k.Now()
	// The farm supplies chunks round-robin across every FC link; link
	// serialization (busyUntil queueing) is the natural 2 Gb/s throttle.
	rem := totalBytes
	for i := 0; i < nChunks; i++ {
		size := chunk
		if rem < size {
			size = rem
		}
		rem -= size
		fc := s.fcs[i%len(s.fcs)]
		if roots != nil {
			roots[i] = s.cfg.Tracer.StartTrace("chunk", trace.Op, "farm")
			ingests[i] = roots[i].Child("fc-ingest", trace.Fabric, string(fc))
		}
		if _, ok := s.net.Send(simnet.Message{From: "farm", To: fc, Payload: chunkTag{idx: i}, Size: int(size)}); !ok {
			return Result{}, fmt.Errorf("stripe: send to %s failed", fc)
		}
	}
	end := done.Wait(p)
	return Result{
		Bytes:      delivered,
		Elapsed:    end.Sub(start),
		Chunks:     nChunks,
		MaxReorder: maxReorder,
	}, nil
}

// Sweep streams totalBytes for each blade count in counts (rebuilding the
// topology each time) and returns one Result per count — the E1 series.
func Sweep(k *sim.Kernel, base Config, counts []int, totalBytes int64) ([]Result, error) {
	var out []Result
	for _, n := range counts {
		cfg := base
		cfg.Blades = n
		s, err := New(k, cfg)
		if err != nil {
			return nil, err
		}
		var res Result
		var serr error
		grp := sim.NewGroup(k)
		grp.Add(1)
		k.Go(fmt.Sprintf("stream%d", n), func(p *sim.Proc) {
			defer grp.Done()
			res, serr = s.Stream(p, totalBytes)
		})
		k.Run()
		if serr != nil {
			return nil, serr
		}
		out = append(out, res)
	}
	return out, nil
}

// Table renders a Sweep as the E1 table.
func Table(counts []int, results []Result, fcBps int64, portBps int64) *metrics.Table {
	tab := metrics.NewTable("E1 — Figure 1: single-stream rate vs striped blades",
		"blades", "disk-side Gb/s", "achieved Gb/s", "port limit Gb/s", "reorder depth")
	for i, n := range counts {
		diskSide := float64(n) * 2 * float64(fcBps) / 1e9
		tab.AddRow(n, diskSide, results[i].Gbps(), float64(portBps)/1e9, results[i].MaxReorder)
	}
	return tab
}
