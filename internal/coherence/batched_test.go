package coherence

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// TestBatchedReadVector covers the getsb grant path: cold misses come from
// the backing store, a repeat of the same vector is served entirely local.
func TestBatchedReadVector(t *testing.T) {
	h := newHarness(3, 4, 64)
	keys := make([]cache.Key, 6)
	for i := range keys {
		keys[i] = kb(int64(10 + i))
		h.backing.data[keys[i]] = blk(byte(100 + i))
	}
	h.run(func(p *sim.Proc) {
		e := h.engines[0]
		out, err := e.ReadBlocksBatched(p, keys, 0)
		if err != nil {
			t.Fatalf("cold read: %v", err)
		}
		for i := range keys {
			if out[i][0] != byte(100+i) {
				t.Fatalf("cold read key %d = %d, want %d", i, out[i][0], 100+i)
			}
		}
		out, err = e.ReadBlocksBatched(p, keys, 0)
		if err != nil {
			t.Fatalf("warm read: %v", err)
		}
		for i := range keys {
			if out[i][0] != byte(100+i) {
				t.Fatalf("warm read key %d = %d, want %d", i, out[i][0], 100+i)
			}
		}
	})
	if hits := h.engines[0].Stats().LocalHits; hits != int64(len(keys)) {
		t.Fatalf("warm pass local hits = %d, want %d", hits, len(keys))
	}
	checkDirectoryInvariants(t, h, 20)
}

// TestBatchedDirtyForwarding covers getsb → downgradeb owner-forwarding:
// a vector written on one blade reads correctly from another while the
// owner's copies are still dirty, and the reader does not install them.
func TestBatchedDirtyForwarding(t *testing.T) {
	h := newHarness(5, 4, 64)
	keys := make([]cache.Key, 5)
	vals := make([][]byte, 5)
	for i := range keys {
		keys[i] = kb(int64(20 + i))
		vals[i] = blk(byte(50 + i))
	}
	h.run(func(p *sim.Proc) {
		if err := h.engines[1].WriteBlocksBatched(p, keys, vals, 0, 0); err != nil {
			t.Fatalf("write vector: %v", err)
		}
		out, err := h.engines[2].ReadBlocksBatched(p, keys, 0)
		if err != nil {
			t.Fatalf("read vector: %v", err)
		}
		for i := range keys {
			if out[i][0] != byte(50+i) {
				t.Fatalf("read key %d = %d, want %d", i, out[i][0], 50+i)
			}
		}
	})
	// Dirty owner-forwarding must not install on the reader (NoCache).
	for _, key := range keys {
		if _, ok := h.engines[2].cache.Peek(key); ok {
			t.Fatalf("reader cached dirty-forwarded key %v", key)
		}
	}
	if pf := h.engines[2].Stats().PeerFetches; pf != int64(len(keys)) {
		t.Fatalf("peer fetches = %d, want %d", pf, len(keys))
	}
	checkDirectoryInvariants(t, h, 30)
}

// TestBatchedWriteInvalidatesSharers covers getxb → invb: after two blades
// share a vector, a batched write from a third invalidates both and later
// reads see the new data.
func TestBatchedWriteInvalidatesSharers(t *testing.T) {
	h := newHarness(7, 4, 64)
	keys := make([]cache.Key, 4)
	newVals := make([][]byte, 4)
	for i := range keys {
		keys[i] = kb(int64(i))
		h.backing.data[keys[i]] = blk(1)
		newVals[i] = blk(byte(200 + i))
	}
	h.run(func(p *sim.Proc) {
		for _, r := range []int{0, 2} {
			if _, err := h.engines[r].ReadBlocksBatched(p, keys, 0); err != nil {
				t.Fatalf("share read blade %d: %v", r, err)
			}
		}
		if err := h.engines[1].WriteBlocksBatched(p, keys, newVals, 0, 0); err != nil {
			t.Fatalf("write vector: %v", err)
		}
		for _, r := range []int{0, 2, 3} {
			out, err := h.engines[r].ReadBlocksBatched(p, keys, 0)
			if err != nil {
				t.Fatalf("post-write read blade %d: %v", r, err)
			}
			for i := range keys {
				if out[i][0] != byte(200+i) {
					t.Fatalf("blade %d key %d read %d, want %d", r, i, out[i][0], 200+i)
				}
			}
		}
	})
	inv := int64(0)
	for _, e := range h.engines {
		inv += e.Stats().Invalidations
	}
	if inv == 0 {
		t.Fatal("no invalidations — invb path not exercised")
	}
	checkDirectoryInvariants(t, h, len(keys))
}

// TestBatchedUnbatchedConverge is the ISSUE's convergence property: the
// same sequential schedule of vector operations, driven once through the
// per-key plane and once through the batched plane, must return identical
// data on every read and leave both clusters in a final state where every
// key reads back the last acked write, with directory invariants intact.
// Sequential schedules make "identical" exact; concurrent interleavings
// are covered by TestBatchedConcurrentInvariants below.
func TestBatchedUnbatchedConverge(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 7, 11, 42, 99, 1234, 2024, 31337, 98765}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runConvergenceProperty(t, seed)
		})
	}
}

// vecOp is one step of the shared schedule.
type vecOp struct {
	blade int
	write bool
	keys  []int64
	vals  [][]byte // writes only
}

func makeSchedule(seed int64, blades, keyspace, steps int) []vecOp {
	rng := rand.New(rand.NewSource(seed * 13))
	seq := make(map[int64]int)
	ops := make([]vecOp, steps)
	for s := range ops {
		n := 1 + rng.Intn(6)
		picked := make(map[int64]bool, n)
		op := vecOp{blade: rng.Intn(blades), write: rng.Intn(10) < 4}
		for len(op.keys) < n {
			k := int64(rng.Intn(keyspace))
			if picked[k] {
				continue
			}
			picked[k] = true
			op.keys = append(op.keys, k)
			if op.write {
				seq[k]++
				op.vals = append(op.vals, wval(int(k), seq[k]))
			}
		}
		ops[s] = op
	}
	return ops
}

// runSchedule executes ops on a fresh harness, checking every read against
// the last-acked model, and returns the final per-key read-back.
func runSchedule(t *testing.T, seed int64, ops []vecOp, blades, keyspace, cacheBlocks int, batched bool) map[int64][]byte {
	t.Helper()
	h := newHarness(seed, blades, cacheBlocks)
	model := make(map[int64][]byte)
	final := make(map[int64][]byte)
	plane := "per-key"
	if batched {
		plane = "batched"
	}
	h.run(func(p *sim.Proc) {
		for s, op := range ops {
			e := h.engines[op.blade]
			keys := make([]cache.Key, len(op.keys))
			for i, k := range op.keys {
				keys[i] = kb(k)
			}
			if op.write {
				if batched {
					if err := e.WriteBlocksBatched(p, keys, op.vals, 0, 0); err != nil {
						t.Fatalf("%s step %d write: %v", plane, s, err)
					}
				} else {
					for i, key := range keys {
						if err := e.WriteBlockR(p, key, op.vals[i], 0, 0); err != nil {
							t.Fatalf("%s step %d write key %v: %v", plane, s, key, err)
						}
					}
				}
				for i, k := range op.keys {
					model[k] = op.vals[i]
				}
				continue
			}
			var out [][]byte
			var err error
			if batched {
				out, err = e.ReadBlocksBatched(p, keys, 0)
			} else {
				out = make([][]byte, len(keys))
				for i, key := range keys {
					out[i], err = e.ReadBlock(p, key, 0)
					if err != nil {
						break
					}
				}
			}
			if err != nil {
				t.Fatalf("%s step %d read: %v", plane, s, err)
			}
			for i, k := range op.keys {
				want := byte(0)
				if model[k] != nil {
					want = model[k][0]
				}
				if out[i][0] != want {
					t.Fatalf("%s step %d key %d read %d, want last acked %d",
						plane, s, k, out[i][0], want)
				}
			}
		}
		// Final read-back of the whole keyspace from a rotating blade.
		for k := 0; k < keyspace; k++ {
			d, err := h.engines[k%blades].ReadBlock(p, kb(int64(k)), 0)
			if err != nil {
				t.Fatalf("%s final read key %d: %v", plane, k, err)
			}
			final[int64(k)] = d
		}
	})
	if !t.Failed() {
		checkDirectoryInvariants(t, h, keyspace)
	}
	return final
}

func runConvergenceProperty(t *testing.T, seed int64) {
	const (
		blades      = 4
		keyspace    = 40
		steps       = 80
		cacheBlocks = 8 // tiny: evictions and writebacks mid-schedule
	)
	ops := makeSchedule(seed, blades, keyspace, steps)
	perKey := runSchedule(t, seed, ops, blades, keyspace, cacheBlocks, false)
	if t.Failed() {
		return
	}
	batched := runSchedule(t, seed, ops, blades, keyspace, cacheBlocks, true)
	if t.Failed() {
		return
	}
	for k := int64(0); k < keyspace; k++ {
		pk, bt := perKey[k], batched[k]
		if pk[0] != bt[0] || pk[1] != bt[1] {
			t.Fatalf("final state diverged at key %d: per-key (%d,%d), batched (%d,%d)",
				k, pk[0], pk[1], bt[0], bt[1])
		}
	}
}

// TestBatchedConcurrentInvariants runs key-partitioned concurrent writers
// plus unpartitioned readers entirely on the batched plane across the same
// seed set, then checks last-acked read-back and directory invariants.
func TestBatchedConcurrentInvariants(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 7, 11, 42, 99, 1234, 2024, 31337, 98765}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runBatchedConcurrent(t, seed)
		})
	}
}

func runBatchedConcurrent(t *testing.T, seed int64) {
	const (
		blades      = 4
		cacheBlocks = 8
		keys        = 24
		writers     = 3
		readers     = 3
		writerOps   = 30
		readerOps   = 30
	)
	h := newHarness(seed, blades, cacheBlocks)
	expected := make(map[int][]byte)
	seq := make(map[int]int)

	h.run(func(p *sim.Proc) {
		g := sim.NewGroup(h.k)
		for w := 0; w < writers; w++ {
			w := w
			wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < writerOps; i++ {
					// A vector of this writer's own keys (key k belongs to
					// writer k%writers), so last-acked stays well-defined.
					n := 1 + wrng.Intn(4)
					picked := make(map[int]bool, n)
					var ks []cache.Key
					var vs [][]byte
					var ids []int
					for len(ks) < n {
						k := wrng.Intn(keys/writers)*writers + w
						if picked[k] {
							continue
						}
						picked[k] = true
						seq[k]++
						ks = append(ks, kb(int64(k)))
						vs = append(vs, wval(k, seq[k]))
						ids = append(ids, k)
					}
					e := h.engines[wrng.Intn(blades)]
					if err := e.WriteBlocksBatched(p, ks, vs, 0, 0); err != nil {
						t.Errorf("writer%d op %d: %v", w, i, err)
						return
					}
					for j, k := range ids {
						expected[k] = vs[j]
					}
				}
			})
		}
		for r := 0; r < readers; r++ {
			r := r
			rrng := rand.New(rand.NewSource(seed*2000 + int64(r)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("reader%d", r), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < readerOps; i++ {
					n := 1 + rrng.Intn(4)
					picked := make(map[int]bool, n)
					var ks []cache.Key
					for len(ks) < n {
						k := rrng.Intn(keys)
						if picked[k] {
							continue
						}
						picked[k] = true
						ks = append(ks, kb(int64(k)))
					}
					e := h.engines[rrng.Intn(blades)]
					if _, err := e.ReadBlocksBatched(p, ks, 0); err != nil {
						t.Errorf("reader%d op %d: %v", r, i, err)
						return
					}
				}
			})
		}
		g.Wait(p)

		for k := 0; k < keys; k++ {
			want := expected[k]
			if want == nil {
				continue
			}
			d, err := h.engines[k%blades].ReadBlock(p, kb(int64(k)), 0)
			if err != nil {
				t.Fatalf("final read key %d: %v", k, err)
			}
			if d[0] != want[0] || d[1] != want[1] {
				t.Fatalf("final read key %d = (%d,%d), want last acked (%d,%d)",
					k, d[0], d[1], want[0], want[1])
			}
		}
	})
	if t.Failed() {
		return
	}
	checkDirectoryInvariants(t, h, keys)
}
