package coherence

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Property test for the migration-extended protocol: after ANY fault-free
// mixed schedule of reads (GetS), writes (GetX) and home migrations, the
// cluster must satisfy the directory invariants and reads must return the
// last acknowledged write. Schedules are random but seeded from a table, so
// every failure is replayable by its seed.
//
// Checked invariants (see the package doc's numbered list):
//
//	a. Every blade agrees on each key's home, and exactly the home holds an
//	   active directory entry for it.
//	b. Directory Modified(o) ⇒ blade o holds the only cached copy, in M.
//	c. Directory Shared ⇒ every cached copy is clean S and registered in
//	   the home's sharer set; at most one M copy exists cluster-wide.
//	d. A read of any key, from any blade, returns the last acked write.

// wval builds a block whose first two bytes identify the write (key index,
// per-key sequence number) — enough to distinguish every write in a run.
func wval(key, seq int) []byte {
	b := make([]byte, blockSize)
	b[0], b[1] = byte(key), byte(seq)
	return b
}

func TestPropertyMixedSchedulesWithMigration(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 7, 11, 42, 99, 1234, 2024, 31337, 98765}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMixedScheduleProperty(t, seed)
		})
	}
}

func runMixedScheduleProperty(t *testing.T, seed int64) {
	const (
		blades      = 4
		cacheBlocks = 8 // tiny: forces evictions mid-schedule
		keys        = 24
		writers     = 3
		readers     = 3
		writerOps   = 60
		readerOps   = 60
		migrations  = 16
		tailOps     = 80
	)
	h := newHarness(seed, blades, cacheBlocks)
	// The schedule's own randomness is separate from the kernel's seed so
	// the two can't accidentally cancel out.
	rng := rand.New(rand.NewSource(seed * 7919))

	// Control-plane endpoint for migrations, wired like the balancer's.
	h.net.Connect("ctl", "fabric", simnet.FC2G)
	ctl := simnet.NewConn(h.net, "ctl")
	retry := NormalizeRetry(simnet.RetryPolicy{})

	// expected[k] is the last acked write per key. The concurrent phase
	// partitions keys across writers (key k belongs to writer k%writers),
	// so "last acked" is well-defined even mid-flight; the sequential tail
	// then writes from arbitrary blades to arbitrary keys.
	expected := make(map[int][]byte)
	seq := make(map[int]int)

	h.run(func(p *sim.Proc) {
		g := sim.NewGroup(h.k)

		for w := 0; w < writers; w++ {
			w := w
			wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < writerOps; i++ {
					k := wrng.Intn(keys/writers)*writers + w // this writer's keys only
					e := h.engines[wrng.Intn(blades)]
					seq[k]++
					v := wval(k, seq[k])
					if err := e.WriteBlock(p, kb(int64(k)), v, 0); err != nil {
						t.Errorf("writer%d op %d key %d: %v", w, i, k, err)
						return
					}
					expected[k] = v // acked
				}
			})
		}

		for r := 0; r < readers; r++ {
			r := r
			rrng := rand.New(rand.NewSource(seed*2000 + int64(r)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("reader%d", r), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < readerOps; i++ {
					k := rrng.Intn(keys)
					e := h.engines[rrng.Intn(blades)]
					if _, err := e.ReadBlock(p, kb(int64(k)), 0); err != nil {
						t.Errorf("reader%d op %d key %d: %v", r, i, k, err)
						return
					}
				}
			})
		}

		mrng := rand.New(rand.NewSource(seed * 3000))
		g.Add(1)
		h.k.Go("migrator", func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < migrations; i++ {
				k := kb(int64(mrng.Intn(keys)))
				home, err := h.engines[0].Home(k)
				if err != nil {
					t.Errorf("migrator: home(%v): %v", k, err)
					return
				}
				to := mrng.Intn(blades)
				if to == home {
					to = (to + 1) % blades
				}
				peer := simnet.Addr(fmt.Sprintf("blade%d", home))
				// A stale candidate (home moved since we looked) is a
				// declined migrate, not a failure.
				RequestMigrate(p, ctl, peer, k, to, retry)
			}
		})

		g.Wait(p)

		// Sequential tail: any blade touching any key, including further
		// migrations interleaved with the I/O.
		for i := 0; i < tailOps; i++ {
			k := rng.Intn(keys)
			e := h.engines[rng.Intn(blades)]
			switch rng.Intn(4) {
			case 0, 1: // read
				d, err := e.ReadBlock(p, kb(int64(k)), 0)
				if err != nil {
					t.Fatalf("tail op %d read key %d: %v", i, k, err)
				}
				if want := expected[k]; want != nil && (d[0] != want[0] || d[1] != want[1]) {
					t.Fatalf("tail op %d key %d read (%d,%d), want (%d,%d)",
						i, k, d[0], d[1], want[0], want[1])
				}
			case 2: // write
				seq[k]++
				v := wval(k, seq[k])
				if err := e.WriteBlock(p, kb(int64(k)), v, 0); err != nil {
					t.Fatalf("tail op %d write key %d: %v", i, k, err)
				}
				expected[k] = v
			case 3: // migrate
				home, err := h.engines[0].Home(kb(int64(k)))
				if err != nil {
					t.Fatalf("tail op %d home key %d: %v", i, k, err)
				}
				to := rng.Intn(blades)
				if to == home {
					to = (to + 1) % blades
				}
				peer := simnet.Addr(fmt.Sprintf("blade%d", home))
				RequestMigrate(p, ctl, peer, kb(int64(k)), to, retry)
			}
		}

		// d. Final reads: every key, from a rotating blade, must return the
		// last acked write.
		for k := 0; k < keys; k++ {
			want := expected[k]
			if want == nil {
				continue
			}
			e := h.engines[k%blades]
			d, err := e.ReadBlock(p, kb(int64(k)), 0)
			if err != nil {
				t.Fatalf("final read key %d: %v", k, err)
			}
			if d[0] != want[0] || d[1] != want[1] {
				t.Fatalf("final read key %d = (%d,%d), want last acked (%d,%d)",
					k, d[0], d[1], want[0], want[1])
			}
		}
	})

	if t.Failed() {
		return
	}
	checkDirectoryInvariants(t, h, keys)

	moved := int64(0)
	for _, e := range h.engines {
		moved += e.Stats().HomeMigrations
	}
	if moved == 0 {
		t.Fatalf("schedule performed no successful migrations; property not exercised")
	}
}

// checkDirectoryInvariants inspects the drained cluster's directory and
// cache state structurally (same package: unexported fields are fair game).
func checkDirectoryInvariants(t *testing.T, h *harness, keys int) {
	t.Helper()
	for k := 0; k < keys; k++ {
		key := kb(int64(k))

		// a. One home, agreed by everyone, and it is alive.
		home, err := h.engines[0].Home(key)
		if err != nil {
			t.Fatalf("key %d: no home: %v", k, err)
		}
		for _, e := range h.engines {
			got, err := e.Home(key)
			if err != nil || got != home {
				t.Fatalf("key %d: blade%d says home=%d (err %v), blade0 says %d",
					k, e.Self(), got, err, home)
			}
		}
		alive := false
		for _, b := range h.engines[home].Alive() {
			if b == home {
				alive = true
			}
		}
		if !alive {
			t.Fatalf("key %d: home %d not in membership", k, home)
		}
		for _, e := range h.engines {
			if e.Self() == home {
				continue
			}
			if ent, ok := e.dir[key]; ok && ent.state != dirInvalid {
				t.Fatalf("key %d: non-home blade%d holds active dir entry state=%d",
					k, e.Self(), ent.state)
			}
		}

		// Collect every cached copy.
		var copies []copyAt
		for _, e := range h.engines {
			if ent, ok := e.cache.Peek(key); ok && ent.State != cache.Invalid {
				copies = append(copies, copyAt{e.Self(), ent})
			}
		}
		var mCopies []copyAt
		for _, c := range copies {
			if c.ent.State == cache.Modified {
				mCopies = append(mCopies, c)
			}
		}
		if len(mCopies) > 1 {
			t.Fatalf("key %d: %d Modified copies cluster-wide", k, len(mCopies))
		}

		dirEnt, hasDir := h.engines[home].dir[key]
		state := dirInvalid
		if hasDir {
			state = dirEnt.state
		}
		switch state {
		case dirModified:
			// b. Exactly the owner caches it, in M.
			if len(copies) != 1 || copies[0].blade != dirEnt.owner || copies[0].ent.State != cache.Modified {
				t.Fatalf("key %d: dir Modified(owner %d) but copies %+v", k, dirEnt.owner, describe(copies))
			}
		case dirShared:
			// c. Cached copies are clean S and registered as sharers.
			for _, c := range copies {
				if c.ent.State != cache.Shared || c.ent.Dirty {
					t.Fatalf("key %d: dir Shared but blade%d holds state=%v dirty=%v",
						k, c.blade, c.ent.State, c.ent.Dirty)
				}
				if !dirEnt.sharers[c.blade] {
					t.Fatalf("key %d: blade%d caches S copy but is not in sharer set %v",
						k, c.blade, dirEnt.sharers)
				}
			}
			if len(mCopies) != 0 {
				t.Fatalf("key %d: dir Shared with a Modified copy at blade%d", k, mCopies[0].blade)
			}
		case dirInvalid:
			if len(copies) != 0 {
				t.Fatalf("key %d: dir Invalid but cached at %+v", k, describe(copies))
			}
		}
	}
}

// copyAt is one blade's cached copy of a key, for invariant reporting.
type copyAt struct {
	blade int
	ent   *cache.Entry
}

func describe(copies []copyAt) []string {
	out := make([]string, 0, len(copies))
	for _, c := range copies {
		out = append(out, fmt.Sprintf("blade%d:%v dirty=%v", c.blade, c.ent.State, c.ent.Dirty))
	}
	return out
}
