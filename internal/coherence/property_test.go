package coherence

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Property test for the migration-extended protocol: after ANY fault-free
// mixed schedule of reads (GetS), writes (GetX) and home migrations, the
// cluster must satisfy the directory invariants and reads must return the
// last acknowledged write. Schedules are random but seeded from a table, so
// every failure is replayable by its seed.
//
// Checked invariants (see the package doc's numbered list):
//
//	a. Every blade agrees on each key's home, and exactly the home holds an
//	   active directory entry for it.
//	b. Directory Modified(o) ⇒ blade o holds the only cached copy, in M.
//	c. Directory Shared ⇒ every cached copy is clean S and registered in
//	   the home's sharer set; at most one M copy exists cluster-wide.
//	d. A read of any key, from any blade, returns the last acked write.

// wval builds a block whose first two bytes identify the write (key index,
// per-key sequence number) — enough to distinguish every write in a run.
func wval(key, seq int) []byte {
	b := make([]byte, blockSize)
	b[0], b[1] = byte(key), byte(seq)
	return b
}

func TestPropertyMixedSchedulesWithMigration(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 7, 11, 42, 99, 1234, 2024, 31337, 98765}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMixedScheduleProperty(t, seed)
		})
	}
}

func runMixedScheduleProperty(t *testing.T, seed int64) {
	const (
		blades      = 4
		cacheBlocks = 8 // tiny: forces evictions mid-schedule
		keys        = 24
		writers     = 3
		readers     = 3
		writerOps   = 60
		readerOps   = 60
		migrations  = 16
		tailOps     = 80
	)
	h := newHarness(seed, blades, cacheBlocks)
	// The schedule's own randomness is separate from the kernel's seed so
	// the two can't accidentally cancel out.
	rng := rand.New(rand.NewSource(seed * 7919))

	// Control-plane endpoint for migrations, wired like the balancer's.
	h.net.Connect("ctl", "fabric", simnet.FC2G)
	ctl := simnet.NewConn(h.net, "ctl")
	retry := NormalizeRetry(simnet.RetryPolicy{})

	// expected[k] is the last acked write per key. The concurrent phase
	// partitions keys across writers (key k belongs to writer k%writers),
	// so "last acked" is well-defined even mid-flight; the sequential tail
	// then writes from arbitrary blades to arbitrary keys.
	expected := make(map[int][]byte)
	seq := make(map[int]int)

	h.run(func(p *sim.Proc) {
		g := sim.NewGroup(h.k)

		for w := 0; w < writers; w++ {
			w := w
			wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < writerOps; i++ {
					k := wrng.Intn(keys/writers)*writers + w // this writer's keys only
					e := h.engines[wrng.Intn(blades)]
					seq[k]++
					v := wval(k, seq[k])
					if err := e.WriteBlock(p, kb(int64(k)), v, 0); err != nil {
						t.Errorf("writer%d op %d key %d: %v", w, i, k, err)
						return
					}
					expected[k] = v // acked
				}
			})
		}

		for r := 0; r < readers; r++ {
			r := r
			rrng := rand.New(rand.NewSource(seed*2000 + int64(r)))
			g.Add(1)
			h.k.Go(fmt.Sprintf("reader%d", r), func(p *sim.Proc) {
				defer g.Done()
				for i := 0; i < readerOps; i++ {
					k := rrng.Intn(keys)
					e := h.engines[rrng.Intn(blades)]
					if _, err := e.ReadBlock(p, kb(int64(k)), 0); err != nil {
						t.Errorf("reader%d op %d key %d: %v", r, i, k, err)
						return
					}
				}
			})
		}

		mrng := rand.New(rand.NewSource(seed * 3000))
		g.Add(1)
		h.k.Go("migrator", func(p *sim.Proc) {
			defer g.Done()
			for i := 0; i < migrations; i++ {
				k := kb(int64(mrng.Intn(keys)))
				home, err := h.engines[0].Home(k)
				if err != nil {
					t.Errorf("migrator: home(%v): %v", k, err)
					return
				}
				to := mrng.Intn(blades)
				if to == home {
					to = (to + 1) % blades
				}
				peer := simnet.Addr(fmt.Sprintf("blade%d", home))
				// A stale candidate (home moved since we looked) is a
				// declined migrate, not a failure.
				RequestMigrate(p, ctl, peer, k, to, retry)
			}
		})

		g.Wait(p)

		// Sequential tail: any blade touching any key, including further
		// migrations interleaved with the I/O.
		for i := 0; i < tailOps; i++ {
			k := rng.Intn(keys)
			e := h.engines[rng.Intn(blades)]
			switch rng.Intn(4) {
			case 0, 1: // read
				d, err := e.ReadBlock(p, kb(int64(k)), 0)
				if err != nil {
					t.Fatalf("tail op %d read key %d: %v", i, k, err)
				}
				if want := expected[k]; want != nil && (d[0] != want[0] || d[1] != want[1]) {
					t.Fatalf("tail op %d key %d read (%d,%d), want (%d,%d)",
						i, k, d[0], d[1], want[0], want[1])
				}
			case 2: // write
				seq[k]++
				v := wval(k, seq[k])
				if err := e.WriteBlock(p, kb(int64(k)), v, 0); err != nil {
					t.Fatalf("tail op %d write key %d: %v", i, k, err)
				}
				expected[k] = v
			case 3: // migrate
				home, err := h.engines[0].Home(kb(int64(k)))
				if err != nil {
					t.Fatalf("tail op %d home key %d: %v", i, k, err)
				}
				to := rng.Intn(blades)
				if to == home {
					to = (to + 1) % blades
				}
				peer := simnet.Addr(fmt.Sprintf("blade%d", home))
				RequestMigrate(p, ctl, peer, kb(int64(k)), to, retry)
			}
		}

		// d. Final reads: every key, from a rotating blade, must return the
		// last acked write.
		for k := 0; k < keys; k++ {
			want := expected[k]
			if want == nil {
				continue
			}
			e := h.engines[k%blades]
			d, err := e.ReadBlock(p, kb(int64(k)), 0)
			if err != nil {
				t.Fatalf("final read key %d: %v", k, err)
			}
			if d[0] != want[0] || d[1] != want[1] {
				t.Fatalf("final read key %d = (%d,%d), want last acked (%d,%d)",
					k, d[0], d[1], want[0], want[1])
			}
		}
	})

	if t.Failed() {
		return
	}
	checkDirectoryInvariants(t, h, keys)

	moved := int64(0)
	for _, e := range h.engines {
		moved += e.Stats().HomeMigrations
	}
	if moved == 0 {
		t.Fatalf("schedule performed no successful migrations; property not exercised")
	}
}

// checkDirectoryInvariants delegates to the exported structural checker
// (verify.go) — the same invariants the hotcache property tests assert
// while the upper cache layer is active.
func checkDirectoryInvariants(t *testing.T, h *harness, keys int) {
	t.Helper()
	ks := make([]cache.Key, keys)
	for k := range ks {
		ks[k] = kb(int64(k))
	}
	if err := CheckInvariants(h.engines, ks); err != nil {
		t.Fatal(err)
	}
}
