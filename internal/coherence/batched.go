package coherence

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
	tr "repro/internal/trace"
)

// Batched coherence plane. With batching enabled the cluster resolves a
// whole client op's blocks through vectorized protocol messages: one
// coh.getsb/coh.getxb per home blade instead of one coh.gets/coh.getx per
// block, and on the home side one coh.invb/coh.invmb/coh.downgradeb/
// coh.fetchb per peer instead of one message per (peer, key). The
// handler-side CPU charge (hdlDelay) and the client-side op charge
// (opDelay) are paid once per batch — that amortization, plus the collapse
// of per-key round trips, is what empties the fabric queues.
//
// Two deliberate semantic differences from the per-key plane, both safe:
//
//   - coh.downgradeb forwards a dirty owner's data immediately instead of
//     poll-waiting out a pinned (mid-destage) entry. The forwarded bytes
//     are the latest acknowledged write, the reader does not install them
//     (NoCache), and the owner keeps exclusive ownership, so no invariant
//     moves; the per-key path's wait was purely conservative. coh.invmb
//     KEEPS the pinned wait: there a new owner is about to write and
//     destage, and overlapping backing-store writes from old and new owner
//     genuinely can interleave.
//
//   - the shared-state fetch probe tries one sharer (the first in sorted
//     order) instead of walking sharers sequentially; if it fails or the
//     copy is gone the reader falls back to the backing store, which is
//     current for Shared entries (invariant 1).
//
// Determinism: batch fan-out walks peers in sorted order, multi-entry
// locking is in sorted key order (so batched handlers cannot deadlock with
// each other or with the single-key plane), and all concurrency uses the
// kernel's deterministic primitives.

// Batched protocol payloads. Req/resp item slices are parallel arrays.
// Epochs mirror the per-key plane's getSReq/getXReq Epoch field: one
// requester install epoch per key, recorded with each registration so
// stale evict notices cannot deregister a re-installed copy.
type getSBatchReq struct {
	Keys   []cache.Key
	Epochs []uint64
}
type getSBatchResp struct{ Items []getSResp }
type getXBatchReq struct {
	Keys   []cache.Key
	Epochs []uint64
}
type getXBatchResp struct{ Items []getXResp }
type invBatchReq struct{ Keys []cache.Key }
type invBatchResp struct{}
type invMBatchReq struct{ Keys []cache.Key }
type invMBatchResp struct{}
type downgradeBatchReq struct{ Keys []cache.Key }
type downgradeBatchResp struct{ Items []downgradeResp }
type fetchBatchReq struct{ Keys []cache.Key }
type fetchBatchResp struct{ Items []fetchResp }

// perKeySize is the wire cost of one key (or one dataless reply item)
// inside a batched message, on top of the shared ctrlSize header.
const perKeySize = 16

func batchSize(n int) int { return ctrlSize + perKeySize*n }

// SetBatched switches this engine's client paths between the per-key and
// batched protocol planes. Handlers for both planes are always registered,
// so mixed clusters stay interoperable during a toggle.
func (e *Engine) SetBatched(on bool) { e.batched = on }

// Batched reports whether the batched plane is active.
func (e *Engine) Batched() bool { return e.batched }

func (e *Engine) registerBatched() {
	e.conn.Register("coh.getsb", e.handleGetSBatch)
	e.conn.Register("coh.getxb", e.handleGetXBatch)
	e.conn.Register("coh.invb", e.handleInvBatch)
	e.conn.Register("coh.invmb", e.handleInvMBatch)
	e.conn.Register("coh.downgradeb", e.handleDowngradeBatch)
	e.conn.Register("coh.fetchb", e.handleFetchBatch)
}

func sortedPeerIDs[T any](m map[int]T) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// batchWork is one key's slot in a batched home handler.
type batchWork struct {
	idx   int // position in the request (and response) arrays
	key   cache.Key
	epoch uint64 // requester's install epoch for this key
	ent   *dirEntry
}

// lockSorted locks each work entry's mutex in sorted key order and returns
// the same slice sorted. Every multi-entry locker in the package uses this
// order, so overlapping batches queue instead of deadlocking.
func (e *Engine) lockSorted(p *sim.Proc, work []batchWork) []batchWork {
	sort.Slice(work, func(i, j int) bool {
		if work[i].key.Vol != work[j].key.Vol {
			return work[i].key.Vol < work[j].key.Vol
		}
		return work[i].key.LBA < work[j].key.LBA
	})
	for i := range work {
		work[i].ent = e.entry(work[i].key)
		work[i].ent.mu.Lock(p)
	}
	return work
}

func unlockAll(work []batchWork) {
	for i := range work {
		work[i].ent.mu.Unlock()
	}
}

// handleGetSBatch serves a vector of read-share requests as the home blade.
func (e *Engine) handleGetSBatch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(getSBatchReq)
	requester := bladeID(e.peers, from)
	items := make([]getSResp, len(req.Keys))
	e.stats.DirRequests += int64(len(req.Keys))

	var work []batchWork
	for i, key := range req.Keys {
		if to, ok := e.forward[key]; ok {
			e.stats.RedirectsServed++
			items[i] = getSResp{Redirect: true, NewHome: to}
			continue
		}
		work = append(work, batchWork{idx: i, key: key, epoch: req.Epochs[i]})
	}
	if len(work) == 0 {
		return getSBatchResp{Items: items}, batchSize(len(items))
	}
	e.busy(p, e.hdlDelay) // one CPU charge for the whole batch
	work = e.lockSorted(p, work)
	defer unlockAll(work)

	// Classify under the locks; the home may have migrated while we queued.
	fetchGroups := make(map[int][]batchWork) // sharer blade → keys to fetch
	dgGroups := make(map[int][]batchWork)    // owner blade → keys to downgrade
	for _, w := range work {
		if to, ok := e.forward[w.key]; ok {
			e.stats.RedirectsServed++
			items[w.idx] = getSResp{Redirect: true, NewHome: to}
			continue
		}
		e.heat.Touch(w.key)
		trace(w.key, "t=%v home%d GETSB from %d state=%d owner=%d sharers=%v",
			e.k.Now(), e.self, requester, w.ent.state, w.ent.owner, w.ent.sharers)
		switch w.ent.state {
		case dirInvalid:
			w.ent.state = dirShared
			w.ent.sharers = map[int]bool{requester: true}
			w.ent.epochs = map[int]uint64{requester: w.epoch}
		case dirShared:
			if e.noPeerFetch {
				w.ent.sharers[requester] = true
				w.ent.epochs[requester] = w.epoch
				continue
			}
			src := -1
			for _, s := range sortedSharers(w.ent.sharers) {
				if s != requester {
					src = s
					break
				}
			}
			if src < 0 {
				w.ent.sharers[requester] = true
				w.ent.epochs[requester] = w.epoch
				continue
			}
			fetchGroups[src] = append(fetchGroups[src], w)
		default: // dirModified
			dgGroups[w.ent.owner] = append(dgGroups[w.ent.owner], w)
		}
	}
	// One batched call per peer, all peers in parallel, sorted spawn order.
	grp := sim.NewGroup(e.k)
	for _, src := range sortedPeerIDs(fetchGroups) {
		src, ws := src, fetchGroups[src]
		grp.Add(1)
		e.k.Go("fetchb", func(q *sim.Proc) {
			defer grp.Done()
			keys := make([]cache.Key, len(ws))
			for i, w := range ws {
				keys[i] = w.key
			}
			raw, err := e.conn.CallRetry(q, e.peers[src], "coh.fetchb", fetchBatchReq{Keys: keys}, batchSize(len(keys)), e.retry)
			if err != nil {
				// Dead sharer: unregister it so invalidations don't stall
				// on it later; readers fall back to the backing store.
				for _, w := range ws {
					delete(w.ent.sharers, src)
					delete(w.ent.epochs, src)
					w.ent.sharers[requester] = true
					w.ent.epochs[requester] = w.epoch
				}
				return
			}
			fr := raw.(fetchBatchResp)
			for i, w := range ws {
				if !fr.Items[i].Gone {
					items[w.idx].Data = fr.Items[i].Data
				}
				// A Gone sharer stays registered (it may be mid-install);
				// the reader falls back to backing, current for Shared.
				w.ent.sharers[requester] = true
				w.ent.epochs[requester] = w.epoch
			}
		})
	}
	for _, owner := range sortedPeerIDs(dgGroups) {
		owner, ws := owner, dgGroups[owner]
		grp.Add(1)
		e.k.Go("downgradeb", func(q *sim.Proc) {
			defer grp.Done()
			keys := make([]cache.Key, len(ws))
			for i, w := range ws {
				keys[i] = w.key
			}
			raw, err := e.conn.CallRetry(q, e.peers[owner], "coh.downgradeb", downgradeBatchReq{Keys: keys}, batchSize(len(keys)), e.retry)
			if err != nil {
				// Dead owner: per invariant 3 the backing store is current.
				for _, w := range ws {
					w.ent.state = dirShared
					w.ent.sharers = map[int]bool{requester: true}
					w.ent.epochs = map[int]uint64{requester: w.epoch}
				}
				return
			}
			dr := raw.(downgradeBatchResp)
			for i, w := range ws {
				it := dr.Items[i]
				switch {
				case it.StillDirty:
					// Owner-forwarding: home stays Modified; reader must
					// not cache.
					items[w.idx] = getSResp{Data: it.Data, NoCache: true}
				case !it.Gone:
					w.ent.state = dirShared
					w.ent.sharers = map[int]bool{requester: true, owner: true}
					w.ent.epochs = map[int]uint64{requester: w.epoch, owner: w.ent.ownerEpoch}
					items[w.idx].Data = it.Data
				default:
					w.ent.state = dirShared
					w.ent.sharers = map[int]bool{requester: true}
					w.ent.epochs = map[int]uint64{requester: w.epoch}
				}
			}
		})
	}
	grp.Wait(p)

	size := batchSize(len(items))
	for i := range items {
		size += len(items[i].Data)
	}
	return getSBatchResp{Items: items}, size
}

// handleGetXBatch serves a vector of exclusive-ownership requests as the
// home blade, with the sharer-invalidation fan-out vectorized per peer.
func (e *Engine) handleGetXBatch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(getXBatchReq)
	requester := bladeID(e.peers, from)
	items := make([]getXResp, len(req.Keys))
	e.stats.DirRequests += int64(len(req.Keys))

	var work []batchWork
	for i, key := range req.Keys {
		if to, ok := e.forward[key]; ok {
			e.stats.RedirectsServed++
			items[i] = getXResp{Redirect: true, NewHome: to}
			continue
		}
		work = append(work, batchWork{idx: i, key: key, epoch: req.Epochs[i]})
	}
	if len(work) == 0 {
		return getXBatchResp{Items: items}, batchSize(len(items))
	}
	e.busy(p, e.hdlDelay)
	work = e.lockSorted(p, work)
	defer unlockAll(work)

	invGroups := make(map[int][]cache.Key)  // sharer blade → keys to invalidate
	invMGroups := make(map[int][]cache.Key) // owner blade → ownership to revoke
	var granted []batchWork
	for _, w := range work {
		if to, ok := e.forward[w.key]; ok {
			e.stats.RedirectsServed++
			items[w.idx] = getXResp{Redirect: true, NewHome: to}
			continue
		}
		e.heat.Touch(w.key)
		trace(w.key, "t=%v home%d GETXB from %d state=%d owner=%d sharers=%v",
			e.k.Now(), e.self, requester, w.ent.state, w.ent.owner, w.ent.sharers)
		switch w.ent.state {
		case dirShared:
			for _, s := range sortedSharers(w.ent.sharers) {
				if s != requester {
					invGroups[s] = append(invGroups[s], w.key)
				}
			}
		case dirModified:
			if w.ent.owner != requester {
				invMGroups[w.ent.owner] = append(invMGroups[w.ent.owner], w.key)
			}
		}
		granted = append(granted, w)
	}

	grp := sim.NewGroup(e.k)
	for _, s := range sortedPeerIDs(invGroups) {
		s, keys := s, invGroups[s]
		grp.Add(1)
		e.k.Go("invb", func(q *sim.Proc) {
			defer grp.Done()
			e.conn.CallRetry(q, e.peers[s], "coh.invb", invBatchReq{Keys: keys}, batchSize(len(keys)), e.retry)
		})
	}
	for _, o := range sortedPeerIDs(invMGroups) {
		o, keys := o, invMGroups[o]
		grp.Add(1)
		e.k.Go("invmb", func(q *sim.Proc) {
			defer grp.Done()
			e.conn.CallRetry(q, e.peers[o], "coh.invmb", invMBatchReq{Keys: keys}, batchSize(len(keys)), e.retry)
		})
	}
	grp.Wait(p)

	for _, w := range granted {
		w.ent.state = dirModified
		w.ent.owner = requester
		w.ent.ownerEpoch = w.epoch
		w.ent.sharers = make(map[int]bool)
		w.ent.epochs = make(map[int]uint64)
	}
	return getXBatchResp{Items: items}, batchSize(len(items))
}

// handleInvBatch drops a vector of Shared copies.
func (e *Engine) handleInvBatch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(invBatchReq)
	for _, key := range req.Keys {
		e.stats.Invalidations++
		trace(key, "t=%v blade%d INVB", e.k.Now(), e.self)
		e.invEpoch[key]++
		if ent, ok := e.cache.Peek(key); ok {
			e.cache.Remove(ent.Key)
		}
	}
	return invBatchResp{}, ctrlSize
}

// handleInvMBatch surrenders Modified ownership for a vector of keys. The
// per-key pinned wait is preserved: a mid-flight destage here must finish
// before the new owner may issue its own, or the two backing writes could
// interleave. Dirty payloads are destaged before dropping, exactly like
// the per-key handler: until the new owner installs, this blade's copy is
// the only one carrying the last acked write (see handleInvM).
func (e *Engine) handleInvMBatch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(invMBatchReq)
	for _, key := range req.Keys {
		e.stats.Invalidations++
		trace(key, "t=%v blade%d INVMB", e.k.Now(), e.self)
		e.invEpoch[key]++
		ent, ok := e.cache.Peek(key)
		if !ok {
			continue
		}
		for ent.Pinned {
			p.Sleep(50 * sim.Microsecond)
		}
		if ent, ok := e.cache.Peek(key); ok && ent.Dirty {
			ent.Pinned = true
			err := e.backing.WriteBlock(p, key, ent.Data)
			ent.Pinned = false
			if err != nil {
				e.stats.WritebackErrors++
			} else {
				e.stats.Writebacks++
			}
		}
		e.cache.Remove(key)
	}
	return invMBatchResp{}, ctrlSize
}

// handleDowngradeBatch resolves reads of this blade's Modified copies.
// Unlike the per-key handler it never waits out a pinned entry: a dirty
// copy (pinned or not) is forwarded immediately with StillDirty set. The
// bytes are the latest acknowledged write, the reader does not install
// them, and ownership does not move, so skipping the destage wait changes
// no state the protocol can observe — it only keeps convoys of readers
// from queueing behind disk destages, which is where the unbatched
// fabric's p99 tail lived.
func (e *Engine) handleDowngradeBatch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(downgradeBatchReq)
	items := make([]downgradeResp, len(req.Keys))
	size := batchSize(len(req.Keys))
	for i, key := range req.Keys {
		e.stats.Downgrades++
		trace(key, "t=%v blade%d DOWNGRADEB", e.k.Now(), e.self)
		ent, ok := e.cache.Peek(key)
		if !ok {
			e.invEpoch[key]++
			items[i] = downgradeResp{Gone: true}
			continue
		}
		if ent.Dirty {
			items[i] = downgradeResp{Data: append([]byte(nil), ent.Data...), StillDirty: true}
		} else {
			// A clean copy here means the Modified grant this downgrade is
			// revoking has NOT been installed yet — this entry is a stale
			// Shared copy and a local writer is between grant and install.
			// The per-key plane closes that window by installing without a
			// park point; the batched plane's window spans the whole vector
			// grant, so bump the epoch to send that writer back through the
			// retry path before it installs dirty data under a directory
			// that now says Shared.
			e.invEpoch[key]++
			ent.State = cache.Shared
			items[i] = downgradeResp{Data: append([]byte(nil), ent.Data...)}
		}
		size += len(items[i].Data)
	}
	return downgradeBatchResp{Items: items}, size
}

// handleFetchBatch serves a vector of peer-cache reads, charging the
// handler CPU once.
func (e *Engine) handleFetchBatch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(fetchBatchReq)
	items := make([]fetchResp, len(req.Keys))
	size := batchSize(len(req.Keys))
	e.busy(p, e.hdlDelay)
	for i, key := range req.Keys {
		ent, ok := e.cache.Peek(key)
		if !ok || ent.State == cache.Invalid {
			trace(key, "t=%v blade%d FETCHB gone", e.k.Now(), e.self)
			items[i] = fetchResp{Gone: true}
			continue
		}
		items[i] = fetchResp{Data: append([]byte(nil), ent.Data...)}
		size += len(items[i].Data)
	}
	return fetchBatchResp{Items: items}, size
}

type pendingMiss struct {
	idx   int
	key   cache.Key
	epoch uint64
}

// ReadBlocksBatched reads a vector of blocks, serving local hits inline
// and resolving all misses through per-home coh.getsb calls; backing reads
// and installs then fan out in parallel so disk concurrency matches the
// per-key plane. Results are positional; keys must be distinct.
func (e *Engine) ReadBlocksBatched(p *sim.Proc, keys []cache.Key, priority int) ([][]byte, error) {
	if e.down {
		return nil, fmt.Errorf("coherence: blade %d down", e.self)
	}
	e.stats.Reads += int64(len(keys))
	e.busy(p, e.opDelay) // one op charge for the whole vector
	out := make([][]byte, len(keys))
	var misses []pendingMiss
	for i, key := range keys {
		if ent, ok := e.cache.Get(key); ok && ent.State != cache.Invalid {
			e.stats.LocalHits++
			if h, err := e.home(key); err == nil && h == e.self {
				e.heat.Touch(key)
			}
			if ctx := tr.FromProc(p); ctx.Valid() {
				ctx.Child("hit", tr.CacheHit, e.label).End()
			}
			out[i] = append([]byte(nil), ent.Data...)
			continue
		}
		misses = append(misses, pendingMiss{idx: i, key: key, epoch: e.invEpoch[key]})
	}

	type grant struct {
		m    pendingMiss
		resp getSResp
	}
	var grants []grant
	pending := misses
	for hops := 0; len(pending) > 0; hops++ {
		if hops > len(e.peers)+8 {
			return nil, fmt.Errorf("coherence: getsb: redirect loop")
		}
		groups := make(map[int][]pendingMiss)
		for _, m := range pending {
			h, err := e.home(m.key)
			if err != nil {
				return nil, err
			}
			groups[h] = append(groups[h], m)
		}
		homes := sortedPeerIDs(groups)
		resps := make([]getSBatchResp, len(homes))
		errs := make([]error, len(homes))
		grp := sim.NewGroup(e.k)
		for gi, h := range homes {
			gi, h := gi, h
			grp.Add(1)
			e.k.Go("getsb", func(q *sim.Proc) {
				defer grp.Done()
				ks := make([]cache.Key, len(groups[h]))
				eps := make([]uint64, len(groups[h]))
				for i, m := range groups[h] {
					ks[i] = m.key
					eps[i] = m.epoch
				}
				raw, err := e.call(q, h, "coh.getsb", getSBatchReq{Keys: ks, Epochs: eps}, batchSize(len(ks)))
				if err != nil {
					errs[gi] = err
					return
				}
				resps[gi] = raw.(getSBatchResp)
			})
		}
		grp.Wait(p)
		var next []pendingMiss
		for gi, h := range homes {
			if errs[gi] != nil {
				return nil, fmt.Errorf("coherence: getsb to blade %d: %w", h, errs[gi])
			}
			for j, m := range groups[h] {
				r := resps[gi].Items[j]
				if r.Redirect {
					e.stats.RedirectsFollowed++
					e.setHomeOverride(m.key, r.NewHome)
					next = append(next, m)
					continue
				}
				if r.Err != "" {
					return nil, errors.New(r.Err)
				}
				grants = append(grants, grant{m: m, resp: r})
			}
		}
		pending = next
	}

	// Serve grants in parallel: peer data is used directly, the rest read
	// the backing store, installs re-check epochs exactly like readBlock.
	grp := sim.NewGroup(e.k)
	var firstErr error
	for _, g := range grants {
		g := g
		grp.Add(1)
		e.k.Go("readb", func(q *sim.Proc) {
			defer grp.Done()
			data, err := e.finishRead(q, g.m.key, g.m.epoch, g.resp, priority)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[g.m.idx] = data
		})
	}
	grp.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	for _, key := range keys {
		e.maybeReadAhead(key, priority)
	}
	return out, nil
}

// finishRead completes one granted read: source the data, then install a
// Shared copy under the same epoch/presence guards as the per-key path.
func (e *Engine) finishRead(p *sim.Proc, key cache.Key, epoch uint64, resp getSResp, priority int) ([]byte, error) {
	var data []byte
	var err error
	if resp.Data != nil {
		e.stats.PeerFetches++
		data = resp.Data
	} else {
		e.stats.DiskReads++
		data, err = e.backing.ReadBlock(p, key)
		if err != nil {
			return nil, err
		}
	}
	if resp.NoCache {
		return data, nil
	}
	if e.invEpoch[key] == epoch {
		if err := e.makeRoom(p); err == nil {
			if _, present := e.cache.Peek(key); !present && e.invEpoch[key] == epoch {
				e.cache.Put(key, data, cache.Shared, false, priority)
				trace(key, "t=%v blade%d readb MISS install S d0=%d (peer=%v)", p.Now(), e.self, d0(data), resp.Data != nil)
			}
		}
	}
	return append([]byte(nil), data...), nil
}

// WriteBlocksBatched stores a vector of full blocks, acquiring exclusive
// ownership through per-home coh.getxb calls; installs and replication
// pushes fan out in parallel. Keys must be distinct and blocks positional.
// A key whose ownership is stolen between grant and install falls back to
// the per-key WriteBlockR retry loop.
func (e *Engine) WriteBlocksBatched(p *sim.Proc, keys []cache.Key, blocks [][]byte, priority, replFactor int) error {
	if e.down {
		return fmt.Errorf("coherence: blade %d down", e.self)
	}
	if len(keys) != len(blocks) {
		return fmt.Errorf("coherence: %d keys, %d blocks", len(keys), len(blocks))
	}
	for _, b := range blocks {
		if len(b) != e.blockSize {
			return fmt.Errorf("coherence: write of %d bytes, block size %d", len(b), e.blockSize)
		}
	}
	e.stats.Writes += int64(len(keys))
	e.busy(p, e.opDelay)

	var granted []pendingMiss
	pending := make([]pendingMiss, len(keys))
	for i, key := range keys {
		pending[i] = pendingMiss{idx: i, key: key, epoch: e.invEpoch[key]}
	}
	for hops := 0; len(pending) > 0; hops++ {
		if hops > len(e.peers)+8 {
			return fmt.Errorf("coherence: getxb: redirect loop")
		}
		groups := make(map[int][]pendingMiss)
		for _, m := range pending {
			h, err := e.home(m.key)
			if err != nil {
				return err
			}
			groups[h] = append(groups[h], m)
		}
		homes := sortedPeerIDs(groups)
		resps := make([]getXBatchResp, len(homes))
		errs := make([]error, len(homes))
		grp := sim.NewGroup(e.k)
		for gi, h := range homes {
			gi, h := gi, h
			grp.Add(1)
			e.k.Go("getxb", func(q *sim.Proc) {
				defer grp.Done()
				ks := make([]cache.Key, len(groups[h]))
				eps := make([]uint64, len(groups[h]))
				for i, m := range groups[h] {
					ks[i] = m.key
					eps[i] = m.epoch
				}
				raw, err := e.call(q, h, "coh.getxb", getXBatchReq{Keys: ks, Epochs: eps}, batchSize(len(ks)))
				if err != nil {
					errs[gi] = err
					return
				}
				resps[gi] = raw.(getXBatchResp)
			})
		}
		grp.Wait(p)
		var next []pendingMiss
		for gi, h := range homes {
			if errs[gi] != nil {
				return fmt.Errorf("coherence: getxb to blade %d: %w", h, errs[gi])
			}
			for j, m := range groups[h] {
				r := resps[gi].Items[j]
				if r.Redirect {
					e.stats.RedirectsFollowed++
					e.setHomeOverride(m.key, r.NewHome)
					next = append(next, m)
					continue
				}
				if r.Err != "" {
					return errors.New(r.Err)
				}
				granted = append(granted, m)
			}
		}
		pending = next
	}

	grp := sim.NewGroup(e.k)
	var firstErr error
	for _, g := range granted {
		g := g
		grp.Add(1)
		e.k.Go("writeb", func(q *sim.Proc) {
			defer grp.Done()
			if err := e.finishWrite(q, g, blocks[g.idx], priority, replFactor); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	grp.Wait(p)
	return firstErr
}

// finishWrite installs one granted write (or falls back to the per-key
// retry loop when ownership was stolen mid-flight) and replicates.
func (e *Engine) finishWrite(p *sim.Proc, g pendingMiss, data []byte, priority, replFactor int) error {
	key := g.key
	if e.invEpoch[key] != g.epoch {
		// Ownership stolen between grant and install: hand the key to the
		// per-key retry loop. Undo the batch's Writes count first — the
		// fallback recounts the op.
		e.stats.WriteRetries++
		e.stats.Writes--
		return e.WriteBlockR(p, key, data, priority, replFactor)
	}
	stored := append([]byte(nil), data...)
	var entry *cache.Entry
	if ex, ok := e.cache.Peek(key); ok {
		ex.Data = stored
		ex.State = cache.Modified
		ex.Dirty = true
		ex.Version++
		entry = ex
		trace(key, "t=%v blade%d writeb in-place M d0=%d v=%d", p.Now(), e.self, d0(stored), ex.Version)
	} else {
		if err := e.makeRoom(p); err != nil {
			return fmt.Errorf("coherence: write to %v: %w", key, err)
		}
		if e.invEpoch[key] != g.epoch {
			e.stats.WriteRetries++
			e.stats.Writes--
			return e.WriteBlockR(p, key, data, priority, replFactor)
		}
		entry = e.cache.Put(key, stored, cache.Modified, true, priority)
		entry.Version++
		trace(key, "t=%v blade%d writeb install M d0=%d", p.Now(), e.self, d0(stored))
	}
	if e.replicate != nil {
		if err := e.replicate(p, key, stored, entry.Version, replFactor); err != nil {
			return fmt.Errorf("coherence: replication: %w", err)
		}
	}
	if e.onWriteThrough != nil {
		e.onWriteThrough(p, []cache.Key{key})
	}
	return nil
}
