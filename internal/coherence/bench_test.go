package coherence

import (
	"testing"

	"repro/internal/sim"
)

// benchOps runs n coherence operations through a 4-blade harness and
// reports host time per simulated op.
func benchOps(b *testing.B, body func(h *harness, p *sim.Proc, i int)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := newHarness(1, 4, 4096)
		h.run(func(p *sim.Proc) {
			for j := 0; j < 256; j++ {
				body(h, p, j)
			}
		})
	}
}

// BenchmarkLocalHit: repeated reads of one cached block on one blade.
func BenchmarkLocalHit(b *testing.B) {
	benchOps(b, func(h *harness, p *sim.Proc, i int) {
		h.engines[0].ReadBlock(p, kb(1), 0)
	})
}

// BenchmarkReadMiss: every read touches a fresh block (GetS + disk).
func BenchmarkReadMiss(b *testing.B) {
	benchOps(b, func(h *harness, p *sim.Proc, i int) {
		h.engines[0].ReadBlock(p, kb(int64(i)), 0)
	})
}

// BenchmarkWriteOwned: repeated writes to one owned block.
func BenchmarkWriteOwned(b *testing.B) {
	benchOps(b, func(h *harness, p *sim.Proc, i int) {
		h.engines[0].WriteBlock(p, kb(1), blk(byte(i)), 0)
	})
}

// BenchmarkOwnershipPingPong: two blades alternately writing one block —
// the protocol's worst case (invalidate + migrate per write).
func BenchmarkOwnershipPingPong(b *testing.B) {
	benchOps(b, func(h *harness, p *sim.Proc, i int) {
		h.engines[i%2].WriteBlock(p, kb(1), blk(byte(i)), 0)
	})
}

// BenchmarkPeerFetch: a second blade reading blocks cached by the first
// (served cache-to-cache, no disk).
func BenchmarkPeerFetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness(1, 4, 4096)
		h.run(func(p *sim.Proc) {
			for j := 0; j < 128; j++ {
				h.engines[0].ReadBlock(p, kb(int64(j)), 0)
			}
			for j := 0; j < 128; j++ {
				h.engines[1].ReadBlock(p, kb(int64(j)), 0)
			}
		})
	}
}
