package coherence

import (
	"fmt"

	"repro/internal/cache"
)

// CheckInvariants structurally verifies a drained cluster's directory and
// cache state for the given keys, returning the first violation found:
//
//	a. Every blade agrees on each key's home, the home is in the
//	   membership, and only the home holds an active directory entry.
//	b. Directory Modified(o) ⇒ blade o holds the only cached copy, in M.
//	c. Directory Shared ⇒ every cached copy is clean S and registered in
//	   the home's sharer set; at most one M copy exists cluster-wide.
//
// The checker inspects live engine state without moving simulated time,
// so it must only run while the cluster is quiescent (no client ops, no
// protocol messages in flight). It deliberately ignores any upper-layer
// hot-key caches: those hold shadow copies outside the directory's
// jurisdiction, kept honest by write-through invalidation rather than by
// sharer-set membership.
func CheckInvariants(engines []*Engine, keys []cache.Key) error {
	if len(engines) == 0 {
		return fmt.Errorf("coherence: no engines to verify")
	}
	for _, key := range keys {
		// a. One home, agreed by everyone, and it is alive.
		home, err := engines[0].Home(key)
		if err != nil {
			return fmt.Errorf("key %v: no home: %w", key, err)
		}
		for _, e := range engines {
			got, err := e.Home(key)
			if err != nil || got != home {
				return fmt.Errorf("key %v: blade%d says home=%d (err %v), blade%d says %d",
					key, e.Self(), got, err, engines[0].Self(), home)
			}
		}
		alive := false
		for _, b := range engines[home].Alive() {
			if b == home {
				alive = true
			}
		}
		if !alive {
			return fmt.Errorf("key %v: home %d not in membership", key, home)
		}
		for _, e := range engines {
			if e.Self() == home {
				continue
			}
			if ent, ok := e.dir[key]; ok && ent.state != dirInvalid {
				return fmt.Errorf("key %v: non-home blade%d holds active dir entry state=%d",
					key, e.Self(), ent.state)
			}
		}

		// Collect every cached copy.
		var copies []copyAt
		for _, e := range engines {
			if ent, ok := e.cache.Peek(key); ok && ent.State != cache.Invalid {
				copies = append(copies, copyAt{e.Self(), ent})
			}
		}
		var mCopies []copyAt
		for _, c := range copies {
			if c.ent.State == cache.Modified {
				mCopies = append(mCopies, c)
			}
		}
		if len(mCopies) > 1 {
			return fmt.Errorf("key %v: %d Modified copies cluster-wide", key, len(mCopies))
		}

		dirEnt, hasDir := engines[home].dir[key]
		state := dirInvalid
		if hasDir {
			state = dirEnt.state
		}
		switch state {
		case dirModified:
			// b. Exactly the owner caches it, in M.
			if len(copies) != 1 || copies[0].blade != dirEnt.owner || copies[0].ent.State != cache.Modified {
				return fmt.Errorf("key %v: dir Modified(owner %d) but copies %v", key, dirEnt.owner, describe(copies))
			}
		case dirShared:
			// c. Cached copies are clean S and registered as sharers.
			for _, c := range copies {
				if c.ent.State != cache.Shared || c.ent.Dirty {
					return fmt.Errorf("key %v: dir Shared but blade%d holds state=%v dirty=%v",
						key, c.blade, c.ent.State, c.ent.Dirty)
				}
				if !dirEnt.sharers[c.blade] {
					return fmt.Errorf("key %v: blade%d caches S copy but is not in sharer set %v",
						key, c.blade, dirEnt.sharers)
				}
			}
			if len(mCopies) != 0 {
				return fmt.Errorf("key %v: dir Shared with a Modified copy at blade%d", key, mCopies[0].blade)
			}
		case dirInvalid:
			if len(copies) != 0 {
				return fmt.Errorf("key %v: dir Invalid but cached at %v", key, describe(copies))
			}
		}
	}
	return nil
}

// copyAt is one blade's cached copy of a key, for invariant reporting.
type copyAt struct {
	blade int
	ent   *cache.Entry
}

func describe(copies []copyAt) []string {
	out := make([]string, 0, len(copies))
	for _, c := range copies {
		out = append(out, fmt.Sprintf("blade%d:%v dirty=%v", c.blade, c.ent.State, c.ent.Dirty))
	}
	return out
}
