package coherence

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func bladeID(peers []simnet.Addr, addr simnet.Addr) int {
	for i, a := range peers {
		if a == addr {
			return i
		}
	}
	return -1
}

// sortedSharers returns the sharer set as a sorted slice. Protocol fan-out
// must not follow Go's randomized map order: the event sequence (and with
// it the whole run) has to be identical for a given seed.
func sortedSharers(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// handleGetS serves a read-share request as the home blade.
func (e *Engine) handleGetS(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(getSReq)
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getSResp{Redirect: true, NewHome: to}, ctrlSize
	}
	requester := bladeID(e.peers, from)
	e.stats.DirRequests++
	e.busy(p, e.hdlDelay)
	ent := e.entry(req.Key)
	ent.mu.Lock(p)
	defer ent.mu.Unlock()
	// The home may have migrated away while this request queued on the CPU
	// or the entry mutex (the migration handler holds the same mutex).
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getSResp{Redirect: true, NewHome: to}, ctrlSize
	}
	e.heat.Touch(req.Key)

	trace(req.Key, "t=%v home%d GETS from %d state=%d owner=%d sharers=%v", e.k.Now(), e.self, requester, ent.state, ent.owner, ent.sharers)
	switch ent.state {
	case dirInvalid:
		ent.state = dirShared
		ent.sharers = map[int]bool{requester: true}
		ent.epochs = map[int]uint64{requester: req.Epoch}
		return getSResp{}, ctrlSize // backing store is current

	case dirShared:
		// Peer-cache transfer: try to serve from an existing sharer's
		// memory instead of disk ("cache data migrated to where it is
		// most needed", §6.3).
		var data []byte
		if e.noPeerFetch {
			ent.sharers[requester] = true
			ent.epochs[requester] = req.Epoch
			return getSResp{}, ctrlSize
		}
		for _, s := range sortedSharers(ent.sharers) {
			if s == requester {
				continue
			}
			raw, err := e.conn.CallRetry(p, e.peers[s], "coh.fetch", fetchReq{Key: req.Key}, ctrlSize, e.retry)
			if err != nil {
				// Unreachable (dead) sharer: drop it so GetX invalidations
				// don't stall on it later.
				delete(ent.sharers, s)
				delete(ent.epochs, s)
				continue
			}
			if fr := raw.(fetchResp); !fr.Gone {
				data = fr.Data
			}
			// A Gone sharer stays registered: it may be mid-install from
			// its own grant (entry not placed yet) or have evicted (the
			// async notice will clean up). Keeping it costs at most a
			// redundant invalidation; removing it would strand a copy
			// installed after this fetch, out of reach of invalidations.
			break
		}
		ent.sharers[requester] = true
		ent.epochs[requester] = req.Epoch
		return getSResp{Data: data}, ctrlSize + len(data)

	default: // dirModified
		owner := ent.owner
		// Note: owner == requester is NOT short-circuited as "stale
		// directory, owner must have evicted". The owner blade can be
		// mid-write — GetX granted but the Modified copy not yet installed —
		// while a second proc on the same blade misses locally and sends
		// this GetS. Assuming eviction here would downgrade the directory
		// and declare the stale backing store current, and the reader's
		// backing fetch would then clobber the just-installed dirty block.
		// The downgrade probe below tells the cases apart: a truly evicted
		// owner answers Gone (invariant 3: backing is current), a mid-write
		// owner answers Gone too but its bumped invEpoch makes both the
		// reader skip its install and the writer re-acquire ownership.
		raw, err := e.conn.CallRetry(p, e.peers[owner], "coh.downgrade", downgradeReq{Key: req.Key}, ctrlSize, e.retry)
		if err == nil {
			dr := raw.(downgradeResp)
			if dr.StillDirty {
				// Owner-forwarding: the dirty owner serves the read
				// directly and keeps exclusive ownership; the reader
				// must not cache. Once the owner's flusher destages,
				// the next GetS downgrades cheaply to Shared.
				return getSResp{Data: dr.Data, NoCache: true}, ctrlSize + len(dr.Data)
			}
			if !dr.Gone {
				// Clean owner downgraded to Shared; backing store is
				// current (the copy was clean). The owner's copy keeps
				// living under the epoch recorded at its GetX.
				ent.state = dirShared
				ent.sharers = map[int]bool{requester: true, owner: true}
				ent.epochs = map[int]uint64{requester: req.Epoch, owner: ent.ownerEpoch}
				return getSResp{Data: dr.Data}, ctrlSize + len(dr.Data)
			}
		}
		// Gone or dead owner: per invariant 3 the backing store is
		// current.
		ent.state = dirShared
		ent.sharers = map[int]bool{requester: true}
		ent.epochs = map[int]uint64{requester: req.Epoch}
		return getSResp{}, ctrlSize
	}
}

// handleGetX serves an exclusive-ownership request as the home blade.
// The requester is about to overwrite the whole block, so no data flows.
func (e *Engine) handleGetX(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(getXReq)
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getXResp{Redirect: true, NewHome: to}, ctrlSize
	}
	requester := bladeID(e.peers, from)
	e.stats.DirRequests++
	e.busy(p, e.hdlDelay)
	ent := e.entry(req.Key)
	ent.mu.Lock(p)
	defer ent.mu.Unlock()
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getXResp{Redirect: true, NewHome: to}, ctrlSize
	}
	e.heat.Touch(req.Key)

	trace(req.Key, "t=%v home%d GETX from %d state=%d owner=%d sharers=%v", e.k.Now(), e.self, requester, ent.state, ent.owner, ent.sharers)
	switch ent.state {
	case dirShared:
		// Invalidate every other sharer in parallel. A dropped Inv would
		// leave a stale Shared copy serving old data, so each one retries
		// under the engine policy before the sharer is written off as dead.
		grp := sim.NewGroup(e.k)
		for _, s := range sortedSharers(ent.sharers) {
			if s == requester {
				continue
			}
			s := s
			grp.Add(1)
			e.k.Go("inv", func(q *sim.Proc) {
				defer grp.Done()
				e.conn.CallRetry(q, e.peers[s], "coh.inv", invReq{Key: req.Key}, ctrlSize, e.retry)
			})
		}
		grp.Wait(p)

	case dirModified:
		if ent.owner != requester {
			e.conn.CallRetry(p, e.peers[ent.owner], "coh.invm", invMReq{Key: req.Key}, ctrlSize, e.retry)
		}
	}
	ent.state = dirModified
	ent.owner = requester
	ent.ownerEpoch = req.Epoch
	ent.sharers = make(map[int]bool)
	ent.epochs = make(map[int]uint64)
	return getXResp{}, ctrlSize
}

// handleGetV serves a hot-key cache tier value fetch as the home blade:
// the key's current bytes, with no sharer registration and no directory
// state transition (see getVReq). The home's own coherent copy — any
// non-Invalid state, dirty or clean — satisfies it without touching the
// directory entry or its mutex, so tier fills of a write-hot key do not
// convoy behind the GetS downgrade path. Only when the home holds no
// copy does the fetch consult the directory: a dirty remote owner is
// probed with a plain fetch (no downgrade — it keeps exclusive
// ownership), a sharer serves a peer transfer, and an Invalid entry
// means the backing store is current (invariant 3).
func (e *Engine) handleGetV(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(getVReq)
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getVResp{Redirect: true, NewHome: to}, ctrlSize
	}
	e.stats.ValueFetches++
	e.busy(p, e.hdlDelay)
	e.heat.Touch(req.Key)
	if ent, ok := e.cache.Get(req.Key); ok && ent.State != cache.Invalid {
		trace(req.Key, "t=%v home%d GETV local state=%v dirty=%v d0=%d", e.k.Now(), e.self, ent.State, ent.Dirty, d0(ent.Data))
		return getVResp{Data: append([]byte(nil), ent.Data...)}, ctrlSize + len(ent.Data)
	}
	ent := e.entry(req.Key)
	ent.mu.Lock(p)
	defer ent.mu.Unlock()
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getVResp{Redirect: true, NewHome: to}, ctrlSize
	}
	trace(req.Key, "t=%v home%d GETV state=%d owner=%d sharers=%v", e.k.Now(), e.self, ent.state, ent.owner, ent.sharers)
	switch ent.state {
	case dirModified:
		// A plain fetch, not a downgrade: the owner keeps its Modified
		// copy and the directory does not transition, so the next write
		// at the owner stays a local in-place update. A Gone owner is
		// mid-install or has evicted; either way every acknowledged write
		// has been destaged (makeRoom and InvM write dirty data back
		// before dropping it), so the backing store is current.
		raw, err := e.conn.CallRetry(p, e.peers[ent.owner], "coh.fetch", fetchReq{Key: req.Key}, ctrlSize, e.retry)
		if err == nil {
			if fr := raw.(fetchResp); !fr.Gone {
				return getVResp{Data: fr.Data}, ctrlSize + len(fr.Data)
			}
		}
		return getVResp{}, ctrlSize
	case dirShared:
		if e.noPeerFetch {
			return getVResp{}, ctrlSize
		}
		for _, s := range sortedSharers(ent.sharers) {
			raw, err := e.conn.CallRetry(p, e.peers[s], "coh.fetch", fetchReq{Key: req.Key}, ctrlSize, e.retry)
			if err != nil {
				delete(ent.sharers, s)
				delete(ent.epochs, s)
				if len(ent.sharers) == 0 {
					ent.state = dirInvalid
				}
				continue
			}
			if fr := raw.(fetchResp); !fr.Gone {
				return getVResp{Data: fr.Data}, ctrlSize + len(fr.Data)
			}
			break
		}
		return getVResp{}, ctrlSize
	default: // dirInvalid: no copies anywhere, backing store current
		return getVResp{}, ctrlSize
	}
}

// handleInv drops a Shared copy.
func (e *Engine) handleInv(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(invReq)
	e.stats.Invalidations++
	trace(req.Key, "t=%v blade%d INV", e.k.Now(), e.self)
	e.invEpoch[req.Key]++
	if ent, ok := e.cache.Peek(req.Key); ok {
		e.cache.Remove(ent.Key)
	}
	return invResp{}, ctrlSize
}

// handleInvM surrenders Modified ownership to a blade about to overwrite
// the block. A dirty payload is destaged before the copy is dropped: this
// blade holds the ONLY copy of the last acknowledged write, and the new
// owner's superseding block does not exist anywhere yet — its install can
// trail the grant by a long makeRoom stall, and during that window a
// reader's downgrade probe finds the new owner empty and falls back to
// the backing store under invariant 3 ("no copies ⇒ backing current").
// Dropping acked dirty data here without a writeback is what used to
// break that invariant and serve pre-ack data to concurrent readers.
func (e *Engine) handleInvM(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(invMReq)
	e.stats.Invalidations++
	trace(req.Key, "t=%v blade%d INVM", e.k.Now(), e.self)
	e.invEpoch[req.Key]++
	ent, ok := e.cache.Peek(req.Key)
	if !ok {
		return invMResp{Gone: true}, ctrlSize
	}
	// A writeback may be mid-flight for this entry; wait it out so the
	// backing-store writes of old and new owner cannot interleave.
	for ent.Pinned {
		p.Sleep(50 * sim.Microsecond)
	}
	if ent, ok := e.cache.Peek(req.Key); ok && ent.Dirty {
		ent.Pinned = true
		err := e.backing.WriteBlock(p, req.Key, ent.Data)
		ent.Pinned = false
		if err != nil {
			// A store that refuses the destage leaves the pre-drop
			// behavior (and its staleness window); the write path stays
			// available either way.
			e.stats.WritebackErrors++
		} else {
			e.stats.Writebacks++
		}
	}
	e.cache.Remove(req.Key)
	return invMResp{}, ctrlSize
}

// handleDowngrade resolves a read of this blade's Modified copy. A clean
// copy downgrades to Shared (the backing store already matches, so
// invariant 1 holds). A dirty copy is NOT written back: its data is
// forwarded to the reader while this blade keeps exclusive ownership —
// owner-forwarding, which spares the read path the synchronous RAID
// writeback; the background flusher destages and a later read completes
// the downgrade cheaply.
//
// If the entry is absent — either evicted (notice in flight) or not yet
// installed by an in-flight grant — the epoch bump aborts any pending
// install here, so replying Gone is safe: this blade holds and will hold
// nothing for the key until it re-requests.
func (e *Engine) handleDowngrade(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(downgradeReq)
	e.stats.Downgrades++
	trace(req.Key, "t=%v blade%d DOWNGRADE", e.k.Now(), e.self)
	ent, ok := e.cache.Peek(req.Key)
	if !ok {
		e.invEpoch[req.Key]++
		return downgradeResp{Gone: true}, ctrlSize
	}
	for ent.Pinned {
		p.Sleep(50 * sim.Microsecond)
	}
	if _, still := e.cache.Peek(req.Key); !still {
		e.invEpoch[req.Key]++
		return downgradeResp{Gone: true}, ctrlSize
	}
	if ent.Dirty {
		return downgradeResp{Data: append([]byte(nil), ent.Data...), StillDirty: true}, ctrlSize + len(ent.Data)
	}
	ent.State = cache.Shared
	return downgradeResp{Data: append([]byte(nil), ent.Data...)}, ctrlSize + len(ent.Data)
}

// handleFetch serves a peer-cache read of a Shared block. A Gone reply is
// informational only: the home keeps this blade in the sharer set (we may
// be mid-install from our own grant), so future invalidations still reach
// us and no epoch bump is needed here.
func (e *Engine) handleFetch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(fetchReq)
	ent, ok := e.cache.Peek(req.Key)
	if !ok || ent.State == cache.Invalid {
		trace(req.Key, "t=%v blade%d FETCH gone", e.k.Now(), e.self)
		return fetchResp{Gone: true}, ctrlSize
	}
	e.busy(p, e.hdlDelay)
	return fetchResp{Data: append([]byte(nil), ent.Data...)}, ctrlSize + len(ent.Data)
}

// handleEvictNote processes an asynchronous eviction notice.
func (e *Engine) handleEvictNote(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	note := args.(evictNote)
	if to, ok := e.forward[note.Key]; ok {
		// The key's home migrated away; relay the notice so the new home's
		// sharer set does not go stale.
		e.conn.Go(p, e.peers[to], "coh.evict", note, ctrlSize, 0)
		return nil, 0
	}
	ent, ok := e.dir[note.Key]
	if !ok {
		return nil, 0
	}
	// Only deregister if the notice matches the recorded registration
	// epoch. A stale notice — the blade evicted, then re-requested and
	// re-registered under a newer epoch before the notice arrived (the
	// ex-home relay above adds a whole extra hop for it to lose) — must
	// be dropped: removing the re-registered sharer would strand its
	// live copy outside the sharer set, where GetX invalidations cannot
	// reach it and local hits would serve stale data indefinitely.
	switch ent.state {
	case dirShared:
		if ent.sharers[note.From] && note.Epoch >= ent.epochs[note.From] {
			delete(ent.sharers, note.From)
			delete(ent.epochs, note.From)
			if len(ent.sharers) == 0 {
				ent.state = dirInvalid
			}
		}
	case dirModified:
		if note.WasOwner && ent.owner == note.From && note.Epoch >= ent.ownerEpoch {
			ent.state = dirInvalid // backing store current, invariant 3
		}
	}
	return nil, 0
}
