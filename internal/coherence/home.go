package coherence

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func bladeID(peers []simnet.Addr, addr simnet.Addr) int {
	for i, a := range peers {
		if a == addr {
			return i
		}
	}
	return -1
}

// sortedSharers returns the sharer set as a sorted slice. Protocol fan-out
// must not follow Go's randomized map order: the event sequence (and with
// it the whole run) has to be identical for a given seed.
func sortedSharers(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// handleGetS serves a read-share request as the home blade.
func (e *Engine) handleGetS(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(getSReq)
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getSResp{Redirect: true, NewHome: to}, ctrlSize
	}
	requester := bladeID(e.peers, from)
	e.stats.DirRequests++
	e.busy(p, e.hdlDelay)
	ent := e.entry(req.Key)
	ent.mu.Lock(p)
	defer ent.mu.Unlock()
	// The home may have migrated away while this request queued on the CPU
	// or the entry mutex (the migration handler holds the same mutex).
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getSResp{Redirect: true, NewHome: to}, ctrlSize
	}
	e.heat.Touch(req.Key)

	trace(req.Key, "t=%v home%d GETS from %d state=%d owner=%d sharers=%v", e.k.Now(), e.self, requester, ent.state, ent.owner, ent.sharers)
	switch ent.state {
	case dirInvalid:
		ent.state = dirShared
		ent.sharers = map[int]bool{requester: true}
		return getSResp{}, ctrlSize // backing store is current

	case dirShared:
		// Peer-cache transfer: try to serve from an existing sharer's
		// memory instead of disk ("cache data migrated to where it is
		// most needed", §6.3).
		var data []byte
		if e.noPeerFetch {
			ent.sharers[requester] = true
			return getSResp{}, ctrlSize
		}
		for _, s := range sortedSharers(ent.sharers) {
			if s == requester {
				continue
			}
			raw, err := e.conn.CallRetry(p, e.peers[s], "coh.fetch", fetchReq{Key: req.Key}, ctrlSize, e.retry)
			if err != nil {
				// Unreachable (dead) sharer: drop it so GetX invalidations
				// don't stall on it later.
				delete(ent.sharers, s)
				continue
			}
			if fr := raw.(fetchResp); !fr.Gone {
				data = fr.Data
			}
			// A Gone sharer stays registered: it may be mid-install from
			// its own grant (entry not placed yet) or have evicted (the
			// async notice will clean up). Keeping it costs at most a
			// redundant invalidation; removing it would strand a copy
			// installed after this fetch, out of reach of invalidations.
			break
		}
		ent.sharers[requester] = true
		return getSResp{Data: data}, ctrlSize + len(data)

	default: // dirModified
		owner := ent.owner
		// Note: owner == requester is NOT short-circuited as "stale
		// directory, owner must have evicted". The owner blade can be
		// mid-write — GetX granted but the Modified copy not yet installed —
		// while a second proc on the same blade misses locally and sends
		// this GetS. Assuming eviction here would downgrade the directory
		// and declare the stale backing store current, and the reader's
		// backing fetch would then clobber the just-installed dirty block.
		// The downgrade probe below tells the cases apart: a truly evicted
		// owner answers Gone (invariant 3: backing is current), a mid-write
		// owner answers Gone too but its bumped invEpoch makes both the
		// reader skip its install and the writer re-acquire ownership.
		raw, err := e.conn.CallRetry(p, e.peers[owner], "coh.downgrade", downgradeReq{Key: req.Key}, ctrlSize, e.retry)
		if err == nil {
			dr := raw.(downgradeResp)
			if dr.StillDirty {
				// Owner-forwarding: the dirty owner serves the read
				// directly and keeps exclusive ownership; the reader
				// must not cache. Once the owner's flusher destages,
				// the next GetS downgrades cheaply to Shared.
				return getSResp{Data: dr.Data, NoCache: true}, ctrlSize + len(dr.Data)
			}
			if !dr.Gone {
				// Clean owner downgraded to Shared; backing store is
				// current (the copy was clean).
				ent.state = dirShared
				ent.sharers = map[int]bool{requester: true, owner: true}
				return getSResp{Data: dr.Data}, ctrlSize + len(dr.Data)
			}
		}
		// Gone or dead owner: per invariant 3 the backing store is
		// current.
		ent.state = dirShared
		ent.sharers = map[int]bool{requester: true}
		return getSResp{}, ctrlSize
	}
}

// handleGetX serves an exclusive-ownership request as the home blade.
// The requester is about to overwrite the whole block, so no data flows.
func (e *Engine) handleGetX(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(getXReq)
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getXResp{Redirect: true, NewHome: to}, ctrlSize
	}
	requester := bladeID(e.peers, from)
	e.stats.DirRequests++
	e.busy(p, e.hdlDelay)
	ent := e.entry(req.Key)
	ent.mu.Lock(p)
	defer ent.mu.Unlock()
	if to, ok := e.forward[req.Key]; ok {
		e.stats.RedirectsServed++
		return getXResp{Redirect: true, NewHome: to}, ctrlSize
	}
	e.heat.Touch(req.Key)

	trace(req.Key, "t=%v home%d GETX from %d state=%d owner=%d sharers=%v", e.k.Now(), e.self, requester, ent.state, ent.owner, ent.sharers)
	switch ent.state {
	case dirShared:
		// Invalidate every other sharer in parallel. A dropped Inv would
		// leave a stale Shared copy serving old data, so each one retries
		// under the engine policy before the sharer is written off as dead.
		grp := sim.NewGroup(e.k)
		for _, s := range sortedSharers(ent.sharers) {
			if s == requester {
				continue
			}
			s := s
			grp.Add(1)
			e.k.Go("inv", func(q *sim.Proc) {
				defer grp.Done()
				e.conn.CallRetry(q, e.peers[s], "coh.inv", invReq{Key: req.Key}, ctrlSize, e.retry)
			})
		}
		grp.Wait(p)

	case dirModified:
		if ent.owner != requester {
			e.conn.CallRetry(p, e.peers[ent.owner], "coh.invm", invMReq{Key: req.Key}, ctrlSize, e.retry)
		}
	}
	ent.state = dirModified
	ent.owner = requester
	ent.sharers = make(map[int]bool)
	return getXResp{}, ctrlSize
}

// handleInv drops a Shared copy.
func (e *Engine) handleInv(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(invReq)
	e.stats.Invalidations++
	trace(req.Key, "t=%v blade%d INV", e.k.Now(), e.self)
	e.invEpoch[req.Key]++
	if ent, ok := e.cache.Peek(req.Key); ok {
		e.cache.Remove(ent.Key)
	}
	return invResp{}, ctrlSize
}

// handleInvM surrenders Modified ownership to a blade about to overwrite
// the block. The dirty payload (if any) is superseded, so it is dropped
// without a writeback; the home directory records the new owner.
func (e *Engine) handleInvM(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(invMReq)
	e.stats.Invalidations++
	trace(req.Key, "t=%v blade%d INVM", e.k.Now(), e.self)
	e.invEpoch[req.Key]++
	ent, ok := e.cache.Peek(req.Key)
	if !ok {
		return invMResp{Gone: true}, ctrlSize
	}
	// A writeback may be mid-flight for this entry; wait it out so the
	// backing-store writes of old and new owner cannot interleave.
	for ent.Pinned {
		p.Sleep(50 * sim.Microsecond)
	}
	e.cache.Remove(req.Key)
	return invMResp{}, ctrlSize
}

// handleDowngrade resolves a read of this blade's Modified copy. A clean
// copy downgrades to Shared (the backing store already matches, so
// invariant 1 holds). A dirty copy is NOT written back: its data is
// forwarded to the reader while this blade keeps exclusive ownership —
// owner-forwarding, which spares the read path the synchronous RAID
// writeback; the background flusher destages and a later read completes
// the downgrade cheaply.
//
// If the entry is absent — either evicted (notice in flight) or not yet
// installed by an in-flight grant — the epoch bump aborts any pending
// install here, so replying Gone is safe: this blade holds and will hold
// nothing for the key until it re-requests.
func (e *Engine) handleDowngrade(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(downgradeReq)
	e.stats.Downgrades++
	trace(req.Key, "t=%v blade%d DOWNGRADE", e.k.Now(), e.self)
	ent, ok := e.cache.Peek(req.Key)
	if !ok {
		e.invEpoch[req.Key]++
		return downgradeResp{Gone: true}, ctrlSize
	}
	for ent.Pinned {
		p.Sleep(50 * sim.Microsecond)
	}
	if _, still := e.cache.Peek(req.Key); !still {
		e.invEpoch[req.Key]++
		return downgradeResp{Gone: true}, ctrlSize
	}
	if ent.Dirty {
		return downgradeResp{Data: append([]byte(nil), ent.Data...), StillDirty: true}, ctrlSize + len(ent.Data)
	}
	ent.State = cache.Shared
	return downgradeResp{Data: append([]byte(nil), ent.Data...)}, ctrlSize + len(ent.Data)
}

// handleFetch serves a peer-cache read of a Shared block. A Gone reply is
// informational only: the home keeps this blade in the sharer set (we may
// be mid-install from our own grant), so future invalidations still reach
// us and no epoch bump is needed here.
func (e *Engine) handleFetch(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(fetchReq)
	ent, ok := e.cache.Peek(req.Key)
	if !ok || ent.State == cache.Invalid {
		trace(req.Key, "t=%v blade%d FETCH gone", e.k.Now(), e.self)
		return fetchResp{Gone: true}, ctrlSize
	}
	e.busy(p, e.hdlDelay)
	return fetchResp{Data: append([]byte(nil), ent.Data...)}, ctrlSize + len(ent.Data)
}

// handleEvictNote processes an asynchronous eviction notice.
func (e *Engine) handleEvictNote(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	note := args.(evictNote)
	if to, ok := e.forward[note.Key]; ok {
		// The key's home migrated away; relay the notice so the new home's
		// sharer set does not go stale.
		e.conn.Go(p, e.peers[to], "coh.evict", note, ctrlSize, 0)
		return nil, 0
	}
	ent, ok := e.dir[note.Key]
	if !ok {
		return nil, 0
	}
	switch ent.state {
	case dirShared:
		delete(ent.sharers, note.From)
		if len(ent.sharers) == 0 {
			ent.state = dirInvalid
		}
	case dirModified:
		if note.WasOwner && ent.owner == note.From {
			ent.state = dirInvalid // backing store current, invariant 3
		}
	}
	return nil, 0
}
