package coherence

import (
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
)

// defaultHeatHalfLife is the decay half-life of the per-key demand
// counters: a key that stops being requested loses half its heat every
// half-life of virtual time, so the hottest-key ranking tracks *current*
// demand, not lifetime popularity.
const defaultHeatHalfLife = 250 * sim.Millisecond

// heatSweepEvery bounds the heat map's memory: every this many touches the
// tracker sweeps out keys whose decayed count has fallen below ~half a
// request, so a shifting working set cannot grow the map without bound.
const heatSweepEvery = 4096

// KeyHeat pairs a block key with its decayed demand, as returned by
// Hottest.
type KeyHeat struct {
	Key  cache.Key
	Heat float64
}

type heatCell struct {
	v float64  // decayed count as of t
	t sim.Time // last decay instant
}

// heatTracker maintains exponentially decayed per-key request counters in
// virtual time. All arithmetic is on virtual-time ratios, so two same-seed
// runs produce bit-identical heat values and therefore identical
// migration choices.
type heatTracker struct {
	k        *sim.Kernel
	halfLife sim.Duration
	m        map[cache.Key]*heatCell
	touches  int
}

func newHeatTracker(k *sim.Kernel, halfLife sim.Duration) *heatTracker {
	if halfLife <= 0 {
		halfLife = defaultHeatHalfLife
	}
	return &heatTracker{k: k, halfLife: halfLife, m: make(map[cache.Key]*heatCell)}
}

// decayTo folds the elapsed virtual time into the cell's counter.
func (h *heatTracker) decayTo(c *heatCell, now sim.Time) {
	if dt := now.Sub(c.t); dt > 0 {
		c.v *= math.Exp2(-float64(dt) / float64(h.halfLife))
		c.t = now
	}
}

// Touch records one request for key at the current virtual time.
func (h *heatTracker) Touch(key cache.Key) {
	now := h.k.Now()
	c, ok := h.m[key]
	if !ok {
		c = &heatCell{t: now}
		h.m[key] = c
	}
	h.decayTo(c, now)
	c.v++
	h.touches++
	if h.touches >= heatSweepEvery {
		h.touches = 0
		h.sweep(now)
	}
}

func (h *heatTracker) sweep(now sim.Time) {
	for k, c := range h.m {
		h.decayTo(c, now)
		if c.v < 0.5 {
			delete(h.m, k)
		}
	}
}

// Take removes key's counter and returns its decayed value — used when a
// home migrates so the heat travels with the directory entry.
func (h *heatTracker) Take(key cache.Key) float64 {
	c, ok := h.m[key]
	if !ok {
		return 0
	}
	h.decayTo(c, h.k.Now())
	delete(h.m, key)
	return c.v
}

// Seed installs (or restores) a counter for key at value v.
func (h *heatTracker) Seed(key cache.Key, v float64) {
	if v <= 0 {
		return
	}
	h.m[key] = &heatCell{v: v, t: h.k.Now()}
}

// Hottest returns up to n keys ordered by decayed heat (hottest first; ties
// broken by Vol then LBA so the ranking is deterministic).
func (h *heatTracker) Hottest(n int) []KeyHeat {
	now := h.k.Now()
	out := make([]KeyHeat, 0, len(h.m))
	for k, c := range h.m {
		h.decayTo(c, now)
		if c.v < 0.5 {
			continue
		}
		out = append(out, KeyHeat{Key: k, Heat: c.v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Heat != b.Heat {
			return a.Heat > b.Heat
		}
		if a.Key.Vol != b.Key.Vol {
			return a.Key.Vol < b.Key.Vol
		}
		return a.Key.LBA < b.Key.LBA
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Reset drops every counter (membership change: homes were rehashed).
func (h *heatTracker) Reset() { h.m = make(map[cache.Key]*heatCell); h.touches = 0 }
