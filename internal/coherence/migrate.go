package coherence

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Home migration (hot-spot rebalancing). The balance controller sends
// "coh.migrate" to the blade currently homing a hot key; that blade
// quiesces the directory entry (its mutex serializes against in-flight
// GetS/GetX), hands the entry to the new home via "coh.adopt", broadcasts
// the new address via "coh.sethome" in sorted blade order, then installs a
// forwarder for itself. The sethome broadcast is best-effort: a blade that
// misses it keeps sending requests to the old home, which answers with a
// Redirect carrying the new address, so routing converges without a
// membership change. Every step is a synchronous RPC issued from one
// handler proc, so the whole exchange is deterministic for a given seed
// and trace-instrumented exactly like the GetS/GetX paths (the fabric
// propagates the balancer's trace context into this handler).

// RequestMigrate asks the blade at peer — key's current home — to migrate
// its directory entry to blade to. The balance controller calls this from
// its own fabric endpoint; Moved=false with a nil error means the home
// declined (stale candidate), which callers treat as a skipped decision.
func RequestMigrate(p *sim.Proc, conn *simnet.Conn, peer simnet.Addr, key cache.Key, to int, retry simnet.RetryPolicy) (bool, error) {
	raw, err := conn.CallRetry(p, peer, "coh.migrate", migrateReq{Key: key, To: to}, ctrlSize, retry)
	if err != nil {
		return false, err
	}
	resp := raw.(migrateResp)
	if resp.Err != "" {
		return false, errors.New(resp.Err)
	}
	return resp.Moved, nil
}

// handleMigrate hands this blade's directory entry for a key to another
// blade. Replies with Moved=false (and a reason) when this blade no longer
// homes the key or the target is unusable; the balancer treats that as a
// skipped decision, not an error.
func (e *Engine) handleMigrate(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(migrateReq)
	e.busy(p, e.hdlDelay)
	if req.To == e.self {
		return migrateResp{Err: "target is the current home"}, ctrlSize
	}
	target := false
	for _, b := range e.alive {
		if b == req.To {
			target = true
			break
		}
	}
	if !target {
		return migrateResp{Err: fmt.Sprintf("target blade %d not in membership", req.To)}, ctrlSize
	}
	if h, err := e.home(req.Key); err != nil || h != e.self {
		return migrateResp{Err: fmt.Sprintf("blade %d does not home %v", e.self, req.Key)}, ctrlSize
	}
	ent := e.entry(req.Key)
	ent.mu.Lock(p)
	defer ent.mu.Unlock()
	// Quiesce point: holding the entry mutex means no GetS/GetX for this
	// key is mid-protocol on this blade.
	if _, ok := e.forward[req.Key]; ok {
		return migrateResp{Err: "already migrated"}, ctrlSize
	}
	trace(req.Key, "t=%v home%d MIGRATE -> %d state=%d owner=%d sharers=%v",
		e.k.Now(), e.self, req.To, ent.state, ent.owner, ent.sharers)
	heat := e.heat.Take(req.Key)
	sharers := sortedSharers(ent.sharers)
	epochs := make([]uint64, len(sharers))
	for i, s := range sharers {
		epochs[i] = ent.epochs[s]
	}
	areq := adoptReq{
		Key:          req.Key,
		State:        uint8(ent.state),
		Owner:        ent.owner,
		Sharers:      sharers,
		SharerEpochs: epochs,
		OwnerEpoch:   ent.ownerEpoch,
		Heat:         heat,
	}
	if _, err := e.call(p, req.To, "coh.adopt", areq, ctrlSize); err != nil {
		// Adoption never happened: the home is unchanged, restore the heat.
		e.heat.Seed(req.Key, heat)
		return migrateResp{Err: fmt.Sprintf("adopt: %v", err)}, ctrlSize
	}
	for _, b := range e.alive {
		if b == e.self || b == req.To {
			continue
		}
		// Best-effort: a blade that misses this learns via Redirect.
		e.call(p, b, "coh.sethome", setHomeReq{Key: req.Key, Home: req.To}, ctrlSize)
	}
	e.forward[req.Key] = req.To
	e.setHomeOverride(req.Key, req.To)
	delete(e.dir, req.Key)
	e.stats.HomeMigrations++
	return migrateResp{Moved: true}, ctrlSize
}

// handleAdopt installs a migrated directory entry as the new home.
func (e *Engine) handleAdopt(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(adoptReq)
	e.busy(p, e.hdlDelay)
	delete(e.forward, req.Key)
	e.setHomeOverride(req.Key, e.self)
	ent := e.entry(req.Key)
	ent.state = dirState(req.State)
	ent.owner = req.Owner
	ent.ownerEpoch = req.OwnerEpoch
	ent.sharers = make(map[int]bool, len(req.Sharers))
	ent.epochs = make(map[int]uint64, len(req.Sharers))
	for i, s := range req.Sharers {
		ent.sharers[s] = true
		ent.epochs[s] = req.SharerEpochs[i]
	}
	e.heat.Seed(req.Key, req.Heat)
	e.stats.HomeAdoptions++
	trace(req.Key, "t=%v blade%d ADOPT state=%d owner=%d sharers=%v",
		e.k.Now(), e.self, ent.state, ent.owner, ent.sharers)
	return adoptResp{}, ctrlSize
}

// handleSetHome records a migrated key's new home address.
func (e *Engine) handleSetHome(p *sim.Proc, from simnet.Addr, args any) (any, int) {
	req := args.(setHomeReq)
	if _, ok := e.forward[req.Key]; ok {
		// This blade is an even older ex-home: keep its forwarder pointing
		// at the latest address so redirect chains stay one hop.
		e.forward[req.Key] = req.Home
	}
	e.setHomeOverride(req.Key, req.Home)
	return setHomeResp{}, ctrlSize
}
