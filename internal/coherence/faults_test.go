package coherence

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// failingBacking refuses every write after the first `allow` and serves
// zero-filled reads — a stable store that has stopped draining.
type failingBacking struct {
	delay  sim.Duration
	allow  int
	writes int64
}

func (f *failingBacking) ReadBlock(p *sim.Proc, key cache.Key) ([]byte, error) {
	p.Sleep(f.delay)
	return make([]byte, blockSize), nil
}

func (f *failingBacking) WriteBlock(p *sim.Proc, key cache.Key, data []byte) error {
	p.Sleep(f.delay)
	f.writes++
	if f.writes > int64(f.allow) {
		return errors.New("backing store refusing writes")
	}
	return nil
}

// newHarnessFull is newHarness with a caller-supplied backing store and
// fabric retry policy.
func newHarnessFull(seed int64, blades, cacheBlocks int, backing Backing, retry simnet.RetryPolicy) *harness {
	k := sim.NewKernel(seed)
	net := simnet.New(k)
	peers := make([]simnet.Addr, blades)
	for i := range peers {
		peers[i] = simnet.Addr(fmt.Sprintf("blade%d", i))
		net.Connect(peers[i], "fabric", simnet.FC2G)
	}
	h := &harness{k: k, net: net}
	for i := 0; i < blades; i++ {
		conn := simnet.NewConn(net, peers[i])
		h.engines = append(h.engines, New(k, Config{
			Conn:         conn,
			Peers:        peers,
			Self:         i,
			Cache:        cache.New(cacheBlocks),
			Backing:      backing,
			BlockSize:    blockSize,
			OpDelay:      10 * sim.Microsecond,
			HandlerDelay: 5 * sim.Microsecond,
			Retry:        retry,
		}))
	}
	return h
}

func newHarnessBacking(seed int64, blades, cacheBlocks int, backing Backing) *harness {
	return newHarnessFull(seed, blades, cacheBlocks, backing, simnet.RetryPolicy{})
}

// Regression: makeRoom used to spin forever when the backing store kept
// refusing the writeback of the selected dirty victim — Victim() reselects
// the same entry, so a persistent error wedged the process. It must now
// give up after a bounded number of attempts and surface the error.
func TestMakeRoomBoundedOnFailingBacking(t *testing.T) {
	fb := &failingBacking{delay: 2 * sim.Millisecond}
	h := newHarnessBacking(1, 2, 1, fb)
	var werr error
	h.run(func(p *sim.Proc) {
		// First write fills the 1-block cache with a dirty entry.
		if err := h.engines[0].WriteBlock(p, kb(1), blk(1), 0); err != nil {
			t.Errorf("first write: %v", err)
		}
		// Second write needs room; the dirty victim cannot be destaged.
		werr = h.engines[0].WriteBlock(p, kb(2), blk(2), 0)
	})
	if werr == nil {
		t.Fatal("write succeeded despite undrainable cache")
	}
	st := h.engines[0].Stats()
	if st.WritebackErrors != maxWritebackFailures {
		t.Fatalf("WritebackErrors = %d, want %d (bounded retry)", st.WritebackErrors, maxWritebackFailures)
	}
	// The dirty block must still be cached (nothing was lost).
	if e, ok := h.engines[0].Cache().Peek(kb(1)); !ok || !e.Dirty {
		t.Fatal("dirty victim discarded after failed writeback")
	}
}

// The read path degrades instead: a failed makeRoom serves the block
// uncached rather than failing the read.
func TestReadDegradesWhenCacheCannotDrain(t *testing.T) {
	fb := &failingBacking{delay: 2 * sim.Millisecond}
	h := newHarnessBacking(1, 2, 1, fb)
	var data []byte
	var rerr error
	h.run(func(p *sim.Proc) {
		if err := h.engines[0].WriteBlock(p, kb(1), blk(1), 0); err != nil {
			t.Errorf("write: %v", err)
		}
		data, rerr = h.engines[0].ReadBlock(p, kb(2), 0)
	})
	if rerr != nil {
		t.Fatalf("read failed instead of degrading: %v", rerr)
	}
	if len(data) != blockSize {
		t.Fatalf("read returned %d bytes", len(data))
	}
	if _, ok := h.engines[0].Cache().Peek(kb(2)); ok {
		t.Fatal("degraded read installed a copy despite a full, undrainable cache")
	}
}

// Regression for the write-retry livelock path: writer A wins the GetX
// grant for a block, then blocks in makeRoom destaging a dirty victim;
// writer B steals ownership meanwhile (InvM bumps A's epoch); A's
// post-makeRoom epoch re-check must detect the theft and retry rather than
// install a second Modified copy. Both writes must land.
func TestWriteRetryAcrossMakeRoom(t *testing.T) {
	h := newHarness(1, 4, 1) // 1-block caches force makeRoom on every write
	target := kb(100)
	var errA, errB error
	h.run(func(p *sim.Proc) {
		grp := sim.NewGroup(h.k)
		grp.Add(2)
		h.k.Go("writerA", func(q *sim.Proc) {
			defer grp.Done()
			// Dirty A's cache so the contended write must makeRoom
			// (2 ms of backing-store writeback).
			if err := h.engines[0].WriteBlock(q, kb(1), blk(1), 0); err != nil {
				errA = err
				return
			}
			errA = h.engines[0].WriteBlock(q, target, blk(0xA), 0)
		})
		h.k.Go("writerB", func(q *sim.Proc) {
			defer grp.Done()
			// Staggered to land inside A's makeRoom writeback window
			// (A blocks ~2 ms destaging kb(1) after winning the grant).
			q.Sleep(sim.Millisecond)
			errB = h.engines[1].WriteBlock(q, target, blk(0xB), 0)
		})
		grp.Wait(p)
	})
	if errA != nil || errB != nil {
		t.Fatalf("writes failed: A=%v B=%v", errA, errB)
	}
	retries := h.engines[0].Stats().WriteRetries + h.engines[1].Stats().WriteRetries
	if retries == 0 {
		t.Fatal("no write retry recorded; the ownership theft never happened and the test is vacuous")
	}
	// Exactly one writer's data must have won; read it back from a third
	// blade and check for a torn or lost block.
	var got []byte
	var rerr error
	h.run(func(p *sim.Proc) {
		got, rerr = h.engines[2].ReadBlock(p, target, 0)
	})
	if rerr != nil {
		t.Fatalf("readback: %v", rerr)
	}
	if got[0] != 0xA && got[0] != 0xB {
		t.Fatalf("readback = %#x, want one writer's value", got[0])
	}
	for i := range got {
		if got[i] != got[0] {
			t.Fatalf("torn block: byte %d = %#x, byte 0 = %#x", i, got[i], got[0])
		}
	}
}

// Under a lossy fabric the retry layer must absorb the injected faults:
// every operation completes, data converges, and nothing wedges.
func TestLossyFabricConverges(t *testing.T) {
	// A short per-attempt deadline with a deeper attempt budget: nested
	// handler chains (GetX → InvM) stack deadlines, so failing fast and
	// retrying beats three 2 s stalls.
	backing := newMemBacking(2 * sim.Millisecond)
	h := newHarnessFull(7, 4, 64, backing, simnet.RetryPolicy{
		Timeout:    50 * sim.Millisecond,
		Attempts:   6,
		Backoff:    sim.Millisecond,
		MaxBackoff: 8 * sim.Millisecond,
		Jitter:     sim.Millisecond,
	})
	h.net.SetFaultsAll(simnet.FaultPlan{
		DropProb:      0.02,
		DupProb:       0.01,
		DelayProb:     0.05,
		MaxExtraDelay: sim.Millisecond,
	})
	const nKeys = 24
	var errs []error
	h.run(func(p *sim.Proc) {
		grp := sim.NewGroup(h.k)
		for i := 0; i < nKeys; i++ {
			i := i
			grp.Add(1)
			h.k.Go("writer", func(q *sim.Proc) {
				defer grp.Done()
				if err := h.engines[i%4].WriteBlock(q, kb(int64(i)), blk(byte(i+1)), 0); err != nil {
					errs = append(errs, err)
				}
			})
		}
		grp.Wait(p)
		// Cross-reads from a different blade than the writer.
		for i := 0; i < nKeys; i++ {
			d, err := h.engines[(i+1)%4].ReadBlock(p, kb(int64(i)), 0)
			if err != nil {
				errs = append(errs, err)
				continue
			}
			if d[0] != byte(i+1) {
				t.Errorf("key %d = %#x, want %#x", i, d[0], byte(i+1))
			}
		}
	})
	if len(errs) != 0 {
		t.Fatalf("operations failed under lossy fabric: %v", errs)
	}
	if h.net.Faults.Dropped == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
	var retries int64
	for _, e := range h.engines {
		retries += e.RPCStats().Retries
	}
	if retries == 0 {
		t.Fatal("drops injected but no RPC retries recorded")
	}
}

// homeOf mirrors Engine.home for the test: rendezvous over a full alive
// set of n blades.
func homeOf(key cache.Key, n int) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", key.Vol, key.LBA)
	return int(h.Sum64() % uint64(n))
}

// A read whose home blade dies mid-call must fail within the retry budget
// instead of wedging the client process forever (the pre-retry behaviour
// with no default deadline).
func TestReadFailsCleanlyWhenHomeDies(t *testing.T) {
	h := newHarness(1, 4, 64)
	// Find a key homed on blade 1, read from blade 0.
	var key cache.Key
	for lba := int64(0); ; lba++ {
		if key = kb(lba); homeOf(key, 4) == 1 {
			break
		}
	}
	// The home dies while the GetS is in flight: the request is swallowed
	// at arrival, the attempt times out, and the retry finds the peer
	// unreachable.
	h.k.After(2*sim.Microsecond, func() { h.net.SetDown("blade1", true) })
	var rerr error
	var took sim.Time
	h.run(func(p *sim.Proc) {
		_, rerr = h.engines[0].ReadBlock(p, key, 0)
		took = p.Now()
	})
	if rerr == nil {
		t.Fatal("read to a dead home succeeded")
	}
	// One 2 s default deadline plus slack — not forever.
	if took > sim.Time(10*sim.Second) {
		t.Fatalf("read took %v to fail; deadline not bounding the call", took)
	}
}
