// Package coherence implements the inter-controller cache coherence of §2.2:
// a directory-based MSI protocol across controller blades. Every block has a
// home blade (by rendezvous hash over the live membership) whose directory
// entry serializes ownership transitions; blades cache Shared (clean) or
// Modified (possibly dirty, exclusive) copies and exchange
// GetS/GetX/Inv/Downgrade/Fetch messages over the blade fabric.
//
// Protocol invariants:
//
//  1. Directory Shared ⇒ every cached copy is clean AND the backing store
//     is current.
//  2. Directory Modified(o) ⇒ blade o holds the only copy; the backing
//     store may be stale.
//  3. A blade drops a Modified entry only after its data has reached the
//     backing store (eviction writes back first), OR in response to an
//     Inv-M whose requester is about to overwrite the whole block.
//
// Invariant 3 lets the home treat "owner no longer has it" replies as
// "backing store is current".
package coherence

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	tr "repro/internal/trace" // aliased: this package has a trace() debug helper
)

// Backing is the stable store beneath the coherent cache — in the full
// system, virtual volumes striped over RAID groups.
type Backing interface {
	ReadBlock(p *sim.Proc, key cache.Key) ([]byte, error)
	WriteBlock(p *sim.Proc, key cache.Key, data []byte) error
}

// ErrNoQuorum is returned when no live blade can home a block.
var ErrNoQuorum = errors.New("coherence: no live blades")

// ErrDegraded marks an operation abandoned because fabric retries were
// exhausted: the blade is up but could not complete the protocol exchange
// in time. Callers fail the one operation instead of wedging the process;
// the next operation retries from scratch.
var ErrDegraded = errors.New("coherence: degraded: fabric retries exhausted")

// Default fabric retry policy: a per-attempt deadline generous enough for
// a destage-laden protocol exchange, three attempts, jittered backoff.
const (
	defaultRPCTimeout  = 2 * sim.Second
	defaultRPCAttempts = 3
	defaultRPCBackoff  = 500 * sim.Microsecond
)

// Config assembles an Engine.
type Config struct {
	// Conn is this blade's fabric RPC endpoint.
	Conn *simnet.Conn
	// Peers lists every blade's fabric address; index = blade ID.
	Peers []simnet.Addr
	// Self is this blade's ID (index into Peers).
	Self int
	// Cache is the blade's block cache.
	Cache *cache.Cache
	// Backing is the stable store.
	Backing Backing
	// BlockSize is the coherence granularity in bytes.
	BlockSize int
	// OpDelay is the CPU cost charged per client operation.
	OpDelay sim.Duration
	// HandlerDelay is the CPU cost charged per protocol message handled.
	HandlerDelay sim.Duration
	// CPUSlots bounds concurrently executing operations on this blade.
	CPUSlots int
	// ReplicateDirty, if non-nil, runs after a write installs dirty data
	// and before the write is acknowledged (N-way replication hook, §6.1).
	// factor is the per-write replication factor (0 = manager default),
	// settable per file via the PFS policy metadata (§4).
	ReplicateDirty func(p *sim.Proc, key cache.Key, data []byte, version uint64, factor int) error
	// OnClean, if non-nil, runs when a dirty block reaches the backing
	// store (replicas may be released).
	OnClean func(p *sim.Proc, key cache.Key, version uint64)
	// NoPeerFetch disables cache-to-cache transfers on read misses
	// (ablation: every shared miss then reads the backing store).
	NoPeerFetch bool
	// ReadAhead, when positive, prefetches this many following blocks
	// after a detected sequential read run (§4).
	ReadAhead int
	// Retry tunes the bounded retry loop wrapped around every protocol
	// call (GetS/GetX/Inv/Downgrade/Fetch). Zero fields select defaults:
	// 2 s per-attempt deadline, 3 attempts, 500 µs jittered backoff.
	Retry simnet.RetryPolicy
	// HeatHalfLife sets the decay half-life of the per-key demand
	// counters feeding the hot-spot rebalancer (0 = 250 ms).
	HeatHalfLife sim.Duration
	// CPUQueue, if non-nil, replaces the FIFO CPU semaphore with a QoS
	// weighted-fair queue of the same slot count, so background services
	// (rebuild compute, destage) queue behind foreground ops per lane
	// weight instead of head-of-line blocking them.
	CPUQueue *qos.FairQueue
}

// Stats counts engine activity.
type Stats struct {
	Reads, Writes int64 // client operations served
	LocalHits     int64
	PeerFetches   int64 // data served from another blade's cache
	DiskReads     int64
	Writebacks    int64 // dirty blocks destaged
	Invalidations int64 // Inv/InvM messages handled
	Downgrades    int64
	DirRequests   int64 // GetS/GetX handled as home
	WriteRetries  int64
	Prefetches    int64 // readahead blocks pulled (§4)
	// ValueFetches counts coherence-bypassing value reads ("coh.getv")
	// this blade served as home — the hot-key cache tier's fill traffic.
	ValueFetches int64
	// DegradedOps counts protocol calls abandoned after the fabric retry
	// budget was exhausted (the op failed with ErrDegraded).
	DegradedOps int64
	// WritebackErrors counts failed destages of dirty blocks (makeRoom
	// and the flusher); the block stays dirty and is retried later.
	WritebackErrors int64
	// HomeMigrations counts directory homes this blade handed away;
	// HomeAdoptions counts homes it took over (hot-spot rebalancing).
	HomeMigrations int64
	HomeAdoptions  int64
	// RedirectsServed counts requests for a migrated-away key answered
	// with the new home's address; RedirectsFollowed counts requests this
	// blade re-issued after such an answer.
	RedirectsServed   int64
	RedirectsFollowed int64
}

type dirState uint8

const (
	dirInvalid dirState = iota
	dirShared
	dirModified
)

type dirEntry struct {
	state   dirState
	sharers map[int]bool
	owner   int
	// epochs records, per registered sharer, the install epoch its copy
	// lives under (the requester's invEpoch, carried in the GetS/GetX);
	// ownerEpoch is the same for the Modified owner. Asynchronous evict
	// notices carry the epoch the evicted copy lived under, and only a
	// notice whose epoch is current may deregister: a blade can evict,
	// re-request, and re-install while its notice is still in flight
	// (notably via the ex-home relay path after a migration), and an
	// unconditional removal would strand the fresh copy outside the
	// sharer set — unreachable by invalidations, serving stale data.
	epochs     map[int]uint64
	ownerEpoch uint64
	mu         *sim.Mutex
}

// Engine runs the coherence protocol for one blade.
type Engine struct {
	k         *sim.Kernel
	conn      *simnet.Conn
	peers     []simnet.Addr
	self      int
	cache     *cache.Cache
	backing   Backing
	blockSize int
	opDelay   sim.Duration
	hdlDelay  sim.Duration
	cpu       *sim.Semaphore
	cpuq      *qos.FairQueue
	retry     simnet.RetryPolicy

	alive []int // sorted live blade IDs; must agree across blades

	dir      map[cache.Key]*dirEntry
	invEpoch map[cache.Key]uint64

	// homeOverride maps migrated keys to their current home, consulted
	// before the rendezvous hash. forward marks keys this blade used to
	// home: requests that still arrive here bounce back with the new
	// address, so a blade that missed the sethome broadcast converges
	// instead of misrouting. heat feeds the rebalancer.
	homeOverride map[cache.Key]int
	forward      map[cache.Key]int
	heat         *heatTracker

	// idx is the fixed-stride home-lookup cache (see homeidx.go).
	idx *homeIndex

	// onWriteThrough, when installed, runs synchronously on the WRITER
	// blade after a write's Modified copy is installed (and replicated)
	// and before the write is acknowledged to the client. The hot-key
	// cache tier hangs its write-through invalidation here. The ordering
	// is what makes the tier's freshness guarantee airtight: a tier fill
	// snapshots its per-key epoch, fetches bytes, and installs only if
	// the epoch has not moved — so a fill that read pre-write bytes
	// either installed before this hook fired (the invalidation removes
	// the copy) or snapshots after it (the fetch then observes the
	// already-installed new bytes). Either way, by the time the writer's
	// client sees the ack, no tier node holds bytes older than the write.
	// Firing on the writer — not inside the home's GetX handler — also
	// keeps the fan-out RPCs outside the directory-entry mutex, so hot
	// keys don't convoy readers behind invalidation round trips.
	onWriteThrough func(p *sim.Proc, keys []cache.Key)

	// label is "blade<self>", precomputed for span Where fields.
	label string

	replicate func(p *sim.Proc, key cache.Key, data []byte, version uint64, factor int) error
	onClean   func(p *sim.Proc, key cache.Key, version uint64)

	stats Stats
	// down mirrors the cluster's view of this blade; a down engine
	// rejects client operations.
	down        bool
	noPeerFetch bool
	// batched selects the vectorized protocol plane (batched.go) for
	// client reads/writes issued through the controller.
	batched bool

	readAhead   int
	lastSeq     map[string]int64
	seqStreak   map[string]int
	prefetching map[cache.Key]bool
}

// Message and reply payloads. Wire sizes: control ~64 B, data adds the block.
const ctrlSize = 64

// Epoch in getSReq/getXReq is the requester's local install epoch for the
// key; the home records it with the registration so late evict notices
// (which carry the epoch the evicted copy lived under) can be told apart
// from a re-registration that happened after the eviction.
type getSReq struct {
	Key   cache.Key
	Epoch uint64
}
type getSResp struct {
	Data []byte // non-nil: serve from this payload (peer cache transfer)
	// NoCache marks data forwarded from a dirty owner: the requester
	// serves it but must not install a Shared copy (the owner retains
	// exclusive ownership until its data is destaged).
	NoCache bool
	// Redirect reports that this blade no longer homes the key; the
	// requester must retry at NewHome (and may cache the new address).
	Redirect bool
	NewHome  int
	Err      string
}
type getXReq struct {
	Key   cache.Key
	Epoch uint64
}
type getXResp struct {
	Redirect bool
	NewHome  int
	Err      string
}
type invReq struct{ Key cache.Key }
type invResp struct{}
type invMReq struct{ Key cache.Key }
type invMResp struct{ Gone bool }
type downgradeReq struct{ Key cache.Key }
type downgradeResp struct {
	Gone bool
	Data []byte
	// StillDirty reports that the owner forwarded dirty data without a
	// writeback and keeps ownership; the home must leave the directory
	// in Modified state and the requester must not cache the data.
	StillDirty bool
}
type fetchReq struct{ Key cache.Key }
type fetchResp struct {
	Gone bool
	Data []byte
}

// getVReq/getVResp implement the hot-key cache tier's fill path
// ("coh.getv"): a read of the key's current bytes that does NOT join the
// coherence domain. The requester is never registered as a sharer, the
// directory state never transitions, and the requester installs nothing
// into its coherence cache — the tier's freshness comes from the
// write-through hook (see onWriteThrough), not from MSI bookkeeping.
// Skipping the registration is what keeps hot keys cheap under mixed
// traffic: a registered fill copy would make every subsequent write pay
// an invalidation round trip inside the grant, and a GetS to a dirty hot
// key would serialize behind the downgrade probe on the entry mutex.
type getVReq struct{ Key cache.Key }
type getVResp struct {
	Data     []byte // nil: the backing store is current — read it locally
	Redirect bool
	NewHome  int
}
type evictNote struct {
	Key      cache.Key
	From     int
	WasOwner bool
	// Epoch is the install epoch the evicted copy lived under (the value
	// of the evictor's invEpoch before the eviction bumped it). The home
	// ignores the notice if the blade has since re-registered under a
	// newer epoch.
	Epoch uint64
}

// Home-migration payloads (hot-spot rebalancing, §2.2/§6.3). migrate is
// sent by the balance controller to the current home; adopt hands the
// directory entry (plus its heat) to the new home; sethome broadcasts the
// new address to the remaining blades.
type migrateReq struct {
	Key cache.Key
	To  int
}
type migrateResp struct {
	Moved bool
	Err   string
}
type adoptReq struct {
	Key   cache.Key
	State uint8
	Owner int
	// Sharers and SharerEpochs are parallel: the registration epochs must
	// migrate with the sharer set, or a pre-migration evict notice relayed
	// to the new home could deregister a copy re-installed after it.
	Sharers      []int
	SharerEpochs []uint64
	OwnerEpoch   uint64
	Heat         float64
}
type adoptResp struct{}
type setHomeReq struct {
	Key  cache.Key
	Home int
}
type setHomeResp struct{}

// NormalizeRetry fills pol's zero fields with the engine defaults — also
// used by management-plane callers (the balance controller) so their
// protocol RPCs retry exactly like blade-to-blade traffic.
func NormalizeRetry(pol simnet.RetryPolicy) simnet.RetryPolicy {
	if pol.Timeout <= 0 {
		pol.Timeout = defaultRPCTimeout
	}
	if pol.Attempts < 1 {
		pol.Attempts = defaultRPCAttempts
	}
	if pol.Backoff <= 0 {
		pol.Backoff = defaultRPCBackoff
	}
	if pol.Jitter <= 0 {
		pol.Jitter = pol.Backoff
	}
	return pol
}

// New builds an engine and registers its protocol handlers on cfg.Conn.
func New(k *sim.Kernel, cfg Config) *Engine {
	if cfg.BlockSize <= 0 {
		panic("coherence: BlockSize required")
	}
	slots := cfg.CPUSlots
	if slots <= 0 {
		slots = 4
	}
	retry := NormalizeRetry(cfg.Retry)
	e := &Engine{
		k:            k,
		conn:         cfg.Conn,
		peers:        cfg.Peers,
		self:         cfg.Self,
		cache:        cfg.Cache,
		backing:      cfg.Backing,
		blockSize:    cfg.BlockSize,
		opDelay:      cfg.OpDelay,
		hdlDelay:     cfg.HandlerDelay,
		cpu:          sim.NewSemaphore(k, slots),
		cpuq:         cfg.CPUQueue,
		retry:        retry,
		label:        fmt.Sprintf("blade%d", cfg.Self),
		dir:          make(map[cache.Key]*dirEntry),
		invEpoch:     make(map[cache.Key]uint64),
		homeOverride: make(map[cache.Key]int),
		forward:      make(map[cache.Key]int),
		heat:         newHeatTracker(k, cfg.HeatHalfLife),
		replicate:    cfg.ReplicateDirty,
		onClean:      cfg.OnClean,
		noPeerFetch:  cfg.NoPeerFetch,
		readAhead:    cfg.ReadAhead,
		lastSeq:      make(map[string]int64),
		seqStreak:    make(map[string]int),
		prefetching:  make(map[cache.Key]bool),
		idx:          newHomeIndex(),
	}
	for i := range cfg.Peers {
		e.alive = append(e.alive, i)
	}
	e.conn.Register("coh.gets", e.handleGetS)
	e.conn.Register("coh.getx", e.handleGetX)
	e.conn.Register("coh.inv", e.handleInv)
	e.conn.Register("coh.invm", e.handleInvM)
	e.conn.Register("coh.downgrade", e.handleDowngrade)
	e.conn.Register("coh.fetch", e.handleFetch)
	e.conn.Register("coh.getv", e.handleGetV)
	e.conn.Register("coh.evict", e.handleEvictNote)
	e.conn.Register("coh.migrate", e.handleMigrate)
	e.conn.Register("coh.adopt", e.handleAdopt)
	e.conn.Register("coh.sethome", e.handleSetHome)
	e.registerBatched()
	return e
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Cache returns the blade's cache (for inspection).
func (e *Engine) Cache() *cache.Cache { return e.cache }

// Self returns this blade's ID.
func (e *Engine) Self() int { return e.self }

// Alive returns the engine's current membership view.
func (e *Engine) Alive() []int { return append([]int(nil), e.alive...) }

// SetDown marks the engine up or down; down engines refuse client I/O.
func (e *Engine) SetDown(down bool) { e.down = down }

// SetWriteThroughHook installs (or, with nil, removes) the write-through
// hook: fn runs synchronously on this blade for every write it issues,
// after the Modified copy is installed and replicated, before the write
// returns to the caller. fn may issue fabric RPCs; no directory mutexes
// are held. See the onWriteThrough field for the ordering argument.
func (e *Engine) SetWriteThroughHook(fn func(p *sim.Proc, keys []cache.Key)) {
	e.onWriteThrough = fn
}

// home returns the blade ID that homes key: a migration override if one is
// installed, the rendezvous hash over the live membership otherwise. The
// fixed-stride index short-circuits repeats; its result is always exactly
// what the slow path below would compute (overrides and membership changes
// invalidate it wholesale).
func (e *Engine) home(key cache.Key) (int, error) {
	if len(e.alive) == 0 {
		return -1, ErrNoQuorum
	}
	if h, ok := e.idx.lookup(key); ok {
		return h, nil
	}
	hid, ok := e.homeOverride[key]
	if !ok {
		hid = e.alive[keyHash(key)%uint64(len(e.alive))]
	}
	e.idx.install(key, hid)
	return hid, nil
}

// setHomeOverride records a migrated key's home and invalidates the home
// index — every cached mapping may now be stale.
func (e *Engine) setHomeOverride(key cache.Key, home int) {
	e.homeOverride[key] = home
	e.idx.invalidate()
}

// Home exposes this blade's view of key's home blade — used by affinity
// routing (hosts with static paths to their data's controller) and by the
// rebalancer to validate migration candidates.
func (e *Engine) Home(key cache.Key) (int, error) { return e.home(key) }

// HottestHomes returns up to n of the hottest keys currently homed on this
// blade, ordered by decayed demand (deterministic tie-break).
func (e *Engine) HottestHomes(n int) []KeyHeat {
	ranked := e.heat.Hottest(n * 2)
	out := make([]KeyHeat, 0, n)
	for _, kh := range ranked {
		if len(out) >= n {
			break
		}
		if h, err := e.home(kh.Key); err == nil && h == e.self {
			out = append(out, kh)
		}
	}
	return out
}

// Busy charges d of CPU time against this blade's processor — used by
// cluster services (e.g. rebuild XOR compute, §2.4) that share the blade
// with the I/O path.
func (e *Engine) Busy(p *sim.Proc, d sim.Duration) { e.busy(p, d) }

// busy charges CPU for one operation of duration d. With a QoS queue
// installed the caller competes in its lane; otherwise the plain FIFO
// semaphore preserves the pre-QoS event order exactly.
func (e *Engine) busy(p *sim.Proc, d sim.Duration) {
	qs := tr.FromProc(p).Child("cpu-queue", tr.Queue, e.label)
	if e.cpuq != nil {
		e.cpuq.Acquire(p, qos.LaneOf(p), d.Millis())
		qs.End()
		p.Sleep(d)
		e.cpuq.Release()
		return
	}
	e.cpu.Acquire(p, 1)
	qs.End()
	p.Sleep(d)
	e.cpu.Release(1)
}

// call runs one protocol RPC under the engine's retry policy. An exhausted
// retry budget maps to ErrDegraded: the operation fails cleanly instead of
// wedging a process on a fabric that is dropping messages.
func (e *Engine) call(p *sim.Proc, blade int, method string, args any, size int) (any, error) {
	var sp *tr.Active
	if ctx := tr.FromProc(p); ctx.Valid() {
		sp = ctx.Child(method, tr.Coherence, fmt.Sprintf("blade%d", blade))
		defer sp.End()
	}
	raw, err := e.conn.CallRetry(p, e.peers[blade], method, args, size, e.retry)
	if err != nil {
		if errors.Is(err, simnet.ErrTimeout) {
			e.stats.DegradedOps++
			return nil, fmt.Errorf("%w: %s to blade %d: %v", ErrDegraded, method, blade, err)
		}
		return nil, err
	}
	return raw, nil
}

// RPCStats returns the fabric fault counters of this blade's connection
// (timeouts, retries, gave-up calls — shared with the replication manager).
func (e *Engine) RPCStats() simnet.RPCStats { return e.conn.Stats() }

// RegisterTelemetry publishes the engine's protocol counters, its cache,
// its fabric RPC endpoint, and its CPU occupancy under s (coh/...,
// cache/..., rpc/..., cpu_free).
func (e *Engine) RegisterTelemetry(s telemetry.Scope) {
	e.cache.RegisterTelemetry(s.Sub("cache"))
	e.conn.RegisterTelemetry(s.Sub("rpc"))
	coh := s.Sub("coh")
	coh.Int("reads", func() int64 { return e.stats.Reads })
	coh.Int("writes", func() int64 { return e.stats.Writes })
	coh.Int("local_hits", func() int64 { return e.stats.LocalHits })
	coh.Int("peer_fetches", func() int64 { return e.stats.PeerFetches })
	coh.Int("disk_reads", func() int64 { return e.stats.DiskReads })
	coh.Int("writebacks", func() int64 { return e.stats.Writebacks })
	coh.Int("value_fetches", func() int64 { return e.stats.ValueFetches })
	coh.Int("invalidations", func() int64 { return e.stats.Invalidations })
	coh.Int("downgrades", func() int64 { return e.stats.Downgrades })
	coh.Int("dir_requests", func() int64 { return e.stats.DirRequests })
	coh.Int("write_retries", func() int64 { return e.stats.WriteRetries })
	coh.Int("prefetches", func() int64 { return e.stats.Prefetches })
	coh.Int("degraded_ops", func() int64 { return e.stats.DegradedOps })
	coh.Int("writeback_errors", func() int64 { return e.stats.WritebackErrors })
	coh.Int("migrated_out", func() int64 { return e.stats.HomeMigrations })
	coh.Int("migrated_in", func() int64 { return e.stats.HomeAdoptions })
	coh.Int("redirects", func() int64 { return e.stats.RedirectsServed })
	coh.Int("home_idx_hits", func() int64 { return e.idx.hits })
	coh.Int("home_idx_misses", func() int64 { return e.idx.miss })
	s.Int("cpu_free", func() int64 { return int64(e.cpu.Available()) })
}

func (e *Engine) entry(key cache.Key) *dirEntry {
	ent, ok := e.dir[key]
	if !ok {
		ent = &dirEntry{sharers: make(map[int]bool), epochs: make(map[int]uint64), mu: sim.NewMutex(e.k)}
		e.dir[key] = ent
	}
	return ent
}

// ReadBlock returns the content of key's block, serving from the local
// cache when possible and running the coherence protocol otherwise. When
// readahead is configured, a detected sequential run asynchronously pulls
// the following blocks into the cache (§4: "storage prefetch operations").
func (e *Engine) ReadBlock(p *sim.Proc, key cache.Key, priority int) ([]byte, error) {
	data, err := e.readBlock(p, key, priority)
	if err == nil {
		e.maybeReadAhead(key, priority)
	}
	return data, err
}

func (e *Engine) readBlock(p *sim.Proc, key cache.Key, priority int) ([]byte, error) {
	if e.down {
		return nil, fmt.Errorf("coherence: blade %d down", e.self)
	}
	e.stats.Reads++
	e.busy(p, e.opDelay)
	if ent, ok := e.cache.Get(key); ok && ent.State != cache.Invalid {
		e.stats.LocalHits++
		// Local hits at the home never reach the directory handler, so the
		// demand they represent is counted here — otherwise affinity-routed
		// hot reads would look cold to the rebalancer.
		if h, err := e.home(key); err == nil && h == e.self {
			e.heat.Touch(key)
		}
		if ctx := tr.FromProc(p); ctx.Valid() {
			// Instant span (Start == End): marks the block as served from
			// the local cache so breakdowns can count hit vs miss paths.
			ctx.Child("hit", tr.CacheHit, e.label).End()
		}
		trace(key, "t=%v blade%d read HIT state=%v dirty=%v v=%d d0=%d", p.Now(), e.self, ent.State, ent.Dirty, ent.Version, d0(ent.Data))
		return append([]byte(nil), ent.Data...), nil
	}
	homeID, err := e.home(key)
	if err != nil {
		return nil, err
	}
	epoch := e.invEpoch[key]
	var resp getSResp
	for hops := 0; ; hops++ {
		raw, err := e.call(p, homeID, "coh.gets", getSReq{Key: key, Epoch: epoch}, ctrlSize)
		if err != nil {
			return nil, fmt.Errorf("coherence: gets to blade %d: %w", homeID, err)
		}
		resp = raw.(getSResp)
		if !resp.Redirect {
			break
		}
		// The home migrated while this request was in flight: learn the
		// new address and retry there. Chained redirects are bounded by
		// the blade count plus in-flight migrations.
		e.stats.RedirectsFollowed++
		e.setHomeOverride(key, resp.NewHome)
		homeID = resp.NewHome
		if hops > len(e.peers)+8 {
			return nil, fmt.Errorf("coherence: gets for %v: redirect loop", key)
		}
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	var data []byte
	if resp.Data != nil {
		e.stats.PeerFetches++
		data = resp.Data
	} else {
		e.stats.DiskReads++
		data, err = e.backing.ReadBlock(p, key)
		if err != nil {
			return nil, err
		}
	}
	if resp.NoCache {
		// Forwarded from a dirty owner: serve without installing.
		return data, nil
	}
	if e.invEpoch[key] == epoch {
		// A failed makeRoom (backing store refusing writebacks) degrades
		// to serving the read uncached rather than failing it.
		if err := e.makeRoom(p); err == nil {
			// makeRoom may block on writeback; re-check that no
			// invalidation arrived meanwhile before installing the
			// Shared copy. The entry must also still be absent: a writer
			// proc on this same blade may have installed a Modified copy
			// while our backing read was in flight (GetX does not
			// invalidate the requester's own blade, so the epoch alone
			// cannot see it), and overwriting that dirty block with the
			// older backing data would lose an acknowledged write.
			if _, present := e.cache.Peek(key); !present && e.invEpoch[key] == epoch {
				e.cache.Put(key, data, cache.Shared, false, priority)
				trace(key, "t=%v blade%d read MISS install S d0=%d (peer=%v)", p.Now(), e.self, d0(data), resp.Data != nil)
			}
		}
	}
	return append([]byte(nil), data...), nil
}

// FetchBlock returns the key's current bytes without joining the
// coherence domain: no sharer registration at the home, no install into
// this blade's coherence cache, no directory state transition. It is the
// hot-key cache tier's fill path. Freshness: the returned bytes are
// never older than the last write acknowledged before the call — and
// the tier's per-key epoch guard plus the writer-side write-through hook
// (onWriteThrough) extend that to the install: any fill whose bytes a
// concurrent write supersedes is either invalidated after install or
// aborted by its epoch check before it.
func (e *Engine) FetchBlock(p *sim.Proc, key cache.Key, priority int) ([]byte, error) {
	if e.down {
		return nil, fmt.Errorf("coherence: blade %d down", e.self)
	}
	e.stats.Reads++
	e.busy(p, e.opDelay)
	// A local coherent copy is current: if an exclusive grant for the key
	// had passed since it was installed, the grant's invalidation would
	// have removed it.
	if ent, ok := e.cache.Get(key); ok && ent.State != cache.Invalid {
		e.stats.LocalHits++
		return append([]byte(nil), ent.Data...), nil
	}
	homeID, err := e.home(key)
	if err != nil {
		return nil, err
	}
	var resp getVResp
	for hops := 0; ; hops++ {
		raw, err := e.call(p, homeID, "coh.getv", getVReq{Key: key}, ctrlSize)
		if err != nil {
			return nil, fmt.Errorf("coherence: getv to blade %d: %w", homeID, err)
		}
		resp = raw.(getVResp)
		if !resp.Redirect {
			break
		}
		e.stats.RedirectsFollowed++
		e.setHomeOverride(key, resp.NewHome)
		homeID = resp.NewHome
		if hops > len(e.peers)+8 {
			return nil, fmt.Errorf("coherence: getv for %v: redirect loop", key)
		}
	}
	if resp.Data != nil {
		e.stats.PeerFetches++
		return resp.Data, nil
	}
	e.stats.DiskReads++
	return e.backing.ReadBlock(p, key)
}

// WriteBlock stores a full block, acquiring exclusive ownership first.
// The write is acknowledged once the data is in this blade's cache (and
// replicated, if a replication hook is installed); destage to the backing
// store is asynchronous (§6.1).
func (e *Engine) WriteBlock(p *sim.Proc, key cache.Key, data []byte, priority int) error {
	return e.WriteBlockR(p, key, data, priority, 0)
}

// WriteBlockR is WriteBlock with an explicit replication factor
// (0 = the replication manager's default) — the per-file "controller level
// fault tolerance for write-back I/O operations" override of §4.
func (e *Engine) WriteBlockR(p *sim.Proc, key cache.Key, data []byte, priority, replFactor int) error {
	if e.down {
		return fmt.Errorf("coherence: blade %d down", e.self)
	}
	if len(data) != e.blockSize {
		return fmt.Errorf("coherence: write of %d bytes, block size %d", len(data), e.blockSize)
	}
	e.stats.Writes++
	e.busy(p, e.opDelay)
	for attempt := 0; ; attempt++ {
		// Re-resolve the home each attempt: a migration can land between
		// retries, and a Redirect answer teaches us the new address.
		homeID, err := e.home(key)
		if err != nil {
			return err
		}
		epoch := e.invEpoch[key]
		var resp getXResp
		for hops := 0; ; hops++ {
			raw, err := e.call(p, homeID, "coh.getx", getXReq{Key: key, Epoch: epoch}, ctrlSize)
			if err != nil {
				return fmt.Errorf("coherence: getx to blade %d: %w", homeID, err)
			}
			resp = raw.(getXResp)
			if !resp.Redirect {
				break
			}
			e.stats.RedirectsFollowed++
			e.setHomeOverride(key, resp.NewHome)
			homeID = resp.NewHome
			if hops > len(e.peers)+8 {
				return fmt.Errorf("coherence: getx for %v: redirect loop", key)
			}
		}
		if resp.Err != "" {
			return errors.New(resp.Err)
		}
		if e.invEpoch[key] != epoch {
			// Someone took ownership between our grant and install. Retry
			// after a jittered backoff: two writers stealing ownership from
			// each other before either installs would otherwise livelock.
			e.stats.WriteRetries++
			if attempt > 64 {
				return fmt.Errorf("coherence: write to %v livelocked after %d attempts", key, attempt)
			}
			backoff := sim.Duration(attempt+1) * 10 * sim.Microsecond
			backoff += sim.Duration(e.k.Rand().Int63n(int64(50 * sim.Microsecond)))
			p.Sleep(backoff)
			continue
		}
		stored := append([]byte(nil), data...)
		var entry *cache.Entry
		if ex, ok := e.cache.Peek(key); ok {
			ex.Data = stored
			ex.State = cache.Modified
			ex.Dirty = true
			ex.Version++
			entry = ex
			trace(key, "t=%v blade%d write in-place M d0=%d v=%d", p.Now(), e.self, d0(stored), ex.Version)
		} else {
			if err := e.makeRoom(p); err != nil {
				// No room and the backing store refuses writebacks:
				// fail the write rather than pile dirty data past
				// capacity on a store that cannot drain it.
				return fmt.Errorf("coherence: write to %v: %w", key, err)
			}
			// makeRoom may block on writeback; if ownership was stolen
			// meanwhile, installing M now would create a second owner.
			if e.invEpoch[key] != epoch {
				e.stats.WriteRetries++
				continue
			}
			entry = e.cache.Put(key, stored, cache.Modified, true, priority)
			entry.Version++
			trace(key, "t=%v blade%d write install M d0=%d", p.Now(), e.self, d0(stored))
		}
		if e.replicate != nil {
			if err := e.replicate(p, key, stored, entry.Version, replFactor); err != nil {
				return fmt.Errorf("coherence: replication: %w", err)
			}
		}
		if e.onWriteThrough != nil {
			e.onWriteThrough(p, []cache.Key{key})
		}
		return nil
	}
}

// maxWritebackFailures bounds how many failed destages one makeRoom call
// tolerates before giving up: Victim() reselects the same dirty entry when
// the backing store errors persistently, and an unbounded loop would spin
// a process forever on a store that cannot drain.
const maxWritebackFailures = 4

// makeRoom evicts until one insertion fits, writing dirty victims back.
// It returns a non-nil error only when room could not be made because the
// backing store kept refusing writebacks; the caller decides whether the
// operation can proceed uncached or must fail.
func (e *Engine) makeRoom(p *sim.Proc) error {
	failures := 0
	for e.cache.NeedsRoom(1) {
		v := e.cache.Victim()
		if v == nil {
			return nil
		}
		if v.Dirty {
			v.Pinned = true
			ver := v.Version
			err := e.backing.WriteBlock(p, v.Key, v.Data)
			v.Pinned = false
			if err != nil {
				e.stats.WritebackErrors++
				failures++
				if failures >= maxWritebackFailures {
					return fmt.Errorf("coherence: makeRoom: writeback of %v failed %d times: %w", v.Key, failures, err)
				}
				continue // bounded retry (Victim reselects the same entry)
			}
			if v.Version != ver {
				continue // updated mid-writeback: reselect
			}
			v.Dirty = false
			e.stats.Writebacks++
			if e.onClean != nil {
				e.onClean(p, v.Key, ver)
			}
		}
		wasOwner := v.State == cache.Modified
		// The notice carries the epoch the copy lived under (pre-bump):
		// the home matches it against the registration epoch so a notice
		// that arrives after this blade re-registers cannot deregister
		// the fresh copy.
		noteEpoch := e.invEpoch[v.Key]
		trace(v.Key, "t=%v blade%d evict state=%v", e.k.Now(), e.self, v.State)
		e.cache.Evict(v)
		// An eviction invalidates this blade's copy, so it must also age the
		// local install epoch: a sibling proc between a directory grant and
		// its install (the evict-note may already have reset the home) would
		// otherwise resurrect the key here while the directory forgets it —
		// a dirty copy under an Invalid entry once the note lands.
		e.invEpoch[v.Key]++
		// Fire-and-forget directory notice; staleness is tolerated.
		if homeID, err := e.home(v.Key); err == nil {
			e.conn.Go(p, e.peers[homeID], "coh.evict",
				evictNote{Key: v.Key, From: e.self, WasOwner: wasOwner, Epoch: noteEpoch}, ctrlSize, 0)
		}
	}
	return nil
}

// maybeReadAhead detects sequential read runs per volume and pulls the
// next ReadAhead blocks into the cache in the background.
func (e *Engine) maybeReadAhead(key cache.Key, priority int) {
	if e.readAhead <= 0 {
		return
	}
	if key.LBA == e.lastSeq[key.Vol]+1 {
		e.seqStreak[key.Vol]++
	} else {
		e.seqStreak[key.Vol] = 0
	}
	e.lastSeq[key.Vol] = key.LBA
	if e.seqStreak[key.Vol] < 2 {
		return
	}
	for i := int64(1); i <= int64(e.readAhead); i++ {
		next := cache.Key{Vol: key.Vol, LBA: key.LBA + i}
		if _, ok := e.cache.Peek(next); ok {
			continue
		}
		if e.prefetching[next] {
			continue
		}
		e.prefetching[next] = true
		e.k.Go("readahead", func(q *sim.Proc) {
			defer delete(e.prefetching, next)
			if e.down {
				return
			}
			e.stats.Prefetches++
			e.readBlock(q, next, priority)
		})
	}
}
