package coherence

import (
	"strconv"

	"repro/internal/cache"
)

// homeIndex memoizes home() results in a fixed-stride, index-only slot
// array (the fmcache pattern): a lookup touches at most idxProbe slots of
// plain integers — no string formatting, no hash-object allocation, no
// per-entry directory state — so the common repeated-key case on the
// read/write hot path filters in a handful of compares. Misses fall back
// to the full rendezvous hash plus the migration-override map and install
// their result.
//
// Correctness: the index is a pure cache of (key → home). Any event that
// can change a home — a learned or installed migration override, or a
// membership change — bumps gen, which invalidates every slot at once
// (migrations are rare; revalidating the whole index costs one increment).
// home() takes no virtual time, so the index is invisible to simulation
// timing and determinism.

const (
	idxSlots = 1 << 14 // fixed footprint: 16384 slots
	idxProbe = 8       // bounded linear probe
)

// idxSlot is one fixed-stride entry. vol is an interned volume id plus one
// (zero marks an empty slot); gen must match the index generation for the
// slot to be live.
type idxSlot struct {
	lba  int64
	vol  uint32
	gen  uint32
	home int32
}

type homeIndex struct {
	slots [idxSlots]idxSlot
	gen   uint32
	vols  map[string]uint32 // volume name → interned id
	hits  int64
	miss  int64
}

func newHomeIndex() *homeIndex {
	return &homeIndex{gen: 1, vols: make(map[string]uint32)}
}

// invalidate drops every cached mapping in O(1) by advancing the
// generation stamp.
func (ix *homeIndex) invalidate() { ix.gen++ }

// slotHash mixes (vol, lba) into a well-spread slot index (splitmix-style
// finalizer; cheap and allocation-free).
func slotHash(vol uint32, lba int64) uint64 {
	x := uint64(vol)<<32 ^ uint64(lba)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// lookup returns the cached home for key, if present and current.
func (ix *homeIndex) lookup(key cache.Key) (int, bool) {
	vid, ok := ix.vols[key.Vol]
	if !ok {
		ix.miss++
		return 0, false
	}
	h := slotHash(vid, key.LBA)
	for i := 0; i < idxProbe; i++ {
		s := &ix.slots[(h+uint64(i))&(idxSlots-1)]
		if s.vol == vid+1 && s.lba == key.LBA && s.gen == ix.gen {
			ix.hits++
			return int(s.home), true
		}
	}
	ix.miss++
	return 0, false
}

// install caches key → home, preferring an empty or stale slot in the
// probe window and displacing the primary slot when the window is full of
// live entries.
func (ix *homeIndex) install(key cache.Key, home int) {
	vid, ok := ix.vols[key.Vol]
	if !ok {
		vid = uint32(len(ix.vols))
		ix.vols[key.Vol] = vid
	}
	h := slotHash(vid, key.LBA)
	target := &ix.slots[h&(idxSlots-1)]
	for i := 0; i < idxProbe; i++ {
		s := &ix.slots[(h+uint64(i))&(idxSlots-1)]
		if s.vol == 0 || s.gen != ix.gen {
			target = s
			break
		}
		if s.vol == vid+1 && s.lba == key.LBA {
			target = s
			break
		}
	}
	*target = idxSlot{lba: key.LBA, vol: vid + 1, gen: ix.gen, home: int32(home)}
}

// fnv1a64 constants (hash/fnv), inlined so keyHash stays allocation-free.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// keyHash reproduces exactly the historical home hash — fnv.New64a fed
// fmt.Fprintf("%s/%d", Vol, LBA) — without the writer or the formatter, so
// index misses stay off the allocator too.
func keyHash(key cache.Key) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key.Vol); i++ {
		h ^= uint64(key.Vol[i])
		h *= fnvPrime64
	}
	h ^= '/'
	h *= fnvPrime64
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], key.LBA, 10) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}
