package coherence

import "repro/internal/cache"

// traceFn, when non-nil, receives a protocol event line for every operation
// touching traceKey. Tests set this to debug protocol interleavings; it is
// nil in production use.
var traceFn func(format string, args ...any)
var traceKey cache.Key

func trace(key cache.Key, format string, args ...any) {
	if traceFn != nil && key == traceKey {
		traceFn(format, args...)
	}
}

// SetTrace installs (or, with a nil fn, removes) a protocol trace sink for
// one key, for tests outside this package debugging an interleaving. Not
// safe to change while a simulation is running.
func SetTrace(key cache.Key, fn func(format string, args ...any)) {
	traceKey = key
	traceFn = fn
}

// d0 renders a block's first byte for trace lines, tolerating zero-length
// payloads (indexing Data[0] directly panics when tracing a zero-length
// block); -1 means "empty".
func d0(b []byte) int {
	if len(b) == 0 {
		return -1
	}
	return int(b[0])
}
