package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// newReadAheadHarness builds a harness whose engines prefetch.
func newReadAheadHarness(blades, cacheBlocks, readAhead int) *harness {
	k := sim.NewKernel(1)
	net := simnet.New(k)
	backing := newMemBacking(5 * sim.Millisecond)
	peers := make([]simnet.Addr, blades)
	for i := range peers {
		peers[i] = simnet.Addr(fmt.Sprintf("blade%d", i))
		net.Connect(peers[i], "fabric", simnet.FC2G)
	}
	h := &harness{k: k, net: net, backing: backing}
	for i := 0; i < blades; i++ {
		conn := simnet.NewConn(net, peers[i])
		h.engines = append(h.engines, New(k, Config{
			Conn: conn, Peers: peers, Self: i,
			Cache: cache.New(cacheBlocks), Backing: backing,
			BlockSize: blockSize, OpDelay: 10 * sim.Microsecond,
			HandlerDelay: 5 * sim.Microsecond, ReadAhead: readAhead,
		}))
	}
	return h
}

func TestReadAheadPrefetchesSequentialRun(t *testing.T) {
	h := newReadAheadHarness(2, 256, 8)
	for i := int64(0); i < 64; i++ {
		h.backing.data[kb(i)] = blk(byte(i))
	}
	h.run(func(p *sim.Proc) {
		// Establish a sequential run.
		for i := int64(0); i < 4; i++ {
			h.engines[0].ReadBlock(p, kb(i), 0)
		}
		p.Sleep(100 * sim.Millisecond) // let prefetchers land
		// Blocks ahead of the run should now be cached.
		hitsBefore := h.engines[0].Cache().Stats().Hits
		for i := int64(4); i < 10; i++ {
			d, err := h.engines[0].ReadBlock(p, kb(i), 0)
			if err != nil || d[0] != byte(i) {
				t.Errorf("read %d: %v", i, err)
			}
		}
		hits := h.engines[0].Cache().Stats().Hits - hitsBefore
		if hits < 5 {
			t.Errorf("only %d/6 reads hit after readahead", hits)
		}
	})
	if h.engines[0].Stats().Prefetches == 0 {
		t.Fatal("no prefetches recorded")
	}
}

func TestReadAheadOffByDefault(t *testing.T) {
	h := newHarness(1, 2, 256) // default config: ReadAhead 0
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 6; i++ {
			h.engines[0].ReadBlock(p, kb(i), 0)
		}
		p.Sleep(50 * sim.Millisecond)
	})
	if h.engines[0].Stats().Prefetches != 0 {
		t.Fatal("prefetches with readahead disabled")
	}
}

func TestRandomAccessDoesNotPrefetch(t *testing.T) {
	h := newReadAheadHarness(1, 256, 8)
	h.run(func(p *sim.Proc) {
		for _, lba := range []int64{40, 7, 23, 55, 3, 61} {
			h.engines[0].ReadBlock(p, kb(lba), 0)
		}
		p.Sleep(50 * sim.Millisecond)
	})
	if n := h.engines[0].Stats().Prefetches; n != 0 {
		t.Fatalf("%d prefetches on random access", n)
	}
}

func TestReadAheadSpeedsSequentialScan(t *testing.T) {
	scan := func(readAhead int) sim.Duration {
		h := newReadAheadHarness(1, 512, readAhead)
		var elapsed sim.Duration
		h.run(func(p *sim.Proc) {
			t0 := p.Now()
			for i := int64(0); i < 128; i++ {
				h.engines[0].ReadBlock(p, kb(i), 0)
			}
			elapsed = p.Now().Sub(t0)
		})
		return elapsed
	}
	without := scan(0)
	with := scan(16)
	if with*2 > without {
		t.Fatalf("readahead scan %v not ≥2× faster than without (%v)", with, without)
	}
}

func TestReadAheadCoherent(t *testing.T) {
	// A prefetched block must still be invalidated by a writer.
	h := newReadAheadHarness(2, 256, 4)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			h.engines[0].ReadBlock(p, kb(i), 0)
		}
		p.Sleep(100 * sim.Millisecond) // prefetch kb(4..7) onto blade 0
		if _, ok := h.engines[0].Cache().Peek(kb(5)); !ok {
			t.Error("kb(5) not prefetched; test premise broken")
			return
		}
		h.engines[1].WriteBlock(p, kb(5), blk(99), 0)
		d, err := h.engines[0].ReadBlock(p, kb(5), 0)
		if err != nil || d[0] != 99 {
			t.Errorf("prefetched block served stale after write: %v err=%v", d[0], err)
		}
	})
}
