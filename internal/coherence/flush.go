package coherence

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/qos"
	"repro/internal/sim"
)

// FlushOnce destages up to max dirty blocks (all if max ≤ 0), returning the
// number written back. Destages are issued concurrently (bounded) so the
// drain rate tracks the disk array, not a single operation's latency.
func (e *Engine) FlushOnce(p *sim.Proc, max int) int {
	dirty := e.cache.DirtyEntries()
	n := 0
	grp := sim.NewGroup(e.k)
	inFlight := sim.NewSemaphore(e.k, 16)
	for _, ent := range dirty {
		if max > 0 && n >= max {
			break
		}
		if ent.Pinned || !ent.Dirty {
			continue
		}
		ent := ent
		ent.Pinned = true
		ver := ent.Version
		n++
		grp.Add(1)
		e.k.Go("destage", func(q *sim.Proc) {
			defer grp.Done()
			inFlight.Acquire(q, 1)
			defer inFlight.Release(1)
			err := e.backing.WriteBlock(q, ent.Key, ent.Data)
			ent.Pinned = false
			if err != nil {
				e.stats.WritebackErrors++
				return
			}
			if ent.Version == ver {
				ent.Dirty = false
				e.stats.Writebacks++
				if e.onClean != nil {
					e.onClean(p, ent.Key, ver)
				}
			}
		})
	}
	grp.Wait(p)
	return n
}

// StartFlusher launches the background write-back process: every interval
// it destages up to batch dirty blocks. §6.1: "replicated data would be
// locked in cache only long enough for the data to be asynchronously
// written to disk." The returned function stops the flusher (it exits at
// its next tick, so the simulation's event queue can drain).
func (e *Engine) StartFlusher(interval sim.Duration, batch int) (stop func()) {
	stopped := false
	e.k.Go("flusher", func(p *sim.Proc) {
		// Periodic destage is a storage service: its disk writes compete
		// in the background lane, not against client ops. (Evictions in
		// makeRoom stay on the evicting op's own lane — that writeback is
		// on the foreground op's critical path.)
		qos.TagBackground(p)
		for {
			p.Sleep(interval)
			if stopped || e.down {
				return
			}
			e.FlushOnce(p, batch)
		}
	})
	return func() { stopped = true }
}

// Recover transitions the engine to a new membership after blade failures
// or additions: it destages every dirty block, drops all cached state and
// the entire directory shard, and installs the new live set. The cluster
// layer must run Recover on every surviving blade before resuming I/O so
// that all blades agree on block homes.
func (e *Engine) Recover(p *sim.Proc, alive []int) {
	e.FlushOnce(p, 0)
	e.cache.Clear()
	e.dir = make(map[cache.Key]*dirEntry)
	e.invEpoch = make(map[cache.Key]uint64)
	// Migration state is membership-scoped: the new live set rehashes
	// every home, so overrides, forwarders and heat all restart from zero.
	e.homeOverride = make(map[cache.Key]int)
	e.forward = make(map[cache.Key]int)
	e.idx.invalidate()
	e.heat.Reset()
	e.alive = append([]int(nil), alive...)
	sort.Ints(e.alive)
}

// DirtyBlocks reports how many dirty blocks the cache currently holds.
func (e *Engine) DirtyBlocks() int { return len(e.cache.DirtyEntries()) }
