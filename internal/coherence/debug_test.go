package coherence

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestRegressionFetchGoneStaleSharer replays the interleaving that exposed
// a protocol bug: a home dropping a mid-install sharer on a Gone fetch
// reply, leaving that blade with a permanently stale Shared copy. The fix
// keeps Gone sharers registered (so invalidations still reach the copy
// installed after the fetch); absent-entry downgrade replies still bump
// the invalidation epoch.
func TestRegressionFetchGoneStaleSharer(t *testing.T) {
	seed := int64(1362837757380507544)
	script := []uint16{0xf71c, 0xd9, 0xb696, 0x64cd, 0x44fc, 0x59b9, 0x2e44, 0xed75, 0xf9b4, 0x75af, 0x93cc, 0xc4, 0x3d8e, 0x88a, 0x2d9d, 0x8f63, 0x3ac3, 0x2c24, 0x82af, 0xe602, 0x93ec, 0xac35, 0x1565, 0x72cb}
	h := newHarness(seed, 4, 16)
	g := sim.NewGroup(h.k)
	for i, op := range script {
		if i >= 24 {
			break
		}
		op := op
		blade := int(op) % 4
		lba := int64(op>>2) % 4
		g.Add(1)
		h.k.Go("w", func(p *sim.Proc) {
			defer g.Done()
			p.Sleep(sim.Duration(op%7) * sim.Millisecond)
			if op%2 == 0 {
				if err := h.engines[blade].WriteBlock(p, kb(lba), blk(byte(op>>8)|1), 0); err != nil {
					t.Logf("write blade=%d lba=%d err=%v", blade, lba, err)
				}
			} else {
				if _, err := h.engines[blade].ReadBlock(p, kb(lba), 0); err != nil {
					t.Logf("read blade=%d lba=%d err=%v", blade, lba, err)
				}
			}
		})
	}
	h.k.Go("check", func(p *sim.Proc) {
		g.Wait(p)
		p.Sleep(10 * sim.Millisecond)
		for _, e := range h.engines {
			e.FlushOnce(p, 0)
		}
		for lba := int64(0); lba < 4; lba++ {
			var ref []byte
			refBlade := -1
			for bi, e := range h.engines {
				d, err := e.ReadBlock(p, kb(lba), 0)
				if err != nil {
					t.Errorf("final read blade=%d lba=%d err=%v", bi, lba, err)
					continue
				}
				if ref == nil {
					ref, refBlade = d, bi
				} else if !bytes.Equal(ref, d) {
					t.Errorf("lba=%d disagreement: blade %d=%d vs blade %d=%d",
						lba, refBlade, ref[0], bi, d[0])
				}
			}
		}
	})
	h.k.Run()
}
