package coherence

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/cache"
)

// refHash is the historical home hash the fixed-stride index's slow path
// must reproduce bit-for-bit.
func refHash(key cache.Key) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", key.Vol, key.LBA)
	return h.Sum64()
}

func TestKeyHashMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vols := []string{"", "v", "vol0", "snap", "a/b", "日本語", "x-very-long-volume-name-0123456789"}
	for i := 0; i < 20000; i++ {
		key := cache.Key{Vol: vols[rng.Intn(len(vols))], LBA: rng.Int63() - rng.Int63()}
		if got, want := keyHash(key), refHash(key); got != want {
			t.Fatalf("keyHash(%+v) = %#x, want %#x", key, got, want)
		}
	}
	for _, lba := range []int64{0, -1, 1, 1 << 62, -(1 << 62)} {
		key := cache.Key{Vol: "edge", LBA: lba}
		if got, want := keyHash(key), refHash(key); got != want {
			t.Fatalf("keyHash(%+v) = %#x, want %#x", key, got, want)
		}
	}
}

// TestHomeIndexTransparent drives the memoized home() against an oracle
// that recomputes from scratch, interleaving migration overrides and
// membership changes so generation invalidation is exercised.
func TestHomeIndexTransparent(t *testing.T) {
	h := newHarness(11, 4, 256)
	e := h.engines[0]
	oracle := func(key cache.Key) int {
		if hm, ok := e.homeOverride[key]; ok {
			return hm
		}
		return e.alive[refHash(key)%uint64(len(e.alive))]
	}
	rng := rand.New(rand.NewSource(23))
	keys := make([]cache.Key, 64)
	for i := range keys {
		keys[i] = cache.Key{Vol: "vol", LBA: int64(rng.Intn(512))}
	}
	for step := 0; step < 4000; step++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0:
			e.setHomeOverride(key, rng.Intn(4))
		case 1:
			delete(e.homeOverride, key)
			e.idx.invalidate()
		default:
			got, err := e.home(key)
			if err != nil {
				t.Fatal(err)
			}
			if want := oracle(key); got != want {
				t.Fatalf("step %d: home(%+v) = %d, oracle %d (override=%v)",
					step, key, got, want, e.homeOverride[key])
			}
		}
	}
	if e.idx.hits == 0 {
		t.Fatal("index never hit — memoization is dead code")
	}
}
