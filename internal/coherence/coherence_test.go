package coherence

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// memBacking is a shared stable store with a fixed access delay.
type memBacking struct {
	delay         sim.Duration
	data          map[cache.Key][]byte
	reads, writes int64
}

func newMemBacking(delay sim.Duration) *memBacking {
	return &memBacking{delay: delay, data: make(map[cache.Key][]byte)}
}

func (m *memBacking) ReadBlock(p *sim.Proc, key cache.Key) ([]byte, error) {
	p.Sleep(m.delay)
	m.reads++
	if d, ok := m.data[key]; ok {
		return append([]byte(nil), d...), nil
	}
	return make([]byte, blockSize), nil
}

func (m *memBacking) WriteBlock(p *sim.Proc, key cache.Key, data []byte) error {
	p.Sleep(m.delay)
	m.writes++
	m.data[key] = append([]byte(nil), data...)
	return nil
}

const blockSize = 512

type harness struct {
	k       *sim.Kernel
	net     *simnet.Network
	engines []*Engine
	backing *memBacking
}

func newHarness(seed int64, blades, cacheBlocks int) *harness {
	k := sim.NewKernel(seed)
	net := simnet.New(k)
	backing := newMemBacking(2 * sim.Millisecond)
	peers := make([]simnet.Addr, blades)
	for i := range peers {
		peers[i] = simnet.Addr(fmt.Sprintf("blade%d", i))
		net.Connect(peers[i], "fabric", simnet.FC2G)
	}
	h := &harness{k: k, net: net, backing: backing}
	for i := 0; i < blades; i++ {
		conn := simnet.NewConn(net, peers[i])
		h.engines = append(h.engines, New(k, Config{
			Conn:         conn,
			Peers:        peers,
			Self:         i,
			Cache:        cache.New(cacheBlocks),
			Backing:      backing,
			BlockSize:    blockSize,
			OpDelay:      10 * sim.Microsecond,
			HandlerDelay: 5 * sim.Microsecond,
		}))
	}
	return h
}

func (h *harness) run(body func(p *sim.Proc)) {
	h.k.Go("test", body)
	h.k.Run()
}

func blk(v byte) []byte { return bytes.Repeat([]byte{v}, blockSize) }

func kb(i int64) cache.Key { return cache.Key{Vol: "v", LBA: i} }

func TestReadMissThenHit(t *testing.T) {
	h := newHarness(1, 4, 64)
	h.backing.data[kb(1)] = blk(7)
	h.run(func(p *sim.Proc) {
		d, err := h.engines[0].ReadBlock(p, kb(1), 0)
		if err != nil || d[0] != 7 {
			t.Errorf("first read: %v %v", d[0], err)
		}
		d2, err := h.engines[0].ReadBlock(p, kb(1), 0)
		if err != nil || d2[0] != 7 {
			t.Errorf("second read: %v", err)
		}
	})
	st := h.engines[0].Stats()
	if st.LocalHits != 1 {
		t.Fatalf("hits = %d, want 1", st.LocalHits)
	}
	if h.backing.reads != 1 {
		t.Fatalf("disk reads = %d, want 1", h.backing.reads)
	}
}

func TestPeerCacheTransfer(t *testing.T) {
	h := newHarness(1, 4, 64)
	h.backing.data[kb(5)] = blk(9)
	h.run(func(p *sim.Proc) {
		h.engines[0].ReadBlock(p, kb(5), 0) // 0 becomes sharer (disk read)
		d, err := h.engines[1].ReadBlock(p, kb(5), 0)
		if err != nil || d[0] != 9 {
			t.Errorf("peer read: %v", err)
		}
	})
	if h.backing.reads != 1 {
		t.Fatalf("disk reads = %d, want 1 (second read from peer cache)", h.backing.reads)
	}
	if h.engines[1].Stats().PeerFetches != 1 {
		t.Fatalf("peer fetches = %d, want 1", h.engines[1].Stats().PeerFetches)
	}
}

func TestWriteThenRemoteRead(t *testing.T) {
	h := newHarness(1, 4, 64)
	h.run(func(p *sim.Proc) {
		if err := h.engines[2].WriteBlock(p, kb(3), blk(42), 0); err != nil {
			t.Errorf("write: %v", err)
		}
		// Owner-forwarding: the dirty owner serves this read directly
		// without a writeback.
		d, err := h.engines[0].ReadBlock(p, kb(3), 0)
		if err != nil || d[0] != 42 {
			t.Errorf("remote read after write: got %v err %v", d[0], err)
		}
		if h.backing.writes != 0 {
			t.Errorf("read of dirty block forced %d writebacks; owner-forwarding broken", h.backing.writes)
		}
		// After the owner destages, a read completes the downgrade and the
		// reader may cache a Shared copy.
		h.engines[2].FlushOnce(p, 0)
		d, err = h.engines[0].ReadBlock(p, kb(3), 0)
		if err != nil || d[0] != 42 {
			t.Errorf("read after destage: got %v err %v", d[0], err)
		}
		if _, ok := h.engines[0].Cache().Peek(kb(3)); !ok {
			t.Error("reader did not cache after clean downgrade")
		}
	})
	if got := h.backing.data[kb(3)]; got == nil || got[0] != 42 {
		t.Fatal("backing store stale after flush")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := newHarness(1, 4, 64)
	h.backing.data[kb(8)] = blk(1)
	h.run(func(p *sim.Proc) {
		h.engines[0].ReadBlock(p, kb(8), 0)
		h.engines[1].ReadBlock(p, kb(8), 0)
		if err := h.engines[2].WriteBlock(p, kb(8), blk(2), 0); err != nil {
			t.Errorf("write: %v", err)
		}
		// Both old sharers must observe the new value.
		for i := 0; i < 2; i++ {
			d, err := h.engines[i].ReadBlock(p, kb(8), 0)
			if err != nil || d[0] != 2 {
				t.Errorf("blade %d read stale %v err %v", i, d[0], err)
			}
		}
	})
	if h.engines[0].Stats().Invalidations == 0 && h.engines[1].Stats().Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestOwnershipMigration(t *testing.T) {
	h := newHarness(1, 4, 64)
	h.run(func(p *sim.Proc) {
		h.engines[0].WriteBlock(p, kb(9), blk(1), 0)
		h.engines[1].WriteBlock(p, kb(9), blk(2), 0)
		h.engines[0].WriteBlock(p, kb(9), blk(3), 0)
		for i := 0; i < 4; i++ {
			d, err := h.engines[i].ReadBlock(p, kb(9), 0)
			if err != nil || d[0] != 3 {
				t.Errorf("blade %d sees %v err %v, want 3", i, d[0], err)
			}
		}
	})
}

func TestRepeatedLocalWrite(t *testing.T) {
	h := newHarness(1, 2, 64)
	h.run(func(p *sim.Proc) {
		for v := byte(1); v <= 10; v++ {
			if err := h.engines[0].WriteBlock(p, kb(4), blk(v), 0); err != nil {
				t.Errorf("write %d: %v", v, err)
			}
		}
		d, _ := h.engines[0].ReadBlock(p, kb(4), 0)
		if d[0] != 10 {
			t.Errorf("final value %d, want 10", d[0])
		}
	})
	if h.backing.writes > 1 {
		t.Fatalf("backing writes = %d; repeated writes should coalesce in cache", h.backing.writes)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	h := newHarness(1, 2, 4) // tiny cache forces eviction
	h.run(func(p *sim.Proc) {
		// Fill the whole cache with dirty blocks so eviction has no clean
		// victim to prefer, then force an eviction with a read.
		for i := int64(1); i <= 4; i++ {
			h.engines[0].WriteBlock(p, kb(i), blk(byte(10+i)), 0)
		}
		h.engines[0].ReadBlock(p, kb(50), 0) // evicts dirty kb(1) (LRU)
		d, err := h.engines[0].ReadBlock(p, kb(1), 0)
		if err != nil || d[0] != 11 {
			t.Errorf("read after eviction: %v err %v", d[0], err)
		}
	})
	if got := h.backing.data[kb(1)]; got == nil || got[0] != 11 {
		t.Fatal("dirty eviction did not write back")
	}
}

func TestFlusherDestages(t *testing.T) {
	h := newHarness(1, 2, 64)
	stop := h.engines[0].StartFlusher(10*sim.Millisecond, 8)
	h.run(func(p *sim.Proc) {
		h.engines[0].WriteBlock(p, kb(2), blk(5), 0)
		p.Sleep(50 * sim.Millisecond)
		if h.engines[0].DirtyBlocks() != 0 {
			t.Error("flusher left dirty blocks")
		}
		stop()
	})
	h.k.Close()
	if got := h.backing.data[kb(2)]; got == nil || got[0] != 5 {
		t.Fatal("flusher did not write data")
	}
}

func TestFlushOnceRespectsBatch(t *testing.T) {
	h := newHarness(1, 2, 64)
	h.run(func(p *sim.Proc) {
		for i := int64(0); i < 6; i++ {
			h.engines[0].WriteBlock(p, kb(i), blk(byte(i)), 0)
		}
		n := h.engines[0].FlushOnce(p, 2)
		if n != 2 {
			t.Errorf("flushed %d, want 2", n)
		}
		if h.engines[0].DirtyBlocks() != 4 {
			t.Errorf("dirty = %d, want 4", h.engines[0].DirtyBlocks())
		}
	})
}

func TestRecoverFlushesAndColdStarts(t *testing.T) {
	h := newHarness(1, 4, 64)
	h.run(func(p *sim.Proc) {
		h.engines[0].WriteBlock(p, kb(7), blk(70), 0)
		// Blade 3 dies; survivors recover with new membership.
		alive := []int{0, 1, 2}
		for _, id := range alive {
			h.engines[id].Recover(p, alive)
		}
		if h.engines[0].Cache().Len() != 0 {
			t.Error("cache not cold after recover")
		}
		d, err := h.engines[1].ReadBlock(p, kb(7), 0)
		if err != nil || d[0] != 70 {
			t.Errorf("read after recover: %v err %v", d[0], err)
		}
	})
	if got := h.backing.data[kb(7)]; got == nil || got[0] != 70 {
		t.Fatal("recover did not flush dirty data")
	}
}

func TestConcurrentReadersSameBlock(t *testing.T) {
	h := newHarness(1, 8, 64)
	h.backing.data[kb(1)] = blk(3)
	errs := 0
	g := sim.NewGroup(h.k)
	for i := 0; i < 8; i++ {
		i := i
		g.Add(1)
		h.k.Go("reader", func(p *sim.Proc) {
			defer g.Done()
			d, err := h.engines[i].ReadBlock(p, kb(1), 0)
			if err != nil || d[0] != 3 {
				errs++
			}
		})
	}
	h.k.Run()
	if errs != 0 {
		t.Fatalf("%d concurrent readers failed", errs)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	h := newHarness(1, 4, 64)
	g := sim.NewGroup(h.k)
	for i := 0; i < 4; i++ {
		i := i
		g.Add(1)
		h.k.Go("writer", func(p *sim.Proc) {
			defer g.Done()
			h.engines[i].WriteBlock(p, kb(2), blk(byte(i+1)), 0)
		})
	}
	var vals [4]byte
	h.k.Go("checker", func(p *sim.Proc) {
		g.Wait(p)
		p.Sleep(sim.Millisecond)
		for i := 0; i < 4; i++ {
			d, err := h.engines[i].ReadBlock(p, kb(2), 0)
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			vals[i] = d[0]
		}
	})
	h.k.Run()
	for i := 1; i < 4; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("blades disagree: %v", vals)
		}
	}
	if vals[0] < 1 || vals[0] > 4 {
		t.Fatalf("final value %d not among written values", vals[0])
	}
}

// Property: under an arbitrary serial schedule of reads and writes from
// arbitrary blades, every read returns the most recently written value
// (sequential consistency for serial issue).
func TestSerialLinearizabilityProperty(t *testing.T) {
	f := func(seed int64, script []uint16) bool {
		h := newHarness(seed, 4, 8) // small cache: exercise evictions
		last := make(map[int64]byte)
		ok := true
		h.run(func(p *sim.Proc) {
			for i, op := range script {
				if i >= 40 {
					break
				}
				blade := int(op) % 4
				lba := int64(op>>2) % 6
				if op%3 == 0 {
					v := byte(op>>8) | 1
					if err := h.engines[blade].WriteBlock(p, kb(lba), blk(v), 0); err != nil {
						ok = false
						return
					}
					last[lba] = v
				} else {
					d, err := h.engines[blade].ReadBlock(p, kb(lba), 0)
					if err != nil {
						ok = false
						return
					}
					want := last[lba]
					if d[0] != want {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any concurrent workload quiesces and all flushers drain,
// all blades agree on every block's value, and the backing store matches.
func TestQuiescentAgreementProperty(t *testing.T) {
	f := func(seed int64, script []uint16) bool {
		h := newHarness(seed, 4, 16)
		g := sim.NewGroup(h.k)
		for i, op := range script {
			if i >= 24 {
				break
			}
			op := op
			blade := int(op) % 4
			lba := int64(op>>2) % 4
			g.Add(1)
			h.k.Go("w", func(p *sim.Proc) {
				defer g.Done()
				p.Sleep(sim.Duration(op%7) * sim.Millisecond)
				if op%2 == 0 {
					h.engines[blade].WriteBlock(p, kb(lba), blk(byte(op>>8)|1), 0)
				} else {
					h.engines[blade].ReadBlock(p, kb(lba), 0)
				}
			})
		}
		ok := true
		h.k.Go("check", func(p *sim.Proc) {
			g.Wait(p)
			p.Sleep(10 * sim.Millisecond)
			for _, e := range h.engines {
				e.FlushOnce(p, 0)
			}
			for lba := int64(0); lba < 4; lba++ {
				var ref []byte
				for _, e := range h.engines {
					d, err := e.ReadBlock(p, kb(lba), 0)
					if err != nil {
						ok = false
						return
					}
					if ref == nil {
						ref = d
					} else if !bytes.Equal(ref, d) {
						ok = false
						return
					}
				}
			}
		})
		h.k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDownBladeRejectsIO(t *testing.T) {
	h := newHarness(1, 2, 16)
	h.engines[1].SetDown(true)
	h.run(func(p *sim.Proc) {
		if _, err := h.engines[1].ReadBlock(p, kb(0), 0); err == nil {
			t.Error("down blade served a read")
		}
		if err := h.engines[1].WriteBlock(p, kb(0), blk(1), 0); err == nil {
			t.Error("down blade served a write")
		}
	})
}

func TestHomeDistribution(t *testing.T) {
	// Blocks should spread across homes roughly evenly — the basis of the
	// "no hot controller" claim for directory load.
	h := newHarness(1, 8, 16)
	counts := make(map[int]int)
	for i := int64(0); i < 4096; i++ {
		home, err := h.engines[0].home(kb(i))
		if err != nil {
			t.Fatal(err)
		}
		counts[home]++
	}
	for id, c := range counts {
		if c < 300 || c > 800 {
			t.Fatalf("home %d has %d/4096 blocks; poor distribution %v", id, c, counts)
		}
	}
}

func TestHomeConsistentAcrossBlades(t *testing.T) {
	h := newHarness(1, 5, 16)
	for i := int64(0); i < 100; i++ {
		h0, _ := h.engines[0].home(kb(i))
		for _, e := range h.engines[1:] {
			hi, _ := e.home(kb(i))
			if hi != h0 {
				t.Fatalf("blades disagree on home of block %d", i)
			}
		}
	}
}

func TestReadYourOwnEvictedWrite(t *testing.T) {
	// Regression: owner evicts (async directory notice), then re-reads.
	// The stale directory M(owner) entry must resolve via invariant 3.
	h := newHarness(1, 2, 2)
	h.run(func(p *sim.Proc) {
		h.engines[0].WriteBlock(p, kb(1), blk(21), 0)
		// Force eviction of block 1 by touching others.
		h.engines[0].ReadBlock(p, kb(2), 0)
		h.engines[0].ReadBlock(p, kb(3), 0)
		d, err := h.engines[0].ReadBlock(p, kb(1), 0)
		if err != nil || d[0] != 21 {
			t.Errorf("re-read own evicted write: %v err %v", d[0], err)
		}
	})
}

func TestRetentionPriorityHonored(t *testing.T) {
	h := newHarness(1, 2, 4)
	h.run(func(p *sim.Proc) {
		h.engines[0].ReadBlock(p, kb(100), 3) // pinned-priority block (§4)
		for i := int64(0); i < 8; i++ {
			h.engines[0].ReadBlock(p, kb(i), 0)
		}
		if _, ok := h.engines[0].Cache().Peek(kb(100)); !ok {
			t.Error("high-retention block evicted before low-priority blocks")
		}
	})
}
