package pfs

import (
	"testing"

	"repro/internal/sim"
)

// TestCachePriorityClamped is the regression test for the policy-metadata
// boundary: CachePriority's documented range is 0..3, and the cache lanes
// and QoS scheduling lanes below pfs index arrays with it, so Create,
// SetPolicy and WriteFile must never let an out-of-range value through.
func TestCachePriorityClamped(t *testing.T) {
	fs, io, k := newTestFS(t)
	runFS(k, func(p *sim.Proc) {
		if _, err := fs.Create("/hot", Policy{CachePriority: 7}); err != nil {
			t.Fatalf("create: %v", err)
		}
		if pol, _ := fs.Policy("/hot"); pol.CachePriority != 3 {
			t.Errorf("Create clamped to %d, want 3", pol.CachePriority)
		}
		if err := fs.SetPolicy("/hot", Policy{CachePriority: -2}); err != nil {
			t.Fatalf("setpolicy: %v", err)
		}
		if pol, _ := fs.Policy("/hot"); pol.CachePriority != 0 {
			t.Errorf("SetPolicy clamped to %d, want 0", pol.CachePriority)
		}
		// WriteFile creates the file if absent; the priority that reaches
		// the block layer must already be clamped.
		if err := fs.WriteFile(p, "/burst", []byte("data"), Policy{CachePriority: 99}); err != nil {
			t.Fatalf("writefile: %v", err)
		}
		if got := io.lastPrio["vol.default"]; got != 3 {
			t.Errorf("block layer saw priority %d, want 3", got)
		}
		if pol, _ := fs.Policy("/burst"); pol.CachePriority != 3 {
			t.Errorf("WriteFile stored priority %d, want 3", pol.CachePriority)
		}
	})
}
