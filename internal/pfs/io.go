package pfs

import (
	"fmt"

	"repro/internal/sim"
)

// allocator hands out contiguous block runs within one volume's address
// space: first-fit from the free list, else bump allocation.
type allocator struct {
	next     int64
	limit    int64
	freeList [][2]int64 // {lba, blocks}
}

func (a *allocator) alloc(blocks int64) (int64, error) {
	for i, run := range a.freeList {
		if run[1] >= blocks {
			lba := run[0]
			if run[1] == blocks {
				a.freeList = append(a.freeList[:i], a.freeList[i+1:]...)
			} else {
				a.freeList[i] = [2]int64{run[0] + blocks, run[1] - blocks}
			}
			return lba, nil
		}
	}
	if a.next+blocks > a.limit {
		return 0, fmt.Errorf("pfs: volume address space exhausted")
	}
	lba := a.next
	a.next += blocks
	return lba, nil
}

func (a *allocator) free(lba, blocks int64) {
	a.freeList = append(a.freeList, [2]int64{lba, blocks})
}

// ensureCapacity grows ino's extents to cover at least blocks blocks.
func (fs *FS) ensureCapacity(ino *Inode, blocks int64) error {
	cur := int64(0)
	for _, e := range ino.Extents {
		cur += e.Blocks
	}
	if cur >= blocks {
		return nil
	}
	need := blocks - cur
	// Round to the allocation chunk.
	need = (need + fs.chunk - 1) / fs.chunk * fs.chunk
	vol := fs.classVolume(ino.Policy)
	if vol == "" {
		return ErrNoClass
	}
	lba, err := fs.allocs[vol].alloc(need)
	if err != nil {
		return err
	}
	// Merge with the previous extent when contiguous in the same volume.
	if n := len(ino.Extents); n > 0 {
		last := &ino.Extents[n-1]
		if last.Vol == vol && last.LBA+last.Blocks == lba {
			last.Blocks += need
			return nil
		}
	}
	ino.Extents = append(ino.Extents, Extent{Vol: vol, LBA: lba, Blocks: need})
	return nil
}

// locate maps a file block index to its backing volume block.
func (ino *Inode) locate(fileBlock int64) (vol string, lba int64, ok bool) {
	rem := fileBlock
	for _, e := range ino.Extents {
		if rem < e.Blocks {
			return e.Vol, e.LBA + rem, true
		}
		rem -= e.Blocks
	}
	return "", 0, false
}

// run describes a maximal contiguous backing-volume run of file blocks.
type run struct {
	vol       string
	lba       int64
	blocks    int64
	fileBlock int64
}

// runs decomposes file blocks [start, start+count) into backing runs.
func (ino *Inode) runs(start, count int64) ([]run, error) {
	var out []run
	for b := start; b < start+count; {
		vol, lba, ok := ino.locate(b)
		if !ok {
			return nil, fmt.Errorf("pfs: block %d beyond file extents", b)
		}
		r := run{vol: vol, lba: lba, blocks: 1, fileBlock: b}
		b++
		for b < start+count {
			v2, l2, ok := ino.locate(b)
			if !ok || v2 != vol || l2 != r.lba+r.blocks {
				break
			}
			r.blocks++
			b++
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteAt writes data at byte offset off, extending the file as needed.
// Partial blocks use read-modify-write through the coherent cache; the
// file's policy supplies cache priority and replication factor, and the
// installed WriteHook (geo layer) runs before WriteAt returns.
func (fs *FS) WriteAt(p *sim.Proc, path string, off int64, data []byte) (int, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return 0, err
	}
	if ino.Dir {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, ErrBadPath
	}
	if len(data) == 0 {
		return 0, nil
	}
	bs := int64(fs.io.BlockSize())
	end := off + int64(len(data))
	if err := fs.ensureCapacity(ino, (end+bs-1)/bs); err != nil {
		return 0, err
	}

	firstBlock := off / bs
	lastBlock := (end - 1) / bs
	prio := ino.Policy.CachePriority
	repl := ino.Policy.ReplicationN

	// Assemble a block-aligned image of the affected range, reading any
	// boundary block whose existing content is partially retained.
	buf := make([]byte, (lastBlock-firstBlock+1)*bs)
	needFirst := off%bs != 0
	needLast := end%bs != 0
	if firstBlock == lastBlock {
		if (needFirst || needLast) && firstBlock*bs < ino.Size {
			old, err := fs.readBlocks(p, ino, firstBlock, 1, prio)
			if err != nil {
				return 0, err
			}
			copy(buf, old)
		}
	} else {
		if needFirst && firstBlock*bs < ino.Size {
			old, err := fs.readBlocks(p, ino, firstBlock, 1, prio)
			if err != nil {
				return 0, err
			}
			copy(buf, old)
		}
		if needLast && lastBlock*bs < ino.Size {
			old, err := fs.readBlocks(p, ino, lastBlock, 1, prio)
			if err != nil {
				return 0, err
			}
			copy(buf[(lastBlock-firstBlock)*bs:], old)
		}
	}
	copy(buf[off-firstBlock*bs:], data)

	// Write runs in parallel across backing extents.
	runs, err := ino.runs(firstBlock, lastBlock-firstBlock+1)
	if err != nil {
		return 0, err
	}
	grp := sim.NewGroup(fs.k)
	var firstErr error
	for _, r := range runs {
		r := r
		grp.Add(1)
		fs.k.Go("pfs.write", func(q *sim.Proc) {
			defer grp.Done()
			o := (r.fileBlock - firstBlock) * bs
			err := fs.io.WriteBlocks(q, r.vol, r.lba, buf[o:o+r.blocks*bs], prio, repl)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	grp.Wait(p)
	if firstErr != nil {
		return 0, firstErr
	}
	if end > ino.Size {
		ino.Size = end
	}
	ino.Mtime = fs.k.Now()
	fs.BytesWritten += int64(len(data))
	if fs.hook != nil {
		if err := fs.hook(p, path, ino, off, data); err != nil {
			return len(data), err
		}
	}
	return len(data), nil
}

// readBlocks reads file blocks [start, start+count) into a byte slice.
func (fs *FS) readBlocks(p *sim.Proc, ino *Inode, start, count int64, prio int) ([]byte, error) {
	bs := int64(fs.io.BlockSize())
	runs, err := ino.runs(start, count)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, count*bs)
	grp := sim.NewGroup(fs.k)
	var firstErr error
	for _, r := range runs {
		r := r
		grp.Add(1)
		fs.k.Go("pfs.read", func(q *sim.Proc) {
			defer grp.Done()
			d, err := fs.io.ReadBlocks(q, r.vol, r.lba, int(r.blocks), prio)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			copy(buf[(r.fileBlock-start)*bs:], d)
		})
	}
	grp.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	return buf, nil
}

// ReadAt reads up to len(buf) bytes from byte offset off, returning the
// number read. Reads past EOF are truncated (n may be < len(buf)).
func (fs *FS) ReadAt(p *sim.Proc, path string, off int64, buf []byte) (int, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return 0, err
	}
	if ino.Dir {
		return 0, ErrIsDir
	}
	if off < 0 {
		return 0, ErrBadPath
	}
	if off >= ino.Size {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > ino.Size {
		n = ino.Size - off
	}
	if n == 0 {
		return 0, nil
	}
	bs := int64(fs.io.BlockSize())
	firstBlock := off / bs
	lastBlock := (off + n - 1) / bs
	raw, err := fs.readBlocks(p, ino, firstBlock, lastBlock-firstBlock+1, ino.Policy.CachePriority)
	if err != nil {
		return 0, err
	}
	copy(buf[:n], raw[off-firstBlock*bs:])
	fs.BytesRead += n
	return int(n), nil
}

// WriteFile replaces a file's contents (creating it if absent) — the
// convenience used by examples and workloads.
func (fs *FS) WriteFile(p *sim.Proc, path string, data []byte, policy Policy) error {
	if _, err := fs.lookup(path); err != nil {
		if _, cerr := fs.Create(path, policy); cerr != nil {
			return cerr
		}
	}
	_, err := fs.WriteAt(p, path, 0, data)
	return err
}

// ReadFile returns a file's full contents.
func (fs *FS) ReadFile(p *sim.Proc, path string) ([]byte, error) {
	ino, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, ino.Size)
	n, err := fs.ReadAt(p, path, 0, buf)
	return buf[:n], err
}
