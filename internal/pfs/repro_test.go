package pfs

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestWriteReadEquivalenceRepro is the regression case for an aligned-start
// partial-tail overwrite inside a single block, which once skipped the
// boundary read and zeroed the block's retained tail.
func TestWriteReadEquivalenceRepro(t *testing.T) {
	writes := []uint16{0xcc60, 0xe370, 0x7090, 0x6d89, 0xec60, 0xadee, 0x88e8, 0xc4e7, 0x71a4, 0x4973, 0xbfb8, 0xfa6e}
	k := sim.NewKernel(1)
	io := newFakeIO("v")
	fs, _ := New(k, Config{IO: io, Classes: map[string]string{"c": "v"}, DefaultClass: "c"})
	shadow := make([]byte, 0)
	k.Go("t", func(p *sim.Proc) {
		fs.Create("/f", Policy{})
		for i, w := range writes {
			off := int64(w) % 3000
			val := byte(w>>8) | 1
			chunk := bytes.Repeat([]byte{val}, int(w%700)+1)
			if _, err := fs.WriteAt(p, "/f", off, chunk); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if need := off + int64(len(chunk)); need > int64(len(shadow)) {
				shadow = append(shadow, make([]byte, need-int64(len(shadow)))...)
			}
			copy(shadow[off:], chunk)
			got, err := fs.ReadFile(p, "/f")
			if err != nil || !bytes.Equal(got, shadow) {
				for j := range shadow {
					if j < len(got) && got[j] != shadow[j] {
						t.Errorf("after write %d (off=%d len=%d): first diff at byte %d: got %d want %d", i, off, len(chunk), j, got[j], shadow[j])
						return
					}
				}
				t.Errorf("after write %d: len got=%d want=%d", i, len(got), len(shadow))
				return
			}
		}
	})
	k.Run()
}
